//! Quickstart: parse a small XML document, build an XCluster synopsis,
//! and estimate twig-query selectivities against exact counts.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use xcluster_core::build::{build_synopsis, BuildConfig};
use xcluster_core::estimate;
use xcluster_core::reference::{reference_synopsis, ReferenceConfig};
use xcluster_query::{evaluate, parse_twig, EvalIndex};
use xcluster_xml::{parse_with, ParseOptions, ValueType};

fn main() {
    // A bibliographic document in the spirit of the paper's Figure 1.
    let xml = "<dblp>\
        <author>\
          <name>First Author</name>\
          <paper><year>2000</year><title>Counting Twig Matches</title>\
            <keywords>xml summary selectivity</keywords></paper>\
          <paper><year>2002</year><title>Holistic Twig Joins</title>\
            <abstract>xml employs a tree structured synopsis model</abstract></paper>\
        </author>\
        <author>\
          <name>Second Author</name>\
          <book><year>2002</year><title>Database Systems</title>\
            <foreword>database systems have evolved rapidly</foreword></book>\
        </author></dblp>";
    let opts = ParseOptions::default()
        .with_type("year", ValueType::Numeric)
        .with_type("title", ValueType::String)
        .with_type("name", ValueType::String)
        .with_type("keywords", ValueType::Text)
        .with_type("abstract", ValueType::Text)
        .with_type("foreword", ValueType::Text);
    let doc = parse_with(xml, &opts).expect("well-formed document");
    println!("document: {} elements", doc.len());

    // 1. Detailed reference synopsis (lossless structure, detailed values).
    let reference = reference_synopsis(&doc, &ReferenceConfig::default());
    println!(
        "reference synopsis: {} nodes ({} with value summaries), {} bytes",
        reference.num_nodes(),
        reference.num_value_nodes(),
        reference.total_bytes()
    );

    // 2. Compress to a budget with XClusterBuild.
    let synopsis = build_synopsis(
        reference,
        &BuildConfig {
            b_str: 256, // structural budget (bytes)
            b_val: 512, // value-summary budget (bytes)
            ..BuildConfig::default()
        },
    );
    println!(
        "compressed synopsis: {} nodes, {} bytes total\n",
        synopsis.num_nodes(),
        synopsis.total_bytes()
    );

    // 3. Estimate twig selectivities and compare with exact evaluation.
    let index = EvalIndex::build(&doc);
    for q in [
        "//paper",
        "//paper/year",
        "//paper[year>2000]",
        "//paper[year>2000]/title[contains(Twig)]",
        "//paper[abstract ftcontains(xml, synopsis)]",
        "//author{/name}{/paper/title}",
    ] {
        let twig = parse_twig(q, doc.terms()).expect("valid twig syntax");
        let est = estimate(&synopsis, &twig);
        let truth = evaluate(&twig, &doc, &index);
        println!("{q:55}  estimate {est:6.2}   true {truth:4.0}");
    }
}
