//! Auction-site scenario: XMark-like data with recursive description
//! markup, mixed value types, and hand-written twig queries with
//! heterogeneous predicates.
//!
//! ```sh
//! cargo run --release --example auction_site
//! ```

use xcluster_core::build::{build_synopsis, BuildConfig};
use xcluster_core::estimate;
use xcluster_core::reference::{reference_synopsis, ReferenceConfig};
use xcluster_datagen::xmark;
use xcluster_query::{evaluate, parse_twig, EvalIndex};

fn main() {
    let d = xmark::generate(&xmark::XmarkConfig {
        items: 700,
        persons: 850,
        open_auctions: 550,
        closed_auctions: 400,
        categories: 100,
        seed: 7,
    });
    println!(
        "auction site: {} elements, max depth {}",
        d.num_elements(),
        d.tree.max_depth()
    );

    let reference = reference_synopsis(
        &d.tree,
        &ReferenceConfig {
            value_paths: Some(d.value_paths.clone()),
            ..ReferenceConfig::default()
        },
    );
    let synopsis = build_synopsis(
        reference,
        &BuildConfig {
            b_str: 6 * 1024,
            b_val: 20 * 1024,
            ..BuildConfig::default()
        },
    );
    println!(
        "synopsis: {} nodes, {:.1} KB ({} value summaries)\n",
        synopsis.num_nodes(),
        synopsis.total_bytes() as f64 / 1024.0,
        synopsis.num_value_nodes()
    );

    let index = EvalIndex::build(&d.tree);
    // A few hand-written twigs exercising every predicate class plus the
    // recursive description markup.
    let queries = [
        "//open_auction",
        "//open_auction/bidder",
        "//open_auction[initial>50]",
        "//open_auction[initial>50]/bidder/increase",
        "//person[age in 18..30]/name",
        "//item[quantity>=10]{/name}{/description//text}",
        "//europe/item/name[contains(europe)]",
        "//closed_auction[price>100]",
        "//listitem//listitem/text",
        "//regions//item/description/parlist/listitem",
    ];
    println!(
        "{:66}  {:>10}  {:>10}  {:>7}",
        "query", "estimate", "true", "relerr"
    );
    for q in queries {
        let twig = parse_twig(q, d.tree.terms()).expect("valid twig");
        let est = estimate(&synopsis, &twig);
        let truth = evaluate(&twig, &d.tree, &index);
        let rel = (est - truth).abs() / truth.max(10.0);
        println!("{q:66}  {est:10.1}  {truth:10.0}  {:6.1}%", rel * 100.0);
    }

    // Keyword predicates: pick two frequent terms from a description.
    let sample_terms: Vec<String> = d
        .tree
        .all_nodes()
        .filter(|&n| d.tree.label_str(n) == "description")
        .filter_map(|n| d.tree.value(n).as_text())
        .flat_map(|tv| tv.terms().iter().take(1).copied().collect::<Vec<_>>())
        .take(2)
        .map(|t| d.tree.term_str(t).to_string())
        .collect();
    if let [t1, t2] = sample_terms.as_slice() {
        let q = format!("//open_auction[annotation/description ftcontains({t1}, {t2})]");
        let twig = parse_twig(&q, d.tree.terms()).expect("valid twig");
        let est = estimate(&synopsis, &twig);
        let truth = evaluate(&twig, &d.tree, &index);
        println!("{q:66}  {est:10.2}  {truth:10.0}");
    }
}
