//! Bibliography scenario: summarize an IMDB-like movie database and
//! report per-class estimation accuracy across a generated workload —
//! a miniature of the paper's Section 6 study.
//!
//! ```sh
//! cargo run --release --example bibliography
//! ```

use xcluster_core::build::{build_synopsis, BuildConfig};
use xcluster_core::metrics::{evaluate_workload, EvalOptions};
use xcluster_core::reference::{reference_synopsis, ReferenceConfig};
use xcluster_datagen::imdb;
use xcluster_query::{workload, EvalIndex, QueryClass, WorkloadConfig};

fn main() {
    let d = imdb::generate(&imdb::ImdbConfig {
        num_movies: 800,
        seed: 42,
    });
    println!(
        "data set: {} elements, {:.1} KB serialized",
        d.num_elements(),
        d.file_size_bytes() as f64 / 1024.0
    );

    let reference = reference_synopsis(
        &d.tree,
        &ReferenceConfig {
            value_paths: Some(d.value_paths.clone()),
            ..ReferenceConfig::default()
        },
    );
    println!(
        "reference synopsis: {} nodes / {} value nodes, {:.1} KB",
        reference.num_nodes(),
        reference.num_value_nodes(),
        reference.total_bytes() as f64 / 1024.0
    );

    let index = EvalIndex::build(&d.tree);
    let targets = d.summarized_targets();
    let w = workload::generate_positive(
        &d.tree,
        &index,
        &WorkloadConfig {
            num_queries: 400,
            allowed_targets: Some(targets),
            ..WorkloadConfig::default()
        },
    );
    println!(
        "workload: {} positive twigs, sanity bound {:.0}\n",
        w.queries.len(),
        w.sanity_bound
    );

    println!(
        "{:>10}  {:>8}  {:>8}  {:>8}  {:>8}  {:>8}",
        "size", "Overall", "Struct", "Numeric", "String", "Text"
    );
    for b_str in [1usize, 4, 8, 16].map(|k| k * 1024) {
        let built = build_synopsis(
            reference.clone(),
            &BuildConfig {
                b_str,
                b_val: 24 * 1024,
                ..BuildConfig::default()
            },
        );
        let report = evaluate_workload(&built, &w, &EvalOptions::default()).report;
        let fmt = |o: Option<f64>| match o {
            Some(v) => format!("{:7.1}%", v * 100.0),
            None => "      -".to_string(),
        };
        println!(
            "{:>9}B  {:7.1}%  {}  {}  {}  {}",
            built.total_bytes(),
            report.overall_rel * 100.0,
            fmt(report.class_rel(QueryClass::Struct)),
            fmt(report.class_rel(QueryClass::Numeric)),
            fmt(report.class_rel(QueryClass::String)),
            fmt(report.class_rel(QueryClass::Text)),
        );
    }
}
