//! Unified-budget construction: the paper's Section 4.3 closing remark
//! proposes deriving the structural/value budget split automatically by
//! searching over Bstr/Bval ratios against a sample workload. This
//! example runs that search (`xcluster_core::autosplit`) and compares the
//! chosen split against fixed ratios on a held-out workload.
//!
//! ```sh
//! cargo run --release --example unified_budget
//! ```

use xcluster_core::autosplit::{build_with_unified_budget, AutoSplitConfig};
use xcluster_core::build::{build_synopsis, BuildConfig};
use xcluster_core::metrics::{evaluate_workload, EvalOptions};
use xcluster_core::reference::{reference_synopsis, ReferenceConfig};
use xcluster_datagen::imdb;
use xcluster_query::{workload, EvalIndex, WorkloadConfig};

fn main() {
    let d = imdb::generate(&imdb::ImdbConfig {
        num_movies: 600,
        seed: 2024,
    });
    let reference = reference_synopsis(
        &d.tree,
        &ReferenceConfig {
            value_paths: Some(d.value_paths.clone()),
            ..ReferenceConfig::default()
        },
    );
    let index = EvalIndex::build(&d.tree);
    let targets = d.summarized_targets();
    let mk_workload = |seed| {
        workload::generate_positive(
            &d.tree,
            &index,
            &WorkloadConfig {
                num_queries: 150,
                seed,
                allowed_targets: Some(targets.clone()),
                ..WorkloadConfig::default()
            },
        )
    };
    let sample = mk_workload(1); // drives the search
    let holdout = mk_workload(2); // scores the outcome

    let total = 40 * 1024;
    println!("unified budget B = {} KB\n", total / 1024);

    // Fixed splits for comparison.
    println!("{:>22} {:>12} {:>14}", "split", "Bstr/Bval", "holdout err");
    for rho in [0.05, 0.15, 0.30, 0.50] {
        let built = build_synopsis(
            reference.clone(),
            &BuildConfig {
                b_str: (total as f64 * rho) as usize,
                b_val: (total as f64 * (1.0 - rho)) as usize,
                ..BuildConfig::default()
            },
        );
        let err = evaluate_workload(&built, &holdout, &EvalOptions::default())
            .report
            .overall_rel;
        println!(
            "{:>20}ρ= {:>4.2} {:>5}/{:<5}KB {:>12.1}%",
            "fixed ",
            rho,
            (total as f64 * rho) as usize / 1024,
            (total as f64 * (1.0 - rho)) as usize / 1024,
            err * 100.0
        );
    }

    let result = build_with_unified_budget(
        &reference,
        &sample,
        &AutoSplitConfig {
            total_budget: total,
            iterations: 6,
            ..AutoSplitConfig::default()
        },
    );
    let err = evaluate_workload(&result.synopsis, &holdout, &EvalOptions::default())
        .report
        .overall_rel;
    println!(
        "{:>20}ρ= {:>4.2} {:>5}/{:<5}KB {:>12.1}%   (auto, {} probes)",
        "searched ",
        result.rho,
        (total as f64 * result.rho) as usize / 1024,
        (total as f64 * (1.0 - result.rho)) as usize / 1024,
        err * 100.0,
        result.probes.len()
    );
}
