//! Optimizer scenario: the paper's motivating use case. A query
//! optimizer uses the synopsis to pick the most selective twig fragment
//! as the driving access path, without touching the data.
//!
//! For a twig with several candidate "anchor" fragments, the plan that
//! evaluates the most selective fragment first minimizes intermediate
//! results. We rank fragments by estimated selectivity and check the
//! ranking against exact counts.
//!
//! ```sh
//! cargo run --release --example optimizer
//! ```

use xcluster_core::build::{build_synopsis, BuildConfig};
use xcluster_core::estimate;
use xcluster_core::reference::{reference_synopsis, ReferenceConfig};
use xcluster_datagen::imdb;
use xcluster_query::{evaluate, parse_twig, EvalIndex};

fn main() {
    let d = imdb::generate(&imdb::ImdbConfig {
        num_movies: 600,
        seed: 99,
    });
    let reference = reference_synopsis(
        &d.tree,
        &ReferenceConfig {
            value_paths: Some(d.value_paths.clone()),
            ..ReferenceConfig::default()
        },
    );
    let synopsis = build_synopsis(
        reference,
        &BuildConfig {
            b_str: 4 * 1024,
            b_val: 16 * 1024,
            ..BuildConfig::default()
        },
    );
    let index = EvalIndex::build(&d.tree);

    // Candidate fragments of the composite query
    //   //movie[year>1995][genre contains(war)]/cast/actor/name
    // an optimizer could anchor the plan on any of these:
    let fragments = [
        ("year filter", "//movie[year>1995]"),
        ("genre filter", "//movie[genre contains(war)]"),
        (
            "combined filters",
            "//movie[year>1995][genre contains(war)]",
        ),
        (
            "full twig",
            "//movie[year>1995][genre contains(war)]/cast/actor/name",
        ),
        ("actors only", "//movie/cast/actor/name"),
    ];

    println!(
        "{:20} {:>12} {:>12} {:>9}",
        "fragment", "estimate", "true", "rank-est"
    );
    let mut scored: Vec<(&str, f64, f64)> = fragments
        .iter()
        .map(|(name, q)| {
            let twig = parse_twig(q, d.tree.terms()).expect("valid twig");
            let est = estimate(&synopsis, &twig);
            let truth = evaluate(&twig, &d.tree, &index);
            (*name, est, truth)
        })
        .collect();
    let mut by_est: Vec<&str> = {
        let mut v = scored.clone();
        v.sort_by(|a, b| a.1.total_cmp(&b.1));
        v.into_iter().map(|(n, _, _)| n).collect()
    };
    scored.sort_by(|a, b| a.2.total_cmp(&b.2));
    let by_truth: Vec<&str> = scored.iter().map(|&(n, _, _)| n).collect();

    for &(name, est, truth) in &scored {
        let rank = by_est.iter().position(|&n| n == name).unwrap() + 1;
        println!("{name:20} {est:12.1} {truth:12.0} {rank:9}");
    }
    let agreement = by_est
        .iter()
        .zip(by_truth.iter())
        .filter(|(a, b)| a == b)
        .count();
    println!(
        "\nplan ranking: {agreement}/{} fragments ranked identically by estimate and truth",
        by_est.len()
    );
    by_est.clear();
}
