#!/usr/bin/env bash
# Compares the committed BENCH_*.json benchmark artifacts in the working
# tree against a baseline git revision (HEAD~1 by default, or the ref
# given as $1), printing a per-metric delta table for every numeric leaf
# (dotted-path flattened, e.g. metrics.class_rel.string). Deltas beyond
# ±10% are flagged with `<<` so drift is easy to spot in CI logs.
#
# Informational only: this script ALWAYS exits 0. The blocking accuracy
# check is `ci.sh --accuracy`, which gates against BENCH_accuracy.json
# with explicit tolerances; this report exists so perf/size drift in the
# other artifacts is visible in every run without flaking the build.
set -uo pipefail
cd "$(dirname "$0")/.."

BASE_REF="${1:-HEAD~1}"

# Flattens pretty-printed JSON to `dotted.path value` lines, numeric
# leaves only. Line-oriented on purpose: the BENCH artifacts are emitted
# by our own serializer (one key per line), and a dependency-free awk
# pass is all CI has.
flatten() {
  awk '
    {
      line = $0
      sub(/\r$/, "", line)
    }
    line ~ /^[[:space:]]*"[^"]+"[[:space:]]*:[[:space:]]*\{[[:space:]]*$/ {
      key = line
      sub(/^[[:space:]]*"/, "", key)
      sub(/".*$/, "", key)
      stack[depth++] = key
      next
    }
    line ~ /^[[:space:]]*\}/ {
      if (depth > 0) depth--
      next
    }
    line ~ /^[[:space:]]*"[^"]+"[[:space:]]*:[[:space:]]*-?[0-9]/ {
      key = line
      sub(/^[[:space:]]*"/, "", key)
      sub(/".*$/, "", key)
      val = line
      sub(/^[^:]*:[[:space:]]*/, "", val)
      sub(/[,[:space:]]*$/, "", val)
      path = ""
      for (i = 0; i < depth; i++) path = path stack[i] "."
      print path key, val
    }
  '
}

if ! git rev-parse --verify --quiet "$BASE_REF" > /dev/null; then
  echo "bench_compare: baseline ref $BASE_REF does not exist (first commit?) — nothing to compare"
  exit 0
fi

shopt -s nullglob
artifacts=(BENCH_*.json)
if [[ ${#artifacts[@]} -eq 0 ]]; then
  echo "bench_compare: no BENCH_*.json artifacts in the working tree"
  exit 0
fi

for f in "${artifacts[@]}"; do
  if ! base="$(git show "$BASE_REF:$f" 2> /dev/null)"; then
    echo "== $f: new artifact (no baseline at $BASE_REF)"
    continue
  fi
  echo "== $f vs $BASE_REF"
  # Join old and new flattened metrics on the dotted path and print the
  # delta. awk does the join so the whole report is one pass per file.
  awk '
    NR == FNR { old[$1] = $2; next }
    {
      new[$1] = $2
      order[++n] = $1
    }
    END {
      for (i = 1; i <= n; i++) {
        k = order[i]
        if (k in old) {
          o = old[k] + 0
          v = new[k] + 0
          flag = ""
          if (o == v) {
            printf "  %-44s %14g  (unchanged)\n", k, v
          } else if (o == 0) {
            printf "  %-44s %14g -> %-14g (was zero) <<\n", k, o, v
          } else {
            pct = (v - o) / (o < 0 ? -o : o) * 100
            flag = (pct > 10 || pct < -10) ? " <<" : ""
            printf "  %-44s %14g -> %-14g %+8.2f%%%s\n", k, o, v, pct, flag
          }
          delete old[k]
        } else {
          printf "  %-44s %31s %-14g (new metric) <<\n", k, "", new[k] + 0
        }
      }
      for (k in old)
        printf "  %-44s %14g -> %-14s (removed) <<\n", k, old[k] + 0, "-"
    }
  ' <(flatten <<< "$base") <(flatten < "$f")
done

exit 0
