#!/usr/bin/env bash
# Regenerates every table/figure of the paper and the ablations, saving
# console output + CSVs under results/.
#
# Usage: scripts/run_experiments.sh [scale] [queries]
set -euo pipefail
cd "$(dirname "$0")/.."
SCALE="${1:-0.25}"
QUERIES="${2:-1000}"
mkdir -p results
cargo build --release -p xcluster-bench
./target/release/experiments \
    --scale "$SCALE" --queries "$QUERIES" --out results all \
    2>&1 | tee results/experiments.log
echo "done — see results/"
