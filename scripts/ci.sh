#!/usr/bin/env bash
# Local mirror of the CI pipeline (.github/workflows/ci.yml):
# formatting, lints, release build, and the full test suite.
# Run from the repo root: ./scripts/ci.sh
#
# Pass --accuracy (or set XCLUSTER_CI_ACCURACY=1) to additionally rerun
# the pinned accuracy workload and gate against the committed
# BENCH_accuracy.json baseline: any per-class relative error worsening
# by more than 10% fails the script. Off by default because it adds a
# release build + workload evaluation to the loop.
#
# Pass --plan-diff (or set XCLUSTER_CI_PLAN_DIFF=1) to additionally run
# the compiled-plan differential suite under the release profile at a
# 1,4 thread matrix: the plan engine must be bitwise-identical to the
# reference interpreter on every dataset family, cold and warm cache.
#
# Pass --incremental-diff (or set XCLUSTER_CI_INCREMENTAL=1) to
# additionally run the incremental-maintenance differential suite under
# the release profile at a 1,4 thread matrix: delta streams applied in
# place must track a from-scratch rebuild of the mutated document
# within the committed error gates, stay bitwise across thread counts,
# and undo exactly under inverse deltas.
#
# Pass --serve-smoke (or set XCLUSTER_CI_SERVE=1) to additionally boot
# `xcluster serve` on an ephemeral port, scrape /metrics, and drive it
# with `xcluster loadgen` in verify mode: 1000 queries must succeed
# with zero errors and zero bitwise mismatches against the in-process
# batch engine, and the server must shut down cleanly. --serve-smoke-only
# runs just that leg against an existing release binary (used by the
# workflow, where the main legs already ran as their own steps).
#
# Pass --journal-replay (or set XCLUSTER_CI_JOURNAL=1) to additionally
# serve with full-rate journal sampling, drive 1000 verified queries,
# download the wide-event journal from /debug/journal, and replay it
# offline with `xcluster replay`: every journalled estimate must be
# reproduced bitwise from the same synopsis (0 mismatches).
# --journal-replay-only runs just that leg against an existing release
# binary.
set -euo pipefail
cd "$(dirname "$0")/.."

ACCURACY="${XCLUSTER_CI_ACCURACY:-0}"
PLAN_DIFF="${XCLUSTER_CI_PLAN_DIFF:-0}"
INCREMENTAL="${XCLUSTER_CI_INCREMENTAL:-0}"
SERVE="${XCLUSTER_CI_SERVE:-0}"
JOURNAL="${XCLUSTER_CI_JOURNAL:-0}"
MAIN=1
for arg in "$@"; do
  case "$arg" in
    --accuracy) ACCURACY=1 ;;
    --plan-diff) PLAN_DIFF=1 ;;
    --incremental-diff) INCREMENTAL=1 ;;
    --incremental-diff-only) INCREMENTAL=1; MAIN=0 ;;
    --serve-smoke) SERVE=1 ;;
    --serve-smoke-only) SERVE=1; MAIN=0 ;;
    --journal-replay) JOURNAL=1 ;;
    --journal-replay-only) JOURNAL=1; MAIN=0 ;;
    *) echo "unknown argument: $arg" >&2; exit 2 ;;
  esac
done

if [[ "$MAIN" == "1" ]]; then
  echo "==> cargo fmt --check"
  cargo fmt --all -- --check

  echo "==> cargo clippy -D warnings"
  # -D warnings also denies `deprecated`: in-repo callers must stay on
  # the unified Estimator/EvalOptions API, not the shims.
  cargo clippy --workspace --all-targets -- -D warnings -D deprecated

  echo "==> cargo build --release"
  cargo build --release --workspace

  echo "==> cargo test"
  cargo test -q --workspace

  # Thread-matrix leg: the differential suite (parallel builds and batch
  # estimation byte-identical to sequential) under the release profile,
  # so it exercises the real build sizes, at each thread count.
  for threads in 1 4; do
    echo "==> cargo test --release --test parallel (XCLUSTER_TEST_THREADS=$threads)"
    XCLUSTER_TEST_THREADS="$threads" \
      cargo test -q --release -p xcluster-core --test parallel
  done

  # Benchmark drift report: committed BENCH_*.json artifacts vs the
  # previous commit. Informational only — bench_compare.sh always exits
  # 0, and the `|| true` keeps even a script failure non-blocking.
  echo "==> bench compare vs HEAD~1 (informational)"
  ./scripts/bench_compare.sh || true
fi

if [[ "$PLAN_DIFF" == "1" ]]; then
  # Compiled-plan differential leg: plan-vs-interpreter bitwise equality
  # (cold cache, warm cache, shared cache, traced spans) under release.
  for threads in 1 4; do
    echo "==> cargo test --release --test plan_diff (XCLUSTER_TEST_THREADS=$threads)"
    XCLUSTER_TEST_THREADS="$threads" \
      cargo test -q --release -p xcluster-core --test plan_diff
  done
fi

if [[ "$INCREMENTAL" == "1" ]]; then
  # Incremental-maintenance differential leg: apply_delta vs rebuild
  # equivalence, inverse-delta undo, and thread-count byte-identity of
  # the dirty-region re-merge path, under release.
  for threads in 1 4; do
    echo "==> cargo test --release --test incremental_diff (XCLUSTER_TEST_THREADS=$threads)"
    XCLUSTER_TEST_THREADS="$threads" \
      cargo test -q --release -p xcluster-core --test incremental_diff
  done
fi

if [[ "$ACCURACY" == "1" ]]; then
  echo "==> accuracy regression gate (BENCH_accuracy.json, +10% tolerance)"
  cargo run --release -p xcluster-bench --bin experiments -- \
    bench-accuracy --gate BENCH_accuracy.json
fi

if [[ "$SERVE" == "1" ]]; then
  echo "==> serve smoke: ephemeral port, /metrics scrape, 1000 verified queries"
  XCLUSTER="target/release/xcluster"
  [[ -x "$XCLUSTER" ]] || cargo build --release -p xcluster-cli
  SMOKE_DIR="$(mktemp -d)"
  SERVE_PID=""
  cleanup() {
    [[ -n "$SERVE_PID" ]] && kill "$SERVE_PID" 2>/dev/null || true
    rm -rf "$SMOKE_DIR"
  }
  trap cleanup EXIT

  cat > "$SMOKE_DIR/doc.xml" <<'XML'
<bib>
<paper><year>1999</year><title>alpha beta</title><abstract>selectivity estimation for structured xml content</abstract></paper>
<paper><year>2003</year><title>gamma delta</title><abstract>histograms approximate value distributions compactly here</abstract></paper>
<paper><year>1987</year><title>epsilon</title><abstract>wavelet synopses for massive data streams</abstract></paper>
<paper><year>2010</year><title>zeta eta</title><abstract>pruned suffix trees summarize string content</abstract></paper>
</bib>
XML
  cat > "$SMOKE_DIR/queries.txt" <<'QUERIES'
//paper/year
//paper[year > 1999]/title
/bib/paper/abstract
//paper[year < 1990]
QUERIES
  "$XCLUSTER" build "$SMOKE_DIR/doc.xml" --b-str 2048 --b-val 4096 \
    -o "$SMOKE_DIR/syn.xcs"

  # Boot on an ephemeral port; the bound address is on stdout.
  "$XCLUSTER" serve "$SMOKE_DIR/syn.xcs" --addr 127.0.0.1:0 --workers 2 \
    > "$SMOKE_DIR/serve.out" 2> "$SMOKE_DIR/serve.err" &
  SERVE_PID=$!
  ADDR=""
  for _ in $(seq 1 100); do
    ADDR="$(sed -n 's|^listening on http://||p' "$SMOKE_DIR/serve.out" | tr -d '[:space:]')"
    [[ -n "$ADDR" ]] && break
    sleep 0.1
  done
  [[ -n "$ADDR" ]] || { echo "server never reported an address" >&2; exit 1; }

  # Scrape the live /metrics endpoint (bash /dev/tcp; no curl in CI)
  # and check the serve + footprint series are being exported.
  exec 3<>"/dev/tcp/${ADDR%:*}/${ADDR##*:}"
  printf 'GET /metrics HTTP/1.1\r\nHost: smoke\r\nConnection: close\r\n\r\n' >&3
  SCRAPE="$(cat <&3)"
  exec 3<&- 3>&-
  for series in xcluster_serve_requests_total xcluster_footprint_total_bytes \
                xcluster_build_final_struct_bytes; do
    grep -q "^$series " <<< "$SCRAPE" \
      || { echo "/metrics missing series $series" >&2; exit 1; }
  done

  # The one-shot exposition must carry the build series; the server's
  # live /metrics endpoint uses the same renderer.
  METRICS="$("$XCLUSTER" stats "$SMOKE_DIR/doc.xml" --prometheus)"
  grep -q '^xcluster_build_final_struct_bytes ' <<< "$METRICS" \
    || { echo "stats --prometheus missing build series" >&2; exit 1; }

  # 1000 verified queries: zero transport errors, zero bitwise
  # mismatches, then POST /shutdown for a clean exit.
  "$XCLUSTER" loadgen "$ADDR" --total 1000 --batch 50 \
    --verify "$SMOKE_DIR/syn.xcs" --queries-file "$SMOKE_DIR/queries.txt" \
    --shutdown
  wait "$SERVE_PID"
  SERVE_PID=""
  trap - EXIT
  cleanup
fi

if [[ "$JOURNAL" == "1" ]]; then
  echo "==> journal replay: 1000 served queries, bitwise offline replay"
  XCLUSTER="target/release/xcluster"
  [[ -x "$XCLUSTER" ]] || cargo build --release -p xcluster-cli
  JOURNAL_DIR="$(mktemp -d)"
  JOURNAL_PID=""
  journal_cleanup() {
    [[ -n "$JOURNAL_PID" ]] && kill "$JOURNAL_PID" 2>/dev/null || true
    rm -rf "$JOURNAL_DIR"
  }
  trap journal_cleanup EXIT

  cat > "$JOURNAL_DIR/doc.xml" <<'XML'
<bib>
<paper><year>1999</year><title>alpha beta</title><abstract>selectivity estimation for structured xml content</abstract></paper>
<paper><year>2003</year><title>gamma delta</title><abstract>histograms approximate value distributions compactly here</abstract></paper>
<paper><year>1987</year><title>epsilon</title><abstract>wavelet synopses for massive data streams</abstract></paper>
<paper><year>2010</year><title>zeta eta</title><abstract>pruned suffix trees summarize string content</abstract></paper>
</bib>
XML
  cat > "$JOURNAL_DIR/queries.txt" <<'QUERIES'
//paper/year
//paper[year > 1999]/title
/bib/paper/abstract
//paper[year < 1990]
QUERIES
  "$XCLUSTER" build "$JOURNAL_DIR/doc.xml" --b-str 2048 --b-val 4096 \
    -o "$JOURNAL_DIR/syn.xcs"

  # Full-rate journal sampling with room for every served query, so the
  # replay covers the complete 1000-query load.
  "$XCLUSTER" serve "$JOURNAL_DIR/syn.xcs" --addr 127.0.0.1:0 --workers 2 \
    --journal-capacity 2048 --journal-sample-ppm 1000000 \
    > "$JOURNAL_DIR/serve.out" 2> "$JOURNAL_DIR/serve.err" &
  JOURNAL_PID=$!
  ADDR=""
  for _ in $(seq 1 100); do
    ADDR="$(sed -n 's|^listening on http://||p' "$JOURNAL_DIR/serve.out" | tr -d '[:space:]')"
    [[ -n "$ADDR" ]] && break
    sleep 0.1
  done
  [[ -n "$ADDR" ]] || { echo "server never reported an address" >&2; exit 1; }

  "$XCLUSTER" loadgen "$ADDR" --total 1000 --batch 50 \
    --verify "$JOURNAL_DIR/syn.xcs" --queries-file "$JOURNAL_DIR/queries.txt"

  # Download the journal (bash /dev/tcp; no curl in CI), strip the HTTP
  # response head, then shut the server down cleanly.
  exec 3<>"/dev/tcp/${ADDR%:*}/${ADDR##*:}"
  printf 'GET /debug/journal HTTP/1.1\r\nHost: ci\r\nConnection: close\r\n\r\n' >&3
  cat <&3 | sed '1,/^\r\{0,1\}$/d' > "$JOURNAL_DIR/journal.jsonl"
  exec 3<&- 3>&-
  exec 3<>"/dev/tcp/${ADDR%:*}/${ADDR##*:}"
  printf 'POST /shutdown HTTP/1.1\r\nHost: ci\r\nContent-Length: 0\r\nConnection: close\r\n\r\n' >&3
  cat <&3 > /dev/null
  exec 3<&- 3>&-
  wait "$JOURNAL_PID"
  JOURNAL_PID=""

  LINES="$(wc -l < "$JOURNAL_DIR/journal.jsonl")"
  [[ "$LINES" == "1000" ]] \
    || { echo "journal holds $LINES records, expected 1000" >&2; exit 1; }

  # The replay subcommand exits nonzero on any bitwise mismatch.
  "$XCLUSTER" replay "$JOURNAL_DIR/journal.jsonl" "$JOURNAL_DIR/syn.xcs"
  trap - EXIT
  journal_cleanup
fi

echo "CI OK"
