#!/usr/bin/env bash
# Local mirror of the CI pipeline (.github/workflows/ci.yml):
# formatting, lints, release build, and the full test suite.
# Run from the repo root: ./scripts/ci.sh
#
# Pass --accuracy (or set XCLUSTER_CI_ACCURACY=1) to additionally rerun
# the pinned accuracy workload and gate against the committed
# BENCH_accuracy.json baseline: any per-class relative error worsening
# by more than 10% fails the script. Off by default because it adds a
# release build + workload evaluation to the loop.
set -euo pipefail
cd "$(dirname "$0")/.."

ACCURACY="${XCLUSTER_CI_ACCURACY:-0}"
for arg in "$@"; do
  case "$arg" in
    --accuracy) ACCURACY=1 ;;
    *) echo "unknown argument: $arg" >&2; exit 2 ;;
  esac
done

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test"
cargo test -q --workspace

# Thread-matrix leg: the differential suite (parallel builds and batch
# estimation byte-identical to sequential) under the release profile, so
# it exercises the real build sizes, at each thread count.
for threads in 1 4; do
  echo "==> cargo test --release --test parallel (XCLUSTER_TEST_THREADS=$threads)"
  XCLUSTER_TEST_THREADS="$threads" \
    cargo test -q --release -p xcluster-core --test parallel
done

if [[ "$ACCURACY" == "1" ]]; then
  echo "==> accuracy regression gate (BENCH_accuracy.json, +10% tolerance)"
  cargo run --release -p xcluster-bench --bin experiments -- \
    bench-accuracy --gate BENCH_accuracy.json
fi

echo "CI OK"
