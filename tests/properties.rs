//! Property-based tests (proptest) on the core invariants:
//! summary estimates stay in range under arbitrary data and compression,
//! merges preserve mass, and structural estimates on the reference
//! synopsis equal exact counts for arbitrary generated documents.

use proptest::prelude::*;
use xcluster_core::build::{build_synopsis, BuildConfig};
use xcluster_core::reference::{reference_synopsis, ReferenceConfig};
use xcluster_core::{estimate, merge};
use xcluster_query::{evaluate, EvalIndex, TwigQuery};
use xcluster_summaries::{Histogram, HistogramKind, Pst, ValuePredicate, ValueSummary};
use xcluster_xml::{Value, ValueType, XmlTree};

// -------------------------------------------------------------------
// Summary-level properties.
// -------------------------------------------------------------------

proptest! {
    #[test]
    fn histogram_selectivity_in_unit_range(
        values in prop::collection::vec(0u64..10_000, 1..200),
        lo in 0u64..12_000,
        width in 0u64..12_000,
        buckets in 1usize..40,
    ) {
        let h = Histogram::build(&values, buckets, HistogramKind::EquiDepth);
        let s = h.selectivity(lo, lo.saturating_add(width));
        prop_assert!((0.0..=1.0 + 1e-9).contains(&s), "{s}");
    }

    #[test]
    fn histogram_total_preserved_by_fusion(
        a in prop::collection::vec(0u64..1000, 1..100),
        b in prop::collection::vec(0u64..1000, 1..100),
    ) {
        let ha = Histogram::build(&a, 8, HistogramKind::EquiDepth);
        let hb = Histogram::build(&b, 8, HistogramKind::EquiDepth);
        let f = ha.fuse(&hb);
        prop_assert!((f.total() - (a.len() + b.len()) as f64).abs() < 1e-6);
        // Full-domain estimate equals the total.
        prop_assert!((f.estimate_range(0, 2000) - f.total()).abs() < 1e-6);
    }

    #[test]
    fn histogram_full_range_selectivity_is_one(
        values in prop::collection::vec(0u64..500, 1..100),
    ) {
        let h = Histogram::build(&values, 6, HistogramKind::EquiDepth);
        prop_assert!((h.selectivity(0, 1000) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn histogram_compression_keeps_total(
        values in prop::collection::vec(0u64..1000, 2..150),
        steps in 1usize..10,
    ) {
        let mut h = Histogram::build(&values, 16, HistogramKind::EquiDepth);
        let total = h.total();
        for _ in 0..steps {
            match h.best_collapse() {
                Some((i, _)) => h.merge_adjacent(i),
                None => break,
            }
        }
        prop_assert!((h.total() - total).abs() < 1e-9);
        prop_assert!((h.estimate_range(0, 2000) - total).abs() < 1e-6);
    }

    #[test]
    fn pst_retained_substrings_estimate_exactly(
        strings in prop::collection::vec("[a-d]{1,8}", 1..40),
    ) {
        let pst = Pst::build(&strings, 8);
        for s in &strings {
            let exact = strings.iter().filter(|t| t.contains(s.as_str())).count() as f64
                / strings.len() as f64;
            let est = pst.selectivity(s);
            prop_assert!((est - exact).abs() < 1e-9, "{s}: {est} vs {exact}");
        }
    }

    #[test]
    fn pst_estimates_in_unit_range_after_pruning(
        strings in prop::collection::vec("[a-e]{1,10}", 1..30),
        needle in "[a-f]{1,12}",
        keep in 0usize..40,
    ) {
        let mut pst = Pst::build(&strings, 6);
        pst.prune_to_size(keep);
        let s = pst.selectivity(&needle);
        prop_assert!((0.0..=1.0).contains(&s), "{s}");
    }

    #[test]
    fn pst_fusion_commutes(
        a in prop::collection::vec("[a-c]{1,6}", 1..20),
        b in prop::collection::vec("[a-c]{1,6}", 1..20),
    ) {
        let pa = Pst::build(&a, 6);
        let pb = Pst::build(&b, 6);
        let ab = pa.fuse(&pb);
        let ba = pb.fuse(&pa);
        for s in a.iter().chain(b.iter()) {
            prop_assert!((ab.selectivity(s) - ba.selectivity(s)).abs() < 1e-9);
        }
    }

    #[test]
    fn ebth_term_frequencies_bounded(
        texts in prop::collection::vec(
            prop::collection::vec(0u32..200, 0..10), 1..30),
        demote in 0usize..30,
    ) {
        use xcluster_xml::{Symbol, TermVector};
        let tvs: Vec<TermVector> = texts
            .iter()
            .map(|ids| ids.iter().map(|&i| Symbol(i)).collect())
            .collect();
        let mut e = xcluster_summaries::Ebth::from_vectors(tvs.iter());
        e.demote(demote);
        for t in 0..220u32 {
            let f = e.term_frequency(Symbol(t));
            prop_assert!((0.0..=1.0 + 1e-9).contains(&f), "term {t}: {f}");
        }
    }

    #[test]
    fn ebth_absent_terms_are_zero_at_any_compression(
        texts in prop::collection::vec(
            prop::collection::vec(0u32..50, 1..8), 1..20),
        demote in 0usize..20,
    ) {
        use xcluster_xml::{Symbol, TermVector};
        let tvs: Vec<TermVector> = texts
            .iter()
            .map(|ids| ids.iter().map(|&i| Symbol(i)).collect())
            .collect();
        let mut e = xcluster_summaries::Ebth::from_vectors(tvs.iter());
        e.demote(demote);
        // Terms 100+ never occur: the 0/1 uniform bucket must say zero.
        for t in 100..120u32 {
            prop_assert_eq!(e.term_frequency(Symbol(t)), 0.0);
        }
    }
}

// -------------------------------------------------------------------
// Document-level properties over randomly generated trees.
// -------------------------------------------------------------------

/// A random small document: labels from a tiny alphabet, values typed by
/// label, up to 3 levels of nesting.
fn arb_document() -> impl Strategy<Value = XmlTree> {
    // Each "record" is (label-variant, numeric value, fanout).
    let record = (0usize..3, 0u64..100, 1usize..4);
    prop::collection::vec((record, prop::collection::vec(0u64..50, 0..4)), 1..25).prop_map(
        |specs| {
            let mut t = XmlTree::new("root");
            let root = t.root();
            for ((variant, val, _fanout), leaves) in specs {
                let tag = ["a", "b", "c"][variant];
                let node = t.add_child(root, tag);
                let y = t.add_child(node, "y");
                t.set_value(y, Value::Numeric(val));
                for (i, lv) in leaves.iter().enumerate() {
                    let leaf = t.add_child(node, if i % 2 == 0 { "m" } else { "n" });
                    t.set_value(leaf, Value::Numeric(*lv));
                }
            }
            t
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn reference_structural_estimates_are_exact(tree in arb_document()) {
        let s = reference_synopsis(&tree, &ReferenceConfig::default());
        let idx = EvalIndex::build(&tree);
        for tag in ["a", "b", "c", "y", "m", "n"] {
            let mut q = TwigQuery::new();
            q.step(q.root(), xcluster_query::Axis::Descendant, tag);
            let est = estimate(&s, &q);
            let truth = evaluate(&q, &tree, &idx);
            prop_assert!((est - truth).abs() < 1e-6, "{tag}: {est} vs {truth}");
        }
    }

    #[test]
    fn build_never_underflows_budgets(tree in arb_document()) {
        let reference = reference_synopsis(&tree, &ReferenceConfig::default());
        let cfg = BuildConfig {
            b_str: 256,
            b_val: 256,
            ..BuildConfig::default()
        };
        let built = build_synopsis(reference, &cfg);
        built.check_consistency().unwrap();
        // Total element mass is invariant under merging.
        let mass: f64 = built.live_nodes().map(|i| built.node(i).count).sum();
        prop_assert!((mass - tree.len() as f64).abs() < 1e-6);
    }

    #[test]
    fn estimates_are_nonnegative_and_finite(tree in arb_document()) {
        let reference = reference_synopsis(&tree, &ReferenceConfig::default());
        let built = build_synopsis(
            reference,
            &BuildConfig { b_str: 128, b_val: 128, ..BuildConfig::default() },
        );
        let mut q = TwigQuery::new();
        let a = q.step(q.root(), xcluster_query::Axis::Descendant, "a");
        let y = q.step(a, xcluster_query::Axis::Child, "y");
        q.set_predicate(y, ValuePredicate::Range { lo: 10, hi: 60 });
        let est = estimate(&built, &q);
        prop_assert!(est.is_finite() && est >= 0.0, "{est}");
    }

    #[test]
    fn merge_preserves_expected_path_counts(tree in arb_document()) {
        // Merging two sibling clusters keeps root-level expected counts.
        let s = reference_synopsis(&tree, &ReferenceConfig::default());
        let groups = s.nodes_by_label_type();
        if let Some(ids) = groups.values().find(|v| v.len() >= 2) {
            let (u, v) = (ids[0], ids[1]);
            let mut q = TwigQuery::new();
            let label = s.label_str(u).to_string();
            q.step(q.root(), xcluster_query::Axis::Descendant, &label);
            let before = estimate(&s, &q);
            let mut s2 = s.clone();
            merge::apply_merge(&mut s2, u, v);
            let after = estimate(&s2, &q);
            prop_assert!((before - after).abs() < 1e-6 * before.max(1.0),
                "{label}: {before} vs {after}");
        }
    }
}

// -------------------------------------------------------------------
// ValueSummary dispatch properties.
// -------------------------------------------------------------------

proptest! {
    #[test]
    fn value_summary_selectivity_bounded_under_compression(
        values in prop::collection::vec(0u64..5000, 1..100),
        lo in 0u64..5000,
        width in 0u64..5000,
        compressions in 0usize..20,
    ) {
        let vals: Vec<Value> = values.iter().map(|&v| Value::Numeric(v)).collect();
        let refs: Vec<&Value> = vals.iter().collect();
        let mut s = ValueSummary::build(&refs, ValueType::Numeric).unwrap();
        for _ in 0..compressions {
            if s.apply_compression().is_none() {
                break;
            }
        }
        let sel = s.selectivity(&ValuePredicate::Range {
            lo,
            hi: lo.saturating_add(width),
        });
        prop_assert!((0.0..=1.0 + 1e-9).contains(&sel), "{sel}");
    }

    #[test]
    fn atomic_moments_are_symmetric_psd(
        a in prop::collection::vec(0u64..100, 1..50),
        b in prop::collection::vec(0u64..100, 1..50),
    ) {
        let va: Vec<Value> = a.iter().map(|&v| Value::Numeric(v)).collect();
        let vb: Vec<Value> = b.iter().map(|&v| Value::Numeric(v)).collect();
        let ra: Vec<&Value> = va.iter().collect();
        let rb: Vec<&Value> = vb.iter().collect();
        let sa = ValueSummary::build(&ra, ValueType::Numeric).unwrap();
        let sb = ValueSummary::build(&rb, ValueType::Numeric).unwrap();
        let m = sa.atomic_moments(&sb);
        // Squared distance is non-negative (Cauchy–Schwarz).
        prop_assert!(m.sq_distance() >= 0.0);
        // Swapping arguments transposes the moments.
        let mt = sb.atomic_moments(&sa);
        prop_assert!((m.sum_ab - mt.sum_ab).abs() < 1e-9);
        prop_assert!((m.sum_aa - mt.sum_bb).abs() < 1e-9);
    }
}

// -------------------------------------------------------------------
// Twig text-syntax round trips.
// -------------------------------------------------------------------

/// A random twig over a small tag alphabet with range/contains
/// predicates (ftcontains is excluded: term ids cannot round-trip
/// through text without the originating dictionary).
fn arb_twig() -> impl Strategy<Value = TwigQuery> {
    use xcluster_query::{Axis, LabelTest, NodeKind};
    let step = (
        0usize..4,         // parent selector (mod current size)
        prop::bool::ANY,   // descendant axis?
        0usize..5,         // label index (4 = wildcard)
        0usize..3,         // kind: 0,1 variable; 2 filter
        prop::option::of((0u64..100, 0u64..100, prop::bool::ANY)),
    );
    prop::collection::vec(step, 1..8).prop_map(|steps| {
        let mut q = TwigQuery::new();
        for (psel, desc, label, kind, pred) in steps {
            let parent = psel % q.len();
            // Keep filters existential: force filter kind under filters.
            let parent_is_filter = parent != 0 && q.node(parent).kind == NodeKind::Filter;
            let kind = if kind == 2 || parent_is_filter {
                NodeKind::Filter
            } else {
                NodeKind::Variable
            };
            let label = match label {
                4 => LabelTest::Wildcard,
                i => LabelTest::Tag(["a", "b", "c", "d"][i].to_string()),
            };
            let axis = if desc { Axis::Descendant } else { Axis::Child };
            let id = q.add_step(parent, axis, label, kind);
            if let Some((lo, span, string_pred)) = pred {
                if string_pred {
                    q.set_predicate(
                        id,
                        ValuePredicate::Contains {
                            needle: format!("n{lo}"),
                        },
                    );
                } else {
                    q.set_predicate(
                        id,
                        ValuePredicate::Range {
                            lo,
                            hi: lo + span,
                        },
                    );
                }
            }
        }
        q
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn twig_display_round_trips(q in arb_twig()) {
        let terms = xcluster_xml::Interner::new();
        let text = q.to_string();
        let reparsed = xcluster_query::parse_twig(&text, &terms)
            .unwrap_or_else(|e| panic!("reparse of {text:?} failed: {e}"));
        // Display is a normal form: printing again must be identical.
        prop_assert_eq!(reparsed.to_string(), text);
        prop_assert_eq!(reparsed.len(), q.len());
        prop_assert_eq!(reparsed.num_variables(), q.num_variables());
    }

    #[test]
    fn twig_round_trip_preserves_semantics(q in arb_twig()) {
        // Evaluating the original and the reparsed twig on a fixed small
        // document gives the same count.
        let doc = xcluster_xml::parse(
            "<r><a><b>5</b><c>n7</c></a><a><b>50</b></a><d><a><b>5</b></a></d></r>",
        ).unwrap();
        let idx = EvalIndex::build(&doc);
        let reparsed = xcluster_query::parse_twig(&q.to_string(), doc.terms()).unwrap();
        prop_assert_eq!(evaluate(&q, &doc, &idx), evaluate(&reparsed, &doc, &idx));
    }
}
