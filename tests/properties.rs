//! Randomized property tests on the core invariants — summary estimates
//! stay in range under arbitrary data and compression, merges preserve
//! mass, and structural estimates on the reference synopsis equal exact
//! counts for arbitrary generated documents.
//!
//! Originally written with proptest; the offline build environment has
//! no crates.io access, so the same properties are now driven by the
//! in-repo deterministic PRNG: each case is generated from a fixed seed
//! and the failing seed is reported on panic, which keeps failures
//! reproducible (`CASES` controls the per-property case count).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use xcluster_core::build::{build_synopsis, try_build_synopsis, BuildConfig};
use xcluster_core::codec::encode_synopsis;
use xcluster_core::reference::{reference_synopsis, ReferenceConfig};
use xcluster_core::{estimate, merge};
use xcluster_query::{evaluate, EvalIndex, TwigQuery};
use xcluster_summaries::{Histogram, HistogramKind, Pst, ValuePredicate, ValueSummary};
use xcluster_xml::{Value, ValueType, XmlTree};

const CASES: u64 = 64;

/// Runs `body` for `cases` seeds, wrapping panics with the failing seed.
fn for_cases(cases: u64, body: impl Fn(&mut StdRng)) {
    for seed in 0..cases {
        let mut rng = StdRng::seed_from_u64(0xB175_0000 ^ seed);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(&mut rng)));
        if let Err(e) = result {
            eprintln!("property failed for case seed {seed}");
            std::panic::resume_unwind(e);
        }
    }
}

fn vec_u64(rng: &mut StdRng, max_len: usize, max_val: u64) -> Vec<u64> {
    let len = rng.gen_range(1..=max_len);
    (0..len).map(|_| rng.gen_range(0..max_val)).collect()
}

fn rand_string(rng: &mut StdRng, alphabet: &[u8], max_len: usize) -> String {
    let len = rng.gen_range(1..=max_len);
    (0..len)
        .map(|_| alphabet[rng.gen_range(0..alphabet.len())] as char)
        .collect()
}

// -------------------------------------------------------------------
// Summary-level properties.
// -------------------------------------------------------------------

#[test]
fn histogram_selectivity_in_unit_range() {
    for_cases(CASES * 2, |rng| {
        let values = vec_u64(rng, 200, 10_000);
        let lo = rng.gen_range(0u64..12_000);
        let width = rng.gen_range(0u64..12_000);
        let buckets = rng.gen_range(1usize..40);
        let h = Histogram::build(&values, buckets, HistogramKind::EquiDepth);
        let s = h.selectivity(lo, lo.saturating_add(width));
        assert!((0.0..=1.0 + 1e-9).contains(&s), "{s}");
    });
}

#[test]
fn histogram_total_preserved_by_fusion() {
    for_cases(CASES, |rng| {
        let a = vec_u64(rng, 100, 1000);
        let b = vec_u64(rng, 100, 1000);
        let ha = Histogram::build(&a, 8, HistogramKind::EquiDepth);
        let hb = Histogram::build(&b, 8, HistogramKind::EquiDepth);
        let f = ha.fuse(&hb);
        assert!((f.total() - (a.len() + b.len()) as f64).abs() < 1e-6);
        // Full-domain estimate equals the total.
        assert!((f.estimate_range(0, 2000) - f.total()).abs() < 1e-6);
    });
}

#[test]
fn histogram_full_range_selectivity_is_one() {
    for_cases(CASES, |rng| {
        let values = vec_u64(rng, 100, 500);
        let h = Histogram::build(&values, 6, HistogramKind::EquiDepth);
        assert!((h.selectivity(0, 1000) - 1.0).abs() < 1e-9);
    });
}

#[test]
fn histogram_compression_keeps_total() {
    for_cases(CASES, |rng| {
        let mut values = vec_u64(rng, 150, 1000);
        if values.len() < 2 {
            values.push(7);
        }
        let steps = rng.gen_range(1usize..10);
        let mut h = Histogram::build(&values, 16, HistogramKind::EquiDepth);
        let total = h.total();
        for _ in 0..steps {
            match h.best_collapse() {
                Some((i, _)) => h.merge_adjacent(i),
                None => break,
            }
        }
        assert!((h.total() - total).abs() < 1e-9);
        assert!((h.estimate_range(0, 2000) - total).abs() < 1e-6);
    });
}

#[test]
fn pst_retained_substrings_estimate_exactly() {
    for_cases(CASES, |rng| {
        let n = rng.gen_range(1usize..40);
        let strings: Vec<String> = (0..n).map(|_| rand_string(rng, b"abcd", 8)).collect();
        let pst = Pst::build(&strings, 8);
        for s in &strings {
            let exact = strings.iter().filter(|t| t.contains(s.as_str())).count() as f64
                / strings.len() as f64;
            let est = pst.selectivity(s);
            assert!((est - exact).abs() < 1e-9, "{s}: {est} vs {exact}");
        }
    });
}

#[test]
fn pst_estimates_in_unit_range_after_pruning() {
    for_cases(CASES, |rng| {
        let n = rng.gen_range(1usize..30);
        let strings: Vec<String> = (0..n).map(|_| rand_string(rng, b"abcde", 10)).collect();
        let needle = rand_string(rng, b"abcdef", 12);
        let keep = rng.gen_range(0usize..40);
        let mut pst = Pst::build(&strings, 6);
        pst.prune_to_size(keep);
        let s = pst.selectivity(&needle);
        assert!((0.0..=1.0).contains(&s), "{s}");
    });
}

#[test]
fn pst_fusion_commutes() {
    for_cases(CASES, |rng| {
        let na = rng.gen_range(1usize..20);
        let nb = rng.gen_range(1usize..20);
        let a: Vec<String> = (0..na).map(|_| rand_string(rng, b"abc", 6)).collect();
        let b: Vec<String> = (0..nb).map(|_| rand_string(rng, b"abc", 6)).collect();
        let pa = Pst::build(&a, 6);
        let pb = Pst::build(&b, 6);
        let ab = pa.fuse(&pb);
        let ba = pb.fuse(&pa);
        for s in a.iter().chain(b.iter()) {
            assert!((ab.selectivity(s) - ba.selectivity(s)).abs() < 1e-9);
        }
    });
}

#[test]
fn ebth_term_frequencies_bounded() {
    use xcluster_xml::{Symbol, TermVector};
    for_cases(CASES, |rng| {
        let n_texts = rng.gen_range(1usize..30);
        let tvs: Vec<TermVector> = (0..n_texts)
            .map(|_| {
                let len = rng.gen_range(0usize..10);
                (0..len).map(|_| Symbol(rng.gen_range(0u32..200))).collect()
            })
            .collect();
        let demote = rng.gen_range(0usize..30);
        let mut e = xcluster_summaries::Ebth::from_vectors(tvs.iter());
        e.demote(demote);
        for t in 0..220u32 {
            let f = e.term_frequency(Symbol(t));
            assert!((0.0..=1.0 + 1e-9).contains(&f), "term {t}: {f}");
        }
    });
}

#[test]
fn ebth_absent_terms_are_zero_at_any_compression() {
    use xcluster_xml::{Symbol, TermVector};
    for_cases(CASES, |rng| {
        let n_texts = rng.gen_range(1usize..20);
        let tvs: Vec<TermVector> = (0..n_texts)
            .map(|_| {
                let len = rng.gen_range(1usize..8);
                (0..len).map(|_| Symbol(rng.gen_range(0u32..50))).collect()
            })
            .collect();
        let demote = rng.gen_range(0usize..20);
        let mut e = xcluster_summaries::Ebth::from_vectors(tvs.iter());
        e.demote(demote);
        // Terms 100+ never occur: the 0/1 uniform bucket must say zero.
        for t in 100..120u32 {
            assert_eq!(e.term_frequency(Symbol(t)), 0.0);
        }
    });
}

// -------------------------------------------------------------------
// Document-level properties over randomly generated trees.
// -------------------------------------------------------------------

/// A random small document: labels from a tiny alphabet, values typed by
/// label, up to 3 levels of nesting.
fn arb_document(rng: &mut StdRng) -> XmlTree {
    let mut t = XmlTree::new("root");
    let root = t.root();
    let records = rng.gen_range(1usize..25);
    for _ in 0..records {
        let tag = ["a", "b", "c"][rng.gen_range(0usize..3)];
        let node = t.add_child(root, tag);
        let y = t.add_child(node, "y");
        t.set_value(y, Value::Numeric(rng.gen_range(0u64..100)));
        let leaves = rng.gen_range(0usize..4);
        for i in 0..leaves {
            let leaf = t.add_child(node, if i % 2 == 0 { "m" } else { "n" });
            t.set_value(leaf, Value::Numeric(rng.gen_range(0u64..50)));
        }
    }
    t
}

#[test]
fn reference_structural_estimates_are_exact() {
    for_cases(CASES, |rng| {
        let tree = arb_document(rng);
        let s = reference_synopsis(&tree, &ReferenceConfig::default());
        let idx = EvalIndex::build(&tree);
        for tag in ["a", "b", "c", "y", "m", "n"] {
            let mut q = TwigQuery::new();
            q.step(q.root(), xcluster_query::Axis::Descendant, tag);
            let est = estimate(&s, &q);
            let truth = evaluate(&q, &tree, &idx);
            assert!((est - truth).abs() < 1e-6, "{tag}: {est} vs {truth}");
        }
    });
}

#[test]
fn build_never_underflows_budgets() {
    for_cases(CASES, |rng| {
        let tree = arb_document(rng);
        let reference = reference_synopsis(&tree, &ReferenceConfig::default());
        let cfg = BuildConfig {
            b_str: 256,
            b_val: 256,
            ..BuildConfig::default()
        };
        let built = build_synopsis(reference, &cfg);
        built.check_consistency().unwrap();
        // Total element mass is invariant under merging.
        let mass: f64 = built.live_nodes().map(|i| built.node(i).count).sum();
        assert!((mass - tree.len() as f64).abs() < 1e-6);
    });
}

/// A random `BuildConfig` — deliberately including invalid pool/chunk
/// parameters and every thread-count mode (0 = auto) — so the build
/// either returns a config error or an in-budget synopsis, never panics.
fn arb_build_config(rng: &mut StdRng) -> BuildConfig {
    BuildConfig {
        b_str: rng.gen_range(0usize..4096),
        b_val: rng.gen_range(0usize..4096),
        h_m: rng.gen_range(0usize..64),
        h_l: rng.gen_range(0usize..96),
        min_value_chunk: rng.gen_range(0usize..256),
        threads: rng.gen_range(0usize..5),
    }
}

/// Checks one (document, config) case. Invariants: no panic; invalid
/// configs are rejected exactly when `validate()` rejects them; a
/// successful build is consistent and either meets the structural budget
/// or has fully collapsed to the tag partition (every `(label, type)`
/// group a single cluster — nothing left to merge).
fn check_build_case(tree: &XmlTree, cfg: &BuildConfig) -> Result<(), String> {
    let reference = reference_synopsis(tree, &ReferenceConfig::default());
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        try_build_synopsis(reference, cfg)
    }));
    match outcome {
        Err(_) => Err("build panicked".to_string()),
        Ok(Err(e)) => {
            if cfg.validate().is_err() {
                Ok(())
            } else {
                Err(format!("valid config rejected: {e}"))
            }
        }
        Ok(Ok(built)) => {
            if cfg.validate().is_err() {
                return Err("invalid config accepted".to_string());
            }
            built
                .check_consistency()
                .map_err(|e| format!("inconsistent synopsis: {e:?}"))?;
            let fully_collapsed = built
                .nodes_by_label_type()
                .values()
                .all(|ids| ids.len() == 1);
            if built.structural_bytes() > cfg.b_str && !fully_collapsed {
                return Err(format!(
                    "structural bytes {} exceed budget {} with merges still available",
                    built.structural_bytes(),
                    cfg.b_str
                ));
            }
            Ok(())
        }
    }
}

/// Greedy shrink: repeatedly halve each config field while the case
/// keeps failing, so the panic message carries a minimal reproduction
/// instead of the raw random config.
fn shrink_config(tree: &XmlTree, mut cfg: BuildConfig) -> BuildConfig {
    loop {
        let mut shrunk = false;
        for field in 0..6 {
            let mut candidate = cfg.clone();
            let v = match field {
                0 => &mut candidate.b_str,
                1 => &mut candidate.b_val,
                2 => &mut candidate.h_m,
                3 => &mut candidate.h_l,
                4 => &mut candidate.min_value_chunk,
                _ => &mut candidate.threads,
            };
            if *v == 0 {
                continue;
            }
            *v /= 2;
            if check_build_case(tree, &candidate).is_err() {
                cfg = candidate;
                shrunk = true;
            }
        }
        if !shrunk {
            return cfg;
        }
    }
}

#[test]
fn random_build_configs_never_panic_and_respect_budget() {
    for_cases(CASES, |rng| {
        let tree = arb_document(rng);
        let cfg = arb_build_config(rng);
        if let Err(msg) = check_build_case(&tree, &cfg) {
            let minimal = shrink_config(&tree, cfg.clone());
            panic!(
                "property failed: {msg}\n  original config: {cfg:?}\n  minimal failing config: {minimal:?}"
            );
        }
    });
}

#[test]
fn parallel_build_matches_sequential_on_random_documents() {
    for_cases(CASES / 2, |rng| {
        let tree = arb_document(rng);
        let reference = reference_synopsis(&tree, &ReferenceConfig::default());
        let cfg = BuildConfig {
            b_str: rng.gen_range(0usize..2048),
            b_val: rng.gen_range(0usize..2048),
            ..BuildConfig::default()
        };
        let threads = rng.gen_range(2usize..6);
        let seq = build_synopsis(reference.clone(), &cfg);
        let par = build_synopsis(reference, &BuildConfig { threads, ..cfg });
        assert_eq!(
            encode_synopsis(&par),
            encode_synopsis(&seq),
            "parallel build diverged at {threads} threads"
        );
    });
}

#[test]
fn estimates_are_nonnegative_and_finite() {
    for_cases(CASES, |rng| {
        let tree = arb_document(rng);
        let reference = reference_synopsis(&tree, &ReferenceConfig::default());
        let built = build_synopsis(
            reference,
            &BuildConfig {
                b_str: 128,
                b_val: 128,
                ..BuildConfig::default()
            },
        );
        let mut q = TwigQuery::new();
        let a = q.step(q.root(), xcluster_query::Axis::Descendant, "a");
        let y = q.step(a, xcluster_query::Axis::Child, "y");
        q.set_predicate(y, ValuePredicate::Range { lo: 10, hi: 60 });
        let est = estimate(&built, &q);
        assert!(est.is_finite() && est >= 0.0, "{est}");
    });
}

#[test]
fn merge_preserves_expected_path_counts() {
    for_cases(CASES, |rng| {
        // Merging two sibling clusters keeps root-level expected counts.
        let tree = arb_document(rng);
        let s = reference_synopsis(&tree, &ReferenceConfig::default());
        let groups = s.nodes_by_label_type();
        if let Some(ids) = groups.values().find(|v| v.len() >= 2) {
            let (u, v) = (ids[0], ids[1]);
            let mut q = TwigQuery::new();
            let label = s.label_str(u).to_string();
            q.step(q.root(), xcluster_query::Axis::Descendant, &label);
            let before = estimate(&s, &q);
            let mut s2 = s.clone();
            merge::apply_merge(&mut s2, u, v);
            let after = estimate(&s2, &q);
            assert!(
                (before - after).abs() < 1e-6 * before.max(1.0),
                "{label}: {before} vs {after}"
            );
        }
    });
}

/// `explain` is a view over the estimator's own trace, so its total must
/// be *bitwise* identical to `estimate` — not merely close — for every
/// query of a seeded workload, with per-node targets sorted by
/// descending expectation.
#[test]
fn explain_total_is_bitwise_equal_to_estimate() {
    let d = xcluster_datagen::imdb::generate(&xcluster_datagen::imdb::ImdbConfig {
        num_movies: 40,
        seed: 23,
    });
    let reference = reference_synopsis(
        &d.tree,
        &ReferenceConfig {
            value_paths: Some(d.value_paths.clone()),
            ..ReferenceConfig::default()
        },
    );
    let built = build_synopsis(
        reference,
        &BuildConfig {
            b_str: 4 * 1024,
            b_val: 8 * 1024,
            ..BuildConfig::default()
        },
    );
    let idx = EvalIndex::build(&d.tree);
    let w = xcluster_query::workload::generate_positive(
        &d.tree,
        &idx,
        &xcluster_query::WorkloadConfig {
            num_queries: 50,
            seed: 23,
            allowed_targets: Some(d.summarized_targets()),
            ..xcluster_query::WorkloadConfig::default()
        },
    );
    assert!(!w.queries.is_empty());
    for wq in &w.queries {
        let est = estimate(&built, &wq.query);
        let ex = xcluster_core::explain(&built, &wq.query);
        assert_eq!(
            ex.total.to_bits(),
            est.to_bits(),
            "{}: {} vs {}",
            wq.query,
            ex.total,
            est
        );
        for node in &ex.nodes {
            for pair in node.targets.windows(2) {
                assert!(
                    pair[0].expected >= pair[1].expected,
                    "{}: q{} targets out of order ({} before {})",
                    wq.query,
                    node.qnode,
                    pair[0].expected,
                    pair[1].expected
                );
            }
        }
    }
}

/// Incremental maintenance is exactly invertible while no budget pass
/// runs: on the (unmerged) reference synopsis, applying a random
/// insert-only delta and then its inverse restores every structural and
/// predicate estimate *bitwise*. Counts stay integral, edge averages
/// reconstruct through exact integer pair totals, and value summaries
/// observe/retract losslessly, so any drift here is a real defect in
/// `apply_delta` rather than float noise.
#[test]
fn delta_then_inverse_restores_reference_estimates_bitwise() {
    use xcluster_core::{apply_delta, apply_to_tree, inverse_delta};
    let lifted = BuildConfig {
        b_str: usize::MAX / 2,
        b_val: usize::MAX / 2,
        ..BuildConfig::default()
    };
    for_cases(CASES / 2, |rng| {
        let tree = arb_document(rng);
        let s0 = reference_synopsis(&tree, &ReferenceConfig::default());
        let delta = xcluster_datagen::deltas::generate_delta(
            &tree,
            &xcluster_datagen::deltas::DeltaConfig {
                churn: 0.1,
                insert_fraction: 1.0,
                seed: rng.gen(),
                ..xcluster_datagen::deltas::DeltaConfig::default()
            },
        );
        if delta.is_empty() {
            return;
        }
        let patch = apply_to_tree(&tree, &delta);
        let mut s = s0.clone();
        apply_delta(&mut s, &tree, &delta, &lifted);
        let inverse = inverse_delta(&tree, &delta, &patch);
        apply_delta(&mut s, &patch.tree, &inverse, &lifted);
        assert_eq!(s.live_nodes().count(), s0.live_nodes().count());
        assert_eq!(s.version(), 2);
        for tag in ["a", "b", "c", "y", "m", "n"] {
            let mut q = TwigQuery::new();
            q.step(q.root(), xcluster_query::Axis::Descendant, tag);
            let (got, want) = (estimate(&s, &q), estimate(&s0, &q));
            assert_eq!(got.to_bits(), want.to_bits(), "{tag}: {got} vs {want}");
        }
        let mut q = TwigQuery::new();
        let a = q.step(q.root(), xcluster_query::Axis::Descendant, "a");
        let y = q.step(a, xcluster_query::Axis::Child, "y");
        q.set_predicate(y, ValuePredicate::Range { lo: 10, hi: 60 });
        let (got, want) = (estimate(&s, &q), estimate(&s0, &q));
        assert_eq!(got.to_bits(), want.to_bits(), "predicate: {got} vs {want}");
    });
}

// -------------------------------------------------------------------
// ValueSummary dispatch properties.
// -------------------------------------------------------------------

#[test]
fn value_summary_selectivity_bounded_under_compression() {
    for_cases(CASES, |rng| {
        let values = vec_u64(rng, 100, 5000);
        let lo = rng.gen_range(0u64..5000);
        let width = rng.gen_range(0u64..5000);
        let compressions = rng.gen_range(0usize..20);
        let vals: Vec<Value> = values.iter().map(|&v| Value::Numeric(v)).collect();
        let refs: Vec<&Value> = vals.iter().collect();
        let mut s = ValueSummary::build(&refs, ValueType::Numeric).unwrap();
        for _ in 0..compressions {
            if s.apply_compression().is_none() {
                break;
            }
        }
        let sel = s.selectivity(&ValuePredicate::Range {
            lo,
            hi: lo.saturating_add(width),
        });
        assert!((0.0..=1.0 + 1e-9).contains(&sel), "{sel}");
    });
}

#[test]
fn atomic_moments_are_symmetric_psd() {
    for_cases(CASES, |rng| {
        let a = vec_u64(rng, 50, 100);
        let b = vec_u64(rng, 50, 100);
        let va: Vec<Value> = a.iter().map(|&v| Value::Numeric(v)).collect();
        let vb: Vec<Value> = b.iter().map(|&v| Value::Numeric(v)).collect();
        let ra: Vec<&Value> = va.iter().collect();
        let rb: Vec<&Value> = vb.iter().collect();
        let sa = ValueSummary::build(&ra, ValueType::Numeric).unwrap();
        let sb = ValueSummary::build(&rb, ValueType::Numeric).unwrap();
        let m = sa.atomic_moments(&sb);
        // Squared distance is non-negative (Cauchy–Schwarz).
        assert!(m.sq_distance() >= 0.0);
        // Swapping arguments transposes the moments.
        let mt = sb.atomic_moments(&sa);
        assert!((m.sum_ab - mt.sum_ab).abs() < 1e-9);
        assert!((m.sum_aa - mt.sum_bb).abs() < 1e-9);
    });
}

// -------------------------------------------------------------------
// Twig text-syntax round trips.
// -------------------------------------------------------------------

/// A random twig over a small tag alphabet with range/contains
/// predicates (ftcontains is excluded: term ids cannot round-trip
/// through text without the originating dictionary).
fn arb_twig(rng: &mut StdRng) -> TwigQuery {
    use xcluster_query::{Axis, LabelTest, NodeKind};
    let mut q = TwigQuery::new();
    let steps = rng.gen_range(1usize..8);
    for _ in 0..steps {
        let parent = rng.gen_range(0usize..4) % q.len();
        // Keep filters existential: force filter kind under filters.
        let parent_is_filter = parent != 0 && q.node(parent).kind == NodeKind::Filter;
        let kind = if rng.gen_range(0usize..3) == 2 || parent_is_filter {
            NodeKind::Filter
        } else {
            NodeKind::Variable
        };
        let label = match rng.gen_range(0usize..5) {
            4 => LabelTest::Wildcard,
            i => LabelTest::Tag(["a", "b", "c", "d"][i].to_string()),
        };
        let axis = if rng.gen_bool(0.5) {
            Axis::Descendant
        } else {
            Axis::Child
        };
        let id = q.add_step(parent, axis, label, kind);
        if rng.gen_bool(0.5) {
            let lo = rng.gen_range(0u64..100);
            if rng.gen_bool(0.5) {
                q.set_predicate(
                    id,
                    ValuePredicate::Contains {
                        needle: format!("n{lo}"),
                    },
                );
            } else {
                q.set_predicate(
                    id,
                    ValuePredicate::Range {
                        lo,
                        hi: lo + rng.gen_range(0u64..100),
                    },
                );
            }
        }
    }
    q
}

#[test]
fn twig_display_round_trips() {
    for_cases(CASES * 2, |rng| {
        let q = arb_twig(rng);
        let terms = xcluster_xml::Interner::new();
        let text = q.to_string();
        let reparsed = xcluster_query::parse_twig(&text, &terms)
            .unwrap_or_else(|e| panic!("reparse of {text:?} failed: {e}"));
        // Display is a normal form: printing again must be identical.
        assert_eq!(reparsed.to_string(), text);
        assert_eq!(reparsed.len(), q.len());
        assert_eq!(reparsed.num_variables(), q.num_variables());
    });
}

#[test]
fn twig_round_trip_preserves_semantics() {
    for_cases(CASES * 2, |rng| {
        let q = arb_twig(rng);
        // Evaluating the original and the reparsed twig on a fixed small
        // document gives the same count.
        let doc = xcluster_xml::parse(
            "<r><a><b>5</b><c>n7</c></a><a><b>50</b></a><d><a><b>5</b></a></d></r>",
        )
        .unwrap();
        let idx = EvalIndex::build(&doc);
        let reparsed = xcluster_query::parse_twig(&q.to_string(), doc.terms()).unwrap();
        assert_eq!(evaluate(&q, &doc, &idx), evaluate(&reparsed, &doc, &idx));
    });
}
