//! Call-path profiling over the real build pipeline.
//!
//! The acceptance contract for `obs::profile`: a profiled build's
//! per-phase inclusive totals must reconcile with the
//! `build.phase{1,2}_ns` histograms (the `SpanTimer` closes its
//! profiler frame with the same duration it records, so the totals are
//! identical by construction — asserted here within the 1% contract),
//! the collapsed-stack export must partition each phase's inclusive
//! time, and profiling must not perturb build determinism.
//!
//! These tests share the process-global profile table and the global
//! registry histograms, so they serialize on one lock and this file
//! deliberately contains every test that profiles a build.

use std::sync::Mutex;
use xcluster_core::build::{build_synopsis, BuildConfig};
use xcluster_core::reference::{reference_synopsis, ReferenceConfig};
use xcluster_core::Synopsis;
use xcluster_obs::profile;

static PROFILE_LOCK: Mutex<()> = Mutex::new(());

fn imdb_synopsis() -> Synopsis {
    let d = xcluster_datagen::imdb::generate(&xcluster_datagen::imdb::ImdbConfig {
        num_movies: 60,
        seed: 11,
    });
    reference_synopsis(&d.tree, &ReferenceConfig::default())
}

fn build_cfg(s: &Synopsis, threads: usize) -> BuildConfig {
    BuildConfig {
        b_str: s.structural_bytes() / 4,
        b_val: s.value_bytes() / 8,
        threads,
        ..BuildConfig::default()
    }
}

/// Sums the collapsed-stack weights of every line under `prefix`.
fn collapsed_subtree_ns(collapsed: &str, prefix: &str) -> u64 {
    collapsed
        .lines()
        .filter_map(|line| {
            let (path, ns) = line.rsplit_once(' ')?;
            (path == prefix || path.starts_with(&format!("{prefix};")))
                .then(|| ns.parse::<u64>().unwrap())
        })
        .sum()
}

#[test]
fn profiled_build_reconciles_with_phase_histograms() {
    let _g = PROFILE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    xcluster_obs::set_enabled(true);
    profile::set_profiling(true);
    profile::reset();

    let h1 = xcluster_obs::histogram("build.phase1_ns");
    let h2 = xcluster_obs::histogram("build.phase2_ns");
    let ht = xcluster_obs::histogram("build.total_ns");
    let chunks = xcluster_obs::counter("build.value_chunks");
    let (b1, b2, bt) = (h1.snapshot().sum, h2.snapshot().sum, ht.snapshot().sum);
    let chunks_before = chunks.get();

    let s = imdb_synopsis();
    let built = build_synopsis(s.clone(), &build_cfg(&s, 1));
    assert!(built.num_nodes() > 0);

    let (d1, d2, dt) = (
        h1.snapshot().sum - b1,
        h2.snapshot().sum - b2,
        ht.snapshot().sum - bt,
    );
    let p = profile::snapshot();
    profile::set_profiling(false);

    let (p1, _) = p
        .find(&["build.total", "build.phase1"])
        .expect("phase1 path");
    let (p2, _) = p
        .find(&["build.total", "build.phase2"])
        .expect("phase2 path");
    let (pt, _) = p.find(&["build.total"]).expect("total path");
    let within = |a: u64, b: u64, what: &str| {
        let rel = (a as f64 - b as f64).abs() / (b as f64).max(1.0);
        assert!(
            rel <= 0.01,
            "{what}: profile {a} vs histogram {b} ({rel:.4})"
        );
    };
    assert!(d1 > 0 && d2 > 0, "build must exercise both phases");
    within(p1, d1, "phase1");
    within(p2, d2, "phase2");
    within(pt, dt, "total");

    // The deep instrumentation is present and nested where it belongs
    // (threads = 1, so scoring nests under the refill).
    for path in [
        vec!["build.total", "build.phase1", "merge_round"],
        vec![
            "build.total",
            "build.phase1",
            "merge_round",
            "pool_refill",
            "score_group",
        ],
        vec![
            "build.total",
            "build.phase1",
            "merge_round",
            "pool_drain",
            "apply_merge",
        ],
        vec!["build.total", "build.phase2", "chunk_heap_init"],
    ] {
        assert!(p.find(&path).is_some(), "missing call path {path:?}");
    }
    // The chunk-drain loop only runs when post-merge value bytes still
    // exceed the budget; when it did, its frames must be in the profile.
    if chunks.get() > chunks_before {
        assert!(
            p.find(&["build.total", "build.phase2", "value_chunk"])
                .is_some(),
            "chunks were applied but the value_chunk path is missing"
        );
    }

    // Collapsed-stack weights are exclusive times: the subtree under a
    // phase sums back to that phase's inclusive time.
    let collapsed = p.collapsed();
    within(
        collapsed_subtree_ns(&collapsed, "build.total;build.phase1"),
        p1,
        "collapsed phase1 subtree",
    );
    within(
        collapsed_subtree_ns(&collapsed, "build.total;build.phase2"),
        p2,
        "collapsed phase2 subtree",
    );
    within(
        collapsed_subtree_ns(&collapsed, "build.total"),
        pt,
        "collapsed total",
    );
    assert_eq!(p.dropped(), 0, "build paths fit the default table");
}

#[test]
fn profiling_does_not_perturb_build_output() {
    let _g = PROFILE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    xcluster_obs::set_enabled(true);
    let s = imdb_synopsis();
    let cfg = build_cfg(&s, 1);

    profile::set_profiling(false);
    let plain = xcluster_core::codec::encode_synopsis(&build_synopsis(s.clone(), &cfg));

    profile::set_profiling(true);
    profile::reset();
    let profiled_seq = build_synopsis(s.clone(), &cfg);
    let profiled_par = build_synopsis(s, &BuildConfig { threads: 4, ..cfg });
    let p = profile::snapshot();
    profile::set_profiling(false);

    assert_eq!(
        xcluster_core::codec::encode_synopsis(&profiled_seq),
        plain,
        "profiling must not change the build"
    );
    assert_eq!(
        xcluster_core::codec::encode_synopsis(&profiled_par),
        plain,
        "profiled parallel build stays byte-identical"
    );
    // Worker-thread scoring frames rooted their own stacks and merged
    // into the global profile when the workers exited.
    assert!(p.total_ns("score_group") > 0);
}
