//! Cross-crate integration tests: generators → reference synopsis →
//! XClusterBuild → estimation, scored against the exact evaluator.

use xcluster_core::build::{build_synopsis, BuildConfig};
use xcluster_core::metrics::{evaluate_workload, relative_error, EvalOptions};
use xcluster_core::reference::{reference_synopsis, ReferenceConfig};
use xcluster_core::{estimate, Synopsis};
use xcluster_datagen::{imdb, xmark, Dataset};
use xcluster_query::{parse_twig, workload, EvalIndex, QueryClass, WorkloadConfig};
use xcluster_xml::NodeId;

fn imdb_dataset() -> Dataset {
    imdb::generate(&imdb::ImdbConfig {
        num_movies: 140,
        seed: 1001,
    })
}

fn xmark_dataset() -> Dataset {
    xmark::generate(&xmark::XmarkConfig {
        items: 150,
        persons: 130,
        open_auctions: 100,
        closed_auctions: 70,
        categories: 20,
        seed: 1002,
    })
}

fn reference_of(d: &Dataset) -> Synopsis {
    reference_synopsis(
        &d.tree,
        &ReferenceConfig {
            value_paths: Some(d.value_paths.clone()),
            ..ReferenceConfig::default()
        },
    )
}

/// Predicate targets restricted to the data set's summarized value paths.
fn targets_of(d: &Dataset) -> Vec<NodeId> {
    d.summarized_targets()
}

#[test]
fn imdb_reference_structure_is_much_smaller_than_document() {
    // The *structural* reference (the count-stable graph) is a tiny
    // fraction of the document; the detailed value summaries are
    // deliberately generous (DESIGN.md §5 deviation 4) and are sized by
    // Bval during the build, which the companion test below checks.
    let d = imdb::generate(&imdb::ImdbConfig {
        num_movies: 2500,
        seed: 1001,
    });
    let cfg = ReferenceConfig {
        value_paths: Some(vec![]),
        ..ReferenceConfig::default()
    };
    let s = reference_synopsis(&d.tree, &cfg);
    assert!(
        s.total_bytes() < d.file_size_bytes() / 10,
        "{} vs file {}",
        s.total_bytes(),
        d.file_size_bytes()
    );
    assert!(s.num_nodes() < d.tree.len() / 10);
}

#[test]
fn built_synopsis_is_a_tiny_fraction_of_the_document() {
    // The deployed artifact (post-XClusterBuild) honours the paper's
    // ~200 KB scale regardless of reference size.
    let d = imdb::generate(&imdb::ImdbConfig {
        num_movies: 1200,
        seed: 1001,
    });
    let built = build_synopsis(
        reference_of(&d),
        &BuildConfig {
            b_str: 8 * 1024,
            b_val: 40 * 1024,
            ..BuildConfig::default()
        },
    );
    assert!(built.structural_bytes() <= 8 * 1024);
    assert!(
        built.total_bytes() < d.file_size_bytes() / 10,
        "{} vs file {}",
        built.total_bytes(),
        d.file_size_bytes()
    );
    assert!(built.num_value_nodes() > 0);
}

#[test]
fn imdb_pipeline_estimates_accurately_at_modest_budget() {
    let d = imdb_dataset();
    let reference = reference_of(&d);
    let idx = EvalIndex::build(&d.tree);
    let built = build_synopsis(
        reference,
        &BuildConfig {
            b_str: 6 * 1024,
            b_val: 30 * 1024,
            ..BuildConfig::default()
        },
    );
    assert!(built.structural_bytes() <= 6 * 1024);
    let w = workload::generate_positive(
        &d.tree,
        &idx,
        &WorkloadConfig {
            num_queries: 120,
            allowed_targets: Some(targets_of(&d)),
            ..WorkloadConfig::default()
        },
    );
    let report = evaluate_workload(&built, &w, &EvalOptions::default()).report;
    assert!(
        report.overall_rel < 0.6,
        "overall error too high: {}",
        report.overall_rel
    );
    // Structural queries should be very accurate at this budget.
    let s_err = report.class_rel(QueryClass::Struct).unwrap();
    assert!(s_err < 0.3, "struct error {s_err}");
}

#[test]
fn error_decreases_with_structural_budget() {
    let d = imdb_dataset();
    let reference = reference_of(&d);
    let idx = EvalIndex::build(&d.tree);
    let w = workload::generate_positive(
        &d.tree,
        &idx,
        &WorkloadConfig {
            num_queries: 100,
            allowed_targets: Some(targets_of(&d)),
            ..WorkloadConfig::default()
        },
    );
    // Generous value budget so the structural budget is the only
    // variable: with Bval tight, more clusters at high Bstr spread the
    // same value bytes thinner, which can mask the structural gains (the
    // interplay the paper itself notes for its Figure 8a Numeric series).
    let reports: Vec<_> = [512usize, 4 * 1024, 16 * 1024]
        .iter()
        .map(|&b_str| {
            let built = build_synopsis(
                reference.clone(),
                &BuildConfig {
                    b_str,
                    b_val: 160 * 1024,
                    ..BuildConfig::default()
                },
            );
            evaluate_workload(&built, &w, &EvalOptions::default()).report
        })
        .collect();
    // The trend of Figure 8's most robust series: structural-query error
    // falls as Bstr grows (allow small noise).
    let struct_errs: Vec<f64> = reports
        .iter()
        .map(|r| r.class_rel(QueryClass::Struct).unwrap())
        .collect();
    assert!(
        struct_errs[2] <= struct_errs[0] + 0.02,
        "no structural improvement across budgets: {struct_errs:?}"
    );
    assert!(
        struct_errs[2] < 0.15,
        "largest budget still structurally inaccurate: {struct_errs:?}"
    );
    // Overall error stays bounded at the largest budget.
    assert!(reports[2].overall_rel < 0.8, "{}", reports[2].overall_rel);
}

#[test]
fn xmark_pipeline_handles_recursion_and_types() {
    let d = xmark_dataset();
    let reference = reference_of(&d);
    let idx = EvalIndex::build(&d.tree);
    let built = build_synopsis(
        reference,
        &BuildConfig {
            b_str: 5 * 1024,
            b_val: 30 * 1024,
            ..BuildConfig::default()
        },
    );
    built.check_consistency().unwrap();
    let w = workload::generate_positive(
        &d.tree,
        &idx,
        &WorkloadConfig {
            num_queries: 100,
            allowed_targets: Some(targets_of(&d)),
            ..WorkloadConfig::default()
        },
    );
    let report = evaluate_workload(&built, &w, &EvalOptions::default()).report;
    assert!(report.overall_rel < 0.8, "error {}", report.overall_rel);
}

#[test]
fn negative_workload_estimates_near_zero_after_compression() {
    // The paper: "XCLUSTERs consistently yield close to zero estimates
    // for all space budgets" on negative workloads.
    let d = imdb_dataset();
    let reference = reference_of(&d);
    let idx = EvalIndex::build(&d.tree);
    let built = build_synopsis(
        reference,
        &BuildConfig {
            b_str: 2 * 1024,
            b_val: 15 * 1024,
            ..BuildConfig::default()
        },
    );
    let w = workload::generate_negative(
        &d.tree,
        &idx,
        &WorkloadConfig {
            num_queries: 60,
            allowed_targets: Some(targets_of(&d)),
            ..WorkloadConfig::default()
        },
    );
    let report = evaluate_workload(&built, &w, &EvalOptions::default()).report;
    assert!(
        report.avg_estimate < 2.0,
        "negative estimates too high: {}",
        report.avg_estimate
    );
}

#[test]
fn figure2_style_query_end_to_end() {
    let d = imdb_dataset();
    let reference = reference_of(&d);
    let idx = EvalIndex::build(&d.tree);
    let q = parse_twig(
        "//movie[year>1990]{/title}{/cast/actor/name}",
        d.tree.terms(),
    )
    .unwrap();
    let truth = xcluster_query::evaluate(&q, &d.tree, &idx);
    assert!(truth > 0.0);
    let est_ref = estimate(&reference, &q);
    let rel = relative_error(truth, est_ref, 1.0);
    assert!(rel < 0.35, "reference estimate off: {est_ref} vs {truth}");
}

#[test]
fn built_synopsis_is_self_contained() {
    // Estimation must not need the document: build, drop the tree, query.
    let d = imdb_dataset();
    let reference = reference_of(&d);
    let q = parse_twig("//movie/title", d.tree.terms()).unwrap();
    let truth_nodes = d.tree.len();
    drop(d);
    let built = build_synopsis(
        reference,
        &BuildConfig {
            b_str: 4 * 1024,
            b_val: 20 * 1024,
            ..BuildConfig::default()
        },
    );
    let est = estimate(&built, &q);
    assert!(est > 0.0 && est < truth_nodes as f64);
}

#[test]
fn table1_style_statistics_are_reportable() {
    let d = imdb_dataset();
    let s = reference_of(&d);
    // The four Table 1 columns must all be derivable.
    let file_size = d.file_size_bytes();
    let elements = d.num_elements();
    let ref_size = s.total_bytes();
    let (value_nodes, total_nodes) = (s.num_value_nodes(), s.num_nodes());
    assert!(file_size > 0 && elements > 0 && ref_size > 0);
    assert!(value_nodes > 0 && value_nodes <= total_nodes);
}

#[test]
fn treebank_recursion_pipeline() {
    // Deep recursive data: reference build, compression, and estimation
    // must all terminate and stay consistent despite synopsis cycles.
    // Parse trees are near-unique, so the context-splitting reference
    // partition approaches one cluster per element — keep this small or
    // the debug-mode build grinds for many minutes.
    let d = xcluster_datagen::treebank::generate(&xcluster_datagen::treebank::TreebankConfig {
        files: 12,
        max_sentences: 3,
        max_depth: 6,
        seed: 12,
    });
    let reference = reference_of(&d);
    assert!(reference.max_depth() >= 5);
    let built = build_synopsis(
        reference,
        &BuildConfig {
            b_str: 2 * 1024,
            b_val: 8 * 1024,
            ..BuildConfig::default()
        },
    );
    built.check_consistency().unwrap();
    let idx = EvalIndex::build(&d.tree);
    for qs in ["//np//nn", "//s/vp", "//np//np", "//cd[>1000]"] {
        let q = parse_twig(qs, d.tree.terms()).unwrap();
        let est = estimate(&built, &q);
        let truth = xcluster_query::evaluate(&q, &d.tree, &idx);
        assert!(est.is_finite() && est >= 0.0, "{qs}");
        // Coarse sanity: within an order of magnitude on structural paths.
        if truth > 50.0 {
            assert!(
                est > truth / 10.0 && est < truth * 10.0,
                "{qs}: {est} vs {truth}"
            );
        }
    }
}

#[test]
fn similarity_predicate_end_to_end() {
    let d = imdb_dataset();
    let reference = reference_of(&d);
    let idx = EvalIndex::build(&d.tree);
    // Probe: two frequent plot terms; ask for at least one of them.
    let mut terms = Vec::new();
    for n in d.tree.all_nodes() {
        if d.tree.label_str(n) == "plot" {
            if let Some(tv) = d.tree.value(n).as_text() {
                terms.extend(tv.terms().iter().take(2).copied());
            }
        }
        if terms.len() >= 2 {
            break;
        }
    }
    let t1 = d.tree.term_str(terms[0]).to_string();
    let t2 = d.tree.term_str(terms[1]).to_string();
    let q = parse_twig(&format!("//plot[similar(1; {t1}, {t2})]"), d.tree.terms()).unwrap();
    let truth = xcluster_query::evaluate(&q, &d.tree, &idx);
    assert!(truth > 0.0);
    let est = estimate(&reference, &q);
    // Reference-quality summaries should land in the right ballpark.
    assert!(
        est > truth * 0.2 && est < truth * 5.0,
        "similar(): {est} vs {truth}"
    );
    // ftcontains of both terms is at most the ≥1-overlap count.
    let conj = parse_twig(&format!("//plot[ftcontains({t1}, {t2})]"), d.tree.terms()).unwrap();
    let conj_truth = xcluster_query::evaluate(&conj, &d.tree, &idx);
    assert!(conj_truth <= truth);
}

#[test]
fn synopsis_codec_round_trip_through_file() {
    let d = imdb_dataset();
    let built = build_synopsis(
        reference_of(&d),
        &BuildConfig {
            b_str: 4 * 1024,
            b_val: 16 * 1024,
            ..BuildConfig::default()
        },
    );
    let bytes = xcluster_core::codec::encode_synopsis(&built);
    let path = std::env::temp_dir().join("xcluster_integration_roundtrip.xcs");
    std::fs::write(&path, &bytes).unwrap();
    let loaded = xcluster_core::codec::decode_synopsis(&std::fs::read(&path).unwrap()).unwrap();
    let _ = std::fs::remove_file(&path);
    let q = parse_twig("//movie[year>1990]/title", d.tree.terms()).unwrap();
    let q2 = parse_twig("//movie[year>1990]/title", loaded.terms()).unwrap();
    assert!((estimate(&built, &q) - estimate(&loaded, &q2)).abs() < 1e-9);
}
