//! Differential harness for incremental synopsis maintenance
//! (`xcluster_core::delta`).
//!
//! Contracts under test, per dataset family (imdb / xmark / treebank):
//!
//! 1. **Zero churn is bitwise.** Applying an empty delta leaves the
//!    encoded synopsis byte-identical and the version untouched.
//! 2. **Bitwise where the merge sequence is unaffected.** When no
//!    budget pass runs (budgets lifted for the apply), an insert-only
//!    delta followed by its inverse restores structural, numeric, and
//!    string estimates bitwise — the descent mapping is
//!    self-reinforcing, counts are integral, edge averages reconstruct
//!    through exact integer pair totals, and histogram/PST summaries
//!    observe/retract in exact count arithmetic. TEXT estimates are
//!    held to an ulp-level relative bound instead: a *fused* EBTH
//!    centroid stores `(ku·fa + kv·fb)/kw`, which can sit 1 ulp off the
//!    canonical `count/k` form that `observe`/`retract` reconstruct
//!    through, so the round trip normalizes those frequencies.
//! 3. **Bounded divergence otherwise.** A churn stream applied
//!    incrementally under the original byte budgets (dirty-region
//!    re-merges included) must track a from-scratch rebuild of the
//!    mutated document within documented error gates over a 150-query
//!    workload.
//! 4. **Thread counts are unobservable.** The incremental path is
//!    byte-identical at every `BuildConfig::threads`, same as the
//!    from-scratch build — `XCLUSTER_TEST_THREADS` overrides the
//!    matrix (CI runs a `1,4` release matrix; the default covers
//!    `{1, 2, 4}` in release and `{1, 2}` under debug).

use xcluster_core::build::{build_synopsis, BuildConfig};
use xcluster_core::codec::encode_synopsis;
use xcluster_core::delta::{apply_delta, apply_to_tree, inverse_delta, DocDelta};
use xcluster_core::metrics::relative_error;
use xcluster_core::reference::{reference_synopsis, ReferenceConfig};
use xcluster_core::{estimate, Synopsis};
use xcluster_datagen::deltas::{delta_stream, generate_delta, DeltaConfig};
use xcluster_datagen::Dataset;
use xcluster_query::{workload, EvalIndex, QueryClass, Workload, WorkloadConfig};
use xcluster_xml::XmlTree;

/// Thread counts for the determinism matrix.
fn thread_counts() -> Vec<usize> {
    match std::env::var("XCLUSTER_TEST_THREADS") {
        Ok(v) => {
            let counts: Vec<usize> = v
                .split(',')
                .filter_map(|t| t.trim().parse().ok())
                .filter(|&t| t > 0)
                .collect();
            assert!(
                !counts.is_empty(),
                "XCLUSTER_TEST_THREADS={v:?} has no usable counts"
            );
            counts
        }
        Err(_) if cfg!(debug_assertions) => vec![1, 2],
        Err(_) => vec![1, 2, 4],
    }
}

/// One small instance per dataset family. Kept deliberately compact:
/// every case rebuilds the mutated document from scratch once, and
/// treebank's near-incompressible structure makes builds expensive.
fn datasets() -> Vec<Dataset> {
    vec![
        xcluster_datagen::imdb::generate(&xcluster_datagen::imdb::ImdbConfig {
            num_movies: 30,
            seed: 51,
        }),
        xcluster_datagen::xmark::generate(&xcluster_datagen::xmark::XmarkConfig {
            items: 40,
            persons: 20,
            open_auctions: 15,
            closed_auctions: 10,
            categories: 5,
            seed: 52,
        }),
        xcluster_datagen::treebank::generate(&xcluster_datagen::treebank::TreebankConfig {
            files: 10,
            max_sentences: 4,
            max_depth: 5,
            seed: 53,
        }),
    ]
}

fn reference_of(d: &Dataset) -> Synopsis {
    reference_synopsis(
        &d.tree,
        &ReferenceConfig {
            value_paths: Some(d.value_paths.clone()),
            ..ReferenceConfig::default()
        },
    )
}

/// Builds the dataset's synopsis under budgets that force real merge
/// and compression work (same discipline as `tests/parallel.rs`), and
/// returns the build configuration so the incremental path maintains
/// under the *original* budgets.
fn built(d: &Dataset) -> (Synopsis, BuildConfig) {
    let r = reference_of(d);
    let cfg = BuildConfig {
        b_str: r.structural_bytes() / 3,
        b_val: r.value_bytes() / 2,
        ..BuildConfig::default()
    };
    (build_synopsis(r, &cfg), cfg)
}

/// A 150-query seeded positive workload over `tree`.
fn workload_on(tree: &XmlTree, seed: u64) -> Workload {
    let idx = EvalIndex::build(tree);
    let w = workload::generate_positive(
        tree,
        &idx,
        &WorkloadConfig {
            num_queries: 150,
            seed,
            ..WorkloadConfig::default()
        },
    );
    assert!(!w.queries.is_empty());
    w
}

/// Runs `deltas` through the incremental path (apply to synopsis, then
/// replay on the document) and returns the maintained synopsis plus the
/// final mutated document.
fn apply_stream(
    s0: &Synopsis,
    tree0: &XmlTree,
    deltas: &[DocDelta],
    cfg: &BuildConfig,
) -> (Synopsis, XmlTree) {
    let mut s = s0.clone();
    let mut tree = tree0.clone();
    for delta in deltas {
        apply_delta(&mut s, &tree, delta, cfg);
        tree = apply_to_tree(&tree, delta).tree;
    }
    (s, tree)
}

/// Gate on the mean sanity-bounded relative error of the incremental
/// synopsis against ground truth, relative to the rebuilt synopsis's
/// own error on the same workload: `err(inc) ≤ err(rebuild) + GATE`.
/// Both synopses hold the same byte budgets over the same document, but
/// their merge histories legitimately differ (the incremental path
/// re-merges only dirtied regions), so their errors differ by a bounded
/// amount rather than matching. 0.15 is ~3× the worst divergence
/// observed across the three families and churn seeds; a regression
/// past it means delta application is corrupting counts or summaries,
/// not just clustering differently.
const ACCURACY_REGRESSION_GATE: f64 = 0.15;

/// Gate on the mean pairwise divergence between the two synopses'
/// estimates, normalized like the paper's sanity-bounded relative
/// error. Catches the complementary failure (both estimates far from
/// each other while accidentally close to truth on average).
const MEAN_DIVERGENCE_GATE: f64 = 0.25;

#[test]
fn zero_churn_is_bitwise_identity() {
    for d in datasets() {
        let (s, cfg) = built(&d);
        let before = encode_synopsis(&s);
        let mut maintained = s.clone();
        let stats = apply_delta(&mut maintained, &d.tree, &DocDelta::default(), &cfg);
        assert_eq!(stats, Default::default(), "{}", d.name);
        assert_eq!(maintained.version(), 0, "{}", d.name);
        assert_eq!(encode_synopsis(&maintained), before, "{}", d.name);
    }
}

#[test]
fn insert_then_inverse_restores_estimates_bitwise() {
    // Budgets lifted for the applies: no budget pass runs, so the merge
    // sequence is unaffected and the inverse must be an exact undo.
    let lifted = BuildConfig {
        b_str: usize::MAX / 2,
        b_val: usize::MAX / 2,
        ..BuildConfig::default()
    };
    for (i, d) in datasets().into_iter().enumerate() {
        let (s0, _) = built(&d);
        let delta = generate_delta(
            &d.tree,
            &DeltaConfig {
                churn: 0.03,
                insert_fraction: 1.0,
                seed: 0xA11CE + i as u64,
                ..DeltaConfig::default()
            },
        );
        assert!(!delta.is_empty(), "{}", d.name);
        let patch = apply_to_tree(&d.tree, &delta);
        let mut s = s0.clone();
        apply_delta(&mut s, &d.tree, &delta, &lifted);
        let inverse = inverse_delta(&d.tree, &delta, &patch);
        apply_delta(&mut s, &patch.tree, &inverse, &lifted);
        assert_eq!(
            s.live_nodes().count(),
            s0.live_nodes().count(),
            "{}: inverse must retire every cluster the delta created",
            d.name
        );
        let w = workload_on(&d.tree, 0xB0B + i as u64);
        for q in &w.queries {
            let (got, want) = (estimate(&s, &q.query), estimate(&s0, &q.query));
            if q.class == QueryClass::Text {
                // Canonicalized fused EBTH frequencies: ulp noise only.
                assert!(
                    (got - want).abs() <= 1e-12 * want.abs().max(1.0),
                    "{}: {} drifted beyond ulp noise after insert⟲inverse: {got} vs {want}",
                    d.name,
                    q.query
                );
                continue;
            }
            assert_eq!(
                got.to_bits(),
                want.to_bits(),
                "{}: {} diverged after insert⟲inverse: {got} vs {want}",
                d.name,
                q.query
            );
        }
    }
}

#[test]
fn incremental_stream_tracks_full_rebuild_within_gates() {
    for (i, d) in datasets().into_iter().enumerate() {
        let (s0, cfg) = built(&d);
        let deltas = delta_stream(
            &d.tree,
            &DeltaConfig {
                churn: 0.05,
                seed: 0x5EED + i as u64,
                ..DeltaConfig::default()
            },
            3,
        );
        let (inc, mutated) = apply_stream(&s0, &d.tree, &deltas, &cfg);
        assert_eq!(inc.version(), 3, "{}", d.name);
        assert_eq!(inc.check_consistency(), Ok(()), "{}", d.name);
        assert!(
            inc.structural_bytes() <= cfg.b_str || s0.structural_bytes() > cfg.b_str,
            "{}: incremental path exceeded the structural budget",
            d.name
        );
        // From-scratch rebuild of the mutated document, same budgets.
        let rebuilt = build_synopsis(
            reference_synopsis(
                &mutated,
                &ReferenceConfig {
                    value_paths: Some(d.value_paths.clone()),
                    ..ReferenceConfig::default()
                },
            ),
            &cfg,
        );
        let w = workload_on(&mutated, 0xFEED + i as u64);
        let mut inc_err = 0.0;
        let mut reb_err = 0.0;
        let mut divergence = 0.0;
        for q in &w.queries {
            let e_inc = estimate(&inc, &q.query);
            let e_reb = estimate(&rebuilt, &q.query);
            inc_err += relative_error(q.true_count, e_inc, w.sanity_bound);
            reb_err += relative_error(q.true_count, e_reb, w.sanity_bound);
            divergence += (e_inc - e_reb).abs() / e_reb.abs().max(w.sanity_bound);
        }
        let n = w.queries.len() as f64;
        let (inc_err, reb_err, divergence) = (inc_err / n, reb_err / n, divergence / n);
        assert!(
            inc_err <= reb_err + ACCURACY_REGRESSION_GATE,
            "{}: incremental error {inc_err:.4} vs rebuild {reb_err:.4} (gate {ACCURACY_REGRESSION_GATE})",
            d.name
        );
        assert!(
            divergence <= MEAN_DIVERGENCE_GATE,
            "{}: mean estimate divergence {divergence:.4} (gate {MEAN_DIVERGENCE_GATE})",
            d.name
        );
    }
}

#[test]
fn incremental_path_is_byte_identical_across_thread_counts() {
    for (i, d) in datasets().into_iter().enumerate() {
        let (s0, cfg) = built(&d);
        let deltas = delta_stream(
            &d.tree,
            &DeltaConfig {
                churn: 0.05,
                seed: 0x7EAD + i as u64,
                ..DeltaConfig::default()
            },
            2,
        );
        let (base, _) = apply_stream(&s0, &d.tree, &deltas, &cfg);
        let base_bytes = encode_synopsis(&base);
        for t in thread_counts() {
            let cfg_t = BuildConfig {
                threads: t,
                ..cfg.clone()
            };
            let (s, _) = apply_stream(&s0, &d.tree, &deltas, &cfg_t);
            assert_eq!(
                encode_synopsis(&s),
                base_bytes,
                "{}: incremental path diverged at {t} thread(s)",
                d.name
            );
        }
    }
}
