//! Differential tests for the deterministic parallel execution layer
//! (`xcluster_core::par`).
//!
//! The contract under test: *the thread count is unobservable in the
//! output*. A parallel build must produce a byte-identical synopsis
//! (compared via the `codec` serialization) and batch estimation must
//! return bitwise-equal floats, for every dataset family at every
//! thread count.
//!
//! Thread counts default to `{2, 4, 8}` in release and `{2}` under the
//! debug profile (debug builds are ~15× slower and the matrix multiplies
//! whole synopsis builds); set `XCLUSTER_TEST_THREADS` to a
//! comma-separated list to override (CI runs a `1,4` release matrix).

use xcluster_core::build::{build_synopsis, BuildConfig};
use xcluster_core::codec::encode_synopsis;
use xcluster_core::metrics::{evaluate_workload, EvalOptions};
use xcluster_core::reference::{reference_synopsis, ReferenceConfig};
use xcluster_core::{estimate, Estimator, Synopsis};
use xcluster_datagen::Dataset;
use xcluster_query::{workload, EvalIndex, Workload, WorkloadConfig};

/// Thread counts to differentiate against the sequential baseline.
fn thread_counts() -> Vec<usize> {
    match std::env::var("XCLUSTER_TEST_THREADS") {
        Ok(v) => {
            let counts: Vec<usize> = v
                .split(',')
                .filter_map(|t| t.trim().parse().ok())
                .filter(|&t| t > 0)
                .collect();
            assert!(
                !counts.is_empty(),
                "XCLUSTER_TEST_THREADS={v:?} has no usable counts"
            );
            counts
        }
        Err(_) if cfg!(debug_assertions) => vec![2],
        Err(_) => vec![2, 4, 8],
    }
}

/// The reference synopsis with the dataset's own value paths summarized
/// (so phase 2 and value-bearing merge candidates are exercised too).
fn reference_of(d: &Dataset) -> Synopsis {
    reference_synopsis(
        &d.tree,
        &ReferenceConfig {
            value_paths: Some(d.value_paths.clone()),
            ..ReferenceConfig::default()
        },
    )
}

/// Seeded imdb/xmark/treebank at two scales each: small enough to keep
/// the suite quick, large enough that builds run multiple pool-refill
/// rounds and phase-2 chunks.
fn datasets() -> Vec<Dataset> {
    vec![
        xcluster_datagen::imdb::generate(&xcluster_datagen::imdb::ImdbConfig {
            num_movies: 30,
            seed: 11,
        }),
        xcluster_datagen::imdb::generate(&xcluster_datagen::imdb::ImdbConfig {
            num_movies: 90,
            seed: 12,
        }),
        xcluster_datagen::xmark::generate(&xcluster_datagen::xmark::XmarkConfig {
            items: 40,
            persons: 20,
            open_auctions: 15,
            closed_auctions: 10,
            categories: 5,
            seed: 13,
        }),
        xcluster_datagen::xmark::generate(&xcluster_datagen::xmark::XmarkConfig {
            items: 120,
            persons: 60,
            open_auctions: 45,
            closed_auctions: 30,
            categories: 8,
            seed: 14,
        }),
        // Treebank's deep random structure is near-incompressible: the
        // reference synopsis keeps ~1 cluster per element, so build time
        // grows superlinearly with `files`. Keep both scales small — the
        // suite rebuilds each dataset once per thread count.
        xcluster_datagen::treebank::generate(&xcluster_datagen::treebank::TreebankConfig {
            files: 10,
            max_sentences: 4,
            max_depth: 5,
            seed: 15,
        }),
        xcluster_datagen::treebank::generate(&xcluster_datagen::treebank::TreebankConfig {
            files: 20,
            max_sentences: 5,
            max_depth: 6,
            seed: 16,
        }),
    ]
}

/// A build configuration that forces real work in both phases.
fn differential_config(r: &Synopsis) -> BuildConfig {
    BuildConfig {
        b_str: r.structural_bytes() / 3,
        b_val: r.value_bytes() / 2,
        ..BuildConfig::default()
    }
}

#[test]
fn parallel_build_is_bit_identical_across_datasets() {
    for d in datasets() {
        let r = reference_of(&d);
        let cfg = differential_config(&r);
        let seq_bytes = encode_synopsis(&build_synopsis(r.clone(), &cfg));
        for t in thread_counts() {
            let par = build_synopsis(
                r.clone(),
                &BuildConfig {
                    threads: t,
                    ..cfg.clone()
                },
            );
            assert_eq!(
                encode_synopsis(&par),
                seq_bytes,
                "{} ({} elements): parallel build diverged at {t} thread(s)",
                d.name,
                d.num_elements()
            );
        }
    }
}

#[test]
fn parallel_build_with_zero_budgets_is_bit_identical() {
    // The full-collapse path exercises maximal merge cascades, where a
    // nondeterministic pool order would show up first.
    for d in [
        xcluster_datagen::imdb::generate(&xcluster_datagen::imdb::ImdbConfig {
            num_movies: 50,
            seed: 21,
        }),
        xcluster_datagen::xmark::generate(&xcluster_datagen::xmark::XmarkConfig {
            items: 60,
            persons: 30,
            open_auctions: 20,
            closed_auctions: 15,
            categories: 6,
            seed: 22,
        }),
    ] {
        let r = reference_of(&d);
        let cfg = BuildConfig {
            b_str: 0,
            b_val: 0,
            ..BuildConfig::default()
        };
        let seq_bytes = encode_synopsis(&build_synopsis(r.clone(), &cfg));
        for t in thread_counts() {
            let par = build_synopsis(
                r.clone(),
                &BuildConfig {
                    threads: t,
                    ..cfg.clone()
                },
            );
            assert_eq!(
                encode_synopsis(&par),
                seq_bytes,
                "{} at {t} thread(s)",
                d.name
            );
        }
    }
}

/// A built synopsis plus a 150-query seeded positive workload over the
/// same document.
fn built_with_workload(d: &Dataset, seed: u64) -> (Synopsis, Workload) {
    let r = reference_of(d);
    let cfg = differential_config(&r);
    let built = build_synopsis(r, &cfg);
    let idx = EvalIndex::build(&d.tree);
    let w = workload::generate_positive(
        &d.tree,
        &idx,
        &WorkloadConfig {
            num_queries: 150,
            seed,
            allowed_targets: Some(d.summarized_targets()),
            ..WorkloadConfig::default()
        },
    );
    assert!(!w.queries.is_empty());
    (built, w)
}

#[test]
fn batch_estimation_is_bitwise_equal_to_sequential() {
    let d = xcluster_datagen::imdb::generate(&xcluster_datagen::imdb::ImdbConfig {
        num_movies: 90,
        seed: 31,
    });
    let (built, w) = built_with_workload(&d, 0xBEEF);
    let seq: Vec<f64> = w
        .queries
        .iter()
        .map(|q| estimate(&built, &q.query))
        .collect();
    for t in thread_counts() {
        let batch = Estimator::new(&built)
            .with_threads(t)
            .estimate_batch_by(&w.queries, |q| &q.query);
        assert_eq!(batch.len(), seq.len());
        for (i, (a, b)) in seq.iter().zip(&batch).enumerate() {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "query {i} ({}) diverged at {t} thread(s): {a} vs {b}",
                w.queries[i].query
            );
        }
    }
}

#[test]
fn parallel_workload_reports_are_bitwise_identical() {
    let d = xcluster_datagen::xmark::generate(&xcluster_datagen::xmark::XmarkConfig {
        items: 80,
        persons: 40,
        open_auctions: 30,
        closed_auctions: 20,
        categories: 8,
        seed: 32,
    });
    let (built, w) = built_with_workload(&d, 0xCAFE);
    let seq = evaluate_workload(&built, &w, &EvalOptions::default()).report;
    for t in thread_counts() {
        let par = evaluate_workload(&built, &w, &EvalOptions::default().with_threads(t)).report;
        assert_eq!(
            seq.overall_rel.to_bits(),
            par.overall_rel.to_bits(),
            "overall_rel diverged at {t} thread(s)"
        );
        assert_eq!(seq.avg_estimate.to_bits(), par.avg_estimate.to_bits());
        for (a, b) in seq.class_rel.iter().zip(par.class_rel.iter()) {
            assert_eq!(a.map(f64::to_bits), b.map(f64::to_bits));
        }
        for (a, b) in seq.low_count_abs.iter().zip(par.low_count_abs.iter()) {
            assert_eq!(a.map(f64::to_bits), b.map(f64::to_bits));
        }
    }
}

#[test]
fn parallel_attribution_is_identical() {
    let d = xcluster_datagen::imdb::generate(&xcluster_datagen::imdb::ImdbConfig {
        num_movies: 60,
        seed: 33,
    });
    let (built, w) = built_with_workload(&d, 0xD00D);
    let seq = evaluate_workload(&built, &w, &EvalOptions::default().with_attribution(true));
    let (seq_report, seq_attr) = (seq.report, seq.attribution.expect("attribution requested"));
    for t in thread_counts() {
        let par = evaluate_workload(
            &built,
            &w,
            &EvalOptions::default()
                .with_threads(t)
                .with_attribution(true),
        );
        let (par_report, par_attr) = (par.report, par.attribution.expect("attribution requested"));
        assert_eq!(
            seq_report.overall_rel.to_bits(),
            par_report.overall_rel.to_bits()
        );
        assert_eq!(seq_attr.clusters.len(), par_attr.clusters.len());
        for (a, b) in seq_attr.clusters.iter().zip(&par_attr.clusters) {
            assert_eq!(
                a.cluster, b.cluster,
                "cluster ranking diverged at {t} thread(s)"
            );
            assert_eq!(a.abs_error.to_bits(), b.abs_error.to_bits());
            assert_eq!(a.queries, b.queries);
            assert_eq!(a.summary_kinds, b.summary_kinds);
        }
        assert_eq!(
            seq_attr.unattributed.to_bits(),
            par_attr.unattributed.to_bits()
        );
        assert_eq!(seq_attr.queries.len(), par_attr.queries.len());
        for (a, b) in seq_attr.queries.iter().zip(&par_attr.queries) {
            assert_eq!(a.query, b.query);
            assert_eq!(a.estimate.to_bits(), b.estimate.to_bits());
            assert_eq!(a.top_cluster, b.top_cluster);
        }
    }
}

#[test]
fn thread_zero_resolves_to_available_parallelism_and_stays_identical() {
    // `threads = 0` (auto) must go through the same deterministic
    // partitioning — whatever the machine's core count.
    let d = xcluster_datagen::imdb::generate(&xcluster_datagen::imdb::ImdbConfig {
        num_movies: 40,
        seed: 41,
    });
    let r = reference_of(&d);
    let cfg = differential_config(&r);
    let seq_bytes = encode_synopsis(&build_synopsis(r.clone(), &cfg));
    let auto = build_synopsis(r, &BuildConfig { threads: 0, ..cfg });
    assert_eq!(encode_synopsis(&auto), seq_bytes);
}
