//! End-to-end scenarios over hand-written documents: parse XML text,
//! summarize, and compare estimates for the paper's running examples.

use xcluster_core::build::{build_synopsis, BuildConfig};
use xcluster_core::reference::{reference_synopsis, ReferenceConfig};
use xcluster_core::{baseline, estimate};
use xcluster_query::{evaluate, parse_twig, EvalIndex};
use xcluster_xml::{parse, parse_with, ParseOptions, ValueType, XmlTree};

/// The bibliographic document of the paper's Figure 1, as XML text.
fn figure1_doc() -> XmlTree {
    let xml = "<dblp>\
        <author>\
          <paper><year>2000</year><title>Counting Twig Matches</title>\
            <keywords>xml summary estimation selectivity</keywords></paper>\
          <name>First Author</name>\
          <paper><year>2002</year><title>Holistic Twigs</title>\
            <abstract>xml employs a tree structured data model</abstract></paper>\
        </author>\
        <author>\
          <name>Second Author</name>\
          <book><year>2002</year><title>Database Systems</title>\
            <foreword>database systems have evolved rapidly since</foreword></book>\
        </author></dblp>";
    let opts = ParseOptions::default()
        .with_type("year", ValueType::Numeric)
        .with_type("title", ValueType::String)
        .with_type("name", ValueType::String)
        .with_type("keywords", ValueType::Text)
        .with_type("abstract", ValueType::Text)
        .with_type("foreword", ValueType::Text);
    parse_with(xml, &opts).unwrap()
}

#[test]
fn figure1_reference_answers_paper_queries_exactly() {
    let t = figure1_doc();
    let s = reference_synopsis(&t, &ReferenceConfig::default());
    let idx = EvalIndex::build(&t);
    for (q, expected) in [
        ("//paper", 2.0),
        ("//author/paper/year", 2.0),
        ("//paper[year>2000]", 1.0),
        ("//paper[year>=2000]", 2.0),
        ("//*[year=2002]", 2.0),
    ] {
        let twig = parse_twig(q, t.terms()).unwrap();
        assert_eq!(evaluate(&twig, &t, &idx), expected, "truth of {q}");
        let est = estimate(&s, &twig);
        assert!(
            (est - expected).abs() < 0.75,
            "estimate of {q}: {est} vs {expected}"
        );
    }
}

#[test]
fn paper_intro_query_shape() {
    // //paper[year>2000][abstract ftcontains(synopsis, xml)]
    //        /title[contains(Twig)] — the introduction's example.
    let t = figure1_doc();
    let idx = EvalIndex::build(&t);
    let q = parse_twig(
        "//paper[year>2000][abstract ftcontains(xml)]/title[contains(Twig)]",
        t.terms(),
    )
    .unwrap();
    let truth = evaluate(&q, &t, &idx);
    assert_eq!(truth, 1.0); // only "Holistic Twigs"
    let s = reference_synopsis(&t, &ReferenceConfig::default());
    let est = estimate(&s, &q);
    assert!((est - truth).abs() < 0.6, "{est} vs {truth}");
}

#[test]
fn compressed_figure1_stays_reasonable() {
    let t = figure1_doc();
    let reference = reference_synopsis(&t, &ReferenceConfig::default());
    let built = build_synopsis(
        reference,
        &BuildConfig {
            b_str: 200,
            b_val: 400,
            ..BuildConfig::default()
        },
    );
    built.check_consistency().unwrap();
    let idx = EvalIndex::build(&t);
    let q = parse_twig("//paper", t.terms()).unwrap();
    let est = estimate(&built, &q);
    let truth = evaluate(&q, &t, &idx);
    assert!((est - truth).abs() < 1.0, "{est} vs {truth}");
}

#[test]
fn tag_baseline_vs_xcluster_on_correlated_data() {
    // Structure–value correlation: the y-distribution differs under a vs
    // b. The tag-only summary fuses them; an XCluster with budget for two
    // y-clusters keeps them apart and answers branch queries better.
    let mut xml = String::from("<r>");
    for i in 0..30 {
        xml.push_str(&format!("<a><y>{}</y></a>", 1900 + i % 10));
    }
    for i in 0..30 {
        xml.push_str(&format!("<b><y>{}</y></b>", 2000 + i % 10));
    }
    xml.push_str("</r>");
    let t = parse(&xml).unwrap();
    let idx = EvalIndex::build(&t);
    let reference = reference_synopsis(&t, &ReferenceConfig::default());
    let keep = build_synopsis(
        reference,
        &BuildConfig {
            b_str: usize::MAX / 2,
            b_val: usize::MAX / 2,
            ..BuildConfig::default()
        },
    );
    let tag = {
        let mut s = baseline::tag_synopsis(&t);
        // Tag baseline carries no value summaries; attach the fused one so
        // only the *structural* collapse differs.
        let _ = &mut s;
        s
    };
    let q = parse_twig("//a[y>1995]", t.terms()).unwrap();
    let truth = evaluate(&q, &t, &idx);
    assert_eq!(truth, 0.0);
    let est_keep = estimate(&keep, &q);
    assert!(
        est_keep < 1.0,
        "separated clusters know a has no late years"
    );
    let _ = tag;
}

#[test]
fn roundtrip_generated_xml_through_parser() {
    // Generator → writer → parser → reference synopsis: label paths and
    // counts survive the round trip.
    let d = xcluster_datagen::imdb::generate(&xcluster_datagen::imdb::ImdbConfig {
        num_movies: 60,
        seed: 77,
    });
    let xml = xcluster_xml::write_document(&d.tree);
    let opts = ParseOptions::default()
        .with_type("year", ValueType::Numeric)
        .with_type("rating", ValueType::Numeric)
        .with_type("title", ValueType::String)
        .with_type("genre", ValueType::String)
        .with_type("name", ValueType::String)
        .with_type("aka", ValueType::String)
        .with_type("role", ValueType::String)
        .with_type("plot", ValueType::Text);
    let t2 = parse_with(&xml, &opts).unwrap();
    assert_eq!(t2.len(), d.tree.len());
    let s1 = reference_synopsis(&d.tree, &ReferenceConfig::default());
    let s2 = reference_synopsis(&t2, &ReferenceConfig::default());
    assert_eq!(s1.num_nodes(), s2.num_nodes());
    let q1 = parse_twig("//movie[year>1990]/title", d.tree.terms()).unwrap();
    let q2 = parse_twig("//movie[year>1990]/title", t2.terms()).unwrap();
    let e1 = estimate(&s1, &q1);
    let e2 = estimate(&s2, &q2);
    assert!((e1 - e2).abs() < 1e-6, "{e1} vs {e2}");
}

#[test]
fn global_metric_baseline_comparable_on_structural_queries() {
    // Section 6.2: the localized metric is "equally effective" to the
    // global TreeSketch metric for structural summarization.
    let d = xcluster_datagen::imdb::generate(&xcluster_datagen::imdb::ImdbConfig {
        num_movies: 120,
        seed: 55,
    });
    let cfg = ReferenceConfig {
        value_paths: Some(vec![]),
        ..ReferenceConfig::default()
    };
    let reference = reference_synopsis(&d.tree, &cfg);
    let budget = reference.structural_bytes() / 4;
    let local = build_synopsis(
        reference.clone(),
        &BuildConfig {
            b_str: budget,
            b_val: 0,
            ..BuildConfig::default()
        },
    );
    let (global, peak) = baseline::global_metric_build(reference, budget);
    assert!(peak > 0);
    let idx = EvalIndex::build(&d.tree);
    let w = xcluster_query::workload::generate_positive(
        &d.tree,
        &idx,
        &xcluster_query::WorkloadConfig {
            num_queries: 60,
            class_weights: [1.0, 0.0, 0.0, 0.0],
            ..xcluster_query::WorkloadConfig::default()
        },
    );
    let opts = xcluster_core::metrics::EvalOptions::default();
    let local_err = xcluster_core::metrics::evaluate_workload(&local, &w, &opts)
        .report
        .overall_rel;
    let global_err = xcluster_core::metrics::evaluate_workload(&global, &w, &opts)
        .report
        .overall_rel;
    // Comparable: within a factor of ~2 + small absolute slack.
    assert!(
        local_err <= global_err * 2.0 + 0.1,
        "localized {local_err} vs global {global_err}"
    );
}
