//! Integration tests for per-query estimation traces: Chrome
//! trace-event export round-trips through the in-tree JSON reader, the
//! global ring buffer captures estimator and evaluator traces, and the
//! error-attribution harness names the cluster responsible for a known
//! estimation failure.

use std::sync::Mutex;
use xcluster_core::estimate::{estimate, estimate_traced};
use xcluster_core::metrics::{evaluate_workload, EvalOptions};
use xcluster_core::reference::{reference_synopsis, ReferenceConfig};
use xcluster_obs::trace;
use xcluster_query::{evaluate, parse_twig, EvalIndex, QueryClass, Workload, WorkloadQuery};
use xcluster_xml::{parse, ValuePathSpec, ValueType};

/// Serializes tests that flip the process-global capture flag or drain
/// the shared ring buffer.
static RING_LOCK: Mutex<()> = Mutex::new(());

#[test]
fn chrome_export_round_trips_through_json_reader() {
    let t = parse("<r><a><x>1</x></a><a><x>2</x><x>3</x></a><b><x>4</x></b></r>").unwrap();
    let s = reference_synopsis(&t, &ReferenceConfig::default());
    let q = parse_twig("//a/x", t.terms()).unwrap();
    let (est, tr) = estimate_traced(&s, &q);
    assert_eq!(est, 3.0);

    let json = trace::chrome_trace_json(std::slice::from_ref(&tr));
    let v = xcluster_obs::json::parse(&json).expect("chrome export must be valid JSON");
    assert_eq!(
        v.get("displayTimeUnit").and_then(|u| u.as_str()),
        Some("ns")
    );
    let events = v
        .get("traceEvents")
        .and_then(|e| e.as_array())
        .expect("traceEvents array");
    assert_eq!(events.len(), tr.spans().len());
    for ev in events {
        assert_eq!(ev.get("ph").and_then(|p| p.as_str()), Some("X"));
        assert!(ev.get("ts").and_then(|t| t.as_f64()).is_some());
        assert!(ev.get("dur").and_then(|d| d.as_f64()).is_some());
        let name = ev.get("name").and_then(|n| n.as_str()).unwrap();
        let cat = ev.get("cat").and_then(|c| c.as_str()).unwrap();
        assert_eq!(cat, name.split('.').next().unwrap());
    }
    // The root event carries the query and the result, bit-exact enough
    // to survive a JSON round trip at this magnitude.
    let root = &events[0];
    assert_eq!(
        root.get("name").and_then(|n| n.as_str()),
        Some("estimate.query")
    );
    let args = root.get("args").expect("root args");
    assert_eq!(args.get("query").and_then(|q| q.as_str()), Some("//a/x"));
    assert_eq!(args.get("result").and_then(|r| r.as_f64()), Some(3.0));
    // And an embed event names the cluster it targeted.
    let embed = events
        .iter()
        .find(|e| e.get("name").and_then(|n| n.as_str()) == Some("estimate.embed"))
        .expect("an estimate.embed event");
    assert!(embed
        .get("args")
        .and_then(|a| a.get("cluster"))
        .and_then(|c| c.as_f64())
        .is_some());
}

#[test]
fn ring_buffer_captures_estimator_and_evaluator_traces() {
    let _g = RING_LOCK.lock().unwrap();
    let t = parse("<r><a><x>1</x></a><a><x>2</x></a></r>").unwrap();
    let s = reference_synopsis(&t, &ReferenceConfig::default());
    let idx = EvalIndex::build(&t);
    let q = parse_twig("//a/x", t.terms()).unwrap();

    trace::set_capture(true);
    trace::drain();
    let est = estimate(&s, &q);
    let truth = evaluate(&q, &t, &idx);
    trace::set_capture(false);

    let traces = trace::drain();
    assert_eq!(est, truth);
    let roots: Vec<&str> = traces.iter().map(|t| t.root().name).collect();
    assert!(roots.contains(&"estimate.query"), "{roots:?}");
    assert!(roots.contains(&"eval.query"), "{roots:?}");
    for tr in &traces {
        assert_eq!(
            tr.root().attr("result").and_then(|a| a.as_f64()),
            Some(est),
            "both traces record the same (exact) result here"
        );
    }
}

#[test]
fn capture_off_records_nothing_from_the_estimator() {
    let _g = RING_LOCK.lock().unwrap();
    let t = parse("<r><a/></r>").unwrap();
    let s = reference_synopsis(&t, &ReferenceConfig::default());
    let q = parse_twig("//a", t.terms()).unwrap();
    trace::set_capture(false);
    trace::drain();
    let _ = estimate(&s, &q);
    assert!(trace::drain().is_empty());
}

#[test]
fn attribution_names_the_unsummarized_cluster_as_top_error_source() {
    // y is on a summarized value path (exact histogram); z is numeric
    // but carries no value summary, so its predicates pass with σ = 1 —
    // a known-poor summary configuration. The workload's z-query is
    // wildly overestimated; attribution must charge the z cluster.
    let t = parse(
        "<r><a><y>1</y></a><a><y>2</y></a>\
         <b><z>5</z></b><b><z>6</z></b><b><z>7</z></b></r>",
    )
    .unwrap();
    let cfg = ReferenceConfig {
        value_paths: Some(vec![ValuePathSpec::new(&["a", "y"], ValueType::Numeric)]),
        ..ReferenceConfig::default()
    };
    let s = reference_synopsis(&t, &cfg);
    let idx = EvalIndex::build(&t);

    let mk = |text: &str| {
        let query = parse_twig(text, t.terms()).unwrap();
        let true_count = evaluate(&query, &t, &idx);
        WorkloadQuery {
            query,
            class: QueryClass::Numeric,
            true_count,
        }
    };
    let w = Workload {
        queries: vec![mk("//y[in 0..10]"), mk("//z[=99999]")],
        sanity_bound: 1.0,
    };

    let eval = evaluate_workload(&s, &w, &EvalOptions::default().with_attribution(true));
    let (report, attribution) = (
        eval.report,
        eval.attribution.expect("attribution requested"),
    );
    // The y-query is exact; all error comes from the z-query (est 3, true 0).
    assert!(report.overall_rel > 0.0);
    let top = attribution.top().expect("some error was attributed");
    assert_eq!(
        top.label, "z",
        "top error cluster: {:?}",
        attribution.clusters
    );
    assert!((top.abs_error - 3.0).abs() < 1e-9, "{}", top.abs_error);
    assert!(
        top.summary_kinds.iter().any(|k| k == "unsummarized"),
        "{:?}",
        top.summary_kinds
    );
    // The per-query ranking agrees.
    let worst = &attribution.queries[0];
    assert_eq!(worst.true_count, 0.0);
    assert_eq!(worst.estimate, 3.0);
    assert_eq!(worst.top_cluster, Some(top.cluster));
    assert_eq!(attribution.unattributed, 0.0);
    // The rendered report names the cluster too.
    assert!(attribution.render(3).contains("z#"));
}

#[test]
fn explanation_render_and_trace_tree_agree_on_totals() {
    let t = parse("<r><p><q>1</q><q>2</q></p><p><q>3</q></p></r>").unwrap();
    let s = reference_synopsis(&t, &ReferenceConfig::default());
    let twig = parse_twig("//p/q", t.terms()).unwrap();
    let ex = xcluster_core::explain(&s, &twig);
    let (est, tr) = estimate_traced(&s, &twig);
    assert_eq!(ex.total.to_bits(), est.to_bits());
    let rendered = tr.render_tree();
    assert!(rendered.contains("estimate.query"), "{rendered}");
    assert!(rendered.contains("result=3.0000"), "{rendered}");
    assert!(ex.render(&s, &twig).contains("estimate: 3.00"));
}
