//! Differential tests for the compiled-plan estimation path
//! (`xcluster_core::plan` behind [`xcluster_core::Estimator`]).
//!
//! The contract under test: *compilation and caching are unobservable
//! in the output*. For every dataset family, every query, and every
//! thread count, the plan interpreter must return floats bitwise-equal
//! to the reference interpreter (`xcluster_core::estimate`), whether
//! the [`ReachCache`] is cold or warm — and traced runs must replay the
//! exact span structure of the interpreter.
//!
//! Thread counts default to `{1, 2}` under the debug profile and
//! `{1, 4}` in release; set `XCLUSTER_TEST_THREADS` to a
//! comma-separated list to override (CI runs a `1,4` release matrix via
//! `scripts/ci.sh --plan-diff`).

use xcluster_core::build::{build_synopsis, BuildConfig};
use xcluster_core::reference::{reference_synopsis, ReferenceConfig};
use xcluster_core::{estimate, estimate_traced, Estimator, ReachCache, Synopsis};
use xcluster_datagen::Dataset;
use xcluster_query::{workload, EvalIndex, Workload, WorkloadConfig};

/// Thread counts to differentiate against the reference interpreter.
fn thread_counts() -> Vec<usize> {
    match std::env::var("XCLUSTER_TEST_THREADS") {
        Ok(v) => {
            let counts: Vec<usize> = v
                .split(',')
                .filter_map(|t| t.trim().parse().ok())
                .filter(|&t| t > 0)
                .collect();
            assert!(
                !counts.is_empty(),
                "XCLUSTER_TEST_THREADS={v:?} has no usable counts"
            );
            counts
        }
        Err(_) if cfg!(debug_assertions) => vec![1, 2],
        Err(_) => vec![1, 4],
    }
}

/// The same seeded dataset family as `tests/parallel.rs`, one scale
/// each: imdb, xmark, and treebank.
fn datasets() -> Vec<Dataset> {
    vec![
        xcluster_datagen::imdb::generate(&xcluster_datagen::imdb::ImdbConfig {
            num_movies: 30,
            seed: 11,
        }),
        xcluster_datagen::xmark::generate(&xcluster_datagen::xmark::XmarkConfig {
            items: 40,
            persons: 20,
            open_auctions: 15,
            closed_auctions: 10,
            categories: 5,
            seed: 13,
        }),
        xcluster_datagen::treebank::generate(&xcluster_datagen::treebank::TreebankConfig {
            files: 10,
            max_sentences: 4,
            max_depth: 5,
            seed: 15,
        }),
    ]
}

/// A built synopsis plus a 150-query seeded positive workload over the
/// same document (the `tests/parallel.rs` recipe).
fn built_with_workload(d: &Dataset, seed: u64) -> (Synopsis, Workload) {
    let r = reference_synopsis(
        &d.tree,
        &ReferenceConfig {
            value_paths: Some(d.value_paths.clone()),
            ..ReferenceConfig::default()
        },
    );
    let cfg = BuildConfig {
        b_str: r.structural_bytes() / 3,
        b_val: r.value_bytes() / 2,
        ..BuildConfig::default()
    };
    let built = build_synopsis(r, &cfg);
    let idx = EvalIndex::build(&d.tree);
    let w = workload::generate_positive(
        &d.tree,
        &idx,
        &WorkloadConfig {
            num_queries: 150,
            seed,
            allowed_targets: Some(d.summarized_targets()),
            ..WorkloadConfig::default()
        },
    );
    assert!(!w.queries.is_empty());
    (built, w)
}

#[test]
fn plan_engine_is_bitwise_equal_to_interpreter_across_datasets() {
    for d in datasets() {
        let (built, w) = built_with_workload(&d, 0x5EED);
        let reference: Vec<f64> = w
            .queries
            .iter()
            .map(|q| estimate(&built, &q.query))
            .collect();
        for t in thread_counts() {
            // A fresh session per thread count: every run starts from a
            // cold cache, so this also differentiates cold-cache runs.
            let est = Estimator::new(&built).with_threads(t);
            let got = est.estimate_batch_by(&w.queries, |q| &q.query);
            assert_eq!(got.len(), reference.len());
            for (i, (a, b)) in reference.iter().zip(&got).enumerate() {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "{}: query {i} ({}) diverged at {t} thread(s): {a} vs {b}",
                    d.name,
                    w.queries[i].query
                );
            }
        }
    }
}

#[test]
fn warm_cache_is_bitwise_equal_to_cold_cache() {
    // Seeded property test: re-running the same workload through one
    // session (second pass answered from the reach/probe caches) must
    // not perturb a single bit relative to the first cold pass, at any
    // thread count, on every dataset family.
    for d in datasets() {
        let (built, w) = built_with_workload(&d, 0xCACE);
        for t in thread_counts() {
            let est = Estimator::new(&built).with_threads(t);
            let cold = est.estimate_batch_by(&w.queries, |q| &q.query);
            let stats_after_cold = est.cache().stats();
            let warm = est.estimate_batch_by(&w.queries, |q| &q.query);
            let stats_after_warm = est.cache().stats();
            for (i, (a, b)) in cold.iter().zip(&warm).enumerate() {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "{}: query {i} ({}) changed under a warm cache at {t} thread(s)",
                    d.name,
                    w.queries[i].query
                );
            }
            // The warm pass must actually exercise the cache, not
            // silently rebuild: no new reach entries appear.
            assert_eq!(
                stats_after_warm.full_entries, stats_after_cold.full_entries,
                "{}: warm pass grew the full-DP cache",
                d.name
            );
            assert_eq!(
                stats_after_warm.reach_entries, stats_after_cold.reach_entries,
                "{}: warm pass grew the filtered-reach cache",
                d.name
            );
        }
    }
}

#[test]
fn shared_cache_across_sessions_is_bitwise_equal() {
    // The serving pattern: one long-lived cache shared by successive
    // per-batch sessions at different thread counts.
    let d = xcluster_datagen::imdb::generate(&xcluster_datagen::imdb::ImdbConfig {
        num_movies: 30,
        seed: 11,
    });
    let (built, w) = built_with_workload(&d, 0xBA7C);
    let reference: Vec<f64> = w
        .queries
        .iter()
        .map(|q| estimate(&built, &q.query))
        .collect();
    let cache = std::sync::Arc::new(ReachCache::new());
    for t in thread_counts() {
        let est = Estimator::new(&built)
            .with_threads(t)
            .with_cache(std::sync::Arc::clone(&cache));
        let got = est.estimate_batch_by(&w.queries, |q| &q.query);
        for (i, (a, b)) in reference.iter().zip(&got).enumerate() {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "query {i} ({}) diverged with a shared cache at {t} thread(s)",
                w.queries[i].query
            );
        }
    }
    let stats = cache.stats();
    assert!(stats.reach_hits > 0, "shared cache never hit: {stats:?}");
}

#[test]
fn traced_plan_runs_replay_interpreter_spans() {
    let d = xcluster_datagen::xmark::generate(&xcluster_datagen::xmark::XmarkConfig {
        items: 40,
        persons: 20,
        open_auctions: 15,
        closed_auctions: 10,
        categories: 5,
        seed: 13,
    });
    let (built, w) = built_with_workload(&d, 0x7ACE);
    let est = Estimator::new(&built);
    // Two passes — the second replays probes and reachability from the
    // cache, and must still emit the identical span structure.
    for pass in 0..2 {
        for q in w.queries.iter().take(40) {
            let (ref_est, ref_trace) = estimate_traced(&built, &q.query);
            let (got_est, got_trace) = est.estimate_traced(&q.query);
            assert_eq!(got_est.to_bits(), ref_est.to_bits(), "{}", q.query);
            assert_eq!(
                got_trace.spans().len(),
                ref_trace.spans().len(),
                "span count diverged for {} (pass {pass})",
                q.query
            );
            for (a, b) in ref_trace.spans().iter().zip(got_trace.spans()) {
                assert_eq!(a.name, b.name, "{} (pass {pass})", q.query);
                assert_eq!(a.attrs, b.attrs, "{} (pass {pass})", q.query);
            }
        }
    }
}
