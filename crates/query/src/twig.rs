//! The twig-query tree model (paper Section 2).
//!
//! Query node 0 is the implicit query root `q0`, always mapped to the
//! document root. Every other node is reached from its parent through an
//! axis (child/descendant) and a label test, optionally carries a value
//! predicate, and is either a **variable** (contributing a component to
//! every binding tuple) or a **filter** (an existential branch predicate
//! such as `[year > 2000]` that restricts matches without expanding the
//! binding-tuple space).

use std::fmt;
use xcluster_summaries::ValuePredicate;

/// The axis of the edge leading into a query node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Axis {
    /// XPath `/`: the element must be a child of the parent binding.
    Child,
    /// XPath `//`: the element must be a proper descendant.
    Descendant,
}

/// A tag test on a query node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LabelTest {
    /// Match a specific element tag.
    Tag(String),
    /// XPath `*`: match any tag.
    Wildcard,
}

impl LabelTest {
    /// Whether `label` satisfies this test.
    pub fn matches(&self, label: &str) -> bool {
        match self {
            LabelTest::Tag(t) => t == label,
            LabelTest::Wildcard => true,
        }
    }
}

/// Whether a query node binds a variable or filters existentially.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeKind {
    /// Binds a query variable; each match multiplies the binding tuples.
    Variable,
    /// Existential branch predicate; at least one match must exist.
    Filter,
}

/// One step of a twig query.
#[derive(Debug, Clone)]
pub struct TwigNode {
    /// Parent query node (`None` only for the implicit root).
    pub parent: Option<usize>,
    /// Axis from the parent binding.
    pub axis: Axis,
    /// Tag test.
    pub label: LabelTest,
    /// Optional value predicate on the bound element's content.
    pub predicate: Option<ValuePredicate>,
    /// Variable or filter semantics.
    pub kind: NodeKind,
    /// Child query nodes.
    pub children: Vec<usize>,
}

/// A twig query: a rooted tree of [`TwigNode`]s.
///
/// Build programmatically with [`TwigQuery::new`] + [`TwigQuery::add_step`]
/// or from text with [`crate::parser::parse_twig`].
#[derive(Debug, Clone)]
pub struct TwigQuery {
    nodes: Vec<TwigNode>,
}

impl Default for TwigQuery {
    fn default() -> Self {
        Self::new()
    }
}

impl TwigQuery {
    /// Creates a query containing only the implicit root `q0`.
    pub fn new() -> Self {
        TwigQuery {
            nodes: vec![TwigNode {
                parent: None,
                axis: Axis::Child,
                label: LabelTest::Wildcard,
                predicate: None,
                kind: NodeKind::Variable,
                children: Vec::new(),
            }],
        }
    }

    /// The implicit root's node id (always 0).
    pub fn root(&self) -> usize {
        0
    }

    /// Adds a step under `parent`, returning the new node id.
    pub fn add_step(
        &mut self,
        parent: usize,
        axis: Axis,
        label: LabelTest,
        kind: NodeKind,
    ) -> usize {
        assert!(parent < self.nodes.len(), "parent out of range");
        let id = self.nodes.len();
        self.nodes.push(TwigNode {
            parent: Some(parent),
            axis,
            label,
            predicate: None,
            kind,
            children: Vec::new(),
        });
        self.nodes[parent].children.push(id);
        id
    }

    /// Convenience: adds a variable step with a tag test.
    pub fn step(&mut self, parent: usize, axis: Axis, tag: &str) -> usize {
        self.add_step(
            parent,
            axis,
            LabelTest::Tag(tag.to_string()),
            NodeKind::Variable,
        )
    }

    /// Convenience: adds a filter step with a tag test.
    pub fn filter(&mut self, parent: usize, axis: Axis, tag: &str) -> usize {
        self.add_step(
            parent,
            axis,
            LabelTest::Tag(tag.to_string()),
            NodeKind::Filter,
        )
    }

    /// Attaches a value predicate to `node`.
    pub fn set_predicate(&mut self, node: usize, pred: ValuePredicate) {
        self.nodes[node].predicate = Some(pred);
    }

    /// The node table.
    pub fn node(&self, id: usize) -> &TwigNode {
        &self.nodes[id]
    }

    /// Number of query nodes, including the implicit root.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// A twig always has at least its implicit root.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Iterates node ids in insertion (topological) order.
    pub fn node_ids(&self) -> impl Iterator<Item = usize> {
        1..self.nodes.len()
    }

    /// Number of variable nodes (excluding the implicit root).
    pub fn num_variables(&self) -> usize {
        self.node_ids()
            .filter(|&i| self.nodes[i].kind == NodeKind::Variable)
            .count()
    }

    /// Whether any node carries a value predicate.
    pub fn has_predicates(&self) -> bool {
        self.nodes.iter().any(|n| n.predicate.is_some())
    }

    /// All value predicates with their owning nodes.
    pub fn predicates(&self) -> impl Iterator<Item = (usize, &ValuePredicate)> {
        self.nodes
            .iter()
            .enumerate()
            .filter_map(|(i, n)| n.predicate.as_ref().map(|p| (i, p)))
    }

    /// Filters must form existential subtrees: no variable may hang below
    /// a filter. Returns `true` when that invariant holds.
    pub fn filters_are_existential(&self) -> bool {
        self.node_ids().all(|i| {
            let n = &self.nodes[i];
            match n.parent {
                Some(p) if self.nodes[p].kind == NodeKind::Filter => n.kind == NodeKind::Filter,
                _ => true,
            }
        })
    }
}

impl fmt::Display for TwigQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn fmt_node(q: &TwigQuery, id: usize, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            let n = q.node(id);
            write!(
                f,
                "{}{}",
                match n.axis {
                    Axis::Child => "/",
                    Axis::Descendant => "//",
                },
                match &n.label {
                    LabelTest::Tag(t) => t.as_str(),
                    LabelTest::Wildcard => "*",
                }
            )?;
            if let Some(p) = &n.predicate {
                write!(f, "[{p}]")?;
            }
            // Normal form (re-parseable and print-stable): the *last*
            // variable child continues the path; every earlier variable
            // child prints as a `{…}` twig leg, filters as `[…]`, all in
            // child order.
            let main_child = n
                .children
                .iter()
                .copied()
                .rfind(|&c| q.node(c).kind == NodeKind::Variable);
            for &c in &n.children {
                if q.node(c).kind == NodeKind::Filter {
                    write!(f, "[")?;
                    fmt_node(q, c, f)?;
                    write!(f, "]")?;
                } else if Some(c) != main_child {
                    write!(f, "{{")?;
                    fmt_node(q, c, f)?;
                    write!(f, "}}")?;
                }
            }
            if let Some(c) = main_child {
                fmt_node(q, c, f)?;
            }
            Ok(())
        }
        // Same normal form at the implicit root.
        let main_child = self.nodes[0]
            .children
            .iter()
            .copied()
            .rfind(|&c| self.node(c).kind == NodeKind::Variable);
        for &c in &self.nodes[0].children {
            if self.node(c).kind == NodeKind::Filter {
                write!(f, "[")?;
                fmt_node(self, c, f)?;
                write!(f, "]")?;
            } else if Some(c) != main_child {
                write!(f, "{{")?;
                fmt_node(self, c, f)?;
                write!(f, "}}")?;
            }
        }
        if let Some(c) = main_child {
            fmt_node(self, c, f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_constructs_figure2_query() {
        // //paper[year > 2000] with title and abstract variable branches.
        let mut q = TwigQuery::new();
        let p = q.step(q.root(), Axis::Descendant, "paper");
        let y = q.filter(p, Axis::Child, "year");
        q.set_predicate(
            y,
            ValuePredicate::Range {
                lo: 2001,
                hi: u64::MAX,
            },
        );
        let t = q.step(p, Axis::Child, "title");
        q.set_predicate(
            t,
            ValuePredicate::Contains {
                needle: "Tree".into(),
            },
        );
        let _a = q.step(p, Axis::Child, "abstract");
        assert_eq!(q.len(), 5);
        assert_eq!(q.num_variables(), 3);
        assert!(q.has_predicates());
        assert!(q.filters_are_existential());
    }

    #[test]
    fn label_test_matching() {
        assert!(LabelTest::Tag("a".into()).matches("a"));
        assert!(!LabelTest::Tag("a".into()).matches("b"));
        assert!(LabelTest::Wildcard.matches("anything"));
    }

    #[test]
    fn display_round_trippable_shape() {
        let mut q = TwigQuery::new();
        let m = q.step(q.root(), Axis::Descendant, "movie");
        let y = q.filter(m, Axis::Child, "year");
        q.set_predicate(y, ValuePredicate::Range { lo: 1990, hi: 2000 });
        let c = q.step(m, Axis::Child, "cast");
        let _t = q.step(m, Axis::Child, "title");
        let _a = q.step(c, Axis::Descendant, "name");
        let s = q.to_string();
        assert_eq!(s, "//movie[/year[in 1990..2000]]{/cast//name}/title");
    }

    #[test]
    fn variable_under_filter_detected() {
        let mut q = TwigQuery::new();
        let fnode = q.filter(q.root(), Axis::Child, "a");
        let _v = q.step(fnode, Axis::Child, "b");
        assert!(!q.filters_are_existential());
    }

    #[test]
    fn empty_query_has_root_only() {
        let q = TwigQuery::new();
        assert_eq!(q.len(), 1);
        assert_eq!(q.num_variables(), 0);
        assert!(!q.has_predicates());
    }
}
