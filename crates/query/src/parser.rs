//! A compact text syntax for twig queries.
//!
//! Grammar (XPath child/descendant subset plus an explicit twig-branch
//! form):
//!
//! ```text
//! twig    := segment+
//! segment := ("//" | "/") name branch*
//! name    := tag | "*"
//! branch  := "[" inner "]"          existential filter branch
//!          | "{" relative-twig "}"  variable branch (extra twig leg)
//! inner   := vpred                  value predicate on the current step
//!          | relpath [vpred]        filter path, vpred on its last step
//! vpred   := (">" | ">=" | "<" | "<=" | "=") integer
//!          | "in" integer ".." integer
//!          | "contains(" chars ")"
//!          | "ftcontains(" term ("," term)* ")"
//!          | "similar(" integer ";" term ("," term)* ")"
//! ```
//!
//! Examples:
//!
//! * `//movie[year>2000]/title` — movies after 2000, binding their titles;
//! * `//movie{/cast/actor/name}{/title[contains(Tree)]}` — a twig with
//!   two variable legs (the paper's Figure 2 shape);
//! * `//open_auction[annotation/description ftcontains(gold)]` — keyword
//!   filter on a nested path.
//!
//! `ftcontains` terms are resolved against the document's term dictionary;
//! unknown terms map to a sentinel that matches nothing (their true
//! selectivity is zero).

use crate::twig::{Axis, LabelTest, NodeKind, TwigQuery};
use std::fmt;
use xcluster_summaries::ValuePredicate;
use xcluster_xml::{Interner, Symbol};

/// Sentinel term id for dictionary misses (never matches any text).
pub const UNKNOWN_TERM: Symbol = Symbol(u32::MAX);

/// A twig-syntax parse failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TwigParseError {
    /// Byte offset of the failure.
    pub offset: usize,
    /// Description.
    pub message: String,
}

impl fmt::Display for TwigParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "twig parse error at {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for TwigParseError {}

/// Parses a twig query, resolving `ftcontains` terms against `terms`.
pub fn parse_twig(input: &str, terms: &Interner) -> Result<TwigQuery, TwigParseError> {
    let mut p = P {
        s: input.as_bytes(),
        pos: 0,
        terms,
    };
    let mut q = TwigQuery::new();
    let root = q.root();
    // Branches of the implicit root: extra twig legs `{…}` and filter
    // branches `[…]` may precede the main path (this is the parser's own
    // `Display` normal form for multi-leg twigs rooted at the document).
    loop {
        p.skip_ws();
        if p.eat(b'{') {
            p.parse_path(&mut q, root, NodeKind::Variable, false)?;
            p.skip_ws();
            if !p.eat(b'}') {
                return p.fail("expected '}'");
            }
        } else if p.eat(b'[') {
            let last = p.parse_path(&mut q, root, NodeKind::Filter, false)?;
            p.skip_ws();
            if p.at_vpred() {
                let pred = p.parse_vpred()?;
                q.set_predicate(last, pred);
            }
            p.skip_ws();
            if !p.eat(b']') {
                return p.fail("expected ']'");
            }
        } else {
            break;
        }
    }
    if p.pos < p.s.len() {
        p.parse_path(&mut q, root, NodeKind::Variable, true)?;
    }
    p.skip_ws();
    if p.pos < p.s.len() {
        return p.fail("unexpected trailing input");
    }
    if q.len() == 1 {
        return p.fail("empty query");
    }
    Ok(q)
}

struct P<'a> {
    s: &'a [u8],
    pos: usize,
    terms: &'a Interner,
}

impl<'a> P<'a> {
    fn fail<T>(&self, msg: impl Into<String>) -> Result<T, TwigParseError> {
        Err(TwigParseError {
            offset: self.pos,
            message: msg.into(),
        })
    }

    fn peek(&self) -> Option<u8> {
        self.s.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> bool {
        if self.peek() == Some(b) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ') | Some(b'\t')) {
            self.pos += 1;
        }
    }

    /// Parses `axis name branch*` repeatedly until a closing delimiter.
    /// `require_axis`: whether the first segment must start with `/`
    /// (inside `{}`/`[]` a leading name implies the child axis).
    fn parse_path(
        &mut self,
        q: &mut TwigQuery,
        start: usize,
        kind: NodeKind,
        require_axis: bool,
    ) -> Result<usize, TwigParseError> {
        let mut cur = start;
        let mut first = true;
        loop {
            self.skip_ws();
            let axis = if self.eat(b'/') {
                if self.eat(b'/') {
                    Axis::Descendant
                } else {
                    Axis::Child
                }
            } else if first
                && !require_axis
                && matches!(self.peek(), Some(c) if is_name(c) || c == b'*')
            {
                Axis::Child
            } else if first {
                return self.fail("expected '/' or '//'");
            } else {
                break;
            };
            first = false;
            let label = self.parse_name()?;
            cur = q.add_step(cur, axis, label, kind);
            // Branches and predicates.
            loop {
                self.skip_ws();
                if self.eat(b'[') {
                    self.parse_bracket(q, cur)?;
                } else if self.eat(b'{') {
                    if kind == NodeKind::Filter {
                        return self.fail("variable branch inside a filter");
                    }
                    self.parse_path(q, cur, NodeKind::Variable, false)?;
                    self.skip_ws();
                    if !self.eat(b'}') {
                        return self.fail("expected '}'");
                    }
                } else {
                    break;
                }
            }
            if self.peek() != Some(b'/') {
                break;
            }
        }
        Ok(cur)
    }

    fn parse_name(&mut self) -> Result<LabelTest, TwigParseError> {
        self.skip_ws();
        if self.eat(b'*') {
            return Ok(LabelTest::Wildcard);
        }
        let start = self.pos;
        while matches!(self.peek(), Some(c) if is_name(c)) {
            self.pos += 1;
        }
        if self.pos == start {
            return self.fail("expected element name or '*'");
        }
        Ok(LabelTest::Tag(
            std::str::from_utf8(&self.s[start..self.pos])
                .map_err(|_| TwigParseError {
                    offset: start,
                    message: "name is not UTF-8".into(),
                })?
                .to_string(),
        ))
    }

    /// Contents of a `[...]` filter branch: either a value predicate on
    /// the current step, or a filter path whose last step may carry one.
    fn parse_bracket(&mut self, q: &mut TwigQuery, cur: usize) -> Result<(), TwigParseError> {
        self.skip_ws();
        if self.at_vpred() {
            let pred = self.parse_vpred()?;
            q.set_predicate(cur, pred);
        } else {
            let last = self.parse_path(q, cur, NodeKind::Filter, false)?;
            self.skip_ws();
            if self.at_vpred() {
                let pred = self.parse_vpred()?;
                q.set_predicate(last, pred);
            }
        }
        self.skip_ws();
        if !self.eat(b']') {
            return self.fail("expected ']'");
        }
        Ok(())
    }

    fn at_vpred(&self) -> bool {
        match self.peek() {
            Some(b'>') | Some(b'<') | Some(b'=') => true,
            _ => {
                let rest = &self.s[self.pos..];
                rest.starts_with(b"in ")
                    || rest.starts_with(b"contains(")
                    || rest.starts_with(b"ftcontains(")
                    || rest.starts_with(b"similar(")
            }
        }
    }

    fn parse_vpred(&mut self) -> Result<ValuePredicate, TwigParseError> {
        let rest = &self.s[self.pos..];
        if rest.starts_with(b"ftcontains(") {
            self.pos += b"ftcontains(".len();
            let mut terms = Vec::new();
            loop {
                self.skip_ws();
                let start = self.pos;
                while matches!(self.peek(), Some(c) if c != b',' && c != b')') {
                    self.pos += 1;
                }
                let word = std::str::from_utf8(&self.s[start..self.pos])
                    .unwrap_or("")
                    .trim()
                    .to_ascii_lowercase();
                if word.is_empty() {
                    return self.fail("empty ftcontains term");
                }
                terms.push(self.terms.get(&word).unwrap_or(UNKNOWN_TERM));
                if self.eat(b')') {
                    break;
                }
                if !self.eat(b',') {
                    return self.fail("expected ',' or ')' in ftcontains");
                }
            }
            return Ok(ValuePredicate::FtContains { terms });
        }
        if rest.starts_with(b"similar(") {
            self.pos += b"similar(".len();
            let min_overlap = self.parse_int()? as usize;
            self.skip_ws();
            if !self.eat(b';') {
                return self.fail("expected ';' after similar() overlap");
            }
            let mut terms = Vec::new();
            loop {
                self.skip_ws();
                let start = self.pos;
                while matches!(self.peek(), Some(c) if c != b',' && c != b')') {
                    self.pos += 1;
                }
                let word = std::str::from_utf8(&self.s[start..self.pos])
                    .unwrap_or("")
                    .trim()
                    .to_ascii_lowercase();
                if word.is_empty() {
                    return self.fail("empty similar() term");
                }
                terms.push(self.terms.get(&word).unwrap_or(UNKNOWN_TERM));
                if self.eat(b')') {
                    break;
                }
                if !self.eat(b',') {
                    return self.fail("expected ',' or ')' in similar()");
                }
            }
            return Ok(ValuePredicate::SimilarTo { terms, min_overlap });
        }
        if rest.starts_with(b"contains(") {
            self.pos += b"contains(".len();
            let start = self.pos;
            while matches!(self.peek(), Some(c) if c != b')') {
                self.pos += 1;
            }
            let needle = std::str::from_utf8(&self.s[start..self.pos])
                .map_err(|_| TwigParseError {
                    offset: start,
                    message: "needle is not UTF-8".into(),
                })?
                .to_string();
            if !self.eat(b')') {
                return self.fail("expected ')' after contains needle");
            }
            return Ok(ValuePredicate::Contains { needle });
        }
        if rest.starts_with(b"in ") {
            self.pos += 3;
            let lo = self.parse_int()?;
            if !(self.eat(b'.') && self.eat(b'.')) {
                return self.fail("expected '..' in range predicate");
            }
            let hi = self.parse_int()?;
            if lo > hi {
                return self.fail("range lower bound exceeds upper bound");
            }
            return Ok(ValuePredicate::Range { lo, hi });
        }
        // Comparison operators.
        if self.eat(b'>') {
            let eq = self.eat(b'=');
            let n = self.parse_int()?;
            let lo = if eq { n } else { n.saturating_add(1) };
            return Ok(ValuePredicate::Range { lo, hi: u64::MAX });
        }
        if self.eat(b'<') {
            let eq = self.eat(b'=');
            let n = self.parse_int()?;
            let hi = if eq { n } else { n.saturating_sub(1) };
            return Ok(ValuePredicate::Range { lo: 0, hi });
        }
        if self.eat(b'=') {
            let n = self.parse_int()?;
            return Ok(ValuePredicate::Range { lo: n, hi: n });
        }
        self.fail("expected value predicate")
    }

    fn parse_int(&mut self) -> Result<u64, TwigParseError> {
        self.skip_ws();
        let start = self.pos;
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.pos == start {
            return self.fail("expected integer");
        }
        std::str::from_utf8(&self.s[start..self.pos])
            .unwrap()
            .parse::<u64>()
            .map_err(|e| TwigParseError {
                offset: start,
                message: format!("bad integer: {e}"),
            })
    }
}

fn is_name(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_' || c == b'-' || c == b':'
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::twig::NodeKind;

    fn terms() -> Interner {
        let mut i = Interner::new();
        i.intern("xml");
        i.intern("synopsis");
        i
    }

    #[test]
    fn linear_path() {
        let q = parse_twig("//movie/title", &terms()).unwrap();
        assert_eq!(q.len(), 3);
        assert_eq!(q.node(1).axis, Axis::Descendant);
        assert_eq!(q.node(1).label, LabelTest::Tag("movie".into()));
        assert_eq!(q.node(2).axis, Axis::Child);
        assert_eq!(q.num_variables(), 2);
    }

    #[test]
    fn filter_branch_with_comparison() {
        let q = parse_twig("//movie[year>2000]/title", &terms()).unwrap();
        assert_eq!(q.len(), 4);
        let year = q
            .node_ids()
            .find(|&i| q.node(i).label == LabelTest::Tag("year".into()))
            .unwrap();
        assert_eq!(q.node(year).kind, NodeKind::Filter);
        assert_eq!(
            q.node(year).predicate,
            Some(ValuePredicate::Range {
                lo: 2001,
                hi: u64::MAX
            })
        );
        assert_eq!(q.num_variables(), 2);
    }

    #[test]
    fn comparison_operators() {
        let t = terms();
        let cases = [
            ("//a[x>=5]", 5, u64::MAX),
            ("//a[x>5]", 6, u64::MAX),
            ("//a[x<5]", 0, 4),
            ("//a[x<=5]", 0, 5),
            ("//a[x=5]", 5, 5),
            ("//a[x in 3..9]", 3, 9),
        ];
        for (src, lo, hi) in cases {
            let q = parse_twig(src, &t).unwrap();
            let x = q.node_ids().last().unwrap();
            assert_eq!(
                q.node(x).predicate,
                Some(ValuePredicate::Range { lo, hi }),
                "{src}"
            );
        }
    }

    #[test]
    fn self_predicate() {
        let q = parse_twig("//year[>2000]", &terms()).unwrap();
        assert_eq!(q.len(), 2);
        assert_eq!(
            q.node(1).predicate,
            Some(ValuePredicate::Range {
                lo: 2001,
                hi: u64::MAX
            })
        );
    }

    #[test]
    fn contains_predicate() {
        let q = parse_twig("//title[contains(Data Base)]", &terms()).unwrap();
        assert_eq!(
            q.node(1).predicate,
            Some(ValuePredicate::Contains {
                needle: "Data Base".into()
            })
        );
    }

    #[test]
    fn ftcontains_resolves_terms() {
        let t = terms();
        let xml = t.get("xml").unwrap();
        let syn = t.get("synopsis").unwrap();
        let q = parse_twig("//abstract[ftcontains(XML, synopsis)]", &t).unwrap();
        assert_eq!(
            q.node(1).predicate,
            Some(ValuePredicate::FtContains {
                terms: vec![xml, syn]
            })
        );
    }

    #[test]
    fn ftcontains_unknown_term_sentinel() {
        let q = parse_twig("//a[ftcontains(nosuchterm)]", &terms()).unwrap();
        assert_eq!(
            q.node(1).predicate,
            Some(ValuePredicate::FtContains {
                terms: vec![UNKNOWN_TERM]
            })
        );
    }

    #[test]
    fn variable_branches() {
        let q = parse_twig("//movie{/cast/actor}{/title}", &terms()).unwrap();
        // movie + cast + actor + title
        assert_eq!(q.len(), 5);
        assert_eq!(q.num_variables(), 4);
        let movie = 1;
        assert_eq!(q.node(movie).children.len(), 2);
    }

    #[test]
    fn nested_filter_path_with_predicate() {
        let q = parse_twig(
            "//open_auction[annotation/description ftcontains(xml)]",
            &terms(),
        )
        .unwrap();
        assert_eq!(q.len(), 4);
        let desc = q.node_ids().last().unwrap();
        assert_eq!(q.node(desc).kind, NodeKind::Filter);
        assert!(q.node(desc).predicate.is_some());
        assert!(q.filters_are_existential());
    }

    #[test]
    fn wildcard_step() {
        let q = parse_twig("//*/name", &terms()).unwrap();
        assert_eq!(q.node(1).label, LabelTest::Wildcard);
    }

    #[test]
    fn figure2_query_full_shape() {
        let q = parse_twig(
            "//paper[year>2000]{/title[contains(Tree)]}{/abstract[ftcontains(synopsis, xml)]}",
            &terms(),
        )
        .unwrap();
        assert_eq!(q.num_variables(), 3); // paper, title, abstract
        assert_eq!(q.len(), 5);
        assert!(q.filters_are_existential());
    }

    #[test]
    fn errors() {
        let t = terms();
        assert!(parse_twig("", &t).is_err());
        assert!(parse_twig("movie", &t).is_err()); // missing axis at top level
        assert!(parse_twig("//movie[", &t).is_err());
        assert!(parse_twig("//movie[year>]", &t).is_err());
        assert!(parse_twig("//movie{title", &t).is_err());
        assert!(parse_twig("//movie]extra", &t).is_err());
        assert!(parse_twig("//a[x in 9..3]", &t).is_err());
        assert!(parse_twig("//a[ftcontains()]", &t).is_err());
    }

    #[test]
    fn similar_predicate() {
        let t = terms();
        let xml = t.get("xml").unwrap();
        let syn = t.get("synopsis").unwrap();
        let q = parse_twig("//abs[similar(1; xml, synopsis)]", &t).unwrap();
        assert_eq!(
            q.node(1).predicate,
            Some(ValuePredicate::SimilarTo {
                terms: vec![xml, syn],
                min_overlap: 1
            })
        );
        assert!(parse_twig("//abs[similar(;xml)]", &t).is_err());
        assert!(parse_twig("//abs[similar(2 xml)]", &t).is_err());
    }

    #[test]
    fn variable_branch_inside_filter_rejected() {
        assert!(parse_twig("//a[b{c}]", &terms()).is_err());
    }
}
