//! Exact twig evaluation over an [`XmlTree`] — the ground truth against
//! which synopsis estimates are scored (paper Section 6.1: "true result
//! size").
//!
//! The selectivity `s(Q)` is the number of *binding tuples*: assignments
//! of document elements to every variable node of the twig satisfying all
//! structural (axis + label) and value constraints. Filter branches are
//! existentially quantified.
//!
//! [`EvalIndex`] precomputes preorder intervals and per-label element
//! lists so that descendant-axis matching is a binary search instead of a
//! subtree scan.

use crate::twig::{Axis, LabelTest, NodeKind, TwigQuery};
use std::collections::HashMap;
use xcluster_obs::{trace, SpanTimer, TraceBuilder};
use xcluster_xml::{NodeId, Symbol, XmlTree};

/// Registry handles for evaluator instrumentation (`eval.*`).
mod stats {
    use std::sync::{Arc, LazyLock};
    use xcluster_obs::{counter, histogram, Counter, Histogram};

    pub static QUERIES: LazyLock<Arc<Counter>> = LazyLock::new(|| counter("eval.queries"));
    pub static QUERY_NS: LazyLock<Arc<Histogram>> = LazyLock::new(|| histogram("eval.query_ns"));
    pub static INDEX_BUILD_NS: LazyLock<Arc<Histogram>> =
        LazyLock::new(|| histogram("eval.index_build_ns"));
}

/// Preorder/label index over a document, reusable across queries.
#[derive(Debug)]
pub struct EvalIndex {
    /// Preorder rank of each node (indexed by `NodeId`).
    pre: Vec<u32>,
    /// Largest preorder rank within each node's subtree (inclusive).
    max_pre: Vec<u32>,
    /// Per-label element lists, sorted by preorder rank.
    by_label: HashMap<Symbol, Vec<NodeId>>,
    /// All elements sorted by preorder rank (wildcard matching).
    all: Vec<NodeId>,
}

impl EvalIndex {
    /// Builds the index with one DFS over the document.
    pub fn build(tree: &XmlTree) -> Self {
        let _span = SpanTimer::new("eval.index_build", &stats::INDEX_BUILD_NS);
        let n = tree.len();
        let mut pre = vec![0u32; n];
        let mut max_pre = vec![0u32; n];
        let mut order: Vec<NodeId> = Vec::with_capacity(n);
        // Iterative DFS assigning preorder ranks.
        let mut stack = vec![(tree.root(), false)];
        let mut counter = 0u32;
        while let Some((node, processed)) = stack.pop() {
            if processed {
                // Post-visit: subtree max is the running counter - 1.
                max_pre[node.index()] = counter - 1;
                continue;
            }
            pre[node.index()] = counter;
            counter += 1;
            order.push(node);
            stack.push((node, true));
            let children: Vec<NodeId> = tree.children(node).collect();
            for c in children.into_iter().rev() {
                stack.push((c, false));
            }
        }
        let mut by_label: HashMap<Symbol, Vec<NodeId>> = HashMap::new();
        for &node in &order {
            by_label.entry(tree.label(node)).or_default().push(node);
        }
        EvalIndex {
            pre,
            max_pre,
            by_label,
            all: order,
        }
    }

    /// Preorder rank of `node`.
    pub fn pre(&self, node: NodeId) -> u32 {
        self.pre[node.index()]
    }

    /// Whether `desc` is a proper descendant of `anc`.
    pub fn is_descendant(&self, desc: NodeId, anc: NodeId) -> bool {
        let p = self.pre[desc.index()];
        p > self.pre[anc.index()] && p <= self.max_pre[anc.index()]
    }

    /// Elements with label `label` that are proper descendants of `of`.
    fn descendants_with_label<'a>(
        &'a self,
        tree: &XmlTree,
        of: NodeId,
        label: &LabelTest,
    ) -> &'a [NodeId] {
        let list: &[NodeId] = match label {
            LabelTest::Wildcard => &self.all,
            LabelTest::Tag(t) => match tree.labels().get(t) {
                Some(sym) => self.by_label.get(&sym).map(|v| v.as_slice()).unwrap_or(&[]),
                None => &[],
            },
        };
        let lo = self.pre[of.index()] + 1;
        let hi = self.max_pre[of.index()];
        if lo > hi {
            return &[];
        }
        let start = list.partition_point(|&n| self.pre[n.index()] < lo);
        let end = list.partition_point(|&n| self.pre[n.index()] <= hi);
        &list[start..end]
    }

    /// Total number of elements with a given tag.
    pub fn label_count(&self, tree: &XmlTree, tag: &str) -> usize {
        tree.labels()
            .get(tag)
            .and_then(|s| self.by_label.get(&s))
            .map_or(0, |v| v.len())
    }
}

/// Evaluates the exact selectivity (binding-tuple count) of `query`.
///
/// When trace capture is on ([`xcluster_obs::trace::capture_enabled`]),
/// records a shallow `eval.query` trace (one `eval.step` span per
/// top-level twig branch, with its multiplicative factor) into the
/// global ring buffer, so exact evaluation shows up next to the
/// synopsis estimate in `xcluster trace` output and Chrome exports.
pub fn evaluate(query: &TwigQuery, tree: &XmlTree, index: &EvalIndex) -> f64 {
    debug_assert!(query.filters_are_existential());
    stats::QUERIES.inc();
    let _span = SpanTimer::new("eval.query", &stats::QUERY_NS);
    let mut tb = trace::capture_enabled().then(|| {
        let mut tb = TraceBuilder::new("eval.query");
        tb.attr_str(tb.root(), "query", query.to_string());
        tb
    });
    let mut ev = Evaluator {
        query,
        tree,
        index,
        var_memo: HashMap::new(),
        filter_memo: HashMap::new(),
    };
    let root = query.root();
    let mut product = 1.0;
    for &c in &query.node(root).children {
        let step = tb.as_mut().map(|tb| {
            let id = tb.start("eval.step");
            tb.attr_u64(id, "qnode", c as u64);
            id
        });
        let factor = ev.child_factor(c, tree.root());
        if let (Some(tb), Some(id)) = (tb.as_mut(), step) {
            tb.attr_f64(id, "factor", factor);
            tb.end(id);
        }
        product *= factor;
        if product == 0.0 && tb.is_none() {
            break;
        }
    }
    if let Some(mut tb) = tb {
        tb.attr_f64(tb.root(), "result", product);
        trace::record(tb.finish());
    }
    product
}

struct Evaluator<'a> {
    query: &'a TwigQuery,
    tree: &'a XmlTree,
    index: &'a EvalIndex,
    /// Binding count of the variable subtree rooted at (qnode, element).
    var_memo: HashMap<(usize, NodeId), f64>,
    /// Existential satisfaction of the filter subtree at (qnode, element).
    filter_memo: HashMap<(usize, NodeId), bool>,
}

impl Evaluator<'_> {
    /// The multiplicative contribution of query child `q` when its parent
    /// is bound to `e`: the number of valid bindings of the `q`-subtree
    /// (variables) or the 0/1 existence indicator (filters).
    fn child_factor(&mut self, q: usize, e: NodeId) -> f64 {
        let node = self.query.node(q);
        match node.kind {
            NodeKind::Variable => {
                let mut sum = 0.0;
                for cand in self.candidates(q, e) {
                    sum += self.subtree_bindings(q, cand);
                }
                sum
            }
            NodeKind::Filter => {
                let cands = self.candidates(q, e);
                if cands.iter().any(|&cand| self.filter_satisfied(q, cand)) {
                    1.0
                } else {
                    0.0
                }
            }
        }
    }

    /// Elements matching `q`'s axis + label from parent binding `e`.
    fn candidates(&self, q: usize, e: NodeId) -> Vec<NodeId> {
        let node = self.query.node(q);
        match node.axis {
            Axis::Child => self
                .tree
                .children(e)
                .filter(|&c| node.label.matches(self.tree.label_str(c)))
                .collect(),
            Axis::Descendant => self
                .index
                .descendants_with_label(self.tree, e, &node.label)
                .to_vec(),
        }
    }

    /// Number of bindings of the variable subtree rooted at `q` when `q`
    /// is bound to `e` (0 if `e` fails `q`'s own predicate).
    fn subtree_bindings(&mut self, q: usize, e: NodeId) -> f64 {
        if let Some(&m) = self.var_memo.get(&(q, e)) {
            return m;
        }
        let node = self.query.node(q);
        let ok = node
            .predicate
            .as_ref()
            .is_none_or(|p| p.matches(self.tree.value(e)));
        let result = if !ok {
            0.0
        } else {
            let mut product = 1.0;
            for &c in &node.children {
                product *= self.child_factor(c, e);
                if product == 0.0 {
                    break;
                }
            }
            product
        };
        self.var_memo.insert((q, e), result);
        result
    }

    /// Whether the filter subtree at `q` is satisfied by binding `e`.
    fn filter_satisfied(&mut self, q: usize, e: NodeId) -> bool {
        if let Some(&m) = self.filter_memo.get(&(q, e)) {
            return m;
        }
        let node = self.query.node(q);
        let mut ok = node
            .predicate
            .as_ref()
            .is_none_or(|p| p.matches(self.tree.value(e)));
        if ok {
            for &c in &node.children {
                let cands = self.candidates(c, e);
                if !cands.iter().any(|&cand| self.filter_satisfied(c, cand)) {
                    ok = false;
                    break;
                }
            }
        }
        self.filter_memo.insert((q, e), ok);
        ok
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_twig;
    use crate::twig::TwigQuery;
    use xcluster_summaries::ValuePredicate;
    use xcluster_xml::{parse, Value};

    fn bib() -> (XmlTree, EvalIndex) {
        // The paper's Figure 1 document.
        let mut t = XmlTree::new("dblp");
        let a1 = t.add_child(t.root(), "author");
        let p2 = t.add_child(a1, "paper");
        let y3 = t.add_child(p2, "year");
        t.set_value(y3, Value::Numeric(2000));
        let t4 = t.add_child(p2, "title");
        t.set_value(t4, Value::String("Counting Twig Matches".into()));
        let k5 = t.add_child(p2, "keywords");
        t.set_text_value(k5, "xml summary");
        let n6 = t.add_child(a1, "name");
        t.set_value(n6, Value::String("First Author".into()));
        let p7 = t.add_child(a1, "paper");
        let y8 = t.add_child(p7, "year");
        t.set_value(y8, Value::Numeric(2002));
        let t9 = t.add_child(p7, "title");
        t.set_value(t9, Value::String("Holistic Twigs".into()));
        let ab10 = t.add_child(p7, "abstract");
        t.set_text_value(ab10, "xml employs a tree synopsis");
        let a11 = t.add_child(t.root(), "author");
        let n12 = t.add_child(a11, "name");
        t.set_value(n12, Value::String("Second Author".into()));
        let b13 = t.add_child(a11, "book");
        let y14 = t.add_child(b13, "year");
        t.set_value(y14, Value::Numeric(2002));
        let t15 = t.add_child(b13, "title");
        t.set_value(t15, Value::String("Database Systems".into()));
        let f16 = t.add_child(b13, "foreword");
        t.set_text_value(f16, "database systems have evolved");
        let idx = EvalIndex::build(&t);
        (t, idx)
    }

    #[test]
    fn index_descendant_relation() {
        let (t, idx) = bib();
        let a1 = t.children(t.root()).next().unwrap();
        let p2 = t.children(a1).next().unwrap();
        let y3 = t.children(p2).next().unwrap();
        assert!(idx.is_descendant(y3, a1));
        assert!(idx.is_descendant(y3, t.root()));
        assert!(!idx.is_descendant(a1, y3));
        assert!(!idx.is_descendant(a1, a1));
    }

    #[test]
    fn simple_descendant_count() {
        let (t, idx) = bib();
        let q = parse_twig("//paper", t.terms()).unwrap();
        assert_eq!(evaluate(&q, &t, &idx), 2.0);
        let q = parse_twig("//year", t.terms()).unwrap();
        assert_eq!(evaluate(&q, &t, &idx), 3.0);
    }

    #[test]
    fn child_vs_descendant_axis() {
        let (t, idx) = bib();
        assert_eq!(
            evaluate(&parse_twig("/author", t.terms()).unwrap(), &t, &idx),
            2.0
        );
        assert_eq!(
            evaluate(&parse_twig("/year", t.terms()).unwrap(), &t, &idx),
            0.0
        );
        assert_eq!(
            evaluate(
                &parse_twig("/author/paper/year", t.terms()).unwrap(),
                &t,
                &idx
            ),
            2.0
        );
    }

    #[test]
    fn wildcard_counts_everything() {
        let (t, idx) = bib();
        assert_eq!(
            evaluate(&parse_twig("//*", t.terms()).unwrap(), &t, &idx),
            16.0
        );
        assert_eq!(
            evaluate(&parse_twig("/*", t.terms()).unwrap(), &t, &idx),
            2.0
        );
    }

    #[test]
    fn binding_tuples_multiply_across_branches() {
        let (t, idx) = bib();
        // For each author: papers × name bindings. First author: 2 papers ×
        // 1 name = 2; second: 0 papers (book) → 0 total for that author.
        let q = parse_twig("//author{/paper}{/name}", t.terms()).unwrap();
        assert_eq!(evaluate(&q, &t, &idx), 2.0);
        // paper/title × paper/year per paper = 1 each → 2 papers = 2.
        let q = parse_twig("//paper{/title}{/year}", t.terms()).unwrap();
        assert_eq!(evaluate(&q, &t, &idx), 2.0);
    }

    #[test]
    fn numeric_filter() {
        let (t, idx) = bib();
        let q = parse_twig("//paper[year>2000]", t.terms()).unwrap();
        assert_eq!(evaluate(&q, &t, &idx), 1.0);
        let q = parse_twig("//paper[year>=2000]", t.terms()).unwrap();
        assert_eq!(evaluate(&q, &t, &idx), 2.0);
        let q = parse_twig("//*[year=2002]", t.terms()).unwrap();
        assert_eq!(evaluate(&q, &t, &idx), 2.0); // paper + book
    }

    #[test]
    fn predicate_on_variable_node() {
        let (t, idx) = bib();
        let q = parse_twig("//title[contains(Twig)]", t.terms()).unwrap();
        assert_eq!(evaluate(&q, &t, &idx), 2.0);
        let q = parse_twig("//title[contains(Database)]", t.terms()).unwrap();
        assert_eq!(evaluate(&q, &t, &idx), 1.0);
    }

    #[test]
    fn ftcontains_filter() {
        let (t, idx) = bib();
        let q = parse_twig("//paper[abstract ftcontains(xml, synopsis)]", t.terms()).unwrap();
        assert_eq!(evaluate(&q, &t, &idx), 1.0);
        let q = parse_twig("//paper[abstract ftcontains(nosuch)]", t.terms()).unwrap();
        assert_eq!(evaluate(&q, &t, &idx), 0.0);
    }

    #[test]
    fn figure2_query() {
        let (t, idx) = bib();
        // //paper[year>2000] {title} {abstract ftcontains synopsis}:
        // only p7 qualifies (year 2002, has abstract with "synopsis").
        let q = parse_twig(
            "//paper[year>2000]{/title}{/abstract[ftcontains(synopsis)]}",
            t.terms(),
        )
        .unwrap();
        assert_eq!(evaluate(&q, &t, &idx), 1.0);
    }

    #[test]
    fn nested_filter_paths() {
        let (t, idx) = bib();
        let q = parse_twig("//author[paper/title contains(Holistic)]/name", t.terms()).unwrap();
        assert_eq!(evaluate(&q, &t, &idx), 1.0);
        let q = parse_twig("//author[book]/name", t.terms()).unwrap();
        assert_eq!(evaluate(&q, &t, &idx), 1.0);
    }

    #[test]
    fn descendant_axis_inside_query() {
        let (t, idx) = bib();
        let q = parse_twig("/author//title", t.terms()).unwrap();
        assert_eq!(evaluate(&q, &t, &idx), 3.0);
    }

    #[test]
    fn empty_result_on_absent_labels() {
        let (t, idx) = bib();
        let q = parse_twig("//nonexistent", t.terms()).unwrap();
        assert_eq!(evaluate(&q, &t, &idx), 0.0);
    }

    #[test]
    fn recursion_safe_on_nested_same_labels() {
        // a > a > a chain: //a//a counts (ancestor, descendant) pairs... as
        // separate variables it counts each binding of the deeper variable
        // per outer binding: outer a at depth1 has 2 descendants a, a at
        // depth2 has 1 → //a//a = 3.
        let t = parse("<r><a><a><a></a></a></a></r>").unwrap();
        let idx = EvalIndex::build(&t);
        let q = parse_twig("//a//a", t.terms()).unwrap();
        assert_eq!(evaluate(&q, &t, &idx), 3.0);
    }

    #[test]
    fn programmatic_builder_query() {
        let (t, idx) = bib();
        let mut q = TwigQuery::new();
        let paper = q.step(q.root(), crate::twig::Axis::Descendant, "paper");
        let year = q.filter(paper, crate::twig::Axis::Child, "year");
        q.set_predicate(year, ValuePredicate::Range { lo: 0, hi: 2001 });
        assert_eq!(evaluate(&q, &t, &idx), 1.0);
    }

    #[test]
    fn label_count_helper() {
        let (t, idx) = bib();
        assert_eq!(idx.label_count(&t, "paper"), 2);
        assert_eq!(idx.label_count(&t, "year"), 3);
        assert_eq!(idx.label_count(&t, "zzz"), 0);
    }

    #[test]
    fn large_dataset_smoke() {
        let d = xcluster_datagen::imdb::generate(&xcluster_datagen::imdb::ImdbConfig {
            num_movies: 300,
            seed: 5,
        });
        let idx = EvalIndex::build(&d.tree);
        // Every sixth entry is a series, the rest are movies.
        let movies = evaluate(
            &parse_twig("//movie", d.tree.terms()).unwrap(),
            &d.tree,
            &idx,
        );
        assert_eq!(movies, 250.0);
        let series = evaluate(
            &parse_twig("//series", d.tree.terms()).unwrap(),
            &d.tree,
            &idx,
        );
        assert_eq!(series, 50.0);
        let filtered = evaluate(
            &parse_twig("//movie[year>=1990]/title", d.tree.terms()).unwrap(),
            &d.tree,
            &idx,
        );
        assert!(filtered > 0.0 && filtered < 300.0, "{filtered}");
        let twig = evaluate(
            &parse_twig("//movie{/cast/actor/name}{/director/name}", d.tree.terms()).unwrap(),
            &d.tree,
            &idx,
        );
        assert!(twig >= 300.0, "{twig}");
    }
}
