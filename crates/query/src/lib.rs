//! Twig queries with value predicates (paper Section 2, "Query Model"),
//! their exact evaluation over XML trees, and the workload generators of
//! the experimental study (Section 6.1).
//!
//! A twig query is a node- and edge-labeled tree of *steps*. Each step
//! binds a query variable (or acts as an existential *filter* branch),
//! constrains the element label (tag test or wildcard) and the axis from
//! its parent (child `/` or descendant `//`), and may carry a value
//! predicate — numeric range, substring `contains`, or IR-style
//! `ftcontains`. The *selectivity* `s(Q)` of a twig is the number of
//! binding tuples: assignments of document elements to all *variable*
//! query nodes that satisfy every structural and value constraint.
//!
//! * [`twig`] — the query tree model and builder;
//! * [`parser`] — a compact text syntax (`//movie[year>2000]{title}`);
//! * [`eval`] — the exact evaluator (ground truth for the experiments);
//! * [`workload`] — positive/negative workload generators biased toward
//!   high-count paths, as in the paper's methodology.

pub mod eval;
pub mod parser;
pub mod twig;
pub mod workload;

pub use eval::{evaluate, EvalIndex};
pub use parser::{parse_twig, TwigParseError};
pub use twig::{Axis, LabelTest, NodeKind, TwigNode, TwigQuery};
pub use workload::{classify, QueryClass, Workload, WorkloadConfig, WorkloadQuery};
