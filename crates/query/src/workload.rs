//! Workload generation (paper Section 6.1, "Workloads").
//!
//! The paper evaluates on workloads of random *positive* twig queries
//! (non-zero selectivity), sampled with a bias toward high counts, with
//! random predicates attached at nodes with values; plus *negative*
//! workloads (zero selectivity) used to confirm near-zero estimates.
//!
//! This generator reproduces that methodology directly against the data
//! tree: it picks a uniformly random target element (high-count paths are
//! hit proportionally often — the high-count bias), turns its root path
//! into a twig with randomized child/descendant axes, optionally grows
//! extra structural branches along the path (guaranteed positive because
//! they are sampled from the element's actual neighbourhood), and
//! instantiates predicates from the element's actual value (a range
//! around its number, a substring of its string, terms from its text).

use crate::eval::{evaluate, EvalIndex};
use crate::twig::{Axis, LabelTest, NodeKind, TwigQuery};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use xcluster_summaries::ValuePredicate;
use xcluster_xml::{NodeId, Value, ValueType, XmlTree};

/// The predicate class of a workload query (the series of Figure 8).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QueryClass {
    /// No value predicates (pure path/branching structure).
    Struct,
    /// Carries a numeric range predicate.
    Numeric,
    /// Carries a substring predicate.
    String,
    /// Carries a keyword (`ftcontains`) predicate.
    Text,
}

impl QueryClass {
    /// All classes in report order.
    pub const ALL: [QueryClass; 4] = [
        QueryClass::Struct,
        QueryClass::Numeric,
        QueryClass::String,
        QueryClass::Text,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            QueryClass::Struct => "Struct",
            QueryClass::Numeric => "Numeric",
            QueryClass::String => "String",
            QueryClass::Text => "Text",
        }
    }
}

/// Classifies an arbitrary twig by its first value predicate (the
/// generators attach at most one per query): `Range` → `Numeric`,
/// `Contains` → `String`, keyword predicates → `Text`, none → `Struct`.
///
/// The serving-side shadow accuracy monitor uses this to bucket live
/// queries into the same classes as offline workload reports.
pub fn classify(query: &TwigQuery) -> QueryClass {
    match query.predicates().next().map(|(_, p)| p) {
        None => QueryClass::Struct,
        Some(ValuePredicate::Range { .. }) => QueryClass::Numeric,
        Some(ValuePredicate::Contains { .. }) => QueryClass::String,
        Some(ValuePredicate::FtContains { .. } | ValuePredicate::SimilarTo { .. }) => {
            QueryClass::Text
        }
    }
}

/// One generated query with its ground-truth selectivity.
#[derive(Debug, Clone)]
pub struct WorkloadQuery {
    /// The twig.
    pub query: TwigQuery,
    /// Its predicate class.
    pub class: QueryClass,
    /// Exact binding-tuple count on the source document.
    pub true_count: f64,
}

/// A scored workload plus the sanity bound of the error metric.
#[derive(Debug)]
pub struct Workload {
    /// The queries.
    pub queries: Vec<WorkloadQuery>,
    /// `s`: the 10-percentile of true counts (paper Section 6.1) —
    /// queries below it are "low-count" for the Figure 9 metric.
    pub sanity_bound: f64,
}

impl Workload {
    /// Average true result size of queries in `class`.
    pub fn avg_result_size(&self, class: QueryClass) -> f64 {
        let (mut sum, mut n) = (0.0, 0usize);
        for q in &self.queries {
            if q.class == class {
                sum += q.true_count;
                n += 1;
            }
        }
        if n == 0 {
            0.0
        } else {
            sum / n as f64
        }
    }

    /// Average true result size over all queries with predicates.
    pub fn avg_predicate_result_size(&self) -> f64 {
        let (mut sum, mut n) = (0.0, 0usize);
        for q in &self.queries {
            if q.class != QueryClass::Struct {
                sum += q.true_count;
                n += 1;
            }
        }
        if n == 0 {
            0.0
        } else {
            sum / n as f64
        }
    }
}

/// Workload-generation parameters.
#[derive(Debug, Clone)]
pub struct WorkloadConfig {
    /// Number of queries to generate.
    pub num_queries: usize,
    /// RNG seed.
    pub seed: u64,
    /// Relative class weights `[Struct, Numeric, String, Text]`. Classes
    /// with no eligible target elements are dropped automatically.
    pub class_weights: [f64; 4],
    /// Element nodes eligible as predicate targets (e.g. only elements on
    /// summarized value paths). `None` ⇒ every valued element.
    pub allowed_targets: Option<Vec<NodeId>>,
    /// Probability of compressing a path step into a descendant axis.
    pub descendant_prob: f64,
    /// Maximum extra structural branches per query.
    pub max_branches: usize,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            num_queries: 1000,
            seed: 0xF00D,
            class_weights: [0.25, 0.25, 0.25, 0.25],
            allowed_targets: None,
            descendant_prob: 0.35,
            max_branches: 2,
        }
    }
}

/// Generates a positive workload over `tree`.
pub fn generate_positive(tree: &XmlTree, index: &EvalIndex, cfg: &WorkloadConfig) -> Workload {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let targets = collect_targets(tree, cfg);
    let all_elements: Vec<NodeId> = tree.all_nodes().skip(1).collect();
    let mut weights = cfg.class_weights;
    for (i, class) in QueryClass::ALL.iter().enumerate() {
        let available = match class {
            QueryClass::Struct => !all_elements.is_empty(),
            QueryClass::Numeric => !targets.numeric.is_empty(),
            QueryClass::String => !targets.string.is_empty(),
            QueryClass::Text => !targets.text.is_empty(),
        };
        if !available {
            weights[i] = 0.0;
        }
    }
    let mut queries = Vec::with_capacity(cfg.num_queries);
    let mut guard = 0;
    while queries.len() < cfg.num_queries && guard < cfg.num_queries * 20 {
        guard += 1;
        let class = pick_class(&mut rng, &weights);
        let target = match class {
            QueryClass::Struct => all_elements[rng.gen_range(0..all_elements.len())],
            QueryClass::Numeric => targets.numeric[rng.gen_range(0..targets.numeric.len())],
            QueryClass::String => targets.string[rng.gen_range(0..targets.string.len())],
            QueryClass::Text => targets.text[rng.gen_range(0..targets.text.len())],
        };
        let Some((query, _)) = build_query(tree, target, class, cfg, &mut rng) else {
            continue;
        };
        let true_count = evaluate(&query, tree, index);
        if true_count <= 0.0 {
            // Positive workloads only; branch+predicate combinations can
            // very occasionally zero out (e.g. substring spanning escaped
            // chars) — resample.
            continue;
        }
        queries.push(WorkloadQuery {
            query,
            class,
            true_count,
        });
    }
    let sanity_bound = percentile_10(&queries);
    Workload {
        queries,
        sanity_bound,
    }
}

/// Generates a negative workload: structurally valid twigs whose value
/// predicate is unsatisfiable (out-of-domain range / alien substring /
/// unknown term), so the true selectivity is exactly zero.
pub fn generate_negative(tree: &XmlTree, index: &EvalIndex, cfg: &WorkloadConfig) -> Workload {
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xDEAD_BEEF);
    let targets = collect_targets(tree, cfg);
    let mut queries = Vec::with_capacity(cfg.num_queries);
    let classes: Vec<(QueryClass, &[NodeId])> = vec![
        (QueryClass::Numeric, &targets.numeric),
        (QueryClass::String, &targets.string),
        (QueryClass::Text, &targets.text),
    ];
    let classes: Vec<_> = classes.into_iter().filter(|(_, t)| !t.is_empty()).collect();
    if classes.is_empty() {
        return Workload {
            queries,
            sanity_bound: 1.0,
        };
    }
    let mut guard = 0;
    while queries.len() < cfg.num_queries && guard < cfg.num_queries * 20 {
        guard += 1;
        let (class, pool) = &classes[rng.gen_range(0..classes.len())];
        let target = pool[rng.gen_range(0..pool.len())];
        let Some((mut query, last)) = build_query(tree, target, QueryClass::Struct, cfg, &mut rng)
        else {
            continue;
        };
        // Attach an unsatisfiable predicate to the sampled (summarized)
        // target node.
        let pred = match class {
            QueryClass::Numeric => ValuePredicate::Range {
                lo: 1_000_000_007,
                hi: 1_000_000_107,
            },
            QueryClass::String => ValuePredicate::Contains {
                needle: "#@!impossible!@#".into(),
            },
            QueryClass::Text => ValuePredicate::FtContains {
                terms: vec![crate::parser::UNKNOWN_TERM],
            },
            QueryClass::Struct => unreachable!(),
        };
        query.set_predicate(last, pred);
        let true_count = evaluate(&query, tree, index);
        debug_assert_eq!(true_count, 0.0);
        queries.push(WorkloadQuery {
            query,
            class: *class,
            true_count,
        });
    }
    Workload {
        queries,
        sanity_bound: 1.0,
    }
}

struct Targets {
    numeric: Vec<NodeId>,
    string: Vec<NodeId>,
    text: Vec<NodeId>,
}

fn collect_targets(tree: &XmlTree, cfg: &WorkloadConfig) -> Targets {
    let mut t = Targets {
        numeric: Vec::new(),
        string: Vec::new(),
        text: Vec::new(),
    };
    let push = |t: &mut Targets, n: NodeId| match tree.value_type(n) {
        ValueType::Numeric => t.numeric.push(n),
        ValueType::String => t.string.push(n),
        ValueType::Text => t.text.push(n),
        ValueType::None => {}
    };
    match &cfg.allowed_targets {
        Some(allowed) => {
            for &n in allowed {
                push(&mut t, n);
            }
        }
        None => {
            for n in tree.all_nodes() {
                push(&mut t, n);
            }
        }
    }
    t
}

fn pick_class(rng: &mut StdRng, weights: &[f64; 4]) -> QueryClass {
    let total: f64 = weights.iter().sum();
    let mut x = rng.gen_range(0.0..total.max(f64::MIN_POSITIVE));
    for (i, &w) in weights.iter().enumerate() {
        if x < w {
            return QueryClass::ALL[i];
        }
        x -= w;
    }
    QueryClass::Struct
}

/// Builds a positive twig whose main path leads to `target`, with
/// randomized axes, optional structural branches, and (for predicate
/// classes) a predicate instantiated from `target`'s actual value.
fn build_query(
    tree: &XmlTree,
    target: NodeId,
    class: QueryClass,
    cfg: &WorkloadConfig,
    rng: &mut StdRng,
) -> Option<(TwigQuery, usize)> {
    // The chain of elements root → target (excluding the root).
    let mut chain = Vec::new();
    let mut cur = target;
    while let Some(p) = tree.parent(cur) {
        chain.push(cur);
        cur = p;
    }
    chain.reverse();
    if chain.is_empty() {
        return None;
    }
    let mut q = TwigQuery::new();
    let mut qcur = q.root();
    // Map chain positions → query nodes for branch anchoring.
    let mut anchors: Vec<(usize, usize)> = Vec::new(); // (chain idx, qnode)
    let mut i = 0;
    while i < chain.len() {
        let is_last = i == chain.len() - 1;
        let (axis, next_i) = if !is_last && rng.gen_bool(cfg.descendant_prob) {
            // Skip ahead: descendant axis to a later chain element.
            let j = rng.gen_range(i + 1..chain.len());
            (Axis::Descendant, j)
        } else {
            (Axis::Child, i)
        };
        let elem = chain[next_i];
        qcur = q.add_step(
            qcur,
            axis,
            LabelTest::Tag(tree.label_str(elem).to_string()),
            NodeKind::Variable,
        );
        anchors.push((next_i, qcur));
        i = next_i + 1;
    }
    // Extra structural branches from random anchors: a sibling subtree of
    // the chain guarantees positivity.
    let n_branches = rng.gen_range(0..=cfg.max_branches);
    for _ in 0..n_branches {
        let &(ci, qa) = &anchors[rng.gen_range(0..anchors.len())];
        let elem = chain[ci];
        let kids: Vec<NodeId> = tree.children(elem).collect();
        if kids.is_empty() {
            continue;
        }
        let kid = kids[rng.gen_range(0..kids.len())];
        let kind = if rng.gen_bool(0.5) {
            NodeKind::Variable
        } else {
            NodeKind::Filter
        };
        q.add_step(
            qa,
            Axis::Child,
            LabelTest::Tag(tree.label_str(kid).to_string()),
            kind,
        );
    }
    let target_qnode = anchors.last().unwrap().1;
    // Predicate on the target node, instantiated from its value.
    if class != QueryClass::Struct {
        let pred = predicate_from_value(tree.value(target), rng)?;
        q.set_predicate(target_qnode, pred);
    }
    Some((q, target_qnode))
}

fn predicate_from_value(value: &Value, rng: &mut StdRng) -> Option<ValuePredicate> {
    match value {
        Value::Numeric(v) => {
            let spread = (*v / 4).max(5);
            let lo = v.saturating_sub(rng.gen_range(0..=spread));
            let hi = v + rng.gen_range(0..=spread);
            Some(ValuePredicate::Range { lo, hi })
        }
        Value::String(s) => {
            if s.is_empty() || !s.is_ascii() {
                return None;
            }
            // Paper Sec. 6.1: predicate sampling is biased toward high
            // counts. Whole tokens (and their prefixes) recur across
            // elements far more often than arbitrary character windows,
            // so prefer them; keep a tail of raw substrings for variety.
            let tokens: Vec<&str> = s.split_whitespace().collect();
            if tokens.is_empty() {
                return None;
            }
            let t = tokens[rng.gen_range(0..tokens.len())];
            let needle: String = if rng.gen_bool(0.6) {
                t.to_string()
            } else {
                let max = t.len().min(5);
                let len = rng.gen_range(3.min(max)..=max);
                t[..len].to_string()
            };
            if needle.is_empty() {
                return None;
            }
            Some(ValuePredicate::Contains { needle })
        }
        Value::Text(tv) => {
            if tv.is_empty() {
                return None;
            }
            let k = if rng.gen_bool(0.3) && tv.len() >= 2 {
                2
            } else {
                1
            };
            let mut terms = Vec::with_capacity(k);
            for _ in 0..k {
                terms.push(tv.terms()[rng.gen_range(0..tv.len())]);
            }
            terms.dedup();
            Some(ValuePredicate::FtContains { terms })
        }
        Value::None => None,
    }
}

fn percentile_10(queries: &[WorkloadQuery]) -> f64 {
    if queries.is_empty() {
        return 1.0;
    }
    let mut counts: Vec<f64> = queries.iter().map(|q| q.true_count).collect();
    counts.sort_by(|a, b| a.total_cmp(b));
    let idx = (counts.len() as f64 * 0.10).floor() as usize;
    counts[idx.min(counts.len() - 1)].max(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use xcluster_datagen::imdb::{generate, ImdbConfig};

    fn setup() -> (XmlTree, EvalIndex) {
        let d = generate(&ImdbConfig {
            num_movies: 150,
            seed: 21,
        });
        let idx = EvalIndex::build(&d.tree);
        (d.tree, idx)
    }

    #[test]
    fn positive_workload_is_positive() {
        let (tree, idx) = setup();
        let cfg = WorkloadConfig {
            num_queries: 60,
            ..WorkloadConfig::default()
        };
        let w = generate_positive(&tree, &idx, &cfg);
        assert_eq!(w.queries.len(), 60);
        for q in &w.queries {
            assert!(q.true_count > 0.0, "query {} has zero count", q.query);
        }
        assert!(w.sanity_bound >= 1.0);
    }

    #[test]
    fn workload_covers_all_classes() {
        let (tree, idx) = setup();
        let cfg = WorkloadConfig {
            num_queries: 120,
            ..WorkloadConfig::default()
        };
        let w = generate_positive(&tree, &idx, &cfg);
        for class in QueryClass::ALL {
            let n = w.queries.iter().filter(|q| q.class == class).count();
            assert!(n > 0, "class {} missing", class.name());
        }
    }

    #[test]
    fn predicate_classes_carry_right_predicates() {
        let (tree, idx) = setup();
        let cfg = WorkloadConfig {
            num_queries: 80,
            ..WorkloadConfig::default()
        };
        let w = generate_positive(&tree, &idx, &cfg);
        for q in &w.queries {
            let preds: Vec<_> = q.query.predicates().map(|(_, p)| p.clone()).collect();
            match q.class {
                QueryClass::Struct => assert!(preds.is_empty()),
                QueryClass::Numeric => {
                    assert!(preds
                        .iter()
                        .any(|p| matches!(p, ValuePredicate::Range { .. })));
                }
                QueryClass::String => {
                    assert!(preds
                        .iter()
                        .any(|p| matches!(p, ValuePredicate::Contains { .. })));
                }
                QueryClass::Text => {
                    assert!(preds
                        .iter()
                        .any(|p| matches!(p, ValuePredicate::FtContains { .. })));
                }
            }
        }
    }

    #[test]
    fn struct_queries_have_larger_results_than_predicate_queries() {
        // The Table 2 phenomenon: predicates shrink result sizes.
        let (tree, idx) = setup();
        let cfg = WorkloadConfig {
            num_queries: 200,
            ..WorkloadConfig::default()
        };
        let w = generate_positive(&tree, &idx, &cfg);
        let s = w.avg_result_size(QueryClass::Struct);
        let p = w.avg_predicate_result_size();
        assert!(s > p, "struct {s} vs predicate {p}");
    }

    #[test]
    fn negative_workload_is_zero() {
        let (tree, idx) = setup();
        let cfg = WorkloadConfig {
            num_queries: 40,
            ..WorkloadConfig::default()
        };
        let w = generate_negative(&tree, &idx, &cfg);
        assert!(!w.queries.is_empty());
        for q in &w.queries {
            assert_eq!(q.true_count, 0.0);
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let (tree, idx) = setup();
        let cfg = WorkloadConfig {
            num_queries: 30,
            ..WorkloadConfig::default()
        };
        let a = generate_positive(&tree, &idx, &cfg);
        let b = generate_positive(&tree, &idx, &cfg);
        let fa: Vec<String> = a.queries.iter().map(|q| q.query.to_string()).collect();
        let fb: Vec<String> = b.queries.iter().map(|q| q.query.to_string()).collect();
        assert_eq!(fa, fb);
    }

    #[test]
    fn allowed_targets_restrict_predicates() {
        let (tree, idx) = setup();
        // Restrict predicate targets to year elements only.
        let years: Vec<NodeId> = tree
            .all_nodes()
            .filter(|&n| tree.label_str(n) == "year")
            .collect();
        let cfg = WorkloadConfig {
            num_queries: 40,
            class_weights: [0.0, 1.0, 1.0, 1.0],
            allowed_targets: Some(years),
            ..WorkloadConfig::default()
        };
        let w = generate_positive(&tree, &idx, &cfg);
        for q in &w.queries {
            assert_eq!(q.class, QueryClass::Numeric);
        }
    }

    #[test]
    fn classify_matches_generator_classes() {
        let (tree, idx) = setup();
        let cfg = WorkloadConfig {
            num_queries: 40,
            seed: 7,
            ..WorkloadConfig::default()
        };
        for w in [
            generate_positive(&tree, &idx, &cfg),
            generate_negative(&tree, &idx, &cfg),
        ] {
            for q in &w.queries {
                assert_eq!(classify(&q.query), q.class, "{:?}", q.query);
            }
        }
        assert_eq!(classify(&TwigQuery::new()), QueryClass::Struct);
    }

    #[test]
    fn sanity_bound_is_10th_percentile() {
        let queries: Vec<WorkloadQuery> = (1..=100)
            .map(|i| WorkloadQuery {
                query: TwigQuery::new(),
                class: QueryClass::Struct,
                true_count: i as f64,
            })
            .collect();
        let b = percentile_10(&queries);
        assert!((10.0..=12.0).contains(&b), "{b}");
    }
}
