//! Deterministic pseudo-random number generation for the XCluster
//! workspace, with no external dependencies.
//!
//! The build environment has no access to crates.io, so the workspace
//! cannot depend on the real `rand` crate. This crate implements the
//! small subset of the `rand` 0.8 API that the generators, workloads,
//! and benches actually use — [`rngs::StdRng`], [`SeedableRng`],
//! [`Rng::gen_range`], [`Rng::gen_bool`], and [`Rng::gen`] — and is
//! aliased as `rand` in the workspace manifests so call sites read
//! idiomatically (`use rand::rngs::StdRng`).
//!
//! The generator is **xoshiro256++** seeded through **SplitMix64**
//! (Blackman & Vigna), a standard, well-tested combination with 256 bits
//! of state. It is *not* the same stream as `rand`'s ChaCha12-based
//! `StdRng`; everything downstream treats seeds as opaque, so only
//! determinism per seed matters, not the specific stream.

/// Named RNG types (mirrors `rand::rngs`).
pub mod rngs {
    /// The workspace's standard deterministic generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        pub(crate) s: [u64; 4],
    }
}

use rngs::StdRng;

/// Seeding interface (mirrors `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed, expanded via SplitMix64.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 expansion: guarantees a non-zero, well-mixed state
        // even for adversarial seeds like 0.
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        StdRng {
            s: [next(), next(), next(), next()],
        }
    }
}

impl StdRng {
    /// One xoshiro256++ step.
    #[inline]
    fn next_u64_impl(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// Sampling interface (mirrors the used subset of `rand::Rng`).
pub trait Rng {
    /// The next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// A uniform draw from a half-open or inclusive range.
    ///
    /// Panics if the range is empty, like `rand`.
    #[inline]
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        Self: Sized,
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        unit_f64(self.next_u64()) < p
    }

    /// A draw from the type's standard distribution (`f64` in `[0, 1)`,
    /// integers uniform over their domain, `bool` fair).
    #[inline]
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }
}

impl Rng for StdRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.next_u64_impl()
    }
}

/// Maps 64 random bits to `[0, 1)` with 53-bit precision.
#[inline]
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Unbiased uniform draw from `[0, n)` via Lemire's multiply-shift with
/// rejection.
#[inline]
fn uniform_below<G: Rng>(rng: &mut G, n: u64) -> u64 {
    debug_assert!(n > 0);
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (n as u128);
        let lo = m as u64;
        if lo >= n || lo >= lo.wrapping_neg() % n {
            return (m >> 64) as u64;
        }
    }
}

/// Element types drawable uniformly from a range (mirrors
/// `rand::distributions::uniform::SampleUniform`).
pub trait SampleUniform: Sized + PartialOrd {
    /// A uniform draw from `[lo, hi)` (`inclusive = false`) or
    /// `[lo, hi]` (`inclusive = true`). Bounds are already validated.
    fn sample_uniform<G: Rng>(lo: Self, hi: Self, inclusive: bool, rng: &mut G) -> Self;
}

macro_rules! int_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_uniform<G: Rng>(lo: $t, hi: $t, inclusive: bool, rng: &mut G) -> $t {
                let span = (hi as i128 - lo as i128) as u128 + inclusive as u128;
                if span > u64::MAX as u128 {
                    // Only reachable for the (near-)full u64/i64 domain.
                    return rng.next_u64() as $t;
                }
                (lo as i128 + uniform_below(rng, span as u64) as i128) as $t
            }
        }
    )*};
}

int_sample_uniform!(i32, i64, u32, u64, usize, isize, u16, u8);

impl SampleUniform for f64 {
    #[inline]
    fn sample_uniform<G: Rng>(lo: f64, hi: f64, _inclusive: bool, rng: &mut G) -> f64 {
        let x = lo + unit_f64(rng.next_u64()) * (hi - lo);
        // Guard against rounding up to an excluded endpoint.
        if x < hi || lo == hi {
            x
        } else {
            lo
        }
    }
}

/// Range forms usable as the argument of [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one uniform element.
    fn sample<G: Rng>(self, rng: &mut G) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    #[inline]
    fn sample<G: Rng>(self, rng: &mut G) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_uniform(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for std::ops::RangeInclusive<T> {
    #[inline]
    fn sample<G: Rng>(self, rng: &mut G) -> T {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range: empty range");
        T::sample_uniform(lo, hi, true, rng)
    }
}

/// Types with a standard distribution for [`Rng::gen`].
pub trait Standard {
    /// Draws one element of the standard distribution.
    fn sample<G: Rng>(rng: &mut G) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn sample<G: Rng>(rng: &mut G) -> f64 {
        unit_f64(rng.next_u64())
    }
}

impl Standard for u64 {
    #[inline]
    fn sample<G: Rng>(rng: &mut G) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    #[inline]
    fn sample<G: Rng>(rng: &mut G) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    #[inline]
    fn sample<G: Rng>(rng: &mut G) -> bool {
        rng.next_u64() & 1 == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn zero_seed_is_not_degenerate() {
        let mut r = StdRng::seed_from_u64(0);
        let draws: Vec<u64> = (0..16).map(|_| r.next_u64()).collect();
        assert!(draws.iter().any(|&x| x != 0));
        assert!(draws.windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = r.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = r.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&y));
            let f = r.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_range_covers_all_values() {
        let mut r = StdRng::seed_from_u64(11);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[r.gen_range(0..10usize)] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut r = StdRng::seed_from_u64(13);
        let mut counts = [0usize; 8];
        let n = 80_000;
        for _ in 0..n {
            counts[r.gen_range(0..8usize)] += 1;
        }
        for &c in &counts {
            // Expected 10 000 per bin; 4σ ≈ 380.
            assert!((9_500..10_500).contains(&c), "{counts:?}");
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = StdRng::seed_from_u64(17);
        let hits = (0..50_000).filter(|_| r.gen_bool(0.3)).count();
        let frac = hits as f64 / 50_000.0;
        assert!((frac - 0.3).abs() < 0.01, "{frac}");
        let mut r = StdRng::seed_from_u64(18);
        assert_eq!((0..100).filter(|_| r.gen_bool(0.0)).count(), 0);
        let mut r = StdRng::seed_from_u64(19);
        assert_eq!((0..100).filter(|_| r.gen_bool(1.0)).count(), 100);
    }

    #[test]
    fn standard_f64_in_unit_interval() {
        let mut r = StdRng::seed_from_u64(23);
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x), "{x}");
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut r = StdRng::seed_from_u64(1);
        let _ = r.gen_range(5..5usize);
    }
}
