//! Micro-benchmarks: selectivity-estimation latency per twig — the
//! figure of merit for optimizer integration (estimates must be far
//! cheaper than evaluation). Runs on the `xcluster_obs::bench` harness.

use xcluster_core::build::{build_synopsis, BuildConfig};
use xcluster_core::estimate;
use xcluster_core::reference::{reference_synopsis, ReferenceConfig};
use xcluster_datagen::imdb::{generate, ImdbConfig};
use xcluster_obs::bench::{black_box, Runner};
use xcluster_query::parse_twig;

fn main() {
    let d = generate(&ImdbConfig {
        num_movies: 200,
        seed: 13,
    });
    let reference = reference_synopsis(
        &d.tree,
        &ReferenceConfig {
            value_paths: Some(d.value_paths.clone()),
            ..ReferenceConfig::default()
        },
    );
    let synopsis = build_synopsis(
        reference.clone(),
        &BuildConfig {
            b_str: 8 * 1024,
            b_val: 24 * 1024,
            ..BuildConfig::default()
        },
    );

    let linear = parse_twig("//movie/cast/actor/name", d.tree.terms()).unwrap();
    let filtered = parse_twig("//movie[year>1990]/title", d.tree.terms()).unwrap();
    let twig = parse_twig(
        "//movie[year>1990][genre contains(war)]{/title}{/cast/actor/name}",
        d.tree.terms(),
    )
    .unwrap();
    let descendant = parse_twig("//*//name", d.tree.terms()).unwrap();

    let mut r = Runner::new();
    r.bench("estimate/linear_path", || {
        black_box(estimate(&synopsis, &linear))
    });
    r.bench("estimate/filtered_path", || {
        black_box(estimate(&synopsis, &filtered))
    });
    r.bench("estimate/full_twig", || {
        black_box(estimate(&synopsis, &twig))
    });
    r.bench("estimate/wildcard_descendants", || {
        black_box(estimate(&synopsis, &descendant))
    });
    // Same twig against the (much larger) reference synopsis.
    r.bench("estimate/full_twig_on_reference", || {
        black_box(estimate(&reference, &twig))
    });
    r.finish();
}
