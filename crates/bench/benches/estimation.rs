//! Criterion benches: selectivity-estimation latency per twig — the
//! figure of merit for optimizer integration (estimates must be far
//! cheaper than evaluation).

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;
use std::hint::black_box;
use xcluster_core::build::{build_synopsis, BuildConfig};
use xcluster_core::estimate;
use xcluster_core::reference::{reference_synopsis, ReferenceConfig};
use xcluster_datagen::imdb::{generate, ImdbConfig};
use xcluster_query::parse_twig;

fn bench_estimation(c: &mut Criterion) {
    let d = generate(&ImdbConfig {
        num_movies: 200,
        seed: 13,
    });
    let reference = reference_synopsis(
        &d.tree,
        &ReferenceConfig {
            value_paths: Some(d.value_paths.clone()),
            ..ReferenceConfig::default()
        },
    );
    let synopsis = build_synopsis(
        reference.clone(),
        &BuildConfig {
            b_str: 8 * 1024,
            b_val: 24 * 1024,
            ..BuildConfig::default()
        },
    );

    let linear = parse_twig("//movie/cast/actor/name", d.tree.terms()).unwrap();
    let filtered = parse_twig("//movie[year>1990]/title", d.tree.terms()).unwrap();
    let twig = parse_twig(
        "//movie[year>1990][genre contains(war)]{/title}{/cast/actor/name}",
        d.tree.terms(),
    )
    .unwrap();
    let descendant = parse_twig("//*//name", d.tree.terms()).unwrap();

    c.bench_function("estimate/linear_path", |b| {
        b.iter(|| black_box(estimate(&synopsis, &linear)))
    });
    c.bench_function("estimate/filtered_path", |b| {
        b.iter(|| black_box(estimate(&synopsis, &filtered)))
    });
    c.bench_function("estimate/full_twig", |b| {
        b.iter(|| black_box(estimate(&synopsis, &twig)))
    });
    c.bench_function("estimate/wildcard_descendants", |b| {
        b.iter(|| black_box(estimate(&synopsis, &descendant)))
    });
    // Same twig against the (much larger) reference synopsis.
    c.bench_function("estimate/full_twig_on_reference", |b| {
        b.iter(|| black_box(estimate(&reference, &twig)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).warm_up_time(Duration::from_millis(500)).measurement_time(Duration::from_secs(2));
    targets = bench_estimation
}
criterion_main!(benches);
