//! Overhead of the `xcluster-obs` instrumentation on the hot path.
//!
//! Times `build_synopsis` — and the `estimate` read path — with the
//! registry enabled and with the runtime kill switch
//! (`set_enabled(false)`) thrown, in *interleaved pairs* so clock
//! drift, thermal state, and allocator warm-up hit both sides equally.
//! Call-path profiling (`obs::profile`) is switched on for the whole
//! run, so the enabled side pays the full observability stack:
//! counters, span timers, *and* the profiler's per-span path-tree
//! walk. The acceptance bar — asserted, nonzero exit on failure — is
//! < 3% median overhead: counters are relaxed atomics, span timers
//! collapse to a pair of `Instant::now()` calls, and a profiler frame
//! is one thread-local stack push/pop plus a child-slot lookup.
//!
//! `XCLUSTER_BENCH_SAMPLES` sets the number of pairs (default 15).

use std::time::Instant;
use xcluster_core::build::{build_synopsis, BuildConfig};
use xcluster_core::estimate::estimate;
use xcluster_core::reference::{reference_synopsis, ReferenceConfig};
use xcluster_datagen::imdb::{generate, ImdbConfig};
use xcluster_obs::bench::black_box;

/// Median of per-pair enabled-vs-disabled overhead percentages for one
/// workload closure, printing the summary line. Returns the median
/// overhead percentage so the caller can gate on it.
fn interleaved(label: &str, pairs: usize, mut run: impl FnMut(bool) -> f64) -> f64 {
    // Warm-up: one run per side.
    run(true);
    run(false);
    let mut deltas = Vec::with_capacity(pairs);
    let mut on_ns = Vec::with_capacity(pairs);
    let mut off_ns = Vec::with_capacity(pairs);
    for i in 0..pairs {
        // Alternate which side goes first within the pair, so a
        // systematic first/second effect cancels too.
        let (on, off) = if i % 2 == 0 {
            let on = run(true);
            (on, run(false))
        } else {
            let off = run(false);
            (run(true), off)
        };
        deltas.push((on - off) / off * 100.0);
        on_ns.push(on);
        off_ns.push(off);
        eprint!(".");
    }
    eprintln!();
    xcluster_obs::set_enabled(true);
    let median = |v: &mut Vec<f64>| {
        v.sort_by(f64::total_cmp);
        let n = v.len();
        if n % 2 == 1 {
            v[n / 2]
        } else {
            (v[n / 2 - 1] + v[n / 2]) / 2.0
        }
    };
    // Median of *per-pair* overhead: each pair ran back-to-back, so
    // clock/thermal/allocator drift cancels within the pair.
    let overhead = median(&mut deltas);
    println!(
        "obs overhead on {label}: {overhead:+.2}% median of per-pair deltas \
         (enabled median {:.2}ms, disabled median {:.2}ms, {pairs} interleaved pairs)",
        median(&mut on_ns) / 1e6,
        median(&mut off_ns) / 1e6
    );
    overhead
}

/// Hard acceptance bar for the full observability stack (metrics +
/// spans + call-path profiling) on a hot path.
const MAX_OVERHEAD_PCT: f64 = 3.0;

fn main() {
    let d = generate(&ImdbConfig {
        num_movies: 60,
        seed: 11,
    });
    let cfg = ReferenceConfig {
        value_paths: Some(d.value_paths.clone()),
        ..ReferenceConfig::default()
    };
    let reference = reference_synopsis(&d.tree, &cfg);
    let build_cfg = BuildConfig {
        b_str: 8 * 1024,
        b_val: 24 * 1024,
        ..BuildConfig::default()
    };
    let pairs: usize = std::env::var("XCLUSTER_BENCH_SAMPLES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(15);

    // Profiling stays requested for the whole run; the kill switch
    // gates it per side (profiling is ANDed with `enabled()`), so the
    // enabled side pays span timers *and* profiler frames while the
    // disabled side pays neither.
    xcluster_obs::profile::set_profiling(true);

    let build_overhead = interleaved("build", pairs, |enabled| {
        xcluster_obs::set_enabled(enabled);
        let input = reference.clone();
        let t = Instant::now();
        black_box(build_synopsis(input, &build_cfg));
        t.elapsed().as_nanos() as f64
    });

    // The estimation read path: trace capture stays at its default
    // (off), so the enabled side pays only the counters, the span
    // timer, and the per-query capture check.
    let built = build_synopsis(reference.clone(), &build_cfg);
    let idx = xcluster_query::EvalIndex::build(&d.tree);
    let workload = xcluster_query::workload::generate_positive(
        &d.tree,
        &idx,
        &xcluster_query::WorkloadConfig {
            num_queries: 200,
            seed: 11,
            ..xcluster_query::WorkloadConfig::default()
        },
    );
    let estimate_overhead = interleaved("estimate", pairs, |enabled| {
        xcluster_obs::set_enabled(enabled);
        let t = Instant::now();
        for _ in 0..20 {
            for q in &workload.queries {
                black_box(estimate(&built, &q.query));
            }
        }
        t.elapsed().as_nanos() as f64
    });

    let profile = xcluster_obs::profile::snapshot();
    xcluster_obs::profile::set_profiling(false);
    assert!(
        profile.total_ns("build.total") > 0,
        "profiling was on — the enabled side must have recorded frames"
    );
    for (label, overhead) in [("build", build_overhead), ("estimate", estimate_overhead)] {
        assert!(
            overhead < MAX_OVERHEAD_PCT,
            "obs overhead on {label} is {overhead:+.2}%, bar is {MAX_OVERHEAD_PCT}% \
             (with call-path profiling enabled)"
        );
    }
    println!("obs overhead bar: both paths under {MAX_OVERHEAD_PCT}% with profiling enabled");
}
