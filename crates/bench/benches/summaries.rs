//! Criterion benches: the three value-summary classes — build, estimate,
//! fuse, and compress costs (the inner loops of XClusterBuild).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::time::Duration;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;
use xcluster_summaries::{Ebth, Histogram, HistogramKind, Pst};
use xcluster_xml::{Symbol, TermVector};

fn bench_histograms(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let values: Vec<u64> = (0..10_000).map(|_| rng.gen_range(0..100_000)).collect();
    c.bench_function("histogram/build_10k_values_32b", |b| {
        b.iter(|| Histogram::build(&values, 32, HistogramKind::EquiDepth))
    });
    let h1 = Histogram::build(&values[..5000], 32, HistogramKind::EquiDepth);
    let h2 = Histogram::build(&values[5000..], 32, HistogramKind::EquiDepth);
    c.bench_function("histogram/fuse_32b", |b| b.iter(|| h1.fuse(&h2)));
    c.bench_function("histogram/range_estimate", |b| {
        b.iter(|| black_box(h1.selectivity(10_000, 60_000)))
    });
    c.bench_function("histogram/moments", |b| {
        b.iter(|| xcluster_summaries::histogram::atomic_moments(&h1, &h2))
    });
}

fn bench_psts(c: &mut Criterion) {
    let strings: Vec<String> = (0..2000)
        .map(|i| format!("{} {}", name_word(i * 2), name_word(i * 2 + 1)))
        .collect();
    c.bench_function("pst/build_2k_strings_d8", |b| {
        b.iter(|| Pst::build(&strings, 8))
    });
    let pst = Pst::build(&strings, 8);
    c.bench_function("pst/selectivity_retained", |b| {
        b.iter(|| black_box(pst.selectivity("an")))
    });
    c.bench_function("pst/selectivity_markov", |b| {
        b.iter(|| black_box(pst.selectivity("anxanxanxanx")))
    });
    let other = Pst::build(&strings[..500], 8);
    c.bench_function("pst/fuse", |b| b.iter(|| pst.fuse(&other)));
    c.bench_function("pst/prune_half", |b| {
        b.iter_batched(
            || pst.clone(),
            |mut p| {
                let target = p.node_count() / 2;
                p.prune_to_size(target)
            },
            BatchSize::LargeInput,
        )
    });
    c.bench_function("pst/moments", |b| {
        b.iter(|| xcluster_summaries::pst::atomic_moments(&pst, &other))
    });
}

fn bench_ebth(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let texts: Vec<TermVector> = (0..2000)
        .map(|_| {
            (0..25)
                .map(|_| Symbol(zipf_term(&mut rng)))
                .collect::<TermVector>()
        })
        .collect();
    c.bench_function("ebth/build_2k_texts", |b| {
        b.iter(|| Ebth::from_vectors(texts.iter()))
    });
    let e1 = Ebth::from_vectors(texts[..1000].iter());
    let e2 = Ebth::from_vectors(texts[1000..].iter());
    c.bench_function("ebth/fuse", |b| b.iter(|| e1.fuse(&e2)));
    c.bench_function("ebth/term_lookup", |b| {
        b.iter(|| black_box(e1.term_frequency(Symbol(17))))
    });
    c.bench_function("ebth/compress_half", |b| {
        b.iter_batched(
            || e1.clone(),
            |mut e| {
                let target = e.size_bytes() / 2;
                e.compress_to_bytes(target)
            },
            BatchSize::SmallInput,
        )
    });
    c.bench_function("ebth/moments", |b| {
        b.iter(|| xcluster_summaries::ebth::atomic_moments(&e1, &e2))
    });
}

fn name_word(i: usize) -> String {
    let syll = ["an", "bel", "cor", "dan", "el", "fen", "gor", "hal"];
    format!(
        "{}{}{}",
        syll[i % 8],
        syll[(i / 8) % 8],
        syll[(i / 64) % 8]
    )
}

fn zipf_term(rng: &mut StdRng) -> u32 {
    // Cheap Zipf-ish skew over 5000 term ids.
    let x: f64 = rng.gen_range(0.0f64..1.0);
    (x.powi(3) * 5000.0) as u32
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).warm_up_time(Duration::from_millis(500)).measurement_time(Duration::from_secs(2));
    targets = bench_histograms, bench_psts, bench_ebth
}
criterion_main!(benches);
