//! Micro-benchmarks: the three value-summary classes — build, estimate,
//! fuse, and compress costs (the inner loops of XClusterBuild). Runs on
//! the `xcluster_obs::bench` harness.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use xcluster_obs::bench::{black_box, Runner};
use xcluster_summaries::{Ebth, Histogram, HistogramKind, Pst};
use xcluster_xml::{Symbol, TermVector};

fn bench_histograms(r: &mut Runner) {
    let mut rng = StdRng::seed_from_u64(1);
    let values: Vec<u64> = (0..10_000).map(|_| rng.gen_range(0..100_000)).collect();
    r.bench("histogram/build_10k_values_32b", || {
        Histogram::build(&values, 32, HistogramKind::EquiDepth)
    });
    let h1 = Histogram::build(&values[..5000], 32, HistogramKind::EquiDepth);
    let h2 = Histogram::build(&values[5000..], 32, HistogramKind::EquiDepth);
    r.bench("histogram/fuse_32b", || h1.fuse(&h2));
    r.bench("histogram/range_estimate", || {
        black_box(h1.selectivity(10_000, 60_000))
    });
    r.bench("histogram/moments", || {
        xcluster_summaries::histogram::atomic_moments(&h1, &h2)
    });
}

fn bench_psts(r: &mut Runner) {
    let strings: Vec<String> = (0..2000)
        .map(|i| format!("{} {}", name_word(i * 2), name_word(i * 2 + 1)))
        .collect();
    r.bench("pst/build_2k_strings_d8", || Pst::build(&strings, 8));
    let pst = Pst::build(&strings, 8);
    r.bench("pst/selectivity_retained", || {
        black_box(pst.selectivity("an"))
    });
    r.bench("pst/selectivity_markov", || {
        black_box(pst.selectivity("anxanxanxanx"))
    });
    let other = Pst::build(&strings[..500], 8);
    r.bench("pst/fuse", || pst.fuse(&other));
    r.bench_batched(
        "pst/prune_half",
        || pst.clone(),
        |mut p| {
            let target = p.node_count() / 2;
            p.prune_to_size(target)
        },
    );
    r.bench("pst/moments", || {
        xcluster_summaries::pst::atomic_moments(&pst, &other)
    });
}

fn bench_ebth(r: &mut Runner) {
    let mut rng = StdRng::seed_from_u64(2);
    let texts: Vec<TermVector> = (0..2000)
        .map(|_| {
            (0..25)
                .map(|_| Symbol(zipf_term(&mut rng)))
                .collect::<TermVector>()
        })
        .collect();
    r.bench("ebth/build_2k_texts", || Ebth::from_vectors(texts.iter()));
    let e1 = Ebth::from_vectors(texts[..1000].iter());
    let e2 = Ebth::from_vectors(texts[1000..].iter());
    r.bench("ebth/fuse", || e1.fuse(&e2));
    r.bench("ebth/term_lookup", || {
        black_box(e1.term_frequency(Symbol(17)))
    });
    r.bench_batched(
        "ebth/compress_half",
        || e1.clone(),
        |mut e| {
            let target = e.size_bytes() / 2;
            e.compress_to_bytes(target)
        },
    );
    r.bench("ebth/moments", || {
        xcluster_summaries::ebth::atomic_moments(&e1, &e2)
    });
}

fn name_word(i: usize) -> String {
    let syll = ["an", "bel", "cor", "dan", "el", "fen", "gor", "hal"];
    format!("{}{}{}", syll[i % 8], syll[(i / 8) % 8], syll[(i / 64) % 8])
}

fn zipf_term(rng: &mut StdRng) -> u32 {
    // Cheap Zipf-ish skew over 5000 term ids.
    let x: f64 = rng.gen_range(0.0f64..1.0);
    (x.powi(3) * 5000.0) as u32
}

fn main() {
    let mut r = Runner::new();
    bench_histograms(&mut r);
    bench_psts(&mut r);
    bench_ebth(&mut r);
    r.finish();
}
