//! Micro-benchmarks: the exact twig evaluator and its preorder/label
//! index — the ground-truth side of the experiment harness. Runs on the
//! `xcluster_obs::bench` harness.

use xcluster_datagen::imdb::{generate, ImdbConfig};
use xcluster_obs::bench::{black_box, Runner};
use xcluster_query::{evaluate, parse_twig, EvalIndex};

fn main() {
    let d = generate(&ImdbConfig {
        num_movies: 200,
        seed: 17,
    });
    let mut r = Runner::new();
    r.bench("eval_index/build_imdb400", || EvalIndex::build(&d.tree));
    let idx = EvalIndex::build(&d.tree);
    let queries = [
        ("linear", "//movie/cast/actor/name"),
        ("filtered", "//movie[year>1990]/title"),
        (
            "twig",
            "//movie[year>1990][genre contains(war)]{/title}{/cast/actor/name}",
        ),
        ("descendant_heavy", "//movie//name"),
    ];
    for (name, q) in queries {
        let twig = parse_twig(q, d.tree.terms()).unwrap();
        r.bench(&format!("evaluate/{name}"), || {
            black_box(evaluate(&twig, &d.tree, &idx))
        });
    }
    r.finish();
}
