//! Criterion benches: the exact twig evaluator and its preorder/label
//! index — the ground-truth side of the experiment harness.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;
use std::hint::black_box;
use xcluster_datagen::imdb::{generate, ImdbConfig};
use xcluster_query::{evaluate, parse_twig, EvalIndex};

fn bench_evaluator(c: &mut Criterion) {
    let d = generate(&ImdbConfig {
        num_movies: 200,
        seed: 17,
    });
    c.bench_function("eval_index/build_imdb400", |b| {
        b.iter(|| EvalIndex::build(&d.tree))
    });
    let idx = EvalIndex::build(&d.tree);
    let queries = [
        ("linear", "//movie/cast/actor/name"),
        ("filtered", "//movie[year>1990]/title"),
        (
            "twig",
            "//movie[year>1990][genre contains(war)]{/title}{/cast/actor/name}",
        ),
        ("descendant_heavy", "//movie//name"),
    ];
    for (name, q) in queries {
        let twig = parse_twig(q, d.tree.terms()).unwrap();
        c.bench_function(&format!("evaluate/{name}"), |b| {
            b.iter(|| black_box(evaluate(&twig, &d.tree, &idx)))
        });
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).warm_up_time(Duration::from_millis(500)).measurement_time(Duration::from_secs(2));
    targets = bench_evaluator
}
criterion_main!(benches);
