//! Criterion benches: synopsis construction — count-stable partitioning,
//! reference-synopsis materialization, and the two XClusterBuild phases.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::time::Duration;
use xcluster_core::build::{build_synopsis, BuildConfig};
use xcluster_core::reference::{count_stable_partition, reference_synopsis, ReferenceConfig};
use xcluster_datagen::imdb::{generate, ImdbConfig};

fn bench_construction(c: &mut Criterion) {
    let d = generate(&ImdbConfig {
        num_movies: 120,
        seed: 11,
    });
    let cfg = ReferenceConfig {
        value_paths: Some(d.value_paths.clone()),
        ..ReferenceConfig::default()
    };

    c.bench_function("count_stable_partition/imdb120", |b| {
        b.iter(|| count_stable_partition(&d.tree))
    });

    c.bench_function("reference_synopsis/imdb120", |b| {
        b.iter(|| reference_synopsis(&d.tree, &cfg))
    });

    let reference = reference_synopsis(&d.tree, &cfg);
    c.bench_function("xclusterbuild/imdb120_8k_24k", |b| {
        b.iter_batched(
            || reference.clone(),
            |r| {
                build_synopsis(
                    r,
                    &BuildConfig {
                        b_str: 8 * 1024,
                        b_val: 24 * 1024,
                        ..BuildConfig::default()
                    },
                )
            },
            BatchSize::LargeInput,
        )
    });

    c.bench_function("xclusterbuild/imdb120_tag_partition", |b| {
        b.iter_batched(
            || reference.clone(),
            |r| {
                build_synopsis(
                    r,
                    &BuildConfig {
                        b_str: 0,
                        b_val: 8 * 1024,
                        ..BuildConfig::default()
                    },
                )
            },
            BatchSize::LargeInput,
        )
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).warm_up_time(Duration::from_millis(500)).measurement_time(Duration::from_secs(2));
    targets = bench_construction
}
criterion_main!(benches);
