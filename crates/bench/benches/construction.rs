//! Micro-benchmarks: synopsis construction — count-stable partitioning,
//! reference-synopsis materialization, and the two XClusterBuild phases.
//! Runs on the in-repo `xcluster_obs::bench` harness.

use xcluster_core::build::{build_synopsis, BuildConfig};
use xcluster_core::reference::{count_stable_partition, reference_synopsis, ReferenceConfig};
use xcluster_datagen::imdb::{generate, ImdbConfig};
use xcluster_obs::bench::Runner;

fn main() {
    let d = generate(&ImdbConfig {
        num_movies: 120,
        seed: 11,
    });
    let cfg = ReferenceConfig {
        value_paths: Some(d.value_paths.clone()),
        ..ReferenceConfig::default()
    };

    let mut r = Runner::new();

    r.bench("count_stable_partition/imdb120", || {
        count_stable_partition(&d.tree)
    });

    r.bench("reference_synopsis/imdb120", || {
        reference_synopsis(&d.tree, &cfg)
    });

    let reference = reference_synopsis(&d.tree, &cfg);
    r.bench_batched(
        "xclusterbuild/imdb120_8k_24k",
        || reference.clone(),
        |rf| {
            build_synopsis(
                rf,
                &BuildConfig {
                    b_str: 8 * 1024,
                    b_val: 24 * 1024,
                    ..BuildConfig::default()
                },
            )
        },
    );

    r.bench_batched(
        "xclusterbuild/imdb120_tag_partition",
        || reference.clone(),
        |rf| {
            build_synopsis(
                rf,
                &BuildConfig {
                    b_str: 0,
                    b_val: 8 * 1024,
                    ..BuildConfig::default()
                },
            )
        },
    );

    r.finish();
}
