//! Shared harness for the XCluster experiment reproduction.
//!
//! The `experiments` binary (`src/bin/experiments.rs`) regenerates every
//! table and figure of the paper's Section 6; this library holds the
//! pieces shared between experiments and the Criterion benches: data-set
//! preparation, workload construction restricted to summarized value
//! paths, and the budget-sweep runner behind Figures 8 and 9.

use xcluster_core::build::{build_synopsis, BuildConfig};
use xcluster_core::metrics::{evaluate_workload, ErrorReport, EvalOptions};
use xcluster_core::reference::{reference_synopsis, ReferenceConfig};
use xcluster_core::Synopsis;
use xcluster_datagen::{imdb, xmark, Dataset};
use xcluster_query::{workload, EvalIndex, Workload, WorkloadConfig};
use xcluster_xml::NodeId;

/// A data set prepared for experiments: document, reference synopsis,
/// evaluation index, and the summarized-path predicate targets.
pub struct Prepared {
    /// The generated data set.
    pub dataset: Dataset,
    /// Its detailed reference synopsis.
    pub reference: Synopsis,
    /// Preorder/label index for exact evaluation.
    pub index: EvalIndex,
    /// Elements on summarized value paths (predicate targets).
    pub targets: Vec<NodeId>,
}

/// Scale factor 1.0 ≈ the paper's data sizes (≈ 200 k+ elements each).
pub fn prepare_imdb(scale: f64, seed: u64) -> Prepared {
    let cfg = imdb::ImdbConfig {
        num_movies: ((11_500.0 * scale).round() as usize).max(20),
        seed,
    };
    prepare(imdb::generate(&cfg))
}

/// Scale factor 1.0 ≈ the paper's XMark document.
pub fn prepare_xmark(scale: f64, seed: u64) -> Prepared {
    let mut cfg = xmark::XmarkConfig::scaled(scale);
    cfg.seed = seed;
    prepare(xmark::generate(&cfg))
}

fn prepare(dataset: Dataset) -> Prepared {
    let reference = reference_synopsis(
        &dataset.tree,
        &ReferenceConfig {
            value_paths: Some(dataset.value_paths.clone()),
            ..ReferenceConfig::default()
        },
    );
    let index = EvalIndex::build(&dataset.tree);
    let targets = summarized_targets(&dataset);
    Prepared {
        dataset,
        reference,
        index,
        targets,
    }
}

/// Elements whose label path matches a summarized value-path spec.
pub fn summarized_targets(d: &Dataset) -> Vec<NodeId> {
    d.summarized_targets()
}

/// The paper's workload: positive twigs with predicates restricted to
/// summarized paths.
pub fn positive_workload(p: &Prepared, num_queries: usize, seed: u64) -> Workload {
    workload::generate_positive(
        &p.dataset.tree,
        &p.index,
        &WorkloadConfig {
            num_queries,
            seed,
            allowed_targets: Some(p.targets.clone()),
            ..WorkloadConfig::default()
        },
    )
}

/// The negative workload of the Section 6.1 discussion.
pub fn negative_workload(p: &Prepared, num_queries: usize, seed: u64) -> Workload {
    workload::generate_negative(
        &p.dataset.tree,
        &p.index,
        &WorkloadConfig {
            num_queries,
            seed,
            allowed_targets: Some(p.targets.clone()),
            ..WorkloadConfig::default()
        },
    )
}

/// One point of the Figure 8 sweep.
pub struct SweepPoint {
    /// Structural budget in bytes.
    pub b_str: usize,
    /// Realized total synopsis size in bytes.
    pub total_bytes: usize,
    /// Error report over the workload.
    pub report: ErrorReport,
}

/// Runs the Figure 8 budget sweep: structural budgets from `b_str_points`
/// with the value budget fixed (the paper: 0–50 KB structural, 150 KB
/// value).
pub fn sweep(p: &Prepared, w: &Workload, b_str_points: &[usize], b_val: usize) -> Vec<SweepPoint> {
    b_str_points
        .iter()
        .map(|&b_str| {
            let built = build_synopsis(
                p.reference.clone(),
                &BuildConfig {
                    b_str,
                    b_val,
                    ..BuildConfig::default()
                },
            );
            SweepPoint {
                b_str,
                total_bytes: built.total_bytes(),
                report: evaluate_workload(&built, w, &EvalOptions::default()).report,
            }
        })
        .collect()
}

/// Formats an optional fraction as a percentage cell.
pub fn pct(v: Option<f64>) -> String {
    match v {
        Some(x) => format!("{:6.1}", x * 100.0),
        None => "     -".into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prepare_small_imdb() {
        let p = prepare_imdb(0.01, 5);
        assert!(p.dataset.num_elements() > 1000);
        assert!(p.reference.num_value_nodes() > 0);
        assert!(!p.targets.is_empty());
    }

    #[test]
    fn sweep_produces_monotone_sizes() {
        let p = prepare_imdb(0.01, 5);
        let w = positive_workload(&p, 40, 1);
        let points = sweep(&p, &w, &[512, 4096], 8192);
        assert_eq!(points.len(), 2);
        assert!(points[0].total_bytes <= points[1].total_bytes + 512);
        for pt in &points {
            assert!(pt.report.overall_rel.is_finite());
        }
    }
}
