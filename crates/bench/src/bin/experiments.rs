//! Regenerates every table and figure of the paper's evaluation
//! (Section 6), plus the ablations listed in `DESIGN.md`.
//!
//! ```sh
//! cargo run --release -p xcluster-bench --bin experiments -- all
//! cargo run --release -p xcluster-bench --bin experiments -- figure8a --scale 0.2
//! ```
//!
//! Commands: `table1`, `table2`, `figure8a`, `figure8b`, `figure9`,
//! `negative`, `ablation-metric`, `ablation-ebth`, `ablation-pst`,
//! `bench-build`, `bench-estimate`, `bench-accuracy`, `bench-serve`,
//! `all`.
//!
//! Options: `--scale f` (data size relative to the paper, default 0.25),
//! `--queries n` (workload size, default 1000), `--seed s`, `--out dir`
//! (CSV output directory, default `results/`), `--gate <baseline.json>`
//! (with `bench-accuracy`: compare against a committed baseline instead
//! of rewriting it, failing on >10% relative worsening of any error
//! metric).
//!
//! The `bench-*` commands write the committed machine-readable snapshots
//! at the repository root, each with the stable envelope
//! `{"schema": 1, "run": {...}, "metrics": {...}}`:
//!
//! * `BENCH_build.json` — the full `xcluster-obs` registry after a
//!   pinned-parameter build (phase timings, merge/pool counters);
//! * `BENCH_estimate.json` — estimation latency percentiles over the
//!   pinned workload;
//! * `BENCH_accuracy.json` — per-class relative error plus the
//!   error-attribution summary (top error-contributing cluster);
//! * `BENCH_serve.json` — served-estimation throughput and
//!   sliding-window latency quantiles over loopback HTTP, plus the
//!   loaded synopsis's resident-memory footprint.
//!
//! They use pinned parameters (`--scale`/`--queries` are ignored) so the
//! committed baselines stay comparable across runs; the metric registry
//! is reset before every command, so each command's numbers are its own.

use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::Instant;
use xcluster_bench::{
    negative_workload, pct, positive_workload, prepare_imdb, prepare_xmark, sweep,
};
use xcluster_core::baseline;
use xcluster_core::build::{build_synopsis, BuildConfig};
use xcluster_core::metrics::{evaluate_workload, EvalOptions};
use xcluster_core::reference::{reference_synopsis, ReferenceConfig};
use xcluster_query::QueryClass;

struct Opts {
    scale: f64,
    queries: usize,
    seed: u64,
    out: String,
    gate: Option<String>,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut opts = Opts {
        scale: 0.25,
        queries: 1000,
        seed: 0xC0FFEE,
        out: "results".into(),
        gate: None,
    };
    let mut commands: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                opts.scale = args[i + 1].parse().expect("--scale takes a float");
                i += 2;
            }
            "--queries" => {
                opts.queries = args[i + 1].parse().expect("--queries takes an integer");
                i += 2;
            }
            "--seed" => {
                opts.seed = args[i + 1].parse().expect("--seed takes an integer");
                i += 2;
            }
            "--out" => {
                opts.out = args[i + 1].clone();
                i += 2;
            }
            "--gate" => {
                opts.gate = Some(args[i + 1].clone());
                i += 2;
            }
            cmd => {
                commands.push(cmd.to_string());
                i += 1;
            }
        }
    }
    if commands.is_empty() {
        eprintln!(
            "usage: experiments [--scale f] [--queries n] [--seed s] [--out dir] \
             [--gate baseline.json] <command>...\n\
             commands: table1 table2 figure8a figure8b figure9 negative \
             ablation-metric ablation-ebth ablation-pst ablation-numeric \
             bench-build bench-estimate bench-accuracy bench-serve all"
        );
        std::process::exit(2);
    }
    std::fs::create_dir_all(&opts.out).expect("create output directory");
    if commands.iter().any(|c| c == "all") {
        commands = [
            "table1",
            "table2",
            "figure8a",
            "figure8b",
            "figure9",
            "negative",
            "ablation-metric",
            "ablation-ebth",
            "ablation-pst",
            "ablation-numeric",
            "bench-build",
            "bench-estimate",
            "bench-accuracy",
            "bench-serve",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
    }
    for cmd in &commands {
        // Fresh registry per command: each command's BENCH snapshot (and
        // console stats) covers exactly the work that command did.
        xcluster_obs::reset();
        let t0 = Instant::now();
        match cmd.as_str() {
            "table1" => table1(&opts),
            "table2" => table2(&opts),
            "figure8a" => figure8(&opts, "imdb"),
            "figure8b" => figure8(&opts, "xmark"),
            "figure9" => figure9(&opts),
            "negative" => negative(&opts),
            "ablation-metric" => ablation_metric(&opts),
            "ablation-ebth" => ablation_ebth(&opts),
            "ablation-pst" => ablation_pst(&opts),
            "ablation-numeric" => ablation_numeric(&opts),
            "bench-build" => bench_build(&opts),
            "bench-estimate" => bench_estimate(&opts),
            "bench-accuracy" => bench_accuracy(&opts),
            "bench-serve" => bench_serve(&opts),
            other => {
                eprintln!("unknown command: {other}");
                std::process::exit(2);
            }
        }
        eprintln!("[{cmd} done in {:.1}s]\n", t0.elapsed().as_secs_f64());
    }
}

// ---------------------------------------------------------------------
// Committed BENCH_*.json snapshots (repo root, pinned parameters).
// ---------------------------------------------------------------------

/// Pinned parameters for the committed benchmark snapshots. Fixed (not
/// `--scale`/`--queries`) so `BENCH_*.json` baselines are comparable
/// across machines and invocations.
const BENCH_SCALE: f64 = 0.02;
const BENCH_QUERIES: usize = 150;

/// The repository root: nearest ancestor of the working directory with a
/// `.git`, falling back to the workspace root this binary was built from.
fn repo_root() -> PathBuf {
    let mut dir = std::env::current_dir().expect("current_dir");
    loop {
        if dir.join(".git").exists() {
            return dir;
        }
        if !dir.pop() {
            break;
        }
    }
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..")
}

fn write_bench_file(name: &str, run: &[(&str, String)], metrics_body: &str) {
    let json = xcluster_obs::export::bench_json(run, metrics_body);
    let path = repo_root().join(name);
    std::fs::write(&path, json).expect("write BENCH file");
    eprintln!("[wrote {}]", path.display());
}

fn bench_run_meta(command: &str, opts: &Opts, wall_s: f64) -> Vec<(&'static str, String)> {
    vec![
        ("command", command.to_string()),
        ("dataset", "imdb".to_string()),
        ("scale", format!("{BENCH_SCALE}")),
        ("queries", format!("{BENCH_QUERIES}")),
        ("seed", format!("{}", opts.seed)),
        ("wall_seconds", format!("{wall_s:.2}")),
    ]
}

/// `BENCH_build.json`: the full metric registry after one pinned build
/// (phase timings, merge/pool counters, byte gauges), plus a 1-vs-N
/// thread speedup entry. The recorded snapshot covers the N-thread
/// build; the 1-thread build runs first purely as the speedup baseline
/// and doubles as a byte-identity check on the parallel path.
///
/// The `incremental` metrics block times synopsis maintenance under a
/// pinned 5%-churn delta: one `apply_delta` pass against the wall clock
/// of a from-scratch rebuild (reference + budget passes) over the
/// mutated document. Incremental maintenance must be at least 5× faster
/// than the rebuild it replaces — that ratio is the point of the
/// subsystem, so the run fails if it regresses below the floor.
fn bench_build(opts: &Opts) {
    let t0 = Instant::now();
    let p = prepare_imdb(BENCH_SCALE, opts.seed);
    let cfg = BuildConfig {
        b_str: b_str_points(BENCH_SCALE)[3],
        b_val: b_val(BENCH_SCALE),
        ..BuildConfig::default()
    };
    let threads = xcluster_core::resolve_threads(0);
    let t1 = Instant::now();
    let seq = build_synopsis(p.reference.clone(), &cfg);
    let wall_1 = t1.elapsed().as_secs_f64();
    // Fresh registry so the committed snapshot covers exactly the
    // N-thread build.
    xcluster_obs::reset();
    let tn = Instant::now();
    let built = build_synopsis(
        p.reference.clone(),
        &BuildConfig {
            threads,
            ..cfg.clone()
        },
    );
    let wall_n = tn.elapsed().as_secs_f64();
    assert_eq!(
        xcluster_core::codec::encode_synopsis(&built),
        xcluster_core::codec::encode_synopsis(&seq),
        "parallel build must be byte-identical to sequential"
    );
    let speedup = wall_1 / wall_n.max(f64::MIN_POSITIVE);
    println!(
        "== bench-build: {} nodes, {} bytes, {threads} thread(s), {speedup:.2}x vs 1 thread ==",
        built.num_nodes(),
        built.total_bytes()
    );

    // Incremental maintenance vs rebuild at the pinned 5% churn point.
    const INCREMENTAL_CHURN: f64 = 0.05;
    const INCREMENTAL_MIN_SPEEDUP: f64 = 5.0;
    let delta = xcluster_datagen::deltas::generate_delta(
        &p.dataset.tree,
        &xcluster_datagen::deltas::DeltaConfig {
            churn: INCREMENTAL_CHURN,
            seed: opts.seed,
            ..xcluster_datagen::deltas::DeltaConfig::default()
        },
    );
    let mut maintained = built.clone();
    let ti = Instant::now();
    let dstats = xcluster_core::apply_delta(&mut maintained, &p.dataset.tree, &delta, &cfg);
    let apply_wall = ti.elapsed().as_secs_f64();
    let mutated = xcluster_core::apply_to_tree(&p.dataset.tree, &delta).tree;
    let tr = Instant::now();
    let rebuilt = build_synopsis(
        reference_synopsis(
            &mutated,
            &ReferenceConfig {
                value_paths: Some(p.dataset.value_paths.clone()),
                ..ReferenceConfig::default()
            },
        ),
        &cfg,
    );
    let rebuild_wall = tr.elapsed().as_secs_f64();
    let inc_speedup = rebuild_wall / apply_wall.max(f64::MIN_POSITIVE);
    maintained.check_consistency().expect("maintained synopsis");
    assert!(
        inc_speedup >= INCREMENTAL_MIN_SPEEDUP,
        "incremental apply must be at least {INCREMENTAL_MIN_SPEEDUP}x faster than a rebuild \
         at {INCREMENTAL_CHURN} churn: apply {apply_wall:.4}s vs rebuild {rebuild_wall:.4}s \
         ({inc_speedup:.1}x)"
    );
    println!(
        "== bench-build incremental: {}+{} elements churned, apply {:.2} ms vs rebuild {:.2} ms ({inc_speedup:.0}x) ==",
        dstats.inserted_elements,
        dstats.deleted_elements,
        apply_wall * 1e3,
        rebuild_wall * 1e3
    );

    let snap = xcluster_obs::snapshot();
    let mut run = bench_run_meta("bench-build", opts, t0.elapsed().as_secs_f64());
    run.push(("threads", format!("{threads}")));
    run.push(("wall_seconds_1thread", format!("{wall_1:.3}")));
    run.push(("wall_seconds_nthreads", format!("{wall_n:.3}")));
    run.push(("speedup_vs_1thread", format!("{speedup:.2}")));
    // Splice the incremental block into the registry dump so the
    // committed snapshot keeps one `metrics` object.
    let registry = xcluster_obs::export::to_json(&snap);
    let mut body = registry.trim_end().to_string();
    body.truncate(body.rfind('}').expect("registry json object"));
    body.truncate(body.trim_end().len());
    let _ = writeln!(body, ",\n  \"incremental\": {{");
    let _ = writeln!(body, "    \"churn\": {INCREMENTAL_CHURN},");
    let _ = writeln!(
        body,
        "    \"inserted_elements\": {},",
        dstats.inserted_elements
    );
    let _ = writeln!(
        body,
        "    \"deleted_elements\": {},",
        dstats.deleted_elements
    );
    let _ = writeln!(body, "    \"dirty_groups\": {},", dstats.dirty_groups);
    let _ = writeln!(body, "    \"remerged\": {},", dstats.remerged);
    let _ = writeln!(body, "    \"synopsis_version\": {},", maintained.version());
    let _ = writeln!(body, "    \"apply_wall_ms\": {:.3},", apply_wall * 1e3);
    let _ = writeln!(body, "    \"rebuild_wall_ms\": {:.3},", rebuild_wall * 1e3);
    let _ = writeln!(body, "    \"speedup_vs_rebuild\": {inc_speedup:.1},");
    let _ = writeln!(
        body,
        "    \"rebuilt_total_bytes\": {},",
        rebuilt.total_bytes()
    );
    let _ = writeln!(
        body,
        "    \"maintained_total_bytes\": {}",
        maintained.total_bytes()
    );
    body.push_str("  }\n}\n");
    write_bench_file("BENCH_build.json", &run, &body);
}

/// `BENCH_estimate.json`: per-query estimation latency percentiles over
/// the pinned positive workload.
fn bench_estimate(opts: &Opts) {
    let t0 = Instant::now();
    let p = prepare_imdb(BENCH_SCALE, opts.seed);
    let built = build_synopsis(
        p.reference.clone(),
        &BuildConfig {
            b_str: b_str_points(BENCH_SCALE)[3],
            b_val: b_val(BENCH_SCALE),
            ..BuildConfig::default()
        },
    );
    let w = positive_workload(&p, BENCH_QUERIES, opts.seed);
    // Warm-up pass, then timed passes.
    let mut sink = 0.0;
    for q in &w.queries {
        sink += xcluster_core::estimate(&built, &q.query);
    }
    const ITERS: usize = 5;
    let mut lat_ns: Vec<u64> = Vec::with_capacity(w.queries.len() * ITERS);
    for _ in 0..ITERS {
        for q in &w.queries {
            let s = Instant::now();
            sink += xcluster_core::estimate(&built, &q.query);
            lat_ns.push(s.elapsed().as_nanos() as u64);
        }
    }
    std::hint::black_box(sink);
    lat_ns.sort_unstable();
    let pctl = |p: f64| lat_ns[((lat_ns.len() - 1) as f64 * p).round() as usize];
    let mean = lat_ns.iter().sum::<u64>() as f64 / lat_ns.len() as f64;
    // Interpreter reference: single-thread wall over the workload,
    // median of ITERS (the plan path must beat this to justify itself).
    let (interp_wall, interp_est) = {
        let mut walls = Vec::with_capacity(ITERS);
        let mut result: Vec<f64> = Vec::new();
        for _ in 0..ITERS {
            let s = Instant::now();
            result = w
                .queries
                .iter()
                .map(|q| xcluster_core::estimate(&built, &q.query))
                .collect();
            walls.push(s.elapsed().as_secs_f64());
        }
        walls.sort_by(f64::total_cmp);
        (walls[walls.len() / 2], result)
    };
    // Plan engine: the same workload through an `Estimator` session at 1
    // and N threads. One reach/probe cache serves every pass — the first
    // single-thread pass runs it cold, everything after is warm.
    let threads = xcluster_core::resolve_threads(0);
    let cache = xcluster_core::Estimator::new(&built).cache();
    let batch_wall = |t: usize| -> (f64, f64, Vec<f64>) {
        let est = xcluster_core::Estimator::new(&built)
            .with_threads(t)
            .with_cache(cache.clone());
        let mut walls = Vec::with_capacity(ITERS);
        let mut result = Vec::new();
        for _ in 0..ITERS {
            let s = Instant::now();
            result = est.estimate_batch_by(&w.queries, |q| &q.query);
            walls.push(s.elapsed().as_secs_f64());
        }
        let cold = walls[0];
        walls.sort_by(f64::total_cmp);
        (cold, walls[walls.len() / 2], result)
    };
    let (plan_wall_cold, batch_wall_1, batch_est_1) = batch_wall(1);
    let (_, batch_wall_n, batch_est_n) = batch_wall(threads);
    assert!(
        batch_est_1
            .iter()
            .zip(&batch_est_n)
            .all(|(a, b)| a.to_bits() == b.to_bits()),
        "batch estimates must be bitwise equal across thread counts"
    );
    assert!(
        batch_est_1
            .iter()
            .zip(&interp_est)
            .all(|(a, b)| a.to_bits() == b.to_bits()),
        "plan estimates must be bitwise equal to the interpreter"
    );
    let speedup = batch_wall_1 / batch_wall_n.max(f64::MIN_POSITIVE);
    let plan_speedup = interp_wall / batch_wall_1.max(f64::MIN_POSITIVE);
    let cstats = cache.stats();
    println!(
        "== bench-estimate: {} samples, p50 {} ns, p99 {} ns, plan {plan_speedup:.2}x vs interpreter, batch {threads} thread(s) {speedup:.2}x vs 1 ==",
        lat_ns.len(),
        pctl(0.50),
        pctl(0.99)
    );
    let mut body = String::from("{\n");
    let _ = writeln!(body, "    \"samples\": {},", lat_ns.len());
    let _ = writeln!(body, "    \"mean_ns\": {mean:.0},");
    let _ = writeln!(body, "    \"latency_ns\": {{");
    let _ = writeln!(body, "      \"p50\": {},", pctl(0.50));
    let _ = writeln!(body, "      \"p90\": {},", pctl(0.90));
    let _ = writeln!(body, "      \"p99\": {},", pctl(0.99));
    let _ = writeln!(body, "      \"max\": {}", pctl(1.0));
    let _ = writeln!(body, "    }},");
    let _ = writeln!(
        body,
        "    \"throughput_qps\": {:.0},",
        1e9 / mean.max(f64::MIN_POSITIVE)
    );
    let _ = writeln!(body, "    \"batch\": {{");
    let _ = writeln!(body, "      \"threads\": {threads},");
    let _ = writeln!(
        body,
        "      \"median_wall_ms_1thread\": {:.3},",
        batch_wall_1 * 1e3
    );
    let _ = writeln!(
        body,
        "      \"median_wall_ms_nthreads\": {:.3},",
        batch_wall_n * 1e3
    );
    let _ = writeln!(body, "      \"speedup_vs_1thread\": {speedup:.2}");
    let _ = writeln!(body, "    }},");
    // Plan-vs-interpreter single-thread wall clocks plus the session
    // cache's hit rates and footprint (tentpole of the plan/cache work).
    let _ = writeln!(body, "    \"plan\": {{");
    let _ = writeln!(
        body,
        "      \"interpreter_wall_ms_1thread\": {:.3},",
        interp_wall * 1e3
    );
    let _ = writeln!(
        body,
        "      \"plan_wall_ms_1thread_cold\": {:.3},",
        plan_wall_cold * 1e3
    );
    let _ = writeln!(
        body,
        "      \"plan_wall_ms_1thread\": {:.3},",
        batch_wall_1 * 1e3
    );
    let _ = writeln!(body, "      \"speedup_vs_interpreter\": {plan_speedup:.2},");
    let _ = writeln!(
        body,
        "      \"reach_hit_rate\": {:.4},",
        cstats.reach_hit_rate()
    );
    let _ = writeln!(
        body,
        "      \"probe_hit_rate\": {:.4},",
        cstats.probe_hit_rate()
    );
    let _ = writeln!(body, "      \"reach_entries\": {},", cstats.reach_entries);
    let _ = writeln!(body, "      \"probe_entries\": {},", cstats.probe_entries);
    let _ = writeln!(body, "      \"cache_bytes\": {}", cache.heap_bytes());
    let _ = writeln!(body, "    }}");
    body.push_str("  }");
    let mut run = bench_run_meta("bench-estimate", opts, t0.elapsed().as_secs_f64());
    run.push(("threads", format!("{threads}")));
    run.push(("speedup_vs_1thread", format!("{speedup:.2}")));
    run.push(("plan_speedup_vs_interpreter", format!("{plan_speedup:.2}")));
    write_bench_file("BENCH_estimate.json", &run, &body);
}

/// `BENCH_accuracy.json`: per-class relative error over the pinned
/// workload, plus the error-attribution summary. With `--gate <file>`,
/// compares against the committed baseline instead of rewriting it and
/// exits non-zero if any error metric worsened by more than 10%.
fn bench_accuracy(opts: &Opts) {
    let t0 = Instant::now();
    let p = prepare_imdb(BENCH_SCALE, opts.seed);
    let built = build_synopsis(
        p.reference.clone(),
        &BuildConfig {
            b_str: b_str_points(BENCH_SCALE)[3],
            b_val: b_val(BENCH_SCALE),
            ..BuildConfig::default()
        },
    );
    let w = positive_workload(&p, BENCH_QUERIES, opts.seed);
    // Traced estimation through the batch engine at full parallelism —
    // bitwise identical to sequential (tests/parallel.rs), so the gate
    // comparison is unaffected by the thread count.
    let eval = evaluate_workload(
        &built,
        &w,
        &EvalOptions::default()
            .with_threads(0)
            .with_attribution(true),
    );
    let (report, attribution) = (
        eval.report,
        eval.attribution.expect("attribution requested"),
    );
    println!(
        "== bench-accuracy: overall {:.2}%, {} attributed cluster(s) ==",
        report.overall_rel * 100.0,
        attribution.clusters.len()
    );
    print!("{}", attribution.render(5));
    let cell = |v: Option<f64>| v.map_or("null".to_string(), |x| format!("{x:.6}"));
    let mut body = String::from("{\n");
    let _ = writeln!(body, "    \"overall_rel\": {:.6},", report.overall_rel);
    let _ = writeln!(body, "    \"class_rel\": {{");
    let _ = writeln!(
        body,
        "      \"struct\": {},",
        cell(report.class_rel(QueryClass::Struct))
    );
    let _ = writeln!(
        body,
        "      \"numeric\": {},",
        cell(report.class_rel(QueryClass::Numeric))
    );
    let _ = writeln!(
        body,
        "      \"string\": {},",
        cell(report.class_rel(QueryClass::String))
    );
    let _ = writeln!(
        body,
        "      \"text\": {}",
        cell(report.class_rel(QueryClass::Text))
    );
    let _ = writeln!(body, "    }},");
    let _ = writeln!(body, "    \"avg_estimate\": {:.6},", report.avg_estimate);
    match attribution.top() {
        Some(top) => {
            let _ = writeln!(body, "    \"top_error_cluster\": {{");
            let _ = writeln!(body, "      \"cluster\": {},", top.cluster);
            let _ = writeln!(
                body,
                "      \"label\": {},",
                xcluster_obs::export::json_string(&top.label)
            );
            let _ = writeln!(body, "      \"abs_error\": {:.6},", top.abs_error);
            let _ = writeln!(body, "      \"queries\": {}", top.queries);
            let _ = writeln!(body, "    }},");
        }
        None => {
            let _ = writeln!(body, "    \"top_error_cluster\": null,");
        }
    }
    let _ = writeln!(
        body,
        "    \"unattributed_abs_error\": {:.6}",
        attribution.unattributed
    );
    body.push_str("  }");
    match &opts.gate {
        Some(baseline) => {
            if let Err(e) = gate_accuracy(baseline, &report) {
                eprintln!("accuracy gate FAILED: {e}");
                std::process::exit(1);
            }
            eprintln!("[accuracy gate passed against {baseline}]");
        }
        None => write_bench_file(
            "BENCH_accuracy.json",
            &bench_run_meta("bench-accuracy", opts, t0.elapsed().as_secs_f64()),
            &body,
        ),
    }
}

/// Compares a fresh accuracy report against a committed
/// `BENCH_accuracy.json` baseline: every error metric present in the
/// baseline may worsen by at most 10% (relative, with a small absolute
/// slack for near-zero baselines).
fn gate_accuracy(baseline_path: &str, fresh: &xcluster_core::ErrorReport) -> Result<(), String> {
    let text = std::fs::read_to_string(baseline_path)
        .map_err(|e| format!("cannot read {baseline_path}: {e}"))?;
    let root = xcluster_obs::json::parse(&text).map_err(|e| format!("{baseline_path}: {e}"))?;
    let metrics = root
        .get("metrics")
        .ok_or_else(|| format!("{baseline_path}: missing \"metrics\""))?;
    let mut checks: Vec<(String, Option<f64>, Option<f64>)> = vec![(
        "overall_rel".to_string(),
        metrics.get("overall_rel").and_then(|v| v.as_f64()),
        Some(fresh.overall_rel),
    )];
    for (key, class) in [
        ("struct", QueryClass::Struct),
        ("numeric", QueryClass::Numeric),
        ("string", QueryClass::String),
        ("text", QueryClass::Text),
    ] {
        checks.push((
            format!("class_rel.{key}"),
            metrics
                .get("class_rel")
                .and_then(|c| c.get(key))
                .and_then(|v| v.as_f64()),
            fresh.class_rel(class),
        ));
    }
    let mut failures = Vec::new();
    for (name, base, now) in checks {
        let (Some(base), Some(now)) = (base, now) else {
            continue;
        };
        let limit = base * 1.10 + 1e-9;
        if now > limit {
            failures.push(format!(
                "{name}: {now:.6} exceeds baseline {base:.6} by more than 10%"
            ));
        } else {
            eprintln!("[gate] {name}: {now:.6} vs baseline {base:.6} — ok");
        }
    }
    if failures.is_empty() {
        Ok(())
    } else {
        Err(failures.join("; "))
    }
}

/// `BENCH_serve.json`: served-estimation throughput and sliding-window
/// latency quantiles. Builds the pinned synopsis, serves it over
/// loopback HTTP, and drives it with the seeded load generator in
/// verify mode — every served estimate is checked bitwise against the
/// in-process batch engine, so a nonzero mismatch count fails the run.
/// The footprint block records what the loaded synopsis actually costs
/// in resident heap bytes (vs the model's on-disk bytes).
///
/// Two passes measure the shadow accuracy monitor: a baseline with the
/// monitor off, then a second serve with 5% shadow sampling attached.
/// The second pass downloads the wide-event journal, re-evaluates the
/// shadow-sampled queries exactly (same document, same quantization)
/// and asserts the scraped `xcluster_accuracy_rel{class=...}` gauges
/// agree within 1e-9, and that monitored throughput stays within 90%
/// of the baseline.
fn bench_serve(opts: &Opts) {
    use xcluster_serve::{client, LoadgenConfig, Server, ServerConfig, ShadowConfig};
    const SERVE_QUERIES: usize = 2000;
    const SERVE_BATCH: usize = 50;
    const SHADOW_PPM: u32 = 50_000;
    let t0 = Instant::now();
    let p = prepare_imdb(BENCH_SCALE, opts.seed);
    let built = build_synopsis(
        p.reference.clone(),
        &BuildConfig {
            b_str: b_str_points(BENCH_SCALE)[3],
            b_val: b_val(BENCH_SCALE),
            ..BuildConfig::default()
        },
    );
    let footprint = xcluster_core::MemoryFootprint::measure(&built);
    // Pinned workload: structural, numeric-predicate, and deep-path
    // shapes over the IMDB schema, sampled with the seeded PRNG.
    let queries: Vec<String> = [
        "//movie/year",
        "//movie/title",
        "//movie[year > 1980]/title",
        "//movie[year < 1960]",
        "//movie/cast/actor/name",
        "/imdb/movie/genre",
        "//movie/director/name",
        "//series/episode/year",
        "//series/cast/actor/name",
        "//movie[year > 1990]/cast/actor",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let server_cfg = ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers: 0,
        estimate_threads: 0,
        // Retain every served query so the journal pass is complete.
        journal_capacity: SERVE_QUERIES,
        journal_sample_ppm: 1_000_000,
        shadow_sample_ppm: SHADOW_PPM,
        ..ServerConfig::default()
    };

    // Pass 1 — shadow off: the committed throughput/latency baseline.
    let server = Server::bind(&server_cfg).expect("bind loopback server");
    let addr = server.local_addr().to_string();
    server.set_synopsis(built.clone());
    let server = std::sync::Arc::new(server);
    let run_handle = {
        let server = std::sync::Arc::clone(&server);
        std::thread::spawn(move || server.run().expect("server run"))
    };
    let report = xcluster_serve::loadgen::run(&LoadgenConfig {
        addr,
        qps: 0.0,
        total: SERVE_QUERIES,
        batch: SERVE_BATCH,
        seed: opts.seed,
        queries: queries.clone(),
        verify: Some(built.clone()),
        shutdown: true,
        ..LoadgenConfig::default()
    })
    .expect("loadgen run");
    run_handle.join().expect("server thread");
    assert_eq!(report.errors, 0, "served batches must all succeed");
    assert_eq!(
        report.mismatches, 0,
        "served estimates must be bitwise-identical to in-process"
    );

    // Pass 2 — shadow on at 5%: same server shape plus the monitor.
    let server = Server::bind(&server_cfg).expect("bind loopback server");
    let addr = server.local_addr().to_string();
    server.set_synopsis(built.clone());
    server.set_shadow(p.dataset.tree.clone(), ShadowConfig::default());
    let state = server.state();
    let server = std::sync::Arc::new(server);
    let run_handle = {
        let server = std::sync::Arc::clone(&server);
        std::thread::spawn(move || server.run().expect("server run"))
    };
    let shadow_report = xcluster_serve::loadgen::run(&LoadgenConfig {
        addr: addr.clone(),
        qps: 0.0,
        total: SERVE_QUERIES,
        batch: SERVE_BATCH,
        seed: opts.seed,
        queries,
        verify: Some(built),
        shutdown: false,
        ..LoadgenConfig::default()
    })
    .expect("shadow loadgen run");
    assert_eq!(shadow_report.errors, 0, "shadowed batches must all succeed");
    assert_eq!(
        shadow_report.mismatches, 0,
        "shadow must not perturb estimates"
    );
    // Wait for the monitor to drain its queue, then scrape and download
    // the journal before shutting the server down.
    let monitor = state.shadow().expect("shadow attached");
    for _ in 0..2000 {
        if monitor.idle() {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    assert!(
        monitor.idle(),
        "shadow queue did not drain: {:?}",
        monitor.stats()
    );
    let shadow_stats = monitor.stats();
    assert_eq!(
        shadow_stats.dropped, 0,
        "bounded queue must not overflow here"
    );
    assert_eq!(shadow_stats.parse_failures, 0);
    let metrics_body = client::request(&addr, "GET", "/metrics", None)
        .expect("scrape /metrics")
        .body;
    let journal_body = client::request(&addr, "GET", "/debug/journal", None)
        .expect("download journal")
        .body;
    client::request(&addr, "POST", "/shutdown", None).expect("shutdown");
    run_handle.join().expect("server thread");

    // Offline reconstruction: exactly re-evaluate the shadow-sampled
    // journal queries with the same quantization the monitor uses and
    // compare against the scraped per-class gauges.
    let records = xcluster_obs::journal::parse_jsonl(&journal_body).expect("parse journal");
    assert_eq!(records.len(), SERVE_QUERIES, "full-rate journal retention");
    let sampled: Vec<_> = records.iter().filter(|r| r.shadow_sampled).collect();
    assert_eq!(
        sampled.len() as u64,
        shadow_stats.evaluated,
        "journal flags must reconstruct the shadow subset"
    );
    let doc = &p.dataset.tree;
    let mut sums: std::collections::HashMap<QueryClass, (u64, u64)> =
        std::collections::HashMap::new();
    for rec in &sampled {
        let twig = xcluster_query::parse_twig(&rec.query, doc.terms()).expect("journal query");
        let truth = xcluster_query::evaluate(&twig, doc, &p.index);
        let rel = xcluster_core::metrics::relative_error(truth, rec.estimate, 1.0);
        let e = sums
            .entry(xcluster_query::classify(&twig))
            .or_insert((0, 0));
        e.0 += (rel * 1e9).round() as u64;
        e.1 += 1;
    }
    let exposition = xcluster_obs::expose::parse(&metrics_body).expect("parse /metrics");
    let mut class_rel: Vec<(&str, Option<f64>)> = Vec::new();
    for (class, label) in [
        (QueryClass::Struct, "struct"),
        (QueryClass::Numeric, "numeric"),
        (QueryClass::String, "string"),
        (QueryClass::Text, "text"),
    ] {
        let offline = sums
            .get(&class)
            .map(|(sum, count)| *sum as f64 / *count as f64 / 1e9);
        let scraped = exposition
            .by_name("xcluster_accuracy_rel")
            .find(|s| s.label("class") == Some(label))
            .map(|s| s.value);
        match (offline, scraped) {
            (None, None) => {}
            (Some(o), Some(s)) => assert!(
                (o - s).abs() < 1e-9,
                "class {label}: offline {o} vs scraped {s}"
            ),
            other => panic!("class {label}: presence mismatch {other:?}"),
        }
        class_rel.push((label, offline));
    }
    let qps_ratio = shadow_report.achieved_qps / report.achieved_qps;
    assert!(
        qps_ratio >= 0.9,
        "shadow monitor overhead too high: {:.0} q/s with vs {:.0} q/s without ({:.1}%)",
        shadow_report.achieved_qps,
        report.achieved_qps,
        qps_ratio * 100.0
    );
    println!(
        "== bench-serve: {} queries over HTTP, {:.0} q/s, batch p99 {:.3} ms, footprint {} bytes ==",
        report.sent_queries,
        report.achieved_qps,
        report.latency.p99 as f64 / 1e6,
        footprint.total_bytes()
    );
    println!(
        "== bench-serve shadow: {} sampled / {} evaluated at {} ppm, qps ratio {:.3} ==",
        shadow_stats.submitted, shadow_stats.evaluated, SHADOW_PPM, qps_ratio
    );
    let mut body = String::from("{\n");
    let _ = writeln!(body, "    \"queries\": {},", report.sent_queries);
    let _ = writeln!(body, "    \"batches\": {},", report.batches);
    let _ = writeln!(body, "    \"batch_size\": {SERVE_BATCH},");
    let _ = writeln!(body, "    \"errors\": {},", report.errors);
    let _ = writeln!(body, "    \"mismatches\": {},", report.mismatches);
    let _ = writeln!(body, "    \"achieved_qps\": {:.0},", report.achieved_qps);
    let _ = writeln!(body, "    \"batch_latency_ns\": {{");
    let _ = writeln!(body, "      \"p50\": {},", report.latency.p50);
    let _ = writeln!(body, "      \"p95\": {},", report.latency.p95);
    let _ = writeln!(body, "      \"p99\": {},", report.latency.p99);
    let _ = writeln!(body, "      \"max\": {}", report.latency.max);
    let _ = writeln!(body, "    }},");
    let _ = writeln!(body, "    \"footprint\": {{");
    let _ = writeln!(body, "      \"total_bytes\": {},", footprint.total_bytes());
    let _ = writeln!(
        body,
        "      \"cluster_bytes\": {},",
        footprint.cluster_bytes
    );
    let _ = writeln!(body, "      \"edge_bytes\": {},", footprint.edge_bytes);
    let _ = writeln!(
        body,
        "      \"interner_bytes\": {},",
        footprint.interner_bytes
    );
    let _ = writeln!(
        body,
        "      \"summary_bytes\": {},",
        footprint.summary_bytes()
    );
    let _ = writeln!(body, "      \"model_bytes\": {}", footprint.model_bytes());
    let _ = writeln!(body, "    }},");
    let _ = writeln!(body, "    \"shadow\": {{");
    let _ = writeln!(body, "      \"sample_ppm\": {SHADOW_PPM},");
    let _ = writeln!(body, "      \"sampled\": {},", shadow_stats.submitted);
    let _ = writeln!(body, "      \"evaluated\": {},", shadow_stats.evaluated);
    let _ = writeln!(body, "      \"dropped\": {},", shadow_stats.dropped);
    let _ = writeln!(
        body,
        "      \"drift_events\": {},",
        shadow_stats.drift_events
    );
    let _ = writeln!(body, "      \"class_rel\": {{");
    for (i, (label, rel)) in class_rel.iter().enumerate() {
        let comma = if i + 1 < class_rel.len() { "," } else { "" };
        match rel {
            Some(r) => {
                let _ = writeln!(body, "        \"{label}\": {r}{comma}");
            }
            None => {
                let _ = writeln!(body, "        \"{label}\": null{comma}");
            }
        }
    }
    let _ = writeln!(body, "      }},");
    let _ = writeln!(
        body,
        "      \"shadow_qps\": {:.0},",
        shadow_report.achieved_qps
    );
    let _ = writeln!(body, "      \"qps_ratio\": {qps_ratio:.3}");
    let _ = writeln!(body, "    }}");
    body.push_str("  }");
    let mut run = bench_run_meta("bench-serve", opts, t0.elapsed().as_secs_f64());
    if let Some(q) = run.iter_mut().find(|(k, _)| *k == "queries") {
        q.1 = format!("{SERVE_QUERIES}");
    }
    run.push(("batch", format!("{SERVE_BATCH}")));
    write_bench_file("BENCH_serve.json", &run, &body);
}

fn save(opts: &Opts, name: &str, content: &str) {
    let path = format!("{}/{}.csv", opts.out, name);
    std::fs::write(&path, content).expect("write CSV");
    eprintln!("[wrote {path}]");
}

/// The structural-budget sweep points, scaled from the paper's 0–50 KB.
fn b_str_points(scale: f64) -> Vec<usize> {
    [0usize, 10, 20, 30, 40, 50]
        .iter()
        .map(|&kb| ((kb * 1024) as f64 * scale) as usize)
        .collect()
}

/// The paper's fixed 150 KB value budget, scaled.
fn b_val(scale: f64) -> usize {
    ((150 * 1024) as f64 * scale) as usize
}

// ---------------------------------------------------------------------
// Table 1: data-set characteristics.
// ---------------------------------------------------------------------

fn table1(opts: &Opts) {
    println!(
        "== Table 1: Data Set Characteristics (scale {:.2}) ==",
        opts.scale
    );
    println!(
        "{:8} {:>12} {:>12} {:>14} {:>20}",
        "", "Size(MB)", "#Elements", "Ref.Size(KB)", "#Nodes Value/Total"
    );
    let mut csv = String::from("dataset,size_mb,elements,ref_kb,value_nodes,total_nodes\n");
    for p in [
        prepare_imdb(opts.scale, opts.seed),
        prepare_xmark(opts.scale, opts.seed),
    ] {
        let mb = p.dataset.file_size_bytes() as f64 / (1024.0 * 1024.0);
        let ref_kb = p.reference.total_bytes() as f64 / 1024.0;
        println!(
            "{:8} {:12.1} {:>12} {:14.0} {:>11} / {:<6}",
            p.dataset.name,
            mb,
            p.dataset.num_elements(),
            ref_kb,
            p.reference.num_value_nodes(),
            p.reference.num_nodes()
        );
        let _ = writeln!(
            csv,
            "{},{:.2},{},{:.0},{},{}",
            p.dataset.name,
            mb,
            p.dataset.num_elements(),
            ref_kb,
            p.reference.num_value_nodes(),
            p.reference.num_nodes()
        );
    }
    save(opts, "table1", &csv);
}

// ---------------------------------------------------------------------
// Table 2: workload characteristics.
// ---------------------------------------------------------------------

fn table2(opts: &Opts) {
    println!("== Table 2: Workload Characteristics ==");
    println!(
        "{:8} {:>16} {:>16}",
        "", "AvgResult Struct", "AvgResult Pred"
    );
    let mut csv = String::from("dataset,avg_result_struct,avg_result_pred\n");
    for p in [
        prepare_imdb(opts.scale, opts.seed),
        prepare_xmark(opts.scale, opts.seed),
    ] {
        let w = positive_workload(&p, opts.queries, opts.seed);
        let s = w.avg_result_size(QueryClass::Struct);
        let pr = w.avg_predicate_result_size();
        println!("{:8} {:16.0} {:16.0}", p.dataset.name, s, pr);
        let _ = writeln!(csv, "{},{:.1},{:.1}", p.dataset.name, s, pr);
    }
    save(opts, "table2", &csv);
}

// ---------------------------------------------------------------------
// Figure 8: average relative error vs structural budget.
// ---------------------------------------------------------------------

fn figure8(opts: &Opts, which: &str) {
    let p = if which == "imdb" {
        prepare_imdb(opts.scale, opts.seed)
    } else {
        prepare_xmark(opts.scale, opts.seed)
    };
    let w = positive_workload(&p, opts.queries, opts.seed);
    println!(
        "== Figure 8{}: {} — avg relative error (%) vs synopsis size; value budget {} KB ==",
        if which == "imdb" { "a" } else { "b" },
        which,
        b_val(opts.scale) / 1024
    );
    println!(
        "{:>10} {:>10} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "Bstr(KB)", "Size(KB)", "Overall", "Struct", "Numeric", "String", "Text"
    );
    let mut csv = String::from("b_str_kb,total_kb,overall,struct,numeric,string,text\n");
    for pt in sweep(&p, &w, &b_str_points(opts.scale), b_val(opts.scale)) {
        let r = &pt.report;
        println!(
            "{:>10.1} {:>10.1} {:>8.1} {} {} {} {}",
            pt.b_str as f64 / 1024.0,
            pt.total_bytes as f64 / 1024.0,
            r.overall_rel * 100.0,
            pct(r.class_rel(QueryClass::Struct)),
            pct(r.class_rel(QueryClass::Numeric)),
            pct(r.class_rel(QueryClass::String)),
            pct(r.class_rel(QueryClass::Text)),
        );
        let cell = |v: Option<f64>| v.map_or(String::from(""), |x| format!("{:.4}", x));
        let _ = writeln!(
            csv,
            "{:.1},{:.1},{:.4},{},{},{},{}",
            pt.b_str as f64 / 1024.0,
            pt.total_bytes as f64 / 1024.0,
            r.overall_rel,
            cell(r.class_rel(QueryClass::Struct)),
            cell(r.class_rel(QueryClass::Numeric)),
            cell(r.class_rel(QueryClass::String)),
            cell(r.class_rel(QueryClass::Text)),
        );
    }
    save(opts, &format!("figure8_{which}"), &csv);
}

// ---------------------------------------------------------------------
// Figure 9: absolute error for low-count queries at the largest budget.
// ---------------------------------------------------------------------

fn figure9(opts: &Opts) {
    println!("== Figure 9: avg absolute error for low-count queries (largest synopsis) ==");
    println!("{:10} {:>10} {:>10}", "", "IMDB", "XMark");
    let mut rows = [[None::<f64>; 2]; 3];
    for (col, p) in [
        prepare_imdb(opts.scale, opts.seed),
        prepare_xmark(opts.scale, opts.seed),
    ]
    .into_iter()
    .enumerate()
    {
        let w = positive_workload(&p, opts.queries, opts.seed);
        let points = sweep(
            &p,
            &w,
            &[*b_str_points(opts.scale).last().unwrap()],
            b_val(opts.scale),
        );
        let r = &points[0].report;
        rows[0][col] = r.low_count_abs(QueryClass::Numeric);
        rows[1][col] = r.low_count_abs(QueryClass::String);
        rows[2][col] = r.low_count_abs(QueryClass::Text);
    }
    let mut csv = String::from("class,imdb,xmark\n");
    for (name, row) in ["Numeric", "String", "Text"].iter().zip(rows.iter()) {
        let cell = |v: Option<f64>| v.map_or("     -".to_string(), |x| format!("{x:6.2}"));
        println!("{:10} {:>10} {:>10}", name, cell(row[0]), cell(row[1]));
        let c = |v: Option<f64>| v.map_or(String::new(), |x| format!("{x:.3}"));
        let _ = writeln!(csv, "{},{},{}", name, c(row[0]), c(row[1]));
    }
    save(opts, "figure9", &csv);
}

// ---------------------------------------------------------------------
// Negative workloads (Section 6.1 text).
// ---------------------------------------------------------------------

fn negative(opts: &Opts) {
    println!("== Negative workloads: estimates should be close to zero at every budget ==");
    println!("{:8} {:>10} {:>14}", "", "Bstr(KB)", "avg estimate");
    let mut csv = String::from("dataset,b_str_kb,avg_estimate\n");
    for p in [
        prepare_imdb(opts.scale, opts.seed),
        prepare_xmark(opts.scale, opts.seed),
    ] {
        let w = negative_workload(&p, opts.queries / 2, opts.seed);
        // Three budget points suffice to demonstrate "near zero at every
        // budget" without doubling the suite's build count.
        let all_points = b_str_points(opts.scale);
        let points = [all_points[0], all_points[2], all_points[5]];
        for pt in sweep(&p, &w, &points, b_val(opts.scale)) {
            println!(
                "{:8} {:>10.1} {:>14.3}",
                p.dataset.name,
                pt.b_str as f64 / 1024.0,
                pt.report.avg_estimate
            );
            let _ = writeln!(
                csv,
                "{},{:.1},{:.4}",
                p.dataset.name,
                pt.b_str as f64 / 1024.0,
                pt.report.avg_estimate
            );
        }
    }
    save(opts, "negative", &csv);
}

// ---------------------------------------------------------------------
// Ablation: localized Δ vs the global TreeSketch metric (Section 6.2).
// ---------------------------------------------------------------------

fn ablation_metric(opts: &Opts) {
    // The global builder keeps the whole reference partition in memory
    // and re-scores all pairs per round — run at a reduced scale so the
    // quadratic candidate scans stay sane.
    let scale = (opts.scale * 0.25).clamp(0.005, 0.02);
    println!("== Ablation: localized Δ vs global (TreeSketch-style) metric, structural only ==");
    println!(
        "{:8} {:>10} {:>12} {:>12} {:>16}",
        "", "Bstr(KB)", "local err%", "global err%", "tracked entries"
    );
    let mut csv = String::from("dataset,b_str_kb,local_err,global_err,global_tracked\n");
    for name in ["imdb", "xmark"] {
        let p = if name == "imdb" {
            prepare_imdb(scale, opts.seed)
        } else {
            prepare_xmark(scale, opts.seed)
        };
        // Structural-only reference (no value summaries).
        let reference = reference_synopsis(
            &p.dataset.tree,
            &ReferenceConfig {
                value_paths: Some(vec![]),
                ..ReferenceConfig::default()
            },
        );
        let w = xcluster_query::workload::generate_positive(
            &p.dataset.tree,
            &p.index,
            &xcluster_query::WorkloadConfig {
                num_queries: opts.queries / 2,
                seed: opts.seed,
                class_weights: [1.0, 0.0, 0.0, 0.0],
                ..xcluster_query::WorkloadConfig::default()
            },
        );
        for frac in [8usize, 16] {
            let budget = reference.structural_bytes() / frac;
            let local = build_synopsis(
                reference.clone(),
                &BuildConfig {
                    b_str: budget,
                    b_val: 0,
                    ..BuildConfig::default()
                },
            );
            let (global, tracked) = baseline::global_metric_build(reference.clone(), budget);
            let le = evaluate_workload(&local, &w, &EvalOptions::default())
                .report
                .overall_rel;
            let ge = evaluate_workload(&global, &w, &EvalOptions::default())
                .report
                .overall_rel;
            println!(
                "{:8} {:>10.1} {:>12.2} {:>12.2} {:>16}",
                name,
                budget as f64 / 1024.0,
                le * 100.0,
                ge * 100.0,
                tracked
            );
            let _ = writeln!(
                csv,
                "{},{:.1},{:.4},{:.4},{}",
                name,
                budget as f64 / 1024.0,
                le,
                ge,
                tracked
            );
        }
    }
    save(opts, "ablation_metric", &csv);
}

// ---------------------------------------------------------------------
// Ablation: end-biased term histograms vs conventional range buckets.
// ---------------------------------------------------------------------

fn ablation_ebth(opts: &Opts) {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use xcluster_summaries::Ebth;
    println!("== Ablation: end-biased term histogram vs conventional range-bucket histogram ==");
    let p = prepare_imdb(opts.scale, opts.seed);
    // One big TEXT collection: all plot term vectors.
    let vectors: Vec<_> = p
        .dataset
        .tree
        .all_nodes()
        .filter(|&n| p.dataset.tree.label_str(n) == "plot")
        .filter_map(|n| p.dataset.tree.value(n).as_text().cloned())
        .collect();
    let exact = Ebth::from_vectors(vectors.iter());
    let full = exact.size_bytes();
    println!(
        "{} texts, {} distinct terms, exact centroid {} bytes",
        vectors.len(),
        exact.num_indexed(),
        full
    );
    let mut rng = StdRng::seed_from_u64(opts.seed);
    // Probe terms: positive (random occurring) and negative (random ids).
    let occurring: Vec<u32> = exact.indexed_terms().iter().map(|(t, _)| t.0).collect();
    let max_id = occurring.iter().copied().max().unwrap_or(1);
    let mut probes: Vec<(u32, f64)> = Vec::new();
    for _ in 0..400 {
        let t = occurring[rng.gen_range(0..occurring.len())];
        probes.push((t, exact.term_frequency(xcluster_xml::Symbol(t))));
    }
    for _ in 0..400 {
        let t = rng.gen_range(0..max_id * 2);
        let truth = if occurring.binary_search(&t).is_ok() {
            exact.term_frequency(xcluster_xml::Symbol(t))
        } else {
            0.0
        };
        probes.push((t, truth));
    }
    println!(
        "{:>12} {:>14} {:>14}",
        "budget", "EBTH avg err", "RangeBkt avg err"
    );
    let mut csv = String::from("budget_bytes,ebth_err,range_bucket_err\n");
    for frac in [2usize, 4, 8, 16] {
        let budget = full / frac;
        let mut ebth = exact.clone();
        ebth.compress_to_bytes(budget);
        // Match byte budgets: the baseline gets budget/8 bucket averages.
        let buckets = (budget / 8).max(1);
        let range = exact.to_range_bucket_baseline(buckets);
        let (mut e1, mut e2) = (0.0, 0.0);
        for &(t, truth) in &probes {
            e1 += (ebth.term_frequency(xcluster_xml::Symbol(t)) - truth).abs();
            e2 += (range.term_frequency(xcluster_xml::Symbol(t)) - truth).abs();
        }
        e1 /= probes.len() as f64;
        e2 /= probes.len() as f64;
        println!("{budget:>11}B {e1:>14.5} {e2:>14.5}");
        let _ = writeln!(csv, "{budget},{e1:.6},{e2:.6}");
    }
    save(opts, "ablation_ebth", &csv);
}

// ---------------------------------------------------------------------
// Ablation: error-driven vs count-based PST pruning.
// ---------------------------------------------------------------------

fn ablation_pst(opts: &Opts) {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use xcluster_summaries::Pst;
    println!("== Ablation: error-driven vs count-threshold PST pruning ==");
    let p = prepare_imdb(opts.scale, opts.seed);
    let strings: Vec<String> = p
        .dataset
        .tree
        .all_nodes()
        .filter(|&n| p.dataset.tree.label_str(n) == "name")
        .filter_map(|n| p.dataset.tree.value(n).as_string().map(|s| s.to_string()))
        .collect();
    let full = Pst::build(&strings, 8);
    println!(
        "{} strings, full trie {} nodes",
        strings.len(),
        full.node_count()
    );
    let mut rng = StdRng::seed_from_u64(opts.seed ^ 0x515);
    // Probe needles: tokens, prefixes, random fragments.
    let mut needles: Vec<String> = Vec::new();
    for _ in 0..300 {
        let s = &strings[rng.gen_range(0..strings.len())];
        let toks: Vec<&str> = s.split_whitespace().collect();
        let t = toks[rng.gen_range(0..toks.len())];
        match rng.gen_range(0..3) {
            0 => needles.push(t.to_string()),
            1 => needles.push(t[..rng.gen_range(2..=t.len().min(5))].to_string()),
            _ => {
                let b = s.as_bytes();
                let len = rng.gen_range(2..=4.min(b.len()));
                let st = rng.gen_range(0..=b.len() - len);
                needles.push(String::from_utf8_lossy(&b[st..st + len]).into_owned());
            }
        }
    }
    let truth: Vec<f64> = needles
        .iter()
        .map(|n| {
            strings.iter().filter(|s| s.contains(n.as_str())).count() as f64 / strings.len() as f64
        })
        .collect();
    println!(
        "{:>12} {:>18} {:>18}",
        "nodes kept", "error-driven err", "count-based err"
    );
    let mut csv = String::from("nodes,error_driven,count_based\n");
    for frac in [2usize, 4, 8, 16] {
        let keep = full.node_count() / frac;
        let mut by_err = full.clone();
        by_err.prune_to_size(keep);
        let mut by_cnt = full.clone();
        by_cnt.prune_to_size_by_count(keep);
        let avg = |pst: &Pst| {
            needles
                .iter()
                .zip(truth.iter())
                .map(|(n, &t)| (pst.selectivity(n) - t).abs())
                .sum::<f64>()
                / needles.len() as f64
        };
        let (e1, e2) = (avg(&by_err), avg(&by_cnt));
        println!("{keep:>12} {e1:>18.5} {e2:>18.5}");
        let _ = writeln!(csv, "{keep},{e1:.6},{e2:.6}");
    }
    save(opts, "ablation_pst", &csv);
}

// ---------------------------------------------------------------------
// Ablation: NUMERIC summary backends (histogram vs wavelet vs sample).
// ---------------------------------------------------------------------

fn ablation_numeric(opts: &Opts) {
    use xcluster_core::reference::reference_synopsis;
    use xcluster_summaries::NumericKind;
    println!("== Ablation: NUMERIC backend — histogram vs Haar wavelet vs reservoir sample ==");
    // Wavelet fusion re-grids on every misaligned merge; keep this
    // ablation at a bounded scale.
    let scale = opts.scale.min(0.1);
    let p = prepare_imdb(scale, opts.seed);
    // Numeric-only workload over summarized paths.
    let w = xcluster_query::workload::generate_positive(
        &p.dataset.tree,
        &p.index,
        &xcluster_query::WorkloadConfig {
            num_queries: opts.queries / 2,
            seed: opts.seed,
            class_weights: [0.0, 1.0, 0.0, 0.0],
            allowed_targets: Some(p.targets.clone()),
            ..xcluster_query::WorkloadConfig::default()
        },
    );
    println!(
        "{:>12} {:>12} {:>14} {:>12}",
        "backend", "Bval(KB)", "numeric err%", "size(KB)"
    );
    let mut csv = String::from("backend,b_val_kb,numeric_err,total_kb\n");
    for (name, kind) in [
        ("histogram", NumericKind::Histogram),
        ("wavelet", NumericKind::Wavelet),
        ("sample", NumericKind::Sample),
    ] {
        let reference = reference_synopsis(
            &p.dataset.tree,
            &xcluster_core::reference::ReferenceConfig {
                value_paths: Some(p.dataset.value_paths.clone()),
                numeric_kind: kind,
                ..xcluster_core::reference::ReferenceConfig::default()
            },
        );
        for b_val in [b_val(scale) / 4, b_val(scale)] {
            let built = build_synopsis(
                reference.clone(),
                &BuildConfig {
                    b_str: b_str_points(scale)[3],
                    b_val,
                    ..BuildConfig::default()
                },
            );
            let r = evaluate_workload(&built, &w, &EvalOptions::default()).report;
            let err = r.class_rel(QueryClass::Numeric).unwrap_or(0.0);
            println!(
                "{:>12} {:>12.1} {:>13.2}% {:>12.1}",
                name,
                b_val as f64 / 1024.0,
                err * 100.0,
                built.total_bytes() as f64 / 1024.0
            );
            let _ = writeln!(
                csv,
                "{},{:.1},{:.4},{:.1}",
                name,
                b_val as f64 / 1024.0,
                err,
                built.total_bytes() as f64 / 1024.0
            );
        }
    }
    save(opts, "ablation_numeric", &csv);
}
