//! The unified value-summary interface used by synopsis construction and
//! estimation (`vsumm(u)` of Definition 3.1).

use crate::ebth::{self, Ebth};
use crate::histogram::{self, Histogram, HistogramKind};
use crate::predicate::ValuePredicate;
use crate::pst::{self, Pst};
use crate::sample::{self, SampleSummary};
use crate::wavelet::{self, WaveletSummary};
use xcluster_xml::{Value, ValueType};

/// Default substring length bound for PST construction.
pub const DEFAULT_PST_DEPTH: usize = 8;

/// Default bucket count for reference-synopsis histograms.
pub const DEFAULT_HISTOGRAM_BUCKETS: usize = 32;

/// Atomic-predicate moments of a summary pair `(A, B)` over the union of
/// their atomic predicates `p` (paper Section 4.1):
/// `sum_aa = Σ σ_p(A)²`, `sum_ab = Σ σ_p(A)·σ_p(B)`, `sum_bb = Σ σ_p(B)²`.
///
/// These feed the factored form of Δ(S,S′): for edge-count tuples `cᵤ`
/// and `c_w`,
/// `Σ_p Σ_c (σ_p(u)·cᵤ(c) − σ_p(w)·c_w(c))²
///   = sum_aa·Σc cᵤ² − 2·sum_ab·Σc cᵤc_w + sum_bb·Σc c_w²`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AtomicMoments {
    /// `Σ_p σ_p(A)²`.
    pub sum_aa: f64,
    /// `Σ_p σ_p(A)·σ_p(B)`.
    pub sum_ab: f64,
    /// `Σ_p σ_p(B)²`.
    pub sum_bb: f64,
}

impl AtomicMoments {
    /// Moments of the trivial predicate set `{true}` (σ ≡ 1), used for
    /// synopsis nodes without value summaries.
    pub const TRIVIAL: AtomicMoments = AtomicMoments {
        sum_aa: 1.0,
        sum_ab: 1.0,
        sum_bb: 1.0,
    };

    /// The squared atomic-selectivity distance `Σ_p (σ_p(A) − σ_p(B))²`.
    pub fn sq_distance(&self) -> f64 {
        (self.sum_aa - 2.0 * self.sum_ab + self.sum_bb).max(0.0)
    }
}

/// The outcome of one candidate value-compression step (Section 4.2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompressionStep {
    /// `Σ_p (σ_before − σ_after)²` over the affected atomic predicates.
    pub sq_error: f64,
    /// Bytes the step frees.
    pub bytes_saved: usize,
}

/// Which backend summarizes `NUMERIC` distributions. The paper's
/// prototype uses histograms but names wavelets and random sampling as
/// interchangeable options (Section 3); all three are implemented and
/// compared by the `ablation-numeric` experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum NumericKind {
    /// Equi-depth bucket histograms (the paper's default).
    #[default]
    Histogram,
    /// Haar-wavelet coefficient synopses.
    Wavelet,
    /// Uniform reservoir samples.
    Sample,
}

/// A value-distribution summary for one XCluster node.
#[derive(Debug, Clone)]
pub enum ValueSummary {
    /// `NUMERIC` values → frequency histogram.
    Numeric(Histogram),
    /// `NUMERIC` values → Haar-wavelet synopsis (alternative backend).
    NumericWavelet(WaveletSummary),
    /// `NUMERIC` values → reservoir sample (alternative backend).
    NumericSample(SampleSummary),
    /// `STRING` values → pruned suffix tree.
    String(Pst),
    /// `TEXT` values → end-biased term histogram.
    Text(Ebth),
}

impl ValueSummary {
    /// Builds the detailed (reference) summary for a collection of values
    /// of one type. Returns `None` for an empty or type-less collection.
    ///
    /// All values must share one type; values of other types are ignored
    /// (type-respecting partitions guarantee homogeneity upstream).
    pub fn build(values: &[&Value], ty: ValueType) -> Option<ValueSummary> {
        Self::build_with(values, ty, DEFAULT_HISTOGRAM_BUCKETS, DEFAULT_PST_DEPTH)
    }

    /// [`ValueSummary::build`] with explicit histogram bucket count and
    /// PST substring-length bound.
    pub fn build_with(
        values: &[&Value],
        ty: ValueType,
        hist_buckets: usize,
        pst_depth: usize,
    ) -> Option<ValueSummary> {
        Self::build_full(values, ty, hist_buckets, pst_depth, NumericKind::Histogram)
    }

    /// [`ValueSummary::build_with`] plus an explicit `NUMERIC` backend.
    pub fn build_full(
        values: &[&Value],
        ty: ValueType,
        hist_buckets: usize,
        pst_depth: usize,
        numeric: NumericKind,
    ) -> Option<ValueSummary> {
        match ty {
            ValueType::None => None,
            ValueType::Numeric => {
                let nums: Vec<u64> = values.iter().filter_map(|v| v.as_numeric()).collect();
                if nums.is_empty() {
                    return None;
                }
                Some(match numeric {
                    NumericKind::Histogram => ValueSummary::Numeric(Histogram::build(
                        &nums,
                        hist_buckets,
                        HistogramKind::EquiDepth,
                    )),
                    NumericKind::Wavelet => ValueSummary::NumericWavelet(WaveletSummary::build(
                        &nums,
                        hist_buckets * 2, // coefficients ≈ bucket budget in bytes
                        crate::wavelet::DEFAULT_LEVELS,
                    )),
                    NumericKind::Sample => {
                        ValueSummary::NumericSample(SampleSummary::build(&nums, hist_buckets * 2))
                    }
                })
            }
            ValueType::String => {
                let strs: Vec<&str> = values.iter().filter_map(|v| v.as_string()).collect();
                if strs.is_empty() {
                    return None;
                }
                Some(ValueSummary::String(Pst::build(&strs, pst_depth)))
            }
            ValueType::Text => {
                let texts: Vec<_> = values.iter().filter_map(|v| v.as_text()).collect();
                if texts.is_empty() {
                    return None;
                }
                Some(ValueSummary::Text(Ebth::from_vectors(
                    texts.iter().copied(),
                )))
            }
        }
    }

    /// The value type this summary covers.
    pub fn value_type(&self) -> ValueType {
        match self {
            ValueSummary::Numeric(_)
            | ValueSummary::NumericWavelet(_)
            | ValueSummary::NumericSample(_) => ValueType::Numeric,
            ValueSummary::String(_) => ValueType::String,
            ValueSummary::Text(_) => ValueType::Text,
        }
    }

    /// Estimated selectivity `σ_p(u)` of a value predicate against this
    /// summary. Predicates of a mismatched type have selectivity 0 (they
    /// can never match values of this type).
    pub fn selectivity(&self, pred: &ValuePredicate) -> f64 {
        match (self, pred) {
            (ValueSummary::Numeric(h), ValuePredicate::Range { lo, hi }) => h.selectivity(*lo, *hi),
            (ValueSummary::NumericWavelet(w), ValuePredicate::Range { lo, hi }) => {
                w.selectivity(*lo, *hi)
            }
            (ValueSummary::NumericSample(s), ValuePredicate::Range { lo, hi }) => {
                s.selectivity(*lo, *hi)
            }
            (ValueSummary::String(p), ValuePredicate::Contains { needle }) => p.selectivity(needle),
            (ValueSummary::Text(e), ValuePredicate::FtContains { terms }) => e.selectivity(terms),
            (ValueSummary::Text(e), ValuePredicate::SimilarTo { terms, min_overlap }) => {
                e.similarity_selectivity(terms, *min_overlap)
            }
            _ => 0.0,
        }
    }

    /// Storage footprint in bytes.
    pub fn size_bytes(&self) -> usize {
        match self {
            ValueSummary::Numeric(h) => h.size_bytes(),
            ValueSummary::NumericWavelet(w) => w.size_bytes(),
            ValueSummary::NumericSample(s) => s.size_bytes(),
            ValueSummary::String(p) => p.size_bytes(),
            ValueSummary::Text(e) => e.size_bytes(),
        }
    }

    /// Resident heap bytes of the in-memory representation (allocated
    /// capacities), as opposed to the on-disk model of
    /// [`ValueSummary::size_bytes`]. The enum header itself is counted
    /// by the owner (it lives inline in the synopsis node).
    pub fn heap_bytes(&self) -> usize {
        match self {
            ValueSummary::Numeric(h) => h.heap_bytes(),
            ValueSummary::NumericWavelet(w) => w.heap_bytes(),
            ValueSummary::NumericSample(s) => s.heap_bytes(),
            ValueSummary::String(p) => p.heap_bytes(),
            ValueSummary::Text(e) => e.heap_bytes(),
        }
    }

    /// Stable snake_case name of the summary backend, used as a metric
    /// label by the memory-footprint accounting.
    pub fn kind_name(&self) -> &'static str {
        match self {
            ValueSummary::Numeric(_) => "histogram",
            ValueSummary::NumericWavelet(_) => "wavelet",
            ValueSummary::NumericSample(_) => "sample",
            ValueSummary::String(_) => "pst",
            ValueSummary::Text(_) => "term_histogram",
        }
    }

    /// Fuses two summaries of the same type for a node merge (paper
    /// Section 4.1). `self_weight`/`other_weight` are the extent sizes
    /// `|u|`, `|v|`; they matter only for `TEXT` centroids (histograms and
    /// PSTs carry absolute counts and fuse by summation).
    ///
    /// # Panics
    /// Panics if the summary types differ — the synopsis is
    /// type-respecting, so merges never mix types.
    pub fn fuse(&self, other: &ValueSummary) -> ValueSummary {
        match (self, other) {
            (ValueSummary::Numeric(a), ValueSummary::Numeric(b)) => {
                ValueSummary::Numeric(a.fuse(b))
            }
            (ValueSummary::NumericWavelet(a), ValueSummary::NumericWavelet(b)) => {
                ValueSummary::NumericWavelet(a.fuse(b))
            }
            (ValueSummary::NumericSample(a), ValueSummary::NumericSample(b)) => {
                ValueSummary::NumericSample(a.fuse(b))
            }
            (ValueSummary::String(a), ValueSummary::String(b)) => ValueSummary::String(a.fuse(b)),
            (ValueSummary::Text(a), ValueSummary::Text(b)) => ValueSummary::Text(a.fuse(b)),
            _ => panic!("cannot fuse value summaries of different types"),
        }
    }

    /// Atomic-predicate moments of the pair `(self, other)`. Both
    /// summaries must have the same type.
    pub fn atomic_moments(&self, other: &ValueSummary) -> AtomicMoments {
        let (sum_aa, sum_ab, sum_bb) = match (self, other) {
            (ValueSummary::Numeric(a), ValueSummary::Numeric(b)) => histogram::atomic_moments(a, b),
            (ValueSummary::NumericWavelet(a), ValueSummary::NumericWavelet(b)) => {
                wavelet::atomic_moments(a, b)
            }
            (ValueSummary::NumericSample(a), ValueSummary::NumericSample(b)) => {
                sample::atomic_moments(a, b)
            }
            (ValueSummary::String(a), ValueSummary::String(b)) => pst::atomic_moments(a, b),
            (ValueSummary::Text(a), ValueSummary::Text(b)) => ebth::atomic_moments(a, b),
            _ => panic!("cannot compare value summaries of different types"),
        };
        AtomicMoments {
            sum_aa,
            sum_ab,
            sum_bb,
        }
    }

    /// Incremental maintenance: folds one more value into the summary.
    /// Values of a mismatched type are ignored (type-respecting
    /// partitions guarantee homogeneity upstream). Histogram, PST, and
    /// EBTH backends update their distributions (exactly invertible for
    /// uncompressed summaries); wavelet and sample backends adjust only
    /// their totals — the documented coarse path, exercised solely by
    /// the `ablation-numeric` backends.
    pub fn observe(&mut self, value: &Value) {
        match (self, value) {
            (ValueSummary::Numeric(h), Value::Numeric(n)) => h.observe(*n),
            (ValueSummary::NumericWavelet(w), Value::Numeric(n)) => w.observe(*n),
            (ValueSummary::NumericSample(s), Value::Numeric(n)) => s.observe(*n),
            (ValueSummary::String(p), Value::String(s)) => p.observe(s),
            (ValueSummary::Text(e), Value::Text(tv)) => e.observe(tv),
            _ => {}
        }
    }

    /// Inverse of [`ValueSummary::observe`]: removes one value from the
    /// summarized distribution. Bitwise-exact inverse of an `observe` of
    /// the same value on uncompressed summaries.
    pub fn retract(&mut self, value: &Value) {
        match (self, value) {
            (ValueSummary::Numeric(h), Value::Numeric(n)) => h.retract(*n),
            (ValueSummary::NumericWavelet(w), Value::Numeric(n)) => w.retract(*n),
            (ValueSummary::NumericSample(s), Value::Numeric(n)) => s.retract(*n),
            (ValueSummary::String(p), Value::String(s)) => p.retract(s),
            (ValueSummary::Text(e), Value::Text(tv)) => e.retract(tv),
            _ => {}
        }
    }

    /// Evaluates the best single compression step *without applying it*:
    /// the cheapest adjacent-bucket collapse (`hist_cmprs`), lowest-error
    /// leaf prune (`st_cmprs`), or lowest-frequency term demotion
    /// (`tv_cmprs`), each with `b = 1`. Returns `None` when the summary is
    /// already minimal.
    pub fn peek_compression(&self) -> Option<CompressionStep> {
        match self {
            ValueSummary::Numeric(h) => h.best_collapse().map(|(_, sq)| CompressionStep {
                sq_error: sq,
                bytes_saved: crate::footprint::HISTOGRAM_BUCKET_BYTES,
            }),
            ValueSummary::NumericWavelet(w) => {
                let mut probe = w.clone();
                probe.drop_one().map(|sq| CompressionStep {
                    sq_error: sq,
                    bytes_saved: crate::wavelet::WAVELET_COEF_BYTES,
                })
            }
            ValueSummary::NumericSample(s) => {
                let mut probe = s.clone();
                probe.drop_one().map(|sq| CompressionStep {
                    sq_error: sq,
                    bytes_saved: crate::sample::SAMPLE_ENTRY_BYTES,
                })
            }
            ValueSummary::String(p) => {
                let mut probe = p.clone();
                probe.prune_one().map(|sq| CompressionStep {
                    sq_error: sq,
                    bytes_saved: crate::footprint::PST_NODE_BYTES,
                })
            }
            ValueSummary::Text(e) => {
                let mut probe = e.clone();
                let before = probe.size_bytes();
                probe.demote_one().map(|sq| CompressionStep {
                    sq_error: sq,
                    bytes_saved: before.saturating_sub(probe.size_bytes()),
                })
            }
        }
    }

    /// Bulk compression: shrinks the summary to at most `target` bytes
    /// (or as small as the summary type allows), returning the
    /// accumulated squared atomic-selectivity error. Each summary type
    /// uses its efficient bulk path (heap-driven PST pruning, single-sort
    /// term demotion, repeated bucket collapse).
    pub fn compress_to_bytes(&mut self, target: usize) -> f64 {
        use crate::footprint::{PST_NODE_BYTES, SUMMARY_HEADER_BYTES};
        match self {
            ValueSummary::Numeric(h) => {
                let mut sq = 0.0;
                while h.size_bytes() > target {
                    match h.best_collapse() {
                        Some((i, e)) => {
                            h.merge_adjacent(i);
                            sq += e;
                        }
                        None => break,
                    }
                }
                sq
            }
            ValueSummary::NumericWavelet(w) => {
                let mut sq = 0.0;
                while w.size_bytes() > target {
                    match w.drop_one() {
                        Some(e) => sq += e,
                        None => break,
                    }
                }
                sq
            }
            ValueSummary::NumericSample(s) => {
                let mut sq = 0.0;
                while s.size_bytes() > target {
                    match s.drop_one() {
                        Some(e) => sq += e,
                        None => break,
                    }
                }
                sq
            }
            ValueSummary::String(p) => {
                if p.size_bytes() <= target {
                    return 0.0;
                }
                let max_nodes = target.saturating_sub(SUMMARY_HEADER_BYTES) / PST_NODE_BYTES;
                p.prune_to_size(max_nodes)
            }
            ValueSummary::Text(e) => e.compress_to_bytes(target),
        }
    }

    /// Applies the best single compression step, returning what happened.
    pub fn apply_compression(&mut self) -> Option<CompressionStep> {
        match self {
            ValueSummary::Numeric(h) => {
                let (i, sq) = h.best_collapse()?;
                h.merge_adjacent(i);
                Some(CompressionStep {
                    sq_error: sq,
                    bytes_saved: crate::footprint::HISTOGRAM_BUCKET_BYTES,
                })
            }
            ValueSummary::NumericWavelet(w) => w.drop_one().map(|sq| CompressionStep {
                sq_error: sq,
                bytes_saved: crate::wavelet::WAVELET_COEF_BYTES,
            }),
            ValueSummary::NumericSample(s) => s.drop_one().map(|sq| CompressionStep {
                sq_error: sq,
                bytes_saved: crate::sample::SAMPLE_ENTRY_BYTES,
            }),
            ValueSummary::String(p) => {
                let sq = p.prune_one()?;
                Some(CompressionStep {
                    sq_error: sq,
                    bytes_saved: crate::footprint::PST_NODE_BYTES,
                })
            }
            ValueSummary::Text(e) => {
                let before = e.size_bytes();
                let sq = e.demote_one()?;
                Some(CompressionStep {
                    sq_error: sq,
                    bytes_saved: before.saturating_sub(e.size_bytes()),
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xcluster_xml::{Symbol, TermVector};

    fn close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-9, "{a} vs {b}");
    }

    fn numeric_values(vals: &[u64]) -> Vec<Value> {
        vals.iter().map(|&v| Value::Numeric(v)).collect()
    }

    #[test]
    fn build_numeric() {
        let vals = numeric_values(&[1990, 1995, 2000, 2005]);
        let refs: Vec<&Value> = vals.iter().collect();
        let s = ValueSummary::build(&refs, ValueType::Numeric).unwrap();
        assert_eq!(s.value_type(), ValueType::Numeric);
        close(
            s.selectivity(&ValuePredicate::Range { lo: 0, hi: 3000 }),
            1.0,
        );
    }

    #[test]
    fn build_string() {
        let vals = [
            Value::String("database".into()),
            Value::String("datalog".into()),
        ];
        let refs: Vec<&Value> = vals.iter().collect();
        let s = ValueSummary::build(&refs, ValueType::String).unwrap();
        close(
            s.selectivity(&ValuePredicate::Contains {
                needle: "data".into(),
            }),
            1.0,
        );
        close(
            s.selectivity(&ValuePredicate::Contains {
                needle: "log".into(),
            }),
            0.5,
        );
    }

    #[test]
    fn build_text() {
        let tv1: TermVector = [Symbol(1), Symbol(2)].into_iter().collect();
        let tv2: TermVector = [Symbol(1)].into_iter().collect();
        let vals = [Value::Text(tv1), Value::Text(tv2)];
        let refs: Vec<&Value> = vals.iter().collect();
        let s = ValueSummary::build(&refs, ValueType::Text).unwrap();
        close(
            s.selectivity(&ValuePredicate::FtContains {
                terms: vec![Symbol(2)],
            }),
            0.5,
        );
    }

    #[test]
    fn build_none_and_empty() {
        assert!(ValueSummary::build(&[], ValueType::Numeric).is_none());
        assert!(ValueSummary::build(&[], ValueType::None).is_none());
        let v = Value::String("x".into());
        assert!(ValueSummary::build(&[&v], ValueType::Numeric).is_none());
    }

    #[test]
    fn mismatched_predicate_selectivity_is_zero() {
        let vals = numeric_values(&[1, 2, 3]);
        let refs: Vec<&Value> = vals.iter().collect();
        let s = ValueSummary::build(&refs, ValueType::Numeric).unwrap();
        close(
            s.selectivity(&ValuePredicate::Contains { needle: "1".into() }),
            0.0,
        );
    }

    #[test]
    fn fuse_same_type() {
        let a_vals = numeric_values(&[1, 2]);
        let b_vals = numeric_values(&[100, 200]);
        let ar: Vec<&Value> = a_vals.iter().collect();
        let br: Vec<&Value> = b_vals.iter().collect();
        let a = ValueSummary::build(&ar, ValueType::Numeric).unwrap();
        let b = ValueSummary::build(&br, ValueType::Numeric).unwrap();
        let f = a.fuse(&b);
        close(
            f.selectivity(&ValuePredicate::Range { lo: 0, hi: 500 }),
            1.0,
        );
        close(f.selectivity(&ValuePredicate::Range { lo: 0, hi: 50 }), 0.5);
    }

    #[test]
    #[should_panic(expected = "different types")]
    fn fuse_mixed_types_panics() {
        let n = numeric_values(&[1]);
        let nr: Vec<&Value> = n.iter().collect();
        let s = [Value::String("a".into())];
        let sr: Vec<&Value> = s.iter().collect();
        let a = ValueSummary::build(&nr, ValueType::Numeric).unwrap();
        let b = ValueSummary::build(&sr, ValueType::String).unwrap();
        let _ = a.fuse(&b);
    }

    #[test]
    fn trivial_moments_have_zero_distance() {
        close(AtomicMoments::TRIVIAL.sq_distance(), 0.0);
    }

    #[test]
    fn moments_zero_distance_for_identical() {
        let vals = numeric_values(&[1, 5, 9]);
        let refs: Vec<&Value> = vals.iter().collect();
        let s = ValueSummary::build(&refs, ValueType::Numeric).unwrap();
        close(s.atomic_moments(&s).sq_distance(), 0.0);
    }

    #[test]
    fn moments_positive_for_divergent() {
        let a_vals = numeric_values(&[1, 2, 3]);
        let b_vals = numeric_values(&[1000, 2000]);
        let ar: Vec<&Value> = a_vals.iter().collect();
        let br: Vec<&Value> = b_vals.iter().collect();
        let a = ValueSummary::build(&ar, ValueType::Numeric).unwrap();
        let b = ValueSummary::build(&br, ValueType::Numeric).unwrap();
        assert!(a.atomic_moments(&b).sq_distance() > 0.0);
    }

    #[test]
    fn peek_matches_apply() {
        let vals = numeric_values(&(0..64).collect::<Vec<u64>>());
        let refs: Vec<&Value> = vals.iter().collect();
        let mut s = ValueSummary::build(&refs, ValueType::Numeric).unwrap();
        let peek = s.peek_compression().unwrap();
        let size_before = s.size_bytes();
        let applied = s.apply_compression().unwrap();
        assert_eq!(peek, applied);
        assert_eq!(size_before - applied.bytes_saved, s.size_bytes());
    }

    #[test]
    fn compression_terminates() {
        let vals = numeric_values(&[1, 2, 3, 4, 5]);
        let refs: Vec<&Value> = vals.iter().collect();
        let mut s = ValueSummary::build(&refs, ValueType::Numeric).unwrap();
        let mut steps = 0;
        while s.apply_compression().is_some() {
            steps += 1;
            assert!(steps < 100);
        }
        // A single bucket cannot be compressed further.
        assert!(s.peek_compression().is_none());
    }

    #[test]
    fn string_summary_compression_keeps_estimates_sane() {
        let vals: Vec<Value> = (0..30)
            .map(|i| Value::String(format!("author{i:02}")))
            .collect();
        let refs: Vec<&Value> = vals.iter().collect();
        let mut s = ValueSummary::build(&refs, ValueType::String).unwrap();
        for _ in 0..20 {
            if s.apply_compression().is_none() {
                break;
            }
        }
        let sel = s.selectivity(&ValuePredicate::Contains {
            needle: "author".into(),
        });
        assert!((0.0..=1.0).contains(&sel));
        assert!(sel > 0.5, "author prefix is everywhere: {sel}");
    }
}
