//! Value predicates over typed XML content (paper Section 2, "Query
//! Model").
//!
//! The three predicate classes match the three value types:
//! numeric *range* predicates `[l, h]`, *substring* predicates
//! `contains(qs)` (SQL `LIKE '%qs%'` semantics), and IR-style *keyword*
//! predicates `ftcontains(t1, …, tk)` requiring every listed term.

use std::fmt;
use xcluster_xml::{TermId, Value};

/// A value predicate attached to a twig-query node.
///
/// `Hash` lets estimation layers memoize probe results keyed by
/// `(cluster, predicate)` (see `xcluster_core::plan::ReachCache`).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum ValuePredicate {
    /// `NUMERIC` range `[lo, hi]`, both ends inclusive.
    Range { lo: u64, hi: u64 },
    /// `STRING` substring containment: `contains(needle)`.
    Contains { needle: String },
    /// `TEXT` conjunctive keyword match: `ftcontains(terms…)`.
    FtContains { terms: Vec<TermId> },
    /// `TEXT` set-theoretic document similarity (paper Section 2: "other
    /// Boolean-model predicates, such as set-theoretic notions of
    /// document-similarity"): matches texts containing at least
    /// `min_overlap` of the probe terms.
    SimilarTo {
        /// The probe document's terms (deduplicated).
        terms: Vec<TermId>,
        /// Minimum number of probe terms the text must contain.
        min_overlap: usize,
    },
}

impl ValuePredicate {
    /// Exact Boolean evaluation against a concrete element value.
    ///
    /// This is the ground truth used by the exact twig evaluator; the
    /// approximate counterpart is `ValueSummary::selectivity`. A predicate
    /// never matches a value of the wrong type.
    pub fn matches(&self, value: &Value) -> bool {
        match (self, value) {
            (ValuePredicate::Range { lo, hi }, Value::Numeric(n)) => lo <= n && n <= hi,
            (ValuePredicate::Contains { needle }, Value::String(s)) => s.contains(needle.as_str()),
            (ValuePredicate::FtContains { terms }, Value::Text(tv)) => {
                terms.iter().all(|t| tv.contains(*t))
            }
            (ValuePredicate::SimilarTo { terms, min_overlap }, Value::Text(tv)) => {
                terms.iter().filter(|t| tv.contains(**t)).count() >= *min_overlap
            }
            _ => false,
        }
    }
}

impl fmt::Display for ValuePredicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            // Printed in the twig-parser's own syntax so that
            // `TwigQuery: Display` output can be re-parsed.
            ValuePredicate::Range { lo, hi } => write!(f, "in {lo}..{hi}"),
            ValuePredicate::Contains { needle } => write!(f, "contains({needle})"),
            ValuePredicate::FtContains { terms } => {
                write!(f, "ftcontains(")?;
                for (i, t) in terms.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "t{}", t.0)?;
                }
                write!(f, ")")
            }
            ValuePredicate::SimilarTo { terms, min_overlap } => {
                write!(f, "similar({min_overlap};")?;
                for (i, t) in terms.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "t{}", t.0)?;
                }
                write!(f, ")")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xcluster_xml::{Symbol, TermVector};

    #[test]
    fn range_matches_inclusively() {
        let p = ValuePredicate::Range { lo: 10, hi: 20 };
        assert!(p.matches(&Value::Numeric(10)));
        assert!(p.matches(&Value::Numeric(20)));
        assert!(!p.matches(&Value::Numeric(9)));
        assert!(!p.matches(&Value::Numeric(21)));
    }

    #[test]
    fn contains_is_substring() {
        let p = ValuePredicate::Contains {
            needle: "ACM".into(),
        };
        assert!(p.matches(&Value::String("the ACM press".into())));
        assert!(!p.matches(&Value::String("acm lowercase".into())));
    }

    #[test]
    fn ftcontains_requires_all_terms() {
        let tv: TermVector = [Symbol(1), Symbol(2), Symbol(3)].into_iter().collect();
        let both = ValuePredicate::FtContains {
            terms: vec![Symbol(1), Symbol(3)],
        };
        let missing = ValuePredicate::FtContains {
            terms: vec![Symbol(1), Symbol(9)],
        };
        assert!(both.matches(&Value::Text(tv.clone())));
        assert!(!missing.matches(&Value::Text(tv)));
    }

    #[test]
    fn type_mismatch_never_matches() {
        let p = ValuePredicate::Range { lo: 0, hi: 100 };
        assert!(!p.matches(&Value::String("50".into())));
        assert!(!p.matches(&Value::None));
        let q = ValuePredicate::Contains { needle: "x".into() };
        assert!(!q.matches(&Value::Numeric(1)));
    }

    #[test]
    fn empty_ftcontains_matches_any_text() {
        let p = ValuePredicate::FtContains { terms: vec![] };
        assert!(p.matches(&Value::Text(TermVector::default())));
        assert!(!p.matches(&Value::Numeric(3)));
    }

    #[test]
    fn similar_to_counts_overlap() {
        let tv: TermVector = [Symbol(1), Symbol(2), Symbol(3)].into_iter().collect();
        let yes = ValuePredicate::SimilarTo {
            terms: vec![Symbol(1), Symbol(3), Symbol(9)],
            min_overlap: 2,
        };
        let no = ValuePredicate::SimilarTo {
            terms: vec![Symbol(1), Symbol(9), Symbol(10)],
            min_overlap: 2,
        };
        assert!(yes.matches(&Value::Text(tv.clone())));
        assert!(!no.matches(&Value::Text(tv.clone())));
        // Zero overlap requirement matches any text.
        let trivial = ValuePredicate::SimilarTo {
            terms: vec![Symbol(99)],
            min_overlap: 0,
        };
        assert!(trivial.matches(&Value::Text(tv)));
        assert!(!trivial.matches(&Value::Numeric(1)));
    }

    #[test]
    fn display_forms() {
        assert_eq!(
            ValuePredicate::Range { lo: 1, hi: 9 }.to_string(),
            "in 1..9"
        );
        assert_eq!(
            ValuePredicate::Contains {
                needle: "ab".into()
            }
            .to_string(),
            "contains(ab)"
        );
    }
}
