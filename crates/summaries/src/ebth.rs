//! `TEXT` value summaries: term-vector centroids compressed into
//! **end-biased term histograms** (paper Section 3, `TEXT` value
//! summaries; Section 4.2 `tv_cmprs`).
//!
//! The base summary of a `TEXT` cluster is the *centroid* of the Boolean
//! term vectors of its extent: `w[t] = Σᵢ wᵢ[t] / k`, the fractional
//! frequency of term `t` among the `k` texts. Since the dictionary can be
//! large, the centroid is compressed with an end-biased term histogram:
//!
//! * the **top** frequencies are kept exactly as `(term, freq)` pairs;
//! * all remaining non-zero terms fall into a single **uniform bucket**
//!   holding their average frequency plus a *lossless* run-length encoded
//!   0/1 bitmap of the binary centroid (which terms occur at all).
//!
//! Estimation of `w[t]`: exact if `t` is indexed; otherwise the bucket
//! average if the bitmap has a 1 for `t`, and exactly 0 otherwise — this
//! is what distinguishes the structure from conventional range-bucket
//! histograms, which lose track of zero entries (non-existent terms) and
//! therefore fail on point (term-match) queries. A conventional-histogram
//! compressor is provided for the ablation experiment
//! ([`Ebth::to_range_bucket_baseline`]).

use crate::footprint::{
    EBTH_RUN_BYTES, EBTH_TOP_TERM_BYTES, EBTH_UNIFORM_BUCKET_BYTES, SUMMARY_HEADER_BYTES,
};
use xcluster_xml::{Symbol, TermId, TermVector};

/// A run-length encoded set of `u32` term ids (the 0/1 uniform bucket).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RleBitmap {
    /// Sorted, non-overlapping, non-adjacent `[start, end)` runs of ones.
    runs: Vec<(u32, u32)>,
}

impl RleBitmap {
    /// Builds a bitmap from a sorted, deduplicated id slice.
    pub fn from_sorted_ids(ids: &[u32]) -> Self {
        let mut runs: Vec<(u32, u32)> = Vec::new();
        for &id in ids {
            match runs.last_mut() {
                Some((_, end)) if *end == id => *end += 1,
                _ => runs.push((id, id + 1)),
            }
        }
        RleBitmap { runs }
    }

    /// Membership test.
    pub fn contains(&self, id: u32) -> bool {
        self.runs
            .binary_search_by(|&(s, e)| {
                if id < s {
                    std::cmp::Ordering::Greater
                } else if id >= e {
                    std::cmp::Ordering::Less
                } else {
                    std::cmp::Ordering::Equal
                }
            })
            .is_ok()
    }

    /// Number of runs (each costs [`EBTH_RUN_BYTES`]).
    pub fn num_runs(&self) -> usize {
        self.runs.len()
    }

    /// Resident heap bytes of the run vector (allocated capacity).
    pub fn heap_bytes(&self) -> usize {
        self.runs.capacity() * std::mem::size_of::<(u32, u32)>()
    }

    /// Number of set bits.
    pub fn cardinality(&self) -> u64 {
        self.runs.iter().map(|&(s, e)| (e - s) as u64).sum()
    }

    /// Set union of two bitmaps.
    pub fn union(&self, other: &RleBitmap) -> RleBitmap {
        let mut all: Vec<(u32, u32)> = self.runs.iter().chain(other.runs.iter()).copied().collect();
        all.sort_unstable();
        let mut runs: Vec<(u32, u32)> = Vec::with_capacity(all.len());
        for (s, e) in all {
            match runs.last_mut() {
                Some((_, pe)) if s <= *pe => *pe = (*pe).max(e),
                _ => runs.push((s, e)),
            }
        }
        RleBitmap { runs }
    }

    /// Iterates the set ids (testing helper; linear in cardinality).
    pub fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        self.runs.iter().flat_map(|&(s, e)| s..e)
    }

    /// Sets a single id, extending, merging, or creating runs as needed.
    /// No-op if the id is already set.
    pub fn insert(&mut self, id: u32) {
        let i = self.runs.partition_point(|&(_, e)| e < id);
        if i < self.runs.len() {
            let (s, e) = self.runs[i];
            if s <= id && id < e {
                return;
            }
            if e == id {
                // Extends run i on the right; may close a 1-wide gap.
                self.runs[i].1 = id + 1;
                if i + 1 < self.runs.len() && self.runs[i + 1].0 == id + 1 {
                    self.runs[i].1 = self.runs[i + 1].1;
                    self.runs.remove(i + 1);
                }
                return;
            }
            if s == id + 1 {
                self.runs[i].0 = id;
                return;
            }
        }
        self.runs.insert(i, (id, id + 1));
    }

    /// Clears a single id, shrinking or splitting its run. No-op if the
    /// id is not set. Exact inverse of [`RleBitmap::insert`].
    pub fn remove(&mut self, id: u32) {
        let i = self.runs.partition_point(|&(_, e)| e <= id);
        if i >= self.runs.len() || id < self.runs[i].0 {
            return;
        }
        let (s, e) = self.runs[i];
        if s == id && e == id + 1 {
            self.runs.remove(i);
        } else if s == id {
            self.runs[i].0 = id + 1;
        } else if e == id + 1 {
            self.runs[i].1 = id;
        } else {
            self.runs[i].1 = id;
            self.runs.insert(i + 1, (id + 1, e));
        }
    }
}

/// [`Ebth::to_parts`] output: `(top pairs, support runs, uniform_sum,
/// uniform_count, elements)`.
pub type EbthParts = (Vec<(u32, f64)>, Vec<(u32, u32)>, f64, u64, f64);

/// An end-biased term histogram summarizing a term-vector centroid.
#[derive(Debug, Clone, PartialEq)]
pub struct Ebth {
    /// Exactly-indexed `(term, fractional frequency)` pairs, sorted by
    /// term id for lookup.
    top: Vec<(TermId, f64)>,
    /// 0/1 bitmap over the *whole* non-zero support of the centroid
    /// (indexed terms included; lookups hit `top` first).
    support: RleBitmap,
    /// Sum of the frequencies folded into the uniform bucket.
    uniform_sum: f64,
    /// Number of terms in the uniform bucket.
    uniform_count: u64,
    /// `k`: number of texts the centroid averages over.
    elements: f64,
}

impl Ebth {
    /// Builds the exact centroid of a collection of Boolean term vectors
    /// (every non-zero term indexed exactly; uniform bucket empty).
    pub fn from_vectors<'a, I>(vectors: I) -> Self
    where
        I: IntoIterator<Item = &'a TermVector>,
    {
        let mut counts: std::collections::HashMap<u32, f64> = std::collections::HashMap::new();
        let mut k = 0usize;
        for tv in vectors {
            k += 1;
            for t in tv.terms() {
                *counts.entry(t.0).or_insert(0.0) += 1.0;
            }
        }
        let kf = k as f64;
        let mut top: Vec<(TermId, f64)> = counts
            .into_iter()
            .map(|(t, c)| (Symbol(t), c / kf.max(1.0)))
            .collect();
        top.sort_unstable_by_key(|(t, _)| t.0);
        let ids: Vec<u32> = top.iter().map(|(t, _)| t.0).collect();
        Ebth {
            support: RleBitmap::from_sorted_ids(&ids),
            top,
            uniform_sum: 0.0,
            uniform_count: 0,
            elements: kf,
        }
    }

    /// Serialized parts: `(top pairs, support runs, uniform_sum,
    /// uniform_count, elements)`.
    pub fn to_parts(&self) -> EbthParts {
        (
            self.top.iter().map(|&(t, f)| (t.0, f)).collect(),
            self.support.runs.clone(),
            self.uniform_sum,
            self.uniform_count,
            self.elements,
        )
    }

    /// Reassembles a summary from [`Ebth::to_parts`] output.
    pub fn from_parts(
        top: Vec<(u32, f64)>,
        runs: Vec<(u32, u32)>,
        uniform_sum: f64,
        uniform_count: u64,
        elements: f64,
    ) -> Self {
        let mut top: Vec<(TermId, f64)> = top.into_iter().map(|(t, f)| (Symbol(t), f)).collect();
        top.sort_unstable_by_key(|(t, _)| t.0);
        Ebth {
            top,
            support: RleBitmap { runs },
            uniform_sum,
            uniform_count,
            elements,
        }
    }

    /// Number of texts summarized (`k = count(u)` for the cluster).
    pub fn elements(&self) -> f64 {
        self.elements
    }

    /// Number of exactly-indexed terms.
    pub fn num_indexed(&self) -> usize {
        self.top.len()
    }

    /// `(count, average frequency)` of the uniform bucket.
    pub fn uniform_bucket(&self) -> (u64, f64) {
        let avg = if self.uniform_count == 0 {
            0.0
        } else {
            self.uniform_sum / self.uniform_count as f64
        };
        (self.uniform_count, avg)
    }

    /// The exactly-indexed `(term, frequency)` pairs.
    pub fn indexed_terms(&self) -> &[(TermId, f64)] {
        &self.top
    }

    /// Storage footprint in bytes.
    pub fn size_bytes(&self) -> usize {
        SUMMARY_HEADER_BYTES
            + self.top.len() * EBTH_TOP_TERM_BYTES
            + self.support.num_runs() * EBTH_RUN_BYTES
            + EBTH_UNIFORM_BUCKET_BYTES
    }

    /// Resident heap bytes of the in-memory representation: the indexed
    /// term vector plus the RLE support bitmap.
    pub fn heap_bytes(&self) -> usize {
        self.top.capacity() * std::mem::size_of::<(TermId, f64)>() + self.support.heap_bytes()
    }

    /// Estimated fractional frequency `w[t]` of a single term: exact for
    /// indexed terms, the bucket average for bitmap hits, 0 otherwise.
    pub fn term_frequency(&self, t: TermId) -> f64 {
        if let Ok(i) = self.top.binary_search_by_key(&t.0, |(s, _)| s.0) {
            return self.top[i].1;
        }
        if self.support.contains(t.0) {
            self.uniform_bucket().1
        } else {
            0.0
        }
    }

    /// Selectivity of `ftcontains(terms…)`: fraction of texts containing
    /// every listed term, under cross-term independence.
    pub fn selectivity(&self, terms: &[TermId]) -> f64 {
        terms.iter().map(|&t| self.term_frequency(t)).product()
    }

    /// Selectivity of the set-similarity predicate: the probability that
    /// a text contains at least `min_overlap` of the probe terms, under
    /// cross-term independence (a Poisson-binomial tail computed by the
    /// standard `O(k²)` dynamic program over the per-term frequencies).
    pub fn similarity_selectivity(&self, terms: &[TermId], min_overlap: usize) -> f64 {
        if min_overlap == 0 {
            return 1.0;
        }
        if min_overlap > terms.len() {
            return 0.0;
        }
        // dp[j] = P(exactly j of the terms seen so far are present).
        let mut dp = vec![0.0f64; terms.len() + 1];
        dp[0] = 1.0;
        for (i, &t) in terms.iter().enumerate() {
            let p = self.term_frequency(t).clamp(0.0, 1.0);
            for j in (0..=i).rev() {
                dp[j + 1] += dp[j] * p;
                dp[j] *= 1.0 - p;
            }
        }
        dp[min_overlap..].iter().sum::<f64>().clamp(0.0, 1.0)
    }

    /// One `tv_cmprs` step: moves the lowest-frequency indexed term into
    /// the uniform bucket, adjusting the bucket average. Returns the
    /// squared selectivity error on that term's atomic predicate, or
    /// `None` if no indexed terms remain.
    pub fn demote_one(&mut self) -> Option<f64> {
        let (pos, _) = self
            .top
            .iter()
            .enumerate()
            .min_by(|a, b| a.1 .1.total_cmp(&b.1 .1))?;
        let (_, freq) = self.top.remove(pos);
        self.uniform_sum += freq;
        self.uniform_count += 1;
        let err = freq - self.uniform_bucket().1;
        Some(err * err)
    }

    /// Applies `tv_cmprs(u, b)`: demotes the `b` lowest-frequency indexed
    /// terms, returning the accumulated squared error.
    pub fn demote(&mut self, b: usize) -> f64 {
        let mut total = 0.0;
        for _ in 0..b {
            match self.demote_one() {
                Some(e) => total += e,
                None => break,
            }
        }
        total
    }

    /// Demotes terms until the footprint is at most `budget` bytes (or no
    /// indexed terms remain). Returns the accumulated squared error.
    /// Equivalent to repeated [`Ebth::demote_one`] but sorts once instead
    /// of rescanning the top list per step.
    pub fn compress_to_bytes(&mut self, budget: usize) -> f64 {
        if self.size_bytes() <= budget {
            return 0.0;
        }
        let needed = (self.size_bytes() - budget).div_ceil(EBTH_TOP_TERM_BYTES);
        self.demote_cheapest(needed)
    }

    /// Demotes the `m` lowest-frequency indexed terms in one pass.
    /// Returns the accumulated squared error (same accounting as `m`
    /// successive [`Ebth::demote_one`] calls).
    pub fn demote_cheapest(&mut self, m: usize) -> f64 {
        let m = m.min(self.top.len());
        if m == 0 {
            return 0.0;
        }
        let mut idx: Vec<usize> = (0..self.top.len()).collect();
        idx.sort_by(|&a, &b| self.top[a].1.total_cmp(&self.top[b].1));
        let mut remove = vec![false; self.top.len()];
        let mut sq = 0.0;
        for &i in idx.iter().take(m) {
            let f = self.top[i].1;
            self.uniform_sum += f;
            self.uniform_count += 1;
            let avg = self.uniform_sum / self.uniform_count as f64;
            let e = f - avg;
            sq += e * e;
            remove[i] = true;
        }
        let kept: Vec<(TermId, f64)> = self
            .top
            .drain(..)
            .enumerate()
            .filter_map(|(i, t)| (!remove[i]).then_some(t))
            .collect();
        self.top = kept;
        sq
    }

    /// Fuses two summaries for a node merge (paper Section 4.1):
    /// the merged centroid is the element-count weighted combination
    /// `w = (|u|·wᵤ + |v|·wᵥ) / (|u|+|v|)`. Terms indexed in either input
    /// stay indexed (using each side's estimate for the other's
    /// unindexed terms); the uniform buckets combine; supports union.
    pub fn fuse(&self, other: &Ebth) -> Ebth {
        let ku = self.elements;
        let kv = other.elements;
        let kw = ku + kv;
        if kw == 0.0 {
            return Ebth::from_vectors(std::iter::empty());
        }
        let mut top: Vec<(TermId, f64)> = Vec::with_capacity(self.top.len() + other.top.len());
        let (mut i, mut j) = (0, 0);
        while i < self.top.len() || j < other.top.len() {
            let ta = self.top.get(i).map(|(t, _)| t.0);
            let tb = other.top.get(j).map(|(t, _)| t.0);
            let (t, fa, fb) = match (ta, tb) {
                (Some(a), Some(b)) if a == b => {
                    let r = (a, self.top[i].1, other.top[j].1);
                    i += 1;
                    j += 1;
                    r
                }
                (Some(a), Some(b)) if a < b => {
                    let r = (a, self.top[i].1, other.term_frequency(Symbol(a)));
                    i += 1;
                    r
                }
                (Some(a), None) => {
                    let r = (a, self.top[i].1, other.term_frequency(Symbol(a)));
                    i += 1;
                    r
                }
                (_, Some(b)) => {
                    let r = (b, self.term_frequency(Symbol(b)), other.top[j].1);
                    j += 1;
                    r
                }
                (None, None) => unreachable!(),
            };
            top.push((Symbol(t), (ku * fa + kv * fb) / kw));
        }
        // Uniform buckets: terms unindexed on both sides. Terms that were
        // uniform on one side but indexed on the other were just absorbed
        // into `top` (their uniform share is approximated by the bucket
        // average, which is what `term_frequency` returned); the residual
        // bucket keeps the weighted leftover mass.
        let sum_w = (ku * self.uniform_sum + kv * other.uniform_sum) / kw;
        let support = self.support.union(&other.support);
        let indexed: std::collections::HashSet<u32> = top.iter().map(|(t, _)| t.0).collect();
        let mut uniform_count = 0u64;
        let mut absorbed = 0.0;
        for id in support.iter() {
            if !indexed.contains(&id) {
                uniform_count += 1;
            }
        }
        // Mass absorbed into top from each side's uniform bucket.
        for (t, _) in &top {
            let mut m = 0.0;
            if self.top.binary_search_by_key(&t.0, |(s, _)| s.0).is_err()
                && self.support.contains(t.0)
            {
                m += ku * self.uniform_bucket().1;
            }
            if other.top.binary_search_by_key(&t.0, |(s, _)| s.0).is_err()
                && other.support.contains(t.0)
            {
                m += kv * other.uniform_bucket().1;
            }
            absorbed += m / kw;
        }
        Ebth {
            top,
            support,
            uniform_sum: (sum_w - absorbed).max(0.0),
            uniform_count,
            elements: kw,
        }
    }

    /// Incremental maintenance: folds one more text into the centroid.
    ///
    /// Every stored frequency is a single division of an integral
    /// occurrence count by `k`, so the counts are reconstructed exactly
    /// (`c = round(f·k)`), adjusted, and re-divided by the new `k`.
    /// Terms the summary has never seen become indexed with count 1;
    /// terms in the uniform bucket adjust its aggregate mass (their
    /// individual counts are no longer known — the documented
    /// approximation of the end-biased layout).
    pub fn observe(&mut self, tv: &TermVector) {
        self.adjust(tv, 1.0);
    }

    /// Inverse of [`Ebth::observe`]: bitwise-exact for a summary whose
    /// terms are all indexed (no demotions), which is the case for
    /// uncompressed reference centroids.
    pub fn retract(&mut self, tv: &TermVector) {
        self.adjust(tv, -1.0);
    }

    fn adjust(&mut self, tv: &TermVector, sign: f64) {
        let k_old = self.elements;
        let k_new = k_old + sign;
        if k_new <= 0.0 {
            self.top.clear();
            self.support = RleBitmap::default();
            self.uniform_sum = 0.0;
            self.uniform_count = 0;
            self.elements = 0.0;
            return;
        }
        let mut counts: Vec<(TermId, f64)> = self
            .top
            .iter()
            .map(|&(t, f)| (t, (f * k_old).round()))
            .collect();
        let mut uniform_total = (self.uniform_sum * k_old).round();
        for &t in tv.terms() {
            match counts.binary_search_by_key(&t.0, |(s, _)| s.0) {
                Ok(i) => counts[i].1 += sign,
                Err(i) => {
                    if self.support.contains(t.0) {
                        uniform_total = (uniform_total + sign).max(0.0);
                    } else if sign > 0.0 {
                        counts.insert(i, (t, 1.0));
                        self.support.insert(t.0);
                    }
                    // Retracting a term the summary never saw: no-op.
                }
            }
        }
        counts.retain(|&(t, c)| {
            if c <= 0.0 {
                self.support.remove(t.0);
                false
            } else {
                true
            }
        });
        self.top = counts.into_iter().map(|(t, c)| (t, c / k_new)).collect();
        self.uniform_sum = uniform_total / k_new;
        self.elements = k_new;
    }

    /// Ablation baseline: compresses the centroid with a *conventional*
    /// equal-width bucket histogram over term-id ranges, losing the 0/1
    /// support information. Every term in a covered range (occurring or
    /// not) estimates to the bucket's average frequency.
    pub fn to_range_bucket_baseline(&self, num_buckets: usize) -> RangeBucketTermSummary {
        let max_id = self
            .support
            .runs
            .last()
            .map(|&(_, e)| e)
            .unwrap_or(0)
            .max(1);
        let nb = num_buckets.max(1);
        let width = max_id.div_ceil(nb as u32).max(1);
        let mut sums = vec![0.0f64; nb];
        for (t, f) in &self.top {
            sums[(t.0 / width) as usize] += f;
        }
        for id in self.support.iter() {
            if self.top.binary_search_by_key(&id, |(s, _)| s.0).is_err() {
                sums[(id / width) as usize] += self.uniform_bucket().1;
            }
        }
        RangeBucketTermSummary {
            width,
            // Conventional histograms average over the whole id range of
            // the bucket — zero entries included — which is exactly the
            // failure mode the paper calls out.
            avgs: sums.iter().map(|s| s / width as f64).collect(),
        }
    }
}

/// The conventional-histogram ablation baseline for term frequencies.
#[derive(Debug, Clone)]
pub struct RangeBucketTermSummary {
    width: u32,
    avgs: Vec<f64>,
}

impl RangeBucketTermSummary {
    /// Estimated `w[t]` — bucket average regardless of term existence.
    pub fn term_frequency(&self, t: TermId) -> f64 {
        let b = (t.0 / self.width) as usize;
        self.avgs.get(b).copied().unwrap_or(0.0)
    }

    /// Conjunctive keyword selectivity under independence.
    pub fn selectivity(&self, terms: &[TermId]) -> f64 {
        terms.iter().map(|&t| self.term_frequency(t)).product()
    }
}

/// Atomic-predicate moments between two EBTHs (paper Sec. 4.1: atomic
/// `TEXT` predicates are individual terms). Indexed terms of either side
/// are enumerated exactly; the uniform buckets contribute in aggregate
/// (each unindexed supported term adds its bucket-average selectivity).
pub fn atomic_moments(a: &Ebth, b: &Ebth) -> (f64, f64, f64) {
    let (mut aa, mut ab, mut bb) = (0.0, 0.0, 0.0);
    let mut seen: std::collections::HashSet<u32> = std::collections::HashSet::new();
    for (t, _) in a.top.iter().chain(b.top.iter()) {
        if seen.insert(t.0) {
            let sa = a.term_frequency(*t);
            let sb = b.term_frequency(*t);
            aa += sa * sa;
            ab += sa * sb;
            bb += sb * sb;
        }
    }
    // Uniform-only terms: support ids outside both top sets. Avoid
    // enumerating them one by one when the supports coincide heavily —
    // their per-term selectivity is piecewise constant (avg_a and/or
    // avg_b), so aggregate by intersection cardinalities.
    let avg_a = a.uniform_bucket().1;
    let avg_b = b.uniform_bucket().1;
    let mut n_a_only = 0u64;
    let mut n_b_only = 0u64;
    let mut n_both = 0u64;
    for id in a.support.union(&b.support).iter() {
        if seen.contains(&id) {
            continue;
        }
        match (a.support.contains(id), b.support.contains(id)) {
            (true, true) => n_both += 1,
            (true, false) => n_a_only += 1,
            (false, true) => n_b_only += 1,
            (false, false) => {}
        }
    }
    aa += (n_both + n_a_only) as f64 * avg_a * avg_a;
    bb += (n_both + n_b_only) as f64 * avg_b * avg_b;
    ab += n_both as f64 * avg_a * avg_b;
    (aa, ab, bb)
}

#[cfg(test)]
mod tests {
    use super::*;
    use xcluster_xml::Symbol;

    fn tv(ids: &[u32]) -> TermVector {
        ids.iter().map(|&i| Symbol(i)).collect()
    }

    fn close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-9, "{a} vs {b}");
    }

    #[test]
    fn rle_round_trip() {
        let ids = [1u32, 2, 3, 7, 9, 10];
        let bm = RleBitmap::from_sorted_ids(&ids);
        assert_eq!(bm.num_runs(), 3);
        assert_eq!(bm.cardinality(), 6);
        for id in ids {
            assert!(bm.contains(id));
        }
        for id in [0u32, 4, 8, 11] {
            assert!(!bm.contains(id));
        }
        let collected: Vec<u32> = bm.iter().collect();
        assert_eq!(collected, ids);
    }

    #[test]
    fn rle_union() {
        let a = RleBitmap::from_sorted_ids(&[1, 2, 5]);
        let b = RleBitmap::from_sorted_ids(&[3, 5, 6]);
        let u = a.union(&b);
        let ids: Vec<u32> = u.iter().collect();
        assert_eq!(ids, vec![1, 2, 3, 5, 6]);
        assert_eq!(u.num_runs(), 2); // [1,4) and [5,7)
    }

    #[test]
    fn centroid_frequencies_are_exact() {
        let texts = [tv(&[1, 2]), tv(&[1, 3]), tv(&[1, 2, 4]), tv(&[5])];
        let e = Ebth::from_vectors(texts.iter());
        close(e.term_frequency(Symbol(1)), 0.75);
        close(e.term_frequency(Symbol(2)), 0.5);
        close(e.term_frequency(Symbol(5)), 0.25);
        close(e.term_frequency(Symbol(99)), 0.0);
        close(e.elements(), 4.0);
    }

    #[test]
    fn conjunctive_selectivity_multiplies() {
        let texts = [tv(&[1, 2]), tv(&[1, 2]), tv(&[1]), tv(&[3])];
        let e = Ebth::from_vectors(texts.iter());
        close(e.selectivity(&[Symbol(1), Symbol(2)]), 0.75 * 0.5);
        close(e.selectivity(&[]), 1.0);
        close(e.selectivity(&[Symbol(9)]), 0.0);
    }

    #[test]
    fn demote_moves_lowest_frequency_terms() {
        let texts = [tv(&[1, 2, 3]), tv(&[1, 2]), tv(&[1])];
        let mut e = Ebth::from_vectors(texts.iter());
        assert_eq!(e.num_indexed(), 3);
        e.demote_one().unwrap(); // term 3 (freq 1/3) demoted first
        assert_eq!(e.num_indexed(), 2);
        let (cnt, avg) = e.uniform_bucket();
        assert_eq!(cnt, 1);
        close(avg, 1.0 / 3.0);
        // Term 3 still estimates via bitmap + avg, not zero.
        close(e.term_frequency(Symbol(3)), 1.0 / 3.0);
        // Term 1 stays exact.
        close(e.term_frequency(Symbol(1)), 1.0);
    }

    #[test]
    fn nonexistent_terms_estimate_zero_after_demotion() {
        let texts = [tv(&[1, 5, 9])];
        let mut e = Ebth::from_vectors(texts.iter());
        e.demote(3);
        assert_eq!(e.num_indexed(), 0);
        // Supported terms → bucket average; unsupported → exact 0.
        close(e.term_frequency(Symbol(5)), 1.0);
        close(e.term_frequency(Symbol(4)), 0.0);
        close(e.term_frequency(Symbol(10)), 0.0);
    }

    #[test]
    fn compress_to_bytes_respects_budget() {
        let texts: Vec<TermVector> = (0..40).map(|i| tv(&[i, i + 1, i + 2])).collect();
        let mut e = Ebth::from_vectors(texts.iter());
        let before = e.size_bytes();
        let budget = before / 2;
        e.compress_to_bytes(budget);
        assert!(e.size_bytes() <= budget || e.num_indexed() == 0);
    }

    #[test]
    fn fuse_weights_by_element_count() {
        // u: 3 texts all containing term 1; v: 1 text containing term 2.
        let u = Ebth::from_vectors([tv(&[1]), tv(&[1]), tv(&[1])].iter());
        let v = Ebth::from_vectors([tv(&[2])].iter());
        let w = u.fuse(&v);
        close(w.elements(), 4.0);
        close(w.term_frequency(Symbol(1)), 0.75);
        close(w.term_frequency(Symbol(2)), 0.25);
    }

    #[test]
    fn fuse_exact_centroids_matches_recomputation() {
        let t1 = [tv(&[1, 2]), tv(&[2, 3])];
        let t2 = [tv(&[2]), tv(&[4]), tv(&[1, 4])];
        let u = Ebth::from_vectors(t1.iter());
        let v = Ebth::from_vectors(t2.iter());
        let w = u.fuse(&v);
        let direct = Ebth::from_vectors(t1.iter().chain(t2.iter()));
        for id in [1u32, 2, 3, 4] {
            close(
                w.term_frequency(Symbol(id)),
                direct.term_frequency(Symbol(id)),
            );
        }
    }

    #[test]
    fn fuse_with_demoted_terms_keeps_support() {
        let mut u = Ebth::from_vectors([tv(&[1, 2, 3])].iter());
        u.demote(2);
        let v = Ebth::from_vectors([tv(&[4])].iter());
        let w = u.fuse(&v);
        // All supported terms remain nonzero; others zero.
        for id in [1u32, 2, 3, 4] {
            assert!(w.term_frequency(Symbol(id)) > 0.0, "term {id}");
        }
        close(w.term_frequency(Symbol(7)), 0.0);
    }

    #[test]
    fn range_bucket_baseline_loses_zero_entries() {
        // Terms 0 and 2 occur; term 1 does not.
        let e = Ebth::from_vectors([tv(&[0, 2])].iter());
        let base = e.to_range_bucket_baseline(1);
        // EBTH knows term 1 is absent.
        close(e.term_frequency(Symbol(1)), 0.0);
        // The conventional histogram smears mass over the hole.
        assert!(base.term_frequency(Symbol(1)) > 0.0);
    }

    #[test]
    fn atomic_moments_identity() {
        let e = Ebth::from_vectors([tv(&[1, 2]), tv(&[2, 3])].iter());
        let (aa, ab, bb) = atomic_moments(&e, &e);
        close(aa, ab);
        close(ab, bb);
    }

    #[test]
    fn atomic_moments_disjoint_vocabularies() {
        let a = Ebth::from_vectors([tv(&[1, 2])].iter());
        let b = Ebth::from_vectors([tv(&[10, 11])].iter());
        let (aa, ab, bb) = atomic_moments(&a, &b);
        close(ab, 0.0);
        close(aa, 2.0); // two terms with freq 1
        close(bb, 2.0);
    }

    #[test]
    fn atomic_moments_cover_uniform_bucket() {
        let mut a = Ebth::from_vectors([tv(&[1, 2, 3, 4])].iter());
        a.demote(4);
        let (aa, _, _) = atomic_moments(&a, &a);
        // Four uniform terms at freq 1 each → aa = 4.
        close(aa, 4.0);
    }

    #[test]
    fn empty_collection() {
        let mut e = Ebth::from_vectors(std::iter::empty());
        close(e.elements(), 0.0);
        close(e.term_frequency(Symbol(0)), 0.0);
        assert!(e.demote_one().is_none());
    }

    #[test]
    fn rle_insert_remove_surgery() {
        let mut bm = RleBitmap::from_sorted_ids(&[1, 2, 5, 6]);
        bm.insert(4); // prepend to [5,7)
        bm.insert(3); // closes the gap → one run [1,7)
        assert_eq!(bm.num_runs(), 1);
        assert_eq!(bm.iter().collect::<Vec<u32>>(), vec![1, 2, 3, 4, 5, 6]);
        bm.insert(3); // idempotent
        assert_eq!(bm.cardinality(), 6);
        bm.remove(4); // split
        assert_eq!(bm.num_runs(), 2);
        bm.remove(1); // shrink left edge
        bm.remove(6); // shrink right edge
        assert_eq!(bm.iter().collect::<Vec<u32>>(), vec![2, 3, 5]);
        bm.remove(9); // absent id: no-op
        assert_eq!(bm.cardinality(), 3);
        bm.remove(2);
        bm.remove(3);
        bm.remove(5);
        assert_eq!(bm.num_runs(), 0);
        bm.insert(7);
        assert!(bm.contains(7));
    }

    #[test]
    fn observe_matches_rebuild_for_exact_centroids() {
        let t1 = [tv(&[1, 2]), tv(&[2, 3])];
        let mut e = Ebth::from_vectors(t1.iter());
        let extra = tv(&[2, 9]);
        e.observe(&extra);
        let direct = Ebth::from_vectors(t1.iter().chain([extra.clone()].iter()));
        close(e.elements(), 3.0);
        for id in [1u32, 2, 3, 9, 50] {
            close(
                e.term_frequency(Symbol(id)),
                direct.term_frequency(Symbol(id)),
            );
        }
    }

    #[test]
    fn observe_then_retract_is_bitwise_identity_when_uncompressed() {
        let before = Ebth::from_vectors([tv(&[1, 4]), tv(&[1, 2]), tv(&[7])].iter());
        let mut e = before.clone();
        for probe in [tv(&[1, 2, 99]), tv(&[]), tv(&[4, 7])] {
            e.observe(&probe);
            e.retract(&probe);
        }
        assert_eq!(e, before);
    }

    #[test]
    fn observe_adjusts_uniform_bucket_in_aggregate() {
        let mut e = Ebth::from_vectors([tv(&[1, 2, 3]), tv(&[1])].iter());
        e.demote(2); // terms 2 and 3 move into the uniform bucket
        let (cnt_before, _) = e.uniform_bucket();
        e.observe(&tv(&[2]));
        // Term count in the bucket is unchanged; its mass grew.
        let (cnt_after, avg) = e.uniform_bucket();
        assert_eq!(cnt_before, cnt_after);
        close(avg, (1.0 + 1.0 + 1.0) / 2.0 / 3.0);
        close(e.elements(), 3.0);
        // Indexed term 1 rescaled exactly: 2 of 3 texts.
        close(e.term_frequency(Symbol(1)), 2.0 / 3.0);
    }

    #[test]
    fn retract_to_empty_clears_summary() {
        let one = tv(&[5, 6]);
        let mut e = Ebth::from_vectors([one.clone()].iter());
        e.retract(&one);
        assert_eq!(e, Ebth::from_vectors(std::iter::empty()));
    }

    #[test]
    fn size_accounting() {
        let e = Ebth::from_vectors([tv(&[1, 2, 3])].iter());
        let full = e.size_bytes();
        let mut c = e.clone();
        c.demote(2);
        assert!(c.size_bytes() < full);
    }
}
