//! Numeric value summaries: bucketized frequency histograms (paper
//! Section 3, `NUMERIC` value summaries; Section 4.1 bucket alignment and
//! merging; Section 4.2 `hist_cmprs`).
//!
//! A [`Histogram`] covers a contiguous slice of the integer domain with
//! non-overlapping buckets `[lo, hi]`, each holding a frequency count.
//! Range selectivities use the conventional continuous-uniformity
//! assumption within buckets. Merging two histograms first *aligns* their
//! buckets on the union of boundaries (splitting counts uniformly), then
//! sums frequencies — exactly the fusion step the paper describes for node
//! merges. `hist_cmprs` collapses adjacent bucket pairs, choosing the pair
//! whose collapse least perturbs the atomic prefix-range selectivities.

use crate::footprint::{HISTOGRAM_BUCKET_BYTES, SUMMARY_HEADER_BYTES};

/// One histogram bucket over the inclusive integer range `[lo, hi]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bucket {
    /// Lowest domain value covered.
    pub lo: u64,
    /// Highest domain value covered (inclusive).
    pub hi: u64,
    /// Number of values falling in `[lo, hi]` (fractional after splits).
    pub count: f64,
}

impl Bucket {
    fn width(&self) -> f64 {
        (self.hi - self.lo + 1) as f64
    }
}

/// Bucket-boundary strategy used when building a histogram from raw data.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HistogramKind {
    /// Equal-width buckets over the value range.
    EquiWidth,
    /// Approximately equal-frequency buckets (used by the reference
    /// synopsis; better for skewed distributions).
    EquiDepth,
}

/// A frequency histogram over an integer value domain.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    buckets: Vec<Bucket>,
    total: f64,
}

impl Histogram {
    /// Builds a histogram with at most `max_buckets` buckets from raw
    /// values. Returns an empty histogram if `values` is empty.
    pub fn build(values: &[u64], max_buckets: usize, kind: HistogramKind) -> Self {
        assert!(max_buckets > 0, "need at least one bucket");
        if values.is_empty() {
            return Histogram {
                buckets: Vec::new(),
                total: 0.0,
            };
        }
        let mut sorted = values.to_vec();
        sorted.sort_unstable();
        match kind {
            HistogramKind::EquiWidth => Self::build_equi_width(&sorted, max_buckets),
            HistogramKind::EquiDepth => Self::build_equi_depth(&sorted, max_buckets),
        }
    }

    fn build_equi_width(sorted: &[u64], max_buckets: usize) -> Self {
        let lo = sorted[0];
        let hi = *sorted.last().unwrap();
        let span = hi - lo + 1;
        let nb = (max_buckets as u64).min(span) as usize;
        let width = span.div_ceil(nb as u64);
        let mut buckets: Vec<Bucket> = (0..nb)
            .map(|i| {
                let blo = lo + i as u64 * width;
                Bucket {
                    lo: blo,
                    hi: (blo + width - 1).min(hi),
                    count: 0.0,
                }
            })
            .filter(|b| b.lo <= hi)
            .collect();
        for &v in sorted {
            let idx = ((v - lo) / width) as usize;
            buckets[idx].count += 1.0;
        }
        Histogram {
            total: sorted.len() as f64,
            buckets,
        }
    }

    fn build_equi_depth(sorted: &[u64], max_buckets: usize) -> Self {
        let n = sorted.len();
        let per = n.div_ceil(max_buckets).max(1);
        let mut buckets = Vec::new();
        let mut i = 0;
        while i < n {
            let lo = sorted[i];
            let mut j = (i + per).min(n) - 1;
            // Extend so a single domain value never straddles buckets.
            while j + 1 < n && sorted[j + 1] == sorted[j] {
                j += 1;
            }
            buckets.push(Bucket {
                lo,
                hi: sorted[j],
                count: (j - i + 1) as f64,
            });
            i = j + 1;
        }
        // Stitch boundaries so buckets tile the covered range contiguously.
        for k in 1..buckets.len() {
            debug_assert!(buckets[k].lo > buckets[k - 1].hi);
        }
        Histogram {
            total: n as f64,
            buckets,
        }
    }

    /// Reassembles a histogram from serialized parts. Buckets must be
    /// sorted and non-overlapping (checked in debug builds).
    pub fn from_parts(buckets: Vec<Bucket>, total: f64) -> Self {
        debug_assert!(buckets.windows(2).all(|w| w[0].hi < w[1].lo));
        Histogram { buckets, total }
    }

    /// Number of buckets.
    pub fn num_buckets(&self) -> usize {
        self.buckets.len()
    }

    /// Total frequency (number of summarized values).
    pub fn total(&self) -> f64 {
        self.total
    }

    /// The buckets, in increasing domain order.
    pub fn buckets(&self) -> &[Bucket] {
        &self.buckets
    }

    /// Storage footprint in bytes.
    pub fn size_bytes(&self) -> usize {
        SUMMARY_HEADER_BYTES + self.buckets.len() * HISTOGRAM_BUCKET_BYTES
    }

    /// Resident heap bytes of the in-memory representation (allocated
    /// capacity, not just live length) — the actual Rust layout, as
    /// opposed to the on-disk model of [`Histogram::size_bytes`].
    pub fn heap_bytes(&self) -> usize {
        self.buckets.capacity() * std::mem::size_of::<Bucket>()
    }

    /// Estimated number of values in the inclusive range `[lo, hi]`
    /// (continuous uniformity within buckets).
    pub fn estimate_range(&self, lo: u64, hi: u64) -> f64 {
        if lo > hi {
            return 0.0;
        }
        let mut est = 0.0;
        for b in &self.buckets {
            if b.hi < lo || b.lo > hi {
                continue;
            }
            let olo = lo.max(b.lo);
            let ohi = hi.min(b.hi);
            let overlap = (ohi - olo + 1) as f64;
            est += b.count * overlap / b.width();
        }
        est
    }

    /// Selectivity of `[lo, hi]`: estimated fraction of values in range.
    pub fn selectivity(&self, lo: u64, hi: u64) -> f64 {
        if self.total == 0.0 {
            return 0.0;
        }
        self.estimate_range(lo, hi) / self.total
    }

    /// Selectivity of the atomic prefix range `[0, hi]` (paper Sec. 4.1:
    /// atomic predicates for `NUMERIC` histograms are prefix ranges, which
    /// avoids introducing zero-count "holes" in merged histograms).
    pub fn prefix_selectivity(&self, hi: u64) -> f64 {
        self.selectivity(0, hi)
    }

    /// Upper boundaries of all buckets — the atomic-predicate points.
    pub fn boundaries(&self) -> impl Iterator<Item = u64> + '_ {
        self.buckets.iter().map(|b| b.hi)
    }

    /// Paper Section 4.1: fuses two histograms for a node merge. Buckets
    /// are first aligned on the union of both boundary sets (splitting
    /// counts under the uniformity assumption), then frequency counts are
    /// summed across aligned buckets.
    pub fn fuse(&self, other: &Histogram) -> Histogram {
        if self.buckets.is_empty() {
            return other.clone();
        }
        if other.buckets.is_empty() {
            return self.clone();
        }
        // Union of all boundary points defines the aligned bucket grid.
        let mut cuts: Vec<u64> = Vec::new();
        for b in self.buckets.iter().chain(other.buckets.iter()) {
            cuts.push(b.lo);
            cuts.push(b.hi + 1); // exclusive end
        }
        cuts.sort_unstable();
        cuts.dedup();
        let mut buckets = Vec::with_capacity(cuts.len());
        for w in cuts.windows(2) {
            let (lo, hi) = (w[0], w[1] - 1);
            let count = self.estimate_range(lo, hi) + other.estimate_range(lo, hi);
            if count > 0.0 {
                buckets.push(Bucket { lo, hi, count });
            }
        }
        // Coalesce zero-gap neighbours that came from identical grids to
        // keep fused summaries from growing without bound in long merge
        // chains: adjacent buckets whose merged density matches within the
        // uniformity assumption are indistinguishable to any query.
        Histogram {
            total: self.total + other.total,
            buckets,
        }
    }

    /// Merges adjacent buckets `i` and `i + 1` in place (`hist_cmprs` with
    /// `b = 1`).
    ///
    /// # Panics
    /// Panics if `i + 1` is out of bounds.
    pub fn merge_adjacent(&mut self, i: usize) {
        let b2 = self.buckets.remove(i + 1);
        let b1 = &mut self.buckets[i];
        b1.hi = b2.hi;
        b1.count += b2.count;
    }

    /// Squared-error cost of collapsing adjacent buckets `i, i+1`,
    /// measured over the atomic prefix-range predicates (the selectivity
    /// at every bucket boundary). Only the boundary between the two
    /// buckets changes, so the sum has a single term.
    pub fn collapse_cost(&self, i: usize) -> f64 {
        let b1 = self.buckets[i];
        let b2 = self.buckets[i + 1];
        if self.total == 0.0 {
            return 0.0;
        }
        // Prefix selectivity at b1.hi before vs after the collapse. Before:
        // everything through b1. After: combined bucket spans [b1.lo, b2.hi]
        // and the prefix cuts it at b1.hi.
        let before = b1.count;
        let merged = b1.count + b2.count;
        let width = (b2.hi - b1.lo + 1) as f64;
        let after = merged * ((b1.hi - b1.lo + 1) as f64) / width;
        let d = (before - after) / self.total;
        d * d
    }

    /// Index of the bucket that absorbs `v` under incremental
    /// maintenance: the covering bucket if one exists, otherwise the
    /// nearest bucket (out-of-range values clamp to the boundary
    /// buckets, gap values go to the closer neighbour). `None` only for
    /// an empty histogram.
    fn absorbing_bucket(&self, v: u64) -> Option<usize> {
        if self.buckets.is_empty() {
            return None;
        }
        let i = self.buckets.partition_point(|b| b.hi < v);
        if i == self.buckets.len() {
            return Some(i - 1);
        }
        if v >= self.buckets[i].lo || i == 0 {
            return Some(i);
        }
        let left = v - self.buckets[i - 1].hi;
        let right = self.buckets[i].lo - v;
        Some(if left <= right { i - 1 } else { i })
    }

    /// Incremental maintenance: folds one more value into the existing
    /// bucket layout. The absorbing bucket's boundaries are left
    /// untouched (values outside every bucket clamp to the nearest one),
    /// so repeated observes never grow the summary; an empty histogram
    /// gains a single point bucket.
    pub fn observe(&mut self, v: u64) {
        match self.absorbing_bucket(v) {
            Some(i) => self.buckets[i].count += 1.0,
            None => self.buckets.push(Bucket {
                lo: v,
                hi: v,
                count: 1.0,
            }),
        }
        self.total += 1.0;
    }

    /// Inverse of [`Histogram::observe`]: removes one value from the
    /// absorbing bucket, dropping the bucket once its count reaches
    /// zero. Exact (bitwise) inverse of an `observe` of the same value
    /// while counts stay integral.
    pub fn retract(&mut self, v: u64) {
        let Some(i) = self.absorbing_bucket(v) else {
            return;
        };
        self.buckets[i].count -= 1.0;
        if self.buckets[i].count <= 0.0 {
            self.buckets.remove(i);
        }
        self.total = (self.total - 1.0).max(0.0);
    }

    /// The best single compression step: returns
    /// `(bucket index, squared error)` for the cheapest adjacent collapse,
    /// or `None` if fewer than two buckets remain.
    pub fn best_collapse(&self) -> Option<(usize, f64)> {
        (0..self.buckets.len().saturating_sub(1))
            .map(|i| (i, self.collapse_cost(i)))
            .min_by(|a, b| a.1.total_cmp(&b.1))
    }
}

/// Atomic-predicate moments between two histograms: sums over the union of
/// both boundary sets of squared/cross prefix selectivities. Feeds the
/// Δ(S,S′) factorization in `xcluster-core`.
pub fn atomic_moments(a: &Histogram, b: &Histogram) -> (f64, f64, f64) {
    let mut cuts: Vec<u64> = a.boundaries().chain(b.boundaries()).collect();
    cuts.sort_unstable();
    cuts.dedup();
    let (mut aa, mut ab, mut bb) = (0.0, 0.0, 0.0);
    for h in cuts {
        let sa = a.prefix_selectivity(h);
        let sb = b.prefix_selectivity(h);
        aa += sa * sa;
        ab += sa * sb;
        bb += sb * sb;
    }
    (aa, ab, bb)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-9, "{a} vs {b}");
    }

    #[test]
    fn equi_width_counts_all_values() {
        let values = vec![1, 2, 3, 10, 11, 50];
        let h = Histogram::build(&values, 4, HistogramKind::EquiWidth);
        close(h.total(), 6.0);
        close(h.estimate_range(0, 100), 6.0);
        assert!(h.num_buckets() <= 4);
    }

    #[test]
    fn equi_depth_counts_all_values() {
        let values: Vec<u64> = (0..100).map(|i| i * i % 97).collect();
        let h = Histogram::build(&values, 8, HistogramKind::EquiDepth);
        close(h.total(), 100.0);
        close(h.estimate_range(0, 10_000), 100.0);
    }

    #[test]
    fn equi_depth_exact_on_bucket_boundaries() {
        // One value per bucket → exact estimates for point ranges.
        let values = vec![10, 20, 30, 40];
        let h = Histogram::build(&values, 4, HistogramKind::EquiDepth);
        assert_eq!(h.num_buckets(), 4);
        close(h.estimate_range(10, 10), 1.0);
        close(h.estimate_range(15, 25), 1.0);
        close(h.selectivity(0, 9), 0.0);
    }

    #[test]
    fn duplicate_heavy_values_stay_in_one_bucket() {
        let mut values = vec![5; 50];
        values.extend([9, 10, 11]);
        let h = Histogram::build(&values, 4, HistogramKind::EquiDepth);
        // The run of 5s must not straddle buckets.
        close(h.estimate_range(5, 5), 50.0);
    }

    #[test]
    fn empty_histogram() {
        let h = Histogram::build(&[], 4, HistogramKind::EquiDepth);
        assert_eq!(h.num_buckets(), 0);
        close(h.selectivity(0, 10), 0.0);
        close(h.total(), 0.0);
    }

    #[test]
    fn selectivity_is_a_fraction() {
        let values: Vec<u64> = (0..1000).collect();
        let h = Histogram::build(&values, 10, HistogramKind::EquiDepth);
        let s = h.selectivity(0, 499);
        assert!((s - 0.5).abs() < 0.01, "{s}");
        close(h.selectivity(0, 2000), 1.0);
    }

    #[test]
    fn fuse_preserves_total_and_range_sums() {
        let a = Histogram::build(&[1, 2, 3, 4, 5], 2, HistogramKind::EquiDepth);
        let b = Histogram::build(&[100, 200, 300], 2, HistogramKind::EquiDepth);
        let f = a.fuse(&b);
        close(f.total(), 8.0);
        close(f.estimate_range(0, 1000), 8.0);
        // Disjoint supports remain separated.
        close(f.estimate_range(0, 50), 5.0);
        close(f.estimate_range(50, 1000), 3.0);
    }

    #[test]
    fn fuse_aligns_overlapping_buckets() {
        let a = Histogram::build(&[0, 1, 2, 3], 1, HistogramKind::EquiWidth);
        let b = Histogram::build(&[2, 3, 4, 5], 1, HistogramKind::EquiWidth);
        let f = a.fuse(&b);
        close(f.total(), 8.0);
        // Range [2,3] got 2 from each side under uniformity.
        close(f.estimate_range(2, 3), 4.0);
    }

    #[test]
    fn fuse_with_empty_is_identity() {
        let a = Histogram::build(&[1, 2, 3], 2, HistogramKind::EquiDepth);
        let e = Histogram::build(&[], 2, HistogramKind::EquiDepth);
        assert_eq!(a.fuse(&e), a);
        assert_eq!(e.fuse(&a), a);
    }

    #[test]
    fn merge_adjacent_reduces_buckets_keeps_total() {
        let mut h = Histogram::build(&[1, 2, 3, 4, 5, 6], 3, HistogramKind::EquiDepth);
        let nb = h.num_buckets();
        let total = h.total();
        h.merge_adjacent(0);
        assert_eq!(h.num_buckets(), nb - 1);
        close(h.total(), total);
        close(h.estimate_range(0, 100), total);
    }

    #[test]
    fn collapse_cost_zero_for_uniform_neighbours() {
        // Two buckets with identical density: collapsing is free.
        let h = Histogram {
            buckets: vec![
                Bucket {
                    lo: 0,
                    hi: 9,
                    count: 10.0,
                },
                Bucket {
                    lo: 10,
                    hi: 19,
                    count: 10.0,
                },
            ],
            total: 20.0,
        };
        close(h.collapse_cost(0), 0.0);
    }

    #[test]
    fn collapse_cost_positive_for_skewed_neighbours() {
        let h = Histogram {
            buckets: vec![
                Bucket {
                    lo: 0,
                    hi: 9,
                    count: 100.0,
                },
                Bucket {
                    lo: 10,
                    hi: 19,
                    count: 1.0,
                },
            ],
            total: 101.0,
        };
        assert!(h.collapse_cost(0) > 0.0);
    }

    #[test]
    fn best_collapse_picks_minimum() {
        let h = Histogram {
            buckets: vec![
                Bucket {
                    lo: 0,
                    hi: 9,
                    count: 10.0,
                },
                Bucket {
                    lo: 10,
                    hi: 19,
                    count: 10.0,
                },
                Bucket {
                    lo: 20,
                    hi: 29,
                    count: 500.0,
                },
            ],
            total: 520.0,
        };
        let (i, cost) = h.best_collapse().unwrap();
        assert_eq!(i, 0);
        close(cost, 0.0);
    }

    #[test]
    fn best_collapse_none_for_single_bucket() {
        let h = Histogram::build(&[5, 5, 5], 1, HistogramKind::EquiDepth);
        assert!(h.best_collapse().is_none());
    }

    #[test]
    fn atomic_moments_identical_histograms() {
        let h = Histogram::build(&[1, 5, 9, 13], 4, HistogramKind::EquiDepth);
        let (aa, ab, bb) = atomic_moments(&h, &h);
        close(aa, ab);
        close(ab, bb);
        assert!(aa > 0.0);
    }

    #[test]
    fn atomic_moments_detect_divergence() {
        let a = Histogram::build(&[1, 2, 3], 2, HistogramKind::EquiDepth);
        let b = Histogram::build(&[100, 200, 300], 2, HistogramKind::EquiDepth);
        let (aa, ab, bb) = atomic_moments(&a, &b);
        // Squared distance Σ(sa-sb)^2 = aa - 2ab + bb must be positive.
        assert!(aa - 2.0 * ab + bb > 0.1);
    }

    #[test]
    fn size_grows_with_buckets() {
        let small = Histogram::build(&[1, 2], 1, HistogramKind::EquiDepth);
        let big = Histogram::build(&(0..100).collect::<Vec<_>>(), 20, HistogramKind::EquiDepth);
        assert!(big.size_bytes() > small.size_bytes());
    }

    #[test]
    fn inverted_range_is_empty() {
        let h = Histogram::build(&[1, 2, 3], 2, HistogramKind::EquiDepth);
        close(h.estimate_range(10, 5), 0.0);
    }

    #[test]
    fn observe_then_retract_is_bitwise_identity() {
        let base = Histogram::build(&[1, 5, 9, 13, 40, 41], 3, HistogramKind::EquiDepth);
        // In-bucket, gap, and out-of-range values all round-trip.
        for v in [5u64, 20, 0, 1000] {
            let mut h = base.clone();
            h.observe(v);
            close(h.total(), base.total() + 1.0);
            h.retract(v);
            assert_eq!(h, base, "value {v}");
        }
    }

    #[test]
    fn observe_on_empty_creates_and_retract_removes() {
        let mut h = Histogram::build(&[], 4, HistogramKind::EquiDepth);
        h.observe(7);
        assert_eq!(h.num_buckets(), 1);
        close(h.estimate_range(7, 7), 1.0);
        h.retract(7);
        assert_eq!(h.num_buckets(), 0);
        close(h.total(), 0.0);
    }

    #[test]
    fn observe_clamps_into_nearest_bucket() {
        let h0 = Histogram::build(&[10, 11, 30, 31], 2, HistogramKind::EquiDepth);
        let mut h = h0.clone();
        // 12 is nearer the [10,11] bucket than [30,31].
        h.observe(12);
        close(h.estimate_range(10, 11), 3.0);
        // 29 is nearer [30,31].
        h.observe(29);
        close(h.estimate_range(30, 31), 3.0);
        close(h.total(), 6.0);
    }
}
