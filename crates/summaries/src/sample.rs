//! Random-sample numeric summaries (paper Section 3 cites random
//! sampling [Lipton, Naughton, Schneider, Seshadri] as the third
//! conventional option for summarizing numeric frequency distributions).
//!
//! The summary is a fixed-capacity uniform reservoir over the value
//! collection plus the exact total count; a range selectivity is the
//! sample fraction falling inside the range. Compression shrinks the
//! reservoir; fusion re-samples the weighted union. Exercised by the
//! `ablation-numeric` experiment as a baseline against histograms and
//! wavelets.

use crate::footprint::SUMMARY_HEADER_BYTES;

/// Bytes per reservoir entry (u64 value).
pub const SAMPLE_ENTRY_BYTES: usize = 8;

/// A uniform-sample summary of a numeric value collection.
#[derive(Debug, Clone, PartialEq)]
pub struct SampleSummary {
    /// Sorted reservoir of sampled values.
    sample: Vec<u64>,
    /// Exact number of summarized values.
    total: f64,
    /// Deterministic PRNG state for reservoir decisions.
    state: u64,
}

fn next_u64(state: &mut u64) -> u64 {
    // SplitMix64 — deterministic, seedless summaries must not depend on
    // global RNG state.
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SampleSummary {
    /// Builds a reservoir of at most `capacity` values.
    pub fn build(values: &[u64], capacity: usize) -> Self {
        let capacity = capacity.max(1);
        let mut state = 0x5EED ^ (values.len() as u64).rotate_left(17);
        let mut sample: Vec<u64> = Vec::with_capacity(capacity.min(values.len()));
        for (i, &v) in values.iter().enumerate() {
            if sample.len() < capacity {
                sample.push(v);
            } else {
                // Vitter's algorithm R.
                let j = (next_u64(&mut state) % (i as u64 + 1)) as usize;
                if j < capacity {
                    sample[j] = v;
                }
            }
        }
        sample.sort_unstable();
        SampleSummary {
            sample,
            total: values.len() as f64,
            state,
        }
    }

    /// Serialized parts: `(sorted sample, total, prng state)`.
    pub fn to_parts(&self) -> (&[u64], f64, u64) {
        (&self.sample, self.total, self.state)
    }

    /// Reassembles a summary from [`SampleSummary::to_parts`] output.
    pub fn from_parts(mut sample: Vec<u64>, total: f64, state: u64) -> Self {
        sample.sort_unstable();
        SampleSummary {
            sample,
            total,
            state,
        }
    }

    /// Exact total count of summarized values.
    pub fn total(&self) -> f64 {
        self.total
    }

    /// Current reservoir size.
    pub fn len(&self) -> usize {
        self.sample.len()
    }

    /// Whether the reservoir is empty.
    pub fn is_empty(&self) -> bool {
        self.sample.is_empty()
    }

    /// Storage footprint in bytes.
    pub fn size_bytes(&self) -> usize {
        SUMMARY_HEADER_BYTES + self.sample.len() * SAMPLE_ENTRY_BYTES
    }

    /// Resident heap bytes of the in-memory representation (reservoir
    /// capacity).
    pub fn heap_bytes(&self) -> usize {
        self.sample.capacity() * std::mem::size_of::<u64>()
    }

    /// Estimated fraction of values in `[a, b]` (sample proportion).
    pub fn selectivity(&self, a: u64, b: u64) -> f64 {
        if self.sample.is_empty() || b < a {
            return 0.0;
        }
        let lo = self.sample.partition_point(|&v| v < a);
        let hi = self.sample.partition_point(|&v| v <= b);
        (hi - lo) as f64 / self.sample.len() as f64
    }

    /// Estimated number of values in `[a, b]`.
    pub fn estimate_range(&self, a: u64, b: u64) -> f64 {
        self.selectivity(a, b) * self.total
    }

    /// Drops one reservoir entry (uniformly chosen), shrinking the
    /// summary by [`SAMPLE_ENTRY_BYTES`]. Returns the squared selectivity
    /// error proxy `1/n²` (the resolution lost), or `None` when empty.
    pub fn drop_one(&mut self) -> Option<f64> {
        if self.sample.is_empty() {
            return None;
        }
        let i = (next_u64(&mut self.state) % self.sample.len() as u64) as usize;
        self.sample.remove(i);
        let n = (self.sample.len() + 1) as f64;
        Some(1.0 / (n * n))
    }

    /// Incremental maintenance: accounts for one more summarized value.
    /// Only the exact total is adjusted — the reservoir is left as-is (a
    /// deliberately coarse update: re-running the reservoir decision
    /// would make retraction impossible). Selectivities are sample
    /// fractions, so they are unaffected; absolute range estimates scale
    /// with the new total.
    pub fn observe(&mut self, _v: u64) {
        self.total += 1.0;
    }

    /// Inverse of [`SampleSummary::observe`] (total-only).
    pub fn retract(&mut self, _v: u64) {
        self.total = (self.total - 1.0).max(0.0);
    }

    /// Fuses two summaries: a weighted re-sample of the union, sized at
    /// the larger of the two reservoirs.
    pub fn fuse(&self, other: &SampleSummary) -> SampleSummary {
        if self.total == 0.0 {
            return other.clone();
        }
        if other.total == 0.0 {
            return self.clone();
        }
        let capacity = self.sample.len().max(other.sample.len()).max(1);
        let total = self.total + other.total;
        let mut state = self.state ^ other.state.rotate_left(11);
        // Draw each slot from one side with probability ∝ its total.
        let mut sample = Vec::with_capacity(capacity);
        let threshold = ((self.total / total) * u64::MAX as f64) as u64;
        for _ in 0..capacity {
            let side = if next_u64(&mut state) <= threshold {
                &self.sample
            } else {
                &other.sample
            };
            if side.is_empty() {
                continue;
            }
            let i = (next_u64(&mut state) % side.len() as u64) as usize;
            sample.push(side[i]);
        }
        sample.sort_unstable();
        SampleSummary {
            sample,
            total,
            state,
        }
    }

    /// Boundary points (sampled values) for atomic-moment computation.
    pub fn boundaries(&self) -> Vec<u64> {
        let step = (self.sample.len() / 16).max(1);
        self.sample.iter().copied().step_by(step).collect()
    }
}

/// Atomic-predicate moments between two sample summaries.
pub fn atomic_moments(a: &SampleSummary, b: &SampleSummary) -> (f64, f64, f64) {
    let mut cuts = a.boundaries();
    cuts.extend(b.boundaries());
    cuts.sort_unstable();
    cuts.dedup();
    let (mut aa, mut ab, mut bb) = (0.0, 0.0, 0.0);
    for h in cuts {
        let sa = a.selectivity(0, h);
        let sb = b.selectivity(0, h);
        aa += sa * sa;
        ab += sa * sb;
        bb += sb * sb;
    }
    (aa, ab, bb)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_input_is_exact() {
        let values = [5u64, 10, 15, 20];
        let s = SampleSummary::build(&values, 16);
        assert_eq!(s.len(), 4);
        assert_eq!(s.selectivity(0, 12), 0.5);
        assert_eq!(s.estimate_range(0, 100), 4.0);
    }

    #[test]
    fn reservoir_respects_capacity() {
        let values: Vec<u64> = (0..10_000).collect();
        let s = SampleSummary::build(&values, 64);
        assert_eq!(s.len(), 64);
        assert_eq!(s.total(), 10_000.0);
        // Uniform data: half the range ≈ half the sample.
        let sel = s.selectivity(0, 4_999);
        assert!((sel - 0.5).abs() < 0.2, "{sel}");
    }

    #[test]
    fn deterministic() {
        let values: Vec<u64> = (0..5_000).map(|i| i * 7 % 997).collect();
        let a = SampleSummary::build(&values, 32);
        let b = SampleSummary::build(&values, 32);
        assert_eq!(a, b);
    }

    #[test]
    fn empty_input() {
        let s = SampleSummary::build(&[], 8);
        assert!(s.is_empty());
        assert_eq!(s.selectivity(0, 10), 0.0);
    }

    #[test]
    fn drop_one_shrinks() {
        let values: Vec<u64> = (0..100).collect();
        let mut s = SampleSummary::build(&values, 16);
        let before = s.size_bytes();
        assert!(s.drop_one().unwrap() > 0.0);
        assert_eq!(s.size_bytes(), before - SAMPLE_ENTRY_BYTES);
        while s.drop_one().is_some() {}
        assert!(s.is_empty());
    }

    #[test]
    fn fuse_preserves_total_and_blend() {
        let a = SampleSummary::build(&vec![10u64; 300], 32);
        let b = SampleSummary::build(&vec![1000u64; 100], 32);
        let f = a.fuse(&b);
        assert_eq!(f.total(), 400.0);
        // Mixture weights ≈ 3:1.
        let low = f.selectivity(0, 100);
        assert!((low - 0.75).abs() < 0.25, "{low}");
    }

    #[test]
    fn moments_identity() {
        let values: Vec<u64> = (0..500).map(|i| i % 83).collect();
        let s = SampleSummary::build(&values, 32);
        let (aa, ab, bb) = atomic_moments(&s, &s);
        assert!((aa - ab).abs() < 1e-9);
        assert!((ab - bb).abs() < 1e-9);
    }
}
