//! `STRING` value summaries: Pruned Suffix Trees (paper Section 3,
//! `STRING` value summaries; Section 4.2 `st_cmprs`).
//!
//! Following the substring-selectivity literature ([Jagadish, Ng,
//! Srivastava, PODS'99] and [Chaudhuri, Ganti, Gravano, ICDE'04], both
//! cited by the paper), a PST is a trie over the substrings (up to a
//! length bound) of the summarized string collection, where each node
//! carries a *presence count*: the number of strings containing that
//! substring. Substring selectivities for retained substrings are exact;
//! longer query strings use the greedy Markovian estimate that stitches
//! maximal-overlap matches together.
//!
//! The paper modifies the original PST proposal in two ways, both
//! reproduced here:
//!
//! 1. the PST always records at least one node for every symbol occurring
//!    in the distribution (depth-1 nodes are never pruned), which avoids
//!    large errors on negative substring queries and makes the original
//!    count-based pruning threshold redundant;
//! 2. `st_cmprs` prunes leaves in increasing order of *pruning error* —
//!    the difference between a leaf's exact estimate and the Markovian
//!    estimate produced once it is gone — while preserving the PST
//!    *monotonicity* (substring-closure) constraint: a node may only be
//!    removed while no longer retained string contains it, which we track
//!    with inverse suffix-link counts.
//!
//! The original count-threshold pruning rule is also provided
//! ([`Pst::prune_one_by_count`]) as the ablation baseline.

use crate::footprint::{PST_NODE_BYTES, SUMMARY_HEADER_BYTES};
use std::collections::BinaryHeap;

const ROOT: u32 = 0;
const NO_STAMP: u32 = u32::MAX;

#[derive(Debug, Clone)]
struct Node {
    ch: u8,
    depth: u16,
    /// Presence count: number of strings containing this substring.
    count: f64,
    /// Occurrence count: total occurrences across the collection. The
    /// Markovian fallback for unretained needles conditions in occurrence
    /// space (as in the original substring-selectivity estimators) —
    /// presence probabilities of single symbols are near 1 and would make
    /// the independence product wildly overestimate rare fragments.
    occ: f64,
    parent: u32,
    /// Child node ids, sorted by their `ch` for binary search.
    children: Vec<u32>,
    /// Node of this node's string minus its first character.
    slink: u32,
    /// Number of alive nodes whose `slink` points here.
    inv_slink: u32,
    alive: bool,
    /// Id of the last string that contributed to `count` (dedup stamp).
    last_seen: u32,
}

/// [`Pst::to_parts`] output: `(num_strings, max_depth, root_occ,
/// preorder nodes as (depth, byte, presence, occurrence))`.
pub type PstParts = (f64, usize, f64, Vec<(u16, u8, f64, f64)>);

/// A pruned suffix tree with presence and occurrence counts.
#[derive(Debug, Clone)]
pub struct Pst {
    nodes: Vec<Node>,
    num_strings: f64,
    max_depth: usize,
    alive_count: usize,
}

impl Pst {
    /// Builds the *unpruned* suffix trie over all substrings of length
    /// `≤ max_depth` of `strings`, with presence counts.
    pub fn build<S: AsRef<str>>(strings: &[S], max_depth: usize) -> Self {
        assert!(max_depth >= 1 && max_depth <= u16::MAX as usize);
        let mut pst = Pst {
            nodes: vec![Node {
                ch: 0,
                depth: 0,
                count: strings.len() as f64,
                occ: 0.0, // accumulated below: total character positions
                parent: ROOT,
                children: Vec::new(),
                slink: ROOT,
                inv_slink: 0,
                alive: true,
                last_seen: NO_STAMP,
            }],
            num_strings: strings.len() as f64,
            max_depth,
            alive_count: 1,
        };
        for (sid, s) in strings.iter().enumerate() {
            pst.insert_string(s.as_ref().as_bytes(), sid as u32);
        }
        pst.compute_suffix_links();
        pst
    }

    fn insert_string(&mut self, s: &[u8], sid: u32) {
        self.nodes[ROOT as usize].occ += s.len() as f64;
        for start in 0..s.len() {
            let mut cur = ROOT;
            for &ch in &s[start..(start + self.max_depth).min(s.len())] {
                cur = self.child_or_insert(cur, ch);
                self.nodes[cur as usize].occ += 1.0;
                if self.nodes[cur as usize].last_seen != sid {
                    self.nodes[cur as usize].last_seen = sid;
                    self.nodes[cur as usize].count += 1.0;
                }
            }
        }
    }

    fn child_or_insert(&mut self, parent: u32, ch: u8) -> u32 {
        match self.find_child_slot(parent, ch) {
            Ok(c) => c,
            Err(slot) => {
                let id = self.nodes.len() as u32;
                let depth = self.nodes[parent as usize].depth + 1;
                self.nodes.push(Node {
                    ch,
                    depth,
                    count: 0.0,
                    occ: 0.0,
                    parent,
                    children: Vec::new(),
                    slink: ROOT,
                    inv_slink: 0,
                    alive: true,
                    last_seen: NO_STAMP,
                });
                self.alive_count += 1;
                self.nodes[parent as usize].children.insert(slot, id);
                id
            }
        }
    }

    fn find_child_slot(&self, parent: u32, ch: u8) -> Result<u32, usize> {
        let children = &self.nodes[parent as usize].children;
        children
            .binary_search_by_key(&ch, |&c| self.nodes[c as usize].ch)
            .map(|i| children[i])
    }

    fn child(&self, parent: u32, ch: u8) -> Option<u32> {
        self.find_child_slot(parent, ch)
            .ok()
            .filter(|&c| self.nodes[c as usize].alive)
    }

    /// Computes `slink` for every node (BFS order guarantees the parent's
    /// slink is resolved first) and the inverse-slink reference counts.
    fn compute_suffix_links(&mut self) {
        let mut queue: Vec<u32> = self.nodes[ROOT as usize].children.clone();
        for &c in &queue {
            self.nodes[c as usize].slink = ROOT;
        }
        let mut head = 0;
        while head < queue.len() {
            let x = queue[head];
            head += 1;
            let children = self.nodes[x as usize].children.clone();
            let x_slink = self.nodes[x as usize].slink;
            for c in children {
                let ch = self.nodes[c as usize].ch;
                // Substring closure: the suffix of every retained string is
                // retained, so the slink target always exists in the
                // unpruned trie.
                let target = self
                    .find_child_slot(x_slink, ch)
                    .expect("substring closure violated during construction");
                self.nodes[c as usize].slink = target;
                queue.push(c);
            }
        }
        for i in 1..self.nodes.len() {
            if self.nodes[i].depth >= 2 {
                let t = self.nodes[i].slink;
                self.nodes[t as usize].inv_slink += 1;
            }
        }
    }

    /// Number of summarized strings.
    pub fn num_strings(&self) -> f64 {
        self.num_strings
    }

    /// Number of retained (alive) trie nodes, excluding the root.
    pub fn node_count(&self) -> usize {
        self.alive_count - 1
    }

    /// Maximum substring length recorded at build time.
    pub fn max_depth(&self) -> usize {
        self.max_depth
    }

    /// Storage footprint in bytes.
    pub fn size_bytes(&self) -> usize {
        SUMMARY_HEADER_BYTES + self.node_count() * PST_NODE_BYTES
    }

    /// Resident heap bytes of the in-memory representation: the node
    /// arena (including pruned tombstones, which still occupy slots)
    /// plus every node's child-id vector.
    pub fn heap_bytes(&self) -> usize {
        self.nodes.capacity() * std::mem::size_of::<Node>()
            + self
                .nodes
                .iter()
                .map(|n| n.children.capacity() * std::mem::size_of::<u32>())
                .sum::<usize>()
    }

    /// The exact presence count of `needle` if it is retained.
    pub fn count_of(&self, needle: &str) -> Option<f64> {
        let mut cur = ROOT;
        for &ch in needle.as_bytes() {
            cur = self.child(cur, ch)?;
        }
        Some(self.nodes[cur as usize].count)
    }

    /// Longest retained prefix of `needle` starting at its first byte;
    /// returns `(matched_len, node)`. A zero length means the first byte
    /// is absent from the summary.
    fn longest_match(&self, needle: &[u8]) -> (usize, u32) {
        let mut cur = ROOT;
        let mut len = 0;
        for &ch in needle {
            match self.child(cur, ch) {
                Some(c) => {
                    cur = c;
                    len += 1;
                }
                None => break,
            }
        }
        (len, cur)
    }

    /// Estimated selectivity of `contains(needle)`: the fraction of
    /// summarized strings containing `needle` as a substring.
    ///
    /// Retained substrings are answered exactly; longer needles use the
    /// greedy maximal-overlap Markovian estimate. Needles whose very first
    /// unmatched character does not occur anywhere in the distribution
    /// yield an exact 0 — the guarantee provided by the paper's "at least
    /// one node per symbol" modification.
    // `end` is re-read when the labeled `continue` restarts the loop.
    #[allow(clippy::mut_range_bound)]
    pub fn selectivity(&self, needle: &str) -> f64 {
        let s = needle.as_bytes();
        if s.is_empty() {
            return 1.0;
        }
        if self.num_strings == 0.0 {
            return 0.0;
        }
        // Retained needle: exact presence fraction.
        if let Some(node) = self.node_of(s) {
            return self.nodes[node as usize].count / self.num_strings;
        }
        let (len1, node1) = self.longest_match(s);
        if len1 == 0 {
            return 0.0;
        }
        // Markovian fallback in occurrence space: stitch maximal-overlap
        // matches, multiplying occurrence-conditional continuation
        // probabilities. The result approximates the expected number of
        // needle occurrences in the collection; presence is bounded by it
        // and by the presence count of every retained piece.
        let mut est_occ = self.nodes[node1 as usize].occ;
        let mut presence_bound = self.nodes[node1 as usize].count;
        let mut end = len1;
        'outer: while end < s.len() {
            // Extend with the largest usable overlap: condition the next
            // maximal match on the longest retained suffix ending at `end`.
            let min_start = end.saturating_sub(self.max_depth - 1);
            for start in min_start..=end {
                let Some(overlap) = self.node_of(&s[start..end]) else {
                    continue;
                };
                let overlap_occ = self.nodes[overlap as usize].occ;
                if overlap_occ <= 0.0 {
                    continue;
                }
                let (mlen, node) = self.longest_match(&s[start..]);
                if start + mlen > end {
                    est_occ *= self.nodes[node as usize].occ / overlap_occ;
                    presence_bound = presence_bound.min(self.nodes[node as usize].count);
                    end = start + mlen;
                    continue 'outer;
                }
            }
            // No extension possible: s[end] never occurs in the data.
            return 0.0;
        }
        (est_occ.min(presence_bound) / self.num_strings).clamp(0.0, 1.0)
    }

    fn node_of(&self, needle: &[u8]) -> Option<u32> {
        let mut cur = ROOT;
        for &ch in needle {
            cur = self.child(cur, ch)?;
        }
        Some(cur)
    }

    /// Incremental maintenance: records one more string in the
    /// summarized collection. Counts update along *retained* trie paths
    /// only — the pruned shape is fixed once built, so no nodes are
    /// created. Mirrors the build-time insertion exactly (root
    /// occurrence mass, per-node occurrences, presence counts deduped
    /// within the string).
    pub fn observe(&mut self, s: &str) {
        self.adjust(s.as_bytes(), 1.0);
    }

    /// Exact (bitwise) inverse of [`Pst::observe`] for the same string.
    pub fn retract(&mut self, s: &str) {
        self.adjust(s.as_bytes(), -1.0);
    }

    fn adjust(&mut self, s: &[u8], sign: f64) {
        self.num_strings += sign;
        // The root mirrors num_strings (presence) and total character
        // positions (occurrence) by construction.
        self.nodes[ROOT as usize].count += sign;
        self.nodes[ROOT as usize].occ += sign * s.len() as f64;
        // Presence dedup must be call-local: the build-time `last_seen`
        // stamps assume globally unique string ids, which incremental
        // calls don't have.
        let mut present: std::collections::HashSet<u32> = std::collections::HashSet::new();
        for start in 0..s.len() {
            let mut cur = ROOT;
            for &ch in &s[start..(start + self.max_depth).min(s.len())] {
                // Substring closure: once a path node is pruned, the
                // whole remaining path is gone too.
                let Some(c) = self.child(cur, ch) else {
                    break;
                };
                cur = c;
                self.nodes[cur as usize].occ += sign;
                if present.insert(cur) {
                    self.nodes[cur as usize].count += sign;
                }
            }
        }
    }

    /// Whether pruning `node` is allowed: alive leaf, depth ≥ 2 (the
    /// paper's modification pins all depth-1 symbol nodes), and no longer
    /// retained string ends with this node's string (inverse suffix-link
    /// count of zero ⇒ substring-closure / monotonicity is preserved).
    fn is_prunable(&self, node: u32) -> bool {
        let n = &self.nodes[node as usize];
        n.alive
            && n.depth >= 2
            && n.inv_slink == 0
            && n.children.iter().all(|&c| !self.nodes[c as usize].alive)
    }

    /// Pruning error of a leaf (paper Section 4.2): the absolute
    /// difference between the exact selectivity of the leaf's substring
    /// and the Markovian estimate that the PST would produce after the
    /// leaf is removed. A small value means the Markovian assumption holds
    /// well at this node.
    pub fn pruning_error(&self, node: u32) -> f64 {
        let n = &self.nodes[node as usize];
        let exact = n.count / self.num_strings;
        // After pruning, the greedy parse matches the parent (string minus
        // last char) and extends via the suffix-link node (string minus
        // first char) conditioned on its parent (string minus both ends),
        // in occurrence space with the presence bound applied — mirroring
        // `selectivity`.
        let parent = &self.nodes[n.parent as usize];
        let slink = &self.nodes[n.slink as usize];
        let slink_parent = &self.nodes[slink.parent as usize];
        let est = if slink_parent.occ > 0.0 {
            (parent.occ * (slink.occ / slink_parent.occ)).min(parent.count.min(slink.count))
                / self.num_strings
        } else {
            0.0
        };
        (exact - est).abs()
    }

    /// Squared selectivity error of removing `node` (feeds Δ(S,S′)).
    fn pruning_sq_error(&self, node: u32) -> f64 {
        let e = self.pruning_error(node);
        e * e
    }

    fn kill(&mut self, node: u32) {
        debug_assert!(self.is_prunable(node));
        self.nodes[node as usize].alive = false;
        self.alive_count -= 1;
        let slink = self.nodes[node as usize].slink;
        if self.nodes[node as usize].depth >= 2 {
            self.nodes[slink as usize].inv_slink -= 1;
        }
    }

    /// Applies one `st_cmprs` step with the paper's error-driven scheme:
    /// prunes the currently prunable leaf with the smallest pruning error.
    /// Returns the squared selectivity error, or `None` if nothing can be
    /// pruned.
    pub fn prune_one(&mut self) -> Option<f64> {
        let best = self
            .prunable_nodes()
            .map(|x| (x, self.pruning_error(x)))
            .min_by(|a, b| a.1.total_cmp(&b.1))?;
        let sq = self.pruning_sq_error(best.0);
        self.kill(best.0);
        Some(sq)
    }

    /// Ablation baseline: the *original* PST pruning rule, removing the
    /// prunable leaf with the smallest presence count.
    pub fn prune_one_by_count(&mut self) -> Option<f64> {
        let best = self
            .prunable_nodes()
            .map(|x| (x, self.nodes[x as usize].count))
            .min_by(|a, b| a.1.total_cmp(&b.1))?;
        let sq = self.pruning_sq_error(best.0);
        self.kill(best.0);
        Some(sq)
    }

    /// Prunes until at most `max_nodes` nodes remain, using a heap over
    /// pruning errors (errors depend only on counts, which pruning never
    /// changes, so heap entries stay valid and only *prunability* must be
    /// rechecked at pop time). Returns the accumulated squared error.
    pub fn prune_to_size(&mut self, max_nodes: usize) -> f64 {
        #[derive(PartialEq)]
        struct Cand(f64, u32);
        impl Eq for Cand {}
        impl PartialOrd for Cand {
            fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
                Some(self.cmp(other))
            }
        }
        impl Ord for Cand {
            fn cmp(&self, other: &Self) -> std::cmp::Ordering {
                // Min-heap via reversed comparison on the error.
                other.0.total_cmp(&self.0)
            }
        }
        let mut heap: BinaryHeap<Cand> = self
            .prunable_nodes()
            .map(|x| Cand(self.pruning_error(x), x))
            .collect();
        let mut total_sq = 0.0;
        while self.node_count() > max_nodes {
            let Some(Cand(err, x)) = heap.pop() else {
                break;
            };
            if !self.is_prunable(x) {
                continue;
            }
            total_sq += err * err;
            let parent = self.nodes[x as usize].parent;
            let slink = self.nodes[x as usize].slink;
            self.kill(x);
            for cand in [parent, slink] {
                if cand != ROOT && self.is_prunable(cand) {
                    heap.push(Cand(self.pruning_error(cand), cand));
                }
            }
        }
        total_sq
    }

    /// Bulk variant of [`Pst::prune_one_by_count`]: the ablation baseline
    /// pruning to `max_nodes` with the original count-threshold rule
    /// (smallest presence count first), heap-driven like
    /// [`Pst::prune_to_size`].
    pub fn prune_to_size_by_count(&mut self, max_nodes: usize) -> f64 {
        #[derive(PartialEq)]
        struct Cand(f64, u32);
        impl Eq for Cand {}
        impl PartialOrd for Cand {
            fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
                Some(self.cmp(other))
            }
        }
        impl Ord for Cand {
            fn cmp(&self, other: &Self) -> std::cmp::Ordering {
                other.0.total_cmp(&self.0)
            }
        }
        let mut heap: BinaryHeap<Cand> = self
            .prunable_nodes()
            .map(|x| Cand(self.nodes[x as usize].count, x))
            .collect();
        let mut total_sq = 0.0;
        while self.node_count() > max_nodes {
            let Some(Cand(_, x)) = heap.pop() else {
                break;
            };
            if !self.is_prunable(x) {
                continue;
            }
            total_sq += self.pruning_sq_error(x);
            let parent = self.nodes[x as usize].parent;
            let slink = self.nodes[x as usize].slink;
            self.kill(x);
            for cand in [parent, slink] {
                if cand != ROOT && self.is_prunable(cand) {
                    heap.push(Cand(self.nodes[cand as usize].count, cand));
                }
            }
        }
        total_sq
    }

    fn prunable_nodes(&self) -> impl Iterator<Item = u32> + '_ {
        (1..self.nodes.len() as u32).filter(|&x| self.is_prunable(x))
    }

    /// Fuses two PSTs for a node merge (paper Section 4.1): the result
    /// contains every substring retained in either input, with summed
    /// presence counts.
    pub fn fuse(&self, other: &Pst) -> Pst {
        let max_depth = self.max_depth.max(other.max_depth);
        let mut out = Pst {
            nodes: vec![Node {
                ch: 0,
                depth: 0,
                count: self.num_strings + other.num_strings,
                occ: self.nodes[ROOT as usize].occ + other.nodes[ROOT as usize].occ,
                parent: ROOT,
                children: Vec::new(),
                slink: ROOT,
                inv_slink: 0,
                alive: true,
                last_seen: NO_STAMP,
            }],
            num_strings: self.num_strings + other.num_strings,
            max_depth,
            alive_count: 1,
        };
        // Simultaneous DFS over alive nodes of both inputs.
        let mut stack: Vec<(Option<u32>, Option<u32>, u32)> = vec![(Some(ROOT), Some(ROOT), ROOT)];
        while let Some((a, b, dst)) = stack.pop() {
            let mut chars: Vec<u8> = Vec::new();
            if let Some(a) = a {
                chars.extend(self.alive_children(a).map(|c| self.nodes[c as usize].ch));
            }
            if let Some(b) = b {
                chars.extend(other.alive_children(b).map(|c| other.nodes[c as usize].ch));
            }
            chars.sort_unstable();
            chars.dedup();
            for ch in chars {
                let ca = a.and_then(|a| self.child(a, ch));
                let cb = b.and_then(|b| other.child(b, ch));
                let count = ca.map_or(0.0, |c| self.nodes[c as usize].count)
                    + cb.map_or(0.0, |c| other.nodes[c as usize].count);
                let occ = ca.map_or(0.0, |c| self.nodes[c as usize].occ)
                    + cb.map_or(0.0, |c| other.nodes[c as usize].occ);
                let id = out.child_or_insert(dst, ch);
                out.nodes[id as usize].count = count;
                out.nodes[id as usize].occ = occ;
                stack.push((ca, cb, id));
            }
        }
        out.compute_suffix_links();
        out
    }

    fn alive_children(&self, node: u32) -> impl Iterator<Item = u32> + '_ {
        self.nodes[node as usize]
            .children
            .iter()
            .copied()
            .filter(|&c| self.nodes[c as usize].alive)
    }

    /// Serialized parts: `(num_strings, max_depth, root_occ, preorder
    /// node list as (depth, byte, presence, occurrence))`. Only alive
    /// nodes are emitted.
    pub fn to_parts(&self) -> PstParts {
        let mut out = Vec::with_capacity(self.node_count());
        let mut stack: Vec<u32> = self
            .alive_children(ROOT)
            .collect::<Vec<_>>()
            .into_iter()
            .rev()
            .collect();
        while let Some(x) = stack.pop() {
            let n = &self.nodes[x as usize];
            out.push((n.depth, n.ch, n.count, n.occ));
            let before = stack.len();
            stack.extend(self.alive_children(x));
            stack[before..].reverse();
        }
        (
            self.num_strings,
            self.max_depth,
            self.nodes[ROOT as usize].occ,
            out,
        )
    }

    /// Reassembles a PST from [`Pst::to_parts`] output.
    ///
    /// # Panics
    /// Panics if the preorder list is malformed (depth jumps).
    pub fn from_parts(
        num_strings: f64,
        max_depth: usize,
        root_occ: f64,
        preorder: Vec<(u16, u8, f64, f64)>,
    ) -> Self {
        let mut pst = Pst {
            nodes: vec![Node {
                ch: 0,
                depth: 0,
                count: num_strings,
                occ: root_occ,
                parent: ROOT,
                children: Vec::new(),
                slink: ROOT,
                inv_slink: 0,
                alive: true,
                last_seen: NO_STAMP,
            }],
            num_strings,
            max_depth: max_depth.max(1),
            alive_count: 1,
        };
        // Preorder with explicit depths: a stack of the current path.
        let mut path: Vec<u32> = vec![ROOT];
        for (depth, ch, count, occ) in preorder {
            assert!(
                depth >= 1 && (depth as usize) < path.len() + 1,
                "bad preorder"
            );
            path.truncate(depth as usize);
            let parent = *path.last().expect("path never empty");
            let id = pst.child_or_insert(parent, ch);
            pst.nodes[id as usize].count = count;
            pst.nodes[id as usize].occ = occ;
            path.push(id);
        }
        pst.compute_suffix_links();
        pst
    }

    /// Iterates all retained substrings with their counts (testing and
    /// atomic-predicate enumeration helper). Strings come out in DFS
    /// order.
    pub fn retained_substrings(&self) -> Vec<(String, f64)> {
        let mut out = Vec::new();
        let mut stack: Vec<(u32, Vec<u8>)> = vec![(ROOT, Vec::new())];
        while let Some((x, prefix)) = stack.pop() {
            for c in self.alive_children(x) {
                let mut p = prefix.clone();
                p.push(self.nodes[c as usize].ch);
                out.push((
                    String::from_utf8_lossy(&p).into_owned(),
                    self.nodes[c as usize].count,
                ));
                stack.push((c, p));
            }
        }
        out
    }
}

/// Atomic-predicate moments between two PSTs (paper Sec. 4.1: atomic
/// `STRING` predicates are all substrings retained in the summaries).
/// Walks the union of both tries; a substring absent from one summary
/// contributes selectivity 0 on that side.
pub fn atomic_moments(a: &Pst, b: &Pst) -> (f64, f64, f64) {
    let (mut aa, mut ab, mut bb) = (0.0, 0.0, 0.0);
    let na = a.num_strings.max(1.0);
    let nb = b.num_strings.max(1.0);
    let mut stack: Vec<(Option<u32>, Option<u32>)> = vec![(Some(ROOT), Some(ROOT))];
    while let Some((xa, xb)) = stack.pop() {
        let mut chars: Vec<u8> = Vec::new();
        if let Some(x) = xa {
            chars.extend(a.alive_children(x).map(|c| a.nodes[c as usize].ch));
        }
        if let Some(x) = xb {
            chars.extend(b.alive_children(x).map(|c| b.nodes[c as usize].ch));
        }
        chars.sort_unstable();
        chars.dedup();
        for ch in chars {
            let ca = xa.and_then(|x| a.child(x, ch));
            let cb = xb.and_then(|x| b.child(x, ch));
            let sa = ca.map_or(0.0, |c| a.nodes[c as usize].count / na);
            let sb = cb.map_or(0.0, |c| b.nodes[c as usize].count / nb);
            aa += sa * sa;
            ab += sa * sb;
            bb += sb * sb;
            stack.push((ca, cb));
        }
    }
    (aa, ab, bb)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-9, "{a} vs {b}");
    }

    #[test]
    fn exact_counts_for_retained_substrings() {
        let pst = Pst::build(&["abc", "abd", "xbc"], 8);
        close(pst.count_of("ab").unwrap(), 2.0);
        close(pst.count_of("b").unwrap(), 3.0);
        close(pst.count_of("bc").unwrap(), 2.0);
        close(pst.count_of("abc").unwrap(), 1.0);
        assert!(pst.count_of("zz").is_none());
    }

    #[test]
    fn presence_counts_dedup_repeats_within_string() {
        // "aaa" contains "a" three times but is one string.
        let pst = Pst::build(&["aaa", "ba"], 8);
        close(pst.count_of("a").unwrap(), 2.0);
        close(pst.count_of("aa").unwrap(), 1.0);
    }

    #[test]
    fn exact_selectivity_for_retained() {
        let pst = Pst::build(&["abc", "abd", "xbc", "qqq"], 8);
        close(pst.selectivity("ab"), 0.5);
        close(pst.selectivity("q"), 0.25);
        close(pst.selectivity(""), 1.0);
    }

    #[test]
    fn absent_symbol_estimates_zero() {
        let pst = Pst::build(&["abc", "abd"], 8);
        close(pst.selectivity("z"), 0.0);
        close(pst.selectivity("abz"), 0.0);
        close(pst.selectivity("zab"), 0.0);
    }

    #[test]
    fn markov_estimate_for_long_needles() {
        // Depth cap 2 forces Markovian stitching for length-3 needles.
        let strings: Vec<String> = (0..20)
            .map(|i| {
                format!(
                    "{}{}{}",
                    (b'x' + i % 3) as char,
                    "bc",
                    (b'd' + i % 2) as char
                )
            })
            .collect();
        let pst = Pst::build(&strings, 2);
        let s = pst.selectivity("bcd");
        // occ(bc)=20, occ(cd)/occ(c)=10/20 → estimate 0.5; true 0.5.
        close(s, 0.5);
    }

    #[test]
    fn markov_estimate_in_unit_range() {
        let pst = Pst::build(&["abcdefgh", "bcdefghi", "cdefghij"], 3);
        let s = pst.selectivity("abcdefghij");
        assert!((0.0..=1.0).contains(&s), "{s}");
    }

    #[test]
    fn node_count_and_size() {
        let pst = Pst::build(&["ab"], 8);
        // Substrings: a, ab, b → 3 nodes.
        assert_eq!(pst.node_count(), 3);
        assert!(pst.size_bytes() > 3 * PST_NODE_BYTES);
    }

    #[test]
    fn depth_one_nodes_are_never_pruned() {
        let mut pst = Pst::build(&["abc"], 8);
        while pst.prune_one().is_some() {}
        // a, b, c survive; everything deeper is gone.
        assert_eq!(pst.node_count(), 3);
        assert!(pst.count_of("a").is_some());
        assert!(pst.count_of("b").is_some());
        assert!(pst.count_of("c").is_some());
        assert!(pst.count_of("ab").is_none());
    }

    #[test]
    fn pruning_preserves_substring_closure() {
        let mut pst = Pst::build(&["abcd", "bcde", "xyab"], 6);
        for _ in 0..10 {
            if pst.prune_one().is_none() {
                break;
            }
        }
        // Closure: every retained substring's substrings are retained.
        for (s, _) in pst.retained_substrings() {
            for start in 0..s.len() {
                for end in (start + 1)..=s.len() {
                    assert!(
                        pst.count_of(&s[start..end]).is_some(),
                        "closure violated: {} retained but {} missing",
                        s,
                        &s[start..end]
                    );
                }
            }
        }
    }

    #[test]
    fn prune_to_size_hits_target() {
        let strings: Vec<String> = (0..50).map(|i| format!("str{i:03}xyz")).collect();
        let mut pst = Pst::build(&strings, 6);
        assert!(pst.node_count() > 40);
        let err = pst.prune_to_size(40);
        assert!(pst.node_count() <= 40 || err >= 0.0);
        // Depth-1 floor: cannot go below the symbol count.
        let symbols = pst
            .retained_substrings()
            .iter()
            .filter(|(s, _)| s.len() == 1)
            .count();
        pst.prune_to_size(0);
        assert_eq!(pst.node_count(), symbols);
    }

    #[test]
    fn prune_to_size_accumulates_error() {
        let strings = vec!["hello", "help", "helm", "world"];
        let mut pst = Pst::build(&strings, 8);
        let err = pst.prune_to_size(6);
        assert!(err >= 0.0);
        assert!(pst.node_count() >= 6usize.min(pst.node_count()));
    }

    #[test]
    fn pruned_estimates_stay_reasonable() {
        let strings: Vec<String> = (0..100)
            .map(|i| format!("{}name{}", ["dr", "mr", "ms"][i % 3], i % 10))
            .collect();
        let mut pst = Pst::build(&strings, 8);
        let exact = pst.selectivity("name");
        pst.prune_to_size(pst.node_count() / 2);
        let approx = pst.selectivity("name");
        assert!((exact - approx).abs() < 0.5, "{exact} vs {approx}");
    }

    #[test]
    fn count_based_pruning_differs_from_error_based() {
        let strings = vec!["aab", "aac", "aad", "xy"];
        let mut by_err = Pst::build(&strings, 4);
        let mut by_cnt = Pst::build(&strings, 4);
        by_err.prune_one().unwrap();
        by_cnt.prune_one_by_count().unwrap();
        // Both prune exactly one node and stay consistent.
        assert_eq!(by_err.node_count(), by_cnt.node_count());
    }

    #[test]
    fn fuse_sums_counts() {
        let a = Pst::build(&["abc"], 8);
        let b = Pst::build(&["abd", "abc"], 8);
        let f = a.fuse(&b);
        close(f.num_strings(), 3.0);
        close(f.count_of("ab").unwrap(), 3.0);
        close(f.count_of("abc").unwrap(), 2.0);
        close(f.count_of("abd").unwrap(), 1.0);
        close(f.count_of("d").unwrap(), 1.0);
    }

    #[test]
    fn fuse_then_prune_is_consistent() {
        let a = Pst::build(&["summary", "synopsis"], 6);
        let b = Pst::build(&["histogram", "synopsis"], 6);
        let mut f = a.fuse(&b);
        let before = f.selectivity("syn");
        close(before, 0.5);
        f.prune_to_size(20);
        let after = f.selectivity("syn");
        assert!((0.0..=1.0).contains(&after));
    }

    #[test]
    fn atomic_moments_symmetry_and_identity() {
        let a = Pst::build(&["abc", "abd"], 4);
        let (aa, ab, bb) = atomic_moments(&a, &a);
        close(aa, ab);
        close(ab, bb);
        let b = Pst::build(&["xyz"], 4);
        let (aa2, ab2, bb2) = atomic_moments(&a, &b);
        let (bb3, ba3, aa3) = atomic_moments(&b, &a);
        close(aa2, aa3);
        close(ab2, ba3);
        close(bb2, bb3);
        // Disjoint alphabets → zero cross moment.
        close(ab2, 0.0);
    }

    #[test]
    fn empty_collection() {
        let pst = Pst::build::<&str>(&[], 8);
        close(pst.selectivity("a"), 0.0);
        assert_eq!(pst.node_count(), 0);
    }

    #[test]
    fn observe_matches_rebuild_on_unpruned_trie() {
        // Observing a string whose substrings are all retained must give
        // exactly the counts a from-scratch build over the extended
        // collection produces.
        let mut pst = Pst::build(&["abc", "abd"], 8);
        pst.observe("abc");
        let rebuilt = Pst::build(&["abc", "abd", "abc"], 8);
        close(pst.num_strings(), rebuilt.num_strings());
        for (s, c) in rebuilt.retained_substrings() {
            close(pst.count_of(&s).unwrap(), c);
        }
    }

    #[test]
    fn observe_then_retract_is_bitwise_identity() {
        let mut pst = Pst::build(&["summary", "synopsis", "histogram"], 6);
        pst.prune_to_size(pst.node_count() / 2);
        let before: Vec<(String, f64)> = pst.retained_substrings();
        let n = pst.num_strings();
        let occ = pst.nodes[ROOT as usize].occ;
        for s in ["synopsis", "wavelet", "zzz"] {
            pst.observe(s);
            pst.retract(s);
        }
        assert_eq!(pst.retained_substrings(), before);
        assert_eq!(pst.num_strings(), n);
        assert_eq!(pst.nodes[ROOT as usize].occ, occ);
    }

    #[test]
    fn observe_skips_pruned_paths() {
        let mut pst = Pst::build(&["abc"], 8);
        while pst.prune_one().is_some() {}
        // Only depth-1 symbol nodes remain; observing must not resurrect
        // deeper paths.
        pst.observe("abc");
        assert_eq!(pst.node_count(), 3);
        close(pst.count_of("a").unwrap(), 2.0);
        assert!(pst.count_of("ab").is_none());
    }

    #[test]
    fn retained_substrings_lists_everything() {
        let pst = Pst::build(&["ab"], 8);
        let mut subs: Vec<String> = pst
            .retained_substrings()
            .into_iter()
            .map(|(s, _)| s)
            .collect();
        subs.sort();
        assert_eq!(subs, vec!["a", "ab", "b"]);
    }
}
