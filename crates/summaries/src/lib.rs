//! Value-distribution summaries for XCluster synopses (paper Section 3,
//! "XCLUSTER Value Summaries", and Section 4.2, "Compressing Value
//! Summaries").
//!
//! An XCluster node `u` with typed content stores a value summary
//! `vsumm(u)` approximating the distribution of the `type(u)` values in its
//! extent. One summary class exists per value type:
//!
//! * [`Histogram`] — bucketized frequency distribution for `NUMERIC`
//!   values, supporting range predicates `[l, h]`;
//! * [`Pst`] — pruned suffix trees for `STRING` values, supporting
//!   substring (`contains`) predicates with Markovian estimation;
//! * [`Ebth`] — **end-biased term histograms** (a contribution of the
//!   paper) for `TEXT` values, supporting `ftcontains` term predicates:
//!   the top-k term frequencies kept exactly plus a lossless run-length
//!   compressed 0/1 uniform bucket with one average frequency.
//!
//! [`ValueSummary`] unifies the three behind the operations the synopsis
//! construction and estimation algorithms need: predicate selectivity
//! ([`ValueSummary::selectivity`]), summary fusion for node merges
//! ([`ValueSummary::fuse`]), single-step compression
//! ([`ValueSummary::best_compression`]), storage footprints
//! ([`ValueSummary::size_bytes`]), and the *atomic-predicate moments* that
//! drive the paper's Δ(S, S′) clustering-error metric
//! ([`ValueSummary::atomic_moments`]).

pub mod ebth;
pub mod footprint;
pub mod histogram;
pub mod predicate;
pub mod pst;
pub mod sample;
pub mod summary;
pub mod wavelet;

pub use ebth::{Ebth, RleBitmap};
pub use histogram::{Bucket, Histogram, HistogramKind};
pub use predicate::ValuePredicate;
pub use pst::Pst;
pub use sample::SampleSummary;
pub use summary::{AtomicMoments, CompressionStep, NumericKind, ValueSummary};
pub use wavelet::WaveletSummary;
