//! Storage-footprint model for value summaries and synopsis structure.
//!
//! The paper expresses budgets (`Bstr`, `Bval`) in kilobytes, so every
//! summary and the synopsis graph itself report a size in bytes. The
//! constants below model a compact on-disk encoding rather than the
//! in-memory Rust layout: what matters for reproducing the experiments is
//! that the *relative* cost of buckets, PST nodes, indexed terms, and RLE
//! runs matches the paper's setting.

/// Fixed per-summary header (type tag + counts).
pub const SUMMARY_HEADER_BYTES: usize = 8;

/// One histogram bucket: domain boundary (u32) + frequency count (f32).
pub const HISTOGRAM_BUCKET_BYTES: usize = 8;

/// One pruned-suffix-tree node: symbol (1 byte) + count (4 bytes) +
/// amortized child-structure overhead (4 bytes).
pub const PST_NODE_BYTES: usize = 9;

/// One exactly-indexed term of an end-biased term histogram:
/// term id (u32) + frequency (f32).
pub const EBTH_TOP_TERM_BYTES: usize = 8;

/// One run of the RLE-compressed 0/1 uniform bucket (run length, u16 ×2).
pub const EBTH_RUN_BYTES: usize = 4;

/// Average frequency + non-zero count of the uniform bucket.
pub const EBTH_UNIFORM_BUCKET_BYTES: usize = 8;

/// One synopsis node header: label/type (u32) + element count (u32).
pub const SYNOPSIS_NODE_BYTES: usize = 8;

/// One synopsis edge: target node id (u32) + average child count (f32).
pub const SYNOPSIS_EDGE_BYTES: usize = 8;
