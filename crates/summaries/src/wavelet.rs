//! Haar-wavelet numeric summaries (paper Section 3: "Summarizing numeric
//! frequency distributions is a well-studied problem … several known
//! tools can be employed, including histograms, **wavelets** [16], and
//! random sampling [15]").
//!
//! Following the wavelet-histogram construction of Matias, Vitter &
//! Wang (SIGMOD'98), the value domain is mapped onto a power-of-two grid
//! of cells; the cell-frequency vector is Haar-decomposed; and the `m`
//! coefficients that are largest under the standard per-level
//! normalization (which minimizes the L2 reconstruction error) are
//! retained. Range frequencies are reconstructed from two prefix sums,
//! each computed with the `O(log n)` root-to-leaf coefficient walk.
//!
//! The summary supports the same operation set as the bucket histogram
//! (selectivity / fuse / compress / atomic moments), so it can serve as a
//! drop-in `NUMERIC` backend for XCluster synopses — exercised by the
//! `ablation-numeric` experiment.

use crate::footprint::SUMMARY_HEADER_BYTES;
use std::collections::HashMap;

/// Bytes per retained coefficient: index (u32) + value (f32).
pub const WAVELET_COEF_BYTES: usize = 8;

/// Log2 of the default grid resolution.
pub const DEFAULT_LEVELS: u32 = 10;

/// A Haar-wavelet summary of a numeric frequency distribution.
#[derive(Debug, Clone, PartialEq)]
pub struct WaveletSummary {
    /// Inclusive lower bound of the gridded domain.
    lo: u64,
    /// Width of one grid cell (≥ 1).
    cell_width: u64,
    /// Number of grid cells (power of two).
    cells: usize,
    /// Retained Haar coefficients, keyed by position in the transform
    /// (0 = overall average, then the standard Haar layout).
    coefficients: HashMap<u32, f64>,
    /// Total frequency.
    total: f64,
}

impl WaveletSummary {
    /// Builds the summary from raw values, retaining at most
    /// `max_coefficients`. Returns an all-zero summary for empty input.
    pub fn build(values: &[u64], max_coefficients: usize, levels: u32) -> Self {
        assert!(levels <= 20, "grid would be enormous");
        let cells = 1usize << levels;
        if values.is_empty() {
            return WaveletSummary {
                lo: 0,
                cell_width: 1,
                cells,
                coefficients: HashMap::new(),
                total: 0.0,
            };
        }
        let lo = *values.iter().min().unwrap();
        let hi = *values.iter().max().unwrap();
        let cell_width = ((hi - lo) / cells as u64 + 1).max(1);
        let mut grid = vec![0.0f64; cells];
        for &v in values {
            grid[((v - lo) / cell_width) as usize] += 1.0;
        }
        let mut coefficients = haar_decompose(&grid);
        retain_top(&mut coefficients, cells, max_coefficients);
        WaveletSummary {
            lo,
            cell_width,
            cells,
            coefficients,
            total: values.len() as f64,
        }
    }

    /// Serialized parts: `(lo, cell_width, cells, coefficients, total)`.
    pub fn to_parts(&self) -> (u64, u64, usize, Vec<(u32, f64)>, f64) {
        let mut coefs: Vec<(u32, f64)> = self.coefficients.iter().map(|(&i, &v)| (i, v)).collect();
        coefs.sort_unstable_by_key(|&(i, _)| i);
        (self.lo, self.cell_width, self.cells, coefs, self.total)
    }

    /// Reassembles a summary from [`WaveletSummary::to_parts`] output.
    pub fn from_parts(
        lo: u64,
        cell_width: u64,
        cells: usize,
        coefficients: Vec<(u32, f64)>,
        total: f64,
    ) -> Self {
        assert!(cells.is_power_of_two(), "cells must be a power of two");
        WaveletSummary {
            lo,
            cell_width: cell_width.max(1),
            cells,
            coefficients: coefficients.into_iter().collect(),
            total,
        }
    }

    /// Total summarized frequency.
    pub fn total(&self) -> f64 {
        self.total
    }

    /// Number of retained coefficients.
    pub fn num_coefficients(&self) -> usize {
        self.coefficients.len()
    }

    /// Storage footprint in bytes.
    pub fn size_bytes(&self) -> usize {
        SUMMARY_HEADER_BYTES + 16 /* domain */ + self.coefficients.len() * WAVELET_COEF_BYTES
    }

    /// Resident heap bytes of the in-memory representation. `HashMap`
    /// capacity is approximated as one `(key, value)` slot plus one
    /// control byte per allocated bucket (the std swiss-table layout).
    pub fn heap_bytes(&self) -> usize {
        self.coefficients.capacity() * (std::mem::size_of::<(u32, f64)>() + 1)
    }

    /// Reconstructed frequency of grid cell `i` (`O(log n)` walk).
    fn cell_value(&self, i: usize) -> f64 {
        debug_assert!(i < self.cells);
        // Standard Haar reconstruction: overall average plus signed detail
        // coefficients along the root-to-leaf path. Level `ℓ` holds 2^ℓ
        // coefficients at indices 2^ℓ .. 2^(ℓ+1); the one covering cell
        // `i` spans a dyadic block of `cells / 2^ℓ` cells and adds with
        // `+` in the block's left half and `−` in its right half.
        let mut value = self.coefficients.get(&0).copied().unwrap_or(0.0);
        let mut num_blocks = 1usize;
        while num_blocks < self.cells {
            let block_size = self.cells / num_blocks;
            let block = i / block_size;
            if let Some(&coef) = self.coefficients.get(&((num_blocks + block) as u32)) {
                if i % block_size < block_size / 2 {
                    value += coef;
                } else {
                    value -= coef;
                }
            }
            num_blocks *= 2;
        }
        value
    }

    /// Estimated number of values in the inclusive range `[a, b]`.
    pub fn estimate_range(&self, a: u64, b: u64) -> f64 {
        if b < a || self.total == 0.0 {
            return 0.0;
        }
        let domain_hi = self.lo + self.cell_width * self.cells as u64 - 1;
        if b < self.lo || a > domain_hi {
            return 0.0;
        }
        let a = a.max(self.lo);
        let b = b.min(domain_hi);
        let first = ((a - self.lo) / self.cell_width) as usize;
        let last = ((b - self.lo) / self.cell_width) as usize;
        let mut sum = 0.0;
        for cell in first..=last {
            let mut f = self.cell_value(cell);
            // Partial cell coverage under intra-cell uniformity.
            let cell_lo = self.lo + cell as u64 * self.cell_width;
            let cell_hi = cell_lo + self.cell_width - 1;
            let overlap = (b.min(cell_hi) - a.max(cell_lo) + 1) as f64;
            f *= overlap / self.cell_width as f64;
            sum += f;
        }
        sum.max(0.0)
    }

    /// Range selectivity as a fraction of the total.
    pub fn selectivity(&self, a: u64, b: u64) -> f64 {
        if self.total == 0.0 {
            return 0.0;
        }
        (self.estimate_range(a, b) / self.total).clamp(0.0, 1.0)
    }

    /// Drops the smallest-impact retained coefficient; returns the
    /// squared selectivity error it contributed, or `None` if only the
    /// average remains.
    pub fn drop_one(&mut self) -> Option<f64> {
        let (&idx, &val) = self
            .coefficients
            .iter()
            .filter(|(&i, _)| i != 0)
            .min_by(|a, b| {
                normalized_weight(*a.0, a.1, self.cells)
                    .total_cmp(&normalized_weight(*b.0, b.1, self.cells))
            })?;
        self.coefficients.remove(&idx);
        // The coefficient's L2 contribution to the cell vector, expressed
        // as a selectivity (fraction-of-total) error.
        let err = normalized_weight(idx, &val, self.cells) / self.total.max(1.0);
        Some(err * err)
    }

    /// Incremental maintenance: accounts for one more summarized value.
    /// Only the total is adjusted — the retained coefficients keep the
    /// old shape (a deliberately coarse update; re-gridding would not be
    /// retractable). Selectivities renormalize against the new total.
    pub fn observe(&mut self, _v: u64) {
        self.total += 1.0;
    }

    /// Inverse of [`WaveletSummary::observe`] (total-only).
    pub fn retract(&mut self, _v: u64) {
        self.total = (self.total - 1.0).max(0.0);
    }

    /// Fuses two summaries (Haar is linear, so aligned grids add
    /// coefficient-wise; misaligned grids rebuild over reconstructed
    /// cells).
    pub fn fuse(&self, other: &WaveletSummary) -> WaveletSummary {
        if self.total == 0.0 {
            return other.clone();
        }
        if other.total == 0.0 {
            return self.clone();
        }
        if self.lo == other.lo && self.cell_width == other.cell_width && self.cells == other.cells {
            let mut coefficients = self.coefficients.clone();
            for (&i, &v) in &other.coefficients {
                *coefficients.entry(i).or_insert(0.0) += v;
            }
            return WaveletSummary {
                lo: self.lo,
                cell_width: self.cell_width,
                cells: self.cells,
                coefficients,
                total: self.total + other.total,
            };
        }
        // Misaligned: reconstruct both onto a common grid and re-encode.
        let lo = self.lo.min(other.lo);
        let hi = (self.lo + self.cell_width * self.cells as u64)
            .max(other.lo + other.cell_width * other.cells as u64);
        let cells = self.cells.max(other.cells);
        let cell_width = ((hi - lo) / cells as u64 + 1).max(1);
        let mut grid = vec![0.0f64; cells];
        for src in [self, other] {
            for i in 0..src.cells {
                let f = src.cell_value(i);
                if f <= 0.0 {
                    continue;
                }
                let v = src.lo + i as u64 * src.cell_width + src.cell_width / 2;
                grid[((v - lo) / cell_width) as usize % cells] += f;
            }
        }
        let mut coefficients = haar_decompose(&grid);
        let keep = self.coefficients.len() + other.coefficients.len();
        retain_top(&mut coefficients, cells, keep);
        WaveletSummary {
            lo,
            cell_width,
            cells,
            coefficients,
            total: self.total + other.total,
        }
    }

    /// Prefix selectivity at the retained grid boundaries — the atomic
    /// predicates of the Δ metric for wavelet summaries.
    pub fn prefix_selectivity(&self, hi: u64) -> f64 {
        self.selectivity(0, hi)
    }

    /// Upper domain boundary of each grid cell with retained detail in
    /// its dyadic block — a compact boundary set for moments.
    pub fn boundaries(&self) -> Vec<u64> {
        // Use 16 evenly spaced cell boundaries (full enumeration of 2^k
        // cells would make Δ needlessly expensive).
        let step = (self.cells / 16).max(1);
        (0..self.cells)
            .step_by(step)
            .map(|c| self.lo + (c as u64 + 1) * self.cell_width - 1)
            .collect()
    }
}

/// Standard (unnormalized) Haar decomposition, sparse output.
fn haar_decompose(grid: &[f64]) -> HashMap<u32, f64> {
    let n = grid.len();
    let mut current = grid.to_vec();
    let mut details: Vec<Vec<f64>> = Vec::new();
    while current.len() > 1 {
        let half = current.len() / 2;
        let mut avg = Vec::with_capacity(half);
        let mut det = Vec::with_capacity(half);
        for i in 0..half {
            avg.push((current[2 * i] + current[2 * i + 1]) / 2.0);
            det.push((current[2 * i] - current[2 * i + 1]) / 2.0);
        }
        details.push(det);
        current = avg;
    }
    let mut out = HashMap::new();
    if current[0] != 0.0 {
        out.insert(0u32, current[0]);
    }
    // Coefficient layout: index 1 is the coarsest detail; each level
    // occupies the next power-of-two block (standard Haar ordering).
    let mut idx = 1u32;
    for det in details.iter().rev() {
        for &d in det {
            if d != 0.0 {
                out.insert(idx, d);
            }
            idx += 1;
        }
    }
    let _ = n;
    out
}

/// L2-normalized retention weight of a coefficient (MVW'98): detail at a
/// level covering `span` cells contributes `|c|·sqrt(span)`.
fn normalized_weight(idx: u32, value: &f64, cells: usize) -> f64 {
    if idx == 0 {
        return f64::INFINITY; // the average is never dropped
    }
    // Level of the coefficient: index 1 is level 0 (span = cells), the
    // next two are level 1 (span = cells/2), etc.
    let level = 32 - (idx.leading_zeros() + 1); // floor(log2(idx))
    let span = (cells as f64) / (1u64 << level) as f64;
    value.abs() * span.sqrt()
}

fn retain_top(coefficients: &mut HashMap<u32, f64>, cells: usize, keep: usize) {
    if coefficients.len() <= keep {
        return;
    }
    let mut entries: Vec<(u32, f64)> = coefficients.drain().collect();
    entries.sort_by(|a, b| {
        normalized_weight(b.0, &b.1, cells).total_cmp(&normalized_weight(a.0, &a.1, cells))
    });
    entries.truncate(keep.max(1));
    coefficients.extend(entries);
}

/// Atomic-predicate moments between two wavelet summaries over the union
/// of their boundary sets.
pub fn atomic_moments(a: &WaveletSummary, b: &WaveletSummary) -> (f64, f64, f64) {
    let mut cuts: Vec<u64> = a.boundaries();
    cuts.extend(b.boundaries());
    cuts.sort_unstable();
    cuts.dedup();
    let (mut aa, mut ab, mut bb) = (0.0, 0.0, 0.0);
    for h in cuts {
        let sa = a.prefix_selectivity(h);
        let sb = b.prefix_selectivity(h);
        aa += sa * sa;
        ab += sa * sb;
        bb += sb * sb;
    }
    (aa, ab, bb)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, eps: f64) {
        assert!((a - b).abs() < eps, "{a} vs {b}");
    }

    #[test]
    fn lossless_with_full_coefficients() {
        let values: Vec<u64> = (0..256).map(|i| i * 3 % 101).collect();
        let w = WaveletSummary::build(&values, usize::MAX, 7);
        close(w.estimate_range(0, 200), 256.0, 1e-6);
        // Exact on individual points when nothing was dropped and the
        // cell width is 1.
        let hits = values.iter().filter(|&&v| v == 7).count() as f64;
        close(w.estimate_range(7, 7), hits, 1e-6);
    }

    #[test]
    fn empty_input() {
        let w = WaveletSummary::build(&[], 16, 8);
        assert_eq!(w.total(), 0.0);
        assert_eq!(w.selectivity(0, 100), 0.0);
        assert_eq!(w.num_coefficients(), 0);
    }

    #[test]
    fn truncation_keeps_total_roughly() {
        let values: Vec<u64> = (0..1000).map(|i| (i * i) % 997).collect();
        let w = WaveletSummary::build(&values, 24, DEFAULT_LEVELS);
        assert!(w.num_coefficients() <= 24);
        // The overall average is always retained, so the full-range sum
        // is exact.
        close(w.estimate_range(0, 2000), 1000.0, 1e-6);
    }

    #[test]
    fn range_estimates_reasonable_after_truncation() {
        let values: Vec<u64> = (0..2000).map(|i| i % 500).collect();
        let w = WaveletSummary::build(&values, 32, DEFAULT_LEVELS);
        // Uniform distribution: half the range ≈ half the mass. Wide
        // tolerance: 32 coefficients on a 1024-cell grid is coarse.
        let s = w.selectivity(0, 249);
        close(s, 0.5, 0.15);
    }

    #[test]
    fn skewed_distribution_detected() {
        let mut values = vec![10u64; 900];
        values.extend((0..100).map(|i| 500 + i));
        let w = WaveletSummary::build(&values, 48, DEFAULT_LEVELS);
        assert!(w.selectivity(0, 100) > 0.7, "{}", w.selectivity(0, 100));
        assert!(w.selectivity(400, 700) < 0.3);
    }

    #[test]
    fn drop_one_reduces_size() {
        let values: Vec<u64> = (0..500).map(|i| i % 97).collect();
        let mut w = WaveletSummary::build(&values, 32, 8);
        let n = w.num_coefficients();
        let before = w.size_bytes();
        let err = w.drop_one().unwrap();
        assert!(err >= 0.0);
        assert_eq!(w.num_coefficients(), n - 1);
        assert!(w.size_bytes() < before);
    }

    #[test]
    fn drop_everything_leaves_average() {
        let values = vec![5u64, 5, 5, 100];
        let mut w = WaveletSummary::build(&values, 8, 4);
        while w.drop_one().is_some() {}
        assert_eq!(w.num_coefficients(), 1);
        close(w.estimate_range(0, 200), 4.0, 1e-6);
    }

    #[test]
    fn aligned_fusion_is_exact_sum() {
        let a: Vec<u64> = (0..100).collect();
        let b: Vec<u64> = (0..100).collect();
        let wa = WaveletSummary::build(&a, usize::MAX, 7);
        let wb = WaveletSummary::build(&b, usize::MAX, 7);
        let f = wa.fuse(&wb);
        close(f.total(), 200.0, 1e-9);
        close(f.estimate_range(0, 49), 100.0, 1e-6);
    }

    #[test]
    fn misaligned_fusion_preserves_mass() {
        let a: Vec<u64> = (0..100).collect();
        let b: Vec<u64> = (5000..5100).collect();
        let wa = WaveletSummary::build(&a, 32, 7);
        let wb = WaveletSummary::build(&b, 32, 7);
        let f = wa.fuse(&wb);
        close(f.total(), 200.0, 1e-9);
        close(f.estimate_range(0, 10_000), 200.0, 2.0);
    }

    #[test]
    fn fusion_with_empty() {
        let a: Vec<u64> = (0..10).collect();
        let wa = WaveletSummary::build(&a, 8, 6);
        let we = WaveletSummary::build(&[], 8, 6);
        assert_eq!(wa.fuse(&we), wa);
        assert_eq!(we.fuse(&wa), wa);
    }

    #[test]
    fn moments_identity() {
        let values: Vec<u64> = (0..200).map(|i| i % 71).collect();
        let w = WaveletSummary::build(&values, 24, 8);
        let (aa, ab, bb) = atomic_moments(&w, &w);
        close(aa, ab, 1e-9);
        close(ab, bb, 1e-9);
    }

    #[test]
    fn selectivity_in_unit_range_even_with_negative_cells() {
        // Truncation can make individual reconstructed cells negative;
        // selectivity must stay clamped.
        let mut values = vec![0u64; 500];
        values.extend([1000u64; 3]);
        let w = WaveletSummary::build(&values, 4, DEFAULT_LEVELS);
        for (a, b) in [(0, 10), (990, 1010), (0, 5000), (400, 600)] {
            let s = w.selectivity(a, b);
            assert!((0.0..=1.0).contains(&s), "[{a},{b}] → {s}");
        }
    }
}
