//! `xcluster` — build, inspect, and query XCluster synopses from the
//! command line.
//!
//! ```text
//! xcluster build <doc.xml> -o <synopsis.xcs> [--b-str BYTES] [--b-val BYTES]
//!                [--threads N] [--type label=numeric|string|text]... [--stats]
//!                [--profile] [--profile-chrome out.json]
//! xcluster info <synopsis.xcs>
//! xcluster quality <doc.xml> [--b-str N] [--b-val N] [--threads N]
//!                  [--queries N] [--seed N] [--top N] [--json] [--type label=kind]...
//! xcluster estimate <synopsis.xcs> [--threads N] "<twig>"...
//! xcluster evaluate <doc.xml> "<twig>"...       (exact counts)
//! xcluster compare <doc.xml> <synopsis.xcs> "<twig>"...
//! xcluster stats <doc.xml> ["<twig>"...] [--json|--prometheus]
//! xcluster serve <synopsis.xcs> [--addr HOST:PORT] [--workers N] [--estimate-threads N]
//!                [--read-timeout SECS] [--max-head-bytes N] [--max-body-bytes N]
//!                [--journal-capacity N] [--journal-sample-ppm N] [--journal-seed N]
//!                [--slow-capacity N] [--shadow doc.xml] [--shadow-sample-ppm N]
//!                [--shadow-sanity F] [--shadow-threshold F] [--shadow-queue N]
//!                [--type label=kind]...
//! xcluster loadgen <addr> [--qps F] [--total N] [--batch N] [--seed N]
//!                  [--verify syn.xcs] [--shutdown] [--queries-file F] "<twig>"...
//! xcluster replay <journal.jsonl> <synopsis.xcs> [--threads N]
//! xcluster apply-delta <synopsis.xcs> <doc.xml> -o <out.xcs> [--churn F]
//!                      [--insert-fraction F] [--max-subtree N] [--seed N]
//!                      [--steps N] [--b-str N] [--b-val N] [--write-doc out.xml]
//!                      [--type label=kind]...
//! ```
//!
//! `apply-delta` maintains a saved synopsis incrementally: it generates a
//! seeded churn stream against the document (subtree insertions copied
//! from the document with jittered numeric values, disjoint subtree
//! deletions), applies each delta in place under the given byte budgets,
//! and writes the updated — version-bumped — artifact. A server pointed
//! at that artifact picks it up via `POST /reload` with zero downtime.
//! `--write-doc` also saves the mutated document, so the refreshed
//! synopsis can be validated against its ground truth with `compare`.
//!
//! The twig syntax is documented in `xcluster_query::parser` — e.g.
//! `//movie[year>2000]{/title}{/cast/actor/name}`.
//!
//! Global flags: `--verbose`/`-v` raises the log level to debug, `-q` /
//! `--quiet` silences everything below errors (the `XCLUSTER_LOG` env
//! var is the default). `build --stats` and the `stats` subcommand dump
//! the `xcluster-obs` metric registry (phase timings, merge and pool
//! counters, estimation probes).
//!
//! `--threads N` fans candidate scoring (`build`) or the query batch
//! (`estimate`) out over `N` workers; `0` means every available core.
//! Results are byte-identical to `--threads 1` at any thread count.

use std::process::ExitCode;
use xcluster_core::build::{try_build_synopsis, BuildConfig};
use xcluster_core::codec::{decode_synopsis, encode_synopsis};
use xcluster_core::estimate;
use xcluster_core::reference::{reference_synopsis, ReferenceConfig};
use xcluster_core::Synopsis;
use xcluster_obs::{info, Level};
use xcluster_query::{evaluate, parse_twig, EvalIndex};
use xcluster_xml::{parse_with, ParseOptions, ValueType, XmlTree};

fn main() -> ExitCode {
    // Global flags are position-independent and stripped before dispatch.
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let verbose = take_flag(&mut args, &["--verbose", "-v"]);
    let quiet = take_flag(&mut args, &["--quiet", "-q"]);
    if quiet {
        xcluster_obs::log::set_level(Some(Level::Error));
    } else if verbose {
        xcluster_obs::log::set_level(Some(Level::Debug));
    }
    let result = match args.first().map(|s| s.as_str()) {
        Some("build") => cmd_build(&args[1..]),
        Some("info") => cmd_info(&args[1..]),
        Some("quality") => cmd_quality(&args[1..]),
        Some("estimate") => cmd_estimate(&args[1..]),
        Some("explain") => cmd_explain(&args[1..]),
        Some("evaluate") => cmd_evaluate(&args[1..]),
        Some("compare") => cmd_compare(&args[1..]),
        Some("stats") => cmd_stats(&args[1..]),
        Some("trace") => cmd_trace(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("loadgen") => cmd_loadgen(&args[1..]),
        Some("replay") => cmd_replay(&args[1..]),
        Some("apply-delta") => cmd_apply_delta(&args[1..]),
        _ => {
            eprintln!(
                "usage: xcluster [--verbose|-q] <build|info|estimate|evaluate|compare|stats|trace> ...\n\
                 \n\
                 build <doc.xml> -o <out.xcs> [--b-str N] [--b-val N] [--threads N] [--type label=kind]... [--stats]\n\
                 \x20     [--profile] [--profile-chrome out.json]\n\
                 info <synopsis.xcs>\n\
                 quality <doc.xml> [--b-str N] [--b-val N] [--threads N] [--queries N] [--seed N] [--top N] [--json] [--type label=kind]...\n\
                 estimate <synopsis.xcs> [--threads N] \"<twig>\"...\n\
                 explain <synopsis.xcs> \"<twig>\"...\n\
                 evaluate <doc.xml> \"<twig>\"...\n\
                 compare <doc.xml> <synopsis.xcs> \"<twig>\"...\n\
                 stats <doc.xml> [\"<twig>\"...] [--json|--prometheus]\n\
                 trace <doc.xml> \"<twig>\"... [--chrome out.json] [--b-str N] [--b-val N] [--type label=kind]...\n\
                 serve <synopsis.xcs> [--addr HOST:PORT] [--workers N] [--estimate-threads N]\n\
                 \x20     [--read-timeout SECS] [--max-head-bytes N] [--max-body-bytes N]\n\
                 \x20     [--journal-capacity N] [--journal-sample-ppm N] [--journal-seed N] [--slow-capacity N]\n\
                 \x20     [--shadow doc.xml] [--shadow-sample-ppm N] [--shadow-sanity F] [--shadow-threshold F]\n\
                 \x20     [--shadow-queue N] [--type label=kind]...\n\
                 loadgen <addr> [--qps F] [--total N] [--batch N] [--seed N] [--verify syn.xcs] [--shutdown] [--queries-file F] \"<twig>\"...\n\
                 replay <journal.jsonl> <synopsis.xcs> [--threads N]\n\
                 apply-delta <synopsis.xcs> <doc.xml> -o <out.xcs> [--churn F] [--insert-fraction F]\n\
                 \x20     [--max-subtree N] [--seed N] [--steps N] [--b-str N] [--b-val N] [--write-doc out.xml] [--type label=kind]..."
            );
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Removes every occurrence of the given aliases; true if any was seen.
fn take_flag(args: &mut Vec<String>, aliases: &[&str]) -> bool {
    let before = args.len();
    args.retain(|a| !aliases.contains(&a.as_str()));
    args.len() != before
}

type AnyError = Box<dyn std::error::Error>;

/// Writes machine-readable output as a single locked, flushed write so
/// exported JSON/tables can never interleave with concurrently emitted
/// log lines (logs go to stderr, exports to stdout).
fn write_stdout(s: &str) -> Result<(), AnyError> {
    use std::io::Write as _;
    let mut out = std::io::stdout().lock();
    out.write_all(s.as_bytes())?;
    out.flush()?;
    Ok(())
}

fn load_document(path: &str, type_opts: &[(String, ValueType)]) -> Result<XmlTree, AnyError> {
    let xml = std::fs::read_to_string(path)?;
    let mut opts = ParseOptions::default();
    for (label, ty) in type_opts {
        opts = opts.with_type(label, *ty);
    }
    Ok(parse_with(&xml, &opts)?)
}

fn parse_type_opt(spec: &str) -> Result<(String, ValueType), AnyError> {
    let (label, kind) = spec
        .split_once('=')
        .ok_or("expected --type label=numeric|string|text|none")?;
    let ty = match kind {
        "numeric" => ValueType::Numeric,
        "string" => ValueType::String,
        "text" => ValueType::Text,
        "none" => ValueType::None,
        other => return Err(format!("unknown value type {other:?}").into()),
    };
    Ok((label.to_string(), ty))
}

fn cmd_build(args: &[String]) -> Result<(), AnyError> {
    let mut input: Option<&str> = None;
    let mut output: Option<&str> = None;
    let mut b_str = 10 * 1024;
    let mut b_val = 150 * 1024;
    let mut threads = 1usize;
    let mut stats = false;
    let mut profile = false;
    let mut profile_chrome: Option<&str> = None;
    let mut types: Vec<(String, ValueType)> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "-o" | "--output" => {
                output = Some(&args[i + 1]);
                i += 2;
            }
            "--b-str" => {
                b_str = args[i + 1].parse()?;
                i += 2;
            }
            "--b-val" => {
                b_val = args[i + 1].parse()?;
                i += 2;
            }
            "--threads" => {
                threads = args[i + 1].parse()?;
                i += 2;
            }
            "--type" => {
                types.push(parse_type_opt(&args[i + 1])?);
                i += 2;
            }
            "--stats" => {
                stats = true;
                i += 1;
            }
            "--profile" => {
                profile = true;
                i += 1;
            }
            "--profile-chrome" => {
                profile_chrome = Some(
                    args.get(i + 1)
                        .ok_or("--profile-chrome needs an output file")?,
                );
                i += 2;
            }
            other if input.is_none() => {
                input = Some(other);
                i += 1;
            }
            other => return Err(format!("unexpected argument {other:?}").into()),
        }
    }
    let input = input.ok_or("missing input document")?;
    let output = output.ok_or("missing -o <output.xcs>")?;
    let profiling = profile || profile_chrome.is_some();
    if profiling {
        // Profiling rides on the span layer; force it on so the flags
        // work even when metrics were silenced via the environment.
        xcluster_obs::set_enabled(true);
        xcluster_obs::profile::set_profiling(true);
        xcluster_obs::profile::reset();
    }
    let doc = load_document(input, &types)?;
    info!("cli", "parsed {} elements from {input}", doc.len());
    let reference = reference_synopsis(&doc, &ReferenceConfig::default());
    info!(
        "cli",
        "reference synopsis: {} nodes ({} summarized), {} bytes",
        reference.num_nodes(),
        reference.num_value_nodes(),
        reference.total_bytes()
    );
    let synopsis = try_build_synopsis(
        reference,
        &BuildConfig {
            b_str,
            b_val,
            threads,
            ..BuildConfig::default()
        },
    )?;
    let bytes = encode_synopsis(&synopsis);
    std::fs::write(output, &bytes)?;
    info!(
        "cli",
        "wrote {output}: {} nodes, {} struct + {} value bytes ({} on disk)",
        synopsis.num_nodes(),
        synopsis.structural_bytes(),
        synopsis.value_bytes(),
        bytes.len()
    );
    if stats {
        write_stdout(&xcluster_obs::export::to_table(&xcluster_obs::snapshot()))?;
    }
    if profiling {
        let p = xcluster_obs::profile::snapshot();
        xcluster_obs::profile::set_profiling(false);
        if p.dropped() > 0 {
            info!(
                "cli",
                "profile table overflow: {} frame(s) dropped",
                p.dropped()
            );
        }
        if let Some(path) = profile_chrome {
            std::fs::write(path, p.chrome_json())?;
            info!("cli", "wrote chrome trace profile to {path}");
        }
        if profile {
            // Collapsed stacks on stdout: pipe straight into
            // `flamegraph.pl` (or any FlameGraph-format consumer).
            write_stdout(&p.collapsed())?;
        }
    }
    Ok(())
}

/// Builds a synopsis from the document under the given budgets, runs a
/// seeded positive workload through the estimator with per-cluster
/// error attribution on, and prints the synopsis-quality report — the
/// offline twin of the server's `GET /debug/synopsis`.
fn cmd_quality(args: &[String]) -> Result<(), AnyError> {
    let mut input: Option<&str> = None;
    let mut b_str = 10 * 1024;
    let mut b_val = 150 * 1024;
    let mut threads = 1usize;
    let mut num_queries = 200usize;
    let mut seed = 42u64;
    let mut top = 20usize;
    let mut json = false;
    let mut types: Vec<(String, ValueType)> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--b-str" => {
                b_str = args.get(i + 1).ok_or("--b-str needs a value")?.parse()?;
                i += 2;
            }
            "--b-val" => {
                b_val = args.get(i + 1).ok_or("--b-val needs a value")?.parse()?;
                i += 2;
            }
            "--threads" => {
                threads = args.get(i + 1).ok_or("--threads needs a value")?.parse()?;
                i += 2;
            }
            "--queries" => {
                num_queries = args.get(i + 1).ok_or("--queries needs a value")?.parse()?;
                i += 2;
            }
            "--seed" => {
                seed = args.get(i + 1).ok_or("--seed needs a value")?.parse()?;
                i += 2;
            }
            "--top" => {
                top = args.get(i + 1).ok_or("--top needs a value")?.parse()?;
                i += 2;
            }
            "--json" => {
                json = true;
                i += 1;
            }
            "--type" => {
                types.push(parse_type_opt(&args[i + 1])?);
                i += 2;
            }
            other if input.is_none() => {
                input = Some(other);
                i += 1;
            }
            other => return Err(format!("unexpected argument {other:?}").into()),
        }
    }
    let input = input.ok_or("missing input document")?;
    let doc = load_document(input, &types)?;
    info!("cli", "parsed {} elements from {input}", doc.len());
    let reference = reference_synopsis(&doc, &ReferenceConfig::default());
    let synopsis = try_build_synopsis(
        reference,
        &BuildConfig {
            b_str,
            b_val,
            threads,
            ..BuildConfig::default()
        },
    )?;
    let index = EvalIndex::build(&doc);
    let workload = xcluster_query::workload::generate_positive(
        &doc,
        &index,
        &xcluster_query::workload::WorkloadConfig {
            num_queries,
            seed,
            ..Default::default()
        },
    );
    let eval = xcluster_core::evaluate_workload(
        &synopsis,
        &workload,
        &xcluster_core::EvalOptions::default()
            .with_threads(threads)
            .with_attribution(true),
    );
    info!(
        "cli",
        "workload of {} queries: avg rel.err {:.4}",
        workload.queries.len(),
        eval.report.overall_rel
    );
    let report = xcluster_core::QualityReport::measure_with(&synopsis, eval.attribution.as_ref());
    if json {
        write_stdout(&report.to_json(top))?;
        write_stdout("\n")?;
    } else {
        write_stdout(&report.render(top))?;
    }
    Ok(())
}

fn load_synopsis(path: &str) -> Result<Synopsis, AnyError> {
    let bytes = std::fs::read(path)?;
    Ok(decode_synopsis(&bytes)?)
}

fn cmd_info(args: &[String]) -> Result<(), AnyError> {
    let path = args.first().ok_or("missing synopsis file")?;
    let s = load_synopsis(path)?;
    println!("version:          {}", s.version());
    println!("nodes:            {}", s.num_nodes());
    println!("edges:            {}", s.num_edges());
    println!("value summaries:  {}", s.num_value_nodes());
    println!("structural bytes: {}", s.structural_bytes());
    println!("value bytes:      {}", s.value_bytes());
    println!("labels:           {}", s.labels().len());
    println!("terms:            {}", s.terms().len());
    println!("max depth:        {}", s.max_depth());
    // Top clusters by extent.
    let mut by_count: Vec<_> = s.live_nodes().collect();
    by_count.sort_by(|&a, &b| s.node(b).count.total_cmp(&s.node(a).count));
    println!("largest clusters:");
    for id in by_count.into_iter().take(8) {
        let n = s.node(id);
        println!(
            "  {:24} {:>10.0} elements  ({}{})",
            s.label_str(id),
            n.count,
            n.vtype,
            if n.vsumm.is_some() {
                ", summarized"
            } else {
                ""
            }
        );
    }
    Ok(())
}

fn cmd_estimate(args: &[String]) -> Result<(), AnyError> {
    let mut threads = 1usize;
    let mut positional: Vec<&String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--threads" {
            threads = args.get(i + 1).ok_or("--threads needs a value")?.parse()?;
            i += 2;
        } else {
            positional.push(&args[i]);
            i += 1;
        }
    }
    let path = positional.first().ok_or("missing synopsis file")?;
    let queries = &positional[1..];
    if queries.is_empty() {
        return Err("no queries given".into());
    }
    let s = load_synopsis(path)?;
    let twigs = queries
        .iter()
        .map(|q| parse_twig(q, s.terms()))
        .collect::<Result<Vec<_>, _>>()?;
    let estimates = xcluster_core::Estimator::new(&s)
        .with_threads(threads)
        .estimate_batch(&twigs);
    for (q, est) in queries.iter().zip(estimates) {
        println!("{est:12.2}  {q}");
    }
    Ok(())
}

fn cmd_explain(args: &[String]) -> Result<(), AnyError> {
    let path = args.first().ok_or("missing synopsis file")?;
    let queries = &args[1..];
    if queries.is_empty() {
        return Err("no queries given".into());
    }
    let s = load_synopsis(path)?;
    for q in queries {
        let twig = parse_twig(q, s.terms())?;
        let ex = xcluster_core::explain::explain(&s, &twig);
        print!("{}", ex.render(&s, &twig));
    }
    Ok(())
}

fn cmd_evaluate(args: &[String]) -> Result<(), AnyError> {
    let path = args.first().ok_or("missing document file")?;
    let queries = &args[1..];
    if queries.is_empty() {
        return Err("no queries given".into());
    }
    let doc = load_document(path, &[])?;
    let index = EvalIndex::build(&doc);
    for q in queries {
        let twig = parse_twig(q, doc.terms())?;
        println!("{:12.0}  {q}", evaluate(&twig, &doc, &index));
    }
    Ok(())
}

fn cmd_compare(args: &[String]) -> Result<(), AnyError> {
    let doc_path = args.first().ok_or("missing document file")?;
    let syn_path = args.get(1).ok_or("missing synopsis file")?;
    let queries = &args[2..];
    if queries.is_empty() {
        return Err("no queries given".into());
    }
    let doc = load_document(doc_path, &[])?;
    let index = EvalIndex::build(&doc);
    let s = load_synopsis(syn_path)?;
    println!("{:>12} {:>12} {:>9}  query", "estimate", "true", "rel.err");
    for q in queries {
        let twig_s = parse_twig(q, s.terms())?;
        let twig_d = parse_twig(q, doc.terms())?;
        let est = estimate(&s, &twig_s);
        let truth = evaluate(&twig_d, &doc, &index);
        let rel = (est - truth).abs() / truth.max(1.0);
        println!("{est:12.2} {truth:12.0} {:8.1}%  {q}", rel * 100.0);
    }
    Ok(())
}

/// Exercises the full pipeline on a document — reference synopsis,
/// default-budget build, exact evaluation and estimation of any given
/// twigs — then dumps the metric registry (table, or JSON with
/// `--json`). One-shot observability: what did the system do and where
/// did the time go?
fn cmd_stats(args: &[String]) -> Result<(), AnyError> {
    let mut json = false;
    let mut prometheus = false;
    let mut positional: Vec<&String> = Vec::new();
    for a in args {
        if a == "--json" {
            json = true;
        } else if a == "--prometheus" {
            prometheus = true;
        } else {
            positional.push(a);
        }
    }
    let doc_path = positional.first().ok_or("missing document file")?;
    let queries = &positional[1..];
    let doc = load_document(doc_path, &[])?;
    info!("cli", "parsed {} elements from {doc_path}", doc.len());
    let reference = reference_synopsis(&doc, &ReferenceConfig::default());
    let synopsis = try_build_synopsis(reference, &BuildConfig::default())?;
    let index = EvalIndex::build(&doc);
    for q in queries {
        let twig = parse_twig(q, doc.terms())?;
        let twig_s = parse_twig(q, synopsis.terms())?;
        let est = estimate(&synopsis, &twig_s);
        let truth = evaluate(&twig, &doc, &index);
        info!("cli", "{q}: estimate {est:.2}, true {truth:.0}");
    }
    let snap = xcluster_obs::snapshot();
    let rendered = if prometheus {
        xcluster_obs::expose::render(&snap, xcluster_obs::expose::DEFAULT_NAMESPACE)
    } else if json {
        xcluster_obs::export::to_json(&snap)
    } else {
        xcluster_obs::export::to_table(&snap)
    };
    write_stdout(&rendered)?;
    Ok(())
}

/// Builds a synopsis from the document, runs each query through both the
/// estimator and the exact evaluator with per-query trace capture on,
/// and prints the span trees (estimate alongside ground truth). With
/// `--chrome <out.json>`, additionally writes every captured trace as a
/// Chrome trace-event file loadable in Perfetto / `chrome://tracing`.
fn cmd_trace(args: &[String]) -> Result<(), AnyError> {
    let mut input: Option<&str> = None;
    let mut chrome: Option<&str> = None;
    let mut b_str = 10 * 1024;
    let mut b_val = 150 * 1024;
    let mut types: Vec<(String, ValueType)> = Vec::new();
    let mut queries: Vec<&String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--chrome" => {
                chrome = Some(&args[i + 1]);
                i += 2;
            }
            "--b-str" => {
                b_str = args[i + 1].parse()?;
                i += 2;
            }
            "--b-val" => {
                b_val = args[i + 1].parse()?;
                i += 2;
            }
            "--type" => {
                types.push(parse_type_opt(&args[i + 1])?);
                i += 2;
            }
            _ if input.is_none() => {
                input = Some(&args[i]);
                i += 1;
            }
            _ => {
                queries.push(&args[i]);
                i += 1;
            }
        }
    }
    let input = input.ok_or("missing input document")?;
    if queries.is_empty() {
        return Err("no queries given".into());
    }
    let doc = load_document(input, &types)?;
    let reference = reference_synopsis(&doc, &ReferenceConfig::default());
    let synopsis = try_build_synopsis(
        reference,
        &BuildConfig {
            b_str,
            b_val,
            ..BuildConfig::default()
        },
    )?;
    let index = EvalIndex::build(&doc);
    xcluster_obs::trace::set_capture(true);
    // Size the ring so a long query list cannot evict earlier traces
    // (each query records one estimate trace and one eval trace).
    xcluster_obs::trace::set_ring_capacity(2 * queries.len().max(32));
    let mut all = Vec::new();
    for q in &queries {
        let twig_s = parse_twig(q, synopsis.terms())?;
        let twig_d = parse_twig(q, doc.terms())?;
        let est = estimate(&synopsis, &twig_s);
        let truth = evaluate(&twig_d, &doc, &index);
        let traces = xcluster_obs::trace::drain();
        println!("query: {q}");
        println!("  estimate {est:.3}   true {truth:.0}");
        for t in &traces {
            print!("{}", t.render_tree());
        }
        println!();
        all.extend(traces);
    }
    if let Some(path) = chrome {
        std::fs::write(path, xcluster_obs::trace::chrome_trace_json(&all))?;
        info!("cli", "wrote {} trace(s) to {path}", all.len());
    }
    Ok(())
}

/// Serves a saved synopsis over HTTP. The listening address is printed
/// to stdout immediately (flushed, so scripts can parse the ephemeral
/// port); the synopsis loads on a background thread and `/readyz`
/// reports 503 until it is installed.
fn cmd_serve(args: &[String]) -> Result<(), AnyError> {
    let mut path: Option<&str> = None;
    let mut cfg = xcluster_serve::ServerConfig::default();
    let mut shadow_cfg = xcluster_serve::ShadowConfig::default();
    let mut shadow_doc: Option<&str> = None;
    let mut types: Vec<(String, ValueType)> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--addr" => {
                cfg.addr = args.get(i + 1).ok_or("--addr needs a value")?.clone();
                i += 2;
            }
            "--workers" => {
                cfg.workers = args.get(i + 1).ok_or("--workers needs a value")?.parse()?;
                i += 2;
            }
            "--estimate-threads" => {
                cfg.estimate_threads = args
                    .get(i + 1)
                    .ok_or("--estimate-threads needs a value")?
                    .parse()?;
                i += 2;
            }
            "--read-timeout" => {
                cfg.read_timeout_secs = args
                    .get(i + 1)
                    .ok_or("--read-timeout needs seconds")?
                    .parse()?;
                i += 2;
            }
            "--max-head-bytes" => {
                cfg.max_head_bytes = args
                    .get(i + 1)
                    .ok_or("--max-head-bytes needs a value")?
                    .parse()?;
                i += 2;
            }
            "--max-body-bytes" => {
                cfg.max_body_bytes = args
                    .get(i + 1)
                    .ok_or("--max-body-bytes needs a value")?
                    .parse()?;
                i += 2;
            }
            "--journal-capacity" => {
                cfg.journal_capacity = args
                    .get(i + 1)
                    .ok_or("--journal-capacity needs a value")?
                    .parse()?;
                i += 2;
            }
            "--journal-sample-ppm" => {
                cfg.journal_sample_ppm = args
                    .get(i + 1)
                    .ok_or("--journal-sample-ppm needs a value")?
                    .parse()?;
                i += 2;
            }
            "--journal-seed" => {
                cfg.journal_seed = args
                    .get(i + 1)
                    .ok_or("--journal-seed needs a value")?
                    .parse()?;
                i += 2;
            }
            "--slow-capacity" => {
                cfg.slow_capacity = args
                    .get(i + 1)
                    .ok_or("--slow-capacity needs a value")?
                    .parse()?;
                i += 2;
            }
            "--shadow" => {
                shadow_doc = Some(args.get(i + 1).ok_or("--shadow needs a document")?);
                i += 2;
            }
            "--shadow-sample-ppm" => {
                cfg.shadow_sample_ppm = args
                    .get(i + 1)
                    .ok_or("--shadow-sample-ppm needs a value")?
                    .parse()?;
                i += 2;
            }
            "--shadow-seed" => {
                cfg.shadow_seed = args
                    .get(i + 1)
                    .ok_or("--shadow-seed needs a value")?
                    .parse()?;
                i += 2;
            }
            "--shadow-sanity" => {
                shadow_cfg.sanity_bound = args
                    .get(i + 1)
                    .ok_or("--shadow-sanity needs a value")?
                    .parse()?;
                i += 2;
            }
            "--shadow-threshold" => {
                shadow_cfg.drift_threshold = args
                    .get(i + 1)
                    .ok_or("--shadow-threshold needs a value")?
                    .parse()?;
                i += 2;
            }
            "--shadow-queue" => {
                shadow_cfg.queue = args
                    .get(i + 1)
                    .ok_or("--shadow-queue needs a value")?
                    .parse()?;
                i += 2;
            }
            "--type" => {
                types.push(parse_type_opt(&args[i + 1])?);
                i += 2;
            }
            other if path.is_none() => {
                path = Some(other);
                i += 1;
            }
            other => return Err(format!("unexpected argument {other:?}").into()),
        }
    }
    let path = path.ok_or("missing synopsis file")?.to_string();
    let server = xcluster_serve::Server::bind(&cfg)?;
    // POST /reload re-reads this artifact and swaps it in live.
    server.set_synopsis_path(&path);
    write_stdout(&format!("listening on http://{}\n", server.local_addr()))?;
    std::thread::scope(|scope| -> Result<(), AnyError> {
        // Load in the background so the listener (and /healthz) is up
        // immediately; /readyz flips once set_synopsis installs it. A
        // failed load shuts the accept loop down instead of leaving a
        // permanently-unready server running. The shadow document (when
        // given) loads on the same thread after the synopsis — shadow
        // evaluation is best-effort monitoring, never startup-critical.
        let loader = scope.spawn(|| -> Result<(), String> {
            match load_synopsis(&path) {
                Ok(synopsis) => {
                    server.set_synopsis(synopsis);
                }
                Err(e) => {
                    server.state().request_shutdown();
                    return Err(e.to_string());
                }
            }
            if let Some(doc_path) = shadow_doc {
                match load_document(doc_path, &types) {
                    Ok(doc) => {
                        server.set_shadow(doc, shadow_cfg.clone());
                        info!("cli", "shadow accuracy monitor attached doc={doc_path}");
                    }
                    Err(e) => {
                        server.state().request_shutdown();
                        return Err(e.to_string());
                    }
                }
            }
            Ok(())
        });
        server.run()?;
        match loader.join() {
            Ok(r) => r.map_err(AnyError::from),
            Err(panic) => std::panic::resume_unwind(panic),
        }
    })
}

/// Re-runs an exported wide-event journal (`GET /debug/journal`)
/// through an in-process [`xcluster_core::Estimator`] on the same
/// synopsis and asserts every recorded estimate reproduces **bitwise**
/// — the end-to-end determinism check behind the CI replay leg.
fn cmd_replay(args: &[String]) -> Result<(), AnyError> {
    let mut threads = 1usize;
    let mut positional: Vec<&String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--threads" {
            threads = args.get(i + 1).ok_or("--threads needs a value")?.parse()?;
            i += 2;
        } else {
            positional.push(&args[i]);
            i += 1;
        }
    }
    let journal_path = positional.first().ok_or("missing journal.jsonl")?;
    let syn_path = positional.get(1).ok_or("missing synopsis file")?;
    let records = xcluster_obs::journal::parse_jsonl(&std::fs::read_to_string(journal_path)?)?;
    if records.is_empty() {
        return Err("journal is empty — nothing to replay".into());
    }
    let s = load_synopsis(syn_path)?;
    let twigs = records
        .iter()
        .map(|r| parse_twig(&r.query, s.terms()))
        .collect::<Result<Vec<_>, _>>()?;
    let estimates = xcluster_core::Estimator::new(&s)
        .with_threads(threads)
        .estimate_batch(&twigs);
    let mut mismatches = 0usize;
    for (rec, est) in records.iter().zip(&estimates) {
        if est.to_bits() != rec.estimate.to_bits() {
            mismatches += 1;
            if mismatches <= 10 {
                eprintln!(
                    "mismatch seq={} query={:?}: recorded {} replayed {est}",
                    rec.seq, rec.query, rec.estimate
                );
            }
        }
    }
    write_stdout(&format!(
        "replayed {} journal record(s): {mismatches} mismatch(es)\n",
        records.len()
    ))?;
    if mismatches > 0 {
        return Err(format!("{mismatches} estimate(s) did not reproduce bitwise").into());
    }
    Ok(())
}

/// Maintains a saved synopsis incrementally: generates a seeded churn
/// stream against the document, applies every delta to the synopsis in
/// place (`apply_delta`), and writes the updated, version-bumped
/// artifact. See the module docs for the workflow.
fn cmd_apply_delta(args: &[String]) -> Result<(), AnyError> {
    let mut syn_path: Option<&str> = None;
    let mut doc_path: Option<&str> = None;
    let mut output: Option<&str> = None;
    let mut write_doc: Option<&str> = None;
    let mut delta_cfg = xcluster_datagen::deltas::DeltaConfig::default();
    let mut steps = 1usize;
    let mut b_str = 10 * 1024;
    let mut b_val = 150 * 1024;
    let mut types: Vec<(String, ValueType)> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "-o" | "--output" => {
                output = Some(args.get(i + 1).ok_or("-o needs a file")?);
                i += 2;
            }
            "--churn" => {
                delta_cfg.churn = args.get(i + 1).ok_or("--churn needs a value")?.parse()?;
                i += 2;
            }
            "--insert-fraction" => {
                delta_cfg.insert_fraction = args
                    .get(i + 1)
                    .ok_or("--insert-fraction needs a value")?
                    .parse()?;
                i += 2;
            }
            "--max-subtree" => {
                delta_cfg.max_subtree = args
                    .get(i + 1)
                    .ok_or("--max-subtree needs a value")?
                    .parse()?;
                i += 2;
            }
            "--seed" => {
                delta_cfg.seed = args.get(i + 1).ok_or("--seed needs a value")?.parse()?;
                i += 2;
            }
            "--steps" => {
                steps = args.get(i + 1).ok_or("--steps needs a value")?.parse()?;
                i += 2;
            }
            "--b-str" => {
                b_str = args.get(i + 1).ok_or("--b-str needs a value")?.parse()?;
                i += 2;
            }
            "--b-val" => {
                b_val = args.get(i + 1).ok_or("--b-val needs a value")?.parse()?;
                i += 2;
            }
            "--write-doc" => {
                write_doc = Some(args.get(i + 1).ok_or("--write-doc needs a file")?);
                i += 2;
            }
            "--type" => {
                types.push(parse_type_opt(&args[i + 1])?);
                i += 2;
            }
            other if syn_path.is_none() => {
                syn_path = Some(other);
                i += 1;
            }
            other if doc_path.is_none() => {
                doc_path = Some(other);
                i += 1;
            }
            other => return Err(format!("unexpected argument {other:?}").into()),
        }
    }
    let syn_path = syn_path.ok_or("missing synopsis file")?;
    let doc_path = doc_path.ok_or("missing document file")?;
    let output = output.ok_or("missing -o <output.xcs>")?;
    let mut synopsis = load_synopsis(syn_path)?;
    let mut doc = load_document(doc_path, &types)?;
    let cfg = BuildConfig {
        b_str,
        b_val,
        ..BuildConfig::default()
    };
    for step in 0..steps {
        let step_cfg = xcluster_datagen::deltas::DeltaConfig {
            seed: delta_cfg.seed.wrapping_add(step as u64),
            ..delta_cfg.clone()
        };
        let delta = xcluster_datagen::deltas::generate_delta(&doc, &step_cfg);
        let stats = xcluster_core::apply_delta(&mut synopsis, &doc, &delta, &cfg);
        doc = xcluster_core::apply_to_tree(&doc, &delta).tree;
        info!(
            "cli",
            "step {step}: +{} -{} elements, {} dirty groups, {} new / {} removed clusters\
             {}{} -> version {}",
            stats.inserted_elements,
            stats.deleted_elements,
            stats.dirty_groups,
            stats.new_clusters,
            stats.removed_clusters,
            if stats.remerged { ", re-merged" } else { "" },
            if stats.recompressed {
                ", re-compressed"
            } else {
                ""
            },
            synopsis.version()
        );
    }
    let bytes = encode_synopsis(&synopsis);
    std::fs::write(output, &bytes)?;
    info!(
        "cli",
        "wrote {output}: version {}, {} nodes, {} struct + {} value bytes ({} on disk)",
        synopsis.version(),
        synopsis.num_nodes(),
        synopsis.structural_bytes(),
        synopsis.value_bytes(),
        bytes.len()
    );
    if let Some(path) = write_doc {
        std::fs::write(path, xcluster_xml::write_document(&doc))?;
        info!(
            "cli",
            "wrote mutated document to {path} ({} elements)",
            doc.len()
        );
    }
    Ok(())
}

/// Drives a running server with a seeded query workload and prints the
/// achieved throughput and sliding-window latency quantiles.
fn cmd_loadgen(args: &[String]) -> Result<(), AnyError> {
    let mut cfg = xcluster_serve::LoadgenConfig::default();
    let mut addr: Option<&str> = None;
    let mut verify_path: Option<&str> = None;
    let mut queries_file: Option<&str> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--qps" => {
                cfg.qps = args.get(i + 1).ok_or("--qps needs a value")?.parse()?;
                i += 2;
            }
            "--total" => {
                cfg.total = args.get(i + 1).ok_or("--total needs a value")?.parse()?;
                i += 2;
            }
            "--duration" => {
                cfg.duration_s = args.get(i + 1).ok_or("--duration needs a value")?.parse()?;
                i += 2;
            }
            "--batch" => {
                cfg.batch = args.get(i + 1).ok_or("--batch needs a value")?.parse()?;
                i += 2;
            }
            "--seed" => {
                cfg.seed = args.get(i + 1).ok_or("--seed needs a value")?.parse()?;
                i += 2;
            }
            "--verify" => {
                verify_path = Some(args.get(i + 1).ok_or("--verify needs a file")?);
                i += 2;
            }
            "--queries-file" => {
                queries_file = Some(args.get(i + 1).ok_or("--queries-file needs a file")?);
                i += 2;
            }
            "--shutdown" => {
                cfg.shutdown = true;
                i += 1;
            }
            other if addr.is_none() => {
                addr = Some(other);
                i += 1;
            }
            other => {
                cfg.queries.push(other.to_string());
                i += 1;
            }
        }
    }
    cfg.addr = addr.ok_or("missing server address")?.to_string();
    if let Some(file) = queries_file {
        for line in std::fs::read_to_string(file)?.lines() {
            let line = line.trim();
            if !line.is_empty() && !line.starts_with('#') {
                cfg.queries.push(line.to_string());
            }
        }
    }
    if cfg.queries.is_empty() {
        return Err("no queries given (positional or --queries-file)".into());
    }
    if let Some(p) = verify_path {
        cfg.verify = Some(load_synopsis(p)?);
    }
    let report = xcluster_serve::loadgen::run(&cfg)?;
    write_stdout(&report.to_text())?;
    if report.errors > 0 || report.mismatches > 0 {
        return Err(format!("{} errors, {} mismatches", report.errors, report.mismatches).into());
    }
    Ok(())
}
