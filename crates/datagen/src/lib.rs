//! Seeded synthetic data generators for the XCluster experiments.
//!
//! The paper evaluates on (a) a subset of the real-life **IMDB** data set
//! and (b) the **XMark** synthetic benchmark. Neither raw input ships with
//! this reproduction (the IMDB subset is proprietary; the XMark generator
//! is third-party C code), so this crate generates the closest synthetic
//! equivalents — see `DESIGN.md` §4 for the substitution argument. What
//! the experiments actually require from the data is reproduced
//! explicitly:
//!
//! * heterogeneous typed content (`NUMERIC`, `STRING`, `TEXT`) under the
//!   same number of distinct value paths as the paper (7 for IMDB, 9 for
//!   XMark);
//! * skewed value distributions (Zipfian terms/names, non-uniform years
//!   and prices);
//! * structure–value correlation (e.g. genre ↔ plot vocabulary,
//!   decade ↔ rating) that a structure-value clustering can exploit;
//! * structural heterogeneity (optional elements, varying fan-out, and —
//!   for XMark — the recursive `parlist`/`listitem` description markup);
//! * deliberately low-selectivity `TEXT` predicates on XMark, which the
//!   paper identifies as the cause of the high *relative* TEXT error in
//!   Figure 8(b) despite a low *absolute* error (Figure 9).
//!
//! All generators are deterministic in their seed.

pub mod deltas;
pub mod imdb;
pub mod treebank;
pub mod words;
pub mod xmark;

use xcluster_xml::XmlTree;

pub use xcluster_xml::ValuePathSpec;

/// A generated data set: the document plus the value paths the reference
/// synopsis summarizes.
#[derive(Debug)]
pub struct Dataset {
    /// Short data-set name used in reports ("imdb", "xmark").
    pub name: &'static str,
    /// The document tree.
    pub tree: XmlTree,
    /// Value paths whose distributions the reference synopsis summarizes.
    pub value_paths: Vec<ValuePathSpec>,
}

impl Dataset {
    /// Number of element nodes (the paper's "# Elements").
    pub fn num_elements(&self) -> usize {
        self.tree.len()
    }

    /// Serialized document size in bytes (the paper's "File Size").
    pub fn file_size_bytes(&self) -> usize {
        xcluster_xml::write_document(&self.tree).len()
    }

    /// Elements lying on a summarized value path — the predicate targets
    /// of the paper's workloads.
    pub fn summarized_targets(&self) -> Vec<xcluster_xml::NodeId> {
        self.tree
            .all_nodes()
            .filter(|&n| {
                let path = self.tree.label_path(n);
                let labels: Vec<&str> = path
                    .iter()
                    .map(|&s| self.tree.labels().resolve(s))
                    .collect();
                self.value_paths
                    .iter()
                    .any(|spec| spec.value_type == self.tree.value_type(n) && spec.matches(&labels))
            })
            .collect()
    }
}
