//! The XMark-like auction-site generator (stand-in for the XMark
//! benchmark data — see `DESIGN.md` §4).
//!
//! Schema (9 summarized value paths, matching the paper's XMark setting):
//!
//! ```text
//! site
//!   regions
//!     africa | asia | australia | europe | namerica | samerica
//!       item*
//!         name        STRING   ← summarized [item, name]
//!         quantity    NUMERIC  ← summarized [item, quantity]
//!         payment     STRING   (not summarized)
//!         description
//!           parlist
//!             listitem*
//!               text  TEXT     ← summarized [listitem, text]
//!               parlist…       (recursive, bounded depth)
//!   people
//!     person*
//!       name          STRING   ← summarized [person, name]
//!       emailaddress  STRING   (not summarized)
//!       age           NUMERIC  ← summarized [person, age] (optional)
//!       interest*     STRING   (not summarized)
//!   open_auctions
//!     open_auction*
//!       initial       NUMERIC  ← summarized [open_auction, initial]
//!       quantity      NUMERIC  (not summarized)
//!       bidder*
//!         increase    NUMERIC  ← summarized [bidder, increase]
//!       annotation
//!         description TEXT     ← summarized [annotation, description]
//!   closed_auctions
//!     closed_auction*
//!       price         NUMERIC  ← summarized [closed_auction, price]
//!       annotation
//!         description TEXT
//!   categories
//!     category*
//!       name          STRING   (not summarized)
//!       description   TEXT     (not summarized)
//! ```
//!
//! The recursive `parlist`/`listitem` markup reproduces XMark's signature
//! structural irregularity. Annotation/description texts draw from a
//! large, flat vocabulary, so individual terms have very low selectivity —
//! the property behind the paper's high relative (but low absolute) TEXT
//! errors on XMark (Figures 8(b) and 9).

use crate::words::{NamePool, Vocabulary};
use crate::{Dataset, ValuePathSpec};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use xcluster_xml::{NodeId, Value, ValueType, XmlTree};

/// Generator configuration. `scaled(f)` mirrors XMark's scale factor.
#[derive(Debug, Clone)]
pub struct XmarkConfig {
    /// Total `item` elements across all regions.
    pub items: usize,
    /// `person` elements.
    pub persons: usize,
    /// `open_auction` elements.
    pub open_auctions: usize,
    /// `closed_auction` elements.
    pub closed_auctions: usize,
    /// `category` elements.
    pub categories: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for XmarkConfig {
    fn default() -> Self {
        Self::scaled(1.0)
    }
}

impl XmarkConfig {
    /// A configuration proportional to the paper's ~206 k-element XMark
    /// document at `factor = 1.0`.
    pub fn scaled(factor: f64) -> Self {
        let s = |base: usize| ((base as f64 * factor).round() as usize).max(1);
        XmarkConfig {
            items: s(7_000),
            persons: s(8_500),
            open_auctions: s(5_500),
            closed_auctions: s(4_000),
            categories: s(1_000),
            seed: 0x0A0C,
        }
    }
}

const REGIONS: &[(&str, f64)] = &[
    ("africa", 0.06),
    ("asia", 0.18),
    ("australia", 0.06),
    ("europe", 0.30),
    ("namerica", 0.32),
    ("samerica", 0.08),
];

/// Generates an XMark-like data set.
pub fn generate(cfg: &XmarkConfig) -> Dataset {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    // Flat (s = 0.6) large vocabulary → low per-term selectivity.
    let prose = Vocabulary::new(400_000, 9_000, 0.6);
    let item_words = Vocabulary::new(450_000, 1_200, 1.1);
    let persons_pool = NamePool::new(500_000, 6_000);

    let mut tree = XmlTree::new("site");
    let root = tree.root();

    // regions -----------------------------------------------------------
    let regions = tree.add_child(root, "regions");
    for &(region, share) in REGIONS {
        let rnode = tree.add_child(regions, region);
        let n_items = ((cfg.items as f64) * share).round() as usize;
        for _ in 0..n_items {
            gen_item(&mut tree, rnode, &mut rng, &item_words, &prose, region);
        }
    }

    // people --------------------------------------------------------------
    let people = tree.add_child(root, "people");
    for i in 0..cfg.persons {
        let person = tree.add_child(people, "person");
        let name = tree.add_child(person, "name");
        tree.set_value(name, Value::String(persons_pool.name(&mut rng).to_string()));
        let email = tree.add_child(person, "emailaddress");
        tree.set_value(
            email,
            Value::String(format!(
                "mailto:user{i}@{}.example",
                crate::words::pseudo_word(i % 97)
            )),
        );
        if rng.gen_bool(0.7) {
            let age = tree.add_child(person, "age");
            // Ages skew young, long tail to 90.
            let a = 18 + (rng.gen_range(0.0f64..1.0).powf(2.0) * 72.0) as u64;
            tree.set_value(age, Value::Numeric(a));
        }
        for _ in 0..rng.gen_range(0..3) {
            let interest = tree.add_child(person, "interest");
            tree.set_value(
                interest,
                Value::String(item_words.word(&mut rng).to_string()),
            );
        }
    }

    // open auctions -------------------------------------------------------
    let opens = tree.add_child(root, "open_auctions");
    for _ in 0..cfg.open_auctions {
        let auction = tree.add_child(opens, "open_auction");
        let initial = tree.add_child(auction, "initial");
        let base_price = lognormal_price(&mut rng);
        tree.set_value(initial, Value::Numeric(base_price));
        let qty = tree.add_child(auction, "quantity");
        tree.set_value(qty, Value::Numeric(rng.gen_range(1..10)));
        // Bid count is heavily skewed: most auctions quiet, a few hot.
        let n_bids = (rng.gen_range(0.0f64..1.0).powf(3.0) * 12.0) as usize;
        let mut current = base_price;
        for _ in 0..n_bids {
            let bidder = tree.add_child(auction, "bidder");
            let increase = tree.add_child(bidder, "increase");
            let inc = 1 + current / rng.gen_range(10..40);
            current += inc;
            tree.set_value(increase, Value::Numeric(inc));
        }
        gen_annotation(&mut tree, auction, &mut rng, &prose);
    }

    // closed auctions -------------------------------------------------------
    let closeds = tree.add_child(root, "closed_auctions");
    for _ in 0..cfg.closed_auctions {
        let auction = tree.add_child(closeds, "closed_auction");
        let price = tree.add_child(auction, "price");
        tree.set_value(price, Value::Numeric(lognormal_price(&mut rng)));
        gen_annotation(&mut tree, auction, &mut rng, &prose);
    }

    // categories ----------------------------------------------------------
    let cats = tree.add_child(root, "categories");
    for _ in 0..cfg.categories {
        let cat = tree.add_child(cats, "category");
        let name = tree.add_child(cat, "name");
        tree.set_value(name, Value::String(item_words.word(&mut rng).to_string()));
        let desc = tree.add_child(cat, "description");
        let len = rng.gen_range(6..16);
        let text = prose.text(&mut rng, len);
        tree.set_text_value(desc, &text);
    }

    Dataset {
        name: "xmark",
        tree,
        value_paths: value_paths(),
    }
}

/// The 9 summarized value paths of the XMark setting.
pub fn value_paths() -> Vec<ValuePathSpec> {
    vec![
        ValuePathSpec::new(&["item", "name"], ValueType::String),
        ValuePathSpec::new(&["item", "quantity"], ValueType::Numeric),
        ValuePathSpec::new(&["listitem", "text"], ValueType::Text),
        ValuePathSpec::new(&["person", "name"], ValueType::String),
        ValuePathSpec::new(&["person", "age"], ValueType::Numeric),
        ValuePathSpec::new(&["open_auction", "initial"], ValueType::Numeric),
        ValuePathSpec::new(&["bidder", "increase"], ValueType::Numeric),
        ValuePathSpec::new(&["annotation", "description"], ValueType::Text),
        ValuePathSpec::new(&["closed_auction", "price"], ValueType::Numeric),
    ]
}

fn gen_item(
    tree: &mut XmlTree,
    region: NodeId,
    rng: &mut StdRng,
    item_words: &Vocabulary,
    prose: &Vocabulary,
    region_name: &str,
) {
    let item = tree.add_child(region, "item");
    let name = tree.add_child(item, "name");
    // Region-flavoured names: prefixing keeps substring predicates
    // correlated with structure.
    let n = format!("{} {}", item_words.word(rng), region_name);
    tree.set_value(name, Value::String(n));
    let qty = tree.add_child(item, "quantity");
    tree.set_value(qty, Value::Numeric(rng.gen_range(1..25)));
    if rng.gen_bool(0.6) {
        let pay = tree.add_child(item, "payment");
        let p = ["Cash", "Creditcard", "Money order", "Personal Check"][rng.gen_range(0..4)];
        tree.set_value(pay, Value::String(p.to_string()));
    }
    let desc = tree.add_child(item, "description");
    gen_parlist(tree, desc, rng, prose, 0);
}

/// XMark's recursive description markup: `parlist → listitem → (text |
/// parlist)`, nesting bounded at depth 3.
fn gen_parlist(
    tree: &mut XmlTree,
    parent: NodeId,
    rng: &mut StdRng,
    prose: &Vocabulary,
    depth: usize,
) {
    let parlist = tree.add_child(parent, "parlist");
    let n_items = rng.gen_range(1..=3);
    for _ in 0..n_items {
        let li = tree.add_child(parlist, "listitem");
        if depth < 2 && rng.gen_bool(0.18) {
            gen_parlist(tree, li, rng, prose, depth + 1);
        } else {
            let text = tree.add_child(li, "text");
            let len = rng.gen_range(8..20);
            let t = prose.text(rng, len);
            tree.set_text_value(text, &t);
        }
    }
}

fn gen_annotation(tree: &mut XmlTree, parent: NodeId, rng: &mut StdRng, prose: &Vocabulary) {
    let ann = tree.add_child(parent, "annotation");
    let desc = tree.add_child(ann, "description");
    let len = rng.gen_range(10..22);
    let t = prose.text(rng, len);
    tree.set_text_value(desc, &t);
}

fn lognormal_price(rng: &mut StdRng) -> u64 {
    // Approximate log-normal via exponentiated uniform mixture.
    let x: f64 = rng.gen_range(0.0..1.0);
    (8.0 * (1.0 / (1.0 - x * 0.999)).powf(0.8)) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Dataset {
        generate(&XmarkConfig {
            items: 120,
            persons: 100,
            open_auctions: 80,
            closed_auctions: 60,
            categories: 20,
            seed: 11,
        })
    }

    #[test]
    fn deterministic() {
        let a = xcluster_xml::write_document(&small().tree);
        let b = xcluster_xml::write_document(&small().tree);
        assert_eq!(a, b);
    }

    #[test]
    fn has_nine_value_paths() {
        assert_eq!(value_paths().len(), 9);
    }

    #[test]
    fn all_regions_present() {
        let d = small();
        let regions = d
            .tree
            .children(d.tree.root())
            .find(|&n| d.tree.label_str(n) == "regions")
            .unwrap();
        let names: Vec<&str> = d
            .tree
            .children(regions)
            .map(|c| d.tree.label_str(c))
            .collect();
        assert_eq!(
            names,
            vec![
                "africa",
                "asia",
                "australia",
                "europe",
                "namerica",
                "samerica"
            ]
        );
    }

    #[test]
    fn value_types_match_specs() {
        let d = small();
        let specs = value_paths();
        let mut matched = vec![0usize; specs.len()];
        for n in d.tree.all_nodes() {
            let path = d.tree.label_path(n);
            let labels: Vec<&str> = path.iter().map(|&s| d.tree.labels().resolve(s)).collect();
            for (i, spec) in specs.iter().enumerate() {
                if spec.matches(&labels) {
                    matched[i] += 1;
                    assert_eq!(d.tree.value_type(n), spec.value_type, "at {labels:?}");
                }
            }
        }
        for (i, m) in matched.iter().enumerate() {
            assert!(*m > 0, "value path {i} matched no elements");
        }
    }

    #[test]
    fn descriptions_nest_recursively() {
        let d = generate(&XmarkConfig {
            items: 600,
            persons: 10,
            open_auctions: 10,
            closed_auctions: 10,
            categories: 5,
            seed: 2,
        });
        // Some parlist must contain a listitem that contains a parlist.
        let mut found_nested = false;
        for n in d.tree.all_nodes() {
            if d.tree.label_str(n) == "parlist" {
                let depth = d
                    .tree
                    .label_path(n)
                    .iter()
                    .filter(|&&s| d.tree.labels().resolve(s) == "parlist")
                    .count();
                if depth >= 2 {
                    found_nested = true;
                    break;
                }
            }
        }
        assert!(found_nested, "no recursive parlist nesting generated");
    }

    #[test]
    fn bid_counts_are_skewed() {
        let d = small();
        let mut zero = 0;
        let mut many = 0;
        let mut total = 0;
        for n in d.tree.all_nodes() {
            if d.tree.label_str(n) == "open_auction" {
                total += 1;
                let bids = d
                    .tree
                    .children(n)
                    .filter(|&c| d.tree.label_str(c) == "bidder")
                    .count();
                if bids == 0 {
                    zero += 1;
                }
                if bids >= 6 {
                    many += 1;
                }
            }
        }
        assert!(total > 0);
        assert!(
            zero > total / 4,
            "expected many quiet auctions: {zero}/{total}"
        );
        assert!(many > 0, "expected a few hot auctions");
    }

    #[test]
    fn prices_have_long_tail() {
        let d = small();
        let prices: Vec<u64> = d
            .tree
            .all_nodes()
            .filter(|&n| d.tree.label_str(n) == "price")
            .map(|n| d.tree.value(n).as_numeric().unwrap())
            .collect();
        assert!(!prices.is_empty());
        let max = *prices.iter().max().unwrap();
        let min = *prices.iter().min().unwrap();
        assert!(max > min * 5, "price spread too flat: {min}..{max}");
    }

    #[test]
    fn serializes_to_parseable_xml() {
        let d = small();
        let xml = xcluster_xml::write_document(&d.tree);
        let reparsed = xcluster_xml::parse(&xml).unwrap();
        assert_eq!(reparsed.len(), d.tree.len());
    }

    #[test]
    fn paper_scale_config_is_large() {
        let c = XmarkConfig::default();
        assert!(c.items >= 5_000);
        let c01 = XmarkConfig::scaled(0.1);
        assert_eq!(c01.items, 700);
    }
}
