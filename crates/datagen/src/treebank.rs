//! A TreeBank-like generator: deep, heavily recursive parse-tree
//! structure in the style of the Penn TreeBank XML conversion that the
//! XML-summarization literature (XSketch, TreeSketch) evaluates on.
//!
//! Unlike the IMDB/XMark stand-ins, this data set stresses *structural*
//! summarization: constituent tags (`s`, `np`, `vp`, `pp`, `sbar`, …)
//! nest recursively to significant depth, so reference synopses are large
//! and merged synopses contain cycles. Leaf part-of-speech elements carry
//! `STRING` words (summarized) and cardinal numbers (`cd`, summarized).
//!
//! ```text
//! treebank
//!   file*
//!     s*                  (sentence)
//!       np | vp | pp | sbar | adjp   (recursive constituents)
//!         …
//!         nn | vb | jj | dt | in     (POS leaves, STRING values)
//!         cd                         (NUMERIC leaves)
//! ```

use crate::words::Vocabulary;
use crate::{Dataset, ValuePathSpec};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use xcluster_xml::{NodeId, Value, ValueType, XmlTree};

/// Generator configuration.
#[derive(Debug, Clone)]
pub struct TreebankConfig {
    /// Number of `file` elements.
    pub files: usize,
    /// Sentences per file (upper bound; drawn uniformly from 1..=this).
    pub max_sentences: usize,
    /// Maximum recursion depth of constituents below a sentence.
    pub max_depth: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TreebankConfig {
    fn default() -> Self {
        TreebankConfig {
            files: 400,
            max_sentences: 12,
            max_depth: 9,
            seed: 0x7B,
        }
    }
}

const CONSTITUENTS: &[&str] = &["np", "vp", "pp", "sbar", "adjp"];
const POS: &[&str] = &["nn", "vb", "jj", "dt", "in"];

/// Generates a TreeBank-like data set.
pub fn generate(cfg: &TreebankConfig) -> Dataset {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let lexicon = Vocabulary::new(700_000, 4_000, 1.2);
    let mut tree = XmlTree::new("treebank");
    let root = tree.root();
    for _ in 0..cfg.files {
        let file = tree.add_child(root, "file");
        for _ in 0..rng.gen_range(1..=cfg.max_sentences) {
            let s = tree.add_child(file, "s");
            // A sentence is NP VP with optional trailing PP.
            gen_constituent(&mut tree, s, "np", cfg.max_depth, &mut rng, &lexicon);
            gen_constituent(&mut tree, s, "vp", cfg.max_depth, &mut rng, &lexicon);
            if rng.gen_bool(0.3) {
                gen_constituent(&mut tree, s, "pp", cfg.max_depth, &mut rng, &lexicon);
            }
        }
    }
    Dataset {
        name: "treebank",
        tree,
        value_paths: value_paths(),
    }
}

/// The summarized value paths (leaf words and cardinal numbers).
pub fn value_paths() -> Vec<ValuePathSpec> {
    vec![
        ValuePathSpec::new(&["nn"], ValueType::String),
        ValuePathSpec::new(&["vb"], ValueType::String),
        ValuePathSpec::new(&["cd"], ValueType::Numeric),
    ]
}

fn gen_constituent(
    tree: &mut XmlTree,
    parent: NodeId,
    tag: &str,
    depth_left: usize,
    rng: &mut StdRng,
    lexicon: &Vocabulary,
) {
    let node = tree.add_child(parent, tag);
    // Deeper nesting becomes increasingly unlikely; leaves take over.
    let recurse_p = if depth_left == 0 {
        0.0
    } else {
        0.35 + 0.05 * depth_left.min(6) as f64
    };
    let n_parts = rng.gen_range(1..=3);
    for _ in 0..n_parts {
        if rng.gen_bool(recurse_p) {
            let next = CONSTITUENTS[rng.gen_range(0..CONSTITUENTS.len())];
            gen_constituent(tree, node, next, depth_left - 1, rng, lexicon);
        } else if rng.gen_bool(0.06) {
            let cd = tree.add_child(node, "cd");
            // Zipf-flavoured magnitudes: years, small counts, big figures.
            let v = match rng.gen_range(0..3) {
                0 => rng.gen_range(1..100),
                1 => rng.gen_range(1900..2010),
                _ => rng.gen_range(1000..1_000_000),
            };
            tree.set_value(cd, Value::Numeric(v));
        } else {
            let pos = POS[rng.gen_range(0..POS.len())];
            let leaf = tree.add_child(node, pos);
            tree.set_value(leaf, Value::String(lexicon.word(rng).to_string()));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Dataset {
        generate(&TreebankConfig {
            files: 60,
            max_sentences: 6,
            max_depth: 8,
            seed: 1,
        })
    }

    #[test]
    fn deterministic() {
        let a = xcluster_xml::write_document(&small().tree);
        let b = xcluster_xml::write_document(&small().tree);
        assert_eq!(a, b);
    }

    #[test]
    fn is_deep_and_recursive() {
        let d = small();
        assert!(d.tree.max_depth() >= 8, "depth {}", d.tree.max_depth());
        // Some constituent must nest inside a same-labelled ancestor.
        let mut recursive = false;
        for n in d.tree.all_nodes() {
            let lbl = d.tree.label(n);
            let mut cur = n;
            while let Some(p) = d.tree.parent(cur) {
                if d.tree.label(p) == lbl && CONSTITUENTS.contains(&d.tree.label_str(n)) {
                    recursive = true;
                    break;
                }
                cur = p;
            }
            if recursive {
                break;
            }
        }
        assert!(recursive, "no recursive constituent nesting");
    }

    #[test]
    fn leaves_carry_typed_values() {
        let d = small();
        let mut strings = 0;
        let mut numbers = 0;
        for n in d.tree.all_nodes() {
            match d.tree.value_type(n) {
                ValueType::String => strings += 1,
                ValueType::Numeric => numbers += 1,
                _ => {}
            }
        }
        assert!(strings > 100, "{strings}");
        assert!(numbers > 5, "{numbers}");
    }

    #[test]
    fn value_paths_match_leaves() {
        let d = small();
        let targets = d.summarized_targets();
        assert!(!targets.is_empty());
        for &t in &targets {
            assert_ne!(d.tree.value_type(t), ValueType::None);
        }
    }

    #[test]
    fn parses_back() {
        let d = small();
        let xml = xcluster_xml::write_document(&d.tree);
        let t2 = xcluster_xml::parse(&xml).unwrap();
        assert_eq!(t2.len(), d.tree.len());
    }
}
