//! Vocabulary and sampling utilities shared by the generators: syllabic
//! pseudo-word construction, Zipfian samplers, and person-name pools.

use rand::rngs::StdRng;
use rand::Rng;

const ONSETS: &[&str] = &[
    "b", "br", "c", "ch", "d", "dr", "f", "fl", "g", "gr", "h", "j", "k", "l", "m", "n", "p", "pl",
    "qu", "r", "s", "sh", "st", "t", "th", "tr", "v", "w", "z",
];
const NUCLEI: &[&str] = &["a", "e", "i", "o", "u", "ai", "ea", "io", "ou"];
const CODAS: &[&str] = &["", "n", "r", "s", "t", "l", "m", "nd", "st", "ck", "x"];

/// Deterministically builds the `i`-th pseudo-word of a vocabulary: a
/// pronounceable lowercase token of 2–3 syllables. Distinct indices give
/// distinct words (the index is mixed into every syllable choice).
pub fn pseudo_word(i: usize) -> String {
    let mut h = (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ 0x1234_5678;
    let mut next = |m: usize| {
        h ^= h >> 33;
        h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
        (h % m as u64) as usize
    };
    let syllables = 2 + next(2);
    let mut w = String::new();
    for _ in 0..syllables {
        w.push_str(ONSETS[next(ONSETS.len())]);
        w.push_str(NUCLEI[next(NUCLEI.len())]);
        w.push_str(CODAS[next(CODAS.len())]);
    }
    // Guarantee global uniqueness across any vocabulary size by suffixing
    // a base-26 discriminator derived from the index.
    let mut n = i;
    loop {
        w.push((b'a' + (n % 26) as u8) as char);
        n /= 26;
        if n == 0 {
            break;
        }
    }
    w
}

/// A Zipf-distributed sampler over ranks `0..n` with exponent `s`:
/// `P(rank k) ∝ 1 / (k+1)^s`.
#[derive(Debug, Clone)]
pub struct Zipf {
    cumulative: Vec<f64>,
}

impl Zipf {
    /// Builds the sampler. `n ≥ 1`; `s` is typically in `[0.8, 1.4]`.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n >= 1);
        let mut cumulative = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 0..n {
            acc += 1.0 / ((k + 1) as f64).powf(s);
            cumulative.push(acc);
        }
        Zipf { cumulative }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cumulative.len()
    }

    /// Whether the sampler is over an empty domain (never true).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Draws one rank.
    pub fn sample(&self, rng: &mut StdRng) -> usize {
        let total = *self.cumulative.last().unwrap();
        let x = rng.gen_range(0.0..total);
        self.cumulative.partition_point(|&c| c < x)
    }
}

/// A themed vocabulary: a shared base lexicon plus a topic-specific
/// section, sampled with Zipfian skew. Topic sections give the generators
/// their structure–value correlations (e.g. genre ↔ plot vocabulary).
#[derive(Debug, Clone)]
pub struct Vocabulary {
    words: Vec<String>,
    zipf: Zipf,
}

impl Vocabulary {
    /// Builds a vocabulary of `size` words whose indices start at
    /// `offset` in the global pseudo-word space (disjoint offsets give
    /// disjoint vocabularies).
    pub fn new(offset: usize, size: usize, zipf_s: f64) -> Self {
        Vocabulary {
            words: (offset..offset + size).map(pseudo_word).collect(),
            zipf: Zipf::new(size, zipf_s),
        }
    }

    /// Draws one word.
    pub fn word(&self, rng: &mut StdRng) -> &str {
        &self.words[self.zipf.sample(rng)]
    }

    /// Draws a text of `len` words, space-joined.
    pub fn text(&self, rng: &mut StdRng, len: usize) -> String {
        let mut out = String::new();
        for i in 0..len {
            if i > 0 {
                out.push(' ');
            }
            out.push_str(self.word(rng));
        }
        out
    }

    /// The `k` most frequent words (lowest ranks) — handy for building
    /// positive keyword workloads.
    pub fn top_words(&self, k: usize) -> Vec<&str> {
        self.words.iter().take(k).map(|s| s.as_str()).collect()
    }

    /// Number of words.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// Whether the vocabulary is empty (never true — `size ≥ 1`).
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }
}

/// A pool of person names sampled with Zipfian skew (a few prolific
/// actors/directors/bidders recur, the long tail appears once or twice).
#[derive(Debug, Clone)]
pub struct NamePool {
    names: Vec<String>,
    zipf: Zipf,
}

impl NamePool {
    /// Builds `size` two-part names from disjoint pseudo-word ranges.
    pub fn new(offset: usize, size: usize) -> Self {
        let names = (0..size)
            .map(|i| {
                let first = capitalize(&pseudo_word(offset + 2 * i));
                let last = capitalize(&pseudo_word(offset + 2 * i + 1));
                format!("{first} {last}")
            })
            .collect();
        NamePool {
            names,
            zipf: Zipf::new(size, 0.9),
        }
    }

    /// Draws one name.
    pub fn name(&self, rng: &mut StdRng) -> &str {
        &self.names[self.zipf.sample(rng)]
    }

    /// All names (for workload substring sampling).
    pub fn names(&self) -> &[String] {
        &self.names
    }
}

fn capitalize(w: &str) -> String {
    let mut c = w.chars();
    match c.next() {
        Some(f) => f.to_ascii_uppercase().to_string() + c.as_str(),
        None => String::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn pseudo_words_are_distinct_and_deterministic() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..10_000 {
            let w = pseudo_word(i);
            assert_eq!(w, pseudo_word(i));
            assert!(seen.insert(w.clone()), "duplicate word {w} at {i}");
            assert!(w.chars().all(|c| c.is_ascii_lowercase()), "{w}");
        }
    }

    #[test]
    fn zipf_is_skewed_toward_low_ranks() {
        let z = Zipf::new(1000, 1.1);
        let mut rng = StdRng::seed_from_u64(7);
        let mut head = 0;
        let n = 20_000;
        for _ in 0..n {
            if z.sample(&mut rng) < 10 {
                head += 1;
            }
        }
        // Top-10 of 1000 ranks should absorb far more than the uniform 1%.
        assert!(head as f64 / n as f64 > 0.2, "head mass {head}/{n}");
    }

    #[test]
    fn zipf_covers_all_ranks() {
        let z = Zipf::new(5, 1.0);
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 5];
        for _ in 0..2000 {
            seen[z.sample(&mut rng)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn vocabulary_text_has_requested_length() {
        let v = Vocabulary::new(0, 200, 1.0);
        let mut rng = StdRng::seed_from_u64(1);
        let t = v.text(&mut rng, 12);
        assert_eq!(t.split_whitespace().count(), 12);
    }

    #[test]
    fn disjoint_offsets_give_disjoint_vocabularies() {
        let a = Vocabulary::new(0, 100, 1.0);
        let b = Vocabulary::new(100, 100, 1.0);
        let sa: std::collections::HashSet<_> = a.top_words(100).into_iter().collect();
        for w in b.top_words(100) {
            assert!(!sa.contains(w));
        }
    }

    #[test]
    fn name_pool_shapes() {
        let p = NamePool::new(50_000, 50);
        let mut rng = StdRng::seed_from_u64(5);
        let n = p.name(&mut rng);
        assert_eq!(n.split(' ').count(), 2);
        assert!(n.chars().next().unwrap().is_ascii_uppercase());
        assert_eq!(p.names().len(), 50);
    }

    #[test]
    fn sampling_is_deterministic_in_seed() {
        let v = Vocabulary::new(0, 500, 1.1);
        let mut r1 = StdRng::seed_from_u64(42);
        let mut r2 = StdRng::seed_from_u64(42);
        assert_eq!(v.text(&mut r1, 30), v.text(&mut r2, 30));
    }
}
