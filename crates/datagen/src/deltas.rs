//! Seeded subtree-mutation streams for incremental maintenance.
//!
//! The differential harness (`tests/incremental_diff.rs`), the property
//! suite, and `bench-build` all need reproducible document churn: batches
//! of subtree insertions and deletions drawn against an evolving base
//! document. Fragments are *copies of existing subtrees* with jittered
//! numeric leaves — realistic churn keeps the inserted structure inside
//! the document's existing label vocabulary, so the synopsis descent
//! mapping lands on live clusters instead of fabricating new ones, which
//! is the regime incremental maintenance is designed for. Deletion roots
//! are pairwise disjoint and never cover an insert parent, upholding the
//! `DocDelta` validity invariants by construction.
//!
//! All generators are deterministic in their seed.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use xcluster_core::delta::{apply_to_tree, extract_subtree, DeltaOp, DocDelta};
use xcluster_xml::{NodeId, Value, XmlTree};

/// Churn-stream configuration.
#[derive(Debug, Clone)]
pub struct DeltaConfig {
    /// Fraction of the document's elements touched per delta (inserted
    /// plus deleted), e.g. `0.05` for 5% churn.
    pub churn: f64,
    /// Probability that a mutation is an insertion (the rest are
    /// deletions). `1.0` yields insert-only deltas.
    pub insert_fraction: f64,
    /// Upper bound on the node count of any single inserted fragment or
    /// deleted subtree.
    pub max_subtree: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for DeltaConfig {
    fn default() -> Self {
        DeltaConfig {
            churn: 0.05,
            insert_fraction: 0.5,
            max_subtree: 24,
            seed: 0xDE17A,
        }
    }
}

/// Number of elements a delta at this configuration aims to touch.
fn churn_budget(tree: &XmlTree, cfg: &DeltaConfig) -> usize {
    ((tree.len() as f64 * cfg.churn).round() as usize).max(1)
}

/// Generates one delta against `tree`.
///
/// The delta touches roughly `churn · |tree|` elements, split between
/// subtree insertions (donor subtrees copied from the document, numeric
/// leaves jittered) and subtree deletions (disjoint roots). Always valid
/// for `apply_to_tree`/`apply_delta` on `tree`.
pub fn generate_delta(tree: &XmlTree, cfg: &DeltaConfig) -> DocDelta {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    generate_with(tree, cfg, &mut rng)
}

/// Generates a stream of `steps` deltas, each valid against the document
/// produced by applying all earlier deltas in order (element `0` applies
/// to `tree` itself). Replay with [`apply_to_tree`].
pub fn delta_stream(tree: &XmlTree, cfg: &DeltaConfig, steps: usize) -> Vec<DocDelta> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut cur = None; // lazily cloned: step 0 reads `tree` directly
    let mut out = Vec::with_capacity(steps);
    for _ in 0..steps {
        let base = cur.as_ref().unwrap_or(tree);
        let delta = generate_with(base, cfg, &mut rng);
        cur = Some(apply_to_tree(base, &delta).tree);
        out.push(delta);
    }
    out
}

fn generate_with(tree: &XmlTree, cfg: &DeltaConfig, rng: &mut StdRng) -> DocDelta {
    let budget = churn_budget(tree, cfg);
    let n = tree.len() as u32;
    let mut ops: Vec<DeltaOp> = Vec::new();
    // All nodes inside already-chosen delete subtrees (roots included).
    let mut covered: Vec<bool> = vec![false; tree.len()];
    let mut insert_parents: Vec<u32> = Vec::new();
    let mut touched = 0usize;
    let mut attempts = budget * 20 + 64;
    while touched < budget && attempts > 0 {
        attempts -= 1;
        if rng.gen_bool(cfg.insert_fraction) {
            let donor = NodeId(rng.gen_range(0..n));
            let size = subtree_size(tree, donor);
            if size > cfg.max_subtree {
                continue;
            }
            let parent = NodeId(rng.gen_range(0..n));
            if covered[parent.index()] {
                continue;
            }
            let mut fragment = extract_subtree(tree, donor);
            jitter_numeric_leaves(&mut fragment, rng);
            insert_parents.push(parent.0);
            ops.push(DeltaOp::Insert { parent, fragment });
            touched += size;
        } else {
            if n < 2 {
                continue;
            }
            let root = NodeId(rng.gen_range(1..n)); // never the doc root
            if covered[root.index()] {
                continue;
            }
            let size = subtree_size(tree, root);
            if size > cfg.max_subtree {
                continue;
            }
            // Reject roots whose subtree contains an earlier delete root
            // or an insert parent; otherwise claim the whole subtree.
            let members: Vec<u32> = std::iter::once(root)
                .chain(tree.descendants(root))
                .map(|d| d.0)
                .collect();
            if members
                .iter()
                .any(|&m| covered[m as usize] || insert_parents.contains(&m))
            {
                continue;
            }
            for &m in &members {
                covered[m as usize] = true;
            }
            ops.push(DeltaOp::Delete { root });
            touched += size;
        }
    }
    DocDelta::new(ops)
}

fn subtree_size(tree: &XmlTree, root: NodeId) -> usize {
    1 + tree.descendants(root).count()
}

/// Perturbs every numeric leaf by a small uniform offset (saturating at
/// zero: numeric domains are `{0..M-1}`), so inserted copies carry fresh
/// but similarly-distributed values.
fn jitter_numeric_leaves(frag: &mut XmlTree, rng: &mut StdRng) {
    let nodes: Vec<NodeId> = frag.all_nodes().collect();
    for node in nodes {
        let cur = match frag.value(node) {
            Value::Numeric(v) => Some(*v),
            _ => None,
        };
        if let Some(v) = cur {
            let jittered = v.saturating_add_signed(rng.gen_range(-3i64..=3));
            frag.set_value(node, Value::Numeric(jittered));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::imdb::{self, ImdbConfig};
    use xcluster_xml::write_document;

    fn small_doc() -> XmlTree {
        imdb::generate(&ImdbConfig {
            num_movies: 25,
            seed: 11,
        })
        .tree
    }

    #[test]
    fn deltas_are_deterministic_in_the_seed() {
        let doc = small_doc();
        let cfg = DeltaConfig::default();
        let a = apply_to_tree(&doc, &generate_delta(&doc, &cfg)).tree;
        let b = apply_to_tree(&doc, &generate_delta(&doc, &cfg)).tree;
        assert_eq!(write_document(&a), write_document(&b));
        let other = generate_delta(
            &doc,
            &DeltaConfig {
                seed: cfg.seed + 1,
                ..cfg
            },
        );
        let c = apply_to_tree(&doc, &other).tree;
        assert_ne!(write_document(&a), write_document(&c));
    }

    #[test]
    fn churn_tracks_the_configured_rate() {
        let doc = small_doc();
        let cfg = DeltaConfig {
            churn: 0.05,
            ..DeltaConfig::default()
        };
        let delta = generate_delta(&doc, &cfg);
        assert!(!delta.is_empty());
        let patch = apply_to_tree(&doc, &delta);
        let moved = patch.tree.len().abs_diff(doc.len());
        // Inserts and deletes partly cancel in the size difference, so
        // only bound it by the full churn budget.
        assert!(moved <= 2 * churn_budget(&doc, &cfg));
    }

    #[test]
    fn insert_only_streams_grow_the_document() {
        let doc = small_doc();
        let cfg = DeltaConfig {
            insert_fraction: 1.0,
            ..DeltaConfig::default()
        };
        let mut cur = apply_to_tree(&doc, &generate_delta(&doc, &cfg)).tree;
        assert!(cur.len() > doc.len());
        // Streams stay valid as the document evolves.
        for delta in delta_stream(&doc, &cfg, 4) {
            assert!(delta
                .ops
                .iter()
                .all(|op| matches!(op, DeltaOp::Insert { .. })));
        }
        let mixed = delta_stream(&doc, &DeltaConfig::default(), 4);
        let mut base = doc;
        for delta in &mixed {
            base = apply_to_tree(&base, delta).tree;
        }
        cur = base;
        assert!(!cur.is_empty());
    }
}
