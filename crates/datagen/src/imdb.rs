//! The IMDB-like movie database generator (stand-in for the paper's
//! real-life IMDB subset — see `DESIGN.md` §4).
//!
//! Schema (7 value paths, matching the paper's IMDB setting):
//!
//! ```text
//! imdb
//!   movie*
//!     title    STRING   ← summarized
//!     year     NUMERIC  ← summarized
//!     rating   NUMERIC  ← summarized (sometimes absent)
//!     genre    STRING   ← summarized
//!     plot     TEXT     ← summarized (sometimes absent)
//!     aka      STRING   (optional, not summarized)
//!     cast
//!       actor*
//!         name STRING   ← summarized
//!         role STRING   (optional, not summarized)
//!     director
//!       name   STRING   ← summarized
//! ```
//!
//! A slice of the entries (~18%) are `series` instead of `movie`,
//! reusing the `title`/`year`/`genre`/`cast` tags with very different
//! shapes — much larger casts, nested `episode` lists whose `year` and
//! `title` distributions differ from the movie ones:
//!
//! ```text
//!   series
//!     title    STRING   (not summarized — the 7 paths are movie-anchored)
//!     year     NUMERIC  (not summarized)
//!     genre    STRING   (not summarized)
//!     cast
//!       actor/name      ← summarized via the [actor, name] suffix
//!     episode*
//!       title  STRING
//!       year   NUMERIC
//!       rating NUMERIC
//! ```
//!
//! This tag reuse across contexts is what the paper's real IMDB data has
//! in abundance: a tag-only synopsis fuses `movie/cast` with the much
//! fatter `series/cast` (and movie years with episode years), so
//! context-anchored queries start out badly wrong and improve as the
//! structural budget lets XClusterBuild keep the contexts apart.
//!
//! Correlations the synopsis can exploit: the plot vocabulary depends on
//! the genre; the rating distribution shifts with the decade; cast size
//! grows with the decade (structural heterogeneity).

use crate::words::{NamePool, Vocabulary};
use crate::{Dataset, ValuePathSpec};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use xcluster_xml::{Value, ValueType, XmlTree};

/// Generator configuration.
#[derive(Debug, Clone)]
pub struct ImdbConfig {
    /// Number of top-level entries (~5/6 movies, ~1/6 series).
    pub num_movies: usize,
    /// RNG seed — equal seeds give identical documents.
    pub seed: u64,
}

impl Default for ImdbConfig {
    fn default() -> Self {
        // ~236 k elements at ~20.5 elements/movie, matching the order of
        // magnitude of the paper's Table 1.
        ImdbConfig {
            num_movies: 11_500,
            seed: 0xD0C5,
        }
    }
}

const GENRES: &[(&str, f64, u64)] = &[
    // (name, weight, base rating)
    ("drama", 0.30, 72),
    ("comedy", 0.22, 64),
    ("action", 0.18, 60),
    ("scifi", 0.12, 63),
    ("war", 0.08, 70),
    ("romance", 0.10, 65),
];

/// Generates an IMDB-like data set.
pub fn generate(cfg: &ImdbConfig) -> Dataset {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let common = Vocabulary::new(0, 1500, 1.05);
    let genre_vocabs: Vec<Vocabulary> = (0..GENRES.len())
        .map(|g| Vocabulary::new(2_000 + g * 1_000, 800, 1.1))
        .collect();
    let actors = NamePool::new(100_000, 4_000);
    let directors = NamePool::new(120_000, 800);

    let mut tree = XmlTree::new("imdb");
    let root = tree.root();
    for entry in 0..cfg.num_movies {
        // Every ~6th entry is a series: same tags, different shape.
        if entry % 6 == 5 {
            gen_series(&mut tree, root, &mut rng, &genre_vocabs, &common, &actors);
            continue;
        }
        let movie = tree.add_child(root, "movie");
        let genre_idx = pick_genre(&mut rng);
        let (genre_name, _, base_rating) = GENRES[genre_idx];
        let gvocab = &genre_vocabs[genre_idx];

        // Year: skewed toward recent decades.
        let decade = pick_weighted(&mut rng, &[1, 2, 3, 4, 6, 8, 11, 14, 16]);
        let year = 1920 + decade as u64 * 10 + rng.gen_range(0..10) as u64;

        let title = tree.add_child(movie, "title");
        let t = make_title(&mut rng, gvocab, &common);
        tree.set_value(title, Value::String(t));

        let y = tree.add_child(movie, "year");
        tree.set_value(y, Value::Numeric(year));

        // Rating correlates with genre and decade; 12% of movies unrated.
        if rng.gen_bool(0.88) {
            let r = tree.add_child(movie, "rating");
            let noise: i64 = rng.gen_range(-15..=15);
            let rating = (base_rating as i64 + decade as i64 + noise).clamp(1, 100) as u64;
            tree.set_value(r, Value::Numeric(rating));
        }

        let g = tree.add_child(movie, "genre");
        tree.set_value(g, Value::String(genre_name.to_string()));

        // Plot: genre-flavoured text; 15% of movies have none.
        if rng.gen_bool(0.85) {
            let p = tree.add_child(movie, "plot");
            let len = rng.gen_range(18..40);
            let mut text = String::new();
            for i in 0..len {
                if i > 0 {
                    text.push(' ');
                }
                let w = if rng.gen_bool(0.4) {
                    gvocab.word(&mut rng)
                } else {
                    common.word(&mut rng)
                };
                text.push_str(w);
            }
            tree.set_text_value(p, &text);
        }

        // Optional alternative title.
        if rng.gen_bool(0.2) {
            let aka = tree.add_child(movie, "aka");
            let t = make_title(&mut rng, gvocab, &common);
            tree.set_value(aka, Value::String(t));
        }

        // Cast size grows with the decade (structural heterogeneity).
        let cast = tree.add_child(movie, "cast");
        let n_actors = 1 + rng.gen_range(0..=(2 + decade.min(6)));
        for _ in 0..n_actors {
            let actor = tree.add_child(cast, "actor");
            let name = tree.add_child(actor, "name");
            tree.set_value(name, Value::String(actors.name(&mut rng).to_string()));
            if rng.gen_bool(0.5) {
                let role = tree.add_child(actor, "role");
                let r = crate::words::pseudo_word(300_000 + rng.gen_range(0..500));
                tree.set_value(role, Value::String(r));
            }
        }

        let director = tree.add_child(movie, "director");
        let dname = tree.add_child(director, "name");
        tree.set_value(dname, Value::String(directors.name(&mut rng).to_string()));
    }

    Dataset {
        name: "imdb",
        tree,
        value_paths: value_paths(),
    }
}

/// A `series` entry: large cast, episode list, recent years.
fn gen_series(
    tree: &mut XmlTree,
    root: xcluster_xml::NodeId,
    rng: &mut StdRng,
    genre_vocabs: &[Vocabulary],
    common: &Vocabulary,
    actors: &NamePool,
) {
    let series = tree.add_child(root, "series");
    let genre_idx = pick_genre(rng);
    let gvocab = &genre_vocabs[genre_idx];
    let title = tree.add_child(series, "title");
    let t = make_title(rng, gvocab, common);
    tree.set_value(title, Value::String(t));
    // Series skew recent: 1990–2005.
    let start_year = 1990 + rng.gen_range(0..16) as u64;
    let y = tree.add_child(series, "year");
    tree.set_value(y, Value::Numeric(start_year));
    let g = tree.add_child(series, "genre");
    tree.set_value(g, Value::String(GENRES[genre_idx].0.to_string()));
    // Much larger ensemble cast than movies.
    let cast = tree.add_child(series, "cast");
    for _ in 0..rng.gen_range(8..18) {
        let actor = tree.add_child(cast, "actor");
        let name = tree.add_child(actor, "name");
        tree.set_value(name, Value::String(actors.name(rng).to_string()));
    }
    for ep in 0..rng.gen_range(3..10) {
        let episode = tree.add_child(series, "episode");
        let et = tree.add_child(episode, "title");
        let title = make_title(rng, gvocab, common);
        tree.set_value(et, Value::String(title));
        let ey = tree.add_child(episode, "year");
        tree.set_value(ey, Value::Numeric((start_year + ep as u64 / 3).min(2005)));
        if rng.gen_bool(0.8) {
            let er = tree.add_child(episode, "rating");
            tree.set_value(er, Value::Numeric(rng.gen_range(40..95)));
        }
    }
}

/// The 7 summarized value paths of the IMDB setting.
pub fn value_paths() -> Vec<ValuePathSpec> {
    vec![
        ValuePathSpec::new(&["movie", "title"], ValueType::String),
        ValuePathSpec::new(&["movie", "year"], ValueType::Numeric),
        ValuePathSpec::new(&["movie", "rating"], ValueType::Numeric),
        ValuePathSpec::new(&["movie", "genre"], ValueType::String),
        ValuePathSpec::new(&["movie", "plot"], ValueType::Text),
        ValuePathSpec::new(&["actor", "name"], ValueType::String),
        ValuePathSpec::new(&["director", "name"], ValueType::String),
    ]
}

fn make_title(rng: &mut StdRng, genre: &Vocabulary, common: &Vocabulary) -> String {
    let words = rng.gen_range(2..=4);
    let mut t = String::new();
    for i in 0..words {
        if i > 0 {
            t.push(' ');
        }
        let w = if rng.gen_bool(0.5) {
            genre.word(rng)
        } else {
            common.word(rng)
        };
        let mut chars = w.chars();
        if let Some(f) = chars.next() {
            t.push(f.to_ascii_uppercase());
            t.push_str(chars.as_str());
        }
    }
    t
}

fn pick_genre(rng: &mut StdRng) -> usize {
    let x: f64 = rng.gen();
    let mut acc = 0.0;
    for (i, (_, w, _)) in GENRES.iter().enumerate() {
        acc += w;
        if x < acc {
            return i;
        }
    }
    GENRES.len() - 1
}

fn pick_weighted(rng: &mut StdRng, weights: &[u32]) -> usize {
    let total: u32 = weights.iter().sum();
    let mut x = rng.gen_range(0..total);
    for (i, &w) in weights.iter().enumerate() {
        if x < w {
            return i;
        }
        x -= w;
    }
    weights.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Dataset {
        generate(&ImdbConfig {
            num_movies: 200,
            seed: 1,
        })
    }

    #[test]
    fn deterministic_in_seed() {
        let a = small();
        let b = small();
        assert_eq!(a.tree.len(), b.tree.len());
        assert_eq!(
            xcluster_xml::write_document(&a.tree),
            xcluster_xml::write_document(&b.tree)
        );
        let c = generate(&ImdbConfig {
            num_movies: 200,
            seed: 2,
        });
        assert_ne!(
            xcluster_xml::write_document(&a.tree),
            xcluster_xml::write_document(&c.tree)
        );
    }

    #[test]
    fn element_count_scales_with_movies() {
        let d = small();
        let per_movie = d.tree.len() as f64 / 200.0;
        assert!(
            (12.0..30.0).contains(&per_movie),
            "elements per movie: {per_movie}"
        );
    }

    #[test]
    fn has_seven_value_paths() {
        assert_eq!(value_paths().len(), 7);
    }

    #[test]
    fn value_types_match_specs() {
        let d = small();
        let specs = value_paths();
        let mut matched = vec![0usize; specs.len()];
        for n in d.tree.all_nodes() {
            let path = d.tree.label_path(n);
            let labels: Vec<&str> = path.iter().map(|&s| d.tree.labels().resolve(s)).collect();
            for (i, spec) in specs.iter().enumerate() {
                if spec.matches(&labels) {
                    matched[i] += 1;
                    assert_eq!(
                        d.tree.value_type(n),
                        spec.value_type,
                        "type mismatch at {labels:?}"
                    );
                }
            }
        }
        for (i, m) in matched.iter().enumerate() {
            assert!(*m > 0, "value path {i} matched no elements");
        }
    }

    #[test]
    fn years_in_domain() {
        let d = small();
        for n in d.tree.all_nodes() {
            if d.tree.label_str(n) == "year" {
                let y = d.tree.value(n).as_numeric().unwrap();
                assert!((1920..2010).contains(&y), "{y}");
            }
        }
    }

    #[test]
    fn genre_plot_correlation_exists() {
        // Plots of different genres should use visibly different
        // vocabularies: compare term overlap within vs across genres.
        let d = generate(&ImdbConfig {
            num_movies: 400,
            seed: 3,
        });
        let mut by_genre: std::collections::HashMap<String, std::collections::HashSet<u32>> =
            std::collections::HashMap::new();
        for movie in d.tree.children(d.tree.root()) {
            let mut genre = None;
            let mut terms = std::collections::HashSet::new();
            for c in d.tree.children(movie) {
                match d.tree.label_str(c) {
                    "genre" => genre = d.tree.value(c).as_string().map(|s| s.to_string()),
                    "plot" => {
                        if let Some(tv) = d.tree.value(c).as_text() {
                            terms.extend(tv.terms().iter().map(|t| t.0));
                        }
                    }
                    _ => {}
                }
            }
            if let Some(g) = genre {
                by_genre.entry(g).or_default().extend(terms);
            }
        }
        let drama = &by_genre["drama"];
        let scifi = &by_genre["scifi"];
        let inter = drama.intersection(scifi).count() as f64;
        let union = drama.union(scifi).count() as f64;
        // Shared common vocabulary keeps overlap > 0, genre vocabularies
        // keep it well below 1.
        let jaccard = inter / union;
        assert!(jaccard > 0.05 && jaccard < 0.9, "jaccard {jaccard}");
    }

    #[test]
    fn serializes_to_parseable_xml() {
        let d = generate(&ImdbConfig {
            num_movies: 20,
            seed: 9,
        });
        let xml = xcluster_xml::write_document(&d.tree);
        let reparsed = xcluster_xml::parse(&xml).unwrap();
        assert_eq!(reparsed.len(), d.tree.len());
    }
}
