//! Writes a generated data set to an XML file — handy for feeding the
//! `xcluster` CLI.
//!
//! ```sh
//! cargo run -p xcluster-datagen --example gen_doc -- imdb 0.02 /tmp/imdb.xml
//! cargo run -p xcluster-datagen --example gen_doc -- xmark 0.05 /tmp/xmark.xml
//! ```

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let which = args.first().map(|s| s.as_str()).unwrap_or("imdb");
    let scale: f64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(0.02);
    let default_out = format!("/tmp/{which}.xml");
    let out = args.get(2).map(|s| s.as_str()).unwrap_or(&default_out);
    let dataset = match which {
        "imdb" => xcluster_datagen::imdb::generate(&xcluster_datagen::imdb::ImdbConfig {
            num_movies: ((11_500.0 * scale) as usize).max(10),
            seed: 42,
        }),
        "xmark" => {
            xcluster_datagen::xmark::generate(&xcluster_datagen::xmark::XmarkConfig::scaled(scale))
        }
        other => {
            eprintln!("unknown dataset {other:?} (expected imdb|xmark)");
            std::process::exit(2);
        }
    };
    let xml = xcluster_xml::write_document(&dataset.tree);
    std::fs::write(out, &xml).expect("write output");
    eprintln!(
        "wrote {out}: {} elements, {} bytes",
        dataset.num_elements(),
        xml.len()
    );
    eprintln!("summarized value paths:");
    for spec in &dataset.value_paths {
        eprintln!("  …/{} ({})", spec.suffix.join("/"), spec.value_type);
    }
}
