//! Label-path specifications designating value-summarized elements.
//!
//! The paper's reference synopsis "considers the construction of
//! value-summaries under specific paths of the underlying XML" (Section
//! 6.1; 7 paths for IMDB, 9 for XMark). A [`ValuePathSpec`] names such a
//! path by a *suffix* of labels, so one spec covers structurally parallel
//! paths (e.g. `["item", "name"]` matches items under every region).

use crate::value::ValueType;

/// A label-path suffix plus the value type found at matching elements.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValuePathSpec {
    /// Trailing labels, outermost first.
    pub suffix: Vec<String>,
    /// The value type at matching elements.
    pub value_type: ValueType,
}

impl ValuePathSpec {
    /// Builds a spec from string literals.
    pub fn new(suffix: &[&str], value_type: ValueType) -> Self {
        ValuePathSpec {
            suffix: suffix.iter().map(|s| s.to_string()).collect(),
            value_type,
        }
    }

    /// Whether a full label path (root first) ends with this suffix.
    pub fn matches(&self, labels: &[&str]) -> bool {
        if labels.len() < self.suffix.len() {
            return false;
        }
        labels[labels.len() - self.suffix.len()..]
            .iter()
            .zip(self.suffix.iter())
            .all(|(a, b)| a == b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suffix_matching() {
        let spec = ValuePathSpec::new(&["item", "name"], ValueType::String);
        assert!(spec.matches(&["site", "regions", "africa", "item", "name"]));
        assert!(spec.matches(&["item", "name"]));
        assert!(!spec.matches(&["name"]));
        assert!(!spec.matches(&["site", "item", "title"]));
        assert!(!spec.matches(&["site", "name", "item"]));
    }

    #[test]
    fn empty_suffix_matches_everything() {
        let spec = ValuePathSpec::new(&[], ValueType::None);
        assert!(spec.matches(&["anything"]));
        assert!(spec.matches(&[]));
    }
}
