//! Parser for the element-only XML subset the paper's data model uses.
//!
//! Supported syntax: nested elements `<tag>…</tag>`, character data,
//! entities `&amp; &lt; &gt;`, and skipped prolog/comments/PIs
//! (`<?…?>`, `<!--…-->`, `<!…>`). Attributes on start tags are accepted
//! and ignored (the paper's model is element-only). Mixed content is
//! handled by concatenating the text chunks of an element.
//!
//! Element *values* are typed at parse time. The paper assumes a `type`
//! mapping from elements to data types; [`ParseOptions`] reproduces that
//! with per-label [`TypeHint`]s, plus an inference fallback so that
//! documents written by [`crate::writer::write_document`] round-trip.

use crate::tree::{NodeId, XmlTree};
use crate::value::{Value, ValueType};
use std::collections::HashMap;
use std::fmt;

/// How to type the textual content of elements with a given label.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TypeHint {
    /// Force a specific value type. Content that does not parse as the
    /// requested type is a [`ParseError`].
    Force(ValueType),
    /// Infer: all-digit content → `NUMERIC`; content with at least
    /// [`ParseOptions::text_word_threshold`] words → `TEXT`; otherwise
    /// `STRING`. Elements with child elements never get values.
    Infer,
}

/// Parser configuration.
#[derive(Debug, Clone)]
pub struct ParseOptions {
    /// Per-label typing rules; labels not present use [`TypeHint::Infer`].
    pub type_map: HashMap<String, TypeHint>,
    /// Minimum word count for inferred content to be typed `TEXT`.
    pub text_word_threshold: usize,
}

impl Default for ParseOptions {
    fn default() -> Self {
        ParseOptions {
            type_map: HashMap::new(),
            text_word_threshold: 4,
        }
    }
}

impl ParseOptions {
    /// Adds a forced type for elements labeled `label`.
    pub fn with_type(mut self, label: &str, ty: ValueType) -> Self {
        self.type_map.insert(label.to_string(), TypeHint::Force(ty));
        self
    }
}

/// A parse failure with a byte offset into the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset where the error was detected.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "XML parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Parses `input` into an [`XmlTree`] using default options.
pub fn parse(input: &str) -> Result<XmlTree, ParseError> {
    parse_with(input, &ParseOptions::default())
}

/// Parses `input` into an [`XmlTree`] with explicit [`ParseOptions`].
pub fn parse_with(input: &str, opts: &ParseOptions) -> Result<XmlTree, ParseError> {
    Parser {
        input: input.as_bytes(),
        pos: 0,
        opts,
    }
    .parse_document()
}

struct Parser<'a> {
    input: &'a [u8],
    pos: usize,
    opts: &'a ParseOptions,
}

impl<'a> Parser<'a> {
    fn err<T>(&self, message: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError {
            offset: self.pos,
            message: message.into(),
        })
    }

    fn skip_misc(&mut self) {
        loop {
            while self.pos < self.input.len() && self.input[self.pos].is_ascii_whitespace() {
                self.pos += 1;
            }
            if self.rest().starts_with(b"<?") {
                self.skip_until(b"?>");
            } else if self.rest().starts_with(b"<!--") {
                self.skip_until(b"-->");
            } else if self.rest().starts_with(b"<!") {
                self.skip_until(b">");
            } else {
                return;
            }
        }
    }

    fn rest(&self) -> &[u8] {
        &self.input[self.pos..]
    }

    fn skip_until(&mut self, marker: &[u8]) {
        while self.pos < self.input.len() && !self.rest().starts_with(marker) {
            self.pos += 1;
        }
        self.pos = (self.pos + marker.len()).min(self.input.len());
    }

    fn parse_document(mut self) -> Result<XmlTree, ParseError> {
        self.skip_misc();
        if self.pos >= self.input.len() || self.input[self.pos] != b'<' {
            return self.err("expected root element");
        }
        let root_tag = self.parse_start_tag()?;
        let mut tree = XmlTree::new(&root_tag.0);
        let root = tree.root();
        if !root_tag.1 {
            self.parse_content(&mut tree, root, &root_tag.0)?;
        }
        self.skip_misc();
        if self.pos < self.input.len() {
            return self.err("trailing content after root element");
        }
        Ok(tree)
    }

    /// Parses `<name ...>` or `<name .../>`; returns (name, self_closing).
    /// Assumes `input[pos] == b'<'`.
    fn parse_start_tag(&mut self) -> Result<(String, bool), ParseError> {
        self.pos += 1; // '<'
        let start = self.pos;
        while self.pos < self.input.len() && is_name_byte(self.input[self.pos]) {
            self.pos += 1;
        }
        if self.pos == start {
            return self.err("expected element name");
        }
        let name = std::str::from_utf8(&self.input[start..self.pos])
            .map_err(|_| ParseError {
                offset: start,
                message: "element name is not UTF-8".into(),
            })?
            .to_string();
        // Skip (and ignore) attributes up to '>' or '/>'.
        loop {
            match self.rest().first() {
                Some(b'>') => {
                    self.pos += 1;
                    return Ok((name, false));
                }
                Some(b'/') if self.rest().get(1) == Some(&b'>') => {
                    self.pos += 2;
                    return Ok((name, true));
                }
                Some(b'"') => {
                    self.pos += 1;
                    while self.pos < self.input.len() && self.input[self.pos] != b'"' {
                        self.pos += 1;
                    }
                    if self.pos >= self.input.len() {
                        return self.err("unterminated attribute value");
                    }
                    self.pos += 1;
                }
                Some(_) => self.pos += 1,
                None => return self.err("unterminated start tag"),
            }
        }
    }

    /// Parses the content and end tag of an already-opened element.
    fn parse_content(
        &mut self,
        tree: &mut XmlTree,
        node: NodeId,
        tag: &str,
    ) -> Result<(), ParseError> {
        let mut text = String::new();
        let mut has_children = false;
        loop {
            if self.pos >= self.input.len() {
                return self.err(format!("missing </{tag}>"));
            }
            if self.input[self.pos] == b'<' {
                if self.rest().starts_with(b"</") {
                    self.pos += 2;
                    let start = self.pos;
                    while self.pos < self.input.len() && is_name_byte(self.input[self.pos]) {
                        self.pos += 1;
                    }
                    let name = &self.input[start..self.pos];
                    if name != tag.as_bytes() {
                        return self.err(format!(
                            "mismatched end tag: expected </{tag}>, found </{}>",
                            String::from_utf8_lossy(name)
                        ));
                    }
                    while self.pos < self.input.len() && self.input[self.pos] != b'>' {
                        self.pos += 1;
                    }
                    if self.pos >= self.input.len() {
                        return self.err("unterminated end tag");
                    }
                    self.pos += 1;
                    break;
                } else if self.rest().starts_with(b"<!--") {
                    self.skip_until(b"-->");
                } else if self.rest().starts_with(b"<?") {
                    self.skip_until(b"?>");
                } else {
                    let (child_tag, self_closing) = self.parse_start_tag()?;
                    let child = tree.add_child(node, &child_tag);
                    has_children = true;
                    if !self_closing {
                        self.parse_content(tree, child, &child_tag)?;
                    }
                }
            } else {
                self.parse_text(&mut text)?;
            }
        }
        let trimmed = text.trim();
        if !has_children && !trimmed.is_empty() {
            let value = self.type_content(tag, trimmed, tree)?;
            tree.set_value(node, value);
        }
        Ok(())
    }

    fn parse_text(&mut self, out: &mut String) -> Result<(), ParseError> {
        let start = self.pos;
        while self.pos < self.input.len() && self.input[self.pos] != b'<' {
            self.pos += 1;
        }
        let chunk = std::str::from_utf8(&self.input[start..self.pos]).map_err(|_| ParseError {
            offset: start,
            message: "character data is not UTF-8".into(),
        })?;
        unescape_into(chunk, out);
        Ok(())
    }

    fn type_content(
        &self,
        tag: &str,
        content: &str,
        tree: &mut XmlTree,
    ) -> Result<Value, ParseError> {
        let hint = self
            .opts
            .type_map
            .get(tag)
            .copied()
            .unwrap_or(TypeHint::Infer);
        let ty = match hint {
            TypeHint::Force(ty) => ty,
            TypeHint::Infer => {
                if content.bytes().all(|b| b.is_ascii_digit()) {
                    ValueType::Numeric
                } else if content.split_whitespace().count() >= self.opts.text_word_threshold {
                    ValueType::Text
                } else {
                    ValueType::String
                }
            }
        };
        Ok(match ty {
            ValueType::None => Value::None,
            ValueType::Numeric => {
                Value::Numeric(content.parse::<u64>().map_err(|_| ParseError {
                    offset: self.pos,
                    message: format!("<{tag}> content {content:?} is not numeric"),
                })?)
            }
            ValueType::String => Value::String(content.to_string()),
            ValueType::Text => {
                let terms: Vec<_> = content
                    .split_whitespace()
                    .map(|w| tree.intern_term(&w.to_ascii_lowercase()))
                    .collect();
                Value::Text(terms.into_iter().collect())
            }
        })
    }
}

fn is_name_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b == b'-' || b == b'.' || b == b':'
}

fn unescape_into(s: &str, out: &mut String) {
    let mut rest = s;
    while let Some(amp) = rest.find('&') {
        out.push_str(&rest[..amp]);
        let tail = &rest[amp..];
        if let Some(semi) = tail.find(';') {
            match &tail[..=semi] {
                "&amp;" => out.push('&'),
                "&lt;" => out.push('<'),
                "&gt;" => out.push('>'),
                "&quot;" => out.push('"'),
                "&apos;" => out.push('\''),
                other => out.push_str(other), // unknown entity: keep verbatim
            }
            rest = &tail[semi + 1..];
        } else {
            out.push_str(tail);
            return;
        }
    }
    out.push_str(rest);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::writer::write_document;

    #[test]
    fn parses_nested_elements() {
        let t = parse("<a><b><c>42</c></b><b></b></a>").unwrap();
        assert_eq!(t.len(), 4);
        assert_eq!(t.label_str(t.root()), "a");
        let b = t.children(t.root()).next().unwrap();
        let c = t.children(b).next().unwrap();
        assert_eq!(t.value(c).as_numeric(), Some(42));
    }

    #[test]
    fn infers_value_types() {
        let t = parse("<r><y>1999</y><s>short name</s><x>one two three four five</x></r>").unwrap();
        let kids: Vec<_> = t.children(t.root()).collect();
        assert_eq!(t.value_type(kids[0]), ValueType::Numeric);
        assert_eq!(t.value_type(kids[1]), ValueType::String);
        assert_eq!(t.value_type(kids[2]), ValueType::Text);
    }

    #[test]
    fn forced_types_override_inference() {
        let opts = ParseOptions::default().with_type("zip", ValueType::String);
        let t = parse_with("<r><zip>90210</zip></r>", &opts).unwrap();
        let z = t.children(t.root()).next().unwrap();
        assert_eq!(t.value(z).as_string(), Some("90210"));
    }

    #[test]
    fn forced_numeric_rejects_garbage() {
        let opts = ParseOptions::default().with_type("y", ValueType::Numeric);
        let err = parse_with("<r><y>abc</y></r>", &opts).unwrap_err();
        assert!(err.message.contains("not numeric"), "{err}");
    }

    #[test]
    fn self_closing_and_attributes() {
        let t = parse("<r><e id=\"1\" x=\"a>b\"/><f attr=\"v\">7</f></r>").unwrap();
        let kids: Vec<_> = t.children(t.root()).collect();
        assert_eq!(kids.len(), 2);
        assert_eq!(t.label_str(kids[0]), "e");
        assert_eq!(t.value(kids[1]).as_numeric(), Some(7));
    }

    #[test]
    fn skips_prolog_comments_pis() {
        let t =
            parse("<?xml version=\"1.0\"?><!DOCTYPE r><!-- hi --><r><!-- c --><a>1</a><?pi?></r>")
                .unwrap();
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn unescapes_entities() {
        let t = parse("<r><s>a&lt;b&amp;c&gt;d</s></r>").unwrap();
        let s = t.children(t.root()).next().unwrap();
        assert_eq!(t.value(s).as_string(), Some("a<b&c>d"));
    }

    #[test]
    fn mismatched_end_tag_is_error() {
        let err = parse("<a><b></c></a>").unwrap_err();
        assert!(err.message.contains("mismatched"), "{err}");
    }

    #[test]
    fn missing_end_tag_is_error() {
        assert!(parse("<a><b>").is_err());
        assert!(parse("<a>").is_err());
    }

    #[test]
    fn trailing_content_is_error() {
        assert!(parse("<a></a><b></b>").is_err());
        assert!(parse("<a></a>junk").is_err());
    }

    #[test]
    fn round_trip_via_writer() {
        let src = "<bib><paper><year>2000</year><title>Counting Twigs</title>\
                   <abs>xml employs a tree structured model</abs></paper></bib>";
        let t = parse(src).unwrap();
        let written = write_document(&t);
        let t2 = parse(&written).unwrap();
        assert_eq!(t.len(), t2.len());
        let labels1: Vec<_> = t.all_nodes().map(|n| t.label_str(n).to_string()).collect();
        let labels2: Vec<_> = t2
            .all_nodes()
            .map(|n| t2.label_str(n).to_string())
            .collect();
        assert_eq!(labels1, labels2);
        for (n1, n2) in t.all_nodes().zip(t2.all_nodes()) {
            assert_eq!(t.value_type(n1), t2.value_type(n2));
        }
    }

    #[test]
    fn mixed_content_concatenates_text() {
        // Mixed content: element children win, but pure-leaf text is typed.
        let t = parse("<r>hello <b>1</b> world</r>").unwrap();
        // r has a child element, so it gets no value.
        assert_eq!(t.value_type(t.root()), ValueType::None);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn whitespace_only_content_is_no_value() {
        let t = parse("<r>  \n\t </r>").unwrap();
        assert_eq!(t.value_type(t.root()), ValueType::None);
    }
}
