//! XML data model substrate for the XCluster reproduction.
//!
//! The paper (Polyzotis & Garofalakis, *XCluster Synopses for Structured XML
//! Content*, ICDE 2006, Section 2) models an XML document as a large
//! node-labeled tree `T(V, E)`. Each element node carries a label (tag) from
//! an alphabet of string literals and, optionally, a typed value:
//!
//! * [`ValueType::Numeric`] — integer values in a domain `0..M`,
//! * [`ValueType::String`] — short strings queried with substring predicates,
//! * [`ValueType::Text`] — free text modeled as a Boolean term vector over an
//!   interned term dictionary (set-theoretic IR model),
//! * elements without values map to a special null type.
//!
//! This crate provides:
//!
//! * [`intern`] — cheap `u32` symbol interning for labels and terms,
//! * [`value`] — the typed value model,
//! * [`tree`] — a flat arena tree ([`XmlTree`]) with preorder traversal,
//! * [`parser`] — a parser for the XML element subset used by the paper,
//! * [`writer`] — the matching serializer (used to measure "file size" for
//!   the Table 1 reproduction).

pub mod intern;
pub mod parser;
pub mod paths;
pub mod tree;
pub mod value;
pub mod writer;

pub use intern::{Interner, Symbol};
pub use parser::{parse, parse_with, ParseError, ParseOptions, TypeHint};
pub use paths::ValuePathSpec;
pub use tree::{NodeId, XmlTree};
pub use value::{TermId, TermVector, Value, ValueType};
pub use writer::write_document;
