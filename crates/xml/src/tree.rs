//! The node-labeled XML document tree `T(V, E)` (paper Section 2).
//!
//! Stored as a flat arena: each node records its label symbol, parent,
//! first/last child and next sibling, plus an optional typed [`Value`].
//! Node ids are dense `u32`s in document (preorder) creation order, which
//! the rest of the system exploits: the generators and parser always append
//! children in document order, so iterating `0..len` is a preorder sweep.

use crate::intern::{Interner, Symbol};
use crate::value::{TermId, Value, ValueType};
use std::fmt;

/// Identifier of an element node in an [`XmlTree`] arena.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The arena index of this node.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

#[derive(Debug, Clone)]
struct NodeData {
    label: Symbol,
    parent: Option<NodeId>,
    first_child: Option<NodeId>,
    last_child: Option<NodeId>,
    next_sibling: Option<NodeId>,
    value: Value,
}

/// An XML document tree with interned labels and terms.
///
/// The tree owns two interners: one for element labels, one for the `TEXT`
/// term dictionary. All structural queries (`children`, `descendants`,
/// `depth`) are allocation-free iterators over the arena.
#[derive(Debug, Clone)]
pub struct XmlTree {
    nodes: Vec<NodeData>,
    labels: Interner,
    terms: Interner,
}

impl XmlTree {
    /// Creates a tree containing only a root element labeled `root_label`.
    pub fn new(root_label: &str) -> Self {
        let mut labels = Interner::new();
        let root = NodeData {
            label: labels.intern(root_label),
            parent: None,
            first_child: None,
            last_child: None,
            next_sibling: None,
            value: Value::None,
        };
        XmlTree {
            nodes: vec![root],
            labels,
            terms: Interner::new(),
        }
    }

    /// The root element (always node 0).
    #[inline]
    pub fn root(&self) -> NodeId {
        NodeId(0)
    }

    /// Total number of element nodes.
    #[inline]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the tree has only a root — a tree is never fully empty.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Appends a new child with label `label` as the last child of `parent`.
    pub fn add_child(&mut self, parent: NodeId, label: &str) -> NodeId {
        let sym = self.labels.intern(label);
        self.add_child_sym(parent, sym)
    }

    /// Appends a new child with an already-interned label symbol.
    pub fn add_child_sym(&mut self, parent: NodeId, label: Symbol) -> NodeId {
        debug_assert!(label.index() < self.labels.len(), "foreign label symbol");
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(NodeData {
            label,
            parent: Some(parent),
            first_child: None,
            last_child: None,
            next_sibling: None,
            value: Value::None,
        });
        let p = &mut self.nodes[parent.index()];
        match p.last_child {
            None => {
                p.first_child = Some(id);
                p.last_child = Some(id);
            }
            Some(prev) => {
                p.last_child = Some(id);
                self.nodes[prev.index()].next_sibling = Some(id);
            }
        }
        id
    }

    /// Sets (or replaces) the value of `node`.
    pub fn set_value(&mut self, node: NodeId, value: Value) {
        self.nodes[node.index()].value = value;
    }

    /// Convenience: interns the whitespace-separated lowercase words of
    /// `text` into the term dictionary and stores them as a `TEXT` value.
    pub fn set_text_value(&mut self, node: NodeId, text: &str) {
        let terms: Vec<TermId> = text
            .split_whitespace()
            .map(|w| self.terms.intern(&w.to_ascii_lowercase()))
            .collect();
        self.set_value(node, Value::Text(terms.into_iter().collect()));
    }

    /// Interns a term into the document's term dictionary.
    pub fn intern_term(&mut self, term: &str) -> TermId {
        self.terms.intern(term)
    }

    /// Interns a label without creating a node.
    pub fn intern_label(&mut self, label: &str) -> Symbol {
        self.labels.intern(label)
    }

    /// The label symbol of `node` (`label(e)`).
    #[inline]
    pub fn label(&self, node: NodeId) -> Symbol {
        self.nodes[node.index()].label
    }

    /// The label string of `node`.
    pub fn label_str(&self, node: NodeId) -> &str {
        self.labels.resolve(self.label(node))
    }

    /// The value stored at `node` (`value(e)`).
    #[inline]
    pub fn value(&self, node: NodeId) -> &Value {
        &self.nodes[node.index()].value
    }

    /// The value type of `node` (`type(e)`).
    #[inline]
    pub fn value_type(&self, node: NodeId) -> ValueType {
        self.nodes[node.index()].value.value_type()
    }

    /// The parent of `node`, or `None` for the root.
    #[inline]
    pub fn parent(&self, node: NodeId) -> Option<NodeId> {
        self.nodes[node.index()].parent
    }

    /// Iterates over the children of `node` in document order.
    pub fn children(&self, node: NodeId) -> Children<'_> {
        Children {
            tree: self,
            next: self.nodes[node.index()].first_child,
        }
    }

    /// Number of children of `node`.
    pub fn child_count(&self, node: NodeId) -> usize {
        self.children(node).count()
    }

    /// Iterates over the descendants of `node` (excluding `node`) in
    /// document (preorder) order.
    pub fn descendants(&self, node: NodeId) -> Descendants<'_> {
        Descendants {
            tree: self,
            stack: self
                .children(node)
                .collect::<Vec<_>>()
                .into_iter()
                .rev()
                .collect(),
        }
    }

    /// Iterates over every node in the arena in creation (preorder) order.
    pub fn all_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    /// Depth of `node` (root has depth 0).
    pub fn depth(&self, node: NodeId) -> usize {
        let mut d = 0;
        let mut cur = node;
        while let Some(p) = self.parent(cur) {
            d += 1;
            cur = p;
        }
        d
    }

    /// Maximum node depth in the tree.
    pub fn max_depth(&self) -> usize {
        // Depth of a node is parent depth + 1; ids are created after parents,
        // so one forward pass suffices.
        let mut depths = vec![0usize; self.nodes.len()];
        let mut max = 0;
        for id in 1..self.nodes.len() {
            let p = self.nodes[id].parent.expect("non-root has parent");
            let d = depths[p.index()] + 1;
            depths[id] = d;
            max = max.max(d);
        }
        max
    }

    /// The label path from the root to `node`, e.g. `["site", "people",
    /// "person"]`.
    pub fn label_path(&self, node: NodeId) -> Vec<Symbol> {
        let mut path = vec![self.label(node)];
        let mut cur = node;
        while let Some(p) = self.parent(cur) {
            path.push(self.label(p));
            cur = p;
        }
        path.reverse();
        path
    }

    /// The label interner.
    pub fn labels(&self) -> &Interner {
        &self.labels
    }

    /// The term dictionary.
    pub fn terms(&self) -> &Interner {
        &self.terms
    }

    /// Resolves a term id to its string.
    pub fn term_str(&self, t: TermId) -> &str {
        self.terms.resolve(t)
    }
}

/// Iterator over the children of a node. See [`XmlTree::children`].
pub struct Children<'a> {
    tree: &'a XmlTree,
    next: Option<NodeId>,
}

impl Iterator for Children<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        let cur = self.next?;
        self.next = self.tree.nodes[cur.index()].next_sibling;
        Some(cur)
    }
}

/// Preorder iterator over descendants. See [`XmlTree::descendants`].
pub struct Descendants<'a> {
    tree: &'a XmlTree,
    stack: Vec<NodeId>,
}

impl Iterator for Descendants<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        let cur = self.stack.pop()?;
        let before = self.stack.len();
        for c in self.tree.children(cur) {
            self.stack.push(c);
        }
        self.stack[before..].reverse();
        Some(cur)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds the bibliographic example of the paper's Figure 1 (element
    /// names abbreviated as in the figure).
    fn figure1() -> XmlTree {
        let mut t = XmlTree::new("dblp");
        let a1 = t.add_child(t.root(), "author");
        let p2 = t.add_child(a1, "paper");
        let y3 = t.add_child(p2, "year");
        t.set_value(y3, Value::Numeric(2000));
        let t4 = t.add_child(p2, "title");
        t.set_value(t4, Value::String("Counting Twig Matches".into()));
        let k5 = t.add_child(p2, "keywords");
        t.set_text_value(k5, "XML Summary");
        let n6 = t.add_child(a1, "name");
        t.set_value(n6, Value::String("N. Polyzotis".into()));
        let p7 = t.add_child(a1, "paper");
        let y8 = t.add_child(p7, "year");
        t.set_value(y8, Value::Numeric(2002));
        let t9 = t.add_child(p7, "title");
        t.set_value(t9, Value::String("Holistic Twig Joins".into()));
        let ab10 = t.add_child(p7, "abstract");
        t.set_text_value(ab10, "XML employs a tree model");
        let a11 = t.add_child(t.root(), "author");
        let n12 = t.add_child(a11, "name");
        t.set_value(n12, Value::String("M. Garofalakis".into()));
        let b13 = t.add_child(a11, "book");
        let y14 = t.add_child(b13, "year");
        t.set_value(y14, Value::Numeric(2002));
        let t15 = t.add_child(b13, "title");
        t.set_value(t15, Value::String("Database Systems".into()));
        let f16 = t.add_child(b13, "foreword");
        t.set_text_value(f16, "Database systems have evolved");
        t
    }

    #[test]
    fn figure1_shape() {
        let t = figure1();
        assert_eq!(t.len(), 17);
        assert_eq!(t.child_count(t.root()), 2);
        assert_eq!(t.label_str(t.root()), "dblp");
        assert_eq!(t.max_depth(), 3);
    }

    #[test]
    fn children_in_document_order() {
        let t = figure1();
        let a1 = t.children(t.root()).next().unwrap();
        let labels: Vec<&str> = t.children(a1).map(|c| t.label_str(c)).collect();
        assert_eq!(labels, vec!["paper", "name", "paper"]);
    }

    #[test]
    fn descendants_preorder() {
        let t = figure1();
        let labels: Vec<&str> = t.descendants(t.root()).map(|n| t.label_str(n)).collect();
        assert_eq!(labels.len(), 16);
        assert_eq!(&labels[..4], &["author", "paper", "year", "title"]);
        // Preorder: the second author subtree comes after the whole first.
        assert_eq!(labels[10], "author");
    }

    #[test]
    fn parent_and_depth() {
        let t = figure1();
        let a1 = t.children(t.root()).next().unwrap();
        let p2 = t.children(a1).next().unwrap();
        let y3 = t.children(p2).next().unwrap();
        assert_eq!(t.parent(y3), Some(p2));
        assert_eq!(t.parent(p2), Some(a1));
        assert_eq!(t.parent(t.root()), None);
        assert_eq!(t.depth(y3), 3);
        assert_eq!(t.depth(t.root()), 0);
    }

    #[test]
    fn label_path() {
        let t = figure1();
        let a1 = t.children(t.root()).next().unwrap();
        let p2 = t.children(a1).next().unwrap();
        let path: Vec<&str> = t
            .label_path(p2)
            .into_iter()
            .map(|s| t.labels().resolve(s))
            .collect();
        assert_eq!(path, vec!["dblp", "author", "paper"]);
    }

    #[test]
    fn values_and_types() {
        let t = figure1();
        let a1 = t.children(t.root()).next().unwrap();
        let p2 = t.children(a1).next().unwrap();
        let y3 = t.children(p2).next().unwrap();
        assert_eq!(t.value(y3).as_numeric(), Some(2000));
        assert_eq!(t.value_type(y3), ValueType::Numeric);
        assert_eq!(t.value_type(p2), ValueType::None);
    }

    #[test]
    fn text_values_tokenize_and_lowercase() {
        let mut t = XmlTree::new("r");
        let c = t.add_child(t.root(), "abs");
        t.set_text_value(c, "XML employs XML trees");
        let tv = t.value(c).as_text().unwrap();
        assert_eq!(tv.len(), 3); // xml, employs, trees
        let xml = t.terms().get("xml").unwrap();
        assert!(tv.contains(xml));
        assert!(t.terms().get("XML").is_none());
    }

    #[test]
    fn all_nodes_covers_arena() {
        let t = figure1();
        assert_eq!(t.all_nodes().count(), t.len());
    }

    #[test]
    fn single_node_tree() {
        let t = XmlTree::new("only");
        assert_eq!(t.len(), 1);
        assert_eq!(t.children(t.root()).count(), 0);
        assert_eq!(t.descendants(t.root()).count(), 0);
        assert_eq!(t.max_depth(), 0);
    }
}
