//! Typed element values (paper Section 2, "Data Model").
//!
//! The paper considers three value types plus a null type for elements
//! without values. `TEXT` values follow the set-theoretic Boolean IR model:
//! a text is the *set* of dictionary terms it contains, i.e. a Boolean
//! vector over the term dictionary. We store it as a sorted, deduplicated
//! vector of [`TermId`]s.

use crate::intern::Symbol;
use std::fmt;

/// Interned identifier of a dictionary term appearing in `TEXT` content.
pub type TermId = Symbol;

/// The value type of an XML element (`type(e)` in the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ValueType {
    /// No value (the special null data type).
    None,
    /// Integer values in a domain `{0 .. M-1}` (prices, years, ...).
    Numeric,
    /// Short strings queried with substring (`contains`) predicates.
    String,
    /// Free text queried with IR-style `ftcontains` term predicates.
    Text,
}

impl ValueType {
    /// Short lowercase name, used by the writer and experiment reports.
    pub fn name(self) -> &'static str {
        match self {
            ValueType::None => "none",
            ValueType::Numeric => "numeric",
            ValueType::String => "string",
            ValueType::Text => "text",
        }
    }
}

impl fmt::Display for ValueType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A Boolean term vector: the sorted set of distinct terms in a text.
#[derive(Debug, Clone, PartialEq, Eq, Default, Hash)]
pub struct TermVector {
    terms: Vec<TermId>,
}

impl TermVector {
    /// Builds a term vector from an arbitrary term sequence; duplicates are
    /// removed and order normalized (Boolean model: only membership counts).
    pub fn from_terms(mut terms: Vec<TermId>) -> Self {
        terms.sort_unstable();
        terms.dedup();
        TermVector { terms }
    }

    /// The sorted, distinct terms.
    pub fn terms(&self) -> &[TermId] {
        &self.terms
    }

    /// Number of distinct terms.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// Whether the text contains no terms.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Boolean membership test (`w[t]` of the paper's Boolean vector).
    pub fn contains(&self, t: TermId) -> bool {
        self.terms.binary_search(&t).is_ok()
    }
}

impl FromIterator<TermId> for TermVector {
    fn from_iter<I: IntoIterator<Item = TermId>>(iter: I) -> Self {
        TermVector::from_terms(iter.into_iter().collect())
    }
}

/// The value stored at an XML element (`value(e)` in the paper).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum Value {
    /// No value.
    #[default]
    None,
    /// A `NUMERIC` value.
    Numeric(u64),
    /// A `STRING` value.
    String(String),
    /// A `TEXT` value as a Boolean term vector.
    Text(TermVector),
}

impl Value {
    /// The type of this value (`type(e)`).
    pub fn value_type(&self) -> ValueType {
        match self {
            Value::None => ValueType::None,
            Value::Numeric(_) => ValueType::Numeric,
            Value::String(_) => ValueType::String,
            Value::Text(_) => ValueType::Text,
        }
    }

    /// The numeric payload, if this is a `NUMERIC` value.
    pub fn as_numeric(&self) -> Option<u64> {
        match self {
            Value::Numeric(n) => Some(*n),
            _ => None,
        }
    }

    /// The string payload, if this is a `STRING` value.
    pub fn as_string(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The term vector, if this is a `TEXT` value.
    pub fn as_text(&self) -> Option<&TermVector> {
        match self {
            Value::Text(tv) => Some(tv),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(i: u32) -> TermId {
        Symbol(i)
    }

    #[test]
    fn term_vector_dedups_and_sorts() {
        let tv = TermVector::from_terms(vec![t(3), t(1), t(3), t(2), t(1)]);
        assert_eq!(tv.terms(), &[t(1), t(2), t(3)]);
        assert_eq!(tv.len(), 3);
    }

    #[test]
    fn term_vector_contains() {
        let tv: TermVector = [t(5), t(9)].into_iter().collect();
        assert!(tv.contains(t(5)));
        assert!(tv.contains(t(9)));
        assert!(!tv.contains(t(7)));
    }

    #[test]
    fn empty_term_vector() {
        let tv = TermVector::default();
        assert!(tv.is_empty());
        assert!(!tv.contains(t(0)));
    }

    #[test]
    fn value_types_match_payload() {
        assert_eq!(Value::None.value_type(), ValueType::None);
        assert_eq!(Value::Numeric(7).value_type(), ValueType::Numeric);
        assert_eq!(Value::String("x".into()).value_type(), ValueType::String);
        assert_eq!(
            Value::Text(TermVector::default()).value_type(),
            ValueType::Text
        );
    }

    #[test]
    fn value_accessors() {
        assert_eq!(Value::Numeric(2000).as_numeric(), Some(2000));
        assert_eq!(Value::Numeric(2000).as_string(), None);
        assert_eq!(Value::String("acm".into()).as_string(), Some("acm"));
        let tv: TermVector = [t(1)].into_iter().collect();
        assert_eq!(Value::Text(tv.clone()).as_text(), Some(&tv));
        assert_eq!(Value::None.as_text(), None);
    }

    #[test]
    fn value_type_names() {
        assert_eq!(ValueType::Numeric.name(), "numeric");
        assert_eq!(ValueType::Text.to_string(), "text");
    }
}
