//! Serializer for [`XmlTree`] documents.
//!
//! Emits plain element-only XML: numeric values as decimal text, string
//! values as escaped character data, text values as the space-joined term
//! list. `write_document` is also how the experiment harness measures the
//! "File Size" column of the paper's Table 1 for the synthetic data sets.

use crate::tree::{NodeId, XmlTree};
use crate::value::Value;
use std::fmt::Write;

/// Serializes the whole document rooted at `tree.root()`.
pub fn write_document(tree: &XmlTree) -> String {
    let mut out = String::new();
    write_node(tree, tree.root(), &mut out);
    out
}

fn write_node(tree: &XmlTree, node: NodeId, out: &mut String) {
    let tag = tree.label_str(node);
    let _ = write!(out, "<{tag}>");
    match tree.value(node) {
        Value::None => {}
        Value::Numeric(n) => {
            let _ = write!(out, "{n}");
        }
        Value::String(s) => escape_into(s, out),
        Value::Text(tv) => {
            for (i, t) in tv.terms().iter().enumerate() {
                if i > 0 {
                    out.push(' ');
                }
                escape_into(tree.term_str(*t), out);
            }
        }
    }
    for c in tree.children(node) {
        write_node(tree, c, out);
    }
    let _ = write!(out, "</{tag}>");
}

/// Escapes the XML character-data metacharacters.
pub(crate) fn escape_into(s: &str, out: &mut String) {
    for ch in s.chars() {
        match ch {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            _ => out.push(ch),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    #[test]
    fn writes_nested_elements() {
        let mut t = XmlTree::new("a");
        let b = t.add_child(t.root(), "b");
        let c = t.add_child(b, "c");
        t.set_value(c, Value::Numeric(42));
        assert_eq!(write_document(&t), "<a><b><c>42</c></b></a>");
    }

    #[test]
    fn escapes_string_values() {
        let mut t = XmlTree::new("r");
        let s = t.add_child(t.root(), "s");
        t.set_value(s, Value::String("a<b&c>d".into()));
        assert_eq!(write_document(&t), "<r><s>a&lt;b&amp;c&gt;d</s></r>");
    }

    #[test]
    fn writes_text_terms_space_joined() {
        let mut t = XmlTree::new("r");
        let x = t.add_child(t.root(), "abs");
        t.set_text_value(x, "beta alpha beta");
        // TermVector sorts by intern id (interning order: beta, alpha).
        assert_eq!(write_document(&t), "<r><abs>beta alpha</abs></r>");
    }

    #[test]
    fn empty_element() {
        let t = XmlTree::new("solo");
        assert_eq!(write_document(&t), "<solo></solo>");
    }
}
