//! String interning for element labels and text terms.
//!
//! XCluster synopses compare labels and terms billions of times during
//! construction (every candidate merge inspects labels; every atomic TEXT
//! predicate is a term lookup), so both are interned to dense `u32` symbols
//! once, at parse/generation time.

use std::collections::HashMap;
use std::fmt;

/// A dense handle for an interned string.
///
/// Symbols are only meaningful relative to the [`Interner`] that produced
/// them; two interners assign ids independently.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(pub u32);

impl Symbol {
    /// Returns the dense index of this symbol (0-based, contiguous).
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sym#{}", self.0)
    }
}

/// An append-only string interner assigning dense, contiguous [`Symbol`]s.
#[derive(Debug, Default, Clone)]
pub struct Interner {
    map: HashMap<Box<str>, Symbol>,
    strings: Vec<Box<str>>,
}

impl Interner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `s`, returning its symbol. Repeated calls with the same string
    /// return the same symbol.
    pub fn intern(&mut self, s: &str) -> Symbol {
        if let Some(&sym) = self.map.get(s) {
            return sym;
        }
        let sym = Symbol(self.strings.len() as u32);
        let boxed: Box<str> = s.into();
        self.strings.push(boxed.clone());
        self.map.insert(boxed, sym);
        sym
    }

    /// Looks up a previously interned string without interning it.
    pub fn get(&self, s: &str) -> Option<Symbol> {
        self.map.get(s).copied()
    }

    /// Resolves a symbol back to its string.
    ///
    /// # Panics
    /// Panics if `sym` was not produced by this interner.
    pub fn resolve(&self, sym: Symbol) -> &str {
        &self.strings[sym.index()]
    }

    /// Number of distinct interned strings.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// Whether no strings have been interned.
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }

    /// Iterates over `(symbol, string)` pairs in interning order.
    pub fn iter(&self) -> impl Iterator<Item = (Symbol, &str)> {
        self.strings
            .iter()
            .enumerate()
            .map(|(i, s)| (Symbol(i as u32), s.as_ref()))
    }

    /// Resident heap bytes: string payloads are stored twice (once in
    /// the resolve vector, once as map keys); the map side approximates
    /// one `(key, value)` slot plus one control byte per allocated
    /// bucket (the std swiss-table layout).
    pub fn heap_bytes(&self) -> usize {
        let payload: usize = self.strings.iter().map(|s| s.len()).sum();
        let vec_side = self.strings.capacity() * std::mem::size_of::<Box<str>>();
        let map_side =
            self.map.capacity() * (std::mem::size_of::<(Box<str>, Symbol)>() + 1) + payload;
        payload + vec_side + map_side
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut i = Interner::new();
        let a = i.intern("movie");
        let b = i.intern("movie");
        assert_eq!(a, b);
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn symbols_are_dense_and_ordered() {
        let mut i = Interner::new();
        let a = i.intern("a");
        let b = i.intern("b");
        let c = i.intern("c");
        assert_eq!((a.0, b.0, c.0), (0, 1, 2));
    }

    #[test]
    fn resolve_round_trips() {
        let mut i = Interner::new();
        let sym = i.intern("paper");
        assert_eq!(i.resolve(sym), "paper");
    }

    #[test]
    fn get_does_not_intern() {
        let mut i = Interner::new();
        assert_eq!(i.get("x"), None);
        let s = i.intern("x");
        assert_eq!(i.get("x"), Some(s));
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn iter_yields_in_order() {
        let mut i = Interner::new();
        i.intern("x");
        i.intern("y");
        let collected: Vec<_> = i.iter().map(|(s, t)| (s.0, t.to_string())).collect();
        assert_eq!(collected, vec![(0, "x".to_string()), (1, "y".to_string())]);
    }

    #[test]
    fn empty_interner() {
        let i = Interner::new();
        assert!(i.is_empty());
        assert_eq!(i.len(), 0);
    }
}
