//! Serving-side telemetry: the top-K slow-query ring and the shadow
//! accuracy monitor.
//!
//! # Slow ring
//!
//! [`SlowRing`] keeps the K slowest `/estimate` batches seen since
//! startup, each with the full span trees of its queries. Traces are
//! produced by *re-running* a qualifying batch through the traced
//! estimator entry point — estimation is a pure function of (synopsis,
//! query), so the re-run returns bitwise-identical estimates while the
//! entry keeps the originally observed wall-clock latency for ranking.
//!
//! # Shadow accuracy monitor
//!
//! [`ShadowMonitor`] owns a background worker (one thread, fed by a
//! bounded `sync_channel` — the same fixed-pool discipline as
//! `xcluster_core::par`) that re-evaluates a deterministic sample of
//! served queries *exactly* against the original document. Per-class
//! relative errors are encoded as nano-units (`rel × 1e9`, rounded)
//! into [`SlidingWindow`]s and exported as the labeled gauge family
//! `xcluster_accuracy_rel{class="..."}`; a windowed mean crossing the
//! configured threshold bumps `xcluster_accuracy_drift_total`
//! (edge-triggered per class, so a sustained breach counts once).
//!
//! The sampling decision is a pure function of `(seed, journal seq)`
//! via [`Sampler`], so an offline reader holding the exported journal
//! can reconstruct exactly which queries the shadow evaluated and
//! reproduce the published error means independently — the bench
//! harness does precisely that and asserts agreement within `1e-9`.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use xcluster_core::metrics::relative_error;
use xcluster_core::par::resolve_threads;
use xcluster_obs::trace::{AttrValue, Span};
use xcluster_obs::{expose, SlidingWindow, Trace, WindowConfig};
use xcluster_query::{classify, parse_twig, EvalIndex, QueryClass};
use xcluster_xml::XmlTree;

/// Scale for storing relative errors in integer sliding windows:
/// one unit is 1e-9 of relative error ("nano-rel").
pub const REL_SCALE: f64 = 1e9;

/// Which shard of a `len`-item batch estimated at `threads` configured
/// threads contains item `index`. Mirrors the `balanced_chunks`
/// arithmetic in `xcluster_core::par` (contiguous chunks, the first
/// `len % chunks` chunks carry one extra item), so journal records can
/// attribute each query to the worker shard that actually estimated it.
pub fn shard_of(index: usize, len: usize, threads: usize) -> u64 {
    debug_assert!(index < len);
    let chunks = resolve_threads(threads).min(len.max(1));
    let base = len / chunks;
    let rem = len % chunks;
    let big = rem * (base + 1);
    if index < big {
        (index / (base + 1)) as u64
    } else {
        (rem + (index - big) / base.max(1)) as u64
    }
}

/// One retained slow batch: identity, observed latency, and the span
/// trees of a deterministic traced re-run.
#[derive(Debug, Clone)]
pub struct SlowEntry {
    /// Journal sequence number of the batch's first query.
    pub seq: u64,
    /// The request id the batch was served under.
    pub request_id: String,
    /// Originally observed batch latency (not the re-run's).
    pub latency_ns: u64,
    /// Queries in the batch.
    pub queries: usize,
    /// One trace per query, in batch order.
    pub traces: Vec<Trace>,
}

impl SlowEntry {
    fn heap_bytes(&self) -> usize {
        let attr_entry = std::mem::size_of::<(&'static str, AttrValue)>();
        let trace_bytes: usize = self
            .traces
            .iter()
            .flat_map(|t| t.spans())
            .map(|s| {
                let strings: usize = s
                    .attrs
                    .iter()
                    .map(|(_, v)| match v {
                        AttrValue::Str(s) => s.capacity(),
                        _ => 0,
                    })
                    .sum();
                std::mem::size_of::<Span>() + s.attrs.capacity() * attr_entry + strings
            })
            .sum();
        self.request_id.capacity() + trace_bytes
    }
}

/// Bounded top-K ring of the slowest `/estimate` batches, ordered by
/// observed latency (descending). `offer` keeps at most `capacity`
/// entries; `qualifies` lets callers skip the traced re-run for batches
/// that would not be admitted anyway.
pub struct SlowRing {
    capacity: usize,
    inner: Mutex<Vec<SlowEntry>>,
}

impl SlowRing {
    /// An empty ring retaining at most `capacity` entries.
    pub fn new(capacity: usize) -> SlowRing {
        SlowRing {
            capacity,
            inner: Mutex::new(Vec::new()),
        }
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Whether a batch with this latency would currently be admitted.
    pub fn qualifies(&self, latency_ns: u64) -> bool {
        if self.capacity == 0 {
            return false;
        }
        let g = self.inner.lock().unwrap();
        g.len() < self.capacity || latency_ns > g.last().map_or(0, |e| e.latency_ns)
    }

    /// Inserts `entry` in latency order, evicting the fastest retained
    /// entry if over capacity.
    pub fn offer(&self, entry: SlowEntry) {
        if self.capacity == 0 {
            return;
        }
        let mut g = self.inner.lock().unwrap();
        let at = g
            .binary_search_by(|e| entry.latency_ns.cmp(&e.latency_ns))
            .unwrap_or_else(|i| i);
        if at >= self.capacity {
            return;
        }
        g.insert(at, entry);
        g.truncate(self.capacity);
    }

    /// Retained entries, slowest first.
    pub fn snapshot(&self) -> Vec<SlowEntry> {
        self.inner.lock().unwrap().clone()
    }

    /// Number of retained entries.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().len()
    }

    /// Whether nothing has been retained yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Approximate resident bytes of the retained entries (traces,
    /// attribute strings, request ids).
    pub fn heap_bytes(&self) -> usize {
        let g = self.inner.lock().unwrap();
        g.capacity() * std::mem::size_of::<SlowEntry>()
            + g.iter().map(SlowEntry::heap_bytes).sum::<usize>()
    }
}

/// Shadow monitor construction parameters.
#[derive(Debug, Clone)]
pub struct ShadowConfig {
    /// Sampling rate in parts-per-million of served queries (default
    /// 50 000 = 5%).
    pub sample_ppm: u32,
    /// Sampler seed — must match the journal's seed for offline
    /// reconstruction (the server wires this automatically).
    pub seed: u64,
    /// Sanity bound `s` of the relative-error metric (paper §6.1).
    pub sanity_bound: f64,
    /// Windowed mean relative error above which a class is in drift.
    pub drift_threshold: f64,
    /// Bounded job-queue depth; estimation never blocks on the shadow —
    /// jobs beyond this are counted as dropped.
    pub queue: usize,
    /// Shape of the per-class error windows.
    pub window: WindowConfig,
}

impl Default for ShadowConfig {
    fn default() -> Self {
        ShadowConfig {
            sample_ppm: 50_000,
            seed: 0x1CEB_00DA,
            sanity_bound: 1.0,
            drift_threshold: 0.5,
            queue: 4096,
            window: WindowConfig::seconds(12, 10),
        }
    }
}

/// One sampled query heading to exact re-evaluation.
struct ShadowJob {
    query: String,
    estimate: f64,
}

/// Monitor counters at one instant.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShadowStats {
    /// Jobs accepted into the queue.
    pub submitted: u64,
    /// Jobs exactly evaluated by the worker.
    pub evaluated: u64,
    /// Jobs rejected because the queue was full.
    pub dropped: u64,
    /// Sampled queries the worker could not parse against the document
    /// terms (should stay 0 — the server already parsed them).
    pub parse_failures: u64,
    /// Edge-triggered threshold breaches across classes.
    pub drift_events: u64,
}

struct ShadowShared {
    /// Per-class nano-rel error windows, indexed in `QueryClass::ALL`
    /// order.
    windows: [SlidingWindow; 4],
    /// Running exact sums backing the exported means: (nano-rel sum,
    /// count) per class. Unlike the sliding windows these never expire,
    /// which is what makes the bench's offline reconstruction exact.
    sums: [(AtomicU64, AtomicU64); 4],
    submitted: AtomicU64,
    evaluated: AtomicU64,
    dropped: AtomicU64,
    parse_failures: AtomicU64,
    drift_events: AtomicU64,
    in_drift: [AtomicBool; 4],
    sanity_bound: f64,
    drift_threshold: f64,
}

/// The shadow accuracy monitor: owns the worker thread and the shared
/// error state. See the module docs for the full contract.
pub struct ShadowMonitor {
    cfg: ShadowConfig,
    tx: Mutex<Option<SyncSender<ShadowJob>>>,
    worker: Mutex<Option<JoinHandle<()>>>,
    shared: Arc<ShadowShared>,
}

impl ShadowMonitor {
    /// Spawns the monitor over an owned copy of the served document.
    /// The (potentially expensive) `EvalIndex` build happens on the
    /// worker thread, so serving is never delayed by it.
    pub fn spawn(cfg: ShadowConfig, tree: XmlTree) -> ShadowMonitor {
        let shared = Arc::new(ShadowShared {
            windows: std::array::from_fn(|_| SlidingWindow::new(cfg.window)),
            sums: std::array::from_fn(|_| (AtomicU64::new(0), AtomicU64::new(0))),
            submitted: AtomicU64::new(0),
            evaluated: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            parse_failures: AtomicU64::new(0),
            drift_events: AtomicU64::new(0),
            in_drift: std::array::from_fn(|_| AtomicBool::new(false)),
            sanity_bound: cfg.sanity_bound,
            drift_threshold: cfg.drift_threshold,
        });
        let (tx, rx) = sync_channel::<ShadowJob>(cfg.queue.max(1));
        let worker_shared = Arc::clone(&shared);
        let worker = std::thread::Builder::new()
            .name("shadow-eval".to_string())
            .spawn(move || {
                let index = EvalIndex::build(&tree);
                // `recv` drains buffered jobs before reporting
                // disconnect, so dropping the sender is a clean flush.
                while let Ok(job) = rx.recv() {
                    worker_shared.evaluate(&tree, &index, &job);
                }
            })
            .expect("spawn shadow worker");
        ShadowMonitor {
            cfg,
            tx: Mutex::new(Some(tx)),
            worker: Mutex::new(Some(worker)),
            shared,
        }
    }

    /// The monitor's configuration.
    pub fn config(&self) -> &ShadowConfig {
        &self.cfg
    }

    /// Offers one sampled query. Never blocks: a full queue counts the
    /// job as dropped and returns `false`.
    pub fn submit(&self, query: &str, estimate: f64) -> bool {
        let g = self.tx.lock().unwrap();
        let Some(tx) = g.as_ref() else {
            self.shared.dropped.fetch_add(1, Ordering::Relaxed);
            return false;
        };
        match tx.try_send(ShadowJob {
            query: query.to_string(),
            estimate,
        }) {
            Ok(()) => {
                self.shared.submitted.fetch_add(1, Ordering::Relaxed);
                true
            }
            Err(TrySendError::Full(_) | TrySendError::Disconnected(_)) => {
                self.shared.dropped.fetch_add(1, Ordering::Relaxed);
                false
            }
        }
    }

    /// Closes the queue and joins the worker after it drains every
    /// buffered job. Error state stays readable afterwards. Idempotent.
    pub fn finish(&self) {
        self.tx.lock().unwrap().take();
        if let Some(h) = self.worker.lock().unwrap().take() {
            let _ = h.join();
        }
    }

    /// Current counters.
    pub fn stats(&self) -> ShadowStats {
        ShadowStats {
            submitted: self.shared.submitted.load(Ordering::Relaxed),
            evaluated: self.shared.evaluated.load(Ordering::Relaxed),
            dropped: self.shared.dropped.load(Ordering::Relaxed),
            parse_failures: self.shared.parse_failures.load(Ordering::Relaxed),
            drift_events: self.shared.drift_events.load(Ordering::Relaxed),
        }
    }

    /// Whether every accepted job has been evaluated (used by tests and
    /// the bench harness to wait for quiescence without sleeping).
    pub fn idle(&self) -> bool {
        let s = self.stats();
        s.evaluated == s.submitted
    }

    /// Mean relative error of `class` over every evaluated sample since
    /// startup (`None` until the class has one). Quantized to 1e-9.
    pub fn class_rel(&self, class: QueryClass) -> Option<f64> {
        let i = class_index(class);
        let count = self.shared.sums[i].1.load(Ordering::Acquire);
        if count == 0 {
            return None;
        }
        let sum = self.shared.sums[i].0.load(Ordering::Acquire);
        Some(sum as f64 / count as f64 / REL_SCALE)
    }

    /// Appends the monitor's Prometheus families to `out`:
    /// `<ns>_accuracy_rel{class=...}` (running mean),
    /// `<ns>_accuracy_rel_window{class=...}` (sliding-window mean), the
    /// drift counter, and the shadow job counters.
    pub fn render_metrics(&self, out: &mut String, namespace: &str) {
        let classes = ["struct", "numeric", "string", "text"];
        let mut rel: Vec<(Vec<(&str, &str)>, f64)> = Vec::new();
        let mut rel_window: Vec<(Vec<(&str, &str)>, f64)> = Vec::new();
        for (i, class) in QueryClass::ALL.iter().enumerate() {
            if let Some(mean) = self.class_rel(*class) {
                rel.push((vec![("class", classes[i])], mean));
            }
            let snap = self.shared.windows[i].snapshot();
            if snap.count > 0 {
                rel_window.push((vec![("class", classes[i])], snap.mean() / REL_SCALE));
            }
        }
        let s = self.stats();
        let name = |suffix: &str| format!("{namespace}_{suffix}");
        fn as_slices<'a>(
            v: &'a [(Vec<(&'a str, &'a str)>, f64)],
        ) -> Vec<(&'a [(&'a str, &'a str)], f64)> {
            v.iter().map(|(l, val)| (l.as_slice(), *val)).collect()
        }
        expose::render_labeled_family(
            out,
            &name("accuracy_rel"),
            "gauge",
            "Mean relative error of shadow-evaluated queries since startup, by class.",
            &as_slices(&rel),
        );
        expose::render_labeled_family(
            out,
            &name("accuracy_rel_window"),
            "gauge",
            "Sliding-window mean relative error of shadow-evaluated queries, by class.",
            &as_slices(&rel_window),
        );
        expose::render_labeled_family(
            out,
            &name("accuracy_drift_total"),
            "counter",
            "Edge-triggered windowed-mean threshold breaches across classes.",
            &[(&[], s.drift_events as f64)],
        );
        expose::render_labeled_family(
            out,
            &name("shadow_sampled_total"),
            "counter",
            "Queries accepted by the shadow monitor queue.",
            &[(&[], s.submitted as f64)],
        );
        expose::render_labeled_family(
            out,
            &name("shadow_evaluated_total"),
            "counter",
            "Queries exactly re-evaluated by the shadow worker.",
            &[(&[], s.evaluated as f64)],
        );
        expose::render_labeled_family(
            out,
            &name("shadow_dropped_total"),
            "counter",
            "Sampled queries rejected because the shadow queue was full.",
            &[(&[], s.dropped as f64)],
        );
    }
}

impl Drop for ShadowMonitor {
    fn drop(&mut self) {
        self.finish();
    }
}

impl ShadowShared {
    fn evaluate(&self, tree: &XmlTree, index: &EvalIndex, job: &ShadowJob) {
        let Ok(twig) = parse_twig(&job.query, tree.terms()) else {
            self.parse_failures.fetch_add(1, Ordering::Relaxed);
            self.evaluated.fetch_add(1, Ordering::Relaxed);
            return;
        };
        let truth = xcluster_query::evaluate(&twig, tree, index);
        let rel = relative_error(truth, job.estimate, self.sanity_bound);
        let nanos = (rel * REL_SCALE).round() as u64;
        let i = class_index(classify(&twig));
        self.windows[i].record(nanos);
        self.sums[i].0.fetch_add(nanos, Ordering::AcqRel);
        self.sums[i].1.fetch_add(1, Ordering::AcqRel);
        let windowed_mean = {
            let snap = self.windows[i].snapshot();
            snap.mean() / REL_SCALE
        };
        let breached = windowed_mean > self.drift_threshold;
        let was = self.in_drift[i].swap(breached, Ordering::AcqRel);
        if breached && !was {
            self.drift_events.fetch_add(1, Ordering::Relaxed);
        }
        self.evaluated.fetch_add(1, Ordering::Release);
    }
}

fn class_index(class: QueryClass) -> usize {
    QueryClass::ALL
        .iter()
        .position(|c| *c == class)
        .expect("class in ALL")
}

#[cfg(test)]
mod tests {
    use super::*;
    use xcluster_obs::TraceBuilder;

    fn entry(seq: u64, latency_ns: u64) -> SlowEntry {
        let t = TraceBuilder::new("serve.batch").finish();
        SlowEntry {
            seq,
            request_id: format!("req-{seq}"),
            latency_ns,
            queries: 1,
            traces: vec![t],
        }
    }

    #[test]
    fn shard_of_mirrors_balanced_chunks() {
        for len in 1..40usize {
            for threads in 1..6usize {
                let chunks = resolve_threads(threads).min(len);
                let base = len / chunks;
                let rem = len % chunks;
                // Reconstruct the chunk boundaries the long way.
                let mut expect = Vec::with_capacity(len);
                for c in 0..chunks {
                    let size = base + usize::from(c < rem);
                    for _ in 0..size {
                        expect.push(c as u64);
                    }
                }
                for (i, want) in expect.iter().enumerate() {
                    assert_eq!(
                        shard_of(i, len, threads),
                        *want,
                        "len={len} threads={threads} i={i}"
                    );
                }
            }
        }
    }

    #[test]
    fn slow_ring_keeps_top_k_by_latency() {
        let ring = SlowRing::new(3);
        assert!(ring.qualifies(1));
        for (seq, lat) in [(0, 50), (1, 10), (2, 90), (3, 40), (4, 70)] {
            if ring.qualifies(lat) {
                ring.offer(entry(seq, lat));
            }
        }
        let snap = ring.snapshot();
        let lats: Vec<u64> = snap.iter().map(|e| e.latency_ns).collect();
        assert_eq!(lats, vec![90, 70, 50]);
        // Slower-than-min qualifies, faster does not.
        assert!(ring.qualifies(60));
        assert!(!ring.qualifies(50));
        assert!(ring.heap_bytes() > 0);
    }

    #[test]
    fn slow_ring_concurrent_offers_keep_exact_top_k() {
        // 8 writers race 4 000 distinct latencies (a bit-mixed
        // permutation, so arrival order is adversarial) into a 16-slot
        // ring, each gating on `qualifies` exactly like the server
        // does. The check-then-offer pair is not atomic — an entry may
        // qualify and then lose its slot to a concurrent faster
        // insert — but `offer` re-ranks under the lock, so the final
        // ring must still be exactly the true top K, descending, with
        // no rank lost and no duplicate admitted twice.
        let per_writer = 500u64;
        let writers = 8u64;
        let ring = std::sync::Arc::new(SlowRing::new(16));
        // Distinct latencies: odd multiplier mod 2^64 is a bijection.
        let lat = |i: u64| i.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 16;
        std::thread::scope(|scope| {
            for w in 0..writers {
                let ring = std::sync::Arc::clone(&ring);
                scope.spawn(move || {
                    for k in 0..per_writer {
                        let i = w * per_writer + k;
                        if ring.qualifies(lat(i)) {
                            ring.offer(entry(i, lat(i)));
                        }
                    }
                });
            }
        });
        let mut expect: Vec<u64> = (0..writers * per_writer).map(lat).collect();
        expect.sort_unstable_by(|a, b| b.cmp(a));
        expect.truncate(16);
        let got: Vec<u64> = ring.snapshot().iter().map(|e| e.latency_ns).collect();
        assert_eq!(got, expect, "exact top-16, descending");
        assert_eq!(ring.len(), 16);
        assert!(ring.heap_bytes() > 0);
    }

    #[test]
    fn zero_capacity_ring_rejects_everything() {
        let ring = SlowRing::new(0);
        assert!(!ring.qualifies(u64::MAX));
        ring.offer(entry(0, 100));
        assert!(ring.is_empty());
    }

    #[test]
    fn shadow_monitor_evaluates_samples_exactly() {
        let tree = xcluster_xml::parse(
            "<bib><paper><year>1998</year><title>Histograms</title></paper>\
             <paper><year>2004</year><title>Sketches</title></paper></bib>",
        )
        .unwrap();
        let monitor = ShadowMonitor::spawn(ShadowConfig::default(), tree);
        // //paper has a true count of 2; estimate 1.0 → rel = 0.5.
        assert!(monitor.submit("//paper", 1.0));
        // Exact structural estimate → rel = 0.
        assert!(monitor.submit("//title", 2.0));
        monitor.finish();
        let s = monitor.stats();
        assert_eq!(s.submitted, 2);
        assert_eq!(s.evaluated, 2);
        assert_eq!(s.dropped, 0);
        assert_eq!(s.parse_failures, 0);
        let rel = monitor.class_rel(QueryClass::Struct).unwrap();
        assert!((rel - 0.25).abs() < 1e-9, "{rel}");
        assert_eq!(monitor.class_rel(QueryClass::Numeric), None);
        let mut out = String::new();
        monitor.render_metrics(&mut out, "t");
        assert!(out.contains("t_accuracy_rel{class=\"struct\"}"), "{out}");
        assert!(out.contains("t_shadow_evaluated_total 2"), "{out}");
    }

    #[test]
    fn shadow_drift_is_edge_triggered() {
        let tree = xcluster_xml::parse("<r><a>1</a><a>2</a></r>").unwrap();
        let cfg = ShadowConfig {
            drift_threshold: 0.1,
            ..ShadowConfig::default()
        };
        let monitor = ShadowMonitor::spawn(cfg, tree);
        // //a true count 2, estimate 20 → rel well above threshold,
        // repeatedly: the breach must count once.
        for _ in 0..5 {
            assert!(monitor.submit("//a", 20.0));
        }
        monitor.finish();
        assert_eq!(monitor.stats().drift_events, 1);
    }

    #[test]
    fn shadow_submit_after_finish_counts_dropped() {
        let tree = xcluster_xml::parse("<r><a>1</a></r>").unwrap();
        let monitor = ShadowMonitor::spawn(ShadowConfig::default(), tree);
        monitor.finish();
        assert!(!monitor.submit("//a", 1.0));
        assert_eq!(monitor.stats().dropped, 1);
    }
}
