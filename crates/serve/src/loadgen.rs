//! Seeded load generation against a running server: samples query
//! strings with the workspace PRNG, POSTs them in batches at a target
//! rate, tracks latency in a [`SlidingWindow`], and optionally verifies
//! every response bitwise against an in-process single-threaded
//! [`xcluster_core::Estimator`] run on the same synopsis.

use crate::client;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::io;
use std::time::{Duration, Instant};
use xcluster_core::synopsis::Synopsis;
use xcluster_core::Estimator;
use xcluster_obs::export::esc;
use xcluster_obs::json::{self, JsonValue};
use xcluster_obs::{SlidingWindow, WindowConfig, WindowSnapshot};
use xcluster_query::parse_twig;

/// Load-generator parameters.
pub struct LoadgenConfig {
    /// Server address (`host:port` or `http://host:port`).
    pub addr: String,
    /// Target query throughput (queries/second; `0` = unthrottled).
    pub qps: f64,
    /// Total queries to send.
    pub total: usize,
    /// Optional wall-clock cap in seconds (`0` = run until `total`).
    pub duration_s: f64,
    /// Queries per `POST /estimate` batch.
    pub batch: usize,
    /// PRNG seed for workload sampling.
    pub seed: u64,
    /// Candidate query strings, sampled uniformly with replacement.
    pub queries: Vec<String>,
    /// When set, every response is compared bitwise against an
    /// in-process estimation session on this synopsis.
    pub verify: Option<Synopsis>,
    /// Send `POST /shutdown` when done.
    pub shutdown: bool,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        LoadgenConfig {
            addr: "127.0.0.1:0".into(),
            qps: 0.0,
            total: 1000,
            duration_s: 0.0,
            batch: 50,
            seed: 42,
            queries: Vec::new(),
            verify: None,
            shutdown: false,
        }
    }
}

/// What a load-generation run achieved.
#[derive(Debug, Clone)]
pub struct LoadgenReport {
    /// Queries sent (across all batches).
    pub sent_queries: usize,
    /// Batches POSTed.
    pub batches: usize,
    /// Failed requests (transport errors or non-200 responses).
    pub errors: usize,
    /// Estimates that did not match the in-process verification bits
    /// (only counted when `verify` was configured).
    pub mismatches: usize,
    /// Wall-clock duration of the run in seconds.
    pub elapsed_s: f64,
    /// Achieved query throughput.
    pub achieved_qps: f64,
    /// Batch-latency quantiles over the trailing window.
    pub latency: WindowSnapshot,
}

impl LoadgenReport {
    /// Human-readable summary (one line per fact, stdout-friendly).
    pub fn to_text(&self) -> String {
        let ns_ms = |v: u64| v as f64 / 1e6;
        format!(
            "queries_sent      {}\n\
             batches           {}\n\
             errors            {}\n\
             mismatches        {}\n\
             elapsed_s         {:.3}\n\
             achieved_qps      {:.1}\n\
             batch_p50_ms      {:.3}\n\
             batch_p95_ms      {:.3}\n\
             batch_p99_ms      {:.3}\n\
             batch_max_ms      {:.3}\n",
            self.sent_queries,
            self.batches,
            self.errors,
            self.mismatches,
            self.elapsed_s,
            self.achieved_qps,
            ns_ms(self.latency.p50),
            ns_ms(self.latency.p95),
            ns_ms(self.latency.p99),
            ns_ms(self.latency.max),
        )
    }
}

/// Serializes a batch of query strings as the `/estimate` request body.
pub fn batch_body(queries: &[&str]) -> String {
    let mut body = String::with_capacity(32 + queries.len() * 16);
    body.push_str("{\"queries\":[");
    for (i, q) in queries.iter().enumerate() {
        if i > 0 {
            body.push(',');
        }
        body.push('"');
        body.push_str(&esc(q));
        body.push('"');
    }
    body.push_str("]}");
    body
}

/// Extracts the `estimates` array from an `/estimate` response body.
pub fn parse_estimates(body: &str) -> Result<Vec<f64>, String> {
    let doc = json::parse(body).map_err(|e| e.to_string())?;
    let arr = doc
        .get("estimates")
        .and_then(JsonValue::as_array)
        .ok_or("response has no estimates array")?;
    arr.iter()
        .map(|v| v.as_f64().ok_or_else(|| "non-numeric estimate".to_string()))
        .collect()
}

/// Runs the configured load against the server.
///
/// Pacing is batch-level: at `qps > 0` the generator sleeps so batches
/// start every `batch/qps` seconds; a server slower than the target
/// simply skips the sleep (open-loop up to one in-flight batch).
pub fn run(cfg: &LoadgenConfig) -> io::Result<LoadgenReport> {
    assert!(!cfg.queries.is_empty(), "loadgen needs at least one query");
    assert!(cfg.batch > 0, "batch size must be positive");
    let verified: Option<Vec<xcluster_query::TwigQuery>> = cfg.verify.as_ref().map(|s| {
        cfg.queries
            .iter()
            .map(|q| {
                parse_twig(q, s.terms())
                    .unwrap_or_else(|e| panic!("verify synopsis cannot parse {q:?}: {e}"))
            })
            .collect()
    });
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let window = SlidingWindow::new(WindowConfig::default());
    let mut report = LoadgenReport {
        sent_queries: 0,
        batches: 0,
        errors: 0,
        mismatches: 0,
        elapsed_s: 0.0,
        achieved_qps: 0.0,
        latency: WindowSnapshot::default(),
    };
    let start = Instant::now();
    let batch_interval = if cfg.qps > 0.0 {
        Duration::from_secs_f64(cfg.batch as f64 / cfg.qps)
    } else {
        Duration::ZERO
    };
    while report.sent_queries < cfg.total {
        if cfg.duration_s > 0.0 && start.elapsed().as_secs_f64() >= cfg.duration_s {
            break;
        }
        let next_batch_at = start.elapsed() + batch_interval;
        let n = cfg.batch.min(cfg.total - report.sent_queries);
        let picks: Vec<usize> = (0..n)
            .map(|_| rng.gen_range(0..cfg.queries.len()))
            .collect();
        let strings: Vec<&str> = picks.iter().map(|&i| cfg.queries[i].as_str()).collect();
        let body = batch_body(&strings);
        let t0 = Instant::now();
        let resp = client::request(&cfg.addr, "POST", "/estimate", Some(&body));
        let elapsed_ns = t0.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        report.batches += 1;
        report.sent_queries += n;
        match resp {
            Ok(r) if r.status == 200 => {
                window.record(elapsed_ns);
                if let Some(twigs) = &verified {
                    let got = parse_estimates(&r.body).unwrap_or_default();
                    let subset: Vec<xcluster_query::TwigQuery> =
                        picks.iter().map(|&i| twigs[i].clone()).collect();
                    let want = Estimator::new(cfg.verify.as_ref().unwrap()).estimate_batch(&subset);
                    if got.len() != want.len() {
                        report.mismatches += n;
                    } else {
                        report.mismatches += got
                            .iter()
                            .zip(&want)
                            .filter(|(g, w)| g.to_bits() != w.to_bits())
                            .count();
                    }
                }
            }
            Ok(r) => {
                report.errors += 1;
                xcluster_obs::warn!(
                    "loadgen",
                    "batch failed status={} body={}",
                    r.status,
                    r.body
                );
            }
            Err(e) => {
                report.errors += 1;
                xcluster_obs::warn!("loadgen", "batch failed err={e}");
            }
        }
        if batch_interval > Duration::ZERO {
            let now = start.elapsed();
            if now < next_batch_at {
                std::thread::sleep(next_batch_at - now);
            }
        }
    }
    report.elapsed_s = start.elapsed().as_secs_f64();
    report.achieved_qps = if report.elapsed_s > 0.0 {
        report.sent_queries as f64 / report.elapsed_s
    } else {
        0.0
    };
    report.latency = window.snapshot();
    if cfg.shutdown {
        let _ = client::request(&cfg.addr, "POST", "/shutdown", None);
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_body_is_valid_json() {
        let body = batch_body(&["//a/b", "//p[x > 3]/q", "weird \"quote\""]);
        let doc = json::parse(&body).unwrap();
        let arr = doc.get("queries").unwrap().as_array().unwrap();
        assert_eq!(arr.len(), 3);
        assert_eq!(arr[2].as_str(), Some("weird \"quote\""));
    }

    #[test]
    fn parse_estimates_roundtrips_bits() {
        for v in [0.0f64, 1.5, 123456.75, 0.1, 1e-12, 7.0 / 3.0] {
            let body = format!("{{\"count\":1,\"estimates\":[{v}]}}");
            let got = parse_estimates(&body).unwrap();
            assert_eq!(got.len(), 1);
            assert_eq!(got[0].to_bits(), v.to_bits(), "{v}");
        }
        assert!(parse_estimates("{}").is_err());
        assert!(parse_estimates("{\"estimates\":[\"x\"]}").is_err());
    }
}
