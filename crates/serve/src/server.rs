//! The estimation server: a `TcpListener` accept loop feeding a bounded
//! pool of worker threads (the same fixed-pool discipline as
//! `xcluster_core::par` — a known worker count, deterministic handling
//! per connection, no unbounded spawning).
//!
//! Endpoints:
//!
//! | method | path              | purpose                                   |
//! |--------|-------------------|-------------------------------------------|
//! | POST   | `/estimate`       | JSON batch of twig queries → estimates    |
//! | GET    | `/metrics`        | Prometheus text exposition v0.0.4         |
//! | GET    | `/healthz`        | liveness (always 200 while running)       |
//! | GET    | `/readyz`         | readiness (503 until the synopsis loads)  |
//! | GET    | `/synopsis/stats` | synopsis + memory-footprint JSON          |
//! | POST   | `/shutdown`       | graceful stop (drains, then exits)        |
//!
//! Estimates are produced by a compiled-plan [`Estimator`] session, so
//! a server response is bitwise-identical to an in-process call on the
//! same queries at any thread count; `f64` values survive the HTTP
//! round trip exactly because Rust's `Display` prints the shortest
//! representation that parses back to the same bits. Each `/estimate`
//! batch compiles its queries once and shares the per-synopsis
//! [`ReachCache`] across requests, so repeated label reachability and
//! value probes are answered from the cache; the cache is replaced
//! (never retained) when a new synopsis is installed.

use crate::http::{read_request, write_response, ReadError, Request, Response};
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, LazyLock, Mutex, RwLock};
use std::time::{Duration, Instant};
use xcluster_core::footprint::MemoryFootprint;
use xcluster_core::par::resolve_threads;
use xcluster_core::synopsis::Synopsis;
use xcluster_core::{Estimator, ReachCache};
use xcluster_obs::export::esc;
use xcluster_obs::json::{self, JsonValue};
use xcluster_obs::{expose, Counter, Histogram, SlidingWindow, WindowConfig};
use xcluster_query::parse_twig;

static REQUESTS: LazyLock<Arc<Counter>> = LazyLock::new(|| xcluster_obs::counter("serve.requests"));
static ERRORS: LazyLock<Arc<Counter>> = LazyLock::new(|| xcluster_obs::counter("serve.errors"));
static BATCHES: LazyLock<Arc<Counter>> =
    LazyLock::new(|| xcluster_obs::counter("serve.estimate_batches"));
static QUERIES: LazyLock<Arc<Counter>> =
    LazyLock::new(|| xcluster_obs::counter("serve.estimate_queries"));
static ESTIMATE_NS: LazyLock<Arc<Histogram>> =
    LazyLock::new(|| xcluster_obs::histogram("serve.estimate_ns"));

/// Server construction parameters.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Connection worker threads (`0` = available parallelism, capped
    /// at 16).
    pub workers: usize,
    /// Threads per `estimate_batch` call (`0` = available parallelism).
    pub estimate_threads: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 0,
            estimate_threads: 1,
        }
    }
}

struct Loaded {
    synopsis: Arc<Synopsis>,
    footprint: MemoryFootprint,
    /// Reachability/probe cache shared by every `/estimate` batch
    /// against this synopsis. Replaced wholesale on reload — cached
    /// entries are pure functions of the synopsis they were built from.
    cache: Arc<ReachCache>,
}

/// Shared server state: the loaded synopsis, readiness/shutdown flags,
/// and the sliding latency window behind the `/metrics` quantiles.
pub struct ServerState {
    loaded: RwLock<Option<Loaded>>,
    ready: AtomicBool,
    shutdown: AtomicBool,
    estimate_threads: usize,
    /// Batch latency over the last 10 seconds (10 × 1 s sub-windows).
    window: SlidingWindow,
    addr: SocketAddr,
}

impl ServerState {
    /// Whether a synopsis is loaded and `/estimate` is usable.
    pub fn ready(&self) -> bool {
        self.ready.load(Ordering::Acquire)
    }

    /// Whether a graceful shutdown was requested.
    pub fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::Acquire)
    }

    /// Requests a graceful shutdown and unblocks the accept loop.
    pub fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::Release);
        xcluster_obs::gauge("serve.shutting_down").set(1);
        // Self-connect so the blocking `accept` wakes up and observes
        // the flag; the probe connection is dropped unhandled.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_secs(1));
    }

    /// The sliding `/estimate` latency window.
    pub fn window(&self) -> &SlidingWindow {
        &self.window
    }
}

/// A bound, not-yet-running server.
pub struct Server {
    listener: TcpListener,
    state: Arc<ServerState>,
    workers: usize,
}

impl Server {
    /// Binds the listener. The server starts unready; call
    /// [`Server::set_synopsis`] (before or after [`Server::run`] from
    /// another thread) to make `/estimate` live.
    pub fn bind(cfg: &ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        let workers = resolve_threads(cfg.workers).clamp(1, 16);
        xcluster_obs::gauge("serve.workers").set(workers as i64);
        xcluster_obs::gauge("serve.ready").set(0);
        xcluster_obs::gauge("serve.shutting_down").set(0);
        Ok(Server {
            listener,
            state: Arc::new(ServerState {
                loaded: RwLock::new(None),
                ready: AtomicBool::new(false),
                shutdown: AtomicBool::new(false),
                estimate_threads: cfg.estimate_threads,
                window: SlidingWindow::new(WindowConfig::default()),
                addr,
            }),
            workers,
        })
    }

    /// The bound address (resolves ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.state.addr
    }

    /// Shared state handle (for shutdown or readiness from outside).
    pub fn state(&self) -> Arc<ServerState> {
        Arc::clone(&self.state)
    }

    /// Installs the synopsis: measures and registers its memory
    /// footprint, publishes the build-size gauges reconstructible from
    /// the artifact, and flips `/readyz` to ready.
    pub fn set_synopsis(&self, synopsis: Synopsis) {
        let footprint = MemoryFootprint::measure(&synopsis);
        footprint.register();
        xcluster_obs::gauge("build.final_struct_bytes").set(synopsis.structural_bytes() as i64);
        xcluster_obs::gauge("build.final_value_bytes").set(synopsis.value_bytes() as i64);
        xcluster_obs::info!(
            "serve",
            "synopsis loaded nodes={} edges={} resident_bytes={}",
            synopsis.num_nodes(),
            synopsis.num_edges(),
            footprint.total_bytes()
        );
        *self.state.loaded.write().unwrap() = Some(Loaded {
            synopsis: Arc::new(synopsis),
            footprint,
            cache: Arc::new(ReachCache::new()),
        });
        xcluster_obs::gauge("footprint.reach_cache_bytes").set(0);
        self.state.ready.store(true, Ordering::Release);
        xcluster_obs::gauge("serve.ready").set(1);
    }

    /// Runs the accept loop until shutdown is requested. Connections
    /// are dispatched over a bounded channel to a fixed worker pool;
    /// when the channel is full the accept loop blocks, applying
    /// backpressure instead of queueing without bound.
    pub fn run(&self) -> std::io::Result<()> {
        let state = &self.state;
        let (tx, rx) = mpsc::sync_channel::<TcpStream>(self.workers * 2);
        let rx = Arc::new(Mutex::new(rx));
        xcluster_obs::info!("serve", "listening addr={}", self.state.addr);
        std::thread::scope(|scope| {
            for _ in 0..self.workers {
                let rx = Arc::clone(&rx);
                scope.spawn(move || loop {
                    let stream = rx.lock().unwrap().recv();
                    match stream {
                        Ok(s) => handle_connection(state, s),
                        Err(_) => break,
                    }
                });
            }
            for stream in self.listener.incoming() {
                if state.shutting_down() {
                    break;
                }
                match stream {
                    Ok(s) => {
                        if tx.send(s).is_err() {
                            break;
                        }
                    }
                    Err(e) => {
                        xcluster_obs::warn!("serve", "accept failed err={e}");
                    }
                }
            }
            drop(tx);
        });
        xcluster_obs::info!("serve", "stopped addr={}", self.state.addr);
        Ok(())
    }
}

fn handle_connection(state: &ServerState, stream: TcpStream) {
    // A stuck or idle peer must not pin a pool worker forever.
    let _ = stream.set_read_timeout(Some(Duration::from_secs(30)));
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let mut stream = stream;
    loop {
        let req = match read_request(&mut reader) {
            Ok(r) => r,
            Err(ReadError::Closed) => return,
            Err(ReadError::Io(_)) => return,
            Err(e @ (ReadError::Malformed(_) | ReadError::TooLarge(_))) => {
                ERRORS.inc();
                let status = if matches!(e, ReadError::TooLarge(_)) {
                    413
                } else {
                    400
                };
                let resp =
                    Response::json(status, format!("{{\"error\":\"{}\"}}", esc(&e.to_string())));
                let _ = write_response(&mut stream, &resp, false);
                return;
            }
        };
        REQUESTS.inc();
        let keep_alive = req.keep_alive() && !state.shutting_down();
        let resp = route(state, &req);
        if resp.status >= 400 {
            ERRORS.inc();
        }
        if write_response(&mut stream, &resp, keep_alive).is_err() {
            return;
        }
        if req.method == "POST" && req.path == "/shutdown" {
            state.request_shutdown();
            return;
        }
        if !keep_alive {
            return;
        }
    }
}

fn route(state: &ServerState, req: &Request) -> Response {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => Response::text(200, "ok\n"),
        ("GET", "/readyz") => {
            if state.ready() {
                Response::text(200, "ready\n")
            } else {
                Response::text(503, "loading\n")
            }
        }
        ("GET", "/metrics") => {
            let snap = xcluster_obs::snapshot();
            let windows = [("estimate_ns", state.window.snapshot())];
            Response::metrics(expose::render_with_windows(
                &snap,
                &windows,
                expose::DEFAULT_NAMESPACE,
            ))
        }
        ("GET", "/synopsis/stats") => stats_response(state),
        ("POST", "/estimate") => estimate_response(state, req),
        ("POST", "/shutdown") => Response::text(200, "shutting down\n"),
        (_, "/healthz" | "/readyz" | "/metrics" | "/synopsis/stats") => {
            Response::text(405, "method not allowed\n")
        }
        (_, "/estimate" | "/shutdown") => Response::text(405, "method not allowed\n"),
        _ => Response::text(404, "not found\n"),
    }
}

fn stats_response(state: &ServerState) -> Response {
    let guard = state.loaded.read().unwrap();
    let Some(loaded) = guard.as_ref() else {
        return Response::json(503, "{\"error\":\"synopsis not loaded\"}");
    };
    let s = &loaded.synopsis;
    let fp = &loaded.footprint;
    let mut kinds = String::new();
    for (i, (kind, k)) in fp.summaries.iter().enumerate() {
        if i > 0 {
            kinds.push(',');
        }
        kinds.push_str(&format!(
            "\"{kind}\":{{\"count\":{},\"heap_bytes\":{},\"model_bytes\":{}}}",
            k.count, k.heap_bytes, k.model_bytes
        ));
    }
    let cstats = loaded.cache.stats();
    let body = format!(
        "{{\"nodes\":{},\"edges\":{},\"value_nodes\":{},\"arena_nodes\":{},\"max_depth\":{},\
         \"model\":{{\"structural_bytes\":{},\"value_bytes\":{},\"total_bytes\":{}}},\
         \"footprint\":{{\"total_bytes\":{},\"cluster_bytes\":{},\"edge_bytes\":{},\
         \"interner_bytes\":{},\"summary_bytes\":{},\"summaries\":{{{kinds}}}}},\
         \"reach_cache\":{{\"heap_bytes\":{},\"full_entries\":{},\"reach_entries\":{},\
         \"probe_entries\":{},\"reach_hits\":{},\"reach_misses\":{},\"probe_hits\":{},\
         \"probe_misses\":{}}}}}",
        s.num_nodes(),
        s.num_edges(),
        s.num_value_nodes(),
        s.arena_len(),
        s.max_depth(),
        s.structural_bytes(),
        s.value_bytes(),
        s.total_bytes(),
        fp.total_bytes(),
        fp.cluster_bytes,
        fp.edge_bytes,
        fp.interner_bytes,
        fp.summary_bytes(),
        loaded.cache.heap_bytes(),
        cstats.full_entries,
        cstats.reach_entries,
        cstats.probe_entries,
        cstats.reach_hits,
        cstats.reach_misses,
        cstats.probe_hits,
        cstats.probe_misses,
    );
    Response::json(200, body)
}

fn estimate_response(state: &ServerState, req: &Request) -> Response {
    let (synopsis, cache) = {
        let guard = state.loaded.read().unwrap();
        match guard.as_ref() {
            Some(l) => (Arc::clone(&l.synopsis), Arc::clone(&l.cache)),
            None => return Response::json(503, "{\"error\":\"synopsis not loaded\"}"),
        }
    };
    let body = match std::str::from_utf8(&req.body) {
        Ok(b) => b,
        Err(_) => return Response::json(400, "{\"error\":\"body is not UTF-8\"}"),
    };
    let doc = match json::parse(body) {
        Ok(d) => d,
        Err(e) => return Response::json(400, format!("{{\"error\":\"{}\"}}", esc(&e.to_string()))),
    };
    let Some(queries) = doc.get("queries").and_then(JsonValue::as_array) else {
        return Response::json(400, "{\"error\":\"expected {\\\"queries\\\":[...]}\"}");
    };
    let mut twigs = Vec::with_capacity(queries.len());
    for (i, q) in queries.iter().enumerate() {
        let Some(text) = q.as_str() else {
            return Response::json(
                400,
                format!("{{\"error\":\"query is not a string\",\"index\":{i}}}"),
            );
        };
        match parse_twig(text, synopsis.terms()) {
            Ok(t) => twigs.push(t),
            Err(e) => {
                return Response::json(
                    400,
                    format!("{{\"error\":\"{}\",\"index\":{i}}}", esc(&e.to_string())),
                )
            }
        }
    }
    let t0 = Instant::now();
    let estimates = Estimator::new(&synopsis)
        .with_threads(state.estimate_threads)
        .with_cache(Arc::clone(&cache))
        .estimate_batch(&twigs);
    let elapsed_ns = t0.elapsed().as_nanos().min(u64::MAX as u128) as u64;
    state.window.record(elapsed_ns);
    ESTIMATE_NS.record(elapsed_ns);
    BATCHES.inc();
    QUERIES.add(twigs.len() as u64);
    // The cache grows monotonically (bounded probe memo); account its
    // resident bytes alongside the synopsis footprint gauges.
    xcluster_obs::gauge("footprint.reach_cache_bytes").set(cache.heap_bytes() as i64);
    let mut out = String::with_capacity(16 + estimates.len() * 8);
    out.push_str("{\"count\":");
    out.push_str(&estimates.len().to_string());
    out.push_str(",\"estimates\":[");
    for (i, e) in estimates.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        // f64 Display is shortest-roundtrip: parsing this text yields
        // the identical bits, which the smoke tests assert.
        out.push_str(&format!("{e}"));
    }
    out.push_str("]}");
    Response::json(200, out)
}
