//! The estimation server: a `TcpListener` accept loop feeding a bounded
//! pool of worker threads (the same fixed-pool discipline as
//! `xcluster_core::par` — a known worker count, deterministic handling
//! per connection, no unbounded spawning).
//!
//! Endpoints:
//!
//! | method | path              | purpose                                   |
//! |--------|-------------------|-------------------------------------------|
//! | POST   | `/estimate`       | JSON batch of twig queries → estimates    |
//! | GET    | `/metrics`        | Prometheus text exposition v0.0.4         |
//! | GET    | `/healthz`        | liveness (always 200 while running)       |
//! | GET    | `/readyz`         | readiness (503 until the synopsis loads)  |
//! | GET    | `/synopsis/stats` | synopsis + memory-footprint JSON          |
//! | GET    | `/debug/requests` | recent journal records (`?n=` limit)      |
//! | GET    | `/debug/slow`     | top-K slow batches (`?chrome=1` trace)    |
//! | GET    | `/debug/journal`  | full journal as JSONL download            |
//! | GET    | `/debug/synopsis` | per-cluster health report (`?n=` limit)   |
//! | POST   | `/reload`         | re-read + swap the synopsis artifact      |
//! | POST   | `/shutdown`       | graceful stop (drains, then exits)        |
//!
//! Estimates are produced by a compiled-plan [`Estimator`] session, so
//! a server response is bitwise-identical to an in-process call on the
//! same queries at any thread count; `f64` values survive the HTTP
//! round trip exactly because Rust's `Display` prints the shortest
//! representation that parses back to the same bits. Each `/estimate`
//! batch compiles its queries once and shares the per-synopsis
//! [`ReachCache`] across requests, so repeated label reachability and
//! value probes are answered from the cache; the cache is replaced
//! (never retained) when a new synopsis is installed.
//!
//! # Request telemetry
//!
//! Every `/estimate` request is assigned an id — the client's
//! `x-request-id` header when present (sanitized), otherwise generated
//! from the journal sequence — and the id is echoed back as a response
//! header. Served queries receive global sequence numbers from the
//! wide-event [`Journal`]; a seeded sampler decides which get a
//! retained record, and a second, independent sampler marks the subset
//! handed to the optional shadow accuracy monitor (see
//! [`crate::telemetry`]). Batches slow enough for the top-K
//! [`SlowRing`] are deterministically re-estimated with tracing on —
//! estimation is pure, so the re-run is bitwise identical — and the
//! resulting span trees are browsable at `GET /debug/slow`.
//!
//! # Zero-downtime reload
//!
//! The loaded synopsis is double-buffered behind the `loaded` RwLock:
//! `POST /reload` decodes the configured artifact *outside* the lock,
//! then swaps it in (together with a fresh [`ReachCache`]) under a brief
//! write section. In-flight `/estimate` batches hold `Arc` clones taken
//! under the read lock, so they finish against the synopsis version they
//! started with; every `/estimate` response names that version in its
//! `x-synopsis-version` header. Installed versions are strictly
//! monotone — a reloaded artifact whose stamped version does not exceed
//! the live one is installed as `live + 1` — and the current version is
//! published as the `synopsis.version` gauge and in `/synopsis/stats`.

use crate::http::{read_request_with, write_response, Limits, ReadError, Request, Response};
use crate::telemetry::{shard_of, ShadowConfig, ShadowMonitor, SlowEntry, SlowRing};
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, LazyLock, Mutex, RwLock};
use std::time::{Duration, Instant};
use xcluster_core::footprint::{MemoryFootprint, ServingFootprint};
use xcluster_core::par::resolve_threads;
use xcluster_core::synopsis::Synopsis;
use xcluster_core::{AttributionReport, Estimator, QualityReport, ReachCache};
use xcluster_obs::export::esc;
use xcluster_obs::json::{self, JsonValue};
use xcluster_obs::{
    expose, trace, Counter, Histogram, Journal, JournalConfig, JournalRecord, Sampler,
    SlidingWindow, WindowConfig,
};
use xcluster_query::parse_twig;
use xcluster_xml::XmlTree;

static REQUESTS: LazyLock<Arc<Counter>> = LazyLock::new(|| xcluster_obs::counter("serve.requests"));
static ERRORS: LazyLock<Arc<Counter>> = LazyLock::new(|| xcluster_obs::counter("serve.errors"));
static BATCHES: LazyLock<Arc<Counter>> =
    LazyLock::new(|| xcluster_obs::counter("serve.estimate_batches"));
static QUERIES: LazyLock<Arc<Counter>> =
    LazyLock::new(|| xcluster_obs::counter("serve.estimate_queries"));
static ESTIMATE_NS: LazyLock<Arc<Histogram>> =
    LazyLock::new(|| xcluster_obs::histogram("serve.estimate_ns"));
static CLUSTERS_VISITED: LazyLock<Arc<Counter>> =
    LazyLock::new(|| xcluster_obs::counter("estimate.clusters_visited"));

/// Server construction parameters.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Connection worker threads (`0` = available parallelism, capped
    /// at 16).
    pub workers: usize,
    /// Threads per `estimate_batch` call (`0` = available parallelism).
    pub estimate_threads: usize,
    /// Per-connection read timeout in seconds (`0` = no timeout).
    pub read_timeout_secs: u64,
    /// Request head (request line + headers) byte cap.
    pub max_head_bytes: usize,
    /// Request body byte cap.
    pub max_body_bytes: usize,
    /// Wide-event journal retention (records; `0` disables retention
    /// but sequence numbers still advance).
    pub journal_capacity: usize,
    /// Journal sampling rate, parts-per-million of served queries.
    pub journal_sample_ppm: u32,
    /// Journal sampler seed.
    pub journal_seed: u64,
    /// Top-K slow-batch ring capacity (`0` disables trace capture).
    pub slow_capacity: usize,
    /// Shadow-accuracy sampling rate, parts-per-million. The sampler
    /// always runs (the journal's `shadow_sampled` flag is deterministic
    /// whether or not a monitor is attached).
    pub shadow_sample_ppm: u32,
    /// Shadow sampler seed.
    pub shadow_seed: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        let journal = JournalConfig::default();
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 0,
            estimate_threads: 1,
            read_timeout_secs: 30,
            max_head_bytes: Limits::default().max_head_bytes,
            max_body_bytes: Limits::default().max_body_bytes,
            journal_capacity: journal.capacity,
            journal_sample_ppm: journal.sample_ppm,
            journal_seed: journal.seed,
            slow_capacity: 16,
            shadow_sample_ppm: ShadowConfig::default().sample_ppm,
            shadow_seed: ShadowConfig::default().seed,
        }
    }
}

struct Loaded {
    synopsis: Arc<Synopsis>,
    footprint: MemoryFootprint,
    /// Reachability/probe cache shared by every `/estimate` batch
    /// against this synopsis. Replaced wholesale on reload — cached
    /// entries are pure functions of the synopsis they were built from.
    cache: Arc<ReachCache>,
}

/// Shared server state: the loaded synopsis, readiness/shutdown flags,
/// the sliding latency window behind the `/metrics` quantiles, and the
/// request-telemetry rings.
pub struct ServerState {
    loaded: RwLock<Option<Loaded>>,
    ready: AtomicBool,
    shutdown: AtomicBool,
    estimate_threads: usize,
    /// Batch latency over the last 10 seconds (10 × 1 s sub-windows).
    window: SlidingWindow,
    addr: SocketAddr,
    limits: Limits,
    read_timeout: Option<Duration>,
    /// Wide-event query journal (also the global seq counter).
    journal: Journal,
    /// Top-K slowest batches with full span trees.
    slow: SlowRing,
    /// Decides which served queries the shadow monitor re-evaluates;
    /// always present so the journal flag stays deterministic.
    shadow_sampler: Sampler,
    shadow: RwLock<Option<Arc<ShadowMonitor>>>,
    /// Offline workload-error attribution for the loaded synopsis;
    /// ranks `/debug/synopsis` and the quality gauges by error when set.
    attribution: RwLock<Option<Arc<AttributionReport>>>,
    /// Artifact path `POST /reload` re-reads; unset → reload answers 409.
    synopsis_path: RwLock<Option<PathBuf>>,
}

impl ServerState {
    /// Whether a synopsis is loaded and `/estimate` is usable.
    pub fn ready(&self) -> bool {
        self.ready.load(Ordering::Acquire)
    }

    /// Whether a graceful shutdown was requested.
    pub fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::Acquire)
    }

    /// Requests a graceful shutdown and unblocks the accept loop.
    pub fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::Release);
        xcluster_obs::gauge("serve.shutting_down").set(1);
        // Self-connect so the blocking `accept` wakes up and observes
        // the flag; the probe connection is dropped unhandled.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_secs(1));
    }

    /// The sliding `/estimate` latency window.
    pub fn window(&self) -> &SlidingWindow {
        &self.window
    }

    /// The wide-event query journal.
    pub fn journal(&self) -> &Journal {
        &self.journal
    }

    /// The top-K slow-batch ring.
    pub fn slow_ring(&self) -> &SlowRing {
        &self.slow
    }

    /// The shadow sampling decision for a journal sequence number.
    pub fn shadow_sampler(&self) -> &Sampler {
        &self.shadow_sampler
    }

    /// The attached shadow monitor, if any.
    pub fn shadow(&self) -> Option<Arc<ShadowMonitor>> {
        self.shadow.read().unwrap().clone()
    }

    /// The installed workload-error attribution, if any.
    pub fn attribution(&self) -> Option<Arc<AttributionReport>> {
        self.attribution.read().unwrap().clone()
    }

    /// Builds the synopsis-quality report for the loaded synopsis,
    /// joined with the installed attribution and the live reach-cache
    /// statistics. `None` until a synopsis is loaded.
    pub fn quality_report(&self) -> Option<QualityReport> {
        let guard = self.loaded.read().unwrap();
        let loaded = guard.as_ref()?;
        let attr = self.attribution();
        Some(
            QualityReport::measure_with(&loaded.synopsis, attr.as_deref())
                .with_cache_stats(loaded.cache.stats()),
        )
    }

    /// The artifact path `POST /reload` re-reads, if configured.
    pub fn synopsis_path(&self) -> Option<PathBuf> {
        self.synopsis_path.read().unwrap().clone()
    }

    /// Installs a synopsis atomically: the footprint is measured and the
    /// build gauges published outside the lock, then the synopsis plus a
    /// fresh [`ReachCache`] replace the live pair under a brief write
    /// section. Installed versions are strictly monotone — if the
    /// incoming synopsis does not out-version the live one it is stamped
    /// `live + 1`. Returns the installed version.
    pub fn install_synopsis(&self, mut synopsis: Synopsis) -> u64 {
        let footprint = MemoryFootprint::measure(&synopsis);
        footprint.register();
        xcluster_obs::gauge("build.final_struct_bytes").set(synopsis.structural_bytes() as i64);
        xcluster_obs::gauge("build.final_value_bytes").set(synopsis.value_bytes() as i64);
        let resident = footprint.total_bytes();
        let version = {
            let mut guard = self.loaded.write().unwrap();
            if let Some(prev) = guard.as_ref() {
                let live = prev.synopsis.version();
                if synopsis.version() <= live {
                    synopsis.set_version(live + 1);
                }
            }
            let version = synopsis.version();
            *guard = Some(Loaded {
                synopsis: Arc::new(synopsis),
                footprint,
                cache: Arc::new(ReachCache::new()),
            });
            version
        };
        xcluster_obs::gauge("synopsis.version").set(version as i64);
        xcluster_obs::gauge("footprint.reach_cache_bytes").set(0);
        self.ready.store(true, Ordering::Release);
        xcluster_obs::gauge("serve.ready").set(1);
        xcluster_obs::info!(
            "serve",
            "synopsis installed version={version} resident_bytes={resident}"
        );
        version
    }

    /// Publishes the journal/slow-ring resident bytes as `footprint.*`
    /// gauges (called after every journaled batch).
    fn register_serving_footprint(&self) {
        ServingFootprint {
            journal_bytes: self.journal.heap_bytes(),
            slow_ring_bytes: self.slow.heap_bytes(),
        }
        .register();
    }
}

/// A bound, not-yet-running server.
pub struct Server {
    listener: TcpListener,
    state: Arc<ServerState>,
    workers: usize,
}

impl Server {
    /// Binds the listener. The server starts unready; call
    /// [`Server::set_synopsis`] (before or after [`Server::run`] from
    /// another thread) to make `/estimate` live.
    pub fn bind(cfg: &ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        let workers = resolve_threads(cfg.workers).clamp(1, 16);
        xcluster_obs::gauge("serve.workers").set(workers as i64);
        xcluster_obs::gauge("serve.ready").set(0);
        xcluster_obs::gauge("serve.shutting_down").set(0);
        let journal = Journal::new(JournalConfig {
            capacity: cfg.journal_capacity,
            sample_ppm: cfg.journal_sample_ppm,
            seed: cfg.journal_seed,
            ..JournalConfig::default()
        });
        Ok(Server {
            listener,
            state: Arc::new(ServerState {
                loaded: RwLock::new(None),
                ready: AtomicBool::new(false),
                shutdown: AtomicBool::new(false),
                estimate_threads: cfg.estimate_threads,
                window: SlidingWindow::new(WindowConfig::default()),
                addr,
                limits: Limits {
                    max_head_bytes: cfg.max_head_bytes,
                    max_body_bytes: cfg.max_body_bytes,
                },
                read_timeout: (cfg.read_timeout_secs > 0)
                    .then(|| Duration::from_secs(cfg.read_timeout_secs)),
                journal,
                slow: SlowRing::new(cfg.slow_capacity),
                shadow_sampler: Sampler::new(cfg.shadow_seed, cfg.shadow_sample_ppm),
                shadow: RwLock::new(None),
                attribution: RwLock::new(None),
                synopsis_path: RwLock::new(None),
            }),
            workers,
        })
    }

    /// The bound address (resolves ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.state.addr
    }

    /// Shared state handle (for shutdown or readiness from outside).
    pub fn state(&self) -> Arc<ServerState> {
        Arc::clone(&self.state)
    }

    /// Installs the synopsis: measures and registers its memory
    /// footprint, publishes the build-size gauges reconstructible from
    /// the artifact, and flips `/readyz` to ready.
    pub fn set_synopsis(&self, synopsis: Synopsis) {
        xcluster_obs::info!(
            "serve",
            "synopsis loaded nodes={} edges={}",
            synopsis.num_nodes(),
            synopsis.num_edges(),
        );
        self.state.install_synopsis(synopsis);
    }

    /// Configures the artifact path `POST /reload` re-reads. Without it
    /// the endpoint answers 409 (the server has nothing to reload from).
    pub fn set_synopsis_path(&self, path: impl Into<PathBuf>) {
        *self.state.synopsis_path.write().unwrap() = Some(path.into());
    }

    /// Installs a workload-error attribution report (computed offline
    /// via `evaluate_workload` with attribution enabled). Once set,
    /// `/debug/synopsis` and the `/metrics` quality gauges rank
    /// clusters by their contribution to workload error instead of by
    /// footprint alone. Replaced wholesale — install a fresh report
    /// whenever the synopsis changes.
    pub fn set_attribution(&self, attribution: AttributionReport) {
        *self.state.attribution.write().unwrap() = Some(Arc::new(attribution));
    }

    /// Attaches a shadow accuracy monitor over an owned copy of the
    /// served document. The monitor's sampling identity (rate + seed)
    /// is forced to the server's own shadow sampler, so the journal's
    /// `shadow_sampled` flags describe exactly the monitored subset.
    pub fn set_shadow(&self, tree: XmlTree, cfg: ShadowConfig) {
        let cfg = ShadowConfig {
            sample_ppm: self.state.shadow_sampler.rate_ppm(),
            seed: self.state.journal.config().seed,
            ..cfg
        };
        let monitor = Arc::new(ShadowMonitor::spawn(cfg, tree));
        *self.state.shadow.write().unwrap() = Some(monitor);
    }

    /// Runs the accept loop until shutdown is requested. Connections
    /// are dispatched over a bounded channel to a fixed worker pool;
    /// when the channel is full the accept loop blocks, applying
    /// backpressure instead of queueing without bound. On exit the
    /// shadow monitor (if any) is drained and joined.
    pub fn run(&self) -> std::io::Result<()> {
        let state = &self.state;
        let (tx, rx) = mpsc::sync_channel::<TcpStream>(self.workers * 2);
        let rx = Arc::new(Mutex::new(rx));
        xcluster_obs::info!("serve", "listening addr={}", self.state.addr);
        std::thread::scope(|scope| {
            for worker in 0..self.workers as u64 {
                let rx = Arc::clone(&rx);
                scope.spawn(move || loop {
                    let stream = rx.lock().unwrap().recv();
                    match stream {
                        Ok(s) => handle_connection(state, s, worker),
                        Err(_) => break,
                    }
                });
            }
            for stream in self.listener.incoming() {
                if state.shutting_down() {
                    break;
                }
                match stream {
                    Ok(s) => {
                        if tx.send(s).is_err() {
                            break;
                        }
                    }
                    Err(e) => {
                        xcluster_obs::warn!("serve", "accept failed err={e}");
                    }
                }
            }
            drop(tx);
        });
        if let Some(shadow) = state.shadow() {
            shadow.finish();
        }
        xcluster_obs::info!("serve", "stopped addr={}", self.state.addr);
        Ok(())
    }
}

fn handle_connection(state: &ServerState, stream: TcpStream, worker: u64) {
    // A stuck or idle peer must not pin a pool worker forever.
    let _ = stream.set_read_timeout(state.read_timeout);
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let mut stream = stream;
    loop {
        let req = match read_request_with(&mut reader, &state.limits) {
            Ok(r) => r,
            Err(ReadError::Closed) => return,
            Err(ReadError::Io(_)) => return,
            Err(e @ (ReadError::Malformed(_) | ReadError::TooLarge(_))) => {
                ERRORS.inc();
                let status = if matches!(e, ReadError::TooLarge(_)) {
                    413
                } else {
                    400
                };
                let resp =
                    Response::json(status, format!("{{\"error\":\"{}\"}}", esc(&e.to_string())));
                let _ = write_response(&mut stream, &resp, false);
                return;
            }
        };
        REQUESTS.inc();
        let keep_alive = req.keep_alive() && !state.shutting_down();
        let resp = route(state, &req, worker);
        if resp.status >= 400 {
            ERRORS.inc();
        }
        if write_response(&mut stream, &resp, keep_alive).is_err() {
            return;
        }
        if req.method == "POST" && req.route_path() == "/shutdown" {
            state.request_shutdown();
            return;
        }
        if !keep_alive {
            return;
        }
    }
}

fn route(state: &ServerState, req: &Request, worker: u64) -> Response {
    match (req.method.as_str(), req.route_path()) {
        ("GET", "/healthz") => Response::text(200, format!("ok {}\n", expose::version_string())),
        ("GET", "/readyz") => {
            if state.ready() {
                Response::text(200, "ready\n")
            } else {
                Response::text(503, "loading\n")
            }
        }
        ("GET", "/metrics") => {
            let snap = xcluster_obs::snapshot();
            let windows = [("estimate_ns", state.window.snapshot())];
            let mut body = expose::render_with_windows(&snap, &windows, expose::DEFAULT_NAMESPACE);
            if let Some(shadow) = state.shadow() {
                shadow.render_metrics(&mut body, expose::DEFAULT_NAMESPACE);
            }
            if let Some(quality) = state.quality_report() {
                quality.render_metrics(&mut body, expose::DEFAULT_NAMESPACE, TOP_OFFENDER_GAUGES);
            }
            Response::metrics(body)
        }
        ("GET", "/synopsis/stats") => stats_response(state),
        ("GET", "/debug/requests") => debug_requests_response(state, req),
        ("GET", "/debug/slow") => debug_slow_response(state, req),
        ("GET", "/debug/journal") => Response::with_type(200, "application/x-ndjson", {
            xcluster_obs::journal::to_jsonl(&state.journal.snapshot())
        }),
        ("GET", "/debug/synopsis") => debug_synopsis_response(state, req),
        ("POST", "/estimate") => estimate_response(state, req, worker),
        ("POST", "/reload") => reload_response(state),
        ("POST", "/shutdown") => Response::text(200, "shutting down\n"),
        (
            _,
            "/healthz" | "/readyz" | "/metrics" | "/synopsis/stats" | "/debug/requests"
            | "/debug/slow" | "/debug/journal" | "/debug/synopsis",
        ) => Response::text(405, "method not allowed\n"),
        (_, "/estimate" | "/reload" | "/shutdown") => Response::text(405, "method not allowed\n"),
        _ => Response::text(404, "not found\n"),
    }
}

/// How many top-offender clusters the `/metrics` quality gauges carry.
/// Deliberately small: `/metrics` is scraped continuously, so the
/// per-cluster series must stay bounded; the full ranking is one
/// `/debug/synopsis?n=` request away.
const TOP_OFFENDER_GAUGES: usize = 5;

/// `GET /debug/synopsis[?n=K]` — the per-cluster health report for the
/// loaded synopsis as JSON: bytes by summary kind, population, and
/// (when an attribution report is installed) each cluster's
/// contribution to workload estimation error, ranked worst-first.
/// Built fresh per request so it always reflects the live reach-cache
/// counters.
fn debug_synopsis_response(state: &ServerState, req: &Request) -> Response {
    let n = req
        .query_param("n")
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(20);
    match state.quality_report() {
        Some(q) => Response::json(200, q.to_json(n)),
        None => Response::json(503, "{\"error\":\"synopsis not loaded\"}"),
    }
}

/// `POST /reload` — re-reads the configured synopsis artifact and swaps
/// it in under live traffic. The file read and decode happen outside
/// any lock; only the final pointer swap takes the write lock, so
/// concurrent `/estimate` batches are never blocked behind the decode
/// and finish against the synopsis they started with.
fn reload_response(state: &ServerState) -> Response {
    let Some(path) = state.synopsis_path() else {
        return Response::json(409, "{\"error\":\"no synopsis path configured\"}");
    };
    let bytes = match std::fs::read(&path) {
        Ok(b) => b,
        Err(e) => {
            return Response::json(
                500,
                format!(
                    "{{\"error\":\"read {}: {}\"}}",
                    esc(&path.display().to_string()),
                    esc(&e.to_string())
                ),
            )
        }
    };
    let synopsis = match xcluster_core::codec::decode_synopsis(&bytes) {
        Ok(s) => s,
        Err(e) => return Response::json(500, format!("{{\"error\":\"{}\"}}", esc(&e.to_string()))),
    };
    let nodes = synopsis.num_nodes();
    let version = state.install_synopsis(synopsis);
    Response::json(
        200,
        format!("{{\"reloaded\":true,\"version\":{version},\"nodes\":{nodes}}}"),
    )
}

fn stats_response(state: &ServerState) -> Response {
    let guard = state.loaded.read().unwrap();
    let Some(loaded) = guard.as_ref() else {
        return Response::json(503, "{\"error\":\"synopsis not loaded\"}");
    };
    let s = &loaded.synopsis;
    let fp = &loaded.footprint;
    let mut kinds = String::new();
    for (i, (kind, k)) in fp.summaries.iter().enumerate() {
        if i > 0 {
            kinds.push(',');
        }
        kinds.push_str(&format!(
            "\"{kind}\":{{\"count\":{},\"heap_bytes\":{},\"model_bytes\":{}}}",
            k.count, k.heap_bytes, k.model_bytes
        ));
    }
    let cstats = loaded.cache.stats();
    let journal = &state.journal;
    let jcfg = journal.config();
    let shadow_block = match state.shadow() {
        Some(m) => {
            let st = m.stats();
            format!(
                ",\"shadow\":{{\"sample_ppm\":{},\"submitted\":{},\"evaluated\":{},\
                 \"dropped\":{},\"parse_failures\":{},\"drift_events\":{}}}",
                m.config().sample_ppm,
                st.submitted,
                st.evaluated,
                st.dropped,
                st.parse_failures,
                st.drift_events,
            )
        }
        None => String::new(),
    };
    let body = format!(
        "{{\"version\":{},\"nodes\":{},\"edges\":{},\"value_nodes\":{},\"arena_nodes\":{},\"max_depth\":{},\
         \"model\":{{\"structural_bytes\":{},\"value_bytes\":{},\"total_bytes\":{}}},\
         \"footprint\":{{\"total_bytes\":{},\"cluster_bytes\":{},\"edge_bytes\":{},\
         \"interner_bytes\":{},\"summary_bytes\":{},\"summaries\":{{{kinds}}}}},\
         \"reach_cache\":{{\"heap_bytes\":{},\"full_entries\":{},\"reach_entries\":{},\
         \"probe_entries\":{},\"reach_hits\":{},\"reach_misses\":{},\"probe_hits\":{},\
         \"probe_misses\":{}}},\
         \"journal\":{{\"capacity\":{},\"len\":{},\"reserved\":{},\"evicted\":{},\
         \"sample_ppm\":{},\"seed\":{},\"heap_bytes\":{}}},\
         \"slow_ring\":{{\"capacity\":{},\"len\":{},\"heap_bytes\":{}}}{shadow_block}}}",
        s.version(),
        s.num_nodes(),
        s.num_edges(),
        s.num_value_nodes(),
        s.arena_len(),
        s.max_depth(),
        s.structural_bytes(),
        s.value_bytes(),
        s.total_bytes(),
        fp.total_bytes(),
        fp.cluster_bytes,
        fp.edge_bytes,
        fp.interner_bytes,
        fp.summary_bytes(),
        loaded.cache.heap_bytes(),
        cstats.full_entries,
        cstats.reach_entries,
        cstats.probe_entries,
        cstats.reach_hits,
        cstats.reach_misses,
        cstats.probe_hits,
        cstats.probe_misses,
        journal.capacity(),
        journal.len(),
        journal.reserved(),
        journal.evicted(),
        jcfg.sample_ppm,
        jcfg.seed,
        journal.heap_bytes(),
        state.slow.capacity(),
        state.slow.len(),
        state.slow.heap_bytes(),
    );
    Response::json(200, body)
}

/// `GET /debug/requests[?n=K]` — the most recent K (default 100)
/// journal records as a JSON array, newest last.
fn debug_requests_response(state: &ServerState, req: &Request) -> Response {
    let n = req
        .query_param("n")
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(100);
    let records = state.journal.snapshot();
    let tail = &records[records.len().saturating_sub(n)..];
    let mut out = String::with_capacity(64 + tail.len() * 160);
    out.push_str("{\"count\":");
    out.push_str(&tail.len().to_string());
    out.push_str(",\"records\":[");
    for (i, rec) in tail.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&rec.to_json());
    }
    out.push_str("]}");
    Response::json(200, out)
}

/// `GET /debug/slow[?chrome=1]` — the top-K slowest batches. The
/// default JSON lists batch identity and rendered span trees; with
/// `chrome=1` the stored traces are exported as one Chrome
/// `chrome://tracing` / Perfetto document.
fn debug_slow_response(state: &ServerState, req: &Request) -> Response {
    let entries = state.slow.snapshot();
    if req.query_param("chrome") == Some("1") {
        let traces: Vec<_> = entries.into_iter().flat_map(|e| e.traces).collect();
        return Response::json(200, trace::chrome_trace_json(&traces));
    }
    let mut out = String::with_capacity(64 + entries.len() * 256);
    out.push_str("{\"count\":");
    out.push_str(&entries.len().to_string());
    out.push_str(",\"batches\":[");
    for (i, e) in entries.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let mut tree = String::new();
        for t in &e.traces {
            tree.push_str(&t.render_tree());
        }
        out.push_str(&format!(
            "{{\"seq\":{},\"request_id\":\"{}\",\"latency_ns\":{},\"queries\":{},\
             \"spans\":{},\"tree\":\"{}\"}}",
            e.seq,
            esc(&e.request_id),
            e.latency_ns,
            e.queries,
            e.traces.iter().map(|t| t.spans().len()).sum::<usize>(),
            esc(&tree),
        ));
    }
    out.push_str("]}");
    Response::json(200, out)
}

/// Extracts a usable request id from the client header: printable
/// ASCII, truncated to 64 bytes. Anything else falls back to the
/// server-generated id.
fn client_request_id(req: &Request) -> Option<String> {
    let id = req.header("x-request-id")?.trim();
    if id.is_empty() || !id.bytes().all(|b| (0x21..=0x7E).contains(&b)) {
        return None;
    }
    Some(id.chars().take(64).collect())
}

fn estimate_response(state: &ServerState, req: &Request, worker: u64) -> Response {
    let (synopsis, cache) = {
        let guard = state.loaded.read().unwrap();
        match guard.as_ref() {
            Some(l) => (Arc::clone(&l.synopsis), Arc::clone(&l.cache)),
            None => return Response::json(503, "{\"error\":\"synopsis not loaded\"}"),
        }
    };
    let body = match std::str::from_utf8(&req.body) {
        Ok(b) => b,
        Err(_) => return Response::json(400, "{\"error\":\"body is not UTF-8\"}"),
    };
    let doc = match json::parse(body) {
        Ok(d) => d,
        Err(e) => return Response::json(400, format!("{{\"error\":\"{}\"}}", esc(&e.to_string()))),
    };
    let Some(queries) = doc.get("queries").and_then(JsonValue::as_array) else {
        return Response::json(400, "{\"error\":\"expected {\\\"queries\\\":[...]}\"}");
    };
    let mut twigs = Vec::with_capacity(queries.len());
    let mut texts: Vec<&str> = Vec::with_capacity(queries.len());
    for (i, q) in queries.iter().enumerate() {
        let Some(text) = q.as_str() else {
            return Response::json(
                400,
                format!("{{\"error\":\"query is not a string\",\"index\":{i}}}"),
            );
        };
        match parse_twig(text, synopsis.terms()) {
            Ok(t) => {
                twigs.push(t);
                texts.push(text);
            }
            Err(e) => {
                return Response::json(
                    400,
                    format!("{{\"error\":\"{}\",\"index\":{i}}}", esc(&e.to_string())),
                )
            }
        }
    }
    // Reserve the batch's global sequence block before estimating so
    // journal order reflects admission order.
    let seq0 = state.journal.reserve(twigs.len() as u64);
    let request_id = client_request_id(req).unwrap_or_else(|| format!("auto-{seq0:08x}"));
    // Before/after counter deltas attribute batch-level work to the
    // journal records. The counters are process-global and the cache is
    // per-synopsis, so under concurrent batches the deltas are
    // approximate — documented on `JournalRecord`.
    let clusters0 = CLUSTERS_VISITED.get();
    let cstats0 = cache.stats();
    let t0 = Instant::now();
    let estimator = Estimator::new(&synopsis)
        .with_threads(state.estimate_threads)
        .with_cache(Arc::clone(&cache));
    let estimates = estimator.estimate_batch(&twigs);
    let elapsed_ns = t0.elapsed().as_nanos().min(u64::MAX as u128) as u64;
    let clusters = CLUSTERS_VISITED.get().saturating_sub(clusters0);
    let cstats = cache.stats();
    state.window.record(elapsed_ns);
    ESTIMATE_NS.record(elapsed_ns);
    BATCHES.inc();
    QUERIES.add(twigs.len() as u64);
    // Journal the sampled queries of this batch.
    let shadow = state.shadow();
    for (i, (text, est)) in texts.iter().zip(&estimates).enumerate() {
        let seq = seq0 + i as u64;
        let shadow_sampled = state.shadow_sampler.sample(seq);
        if shadow_sampled {
            if let Some(m) = &shadow {
                m.submit(text, *est);
            }
        }
        if state.journal.sampled(seq) {
            state.journal.record(JournalRecord {
                seq,
                request_id: request_id.clone(),
                query: (*text).to_string(),
                estimate: *est,
                latency_ns: elapsed_ns,
                clusters,
                reach_hits: cstats.reach_hits.saturating_sub(cstats0.reach_hits),
                reach_misses: cstats.reach_misses.saturating_sub(cstats0.reach_misses),
                probe_hits: cstats.probe_hits.saturating_sub(cstats0.probe_hits),
                probe_misses: cstats.probe_misses.saturating_sub(cstats0.probe_misses),
                worker,
                shard: shard_of(i, twigs.len(), state.estimate_threads),
                shadow_sampled,
            });
        }
    }
    // Capture the span trees of a qualifying slow batch by re-running
    // it traced: estimation is pure, so the re-run estimates are
    // bitwise identical and only the original latency is kept.
    if !twigs.is_empty() && state.slow.qualifies(elapsed_ns) {
        let traced = estimator.estimate_batch_traced_by(&twigs, |t| t);
        let traces = traced
            .into_iter()
            .enumerate()
            .map(|(i, (_, mut t))| {
                t.push_root_attr("request_id", request_id.as_str());
                t.push_root_attr("seq", seq0 + i as u64);
                t
            })
            .collect();
        state.slow.offer(SlowEntry {
            seq: seq0,
            request_id: request_id.clone(),
            latency_ns: elapsed_ns,
            queries: twigs.len(),
            traces,
        });
    }
    state.register_serving_footprint();
    // The cache grows monotonically (bounded probe memo); account its
    // resident bytes alongside the synopsis footprint gauges.
    xcluster_obs::gauge("footprint.reach_cache_bytes").set(cache.heap_bytes() as i64);
    let mut out = String::with_capacity(16 + estimates.len() * 8);
    out.push_str("{\"count\":");
    out.push_str(&estimates.len().to_string());
    out.push_str(",\"estimates\":[");
    for (i, e) in estimates.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        // f64 Display is shortest-roundtrip: parsing this text yields
        // the identical bits, which the smoke tests assert.
        out.push_str(&format!("{e}"));
    }
    out.push_str("]}");
    Response::json(200, out)
        .with_header("x-request-id", request_id)
        .with_header("x-synopsis-version", synopsis.version().to_string())
}
