//! A tiny blocking HTTP/1.1 client — enough to drive the server from
//! the load generator, the CI smoke test, and integration tests without
//! external dependencies. One request per connection (`Connection:
//! close`), so no connection-state bookkeeping.

use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// A parsed HTTP response.
#[derive(Debug, Clone)]
pub struct HttpResponse {
    /// Status code from the status line.
    pub status: u16,
    /// Header `(name, value)` pairs, names lowercased.
    pub headers: Vec<(String, String)>,
    /// Response body as text.
    pub body: String,
}

impl HttpResponse {
    /// First value of header `name` (lowercase), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Strips an optional `http://` scheme and any trailing path from a
/// server URL, leaving `host:port` for `TcpStream::connect`.
pub fn host_port(url: &str) -> &str {
    let rest = url.strip_prefix("http://").unwrap_or(url);
    rest.split('/').next().unwrap_or(rest)
}

fn bad_data(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// Issues one request and reads the full response. `addr` may be
/// `host:port` or `http://host:port`.
pub fn request(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> io::Result<HttpResponse> {
    request_with_headers(addr, method, path, &[], body)
}

/// [`request`] with extra request headers (e.g. `x-request-id`).
/// Header names and values must already be line-safe.
pub fn request_with_headers(
    addr: &str,
    method: &str,
    path: &str,
    headers: &[(&str, &str)],
    body: Option<&str>,
) -> io::Result<HttpResponse> {
    let mut stream = TcpStream::connect(host_port(addr))?;
    stream.set_read_timeout(Some(Duration::from_secs(30)))?;
    let body = body.unwrap_or("");
    let mut head = format!(
        "{method} {path} HTTP/1.1\r\nHost: {}\r\nContent-Length: {}\r\n\
         Content-Type: application/json\r\nConnection: close\r\n",
        host_port(addr),
        body.len(),
    );
    for (name, value) in headers {
        head.push_str(&format!("{name}: {value}\r\n"));
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()?;
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    parse_response(&raw)
}

fn parse_response(raw: &[u8]) -> io::Result<HttpResponse> {
    let text = std::str::from_utf8(raw).map_err(|_| bad_data("non-UTF-8 response"))?;
    let (head, body) = text
        .split_once("\r\n\r\n")
        .or_else(|| text.split_once("\n\n"))
        .ok_or_else(|| bad_data("response without header terminator"))?;
    let mut lines = head.lines();
    let status_line = lines.next().ok_or_else(|| bad_data("empty response"))?;
    let status = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| bad_data(format!("bad status line {status_line:?}")))?;
    let mut headers = Vec::new();
    for line in lines {
        if let Some((n, v)) = line.split_once(':') {
            headers.push((n.trim().to_ascii_lowercase(), v.trim().to_string()));
        }
    }
    // `Connection: close` responses end at EOF; trust Content-Length
    // when present to trim any trailing bytes defensively.
    let body = match headers
        .iter()
        .find(|(n, _)| n == "content-length")
        .and_then(|(_, v)| v.parse::<usize>().ok())
    {
        Some(len) if len <= body.len() => &body[..len],
        _ => body,
    };
    Ok(HttpResponse {
        status,
        headers,
        body: body.to_string(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn host_port_strips_scheme_and_path() {
        assert_eq!(host_port("http://127.0.0.1:8080/metrics"), "127.0.0.1:8080");
        assert_eq!(host_port("127.0.0.1:8080"), "127.0.0.1:8080");
        assert_eq!(host_port("http://localhost:9"), "localhost:9");
    }

    #[test]
    fn parses_response_bytes() {
        let raw = b"HTTP/1.1 200 OK\r\nContent-Type: text/plain\r\nContent-Length: 3\r\n\r\nok\n";
        let r = parse_response(raw).unwrap();
        assert_eq!(r.status, 200);
        assert_eq!(r.header("content-type"), Some("text/plain"));
        assert_eq!(r.body, "ok\n");
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_response(b"not http").is_err());
        assert!(parse_response(b"HTTP/1.1 nope\r\n\r\n").is_err());
    }
}
