//! **xcluster-serve** — the live serving layer: a dependency-free
//! HTTP/1.1 estimation server plus the matching client and load
//! generator. XCluster synopses exist to answer selectivity queries
//! cheaply at runtime; this crate turns a built synopsis into a
//! long-running process you can scrape, health-check, and
//! capacity-plan against.
//!
//! * [`http`] — minimal request/response wire layer with size caps;
//! * [`server`] — [`server::Server`]: `TcpListener` accept loop over a
//!   bounded worker pool, routing `POST /estimate`, `GET /metrics`
//!   (Prometheus text exposition from `xcluster_obs::expose`),
//!   `GET /healthz`, `GET /readyz`, `GET /synopsis/stats`, and
//!   `POST /shutdown`;
//! * [`telemetry`] — request-level telemetry: the top-K slow-query
//!   ring (full span trees, `GET /debug/slow`) and the shadow accuracy
//!   monitor re-evaluating a deterministic sample of served queries
//!   exactly (`xcluster_accuracy_rel{class=...}`);
//! * [`client`] — one-shot blocking HTTP client for tests and tooling;
//! * [`loadgen`] — seeded workload driver reporting achieved
//!   throughput, sliding-window latency quantiles, and optional
//!   bitwise verification against in-process `estimate_batch`.
//!
//! # Determinism contract
//!
//! `/estimate` responses carry `f64` estimates printed with Rust's
//! shortest-roundtrip `Display`; re-parsing them yields bitwise the
//! values `estimate_batch` produced, at any server thread count. The
//! load generator's `--verify` mode and the smoke tests enforce this.

pub mod client;
pub mod http;
pub mod loadgen;
pub mod server;
pub mod telemetry;

pub use client::{request, HttpResponse};
pub use loadgen::{LoadgenConfig, LoadgenReport};
pub use server::{Server, ServerConfig, ServerState};
pub use telemetry::{ShadowConfig, ShadowMonitor, ShadowStats, SlowEntry, SlowRing};
