//! A minimal HTTP/1.1 wire layer over `std::io` streams — just enough
//! protocol for the estimation server and its load generator: request
//! parsing with header and body caps, and single-write responses.
//!
//! Not a general web server: no chunked transfer encoding, no `Expect:
//! 100-continue`, no pipelining beyond sequential keep-alive. Anything
//! outside that subset is rejected with a clean error instead of being
//! misinterpreted.

use std::io::{self, BufRead, Read, Write};

/// Default upper bound on request head (request line + headers) bytes.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;

/// Default upper bound on request body bytes (hostile `Content-Length`
/// guard).
pub const MAX_BODY_BYTES: usize = 16 * 1024 * 1024;

/// Request-size caps enforced while reading a request off the wire.
/// [`Limits::default`] matches the historical hardcoded values; the
/// server exposes them as `xcluster serve` flags.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Limits {
    /// Upper bound on request head (request line + headers) bytes.
    pub max_head_bytes: usize,
    /// Upper bound on declared request body bytes.
    pub max_body_bytes: usize,
}

impl Default for Limits {
    fn default() -> Self {
        Limits {
            max_head_bytes: MAX_HEAD_BYTES,
            max_body_bytes: MAX_BODY_BYTES,
        }
    }
}

/// A parsed HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Request method, uppercase as sent (`GET`, `POST`).
    pub method: String,
    /// Request target path, e.g. `/estimate` (query strings included).
    pub path: String,
    /// Header `(name, value)` pairs; names lowercased.
    pub headers: Vec<(String, String)>,
    /// Request body (empty unless `Content-Length` was sent).
    pub body: Vec<u8>,
}

impl Request {
    /// First value of header `name` (lowercase), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// The path without its query string (`/debug/slow?chrome=1` →
    /// `/debug/slow`).
    pub fn route_path(&self) -> &str {
        self.path.split('?').next().unwrap_or(&self.path)
    }

    /// First value of query parameter `key` (`?n=50&x` → `n` is `50`,
    /// `x` is `""`). No percent-decoding — the diagnostics endpoints
    /// only take plain numeric/flag parameters.
    pub fn query_param(&self, key: &str) -> Option<&str> {
        let (_, qs) = self.path.split_once('?')?;
        qs.split('&').find_map(|pair| {
            let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
            (k == key).then_some(v)
        })
    }

    /// Whether the client asked to keep the connection open (HTTP/1.1
    /// default unless `Connection: close`).
    pub fn keep_alive(&self) -> bool {
        !self
            .header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }
}

/// Why reading a request failed.
#[derive(Debug)]
pub enum ReadError {
    /// The peer closed the connection between requests (normal end of a
    /// keep-alive session).
    Closed,
    /// The bytes on the wire are not the HTTP subset we speak.
    Malformed(String),
    /// The head or declared body exceeds the configured caps.
    TooLarge(String),
    /// Transport failure.
    Io(io::Error),
}

impl std::fmt::Display for ReadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReadError::Closed => write!(f, "connection closed"),
            ReadError::Malformed(m) => write!(f, "malformed request: {m}"),
            ReadError::TooLarge(m) => write!(f, "request too large: {m}"),
            ReadError::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

impl std::error::Error for ReadError {}

impl From<io::Error> for ReadError {
    fn from(e: io::Error) -> Self {
        ReadError::Io(e)
    }
}

fn read_line<R: BufRead>(r: &mut R, budget: &mut usize, cap: usize) -> Result<String, ReadError> {
    let mut buf = Vec::new();
    let n = r
        .by_ref()
        .take(*budget as u64 + 1)
        .read_until(b'\n', &mut buf)?;
    if n == 0 {
        return Err(ReadError::Closed);
    }
    if n > *budget {
        return Err(ReadError::TooLarge(format!("head exceeds {cap} bytes")));
    }
    *budget -= n;
    if buf.last() != Some(&b'\n') {
        return Err(ReadError::Malformed("line without terminator".into()));
    }
    buf.pop();
    if buf.last() == Some(&b'\r') {
        buf.pop();
    }
    String::from_utf8(buf).map_err(|_| ReadError::Malformed("non-UTF-8 header bytes".into()))
}

/// Reads one request off `r` with the default [`Limits`]. Returns
/// [`ReadError::Closed`] when the peer hung up cleanly before sending a
/// request line.
pub fn read_request<R: BufRead>(r: &mut R) -> Result<Request, ReadError> {
    read_request_with(r, &Limits::default())
}

/// Reads one request off `r`, enforcing the given size caps.
pub fn read_request_with<R: BufRead>(r: &mut R, limits: &Limits) -> Result<Request, ReadError> {
    let mut budget = limits.max_head_bytes;
    let request_line = read_line(r, &mut budget, limits.max_head_bytes)?;
    let mut parts = request_line.split(' ');
    let (method, path, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v), None) if !m.is_empty() && p.starts_with('/') => (m, p, v),
        _ => {
            return Err(ReadError::Malformed(format!(
                "bad request line {request_line:?}"
            )))
        }
    };
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(ReadError::Malformed(format!("bad version {version:?}")));
    }
    let mut headers = Vec::new();
    loop {
        let line = match read_line(r, &mut budget, limits.max_head_bytes) {
            Ok(l) => l,
            Err(ReadError::Closed) => {
                return Err(ReadError::Malformed("truncated header block".into()))
            }
            Err(e) => return Err(e),
        };
        if line.is_empty() {
            break;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| ReadError::Malformed(format!("bad header line {line:?}")))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }
    let mut req = Request {
        method: method.to_string(),
        path: path.to_string(),
        headers,
        body: Vec::new(),
    };
    if req.header("transfer-encoding").is_some() {
        return Err(ReadError::Malformed(
            "transfer-encoding is not supported".into(),
        ));
    }
    if let Some(cl) = req.header("content-length") {
        let len: usize = cl
            .parse()
            .map_err(|_| ReadError::Malformed(format!("bad content-length {cl:?}")))?;
        if len > limits.max_body_bytes {
            return Err(ReadError::TooLarge(format!(
                "body of {len} bytes exceeds {}",
                limits.max_body_bytes
            )));
        }
        let mut body = vec![0u8; len];
        r.read_exact(&mut body)
            .map_err(|_| ReadError::Malformed("truncated body".into()))?;
        req.body = body;
    }
    Ok(req)
}

/// An HTTP response ready to serialize.
#[derive(Debug, Clone)]
pub struct Response {
    /// Status code (`200`, `404`, …).
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Extra response headers (e.g. `x-request-id` echo); names must
    /// already be valid header tokens.
    pub headers: Vec<(&'static str, String)>,
    /// Response body.
    pub body: Vec<u8>,
}

impl Response {
    /// A response with an explicit content type.
    pub fn with_type(status: u16, content_type: &'static str, body: impl Into<String>) -> Response {
        Response {
            status,
            content_type,
            headers: Vec::new(),
            body: body.into().into_bytes(),
        }
    }

    /// A `text/plain` response.
    pub fn text(status: u16, body: impl Into<String>) -> Response {
        Response::with_type(status, "text/plain; charset=utf-8", body)
    }

    /// An `application/json` response.
    pub fn json(status: u16, body: impl Into<String>) -> Response {
        Response::with_type(status, "application/json", body)
    }

    /// A Prometheus text-exposition response.
    pub fn metrics(body: String) -> Response {
        Response::with_type(200, "text/plain; version=0.0.4", body)
    }

    /// Appends an extra response header. Values are sanitized to a
    /// single line so a hostile echo cannot inject headers.
    pub fn with_header(mut self, name: &'static str, value: impl Into<String>) -> Response {
        let value: String = value
            .into()
            .chars()
            .filter(|c| !c.is_control())
            .take(256)
            .collect();
        self.headers.push((name, value));
        self
    }
}

/// Reason phrase for the status codes this server emits.
pub fn status_text(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Serializes `resp` as one `write_all` (head + body in a single
/// buffer, so concurrent connections never interleave partial writes).
pub fn write_response<W: Write>(w: &mut W, resp: &Response, keep_alive: bool) -> io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n",
        resp.status,
        status_text(resp.status),
        resp.content_type,
        resp.body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    );
    for (name, value) in &resp.headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    let mut buf = Vec::with_capacity(head.len() + resp.body.len());
    buf.extend_from_slice(head.as_bytes());
    buf.extend_from_slice(&resp.body);
    w.write_all(&buf)?;
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(raw: &str) -> Result<Request, ReadError> {
        read_request(&mut BufReader::new(raw.as_bytes()))
    }

    #[test]
    fn parses_get_request() {
        let req = parse("GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/healthz");
        assert_eq!(req.header("host"), Some("x"));
        assert!(req.body.is_empty());
        assert!(req.keep_alive());
    }

    #[test]
    fn parses_post_with_body() {
        let req = parse(
            "POST /estimate HTTP/1.1\r\nContent-Length: 7\r\nConnection: close\r\n\r\n{\"a\":1}",
        )
        .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.body, b"{\"a\":1}");
        assert!(!req.keep_alive());
    }

    #[test]
    fn bare_lf_lines_are_accepted() {
        let req = parse("GET / HTTP/1.1\nHost: x\n\n").unwrap();
        assert_eq!(req.path, "/");
    }

    #[test]
    fn rejects_malformed_requests() {
        assert!(matches!(
            parse("NOT-HTTP\r\n\r\n"),
            Err(ReadError::Malformed(_))
        ));
        assert!(matches!(
            parse("GET / HTTP/9.9\r\n\r\n"),
            Err(ReadError::Malformed(_))
        ));
        assert!(matches!(
            parse("GET / HTTP/1.1\r\nbadheader\r\n\r\n"),
            Err(ReadError::Malformed(_))
        ));
        assert!(matches!(
            parse("POST / HTTP/1.1\r\nContent-Length: nope\r\n\r\n"),
            Err(ReadError::Malformed(_))
        ));
        assert!(matches!(
            parse("POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"),
            Err(ReadError::Malformed(_))
        ));
        assert!(matches!(
            parse("POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort"),
            Err(ReadError::Malformed(_))
        ));
    }

    #[test]
    fn clean_close_before_request_line() {
        assert!(matches!(parse(""), Err(ReadError::Closed)));
    }

    #[test]
    fn oversized_declared_body_is_rejected() {
        let raw = format!(
            "POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        assert!(matches!(parse(&raw), Err(ReadError::TooLarge(_))));
    }

    #[test]
    fn oversized_head_is_rejected() {
        let raw = format!("GET /{} HTTP/1.1\r\n\r\n", "x".repeat(MAX_HEAD_BYTES));
        assert!(matches!(parse(&raw), Err(ReadError::TooLarge(_))));
    }

    #[test]
    fn custom_limits_are_enforced() {
        let limits = Limits {
            max_head_bytes: 64,
            max_body_bytes: 8,
        };
        // Head just over the configured cap.
        let raw = format!("GET /{} HTTP/1.1\r\n\r\n", "x".repeat(80));
        let err = read_request_with(&mut BufReader::new(raw.as_bytes()), &limits).unwrap_err();
        assert!(matches!(err, ReadError::TooLarge(_)));
        // Declared body over the configured cap (well under the default).
        let raw = "POST / HTTP/1.1\r\nContent-Length: 9\r\n\r\n123456789";
        let err = read_request_with(&mut BufReader::new(raw.as_bytes()), &limits).unwrap_err();
        assert!(matches!(err, ReadError::TooLarge(m) if m.contains('8')));
        // At the cap both pass.
        let raw = "POST / HTTP/1.1\r\nContent-Length: 8\r\n\r\n12345678";
        let req = read_request_with(&mut BufReader::new(raw.as_bytes()), &limits).unwrap();
        assert_eq!(req.body, b"12345678");
    }

    #[test]
    fn route_path_and_query_params() {
        let req = parse("GET /debug/slow?chrome=1&n=5 HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(req.route_path(), "/debug/slow");
        assert_eq!(req.query_param("chrome"), Some("1"));
        assert_eq!(req.query_param("n"), Some("5"));
        assert_eq!(req.query_param("missing"), None);
        let req = parse("GET /healthz HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(req.route_path(), "/healthz");
        assert_eq!(req.query_param("chrome"), None);
    }

    #[test]
    fn extra_headers_are_emitted_and_sanitized() {
        let resp = Response::json(200, "{}")
            .with_header("x-request-id", "abc-123")
            .with_header("x-evil", "a\r\nInjected: yes");
        let mut out = Vec::new();
        write_response(&mut out, &resp, true).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("x-request-id: abc-123\r\n"), "{text}");
        assert!(text.contains("x-evil: aInjected: yes\r\n"), "{text}");
        assert!(!text.contains("\r\nInjected:"));
        // Headers land before the blank line separating head from body.
        let head_end = text.find("\r\n\r\n").unwrap();
        assert!(text.find("x-request-id").unwrap() < head_end);
    }

    #[test]
    fn with_type_sets_content_type() {
        let resp = Response::with_type(200, "application/x-ndjson", "{}\n");
        let mut out = Vec::new();
        write_response(&mut out, &resp, false).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("Content-Type: application/x-ndjson\r\n"));
    }

    #[test]
    fn response_roundtrip() {
        let mut out = Vec::new();
        write_response(&mut out, &Response::json(200, "{\"ok\":true}"), true).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.contains("Content-Length: 11\r\n"));
        assert!(text.contains("Connection: keep-alive\r\n"));
        assert!(text.ends_with("{\"ok\":true}"));
        let mut out = Vec::new();
        write_response(&mut out, &Response::text(503, "loading\n"), false).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 503 Service Unavailable\r\n"));
        assert!(text.contains("Connection: close\r\n"));
    }
}
