//! End-to-end smoke test over a real TCP socket: readiness gating,
//! batch estimation bitwise-equal to an in-process `Estimator` run,
//! Prometheus exposition with the required series, synopsis stats, and
//! graceful shutdown.

use xcluster_core::build::{build_synopsis, BuildConfig};
use xcluster_core::reference::{reference_synopsis, ReferenceConfig};
use xcluster_core::synopsis::Synopsis;
use xcluster_core::Estimator;
use xcluster_obs::expose;
use xcluster_obs::json::{self, JsonValue};
use xcluster_serve::loadgen::{batch_body, parse_estimates};
use xcluster_serve::{client, Server, ServerConfig};

fn sample_synopsis() -> Synopsis {
    let mut xml = String::from("<bib>");
    for i in 0..40 {
        xml.push_str(&format!(
            "<paper><year>{}</year><title>paper number {i}</title>\
             <abstract>selectivity estimation for structured xml content {}</abstract></paper>",
            1980 + (i * 7) % 40,
            ["histograms", "sketches", "synopses", "wavelets"][i % 4],
        ));
    }
    xml.push_str("</bib>");
    let doc = xcluster_xml::parse(&xml).unwrap();
    let reference = reference_synopsis(&doc, &ReferenceConfig::default());
    build_synopsis(
        reference,
        &BuildConfig {
            b_str: 2048,
            b_val: 4096,
            ..BuildConfig::default()
        },
    )
}

fn queries() -> Vec<String> {
    vec![
        "//paper/year".into(),
        "//paper[year > 1999]/title".into(),
        "//paper[year < 1990]".into(),
        "/bib/paper/title".into(),
        "//paper/abstract".into(),
        "//paper[year > 1985]/abstract".into(),
    ]
}

/// One server instance shared by the whole test (binding once keeps the
/// test fast and exercises keep-alive across endpoints).
#[test]
fn serve_smoke() {
    let server = Server::bind(&ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        estimate_threads: 2,
    })
    .unwrap();
    let addr = server.local_addr().to_string();
    let state = server.state();

    // Not ready before the synopsis loads; liveness is immediate.
    let synopsis = sample_synopsis();
    let expected_synopsis = synopsis.clone();
    let server = std::sync::Arc::new(server);
    let run_handle = {
        let server = std::sync::Arc::clone(&server);
        std::thread::spawn(move || server.run().unwrap())
    };
    assert_eq!(
        client::request(&addr, "GET", "/healthz", None)
            .unwrap()
            .status,
        200
    );
    assert_eq!(
        client::request(&addr, "GET", "/readyz", None)
            .unwrap()
            .status,
        503
    );
    let r = client::request(&addr, "POST", "/estimate", Some("{\"queries\":[]}")).unwrap();
    assert_eq!(r.status, 503, "estimate before load must 503: {}", r.body);

    server.set_synopsis(synopsis);
    assert!(state.ready());
    assert_eq!(
        client::request(&addr, "GET", "/readyz", None)
            .unwrap()
            .status,
        200
    );

    // 50-query batch: responses bitwise-equal to in-process estimates.
    let qs = queries();
    let batch: Vec<&str> = (0..50).map(|i| qs[i % qs.len()].as_str()).collect();
    let resp = client::request(&addr, "POST", "/estimate", Some(&batch_body(&batch))).unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body);
    let got = parse_estimates(&resp.body).unwrap();
    let twigs: Vec<_> = batch
        .iter()
        .map(|q| xcluster_query::parse_twig(q, expected_synopsis.terms()).unwrap())
        .collect();
    let want = Estimator::new(&expected_synopsis).estimate_batch(&twigs);
    assert_eq!(got.len(), want.len());
    for (i, (g, w)) in got.iter().zip(&want).enumerate() {
        assert_eq!(
            g.to_bits(),
            w.to_bits(),
            "estimate {i} differs: {g} vs {w} ({})",
            batch[i]
        );
    }

    // Bad requests are 4xx, not connection drops.
    let r = client::request(
        &addr,
        "POST",
        "/estimate",
        Some("{\"queries\":[\"///((\"]}"),
    )
    .unwrap();
    assert_eq!(r.status, 400);
    assert!(r.body.contains("\"index\":0"), "{}", r.body);
    let r = client::request(&addr, "POST", "/estimate", Some("not json")).unwrap();
    assert_eq!(r.status, 400);
    let r = client::request(&addr, "GET", "/nope", None).unwrap();
    assert_eq!(r.status, 404);
    let r = client::request(&addr, "GET", "/estimate", None).unwrap();
    assert_eq!(r.status, 405);

    // /metrics parses as Prometheus text format and carries build,
    // estimate, serve, window-quantile, and footprint series.
    let m = client::request(&addr, "GET", "/metrics", None).unwrap();
    assert_eq!(m.status, 200);
    assert_eq!(m.header("content-type"), Some("text/plain; version=0.0.4"));
    let exposition = expose::parse(&m.body).unwrap();
    for series in [
        "xcluster_build_final_struct_bytes",
        "xcluster_serve_requests_total",
        "xcluster_serve_estimate_queries_total",
        "xcluster_footprint_total_bytes",
        "xcluster_footprint_summary_histogram_bytes",
    ] {
        assert!(
            exposition.value(series).is_some(),
            "missing series {series} in:\n{}",
            m.body
        );
    }
    assert!(
        exposition
            .quantile("xcluster_window_estimate_ns", "0.99")
            .is_some(),
        "missing window quantile series in:\n{}",
        m.body
    );
    assert!(
        exposition
            .value("xcluster_serve_estimate_queries_total")
            .unwrap()
            >= 50.0,
        "batch queries must be counted"
    );

    // Estimate-latency summary from the cumulative histogram.
    assert!(
        exposition
            .quantile("xcluster_serve_estimate_ns", "0.5")
            .is_some(),
        "missing estimate summary in:\n{}",
        m.body
    );

    // /synopsis/stats reports the footprint attribution as JSON.
    let s = client::request(&addr, "GET", "/synopsis/stats", None).unwrap();
    assert_eq!(s.status, 200);
    let doc = json::parse(&s.body).unwrap();
    assert_eq!(
        doc.get("nodes").and_then(JsonValue::as_f64),
        Some(expected_synopsis.num_nodes() as f64)
    );
    let fp = doc.get("footprint").expect("footprint object");
    assert!(fp.get("total_bytes").and_then(JsonValue::as_f64).unwrap() > 0.0);
    assert!(fp
        .get("summaries")
        .and_then(|s| s.get("histogram"))
        .is_some());

    // Graceful shutdown via the endpoint; the accept loop exits.
    let r = client::request(&addr, "POST", "/shutdown", None).unwrap();
    assert_eq!(r.status, 200);
    run_handle.join().unwrap();
    assert!(state.shutting_down());
}
