//! End-to-end smoke test over a real TCP socket: readiness gating,
//! batch estimation bitwise-equal to an in-process `Estimator` run,
//! Prometheus exposition with the required series, synopsis stats, and
//! graceful shutdown.

use xcluster_core::build::{build_synopsis, BuildConfig};
use xcluster_core::reference::{reference_synopsis, ReferenceConfig};
use xcluster_core::synopsis::Synopsis;
use xcluster_core::Estimator;
use xcluster_obs::expose;
use xcluster_obs::json::{self, JsonValue};
use xcluster_serve::loadgen::{batch_body, parse_estimates};
use xcluster_serve::{client, Server, ServerConfig};

fn sample_doc() -> xcluster_xml::XmlTree {
    let mut xml = String::from("<bib>");
    for i in 0..40 {
        xml.push_str(&format!(
            "<paper><year>{}</year><title>paper number {i}</title>\
             <abstract>selectivity estimation for structured xml content {}</abstract></paper>",
            1980 + (i * 7) % 40,
            ["histograms", "sketches", "synopses", "wavelets"][i % 4],
        ));
    }
    xml.push_str("</bib>");
    xcluster_xml::parse(&xml).unwrap()
}

fn sample_synopsis() -> Synopsis {
    let doc = sample_doc();
    let reference = reference_synopsis(&doc, &ReferenceConfig::default());
    build_synopsis(
        reference,
        &BuildConfig {
            b_str: 2048,
            b_val: 4096,
            ..BuildConfig::default()
        },
    )
}

fn queries() -> Vec<String> {
    vec![
        "//paper/year".into(),
        "//paper[year > 1999]/title".into(),
        "//paper[year < 1990]".into(),
        "/bib/paper/title".into(),
        "//paper/abstract".into(),
        "//paper[year > 1985]/abstract".into(),
    ]
}

/// One server instance shared by the whole test (binding once keeps the
/// test fast and exercises keep-alive across endpoints).
#[test]
fn serve_smoke() {
    let server = Server::bind(&ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        estimate_threads: 2,
        ..ServerConfig::default()
    })
    .unwrap();
    let addr = server.local_addr().to_string();
    let state = server.state();

    // Not ready before the synopsis loads; liveness is immediate.
    let synopsis = sample_synopsis();
    let expected_synopsis = synopsis.clone();
    let server = std::sync::Arc::new(server);
    let run_handle = {
        let server = std::sync::Arc::clone(&server);
        std::thread::spawn(move || server.run().unwrap())
    };
    let health = client::request(&addr, "GET", "/healthz", None).unwrap();
    assert_eq!(health.status, 200);
    assert!(
        health.body.starts_with("ok xcluster/"),
        "liveness carries the build identity: {}",
        health.body
    );
    assert_eq!(
        client::request(&addr, "GET", "/readyz", None)
            .unwrap()
            .status,
        503
    );
    assert_eq!(
        client::request(&addr, "GET", "/debug/synopsis", None)
            .unwrap()
            .status,
        503,
        "no health report before the synopsis loads"
    );
    let r = client::request(&addr, "POST", "/estimate", Some("{\"queries\":[]}")).unwrap();
    assert_eq!(r.status, 503, "estimate before load must 503: {}", r.body);

    server.set_synopsis(synopsis);
    assert!(state.ready());
    assert_eq!(
        client::request(&addr, "GET", "/readyz", None)
            .unwrap()
            .status,
        200
    );

    // 50-query batch: responses bitwise-equal to in-process estimates.
    let qs = queries();
    let batch: Vec<&str> = (0..50).map(|i| qs[i % qs.len()].as_str()).collect();
    let resp = client::request(&addr, "POST", "/estimate", Some(&batch_body(&batch))).unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body);
    let got = parse_estimates(&resp.body).unwrap();
    let twigs: Vec<_> = batch
        .iter()
        .map(|q| xcluster_query::parse_twig(q, expected_synopsis.terms()).unwrap())
        .collect();
    let want = Estimator::new(&expected_synopsis).estimate_batch(&twigs);
    assert_eq!(got.len(), want.len());
    for (i, (g, w)) in got.iter().zip(&want).enumerate() {
        assert_eq!(
            g.to_bits(),
            w.to_bits(),
            "estimate {i} differs: {g} vs {w} ({})",
            batch[i]
        );
    }

    // Bad requests are 4xx, not connection drops.
    let r = client::request(
        &addr,
        "POST",
        "/estimate",
        Some("{\"queries\":[\"///((\"]}"),
    )
    .unwrap();
    assert_eq!(r.status, 400);
    assert!(r.body.contains("\"index\":0"), "{}", r.body);
    let r = client::request(&addr, "POST", "/estimate", Some("not json")).unwrap();
    assert_eq!(r.status, 400);
    let r = client::request(&addr, "GET", "/nope", None).unwrap();
    assert_eq!(r.status, 404);
    let r = client::request(&addr, "GET", "/estimate", None).unwrap();
    assert_eq!(r.status, 405);

    // /metrics parses as Prometheus text format and carries build,
    // estimate, serve, window-quantile, and footprint series.
    let m = client::request(&addr, "GET", "/metrics", None).unwrap();
    assert_eq!(m.status, 200);
    assert_eq!(m.header("content-type"), Some("text/plain; version=0.0.4"));
    let exposition = expose::parse(&m.body).unwrap();
    for series in [
        "xcluster_build_final_struct_bytes",
        "xcluster_serve_requests_total",
        "xcluster_serve_estimate_queries_total",
        "xcluster_footprint_total_bytes",
        "xcluster_footprint_summary_histogram_bytes",
    ] {
        assert!(
            exposition.value(series).is_some(),
            "missing series {series} in:\n{}",
            m.body
        );
    }
    assert!(
        exposition
            .quantile("xcluster_window_estimate_ns", "0.99")
            .is_some(),
        "missing window quantile series in:\n{}",
        m.body
    );
    assert!(
        exposition
            .value("xcluster_serve_estimate_queries_total")
            .unwrap()
            >= 50.0,
        "batch queries must be counted"
    );

    // Estimate-latency summary from the cumulative histogram.
    assert!(
        exposition
            .quantile("xcluster_serve_estimate_ns", "0.5")
            .is_some(),
        "missing estimate summary in:\n{}",
        m.body
    );

    // /synopsis/stats reports the footprint attribution as JSON.
    let s = client::request(&addr, "GET", "/synopsis/stats", None).unwrap();
    assert_eq!(s.status, 200);
    let doc = json::parse(&s.body).unwrap();
    assert_eq!(
        doc.get("nodes").and_then(JsonValue::as_f64),
        Some(expected_synopsis.num_nodes() as f64)
    );
    let fp = doc.get("footprint").expect("footprint object");
    assert!(fp.get("total_bytes").and_then(JsonValue::as_f64).unwrap() > 0.0);
    assert!(fp
        .get("summaries")
        .and_then(|s| s.get("histogram"))
        .is_some());

    // /debug/synopsis before attribution: measured, ranked by bytes.
    let q = client::request(&addr, "GET", "/debug/synopsis?n=3", None).unwrap();
    assert_eq!(q.status, 200, "{}", q.body);
    let qdoc = json::parse(&q.body).unwrap();
    assert_eq!(
        qdoc.get("attributed").and_then(JsonValue::as_bool),
        Some(false)
    );
    assert_eq!(
        qdoc.get("clusters").and_then(JsonValue::as_f64),
        Some(expected_synopsis.num_nodes() as f64),
        "one health row per live cluster"
    );

    // Hot-swap in a *lossy* synopsis (budgets tight enough that the
    // positive workload has real estimation error), evaluate that
    // workload offline with attribution, install the attribution, and
    // re-read: the served report must rank the same top offender as the
    // offline evaluation — the acceptance contract for the quality
    // surface.
    let doc_tree = sample_doc();
    let lossy = build_synopsis(
        reference_synopsis(&doc_tree, &ReferenceConfig::default()),
        &BuildConfig {
            b_str: 512,
            b_val: 256,
            ..BuildConfig::default()
        },
    );
    let lossy_nodes = lossy.num_nodes();
    server.set_synopsis(lossy.clone());
    let idx = xcluster_query::EvalIndex::build(&doc_tree);
    let workload = xcluster_query::workload::generate_positive(
        &doc_tree,
        &idx,
        &xcluster_query::WorkloadConfig {
            num_queries: 150,
            seed: 7,
            ..xcluster_query::WorkloadConfig::default()
        },
    );
    let eval = xcluster_core::evaluate_workload(
        &lossy,
        &workload,
        &xcluster_core::EvalOptions::default().with_attribution(true),
    );
    let attribution = eval.attribution.expect("attribution requested");
    let offline_top = attribution.top().expect("workload has error");
    assert!(
        offline_top.abs_error > 0.0,
        "lossy budgets must produce real estimation error"
    );
    let offline_top = offline_top.cluster;
    server.set_attribution(attribution);
    let q = client::request(&addr, "GET", "/debug/synopsis?n=3", None).unwrap();
    assert_eq!(q.status, 200, "{}", q.body);
    let qdoc = json::parse(&q.body).unwrap();
    assert_eq!(
        qdoc.get("attributed").and_then(JsonValue::as_bool),
        Some(true)
    );
    assert_eq!(
        qdoc.get("clusters").and_then(JsonValue::as_f64),
        Some(lossy_nodes as f64),
        "health report follows the hot-swapped synopsis"
    );
    let top = qdoc
        .get("top")
        .and_then(|t| match t {
            JsonValue::Arr(rows) => rows.first(),
            _ => None,
        })
        .expect("non-empty top array");
    assert_eq!(
        top.get("cluster").and_then(JsonValue::as_f64),
        Some(offline_top as f64),
        "served top offender equals the offline attribution top"
    );
    assert!(top.get("abs_error").and_then(JsonValue::as_f64).unwrap() > 0.0);

    // /metrics now carries the build identity and the top-offender
    // quality gauges, with the same cluster leading.
    let m = client::request(&addr, "GET", "/metrics", None).unwrap();
    let exposition = expose::parse(&m.body).unwrap();
    let info = exposition
        .by_name("xcluster_build_info")
        .next()
        .expect("build info gauge");
    assert_eq!(info.value, 1.0);
    assert!(info.label("version").is_some_and(|v| !v.is_empty()));
    assert_eq!(
        exposition.value("xcluster_quality_clusters"),
        Some(lossy_nodes as f64)
    );
    let worst = exposition
        .by_name("xcluster_quality_cluster_error")
        .next()
        .expect("quality error gauges after attribution install");
    assert_eq!(
        worst.label("cluster"),
        Some(offline_top.to_string().as_str())
    );

    // Graceful shutdown via the endpoint; the accept loop exits.
    let r = client::request(&addr, "POST", "/shutdown", None).unwrap();
    assert_eq!(r.status, 200);
    run_handle.join().unwrap();
    assert!(state.shutting_down());
}

/// Request-level telemetry end to end: request-id echo, the journal
/// and slow-ring debug endpoints, an in-process bitwise replay of the
/// downloaded journal, and the shadow accuracy monitor agreeing with
/// an offline exact re-evaluation of the same sampled queries.
#[test]
fn telemetry_journal_slow_and_shadow() {
    let doc = sample_doc();
    let synopsis = sample_synopsis();
    let expected_synopsis = synopsis.clone();
    let server = Server::bind(&ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        estimate_threads: 2,
        // Journal everything; shadow everything (deterministic small test).
        journal_sample_ppm: 1_000_000,
        shadow_sample_ppm: 1_000_000,
        ..ServerConfig::default()
    })
    .unwrap();
    let addr = server.local_addr().to_string();
    let state = server.state();
    server.set_synopsis(synopsis);
    server.set_shadow(doc.clone(), xcluster_serve::ShadowConfig::default());
    let server = std::sync::Arc::new(server);
    let run_handle = {
        let server = std::sync::Arc::clone(&server);
        std::thread::spawn(move || server.run().unwrap())
    };

    // Client-supplied request id is echoed; journal records carry it.
    let qs = queries();
    let batch: Vec<&str> = qs.iter().map(String::as_str).collect();
    let resp = client::request_with_headers(
        &addr,
        "POST",
        "/estimate",
        &[("x-request-id", "smoke-req-7")],
        Some(&batch_body(&batch)),
    )
    .unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body);
    assert_eq!(resp.header("x-request-id"), Some("smoke-req-7"));

    // Server-generated ids are derived from the journal sequence.
    let resp2 = client::request(&addr, "POST", "/estimate", Some(&batch_body(&batch))).unwrap();
    let auto_id = resp2.header("x-request-id").expect("generated id");
    assert!(auto_id.starts_with("auto-"), "{auto_id}");

    // /debug/requests returns the most recent records.
    let r = client::request(&addr, "GET", "/debug/requests?n=4", None).unwrap();
    assert_eq!(r.status, 200);
    let doc_json = json::parse(&r.body).unwrap();
    assert_eq!(doc_json.get("count").and_then(JsonValue::as_f64), Some(4.0));

    // /debug/slow retains the slowest batches with span trees; the
    // chrome export is a trace-event document.
    let r = client::request(&addr, "GET", "/debug/slow", None).unwrap();
    assert_eq!(r.status, 200);
    let slow = json::parse(&r.body).unwrap();
    assert!(slow.get("count").and_then(JsonValue::as_f64).unwrap() >= 1.0);
    let r = client::request(&addr, "GET", "/debug/slow?chrome=1", None).unwrap();
    assert!(r.body.contains("traceEvents"), "{}", r.body);

    // Download the journal and replay it in-process: estimates must be
    // bitwise identical (estimation is a pure function).
    let r = client::request(&addr, "GET", "/debug/journal", None).unwrap();
    assert_eq!(r.status, 200);
    assert_eq!(r.header("content-type"), Some("application/x-ndjson"));
    let records = xcluster_obs::journal::parse_jsonl(&r.body).unwrap();
    assert_eq!(records.len(), 2 * batch.len(), "full-rate journal");
    for rec in &records {
        let twig = xcluster_query::parse_twig(&rec.query, expected_synopsis.terms()).unwrap();
        let est = Estimator::new(&expected_synopsis).estimate_batch(&[twig])[0];
        assert_eq!(
            est.to_bits(),
            rec.estimate.to_bits(),
            "replay mismatch for {} (seq {})",
            rec.query,
            rec.seq
        );
    }

    // Wait for the shadow worker to drain, then check the exported
    // per-class errors against an offline exact re-evaluation of the
    // same sampled queries (identical quantization → within 1e-9).
    let monitor = state.shadow().expect("shadow attached");
    for _ in 0..1000 {
        if monitor.idle() {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    assert!(
        monitor.idle(),
        "shadow did not drain: {:?}",
        monitor.stats()
    );
    let stats = monitor.stats();
    assert_eq!(stats.dropped, 0);
    assert_eq!(stats.parse_failures, 0);
    assert_eq!(stats.evaluated, records.len() as u64, "shadow at 100%");
    let index = xcluster_query::EvalIndex::build(&doc);
    let mut sums = std::collections::HashMap::new();
    for rec in &records {
        assert!(rec.shadow_sampled, "100% shadow sampling");
        let twig = xcluster_query::parse_twig(&rec.query, doc.terms()).unwrap();
        let truth = xcluster_query::evaluate(&twig, &doc, &index);
        let rel = xcluster_core::metrics::relative_error(truth, rec.estimate, 1.0);
        let nanos = (rel * 1e9).round() as u64;
        let class = xcluster_query::classify(&twig);
        let e = sums.entry(class).or_insert((0u64, 0u64));
        e.0 += nanos;
        e.1 += 1;
    }
    let m = client::request(&addr, "GET", "/metrics", None).unwrap();
    let exposition = expose::parse(&m.body).unwrap();
    for (class, label) in [
        (xcluster_query::QueryClass::Struct, "struct"),
        (xcluster_query::QueryClass::Numeric, "numeric"),
        (xcluster_query::QueryClass::String, "string"),
        (xcluster_query::QueryClass::Text, "text"),
    ] {
        let offline = sums
            .get(&class)
            .map(|(sum, count)| *sum as f64 / *count as f64 / 1e9);
        let scraped = exposition
            .by_name("xcluster_accuracy_rel")
            .find(|s| s.label("class") == Some(label))
            .map(|s| s.value);
        match (offline, scraped) {
            (None, None) => {}
            (Some(o), Some(s)) => {
                assert!((o - s).abs() < 1e-9, "class {label}: offline {o} vs {s}")
            }
            other => panic!("class {label}: presence mismatch {other:?}"),
        }
    }

    // /synopsis/stats carries the journal, slow-ring, and shadow blocks.
    let s = client::request(&addr, "GET", "/synopsis/stats", None).unwrap();
    let stats_doc = json::parse(&s.body).unwrap();
    let journal = stats_doc.get("journal").expect("journal block");
    assert_eq!(
        journal.get("len").and_then(JsonValue::as_f64),
        Some(records.len() as f64)
    );
    assert!(
        journal
            .get("heap_bytes")
            .and_then(JsonValue::as_f64)
            .unwrap()
            > 0.0
    );
    let slow = stats_doc.get("slow_ring").expect("slow_ring block");
    assert!(slow.get("len").and_then(JsonValue::as_f64).unwrap() >= 1.0);
    let shadow = stats_doc.get("shadow").expect("shadow block");
    assert_eq!(
        shadow.get("evaluated").and_then(JsonValue::as_f64),
        Some(records.len() as f64)
    );

    // Serving telemetry bytes are attributed in /metrics.
    assert!(
        exposition
            .value("xcluster_footprint_journal_bytes")
            .unwrap()
            > 0.0
    );

    let r = client::request(&addr, "POST", "/shutdown", None).unwrap();
    assert_eq!(r.status, 200);
    run_handle.join().unwrap();
}

/// Zero-downtime reload under live traffic: `POST /reload` swaps in a
/// refreshed artifact while concurrent `/estimate` batches keep flowing.
/// The acceptance contract: no 5xx anywhere, the published synopsis
/// version is strictly monotone across installs, every response names
/// its version, and responses within one version are bitwise stable.
#[test]
fn reload_swaps_versions_under_live_load() {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;
    use xcluster_core::codec::encode_synopsis;
    use xcluster_core::{apply_delta, DeltaOp, DocDelta};

    let doc = sample_doc();
    let s0 = sample_synopsis();
    // The refreshed artifact is the incrementally-maintained successor:
    // one inserted paper, applied in place (bumps the version to 1).
    let mut s1 = s0.clone();
    let delta = DocDelta::new(vec![DeltaOp::Insert {
        parent: doc.root(),
        fragment: xcluster_xml::parse(
            "<paper><year>2001</year><title>reload probe</title></paper>",
        )
        .unwrap(),
    }]);
    apply_delta(
        &mut s1,
        &doc,
        &delta,
        &BuildConfig {
            b_str: 2048,
            b_val: 4096,
            ..BuildConfig::default()
        },
    );
    assert_eq!(s1.version(), 1);
    let artifacts = [encode_synopsis(&s0), encode_synopsis(&s1)];
    let qs = queries();
    let batch: Vec<&str> = qs.iter().map(String::as_str).collect();
    let twigs: Vec<_> = batch
        .iter()
        .map(|q| xcluster_query::parse_twig(q, s0.terms()).unwrap())
        .collect();
    let want: Vec<Vec<u64>> = [&s0, &s1]
        .iter()
        .map(|s| {
            Estimator::new(s)
                .estimate_batch(&twigs)
                .iter()
                .map(|e| e.to_bits())
                .collect()
        })
        .collect();
    let path = std::env::temp_dir().join(format!("xcluster-reload-{}.xcs", std::process::id()));
    std::fs::write(&path, &artifacts[0]).unwrap();

    let server = Server::bind(&ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers: 4,
        ..ServerConfig::default()
    })
    .unwrap();
    let addr = server.local_addr().to_string();
    server.set_synopsis(s0.clone());
    let server = Arc::new(server);
    let run_handle = {
        let server = Arc::clone(&server);
        std::thread::spawn(move || server.run().unwrap())
    };

    // Without a configured artifact path there is nothing to reload.
    let r = client::request(&addr, "POST", "/reload", None).unwrap();
    assert_eq!(r.status, 409, "{}", r.body);
    server.set_synopsis_path(&path);
    assert_eq!(
        client::request(&addr, "GET", "/reload", None)
            .unwrap()
            .status,
        405
    );

    // Concurrent load: each client asserts 200s only, a per-connection
    // monotone version, and version → body bitwise stability.
    let stop = Arc::new(AtomicBool::new(false));
    let body = batch_body(&batch);
    let clients: Vec<_> = (0..3)
        .map(|_| {
            let addr = addr.clone();
            let body = body.clone();
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut seen: std::collections::HashMap<u64, String> =
                    std::collections::HashMap::new();
                let mut last = 0u64;
                while !stop.load(Ordering::Acquire) {
                    let resp = client::request(&addr, "POST", "/estimate", Some(&body)).unwrap();
                    assert_eq!(
                        resp.status, 200,
                        "estimate failed mid-reload: {}",
                        resp.body
                    );
                    let v: u64 = resp
                        .header("x-synopsis-version")
                        .expect("version header")
                        .parse()
                        .unwrap();
                    assert!(v >= last, "version went backwards: {v} after {last}");
                    last = v;
                    let prev = seen.entry(v).or_insert_with(|| resp.body.clone());
                    assert_eq!(
                        *prev, resp.body,
                        "responses within version {v} must be bitwise stable"
                    );
                }
                seen
            })
        })
        .collect();

    // Six reloads alternating the two artifacts; installed versions are
    // strictly monotone and published via /metrics and /synopsis/stats.
    let mut last_version = 0.0f64;
    for i in 0..6 {
        std::fs::write(&path, &artifacts[i % 2]).unwrap();
        let r = client::request(&addr, "POST", "/reload", None).unwrap();
        assert_eq!(r.status, 200, "{}", r.body);
        let rdoc = json::parse(&r.body).unwrap();
        assert_eq!(
            rdoc.get("reloaded").and_then(JsonValue::as_bool),
            Some(true)
        );
        let v = rdoc.get("version").and_then(JsonValue::as_f64).unwrap();
        assert!(
            v > last_version,
            "install not monotone: {v} after {last_version}"
        );
        last_version = v;
        let m = client::request(&addr, "GET", "/metrics", None).unwrap();
        let exposition = expose::parse(&m.body).unwrap();
        assert_eq!(
            exposition.value("xcluster_synopsis_version"),
            Some(v),
            "gauge follows the installed version"
        );
        let s = client::request(&addr, "GET", "/synopsis/stats", None).unwrap();
        let sdoc = json::parse(&s.body).unwrap();
        assert_eq!(sdoc.get("version").and_then(JsonValue::as_f64), Some(v));
    }

    stop.store(true, Ordering::Release);
    let mut merged: std::collections::HashMap<u64, String> = std::collections::HashMap::new();
    for c in clients {
        for (v, body) in c.join().unwrap() {
            // Stability also holds across connections.
            let prev = merged.entry(v).or_insert_with(|| body.clone());
            assert_eq!(*prev, body, "version {v} bodies differ across clients");
        }
    }
    // Every observed body is the in-process answer for one of the two
    // artifacts (codec round-trips bitwise, estimation is pure).
    for (v, body) in &merged {
        let got: Vec<u64> = parse_estimates(body)
            .unwrap()
            .iter()
            .map(|e| e.to_bits())
            .collect();
        assert!(
            want.contains(&got),
            "version {v} served estimates matching neither artifact"
        );
    }

    let r = client::request(&addr, "POST", "/shutdown", None).unwrap();
    assert_eq!(r.status, 200);
    run_handle.join().unwrap();
    let _ = std::fs::remove_file(&path);
}

/// The head/body caps configured at bind time apply on the wire as
/// 4xx responses, not connection drops.
#[test]
fn configured_limits_reject_oversized_requests() {
    let server = Server::bind(&ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers: 1,
        max_head_bytes: 256,
        max_body_bytes: 128,
        read_timeout_secs: 5,
        ..ServerConfig::default()
    })
    .unwrap();
    let addr = server.local_addr().to_string();
    let server = std::sync::Arc::new(server);
    let run_handle = {
        let server = std::sync::Arc::clone(&server);
        std::thread::spawn(move || server.run().unwrap())
    };

    // Within limits: normal 200.
    let r = client::request(&addr, "GET", "/healthz", None).unwrap();
    assert_eq!(r.status, 200);
    // Body over the configured cap → 413.
    let big_body = "x".repeat(200);
    let r = client::request(&addr, "POST", "/estimate", Some(&big_body)).unwrap();
    assert_eq!(r.status, 413, "{}", r.body);
    // Head over the configured cap → 413.
    let long_path = format!("/{}", "p".repeat(400));
    let r = client::request(&addr, "GET", &long_path, None).unwrap();
    assert_eq!(r.status, 413, "{}", r.body);

    let r = client::request(&addr, "POST", "/shutdown", None).unwrap();
    assert_eq!(r.status, 200);
    run_handle.join().unwrap();
}
