//! A small micro-benchmark harness (the workspace's replacement for
//! Criterion, which is unavailable in the offline build environment).
//!
//! Each benchmark is calibrated to a target measurement time, run as a
//! series of timed samples, and reported as median / mean / min
//! nanoseconds per iteration. Results also land in the global metric
//! registry as `bench.<name>_ns` histograms, so a bench binary can dump
//! one JSON snapshot covering both its measurements and the counters the
//! benchmarked code incremented along the way.
//!
//! ```no_run
//! use xcluster_obs::bench::{black_box, Runner};
//! let mut r = Runner::new();
//! r.bench("sum_1k", || (0..1000u64).map(black_box).sum::<u64>());
//! r.finish();
//! ```
//!
//! Environment knobs: `XCLUSTER_BENCH_MS` (measurement time per
//! benchmark, default 2000) and `XCLUSTER_BENCH_SAMPLES` (sample count,
//! default 20).

pub use std::hint::black_box;
use std::time::{Duration, Instant};

/// One benchmark's aggregated result, in nanoseconds per iteration.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Benchmark name.
    pub name: String,
    /// Median over samples.
    pub median_ns: f64,
    /// Mean over samples.
    pub mean_ns: f64,
    /// Fastest sample.
    pub min_ns: f64,
    /// Slowest sample.
    pub max_ns: f64,
    /// Iterations per sample (1 for batched benches).
    pub iters_per_sample: u64,
    /// Number of samples taken.
    pub samples: usize,
}

/// Runs benchmarks and collects [`BenchResult`]s.
#[derive(Debug)]
pub struct Runner {
    warmup: Duration,
    measure: Duration,
    samples: usize,
    results: Vec<BenchResult>,
}

impl Default for Runner {
    fn default() -> Self {
        Self::new()
    }
}

fn env_ms(var: &str, default_ms: u64) -> Duration {
    std::env::var(var)
        .ok()
        .and_then(|v| v.parse().ok())
        .map_or(Duration::from_millis(default_ms), Duration::from_millis)
}

impl Runner {
    /// A runner with the default (or env-configured) budget.
    pub fn new() -> Runner {
        Runner {
            warmup: env_ms("XCLUSTER_BENCH_WARMUP_MS", 500),
            measure: env_ms("XCLUSTER_BENCH_MS", 2000),
            samples: std::env::var("XCLUSTER_BENCH_SAMPLES")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(20)
                .max(3),
            results: Vec::new(),
        }
    }

    /// Overrides the per-benchmark measurement time.
    pub fn measurement_time(mut self, d: Duration) -> Runner {
        self.measure = d;
        self
    }

    /// Overrides the warm-up time.
    pub fn warm_up_time(mut self, d: Duration) -> Runner {
        self.warmup = d;
        self
    }

    /// Benchmarks `f`, running it as many times per sample as needed to
    /// make individual clock reads negligible.
    pub fn bench<R>(&mut self, name: &str, mut f: impl FnMut() -> R) {
        // Warm-up, and calibration: how many iterations fit in ~1/20 of
        // the measurement budget?
        let warm_until = Instant::now() + self.warmup;
        let mut one = Duration::ZERO;
        let mut warm_iters = 0u64;
        while Instant::now() < warm_until || warm_iters == 0 {
            let t = Instant::now();
            black_box(f());
            one += t.elapsed();
            warm_iters += 1;
        }
        let per_iter = one.as_nanos() as f64 / warm_iters as f64;
        let sample_budget = self.measure.as_nanos() as f64 / self.samples as f64;
        let iters = ((sample_budget / per_iter.max(1.0)) as u64).clamp(1, 1_000_000_000);

        let mut sample_ns: Vec<f64> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            sample_ns.push(t.elapsed().as_nanos() as f64 / iters as f64);
        }
        self.push(name, sample_ns, iters);
    }

    /// Benchmarks `routine` on fresh inputs from `setup`, excluding
    /// setup time from the measurement. Each sample is one routine call
    /// — intended for expensive routines (builds, prunes) where cloning
    /// the input would otherwise dominate.
    pub fn bench_batched<S, R>(
        &mut self,
        name: &str,
        mut setup: impl FnMut() -> S,
        mut routine: impl FnMut(S) -> R,
    ) {
        // One warm-up run.
        black_box(routine(setup()));
        let deadline = Instant::now() + self.measure;
        let mut sample_ns: Vec<f64> = Vec::new();
        while sample_ns.len() < self.samples && (Instant::now() < deadline || sample_ns.len() < 3) {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            sample_ns.push(t.elapsed().as_nanos() as f64);
        }
        self.push(name, sample_ns, 1);
    }

    fn push(&mut self, name: &str, mut sample_ns: Vec<f64>, iters: u64) {
        sample_ns.sort_by(f64::total_cmp);
        let n = sample_ns.len();
        let median = if n % 2 == 1 {
            sample_ns[n / 2]
        } else {
            (sample_ns[n / 2 - 1] + sample_ns[n / 2]) / 2.0
        };
        let mean = sample_ns.iter().sum::<f64>() / n as f64;
        let result = BenchResult {
            name: name.to_string(),
            median_ns: median,
            mean_ns: mean,
            min_ns: sample_ns[0],
            max_ns: sample_ns[n - 1],
            iters_per_sample: iters,
            samples: n,
        };
        crate::histogram(&format!("bench.{name}_ns")).record(median as u64);
        println!(
            "{:44} {:>12}/iter  (mean {}, min {}, {} samples x {} iters)",
            result.name,
            fmt_ns(median),
            fmt_ns(mean),
            fmt_ns(result.min_ns),
            n,
            iters
        );
        self.results.push(result);
    }

    /// Results collected so far.
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }

    /// Prints a summary table and returns the results.
    pub fn finish(self) -> Vec<BenchResult> {
        println!(
            "\n{:44} {:>12} {:>12} {:>12}",
            "benchmark", "median", "mean", "min"
        );
        for r in &self.results {
            println!(
                "{:44} {:>12} {:>12} {:>12}",
                r.name,
                fmt_ns(r.median_ns),
                fmt_ns(r.mean_ns),
                fmt_ns(r.min_ns)
            );
        }
        self.results
    }
}

fn fmt_ns(v: f64) -> String {
    if v >= 1e9 {
        format!("{:.3}s", v / 1e9)
    } else if v >= 1e6 {
        format!("{:.3}ms", v / 1e6)
    } else if v >= 1e3 {
        format!("{:.3}µs", v / 1e3)
    } else {
        format!("{v:.1}ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_runner() -> Runner {
        Runner::new()
            .warm_up_time(Duration::from_millis(5))
            .measurement_time(Duration::from_millis(20))
    }

    #[test]
    fn bench_produces_positive_timings() {
        let mut r = fast_runner();
        r.bench("noop_sum", || (0..100u64).sum::<u64>());
        let res = &r.results()[0];
        assert!(res.median_ns > 0.0);
        assert!(res.min_ns <= res.median_ns);
        assert!(res.median_ns <= res.max_ns);
        assert!(res.iters_per_sample >= 1);
    }

    #[test]
    fn bench_batched_excludes_setup() {
        let mut r = fast_runner();
        // Setup is much more expensive than the routine; the measured
        // time must reflect the routine, not the setup.
        r.bench_batched(
            "cheap_routine",
            || {
                std::thread::sleep(Duration::from_millis(2));
                7u64
            },
            |x| x + 1,
        );
        let res = &r.results()[0];
        assert!(
            res.median_ns < 1_000_000.0,
            "setup leaked into measurement: {} ns",
            res.median_ns
        );
    }

    #[test]
    fn results_land_in_registry() {
        let mut r = fast_runner();
        r.bench("registry_visible", || 1 + 1);
        let snap = crate::snapshot();
        assert!(snap
            .histograms
            .iter()
            .any(|(n, h)| n == "bench.registry_visible_ns" && h.count >= 1));
    }
}
