//! Snapshot exporters: compact JSON (for `BENCH_*.json` trajectory
//! files and machine consumers) and an aligned pretty table (for
//! `xcluster stats` and `--stats`).
//!
//! JSON is hand-rolled — metric names are the only strings and they are
//! plain identifiers, but they are escaped anyway so arbitrary names
//! cannot corrupt the output.

use crate::registry::{HistogramSnapshot, Snapshot};
use std::fmt::Write as _;

/// Escapes a string for a JSON string literal (no surrounding quotes).
pub fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders a string as a quoted, escaped JSON string literal — for
/// callers hand-assembling `BENCH_*.json` metric bodies.
pub fn json_string(s: &str) -> String {
    format!("\"{}\"", esc(s))
}

/// Renders a snapshot as a JSON object:
///
/// ```json
/// {
///   "counters": {"build.merges_applied": 412},
///   "gauges": {"build.final_struct_bytes": 10240},
///   "histograms": {"build.phase1_ns": {"count": 1, "sum": 120, ...}}
/// }
/// ```
pub fn to_json(s: &Snapshot) -> String {
    let mut out = String::from("{\n  \"counters\": {");
    for (i, (name, v)) in s.counters.iter().enumerate() {
        let sep = if i == 0 { "" } else { "," };
        let _ = write!(out, "{sep}\n    \"{}\": {v}", esc(name));
    }
    out.push_str("\n  },\n  \"gauges\": {");
    for (i, (name, v)) in s.gauges.iter().enumerate() {
        let sep = if i == 0 { "" } else { "," };
        let _ = write!(out, "{sep}\n    \"{}\": {v}", esc(name));
    }
    out.push_str("\n  },\n  \"histograms\": {");
    for (i, (name, h)) in s.histograms.iter().enumerate() {
        let sep = if i == 0 { "" } else { "," };
        let _ = write!(
            out,
            "{sep}\n    \"{}\": {{\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \
             \"mean\": {:.3}, \"p50\": {}, \"p90\": {}, \"p99\": {}}}",
            esc(name),
            h.count,
            h.sum,
            h.min,
            h.max,
            h.mean(),
            h.p50,
            h.p90,
            h.p99
        );
    }
    out.push_str("\n  }\n}\n");
    out
}

/// Formats a nanosecond quantity with a human unit.
fn ns(v: u64) -> String {
    let v = v as f64;
    if v >= 1e9 {
        format!("{:.2}s", v / 1e9)
    } else if v >= 1e6 {
        format!("{:.2}ms", v / 1e6)
    } else if v >= 1e3 {
        format!("{:.2}µs", v / 1e3)
    } else {
        format!("{v:.0}ns")
    }
}

fn is_time(name: &str) -> bool {
    name.ends_with("_ns")
}

fn hist_cell(name: &str, v: u64) -> String {
    if is_time(name) {
        ns(v)
    } else {
        v.to_string()
    }
}

/// Renders a snapshot as an aligned, human-readable table. Histograms
/// whose names end in `_ns` are printed with time units.
pub fn to_table(s: &Snapshot) -> String {
    let mut out = String::new();
    if !s.counters.is_empty() {
        out.push_str("counters\n");
        let w = s.counters.iter().map(|(n, _)| n.len()).max().unwrap_or(0);
        for (name, v) in &s.counters {
            let _ = writeln!(out, "  {name:w$}  {v:>12}");
        }
    }
    if !s.gauges.is_empty() {
        out.push_str("gauges\n");
        let w = s.gauges.iter().map(|(n, _)| n.len()).max().unwrap_or(0);
        for (name, v) in &s.gauges {
            let _ = writeln!(out, "  {name:w$}  {v:>12}");
        }
    }
    if !s.histograms.is_empty() {
        out.push_str("histograms\n");
        let w = s.histograms.iter().map(|(n, _)| n.len()).max().unwrap_or(0);
        let _ = writeln!(
            out,
            "  {:w$}  {:>8} {:>10} {:>10} {:>10} {:>10} {:>10}",
            "", "count", "mean", "p50", "p90", "p99", "max"
        );
        for (name, h) in &s.histograms {
            let _ = writeln!(
                out,
                "  {name:w$}  {:>8} {:>10} {:>10} {:>10} {:>10} {:>10}",
                h.count,
                hist_cell(name, h.mean() as u64),
                hist_cell(name, h.p50),
                hist_cell(name, h.p90),
                hist_cell(name, h.p99),
                hist_cell(name, h.max),
            );
        }
    }
    if out.is_empty() {
        out.push_str("(registry is empty)\n");
    }
    out
}

/// Extra key/value pairs merged into a JSON export alongside the
/// registry dump — used by the experiments runner to attach run
/// metadata (scale, dataset, element counts) to `BENCH_*.json`.
pub fn to_json_with_meta(s: &Snapshot, meta: &[(&str, String)]) -> String {
    let mut out = String::from("{\n  \"meta\": {");
    for (i, (k, v)) in meta.iter().enumerate() {
        let sep = if i == 0 { "" } else { "," };
        // Numbers pass through bare; everything else is quoted.
        let bare = !v.is_empty() && v.parse::<f64>().is_ok();
        if bare {
            let _ = write!(out, "{sep}\n    \"{}\": {v}", esc(k));
        } else {
            let _ = write!(out, "{sep}\n    \"{}\": \"{}\"", esc(k), esc(v));
        }
    }
    out.push_str("\n  },\n");
    // Splice the registry dump in as the remaining keys.
    let body = to_json(s);
    out.push_str(body.strip_prefix("{\n").unwrap_or(&body));
    out
}

/// Wraps run metadata and a metrics payload in the stable `BENCH_*.json`
/// schema committed at the repo root:
///
/// ```json
/// {"schema": 1, "run": {"scale": 0.25, ...}, "metrics": {...}}
/// ```
///
/// `metrics_body` must be a complete JSON object (e.g. [`to_json`]'s
/// output, or a hand-built per-class error object); `run` follows the
/// bare-number convention of [`to_json_with_meta`].
pub fn bench_json(run: &[(&str, String)], metrics_body: &str) -> String {
    let mut out = String::from("{\n  \"schema\": 1,\n  \"run\": {");
    for (i, (k, v)) in run.iter().enumerate() {
        let sep = if i == 0 { "" } else { "," };
        let bare = !v.is_empty() && v.parse::<f64>().is_ok();
        if bare {
            let _ = write!(out, "{sep}\n    \"{}\": {v}", esc(k));
        } else {
            let _ = write!(out, "{sep}\n    \"{}\": \"{}\"", esc(k), esc(v));
        }
    }
    out.push_str("\n  },\n  \"metrics\": ");
    out.push_str(metrics_body.trim_end());
    out.push_str("\n}\n");
    out
}

/// Convenience: [`to_json`] of one histogram (used in tests).
pub fn histogram_to_json(h: &HistogramSnapshot) -> String {
    format!(
        "{{\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \"mean\": {:.3}, \
         \"p50\": {}, \"p90\": {}, \"p99\": {}}}",
        h.count,
        h.sum,
        h.min,
        h.max,
        h.mean(),
        h.p50,
        h.p90,
        h.p99
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    fn sample() -> Snapshot {
        let r = Registry::default();
        r.counter("build.merges_applied").add(42);
        r.counter("build.merges_rejected").add(7);
        r.gauge("build.final_struct_bytes").set(10_240);
        let h = r.histogram("build.phase1_ns");
        h.record(1_500_000);
        h.record(2_500_000);
        r.snapshot()
    }

    #[test]
    fn json_is_well_formed_and_complete() {
        let j = to_json(&sample());
        assert!(j.contains("\"build.merges_applied\": 42"));
        assert!(j.contains("\"build.merges_rejected\": 7"));
        assert!(j.contains("\"build.final_struct_bytes\": 10240"));
        assert!(j.contains("\"build.phase1_ns\""));
        assert!(j.contains("\"count\": 2"));
        assert!(j.contains("\"sum\": 4000000"));
        // Balanced braces and quotes (cheap well-formedness check).
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('"').count() % 2, 0);
    }

    #[test]
    fn json_escapes_hostile_names() {
        let r = Registry::default();
        r.counter("weird\"name\\with\nstuff").inc();
        let j = to_json(&r.snapshot());
        assert!(j.contains("weird\\\"name\\\\with\\nstuff"));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
    }

    #[test]
    fn table_renders_all_sections_with_units() {
        let t = to_table(&sample());
        assert!(t.contains("counters"));
        assert!(t.contains("gauges"));
        assert!(t.contains("histograms"));
        assert!(t.contains("build.merges_applied"));
        // Time histogram rendered in ms.
        assert!(t.contains("ms"), "{t}");
    }

    #[test]
    fn empty_snapshot_renders_placeholder() {
        let t = to_table(&Snapshot::default());
        assert!(t.contains("empty"));
        let j = to_json(&Snapshot::default());
        assert_eq!(j.matches('{').count(), j.matches('}').count());
    }

    #[test]
    fn meta_keys_precede_registry_dump() {
        let j = to_json_with_meta(
            &sample(),
            &[
                ("dataset", "imdb".to_string()),
                ("scale", "0.25".to_string()),
            ],
        );
        assert!(j.contains("\"dataset\": \"imdb\""));
        assert!(j.contains("\"scale\": 0.25"));
        assert!(j.contains("\"counters\""));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
    }

    #[test]
    fn bench_json_wraps_schema_run_and_metrics() {
        let j = bench_json(
            &[
                ("command", "bench-estimate".to_string()),
                ("scale", "0.25".to_string()),
            ],
            &to_json(&sample()),
        );
        assert!(j.starts_with("{\n  \"schema\": 1,"));
        assert!(j.contains("\"command\": \"bench-estimate\""));
        assert!(j.contains("\"scale\": 0.25"));
        assert!(j.contains("\"metrics\": {"));
        assert!(j.contains("\"build.merges_applied\": 42"));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        // Must be loadable by the in-tree JSON reader.
        let v = crate::json::parse(&j).unwrap();
        assert_eq!(v.get("schema").unwrap().as_f64(), Some(1.0));
        assert_eq!(
            v.get("run").unwrap().get("scale").unwrap().as_f64(),
            Some(0.25)
        );
        assert!(v.get("metrics").unwrap().get("counters").is_some());
    }

    #[test]
    fn ns_formatting_picks_sane_units() {
        assert_eq!(ns(500), "500ns");
        assert_eq!(ns(1_500), "1.50µs");
        assert_eq!(ns(2_500_000), "2.50ms");
        assert_eq!(ns(3_100_000_000), "3.10s");
    }
}
