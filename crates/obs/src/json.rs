//! A minimal JSON reader — the workspace's stand-in for `serde_json`
//! (the build environment is offline). Parses a full document into a
//! [`JsonValue`] tree; used to load committed `BENCH_*.json` baselines
//! for the CI accuracy gate and to round-trip exported Chrome traces in
//! tests.
//!
//! Supported: objects, arrays, strings (with `\uXXXX` escapes), numbers
//! (as `f64`), booleans, null. Duplicate object keys keep the last
//! value, like most permissive readers.
//!
//! Nesting is capped at [`MAX_DEPTH`] containers: the parser also reads
//! untrusted request bodies (the serve crate's `POST /estimate`), and a
//! recursive-descent reader with unbounded depth turns `[[[[…` into a
//! stack overflow instead of an error.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON document node.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (always `f64`; exact for integers up to 2^53).
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object, sorted by key.
    Obj(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    /// Member `key` of an object, if present.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// Element `idx` of an array, if present.
    pub fn idx(&self, idx: usize) -> Option<&JsonValue> {
        match self {
            JsonValue::Arr(v) => v.get(idx),
            _ => None,
        }
    }

    /// The number value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The members, if this is an object.
    pub fn as_object(&self) -> Option<&BTreeMap<String, JsonValue>> {
        match self {
            JsonValue::Obj(m) => Some(m),
            _ => None,
        }
    }
}

/// A parse failure, with the byte offset where it happened.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Maximum container (object/array) nesting the parser accepts.
pub const MAX_DEPTH: usize = 512;

/// Parses a complete JSON document (trailing whitespace allowed,
/// trailing garbage rejected).
pub fn parse(input: &str) -> Result<JsonValue, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
        depth: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, word: &str, v: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected {word:?}")))
        }
    }

    fn enter(&mut self) -> Result<(), JsonError> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        Ok(())
    }

    fn object(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'{')?;
        self.enter()?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(JsonValue::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            map.insert(key, v);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(JsonValue::Obj(map));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'[')?;
        self.enter()?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                .map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogates are replaced, not paired — the
                            // exporters never emit them.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is valid UTF-8 by
                    // construction: it came from a &str).
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && (self.bytes[self.pos] & 0xC0) == 0x80 {
                        self.pos += 1;
                    }
                    out.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).unwrap());
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(JsonValue::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), JsonValue::Null);
        assert_eq!(parse("true").unwrap(), JsonValue::Bool(true));
        assert_eq!(parse(" false ").unwrap(), JsonValue::Bool(false));
        assert_eq!(parse("42").unwrap(), JsonValue::Num(42.0));
        assert_eq!(parse("-1.5e3").unwrap(), JsonValue::Num(-1500.0));
        assert_eq!(parse("\"hi\"").unwrap(), JsonValue::Str("hi".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"a": [1, {"b": "x"}, null], "c": {"d": true}}"#).unwrap();
        assert_eq!(v.get("a").unwrap().idx(0).unwrap().as_f64(), Some(1.0));
        assert_eq!(
            v.get("a")
                .unwrap()
                .idx(1)
                .unwrap()
                .get("b")
                .unwrap()
                .as_str(),
            Some("x")
        );
        assert_eq!(v.get("a").unwrap().idx(2), Some(&JsonValue::Null));
        assert_eq!(v.get("c").unwrap().get("d").unwrap().as_bool(), Some(true));
    }

    #[test]
    fn unescapes_strings() {
        let v = parse(r#""a\"b\\c\ndA""#).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\ndA"));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\" 1}").is_err());
        assert!(parse("tru").is_err());
        assert!(parse("1 2").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn unescapes_all_escape_forms() {
        let v = parse(r#""\" \\ \/ \b \f \n \r \t""#).unwrap();
        assert_eq!(v.as_str(), Some("\" \\ / \u{8} \u{c} \n \r \t"));
        assert!(parse(r#""\x""#).is_err(), "unknown escape must be rejected");
        assert!(parse(r#""\"#).is_err(), "escape at end of input");
    }

    #[test]
    fn unicode_escapes() {
        // BMP escapes decode to the scalar they name.
        assert_eq!(parse("\"\\u00e9\"").unwrap().as_str(), Some("é"));
        assert_eq!(parse("\"\\u0041\\u005A\"").unwrap().as_str(), Some("AZ"));
        // NUL is representable.
        assert_eq!(parse("\"\\u0000\"").unwrap().as_str(), Some("\u{0}"));
        // Lone surrogates become U+FFFD (the exporters never emit them).
        assert_eq!(
            parse(r#""\uD83D""#).unwrap().as_str(),
            Some("\u{fffd}"),
            "lone high surrogate"
        );
        // Raw multi-byte UTF-8 passes through untouched.
        assert_eq!(parse("\"日本語\"").unwrap().as_str(), Some("日本語"));
        // Truncated and non-hex escapes are errors, not panics.
        assert!(parse(r#""\u00""#).is_err());
        assert!(parse(r#""\u00zz""#).is_err());
    }

    #[test]
    fn deep_nesting_is_bounded() {
        // MAX_DEPTH containers parse; one more is a clean error (no
        // stack overflow on attacker-shaped /estimate bodies).
        let ok = "[".repeat(MAX_DEPTH) + &"]".repeat(MAX_DEPTH);
        assert!(parse(&ok).is_ok());
        let deep = "[".repeat(MAX_DEPTH + 1) + &"]".repeat(MAX_DEPTH + 1);
        let e = parse(&deep).unwrap_err();
        assert!(e.message.contains("nesting too deep"), "{e}");
        // Mixed object/array nesting counts against the same budget.
        let mixed = "{\"a\":[".repeat(MAX_DEPTH) + "0" + &"]}".repeat(MAX_DEPTH);
        assert!(parse(&mixed).is_err());
        // Depth is a nesting limit, not a total-container limit:
        // siblings at the same level are fine.
        let wide = format!("[{}]", vec!["[]"; 1000].join(","));
        assert!(parse(&wide).is_ok());
    }

    #[test]
    fn rejects_trailing_garbage() {
        for doc in [
            "null x",
            "{} {}",
            "[1] ,",
            "\"s\"\"t\"",
            "1.5e3garbage",
            "true,",
        ] {
            let e = parse(doc).unwrap_err();
            assert!(
                e.message.contains("trailing") || e.message.contains("invalid number"),
                "{doc:?} -> {e}"
            );
        }
        // Trailing whitespace (including newlines) is fine.
        assert!(parse("  [1, 2]\n\t ").is_ok());
    }

    #[test]
    fn error_reports_offset() {
        let e = parse("[1, x]").unwrap_err();
        assert_eq!(e.offset, 4);
        assert!(e.to_string().contains("byte 4"));
    }

    #[test]
    fn roundtrips_registry_export() {
        // The obs JSON exporter's output must be loadable by this reader.
        let r = crate::registry::Registry::default();
        r.counter("a.b").add(3);
        r.gauge("g").set(-7);
        r.histogram("h_ns").record(1000);
        let json = crate::export::to_json(&r.snapshot());
        let v = parse(&json).unwrap();
        assert_eq!(
            v.get("counters").unwrap().get("a.b").unwrap().as_f64(),
            Some(3.0)
        );
        assert_eq!(
            v.get("gauges").unwrap().get("g").unwrap().as_f64(),
            Some(-7.0)
        );
        assert_eq!(
            v.get("histograms")
                .unwrap()
                .get("h_ns")
                .unwrap()
                .get("count")
                .unwrap()
                .as_f64(),
            Some(1.0)
        );
    }
}
