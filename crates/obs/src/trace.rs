//! Per-operation trace trees: hierarchical spans with key=value
//! attributes and monotonic timestamps, recorded into a bounded ring
//! buffer and exportable as Chrome trace-event JSON (loadable in
//! Perfetto / `chrome://tracing`) or a compact text tree.
//!
//! Where the [`crate::registry`] aggregates (how many probes, how long
//! on average), a [`Trace`] answers *what happened inside one
//! operation*: which clusters one estimate embedded into, which value
//! summaries it probed, and with what selectivities. Producers build a
//! trace with [`TraceBuilder`], consumers read the span tree directly
//! (attributes are typed, so `f64`s survive bit-exactly) or export it.
//!
//! Capture is off by default: [`capture_enabled`] reads `XCLUSTER_TRACE`
//! once (`on`/`1` enables) and [`set_capture`] overrides it at runtime.
//! `XCLUSTER_OBS=off` forces capture off regardless, so the kill switch
//! disables every form of instrumentation at once.
//!
//! ```
//! use xcluster_obs::trace::TraceBuilder;
//! let mut tb = TraceBuilder::new("demo.op");
//! let child = tb.start("demo.step");
//! tb.attr_u64(child, "cluster", 7);
//! tb.attr_f64(child, "sigma", 0.25);
//! tb.end(child);
//! let trace = tb.finish();
//! assert_eq!(trace.spans().len(), 2);
//! assert!(trace.to_chrome_json().contains("\"demo.step\""));
//! ```

use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use crate::export::esc;

/// A typed span attribute value. Numbers are stored natively so
/// consumers (e.g. `explain` rebuilding flows from a trace) read them
/// back bit-exactly instead of parsing strings.
#[derive(Debug, Clone, PartialEq)]
pub enum AttrValue {
    /// Unsigned integer (ids, counts).
    U64(u64),
    /// Floating point (selectivities, expected cardinalities).
    F64(f64),
    /// Short string (kinds, labels, rendered queries).
    Str(String),
}

impl AttrValue {
    /// The value as `u64`, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            AttrValue::U64(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as `f64`, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            AttrValue::F64(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as `&str`, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            AttrValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// JSON rendering (numbers bare, strings quoted and escaped).
    fn to_json(&self) -> String {
        match self {
            AttrValue::U64(v) => v.to_string(),
            AttrValue::F64(v) if v.is_finite() => format!("{v}"),
            AttrValue::F64(v) => format!("\"{v}\""),
            AttrValue::Str(s) => format!("\"{}\"", esc(s)),
        }
    }
}

impl fmt::Display for AttrValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttrValue::U64(v) => write!(f, "{v}"),
            AttrValue::F64(v) => write!(f, "{v}"),
            AttrValue::Str(s) => write!(f, "{s}"),
        }
    }
}

impl From<u64> for AttrValue {
    fn from(v: u64) -> Self {
        AttrValue::U64(v)
    }
}

impl From<f64> for AttrValue {
    fn from(v: f64) -> Self {
        AttrValue::F64(v)
    }
}

impl From<String> for AttrValue {
    fn from(v: String) -> Self {
        AttrValue::Str(v)
    }
}

impl From<&str> for AttrValue {
    fn from(v: &str) -> Self {
        AttrValue::Str(v.to_string())
    }
}

/// One node of a trace tree. Timestamps are nanoseconds relative to the
/// trace start (monotonic clock).
#[derive(Debug, Clone)]
pub struct Span {
    /// Static span name (`estimate.embed`, `eval.query`, ...).
    pub name: &'static str,
    /// Index of the parent span (`None` for the root).
    pub parent: Option<usize>,
    /// Start offset from the trace origin, nanoseconds.
    pub start_ns: u64,
    /// Duration in nanoseconds (0 until the span is ended).
    pub dur_ns: u64,
    /// Key=value attributes, in insertion order.
    pub attrs: Vec<(&'static str, AttrValue)>,
}

impl Span {
    /// Looks up an attribute by key (first match).
    pub fn attr(&self, key: &str) -> Option<&AttrValue> {
        self.attrs.iter().find(|(k, _)| *k == key).map(|(_, v)| v)
    }
}

/// An immutable, finished span tree. Span 0 is the root; children
/// always have larger indices than their parent (spans are stored in
/// start order).
#[derive(Debug, Clone)]
pub struct Trace {
    spans: Vec<Span>,
}

impl Trace {
    /// All spans in start order (index 0 is the root).
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// The root span.
    pub fn root(&self) -> &Span {
        &self.spans[0]
    }

    /// Appends an attribute to the root span — for annotating a
    /// finished trace with context the traced code never saw (e.g. the
    /// serving layer tagging an estimation trace with its request id).
    pub fn push_root_attr(&mut self, key: &'static str, value: impl Into<AttrValue>) {
        self.spans[0].attrs.push((key, value.into()));
    }

    /// Total traced duration (the root span's).
    pub fn duration_ns(&self) -> u64 {
        self.spans[0].dur_ns
    }

    /// Spans with the given name, with their indices, in start order.
    pub fn by_name<'a>(&'a self, name: &'a str) -> impl Iterator<Item = (usize, &'a Span)> + 'a {
        self.spans
            .iter()
            .enumerate()
            .filter(move |(_, s)| s.name == name)
    }

    /// Direct children of span `id`, in start order.
    pub fn children(&self, id: usize) -> impl Iterator<Item = (usize, &Span)> + '_ {
        self.spans
            .iter()
            .enumerate()
            .filter(move |(_, s)| s.parent == Some(id))
    }

    /// Renders the tree as indented text, one span per line:
    /// `name  dur  k=v k=v ...`.
    pub fn render_tree(&self) -> String {
        fn fmt_ns(v: u64) -> String {
            let v = v as f64;
            if v >= 1e9 {
                format!("{:.2}s", v / 1e9)
            } else if v >= 1e6 {
                format!("{:.2}ms", v / 1e6)
            } else if v >= 1e3 {
                format!("{:.2}µs", v / 1e3)
            } else {
                format!("{v:.0}ns")
            }
        }
        fn walk(t: &Trace, id: usize, depth: usize, out: &mut String) {
            let s = &t.spans[id];
            let indent = "  ".repeat(depth);
            out.push_str(&format!("{indent}{} {}", s.name, fmt_ns(s.dur_ns)));
            for (k, v) in &s.attrs {
                let rendered = match v {
                    AttrValue::F64(x) => format!("{x:.4}"),
                    other => other.to_string(),
                };
                out.push_str(&format!(" {k}={rendered}"));
            }
            out.push('\n');
            for (cid, _) in t.children(id) {
                walk(t, cid, depth + 1, out);
            }
        }
        let mut out = String::new();
        walk(self, 0, 0, &mut out);
        out
    }

    /// Exports this trace alone as a Chrome trace-event JSON document.
    /// See [`chrome_trace_json`] for the format.
    pub fn to_chrome_json(&self) -> String {
        chrome_trace_json(std::slice::from_ref(self))
    }
}

/// Exports traces as a Chrome trace-event JSON document (the "JSON
/// object format" with a `traceEvents` array of complete `"ph": "X"`
/// events), loadable in Perfetto or `chrome://tracing`. Each trace is
/// assigned its own thread id (`tid` = index + 1) so concurrent traces
/// render as separate tracks; timestamps are microseconds with
/// nanosecond precision, and span attributes become `args`.
pub fn chrome_trace_json(traces: &[Trace]) -> String {
    use std::fmt::Write as _;
    let mut out = String::from("{\"displayTimeUnit\": \"ns\", \"traceEvents\": [");
    let mut first = true;
    for (ti, trace) in traces.iter().enumerate() {
        for span in trace.spans() {
            let sep = if first { "" } else { "," };
            first = false;
            let cat = span.name.split('.').next().unwrap_or("xcluster");
            let _ = write!(
                out,
                "{sep}\n  {{\"name\": \"{}\", \"cat\": \"{}\", \"ph\": \"X\", \
                 \"ts\": {:.3}, \"dur\": {:.3}, \"pid\": 1, \"tid\": {}, \"args\": {{",
                esc(span.name),
                esc(cat),
                span.start_ns as f64 / 1e3,
                span.dur_ns as f64 / 1e3,
                ti + 1
            );
            for (i, (k, v)) in span.attrs.iter().enumerate() {
                let sep = if i == 0 { "" } else { ", " };
                let _ = write!(out, "{sep}\"{}\": {}", esc(k), v.to_json());
            }
            out.push_str("}}");
        }
    }
    out.push_str("\n]}\n");
    out
}

/// Builds one [`Trace`]. Creating the builder opens the root span;
/// [`TraceBuilder::finish`] closes it (and any spans left open) and
/// freezes the tree. Spans form a stack: [`TraceBuilder::start`] opens a
/// child of the innermost open span.
#[derive(Debug)]
pub struct TraceBuilder {
    t0: Instant,
    spans: Vec<Span>,
    stack: Vec<usize>,
}

impl TraceBuilder {
    /// Opens a new trace whose root span is named `root`.
    pub fn new(root: &'static str) -> TraceBuilder {
        TraceBuilder {
            t0: Instant::now(),
            spans: vec![Span {
                name: root,
                parent: None,
                start_ns: 0,
                dur_ns: 0,
                attrs: Vec::new(),
            }],
            stack: vec![0],
        }
    }

    fn now_ns(&self) -> u64 {
        self.t0.elapsed().as_nanos().min(u64::MAX as u128) as u64
    }

    /// The root span's id (always 0).
    pub fn root(&self) -> usize {
        0
    }

    /// Opens a child span of the innermost open span; returns its id to
    /// pass to [`TraceBuilder::end`] and the `attr_*` methods.
    pub fn start(&mut self, name: &'static str) -> usize {
        let id = self.spans.len();
        self.spans.push(Span {
            name,
            parent: self.stack.last().copied(),
            start_ns: self.now_ns(),
            dur_ns: 0,
            attrs: Vec::new(),
        });
        self.stack.push(id);
        id
    }

    /// Closes span `id`, recording its duration. Any children still
    /// open are closed with it (mismatched ends are tolerated so a `?`
    /// or early `return` in traced code cannot corrupt the tree).
    pub fn end(&mut self, id: usize) {
        let now = self.now_ns();
        while let Some(top) = self.stack.pop() {
            self.spans[top].dur_ns = now.saturating_sub(self.spans[top].start_ns);
            if top == id {
                break;
            }
        }
        if self.stack.is_empty() {
            self.stack.push(0);
        }
    }

    /// Attaches an attribute to span `id`.
    pub fn attr(&mut self, id: usize, key: &'static str, value: impl Into<AttrValue>) {
        self.spans[id].attrs.push((key, value.into()));
    }

    /// Attaches a `u64` attribute to span `id`.
    pub fn attr_u64(&mut self, id: usize, key: &'static str, value: u64) {
        self.attr(id, key, AttrValue::U64(value));
    }

    /// Attaches an `f64` attribute to span `id`.
    pub fn attr_f64(&mut self, id: usize, key: &'static str, value: f64) {
        self.attr(id, key, AttrValue::F64(value));
    }

    /// Attaches a string attribute to span `id`.
    pub fn attr_str(&mut self, id: usize, key: &'static str, value: impl Into<String>) {
        self.attr(id, key, AttrValue::Str(value.into()));
    }

    /// Closes every open span (root included) and returns the trace.
    pub fn finish(mut self) -> Trace {
        let now = self.now_ns();
        while let Some(top) = self.stack.pop() {
            self.spans[top].dur_ns = now.saturating_sub(self.spans[top].start_ns);
        }
        Trace { spans: self.spans }
    }
}

// ---------------------------------------------------------------------
// Capture flag and the global ring buffer of recent traces.
// ---------------------------------------------------------------------

/// 0 = off, 1 = on, 2 = uninitialized (read `XCLUSTER_TRACE`).
static CAPTURE: AtomicU8 = AtomicU8::new(2);

/// Whether instrumented code should capture traces into the ring
/// buffer. Off by default; `XCLUSTER_TRACE=on`/`1` enables it, and
/// `XCLUSTER_OBS=off` forces it off (the global kill switch wins).
#[inline]
pub fn capture_enabled() -> bool {
    if !crate::enabled() {
        return false;
    }
    match CAPTURE.load(Ordering::Relaxed) {
        0 => false,
        1 => true,
        _ => {
            let on = matches!(
                std::env::var("XCLUSTER_TRACE").as_deref(),
                Ok("on") | Ok("1") | Ok("true")
            );
            CAPTURE.store(on as u8, Ordering::Relaxed);
            on
        }
    }
}

/// Turns trace capture on or off at runtime.
pub fn set_capture(on: bool) {
    CAPTURE.store(on as u8, Ordering::Relaxed);
}

/// Default ring-buffer capacity (traces, not spans).
pub const DEFAULT_RING_CAPACITY: usize = 64;

struct Ring {
    buf: VecDeque<Trace>,
    capacity: usize,
    dropped: u64,
}

static RING: Mutex<Option<Ring>> = Mutex::new(None);

fn with_ring<R>(f: impl FnOnce(&mut Ring) -> R) -> R {
    let mut guard = RING.lock().unwrap();
    let ring = guard.get_or_insert_with(|| Ring {
        buf: VecDeque::new(),
        capacity: DEFAULT_RING_CAPACITY,
        dropped: 0,
    });
    f(ring)
}

/// Stores a finished trace in the ring buffer, evicting the oldest
/// trace when full.
pub fn record(trace: Trace) {
    with_ring(|r| {
        if r.buf.len() >= r.capacity {
            r.buf.pop_front();
            r.dropped += 1;
        }
        r.buf.push_back(trace);
    });
}

/// Removes and returns every buffered trace, oldest first.
pub fn drain() -> Vec<Trace> {
    with_ring(|r| r.buf.drain(..).collect())
}

/// The most recently recorded trace, if any (clone; the buffer keeps it).
pub fn last() -> Option<Trace> {
    with_ring(|r| r.buf.back().cloned())
}

/// Number of traces currently buffered.
pub fn buffered() -> usize {
    with_ring(|r| r.buf.len())
}

/// Traces evicted because the ring was full, since process start.
pub fn dropped() -> u64 {
    with_ring(|r| r.dropped)
}

/// Resizes the ring buffer, evicting oldest traces if shrinking.
/// Capacity 0 is clamped to 1.
pub fn set_ring_capacity(capacity: usize) {
    with_ring(|r| {
        r.capacity = capacity.max(1);
        while r.buf.len() > r.capacity {
            r.buf.pop_front();
            r.dropped += 1;
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Trace {
        let mut tb = TraceBuilder::new("test.root");
        tb.attr_str(tb.root(), "query", "//a/x");
        let a = tb.start("test.step");
        tb.attr_u64(a, "qnode", 1);
        let b = tb.start("test.probe");
        tb.attr_f64(b, "sigma", 0.125);
        tb.attr_str(b, "kind", "histogram");
        tb.end(b);
        tb.end(a);
        let c = tb.start("test.step");
        tb.attr_u64(c, "qnode", 2);
        tb.end(c);
        tb.finish()
    }

    #[test]
    fn builder_produces_correct_tree() {
        let t = sample();
        assert_eq!(t.spans().len(), 4);
        assert_eq!(t.root().name, "test.root");
        assert_eq!(t.spans()[1].parent, Some(0));
        assert_eq!(t.spans()[2].parent, Some(1));
        assert_eq!(t.spans()[3].parent, Some(0));
        assert_eq!(t.children(0).count(), 2);
        assert_eq!(t.by_name("test.step").count(), 2);
        assert_eq!(t.spans()[2].attr("sigma").unwrap().as_f64(), Some(0.125));
        assert_eq!(
            t.spans()[2].attr("kind").unwrap().as_str(),
            Some("histogram")
        );
    }

    #[test]
    fn f64_attrs_roundtrip_bitwise() {
        let v = 0.1f64 + 0.2f64; // not exactly representable as a decimal
        let mut tb = TraceBuilder::new("test.bits");
        tb.attr_f64(0, "x", v);
        let t = tb.finish();
        assert_eq!(
            t.root().attr("x").unwrap().as_f64().unwrap().to_bits(),
            v.to_bits()
        );
    }

    #[test]
    fn timestamps_are_monotone_and_nested() {
        let mut tb = TraceBuilder::new("test.time");
        let a = tb.start("test.inner");
        std::thread::sleep(std::time::Duration::from_millis(1));
        tb.end(a);
        let t = tb.finish();
        let root = t.root();
        let inner = &t.spans()[1];
        assert!(inner.start_ns >= root.start_ns);
        assert!(inner.dur_ns >= 1_000_000);
        assert!(root.dur_ns >= inner.dur_ns);
    }

    #[test]
    fn unbalanced_ends_do_not_corrupt_the_tree() {
        let mut tb = TraceBuilder::new("test.root");
        let a = tb.start("test.a");
        let _b = tb.start("test.b"); // never explicitly ended
        tb.end(a); // closes b with it
        let c = tb.start("test.c");
        tb.end(c);
        let t = tb.finish();
        assert_eq!(t.spans().len(), 4);
        // c is a child of the root, not of the leaked b.
        assert_eq!(t.spans()[3].parent, Some(0));
        assert!(t.spans().iter().all(|s| s.dur_ns <= t.root().dur_ns));
    }

    #[test]
    fn chrome_export_contains_all_spans_and_args() {
        let t = sample();
        let json = t.to_chrome_json();
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("\"test.root\""));
        assert!(json.contains("\"test.probe\""));
        assert!(json.contains("\"ph\": \"X\""));
        assert!(json.contains("\"sigma\": 0.125"));
        assert!(json.contains("\"kind\": \"histogram\""));
        // Cheap well-formedness: balanced braces and quotes.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('"').count() % 2, 0);
    }

    #[test]
    fn render_tree_indents_children() {
        let t = sample();
        let text = t.render_tree();
        assert!(text.contains("test.root"));
        assert!(text.contains("\n  test.step"));
        assert!(text.contains("\n    test.probe"));
        assert!(text.contains("sigma=0.1250"));
    }

    #[test]
    fn ring_buffer_is_bounded_and_fifo() {
        // The ring is global: use drain to isolate, then restore capacity.
        drain();
        set_ring_capacity(3);
        for i in 0..5u64 {
            let mut tb = TraceBuilder::new("test.ring");
            tb.attr_u64(0, "i", i);
            record(tb.finish());
        }
        assert_eq!(buffered(), 3);
        let traces = drain();
        let ids: Vec<u64> = traces
            .iter()
            .map(|t| t.root().attr("i").unwrap().as_u64().unwrap())
            .collect();
        assert_eq!(ids, vec![2, 3, 4]);
        assert!(dropped() >= 2);
        set_ring_capacity(DEFAULT_RING_CAPACITY);
    }

    #[test]
    fn capture_flag_toggles_and_respects_kill_switch() {
        let _g = crate::TEST_ENABLE_LOCK.lock().unwrap();
        crate::set_enabled(true);
        set_capture(false);
        assert!(!capture_enabled());
        set_capture(true);
        assert!(capture_enabled());
        // XCLUSTER_OBS=off (the global kill switch) wins over capture.
        crate::set_enabled(false);
        assert!(!capture_enabled());
        crate::set_enabled(true);
        set_capture(false);
    }
}
