//! RAII span timers: measure a scope's wall time into a registry
//! histogram, with an optional trace-level log line on drop.
//!
//! ```
//! let h = xcluster_obs::histogram("build.phase1_ns");
//! {
//!     let _t = xcluster_obs::span::SpanTimer::new("build.phase1", &h);
//!     // ... timed work ...
//! } // recorded into the histogram here
//! assert_eq!(h.snapshot().count, 1);
//! ```
//!
//! Spans are compiled out entirely when the `spans` feature is off, and
//! skipped at runtime (no clock read) when [`crate::set_enabled`] has
//! turned instrumentation off — both paths reduce `SpanTimer::new` to a
//! few instructions, which is what lets instrumentation stay in release
//! builds.

use crate::profile;
use crate::registry::Histogram;
use std::time::{Duration, Instant};

/// Times a scope and records the elapsed nanoseconds on drop.
#[must_use = "a span timer measures until it is dropped"]
#[derive(Debug)]
pub struct SpanTimer<'a> {
    inner: Option<SpanInner<'a>>,
}

#[derive(Debug)]
struct SpanInner<'a> {
    name: &'static str,
    hist: &'a Histogram,
    start: Instant,
    /// Open profiler frame, when call-path profiling is on. Closed in
    /// [`record`] with the *same* duration the histogram receives, so
    /// profile and histogram totals reconcile exactly.
    prof: Option<profile::FrameToken>,
}

impl<'a> SpanTimer<'a> {
    /// Starts a span recording into `hist` (conventionally named
    /// `<name>_ns`). Inert when spans are compiled out or disabled.
    #[inline]
    pub fn new(name: &'static str, hist: &'a Histogram) -> SpanTimer<'a> {
        if !cfg!(feature = "spans") || !crate::enabled() {
            return SpanTimer { inner: None };
        }
        SpanTimer {
            inner: Some(SpanInner {
                name,
                hist,
                prof: profile::enter(name),
                start: Instant::now(),
            }),
        }
    }

    /// Elapsed time so far (zero for inert spans).
    pub fn elapsed(&self) -> Duration {
        self.inner
            .as_ref()
            .map_or(Duration::ZERO, |i| i.start.elapsed())
    }

    /// Stops the span early and returns the measured duration, if it
    /// was live.
    pub fn finish(mut self) -> Option<Duration> {
        self.inner.take().map(|i| {
            let d = i.start.elapsed();
            record(&i, d);
            Some(d)
        })?
    }
}

impl Drop for SpanTimer<'_> {
    fn drop(&mut self) {
        if let Some(i) = self.inner.take() {
            record(&i, i.start.elapsed());
        }
    }
}

#[inline]
fn record(i: &SpanInner<'_>, d: Duration) {
    i.hist.record_duration(d);
    if let Some(token) = i.prof {
        profile::exit(token, d.as_nanos() as u64);
    }
    crate::trace!("span", "{} took {:.3?}", i.name, d);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TEST_ENABLE_LOCK as ENABLE_FLAG;

    #[test]
    fn span_records_into_histogram() {
        let _g = ENABLE_FLAG.lock().unwrap();
        let h = Histogram::default();
        {
            let _t = SpanTimer::new("test.span", &h);
            std::thread::sleep(Duration::from_millis(2));
        }
        if cfg!(feature = "spans") {
            let s = h.snapshot();
            assert_eq!(s.count, 1);
            assert!(s.sum >= 1_000_000, "recorded {} ns", s.sum);
        } else {
            assert_eq!(h.snapshot().count, 0);
        }
    }

    #[test]
    fn finish_returns_duration_once() {
        let _g = ENABLE_FLAG.lock().unwrap();
        let h = Histogram::default();
        let t = SpanTimer::new("test.finish", &h);
        let d = t.finish();
        if cfg!(feature = "spans") {
            assert!(d.is_some());
            assert_eq!(h.snapshot().count, 1);
        } else {
            assert!(d.is_none());
        }
    }

    #[test]
    fn disabled_spans_record_nothing() {
        let _g = ENABLE_FLAG.lock().unwrap();
        let h = Histogram::default();
        crate::set_enabled(false);
        {
            let _t = SpanTimer::new("test.disabled", &h);
        }
        crate::set_enabled(true);
        assert_eq!(h.snapshot().count, 0);
    }
}
