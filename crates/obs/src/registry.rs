//! The process-wide metric registry: named counters, gauges, and
//! log-scale histograms behind lock-free handles.
//!
//! Handles are `Arc`s resolved once by name (a mutexed map lookup) and
//! then updated with relaxed atomics — the hot-path cost of an update is
//! one `fetch_add`. Instrumented crates cache handles in `LazyLock`
//! statics so steady-state instrumentation never touches the map.
//!
//! Counters are **sharded per thread**: each [`Counter`] holds a small
//! array of cache-line-padded stripes and every thread updates the
//! stripe assigned to it (round-robin on first touch), so parallel
//! build/estimation workers never contend on the same cache line.
//! `get()` sums the stripes — exact once the writers have joined, a
//! consistent monotone lower bound while they run. For worker pools that
//! prefer fully private metrics, a thread can record into its own
//! [`Registry`] and fold it into the global one afterwards with
//! [`Registry::merge_from`].

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Number of per-thread stripes in a [`Counter`] (power of two; threads
/// beyond this share stripes round-robin, which stays race-free).
const COUNTER_STRIPES: usize = 8;

/// One counter stripe, padded to a cache line so concurrent writers on
/// different stripes never false-share.
#[repr(align(64))]
#[derive(Debug, Default)]
struct Stripe(AtomicU64);

/// The stripe index of the calling thread: assigned round-robin on
/// first use and fixed for the thread's lifetime.
#[inline]
fn stripe_index() -> usize {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static SLOT: usize = NEXT.fetch_add(1, Ordering::Relaxed) & (COUNTER_STRIPES - 1);
    }
    SLOT.with(|s| *s)
}

/// A monotonically increasing event count, sharded across per-thread
/// stripes (see the module docs).
#[derive(Debug, Default)]
pub struct Counter {
    stripes: [Stripe; COUNTER_STRIPES],
}

impl Counter {
    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n` (to the calling thread's stripe).
    #[inline]
    pub fn add(&self, n: u64) {
        self.stripes[stripe_index()]
            .0
            .fetch_add(n, Ordering::Relaxed);
    }

    /// Current value: the sum over all stripes. Exact once concurrent
    /// writers have joined.
    #[inline]
    pub fn get(&self) -> u64 {
        self.stripes
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .fold(0, u64::wrapping_add)
    }

    fn reset(&self) {
        for s in &self.stripes {
            s.0.store(0, Ordering::Relaxed);
        }
    }
}

/// A signed instantaneous value (sizes, levels, byte totals).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Overwrites the value.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adjusts the value by `delta` (may be negative).
    #[inline]
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

/// Number of power-of-two buckets: values 0..2^63 (bucket `i` holds
/// values whose bit length is `i`, i.e. `[2^(i-1), 2^i)`).
const BUCKETS: usize = 64;

/// A lock-free histogram over `u64` values with power-of-two buckets.
///
/// Designed for latencies in nanoseconds and byte sizes: ~±50% relative
/// bucket resolution over the full range, constant memory, and
/// `fetch_add`-only recording. Tracks exact count/sum/min/max alongside
/// the buckets, so means are exact and only percentiles are approximate
/// (reported as the geometric midpoint of the holding bucket).
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [const { AtomicU64::new(0) }; BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Records one observation.
    #[inline]
    pub fn record(&self, v: u64) {
        let idx = (64 - v.leading_zeros()) as usize; // 0 for v == 0
        self.buckets[idx.min(BUCKETS - 1)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Records a duration in nanoseconds.
    #[inline]
    pub fn record_duration(&self, d: std::time::Duration) {
        self.record(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Immutable snapshot for export.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let count = self.count.load(Ordering::Relaxed);
        let buckets: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let pct = |q: f64| -> u64 {
            if count == 0 {
                return 0;
            }
            let rank = (q * count as f64).ceil() as u64;
            let mut seen = 0u64;
            for (i, &c) in buckets.iter().enumerate() {
                seen += c;
                if seen >= rank {
                    // Geometric midpoint of [2^(i-1), 2^i).
                    return if i == 0 {
                        0
                    } else {
                        (1u64 << (i - 1)) + (1u64 << (i - 1)) / 2
                    };
                }
            }
            self.max.load(Ordering::Relaxed)
        };
        HistogramSnapshot {
            count,
            sum: self.sum.load(Ordering::Relaxed),
            min: if count == 0 {
                0
            } else {
                self.min.load(Ordering::Relaxed)
            },
            max: self.max.load(Ordering::Relaxed),
            p50: pct(0.50),
            p90: pct(0.90),
            p99: pct(0.99),
        }
    }

    /// Folds every observation of `other` into this histogram:
    /// bucket-level adds, exact count/sum, min/max folded with
    /// `fetch_min`/`fetch_max`. Empty sources are a no-op (so their
    /// `u64::MAX` min sentinel never leaks into `self`).
    pub fn merge_from(&self, other: &Histogram) {
        let count = other.count.load(Ordering::Relaxed);
        if count == 0 {
            return;
        }
        for (b, o) in self.buckets.iter().zip(&other.buckets) {
            let v = o.load(Ordering::Relaxed);
            if v != 0 {
                b.fetch_add(v, Ordering::Relaxed);
            }
        }
        self.count.fetch_add(count, Ordering::Relaxed);
        self.sum
            .fetch_add(other.sum.load(Ordering::Relaxed), Ordering::Relaxed);
        self.min
            .fetch_min(other.min.load(Ordering::Relaxed), Ordering::Relaxed);
        self.max
            .fetch_max(other.max.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.min.store(u64::MAX, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }
}

/// Point-in-time summary of one histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Number of observations.
    pub count: u64,
    /// Exact sum of observations.
    pub sum: u64,
    /// Smallest observation (0 when empty).
    pub min: u64,
    /// Largest observation.
    pub max: u64,
    /// Approximate 50th percentile (bucket midpoint).
    pub p50: u64,
    /// Approximate 90th percentile (bucket midpoint).
    pub p90: u64,
    /// Approximate 99th percentile (bucket midpoint).
    pub p99: u64,
}

impl HistogramSnapshot {
    /// Exact mean of the observations (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// The registry: three namespaces of named metrics.
#[derive(Debug, Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

/// Point-in-time dump of every registered metric, ready for export.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    /// `(name, value)` for every counter, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` for every gauge, sorted by name.
    pub gauges: Vec<(String, i64)>,
    /// `(name, summary)` for every histogram, sorted by name.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

impl Registry {
    /// The counter named `name`, created on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = self.counters.lock().unwrap();
        if let Some(c) = map.get(name) {
            return Arc::clone(c);
        }
        let c = Arc::new(Counter::default());
        map.insert(name.to_string(), Arc::clone(&c));
        c
    }

    /// The gauge named `name`, created on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut map = self.gauges.lock().unwrap();
        if let Some(g) = map.get(name) {
            return Arc::clone(g);
        }
        let g = Arc::new(Gauge::default());
        map.insert(name.to_string(), Arc::clone(&g));
        g
    }

    /// The histogram named `name`, created on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut map = self.histograms.lock().unwrap();
        if let Some(h) = map.get(name) {
            return Arc::clone(h);
        }
        let h = Arc::new(Histogram::default());
        map.insert(name.to_string(), Arc::clone(&h));
        h
    }

    /// Dumps every metric. Zero-valued counters/gauges and empty
    /// histograms are included — absence of traffic is signal too.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            counters: self
                .counters
                .lock()
                .unwrap()
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            gauges: self
                .gauges
                .lock()
                .unwrap()
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            histograms: self
                .histograms
                .lock()
                .unwrap()
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
        }
    }

    /// Folds every metric of `other` into this registry: counters add
    /// their totals, gauges take `other`'s last value, histograms merge
    /// bucket-wise via [`Histogram::merge_from`].
    ///
    /// This is the worker-pool pattern behind batch estimation: each
    /// shard records into a private `Registry` (race-free by
    /// construction) and folds it into the global one once after the
    /// join — one lock acquisition per metric name instead of one
    /// shared atomic update per query.
    pub fn merge_from(&self, other: &Registry) {
        // Clone the handle lists under `other`'s locks, then release
        // them before touching `self` — merging a registry into itself
        // must not deadlock.
        let counters: Vec<(String, Arc<Counter>)> = other
            .counters
            .lock()
            .unwrap()
            .iter()
            .map(|(k, v)| (k.clone(), Arc::clone(v)))
            .collect();
        let gauges: Vec<(String, Arc<Gauge>)> = other
            .gauges
            .lock()
            .unwrap()
            .iter()
            .map(|(k, v)| (k.clone(), Arc::clone(v)))
            .collect();
        let histograms: Vec<(String, Arc<Histogram>)> = other
            .histograms
            .lock()
            .unwrap()
            .iter()
            .map(|(k, v)| (k.clone(), Arc::clone(v)))
            .collect();
        for (name, c) in counters {
            let v = c.get();
            if v != 0 {
                self.counter(&name).add(v);
            }
        }
        for (name, g) in gauges {
            self.gauge(&name).set(g.get());
        }
        for (name, h) in histograms {
            self.histogram(&name).merge_from(&h);
        }
    }

    /// Zeroes every metric without invalidating outstanding handles.
    pub fn reset(&self) {
        for c in self.counters.lock().unwrap().values() {
            c.reset();
        }
        for g in self.gauges.lock().unwrap().values() {
            g.reset();
        }
        for h in self.histograms.lock().unwrap().values() {
            h.reset();
        }
    }
}

static GLOBAL: OnceLock<Registry> = OnceLock::new();

/// The process-wide registry.
pub fn global() -> &'static Registry {
    GLOBAL.get_or_init(Registry::default)
}

/// Global-counter handle by name (cache the `Arc` in hot paths).
pub fn counter(name: &str) -> Arc<Counter> {
    global().counter(name)
}

/// Global-gauge handle by name.
pub fn gauge(name: &str) -> Arc<Gauge> {
    global().gauge(name)
}

/// Global-histogram handle by name.
pub fn histogram(name: &str) -> Arc<Histogram> {
    global().histogram(name)
}

/// Snapshot of the global registry.
pub fn snapshot() -> Snapshot {
    global().snapshot()
}

/// Zeroes every metric of the global registry (handles stay valid).
pub fn reset() {
    global().reset()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_roundtrip_and_identity() {
        let r = Registry::default();
        let c = r.counter("test.counter");
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
        // Same name → same underlying metric.
        assert_eq!(r.counter("test.counter").get(), 42);
        // Different name → fresh metric.
        assert_eq!(r.counter("test.other").get(), 0);
    }

    #[test]
    fn gauge_set_and_add() {
        let r = Registry::default();
        let g = r.gauge("test.gauge");
        g.set(10);
        g.add(-3);
        assert_eq!(g.get(), 7);
    }

    #[test]
    fn histogram_statistics() {
        let h = Histogram::default();
        for v in [1u64, 2, 3, 100, 1000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 5);
        assert_eq!(s.sum, 1106);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 1000);
        assert!((s.mean() - 221.2).abs() < 1e-9);
        // p50 falls in the bucket holding 3 ([2,4)): midpoint 3.
        assert_eq!(s.p50, 3);
        // p99 falls in the bucket holding 1000 ([512,1024)): midpoint 768.
        assert_eq!(s.p99, 768);
    }

    #[test]
    fn empty_histogram_snapshot() {
        let s = Histogram::default().snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, 0);
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    fn histogram_zero_and_huge_values() {
        let h = Histogram::default();
        h.record(0);
        h.record(u64::MAX);
        let s = h.snapshot();
        assert_eq!(s.count, 2);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, u64::MAX);
    }

    #[test]
    fn snapshot_is_sorted_and_complete() {
        let r = Registry::default();
        r.counter("b").inc();
        r.counter("a").add(2);
        r.gauge("g").set(-5);
        r.histogram("h").record(7);
        let s = r.snapshot();
        assert_eq!(s.counters, vec![("a".into(), 2), ("b".into(), 1)]);
        assert_eq!(s.gauges, vec![("g".into(), -5)]);
        assert_eq!(s.histograms.len(), 1);
        assert_eq!(s.histograms[0].1.count, 1);
    }

    #[test]
    fn reset_zeroes_but_keeps_handles() {
        let r = Registry::default();
        let c = r.counter("x");
        c.add(9);
        let h = r.histogram("y");
        h.record(5);
        r.reset();
        assert_eq!(c.get(), 0);
        assert_eq!(h.snapshot().count, 0);
        c.inc();
        assert_eq!(r.counter("x").get(), 1);
    }

    #[test]
    fn snapshot_after_reset_starts_from_zero() {
        // The bench harness resets the registry between commands so
        // each BENCH snapshot covers exactly one command's work.
        let r = Registry::default();
        r.counter("runs.a").add(3);
        r.gauge("runs.g").set(77);
        r.histogram("runs.h_ns").record(1_000);
        let first = r.snapshot();
        assert!(first.counters.iter().any(|(n, v)| n == "runs.a" && *v == 3));
        r.reset();
        let second = r.snapshot();
        for (name, v) in &second.counters {
            assert_eq!(*v, 0, "counter {name} survived reset");
        }
        for (name, v) in &second.gauges {
            assert_eq!(*v, 0, "gauge {name} survived reset");
        }
        for (name, h) in &second.histograms {
            assert_eq!(h.count, 0, "histogram {name} survived reset");
            assert_eq!(h.sum, 0, "histogram {name} kept its sum");
        }
    }

    #[test]
    fn concurrent_increments_do_not_lose_updates() {
        let r = Registry::default();
        let c = r.counter("concurrent");
        std::thread::scope(|s| {
            for _ in 0..8 {
                let c = Arc::clone(&c);
                s.spawn(move || {
                    for _ in 0..10_000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.get(), 80_000);
    }

    #[test]
    fn sharded_registry_stress_totals_are_exact() {
        // Satellite stress test: N threads hammer the same counters and
        // histograms; final totals must equal the sum of per-thread
        // increments exactly. Sized to finish well under 5s even in
        // debug builds (~1.2M atomic ops).
        const THREADS: u64 = 8;
        const PER_THREAD: u64 = 50_000;
        let r = Registry::default();
        let c = r.counter("stress.counter");
        let bumps = r.counter("stress.bumps");
        let h = r.histogram("stress.hist");
        std::thread::scope(|s| {
            for t in 0..THREADS {
                let c = Arc::clone(&c);
                let bumps = Arc::clone(&bumps);
                let h = Arc::clone(&h);
                s.spawn(move || {
                    for i in 0..PER_THREAD {
                        c.inc();
                        bumps.add(3);
                        h.record(t * PER_THREAD + i);
                    }
                });
            }
        });
        let n = THREADS * PER_THREAD;
        assert_eq!(c.get(), n);
        assert_eq!(bumps.get(), 3 * n);
        let snap = h.snapshot();
        assert_eq!(snap.count, n);
        // Values were 0..n exactly once each.
        assert_eq!(snap.sum, n * (n - 1) / 2);
        assert_eq!(snap.min, 0);
        assert_eq!(snap.max, n - 1);
    }

    #[test]
    fn histogram_merge_from_is_exact_and_empty_safe() {
        let a = Histogram::default();
        a.record(10);
        a.record(1_000);
        let b = Histogram::default();
        b.record(3);
        b.record(500_000);
        a.merge_from(&b);
        let s = a.snapshot();
        assert_eq!(s.count, 4);
        assert_eq!(s.sum, 501_013);
        assert_eq!(s.min, 3);
        assert_eq!(s.max, 500_000);
        // Merging an empty histogram must not clobber min with the
        // u64::MAX sentinel or bump the count.
        a.merge_from(&Histogram::default());
        assert_eq!(a.snapshot(), s);
        // Merging into an empty histogram adopts the source wholesale.
        let c = Histogram::default();
        c.merge_from(&a);
        assert_eq!(c.snapshot(), s);
    }

    #[test]
    fn registry_merge_from_folds_private_shards() {
        // The batch-estimation pattern: per-thread private registries,
        // merged into a shared one after the join.
        let shared = Registry::default();
        shared.counter("m.queries").add(5);
        shared.histogram("m.ns").record(8);
        let shards: Vec<Registry> = (0..4u64)
            .map(|t| {
                let l = Registry::default();
                l.counter("m.queries").add(10 + t);
                l.gauge("m.threads").set(100 + t as i64);
                l.histogram("m.ns").record(1 << t);
                l
            })
            .collect();
        std::thread::scope(|s| {
            for shard in &shards {
                let shared = &shared;
                s.spawn(move || shared.merge_from(shard));
            }
        });
        assert_eq!(shared.counter("m.queries").get(), 5 + 10 + 11 + 12 + 13);
        // Gauges are last-write-wins; every shard wrote 100..=103.
        let g = shared.gauge("m.threads").get();
        assert!((100..=103).contains(&g), "gauge = {g}");
        let s = shared.histogram("m.ns").snapshot();
        assert_eq!(s.count, 5);
        assert_eq!(s.sum, 8 + 1 + 2 + 4 + 8);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 8);
    }

    #[test]
    fn registry_merge_from_self_does_not_deadlock() {
        let r = Registry::default();
        r.counter("self.c").add(7);
        r.merge_from(&r);
        // Counters double (self-merge adds the snapshot back in) — the
        // point of this test is termination, not the semantics.
        assert_eq!(r.counter("self.c").get(), 14);
    }
}
