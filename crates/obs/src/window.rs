//! Sliding-window latency tracking: "latency right now", not since
//! process start.
//!
//! The cumulative [`crate::Histogram`] answers *lifetime* questions —
//! after an hour of traffic its p99 barely moves when the last minute
//! degrades. A [`SlidingWindow`] answers the operational question
//! instead: what were p50/p95/p99/max over the last N seconds?
//!
//! # Design
//!
//! The window is a ring of `slots` fixed-duration sub-windows of
//! `slot_ns` nanoseconds each. An observation lands in the sub-window
//! covering its timestamp; sub-windows are plain power-of-two bucket
//! arrays (the same bucketing as the cumulative histogram). A read
//! **merges** every sub-window that is still inside the window horizon
//! and computes quantiles from the merged buckets with within-bucket
//! linear interpolation, so nearby quantiles that share a power-of-two
//! bucket still separate instead of collapsing to a midpoint;
//! sub-windows
//! older than the horizon are skipped on read and recycled lazily on
//! the next write that maps to their ring slot, so there is no timer
//! thread and no work on idle windows.
//!
//! Timestamps are explicit (`record_at`/`snapshot_at`, nanosecond
//! ticks), which makes the algebra deterministic and testable; the
//! convenience methods (`record`, `snapshot`) feed a monotonic clock
//! anchored at construction. All state sits behind one mutex — an
//! update is a few adds under an uncontended lock, and worker shards
//! that want zero contention can keep private windows and fold them
//! with [`SlidingWindow::merge_from`] (the sharded-registry pattern of
//! the parallel batch engine). Merging is associative and commutative:
//! sub-windows with the same epoch combine bucket-wise, so any merge
//! tree yields the same snapshot.

use std::sync::Mutex;
use std::time::Instant;

/// Number of power-of-two buckets (value `v` lands in bucket
/// `64 - v.leading_zeros()`, i.e. by bit length; bucket 0 holds 0).
const BUCKETS: usize = 64;

/// Lower bound of bucket `i` (bucket 0 holds exactly the value 0).
fn bucket_lo(i: usize) -> u64 {
    if i == 0 {
        0
    } else {
        1u64 << (i - 1)
    }
}

/// Shape of a sliding window: `slots` sub-windows of `slot_ns` each;
/// the horizon is their product.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowConfig {
    /// Number of ring slots (≥ 1).
    pub slots: usize,
    /// Sub-window duration in nanoseconds (≥ 1).
    pub slot_ns: u64,
}

impl WindowConfig {
    /// `slots` sub-windows of `slot_secs` seconds each.
    pub fn seconds(slots: usize, slot_secs: u64) -> WindowConfig {
        WindowConfig {
            slots,
            slot_ns: slot_secs.max(1) * 1_000_000_000,
        }
    }

    /// Total window horizon in nanoseconds.
    pub fn horizon_ns(&self) -> u64 {
        self.slot_ns.saturating_mul(self.slots as u64)
    }
}

impl Default for WindowConfig {
    /// Ten one-second sub-windows: quantiles over the last 10 s.
    fn default() -> Self {
        WindowConfig::seconds(10, 1)
    }
}

/// One ring slot: the observations of a single sub-window epoch.
#[derive(Debug, Clone)]
struct Slot {
    /// Which sub-window this slot currently holds (`tick / slot_ns`);
    /// `u64::MAX` marks a never-used slot.
    epoch: u64,
    buckets: [u64; BUCKETS],
    count: u64,
    sum: u64,
    max: u64,
}

impl Slot {
    const EMPTY: Slot = Slot {
        epoch: u64::MAX,
        buckets: [0; BUCKETS],
        count: 0,
        sum: 0,
        max: 0,
    };

    fn reset(&mut self, epoch: u64) {
        *self = Slot::EMPTY;
        self.epoch = epoch;
    }

    fn record(&mut self, v: u64) {
        let idx = (64 - v.leading_zeros()) as usize;
        self.buckets[idx.min(BUCKETS - 1)] += 1;
        self.count += 1;
        self.sum = self.sum.wrapping_add(v);
        self.max = self.max.max(v);
    }

    fn merge(&mut self, other: &Slot) {
        debug_assert_eq!(self.epoch, other.epoch);
        for (b, o) in self.buckets.iter_mut().zip(&other.buckets) {
            *b += *o;
        }
        self.count += other.count;
        self.sum = self.sum.wrapping_add(other.sum);
        self.max = self.max.max(other.max);
    }
}

/// Quantiles of a sliding window at one point in time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WindowSnapshot {
    /// Observations inside the horizon.
    pub count: u64,
    /// Their sum.
    pub sum: u64,
    /// Exact maximum inside the horizon.
    pub max: u64,
    /// Approximate 50th percentile (within-bucket linear interpolation
    /// over the merged pow2 buckets).
    pub p50: u64,
    /// Approximate 95th percentile (interpolated, see `p50`).
    pub p95: u64,
    /// Approximate 99th percentile (interpolated, see `p50`).
    pub p99: u64,
    /// The horizon the quantiles cover, in nanoseconds.
    pub window_ns: u64,
}

impl WindowSnapshot {
    /// Mean of the windowed observations (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// A thread-safe sliding-window histogram (see the module docs).
#[derive(Debug)]
pub struct SlidingWindow {
    cfg: WindowConfig,
    inner: Mutex<Vec<Slot>>,
    origin: Instant,
}

impl SlidingWindow {
    /// An empty window of the given shape.
    pub fn new(cfg: WindowConfig) -> SlidingWindow {
        SlidingWindow {
            cfg,
            inner: Mutex::new(vec![Slot::EMPTY; cfg.slots.max(1)]),
            origin: Instant::now(),
        }
    }

    /// The window's shape.
    pub fn config(&self) -> WindowConfig {
        self.cfg
    }

    /// Nanoseconds since this window was created (the tick source of
    /// the convenience methods).
    pub fn now_ns(&self) -> u64 {
        self.origin.elapsed().as_nanos().min(u64::MAX as u128) as u64
    }

    /// Records `v` at an explicit tick (nanoseconds on any monotonic
    /// axis — all ticks of one window must share the axis).
    pub fn record_at(&self, tick_ns: u64, v: u64) {
        let epoch = tick_ns / self.cfg.slot_ns.max(1);
        let mut slots = self.inner.lock().unwrap();
        let n = slots.len();
        let slot = &mut slots[(epoch as usize) % n];
        if slot.epoch != epoch {
            // Stale sub-window from a previous ring lap (or never used):
            // recycle it for the new epoch. Out-of-order ticks older than
            // a full lap land here too and overwrite — the horizon has
            // already passed them by.
            slot.reset(epoch);
        }
        slot.record(v);
    }

    /// Records `v` now.
    pub fn record(&self, v: u64) {
        self.record_at(self.now_ns(), v);
    }

    /// Records a duration now.
    pub fn record_duration(&self, d: std::time::Duration) {
        self.record(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Quantiles over the sub-windows still inside the horizon at an
    /// explicit tick: epochs in `(current − slots, current]`.
    pub fn snapshot_at(&self, tick_ns: u64) -> WindowSnapshot {
        let epoch = tick_ns / self.cfg.slot_ns.max(1);
        let oldest = epoch.saturating_sub(self.cfg.slots.saturating_sub(1) as u64);
        let slots = self.inner.lock().unwrap();
        let mut buckets = [0u64; BUCKETS];
        let mut snap = WindowSnapshot {
            window_ns: self.cfg.horizon_ns(),
            ..WindowSnapshot::default()
        };
        for slot in slots.iter() {
            if slot.epoch < oldest || slot.epoch > epoch || slot.count == 0 {
                continue;
            }
            for (b, o) in buckets.iter_mut().zip(&slot.buckets) {
                *b += *o;
            }
            snap.count += slot.count;
            snap.sum = snap.sum.wrapping_add(slot.sum);
            snap.max = snap.max.max(slot.max);
        }
        // Quantile read with within-bucket linear interpolation: the
        // bucket holding the rank bounds the value to [2^(i-1), 2^i);
        // assuming the bucket's observations spread uniformly across
        // that range, the k-th of its c observations sits at
        // lo + width·(k − ½)/c. This keeps nearby quantiles (p95/p99)
        // apart when they land in the same power-of-two bucket, where a
        // fixed midpoint would collapse them to one value.
        let pct = |q: f64| -> u64 {
            if snap.count == 0 {
                return 0;
            }
            let rank = ((q * snap.count as f64).ceil() as u64).max(1);
            let mut seen = 0u64;
            for (i, &c) in buckets.iter().enumerate() {
                if c == 0 {
                    continue;
                }
                if seen + c >= rank {
                    if i == 0 {
                        return 0;
                    }
                    let lo = bucket_lo(i);
                    // Bucket i covers [2^(i-1), 2^i): width equals lo.
                    // (The top bucket also absorbs clamped values above
                    // it; interpolation there is still monotone and the
                    // result is capped at the observed max below.)
                    let pos = (rank - seen) as f64 - 0.5;
                    let v = lo as f64 + lo as f64 * (pos / c as f64);
                    return (v.round() as u64).min(snap.max);
                }
                seen += c;
            }
            snap.max
        };
        snap.p50 = pct(0.50);
        snap.p95 = pct(0.95);
        snap.p99 = pct(0.99);
        snap
    }

    /// Quantiles over the last `horizon_ns()` nanoseconds, ending now.
    pub fn snapshot(&self) -> WindowSnapshot {
        self.snapshot_at(self.now_ns())
    }

    /// Folds every sub-window of `other` into `self` (both windows must
    /// share shape and tick axis). Sub-windows with equal epochs combine
    /// bucket-wise; a newer epoch in `other` evicts the stale slot it
    /// lands on, exactly as a write would. Associative and commutative:
    /// any merge tree over a set of shard windows yields the same
    /// snapshots.
    ///
    /// # Panics
    /// Panics if the shapes differ — merging windows of different
    /// geometry has no meaningful algebra.
    pub fn merge_from(&self, other: &SlidingWindow) {
        assert_eq!(
            self.cfg, other.cfg,
            "cannot merge sliding windows of different shapes"
        );
        let theirs = other.inner.lock().unwrap().clone();
        let mut ours = self.inner.lock().unwrap();
        let n = ours.len();
        for slot in &theirs {
            if slot.epoch == u64::MAX || slot.count == 0 {
                continue;
            }
            let mine = &mut ours[(slot.epoch as usize) % n];
            if mine.epoch == slot.epoch {
                mine.merge(slot);
            } else if mine.epoch == u64::MAX || mine.epoch < slot.epoch {
                *mine = slot.clone();
            }
            // else: our slot holds a *newer* epoch; theirs is already
            // outside the horizon and is dropped, as a read would.
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SLOT: u64 = 1_000; // 1 µs sub-windows keep the math readable

    fn cfg(slots: usize) -> WindowConfig {
        WindowConfig {
            slots,
            slot_ns: SLOT,
        }
    }

    /// SplitMix64 — self-contained seeded data (obs has no deps).
    fn splitmix(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// The pow2 bucket a value records into (clamped to the top).
    fn bucket_of(v: u64) -> usize {
        ((64 - v.leading_zeros()) as usize).min(BUCKETS - 1)
    }

    #[test]
    fn quantiles_match_brute_force_sort_on_seeded_data() {
        let w = SlidingWindow::new(cfg(8));
        let mut state = 0xDEADBEEF;
        let mut values: Vec<u64> = Vec::new();
        for i in 0..5_000u64 {
            // Mixed magnitudes spread across the full horizon.
            let v = splitmix(&mut state) >> (splitmix(&mut state) % 48);
            let tick = (i * 8 * SLOT) / 5_000; // 0 .. 8 slots
            w.record_at(tick, v);
            values.push(v);
        }
        let snap = w.snapshot_at(8 * SLOT - 1);
        assert_eq!(snap.count, values.len() as u64);
        values.sort_unstable();
        assert_eq!(snap.max, *values.last().unwrap());
        for (q, got) in [(0.50, snap.p50), (0.95, snap.p95), (0.99, snap.p99)] {
            let rank = ((q * values.len() as f64).ceil() as usize).max(1) - 1;
            let exact = values[rank];
            // The interpolated value must stay inside the pow2 bucket
            // that holds the brute-force quantile (its only guaranteed
            // bound under arbitrary within-bucket distributions).
            let b = bucket_of(exact);
            let lo = bucket_lo(b);
            let hi = lo.saturating_mul(2).max(1);
            assert!(
                got >= lo && got <= hi,
                "q = {q}: interpolated {got} outside bucket [{lo}, {hi}] of exact {exact}"
            );
        }
        // Quantiles are monotone.
        assert!(snap.p50 <= snap.p95 && snap.p95 <= snap.p99 && snap.p99 <= snap.max);
    }

    #[test]
    fn interpolation_separates_quantiles_within_one_bucket() {
        // The regression this guards: batch latencies concentrated in a
        // single pow2 bucket reported p95 == p99 == the bucket midpoint.
        // With uniform data in [2^19, 2^20) the interpolated quantiles
        // must separate and track a brute-force sort closely (uniform
        // data is exactly the interpolation's model).
        let w = SlidingWindow::new(cfg(4));
        let mut values: Vec<u64> = Vec::new();
        let lo = 1u64 << 19;
        for i in 0..1_000u64 {
            let v = lo + (i * (lo - 1)) / 1_000; // uniform over one bucket
            w.record_at(i % (4 * SLOT), v);
            values.push(v);
        }
        let snap = w.snapshot_at(4 * SLOT - 1);
        values.sort_unstable();
        assert!(snap.p95 != snap.p99, "p95 and p99 must separate");
        assert!(snap.p50 < snap.p95 && snap.p95 < snap.p99);
        for (q, got) in [(0.50, snap.p50), (0.95, snap.p95), (0.99, snap.p99)] {
            let rank = ((q * values.len() as f64).ceil() as usize).max(1) - 1;
            let exact = values[rank] as f64;
            let rel = (got as f64 - exact).abs() / exact;
            assert!(
                rel < 0.01,
                "q = {q}: interpolated {got} vs exact {exact} (rel {rel:.4})"
            );
        }
    }

    #[test]
    fn interpolated_quantiles_stay_within_observed_range() {
        let w = SlidingWindow::new(cfg(4));
        // A single observation: every quantile is that observation.
        w.record_at(0, 700_000);
        let s = w.snapshot_at(0);
        assert_eq!(s.max, 700_000);
        assert!(s.p50 <= s.max && s.p99 <= s.max);
        assert!(s.p50 >= bucket_lo(bucket_of(700_000)));
    }

    #[test]
    fn subwindows_expire_as_time_advances() {
        let w = SlidingWindow::new(cfg(4));
        w.record_at(0, 100); // epoch 0
        w.record_at(SLOT, 200); // epoch 1
        let s = w.snapshot_at(SLOT);
        assert_eq!(s.count, 2);
        assert_eq!(s.max, 200);
        // At epoch 4 the horizon is (0, 4]: epoch 0 has expired.
        let s = w.snapshot_at(4 * SLOT);
        assert_eq!(s.count, 1);
        assert_eq!(s.max, 200);
        // Far future: everything expired, snapshot is zero.
        let s = w.snapshot_at(100 * SLOT);
        assert_eq!(s.count, 0);
        assert_eq!(s.max, 0);
        assert_eq!(s.p99, 0);
    }

    #[test]
    fn stale_slots_are_recycled_on_write() {
        let w = SlidingWindow::new(cfg(2));
        w.record_at(0, 7); // epoch 0 → ring slot 0
        w.record_at(2 * SLOT, 9); // epoch 2 → ring slot 0 again (lap)
        let s = w.snapshot_at(2 * SLOT);
        assert_eq!(s.count, 1, "epoch-0 data must not leak into epoch 2");
        assert_eq!(s.max, 9);
    }

    #[test]
    fn merge_is_associative_and_commutative() {
        let shards: Vec<SlidingWindow> = (0..3)
            .map(|t| {
                let w = SlidingWindow::new(cfg(4));
                let mut state = 0xABCD + t;
                for i in 0..200u64 {
                    w.record_at((i % (4 * SLOT / 10)) * 10, splitmix(&mut state) % 100_000);
                }
                w
            })
            .collect();
        let probe = 4 * SLOT - 1;
        // ((a ⊔ b) ⊔ c)
        let left = SlidingWindow::new(cfg(4));
        left.merge_from(&shards[0]);
        left.merge_from(&shards[1]);
        left.merge_from(&shards[2]);
        // (a ⊔ (b ⊔ c)) with the inner pair reversed for commutativity.
        let inner = SlidingWindow::new(cfg(4));
        inner.merge_from(&shards[2]);
        inner.merge_from(&shards[1]);
        let right = SlidingWindow::new(cfg(4));
        right.merge_from(&shards[0]);
        right.merge_from(&inner);
        assert_eq!(left.snapshot_at(probe), right.snapshot_at(probe));
        // The merged window equals recording everything into one window.
        let direct = SlidingWindow::new(cfg(4));
        for (t, shard) in shards.iter().enumerate() {
            let mut state = 0xABCD + t as u64;
            for i in 0..200u64 {
                direct.record_at((i % (4 * SLOT / 10)) * 10, splitmix(&mut state) % 100_000);
            }
            let _ = shard; // shards already hold the same data
        }
        assert_eq!(left.snapshot_at(probe), direct.snapshot_at(probe));
    }

    #[test]
    fn merge_keeps_newest_epoch_on_slot_conflict() {
        // Shard A wrote epoch 0, shard B wrote epoch 2; both map to ring
        // slot 0 of a 2-slot window. The merge must keep epoch 2 (the
        // one still observable) regardless of merge order.
        let a = SlidingWindow::new(cfg(2));
        a.record_at(0, 11);
        let b = SlidingWindow::new(cfg(2));
        b.record_at(2 * SLOT, 22);
        let ab = SlidingWindow::new(cfg(2));
        ab.merge_from(&a);
        ab.merge_from(&b);
        let ba = SlidingWindow::new(cfg(2));
        ba.merge_from(&b);
        ba.merge_from(&a);
        let s_ab = ab.snapshot_at(2 * SLOT);
        let s_ba = ba.snapshot_at(2 * SLOT);
        assert_eq!(s_ab, s_ba);
        assert_eq!(s_ab.count, 1);
        assert_eq!(s_ab.max, 22);
    }

    #[test]
    #[should_panic(expected = "different shapes")]
    fn merge_rejects_mismatched_shapes() {
        let a = SlidingWindow::new(cfg(2));
        let b = SlidingWindow::new(cfg(3));
        a.merge_from(&b);
    }

    #[test]
    fn realtime_helpers_record_and_read() {
        let w = SlidingWindow::new(WindowConfig::seconds(10, 1));
        w.record(1_000);
        w.record_duration(std::time::Duration::from_micros(5));
        let s = w.snapshot();
        assert_eq!(s.count, 2);
        assert_eq!(s.max, 5_000);
        assert_eq!(s.window_ns, 10_000_000_000);
        assert!(s.mean() > 0.0);
    }

    #[test]
    fn empty_window_snapshot_is_zero() {
        let w = SlidingWindow::new(WindowConfig::default());
        let s = w.snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.p50, 0);
    }
}
