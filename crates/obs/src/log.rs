//! Structured, leveled logging to stderr, controlled by the
//! `XCLUSTER_LOG` environment variable.
//!
//! `XCLUSTER_LOG` takes one of `off`, `error`, `warn`, `info`, `debug`,
//! `trace` (default `warn`); programs can override the environment with
//! [`set_level`] (the CLI's `--verbose`/`-q` flags do). Lines are
//! `key=value` structured:
//!
//! ```text
//! [   0.013s INFO  build] phase1 done merges=412 bytes=10240
//! ```
//!
//! Logging goes to **stderr only**, and each line is emitted as a
//! single `write_all` on the locked handle — log lines never tear
//! mid-line against each other or against exporter output on stdout,
//! so `xcluster stats --json > metrics.json` stays machine-readable at
//! any log level.
//!
//! `XCLUSTER_LOG_TS=1` (or [`set_timestamps`]) additionally prefixes
//! every line with a raw monotonic nanosecond timestamp
//! (`123456789ns `), which downstream tooling can sort and diff exactly
//! — the human-readable `[ 0.013s …]` uptime only has millisecond
//! resolution.
//!
//! The level check is a single relaxed atomic load, so disabled call
//! sites cost ~1 ns and the logger can stay compiled into release
//! builds.

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// Log severity, ordered from most to least severe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Level {
    /// Unrecoverable or surprising failures.
    Error = 1,
    /// Suspicious conditions the run survives.
    Warn = 2,
    /// High-level progress (phases, outputs).
    Info = 3,
    /// Per-step detail (merge rounds, pool refills).
    Debug = 4,
    /// Everything, including per-span timings.
    Trace = 5,
}

impl Level {
    fn label(self) -> &'static str {
        match self {
            Level::Error => "ERROR",
            Level::Warn => "WARN ",
            Level::Info => "INFO ",
            Level::Debug => "DEBUG",
            Level::Trace => "TRACE",
        }
    }

    /// Parses a level name (`off` → `None`).
    pub fn parse(s: &str) -> Option<Option<Level>> {
        match s.to_ascii_lowercase().as_str() {
            "off" | "none" | "0" => Some(None),
            "error" => Some(Some(Level::Error)),
            "warn" | "warning" => Some(Some(Level::Warn)),
            "info" => Some(Some(Level::Info)),
            "debug" => Some(Some(Level::Debug)),
            "trace" => Some(Some(Level::Trace)),
            _ => None,
        }
    }
}

/// 0 = off, 1..=5 = max enabled level, 255 = uninitialized.
static MAX_LEVEL: AtomicU8 = AtomicU8::new(255);

static START: OnceLock<Instant> = OnceLock::new();

fn init_from_env() -> u8 {
    let lvl = match std::env::var("XCLUSTER_LOG") {
        Ok(v) => match Level::parse(&v) {
            Some(Some(l)) => l as u8,
            Some(None) => 0,
            None => {
                eprintln!("xcluster: ignoring unknown XCLUSTER_LOG value {v:?}");
                Level::Warn as u8
            }
        },
        Err(_) => Level::Warn as u8,
    };
    START.get_or_init(Instant::now);
    MAX_LEVEL.store(lvl, Ordering::Relaxed);
    lvl
}

/// Whether a message at `level` would be printed.
#[inline]
pub fn enabled(level: Level) -> bool {
    let max = MAX_LEVEL.load(Ordering::Relaxed);
    let max = if max == 255 { init_from_env() } else { max };
    level as u8 <= max
}

/// Overrides the environment-configured level (`None` silences all
/// output). Used by the CLI's `--verbose`/`-q` flags.
pub fn set_level(level: Option<Level>) {
    START.get_or_init(Instant::now);
    MAX_LEVEL.store(level.map_or(0, |l| l as u8), Ordering::Relaxed);
}

/// The currently effective maximum level, if logging is on.
pub fn max_level() -> Option<Level> {
    let max = MAX_LEVEL.load(Ordering::Relaxed);
    let max = if max == 255 { init_from_env() } else { max };
    match max {
        1 => Some(Level::Error),
        2 => Some(Level::Warn),
        3 => Some(Level::Info),
        4 => Some(Level::Debug),
        5 => Some(Level::Trace),
        _ => None,
    }
}

/// Seconds since the logger was first touched (process-relative time).
pub fn uptime() -> f64 {
    START.get_or_init(Instant::now).elapsed().as_secs_f64()
}

/// Monotonic nanoseconds since the logger was first touched.
pub fn uptime_ns() -> u64 {
    START
        .get_or_init(Instant::now)
        .elapsed()
        .as_nanos()
        .min(u64::MAX as u128) as u64
}

/// 0 = off, 1 = on, 2 = uninitialized (read `XCLUSTER_LOG_TS`).
static TIMESTAMPS: AtomicU8 = AtomicU8::new(2);

/// Whether lines carry the raw monotonic-nanosecond prefix.
/// Initialized from `XCLUSTER_LOG_TS` (`1`/`true`/`on` enable).
pub fn timestamps_enabled() -> bool {
    match TIMESTAMPS.load(Ordering::Relaxed) {
        0 => false,
        1 => true,
        _ => {
            let on = matches!(
                std::env::var("XCLUSTER_LOG_TS").as_deref(),
                Ok("1") | Ok("true") | Ok("on")
            );
            TIMESTAMPS.store(on as u8, Ordering::Relaxed);
            on
        }
    }
}

/// Overrides the environment-configured timestamp prefix.
pub fn set_timestamps(on: bool) {
    TIMESTAMPS.store(on as u8, Ordering::Relaxed);
}

/// Renders one log line (including the trailing newline) exactly as
/// [`log`] would emit it.
fn format_line(level: Level, target: &str, args: std::fmt::Arguments<'_>) -> String {
    use std::fmt::Write as _;
    let mut line = String::with_capacity(96);
    if timestamps_enabled() {
        let _ = write!(line, "{}ns ", uptime_ns());
    }
    let _ = writeln!(
        line,
        "[{:8.3}s {} {}] {}",
        uptime(),
        level.label(),
        target,
        args
    );
    line
}

/// Emits one line to stderr as a single write on the locked handle.
/// Prefer the [`error!`](crate::error)… [`trace!`](crate::trace)
/// macros, which skip argument formatting when the level is disabled.
pub fn log(level: Level, target: &str, args: std::fmt::Arguments<'_>) {
    if !enabled(level) {
        return;
    }
    use std::io::Write as _;
    let line = format_line(level, target, args);
    let mut err = std::io::stderr().lock();
    let _ = err.write_all(line.as_bytes());
}

/// Logs at [`Level::Error`]: `error!("target", "fmt {}", args)`.
#[macro_export]
macro_rules! error {
    ($target:expr, $($arg:tt)+) => {
        if $crate::log::enabled($crate::Level::Error) {
            $crate::log::log($crate::Level::Error, $target, format_args!($($arg)+));
        }
    };
}

/// Logs at [`Level::Warn`].
#[macro_export]
macro_rules! warn {
    ($target:expr, $($arg:tt)+) => {
        if $crate::log::enabled($crate::Level::Warn) {
            $crate::log::log($crate::Level::Warn, $target, format_args!($($arg)+));
        }
    };
}

/// Logs at [`Level::Info`].
#[macro_export]
macro_rules! info {
    ($target:expr, $($arg:tt)+) => {
        if $crate::log::enabled($crate::Level::Info) {
            $crate::log::log($crate::Level::Info, $target, format_args!($($arg)+));
        }
    };
}

/// Logs at [`Level::Debug`].
#[macro_export]
macro_rules! debug {
    ($target:expr, $($arg:tt)+) => {
        if $crate::log::enabled($crate::Level::Debug) {
            $crate::log::log($crate::Level::Debug, $target, format_args!($($arg)+));
        }
    };
}

/// Logs at [`Level::Trace`].
#[macro_export]
macro_rules! trace {
    ($target:expr, $($arg:tt)+) => {
        if $crate::log::enabled($crate::Level::Trace) {
            $crate::log::log($crate::Level::Trace, $target, format_args!($($arg)+));
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_all_level_names() {
        assert_eq!(Level::parse("off"), Some(None));
        assert_eq!(Level::parse("ERROR"), Some(Some(Level::Error)));
        assert_eq!(Level::parse("warn"), Some(Some(Level::Warn)));
        assert_eq!(Level::parse("Info"), Some(Some(Level::Info)));
        assert_eq!(Level::parse("debug"), Some(Some(Level::Debug)));
        assert_eq!(Level::parse("trace"), Some(Some(Level::Trace)));
        assert_eq!(Level::parse("bogus"), None);
    }

    #[test]
    fn set_level_controls_enabled() {
        // Tests share the process-global level; keep the whole sequence
        // in one test to avoid ordering hazards.
        set_level(Some(Level::Debug));
        assert!(enabled(Level::Error));
        assert!(enabled(Level::Debug));
        assert!(!enabled(Level::Trace));
        assert_eq!(max_level(), Some(Level::Debug));
        set_level(None);
        assert!(!enabled(Level::Error));
        assert_eq!(max_level(), None);
        set_level(Some(Level::Warn));
        assert!(enabled(Level::Warn));
        assert!(!enabled(Level::Info));
    }

    #[test]
    fn levels_are_ordered() {
        assert!(Level::Error < Level::Warn);
        assert!(Level::Debug < Level::Trace);
    }
}
