//! Prometheus text exposition (format version 0.0.4) for the metric
//! registry, plus a strict line parser used to test the format without
//! a scraper.
//!
//! The renderer maps the registry's dotted metric names onto the
//! Prometheus name grammar (`[a-zA-Z_:][a-zA-Z0-9_:]*`) by replacing
//! every other character with `_` and prefixing a namespace (`xcluster`
//! by default):
//!
//! * counters  → `<ns>_<name>_total` with `# TYPE … counter`;
//! * gauges    → `<ns>_<name>` with `# TYPE … gauge`;
//! * histograms → `# TYPE … summary`: `{quantile="0.5|0.9|0.99"}`
//!   series plus `_sum`/`_count`, and companion `_min`/`_max` gauges
//!   (the text format's summary has no min/max);
//! * sliding windows ([`WindowSnapshot`]) → gauges with
//!   `{quantile="0.5|0.95|0.99"}` and a `window="<seconds>s"` label —
//!   they are *windowed* readings, not cumulative summaries, so they
//!   are deliberately not exposed as the summary type.
//!
//! [`parse`] implements the inverse direction strictly enough to catch
//! real exposition mistakes (bad name characters, unescaped label
//! values, garbage sample lines, `TYPE` after samples): CI scrapes
//! `/metrics` and feeds the body back through it.

use crate::registry::Snapshot;
use crate::window::WindowSnapshot;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Default metric namespace.
pub const DEFAULT_NAMESPACE: &str = "xcluster";

/// Maps a registry metric name into the Prometheus name grammar.
pub fn sanitize_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 1);
    for (i, c) in name.chars().enumerate() {
        let ok = c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit());
        if ok {
            out.push(c);
        } else if i == 0 && c.is_ascii_digit() {
            out.push('_');
            out.push(c);
        } else {
            out.push('_');
        }
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// Escapes a label value (`\` → `\\`, `"` → `\"`, newline → `\n`).
fn escape_label(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Escapes HELP text. The text format escapes only `\` and newline in
/// help strings — a double quote is literal there, unlike in label
/// values (escaping it would surface a stray backslash in scrape UIs).
fn escape_help(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// One metric family header in the output. `help` is raw text; it is
/// escaped here so a newline or backslash can never break the line
/// grammar of the exposition.
fn header(out: &mut String, name: &str, kind: &str, help: &str) {
    let _ = writeln!(out, "# HELP {name} {}", escape_help(help));
    let _ = writeln!(out, "# TYPE {name} {kind}");
}

/// Renders a u64 that may exceed f64's 2^53 integer range losslessly
/// enough for exposition (Prometheus values are f64 anyway).
fn num(v: u64) -> String {
    format!("{v}")
}

/// A named sliding-window reading to expose alongside the registry.
pub type NamedWindow<'a> = (&'a str, WindowSnapshot);

/// The build's identity as `(version, rustc, git)` — crate version plus
/// the compiler and short commit hash discovered by the build script
/// (`"unknown"` when the build environment could not supply one).
pub fn build_info() -> (&'static str, &'static str, &'static str) {
    (
        env!("CARGO_PKG_VERSION"),
        option_env!("XCLUSTER_RUSTC_VERSION").unwrap_or("unknown"),
        option_env!("XCLUSTER_GIT_SHA").unwrap_or("unknown"),
    )
}

/// One-line human form of [`build_info`], e.g. for health endpoints:
/// `xcluster/0.1.0 git/1a2b3c4d`.
pub fn version_string() -> String {
    let (version, _, git) = build_info();
    format!("xcluster/{version} git/{git}")
}

/// Renders the constant `{ns}_build_info{{version,rustc,git}} 1` gauge
/// — the standard Prometheus idiom for joining build metadata onto any
/// other series.
pub fn render_build_info(out: &mut String, namespace: &str) {
    let (version, rustc, git) = build_info();
    render_labeled_family(
        out,
        &format!("{namespace}_build_info"),
        "gauge",
        "Constant gauge carrying the build's version metadata as labels.",
        &[(&[("version", version), ("rustc", rustc), ("git", git)], 1.0)],
    );
}

/// Renders a registry snapshot in Prometheus text format under the
/// given namespace ([`DEFAULT_NAMESPACE`] is the convention).
pub fn render(s: &Snapshot, namespace: &str) -> String {
    render_with_windows(s, &[], namespace)
}

/// [`render`] plus sliding-window quantile families. `windows` pairs a
/// registry-style dotted name (e.g. `serve.request_ns`) with a
/// point-in-time [`WindowSnapshot`].
pub fn render_with_windows(s: &Snapshot, windows: &[NamedWindow<'_>], namespace: &str) -> String {
    let ns = if namespace.is_empty() {
        DEFAULT_NAMESPACE
    } else {
        namespace
    };
    let mut out = String::new();
    render_build_info(&mut out, ns);
    let mut seen: BTreeMap<String, u32> = BTreeMap::new();
    // Guard the already-emitted family from a registry-name collision.
    seen.insert(format!("{ns}_build_info"), 1);
    // Two dotted names may sanitize onto the same exposition name;
    // suffix later arrivals so the output never carries a duplicate
    // family (which scrapers reject).
    let mut unique = |base: String| -> String {
        let n = seen.entry(base.clone()).or_insert(0);
        *n += 1;
        if *n == 1 {
            base
        } else {
            format!("{base}_{n}")
        }
    };
    for (name, v) in &s.counters {
        let fq = unique(format!("{ns}_{}_total", sanitize_name(name)));
        header(
            &mut out,
            &fq,
            "counter",
            &format!("Registry counter '{name}'."),
        );
        let _ = writeln!(out, "{fq} {}", num(*v));
    }
    for (name, v) in &s.gauges {
        let fq = unique(format!("{ns}_{}", sanitize_name(name)));
        header(&mut out, &fq, "gauge", &format!("Registry gauge '{name}'."));
        let _ = writeln!(out, "{fq} {v}");
    }
    for (name, h) in &s.histograms {
        let fq = unique(format!("{ns}_{}", sanitize_name(name)));
        header(
            &mut out,
            &fq,
            "summary",
            &format!("Registry histogram '{name}' (pow2 buckets)."),
        );
        for (q, v) in [("0.5", h.p50), ("0.9", h.p90), ("0.99", h.p99)] {
            let _ = writeln!(out, "{fq}{{quantile=\"{q}\"}} {}", num(v));
        }
        let _ = writeln!(out, "{fq}_sum {}", num(h.sum));
        let _ = writeln!(out, "{fq}_count {}", num(h.count));
        let min_fq = unique(format!("{fq}_min"));
        header(&mut out, &min_fq, "gauge", "Smallest recorded value.");
        let _ = writeln!(out, "{min_fq} {}", num(h.min));
        let max_fq = unique(format!("{fq}_max"));
        header(&mut out, &max_fq, "gauge", "Largest recorded value.");
        let _ = writeln!(out, "{max_fq} {}", num(h.max));
    }
    for (name, w) in windows {
        let secs = w.window_ns as f64 / 1e9;
        let label = format!("window=\"{secs}s\"");
        let fq = unique(format!("{ns}_window_{}", sanitize_name(name)));
        header(
            &mut out,
            &fq,
            "gauge",
            &format!("Sliding-window quantiles of '{name}' over the last {secs}s."),
        );
        for (q, v) in [("0.5", w.p50), ("0.95", w.p95), ("0.99", w.p99)] {
            let _ = writeln!(out, "{fq}{{{label},quantile=\"{q}\"}} {}", num(v));
        }
        let max_fq = unique(format!("{fq}_max"));
        header(&mut out, &max_fq, "gauge", "Windowed maximum.");
        let _ = writeln!(out, "{max_fq}{{{label}}} {}", num(w.max));
        let count_fq = unique(format!("{fq}_count"));
        header(&mut out, &count_fq, "gauge", "Observations in the window.");
        let _ = writeln!(out, "{count_fq}{{{label}}} {}", num(w.count));
    }
    out
}

/// Renders one labeled metric family (header plus one sample line per
/// label set) and appends it to `out`. This is for series the
/// registry's flat dotted names cannot express — per-class accuracy
/// gauges like `xcluster_accuracy_rel{class="struct"}`. `name` must
/// already be a full exposition name (namespace included); it is
/// sanitized defensively. Values print with `f64` `Display`, which is
/// shortest-roundtrip: a strict scrape re-parses identical bits.
pub fn render_labeled_family(
    out: &mut String,
    name: &str,
    kind: &str,
    help: &str,
    samples: &[(&[(&str, &str)], f64)],
) {
    let fq = sanitize_name(name);
    header(out, &fq, kind, help);
    for (labels, value) in samples {
        let _ = write!(out, "{fq}");
        if !labels.is_empty() {
            let _ = write!(out, "{{");
            for (i, (k, v)) in labels.iter().enumerate() {
                if i > 0 {
                    let _ = write!(out, ",");
                }
                let _ = write!(out, "{}=\"{}\"", sanitize_name(k), escape_label(v));
            }
            let _ = write!(out, "}}");
        }
        let _ = writeln!(out, " {value}");
    }
}

/// One parsed sample line.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Sample name (family name, possibly with `_sum`/`_count` suffix).
    pub name: String,
    /// Labels in source order.
    pub labels: Vec<(String, String)>,
    /// The value.
    pub value: f64,
}

impl Sample {
    /// The value of label `key`, if present.
    pub fn label(&self, key: &str) -> Option<&str> {
        self.labels
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// A parsed exposition: samples plus the `# TYPE` declarations.
#[derive(Debug, Clone, Default)]
pub struct Exposition {
    /// Every sample line, in order.
    pub samples: Vec<Sample>,
    /// Family name → declared type.
    pub types: BTreeMap<String, String>,
}

impl Exposition {
    /// All samples with the given name.
    pub fn by_name<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a Sample> {
        self.samples.iter().filter(move |s| s.name == name)
    }

    /// The single sample with this name and no labels, if present.
    pub fn value(&self, name: &str) -> Option<f64> {
        self.samples
            .iter()
            .find(|s| s.name == name && s.labels.is_empty())
            .map(|s| s.value)
    }

    /// The single sample with this name carrying exactly these labels
    /// (order-insensitive), if present.
    pub fn labeled_value(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        self.samples
            .iter()
            .find(|s| {
                s.name == name
                    && s.labels.len() == labels.len()
                    && labels.iter().all(|&(k, v)| s.label(k) == Some(v))
            })
            .map(|s| s.value)
    }

    /// The sample with this name carrying `quantile="q"`.
    pub fn quantile(&self, name: &str, q: &str) -> Option<f64> {
        self.samples
            .iter()
            .find(|s| s.name == name && s.label("quantile") == Some(q))
            .map(|s| s.value)
    }
}

fn valid_name(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn valid_label_name(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// Resolves the declared family a sample belongs to: the exact sample
/// name if it was declared, else the name with one `_sum`/`_count`/
/// `_total`/`_bucket` suffix stripped **when the base is a declared
/// summary or histogram** (those suffixes only carry meaning for the
/// complex types — a gauge legitimately named `…_count` is its own
/// family).
fn resolve_family<'a>(name: &'a str, types: &BTreeMap<String, String>) -> Option<&'a str> {
    if types.contains_key(name) {
        return Some(name);
    }
    for suffix in ["_sum", "_count", "_total", "_bucket"] {
        if let Some(base) = name.strip_suffix(suffix) {
            if matches!(
                types.get(base).map(String::as_str),
                Some("summary" | "histogram")
            ) {
                return Some(base);
            }
        }
    }
    None
}

/// Parses a Prometheus text exposition strictly. Returns an error with
/// the 1-based line number for any malformed line. Samples whose family
/// has no preceding `# TYPE` are rejected, as is a repeated `# TYPE` or
/// one appearing after its family's samples.
pub fn parse(text: &str) -> Result<Exposition, String> {
    let mut out = Exposition::default();
    let mut families_sampled: BTreeMap<String, bool> = BTreeMap::new();
    for (ln, raw) in text.lines().enumerate() {
        let ln = ln + 1;
        let line = raw.trim_end_matches('\r');
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# ") {
            if let Some(decl) = rest.strip_prefix("TYPE ") {
                let mut it = decl.splitn(2, ' ');
                let name = it.next().unwrap_or("");
                let kind = it.next().ok_or(format!("line {ln}: TYPE without kind"))?;
                if !valid_name(name) {
                    return Err(format!("line {ln}: invalid family name {name:?}"));
                }
                if !matches!(
                    kind,
                    "counter" | "gauge" | "summary" | "histogram" | "untyped"
                ) {
                    return Err(format!("line {ln}: unknown metric type {kind:?}"));
                }
                if families_sampled.get(name).copied().unwrap_or(false) {
                    return Err(format!("line {ln}: TYPE for {name:?} after its samples"));
                }
                if out
                    .types
                    .insert(name.to_string(), kind.to_string())
                    .is_some()
                {
                    return Err(format!("line {ln}: duplicate TYPE for {name:?}"));
                }
                continue;
            }
            if rest.starts_with("HELP ") {
                continue;
            }
            return Err(format!("line {ln}: unknown comment directive"));
        }
        if line.starts_with('#') {
            continue; // plain comment
        }
        let sample = parse_sample(line).map_err(|e| format!("line {ln}: {e}"))?;
        let family = resolve_family(&sample.name, &out.types).ok_or(format!(
            "line {ln}: sample {:?} has no TYPE declaration",
            sample.name
        ))?;
        families_sampled.insert(family.to_string(), true);
        out.samples.push(sample);
    }
    Ok(out)
}

fn parse_sample(line: &str) -> Result<Sample, String> {
    let bytes = line.as_bytes();
    let name_end = bytes
        .iter()
        .position(|&b| b == b'{' || b == b' ')
        .ok_or("missing value")?;
    let name = &line[..name_end];
    if !valid_name(name) {
        return Err(format!("invalid sample name {name:?}"));
    }
    let mut labels = Vec::new();
    let mut pos = name_end;
    if bytes[pos] == b'{' {
        pos += 1;
        loop {
            if pos >= bytes.len() {
                return Err("unterminated label set".into());
            }
            if bytes[pos] == b'}' {
                pos += 1;
                break;
            }
            let eq = line[pos..]
                .find('=')
                .map(|i| pos + i)
                .ok_or("label without '='")?;
            let lname = &line[pos..eq];
            if !valid_label_name(lname) {
                return Err(format!("invalid label name {lname:?}"));
            }
            if bytes.get(eq + 1) != Some(&b'"') {
                return Err("label value must be quoted".into());
            }
            let mut value = String::new();
            let mut i = eq + 2;
            loop {
                match bytes.get(i) {
                    None => return Err("unterminated label value".into()),
                    Some(b'"') => {
                        i += 1;
                        break;
                    }
                    Some(b'\\') => {
                        match bytes.get(i + 1) {
                            Some(b'\\') => value.push('\\'),
                            Some(b'"') => value.push('"'),
                            Some(b'n') => value.push('\n'),
                            _ => return Err("bad escape in label value".into()),
                        }
                        i += 2;
                    }
                    Some(_) => {
                        // One UTF-8 scalar.
                        let start = i;
                        i += 1;
                        while i < bytes.len() && (bytes[i] & 0xC0) == 0x80 {
                            i += 1;
                        }
                        value.push_str(&line[start..i]);
                    }
                }
            }
            labels.push((lname.to_string(), value));
            match bytes.get(i) {
                Some(b',') => pos = i + 1,
                Some(b'}') => pos = i,
                _ => return Err("expected ',' or '}' after label".into()),
            }
        }
    }
    let rest = line[pos..].trim_start();
    if rest.is_empty() {
        return Err("missing value".into());
    }
    // A timestamp (second field) is permitted by the format; we accept
    // and ignore it.
    let mut fields = rest.split_ascii_whitespace();
    let value_text = fields.next().ok_or("missing value")?;
    let value = match value_text {
        "+Inf" => f64::INFINITY,
        "-Inf" => f64::NEG_INFINITY,
        "NaN" => f64::NAN,
        t => t.parse::<f64>().map_err(|_| format!("bad value {t:?}"))?,
    };
    if let Some(ts) = fields.next() {
        ts.parse::<i64>()
            .map_err(|_| format!("bad timestamp {ts:?}"))?;
    }
    if fields.next().is_some() {
        return Err("trailing fields after value".into());
    }
    Ok(Sample {
        name: name.to_string(),
        labels,
        value,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;
    use crate::window::{SlidingWindow, WindowConfig};

    fn sample_snapshot() -> Snapshot {
        let r = Registry::default();
        r.counter("build.merges_applied").add(412);
        r.counter("estimate.batch_queries").add(150);
        r.gauge("build.final_struct_bytes").set(10_240);
        let h = r.histogram("estimate.query_ns");
        h.record(1_000);
        h.record(2_000);
        h.record(1_000_000);
        r.snapshot()
    }

    #[test]
    fn sanitize_maps_dotted_names() {
        assert_eq!(sanitize_name("build.phase1_ns"), "build_phase1_ns");
        assert_eq!(sanitize_name("a-b c"), "a_b_c");
        assert_eq!(sanitize_name("9lives"), "_9lives");
        assert_eq!(sanitize_name(""), "_");
    }

    #[test]
    fn render_roundtrips_through_parser() {
        let text = render(&sample_snapshot(), "xcluster");
        let exp = parse(&text).unwrap();
        assert_eq!(
            exp.value("xcluster_build_merges_applied_total"),
            Some(412.0)
        );
        assert_eq!(
            exp.value("xcluster_build_final_struct_bytes"),
            Some(10240.0)
        );
        assert_eq!(
            exp.types
                .get("xcluster_build_merges_applied_total")
                .unwrap(),
            "counter"
        );
        assert_eq!(
            exp.types.get("xcluster_estimate_query_ns").unwrap(),
            "summary"
        );
        assert_eq!(exp.value("xcluster_estimate_query_ns_count"), Some(3.0));
        assert_eq!(
            exp.value("xcluster_estimate_query_ns_sum"),
            Some(1_003_000.0)
        );
        assert!(exp.quantile("xcluster_estimate_query_ns", "0.5").is_some());
        assert_eq!(exp.value("xcluster_estimate_query_ns_min"), Some(1_000.0));
        assert_eq!(
            exp.value("xcluster_estimate_query_ns_max"),
            Some(1_000_000.0)
        );
    }

    #[test]
    fn windows_render_as_labeled_gauges() {
        let w = SlidingWindow::new(WindowConfig {
            slots: 4,
            slot_ns: 1_000_000_000,
        });
        w.record_at(0, 5_000);
        w.record_at(1, 9_000);
        let snap = w.snapshot_at(10);
        let text = render_with_windows(
            &Snapshot::default(),
            &[("serve.request_ns", snap)],
            "xcluster",
        );
        let exp = parse(&text).unwrap();
        let q50 = exp
            .quantile("xcluster_window_serve_request_ns", "0.5")
            .unwrap();
        assert!(q50 > 0.0);
        let max = exp
            .by_name("xcluster_window_serve_request_ns_max")
            .next()
            .unwrap();
        assert_eq!(max.value, 9_000.0);
        assert_eq!(max.label("window"), Some("4s"));
        assert_eq!(
            exp.by_name("xcluster_window_serve_request_ns_count")
                .next()
                .unwrap()
                .value,
            2.0
        );
    }

    #[test]
    fn labeled_family_roundtrips_value_bits() {
        let mut out = String::new();
        let v = 0.9890772937381937f64;
        render_labeled_family(
            &mut out,
            "xcluster_accuracy_rel",
            "gauge",
            "Windowed mean relative error per query class.",
            &[
                (&[("class", "struct")], v),
                (&[("class", "text")], 0.0),
                (&[], 1.5),
            ],
        );
        let exp = parse(&out).unwrap();
        let s = exp
            .by_name("xcluster_accuracy_rel")
            .find(|s| s.label("class") == Some("struct"))
            .unwrap();
        assert_eq!(s.value.to_bits(), v.to_bits(), "Display is roundtrip");
        assert_eq!(exp.value("xcluster_accuracy_rel"), Some(1.5));
        assert_eq!(exp.types.get("xcluster_accuracy_rel").unwrap(), "gauge");
    }

    #[test]
    fn colliding_sanitized_names_stay_unique() {
        let r = Registry::default();
        r.counter("a.b").inc();
        r.counter("a_b").inc();
        let text = render(&r.snapshot(), "x");
        let exp = parse(&text).unwrap();
        assert_eq!(exp.value("x_a_b_total"), Some(1.0));
        assert_eq!(exp.value("x_a_b_total_2"), Some(1.0));
    }

    #[test]
    fn parser_rejects_malformed_lines() {
        assert!(parse("x_total 1").is_err(), "sample without TYPE");
        assert!(parse("# TYPE m counter\nm{,} 1").is_err());
        assert!(parse("# TYPE m counter\nm{a=\"x} 1").is_err());
        assert!(parse("# TYPE m counter\nm{a=x} 1").is_err());
        assert!(parse("# TYPE m counter\nm 1 2 3").is_err());
        assert!(parse("# TYPE m counter\nm notanumber").is_err());
        assert!(parse("# TYPE m bogus\n").is_err());
        assert!(parse("# TYPE m counter\n# TYPE m counter\n").is_err());
        assert!(parse("# TYPE 9bad counter\n").is_err());
        assert!(parse("# FROB x y\n").is_err());
        // TYPE must precede its family's samples.
        assert!(parse("# TYPE a gauge\na 1\nb 1\n# TYPE b gauge\n").is_err());
    }

    #[test]
    fn suffix_stripping_is_type_aware() {
        // `_count` resolves to a summary family...
        let exp = parse("# TYPE s summary\ns_count 3\ns_sum 9\n").unwrap();
        assert_eq!(exp.value("s_count"), Some(3.0));
        // ...but a gauge named `…_count` is its own family and needs its
        // own declaration.
        assert!(parse("# TYPE g gauge\ng_count 3\n").is_err());
        let exp = parse("# TYPE g_count gauge\ng_count 3\n").unwrap();
        assert_eq!(exp.value("g_count"), Some(3.0));
    }

    #[test]
    fn parser_handles_labels_escapes_and_timestamps() {
        let text = "# TYPE m gauge\nm{path=\"a\\\\b\\\"c\\nd\",other=\"é\"} 4.5 1700000000\n";
        let exp = parse(text).unwrap();
        let s = &exp.samples[0];
        assert_eq!(s.label("path"), Some("a\\b\"c\nd"));
        assert_eq!(s.label("other"), Some("é"));
        assert_eq!(s.value, 4.5);
        // Special float values.
        let exp = parse("# TYPE m gauge\nm +Inf\n").unwrap();
        assert!(exp.samples[0].value.is_infinite());
    }

    #[test]
    fn label_values_escape_and_round_trip() {
        let awkward = "a\\b\"c\nd,e}f";
        let mut out = String::new();
        render_labeled_family(
            &mut out,
            "xcluster_quality_cluster_bytes",
            "gauge",
            "Bytes per cluster.",
            &[(&[("label", awkward), ("kind", "terms")], 42.0)],
        );
        // The raw rendering carries the escapes…
        assert!(out.contains("label=\"a\\\\b\\\"c\\nd,e}f\""));
        // …and the strict parser recovers the original value exactly.
        let exp = parse(&out).unwrap();
        let s = exp
            .by_name("xcluster_quality_cluster_bytes")
            .next()
            .unwrap();
        assert_eq!(s.label("label"), Some(awkward));
        assert_eq!(
            exp.labeled_value(
                "xcluster_quality_cluster_bytes",
                &[("kind", "terms"), ("label", awkward)],
            ),
            Some(42.0)
        );
    }

    #[test]
    fn help_text_escapes_without_mangling_quotes() {
        let mut out = String::new();
        render_labeled_family(
            &mut out,
            "m",
            "gauge",
            "Says \"hi\" across\ntwo lines with a \\ too.",
            &[(&[], 1.0)],
        );
        // Quotes stay literal in HELP; newline and backslash are
        // escaped so the line grammar survives.
        assert!(out.contains("# HELP m Says \"hi\" across\\ntwo lines with a \\\\ too.\n"));
        assert_eq!(parse(&out).unwrap().value("m"), Some(1.0));
    }

    #[test]
    fn registry_names_with_quotes_render_cleanly() {
        let r = Registry::default();
        r.counter("weird\"name").inc();
        let text = render(&r.snapshot(), "x");
        // The help line carries the name verbatim — no `\"` artifact.
        assert!(text.contains("# HELP x_weird_name_total Registry counter 'weird\"name'.\n"));
        parse(&text).unwrap();
    }

    #[test]
    fn build_info_gauge_is_rendered_and_parses() {
        let text = render(&Snapshot::default(), "xcluster");
        let exp = parse(&text).unwrap();
        let info = exp.by_name("xcluster_build_info").next().unwrap();
        assert_eq!(info.value, 1.0);
        let (version, rustc, git) = build_info();
        assert_eq!(info.label("version"), Some(version));
        assert_eq!(info.label("rustc"), Some(rustc));
        assert_eq!(info.label("git"), Some(git));
        assert!(!version.is_empty());
        assert!(version_string().starts_with("xcluster/"));
    }

    #[test]
    fn counter_names_get_total_suffix() {
        let r = Registry::default();
        r.counter("serve.requests").add(9);
        let text = render(&r.snapshot(), "xcluster");
        assert!(text.contains("xcluster_serve_requests_total 9\n"));
        assert!(text.contains("# TYPE xcluster_serve_requests_total counter\n"));
    }
}
