//! The query journal: a bounded, lock-striped ring of *wide events* —
//! one structured record per served query, carrying everything an
//! operator needs to answer "what did this request do?" in a single
//! row (request id, query text, estimate, latency, clusters visited,
//! cache hit counts, worker and shard).
//!
//! # Design
//!
//! The journal is a fixed number of stripes, each a mutex-guarded ring
//! of records with its own capacity share. A record's sequence number
//! picks its stripe (`seq % stripes`), so concurrent writers from the
//! server's worker pool round-robin across locks instead of contending
//! on one; a full stripe evicts its oldest record, so total memory is
//! bounded by construction. Sequence numbers come from one atomic
//! ([`Journal::reserve`]), which makes the journal a total order over
//! served queries even though records land stripe-by-stripe.
//!
//! Sampling is deterministic and seeded ([`Sampler`]): whether query
//! `seq` is journaled (or shadow-evaluated) is a pure function of
//! `(seed, seq)`, never of wall-clock or thread timing. Two runs that
//! serve the same queries in the same order journal the same subset —
//! which is what lets `xcluster replay` and the bench's offline
//! accuracy check reconstruct exactly what the server sampled.
//!
//! Export is JSON Lines ([`to_jsonl`]), one object per record, with
//! `f64` estimates printed via Rust's shortest-roundtrip `Display` so a
//! re-parse yields bitwise-identical values; [`parse_jsonl`] is the
//! inverse, built on [`crate::json`].

use crate::json::{self, JsonValue};
use std::collections::VecDeque;
use std::mem::size_of;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// SplitMix64 — the journal's seeded hash (obs is dependency-free).
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Deterministic seeded sampler: whether sequence number `seq` is in
/// the sample is a pure function of `(seed, rate_ppm, seq)`.
#[derive(Debug, Clone, Copy)]
pub struct Sampler {
    seed: u64,
    rate_ppm: u32,
    threshold: u64,
}

impl Sampler {
    /// A sampler admitting `rate_ppm` parts-per-million of sequence
    /// numbers (`1_000_000` = everything, `0` = nothing).
    pub fn new(seed: u64, rate_ppm: u32) -> Sampler {
        let ppm = rate_ppm.min(1_000_000);
        Sampler {
            seed,
            rate_ppm: ppm,
            threshold: ((ppm as u128 * u64::MAX as u128) / 1_000_000) as u64,
        }
    }

    /// The configured rate in parts-per-million.
    pub fn rate_ppm(&self) -> u32 {
        self.rate_ppm
    }

    /// Whether `seq` is sampled. Deterministic; uniform over seeds.
    pub fn sample(&self, seq: u64) -> bool {
        match self.rate_ppm {
            0 => false,
            1_000_000 => true,
            _ => splitmix64(self.seed ^ seq.wrapping_mul(0x2545_F491_4F6C_DD1D)) < self.threshold,
        }
    }
}

/// One wide event: everything the server knows about one served query.
///
/// Batch-scoped fields (`request_id`, `latency_ns`, the cluster/cache
/// deltas, `worker`) repeat on every record of the same `/estimate`
/// batch — a wide event is denormalized on purpose so one row answers
/// the whole question.
#[derive(Debug, Clone, PartialEq)]
pub struct JournalRecord {
    /// Global serve order (one atomic counter across all workers).
    pub seq: u64,
    /// The request id of the `/estimate` batch (client-supplied
    /// `x-request-id`, or server-generated).
    pub request_id: String,
    /// The query text as received.
    pub query: String,
    /// The served estimate (bitwise as sent on the wire).
    pub estimate: f64,
    /// Wall-clock nanoseconds of the whole batch estimation.
    pub latency_ns: u64,
    /// `estimate.clusters_visited` delta across the batch (approximate
    /// under concurrent batches — the counter is process-global).
    pub clusters: u64,
    /// Reachability-cache hits during the batch (per-synopsis cache
    /// stats delta; approximate under concurrent batches).
    pub reach_hits: u64,
    /// Reachability-cache misses during the batch.
    pub reach_misses: u64,
    /// Value-probe memo hits during the batch.
    pub probe_hits: u64,
    /// Value-probe memo misses during the batch.
    pub probe_misses: u64,
    /// Connection-pool worker that served the batch.
    pub worker: u64,
    /// Estimation shard the query ran in (contiguous deterministic
    /// batch partitioning at the server's estimate-thread count).
    pub shard: u64,
    /// Whether the shadow accuracy sampler selected this query.
    pub shadow_sampled: bool,
}

impl JournalRecord {
    /// Heap bytes this record owns (strings; the struct itself is
    /// accounted by the holding stripe).
    fn heap_bytes(&self) -> usize {
        self.request_id.capacity() + self.query.capacity()
    }

    /// Renders the record as one JSON object (no trailing newline).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"seq\":{},\"request_id\":\"{}\",\"query\":\"{}\",\"estimate\":{},\
             \"latency_ns\":{},\"clusters\":{},\"reach_hits\":{},\"reach_misses\":{},\
             \"probe_hits\":{},\"probe_misses\":{},\"worker\":{},\"shard\":{},\
             \"shadow_sampled\":{}}}",
            self.seq,
            crate::export::esc(&self.request_id),
            crate::export::esc(&self.query),
            self.estimate,
            self.latency_ns,
            self.clusters,
            self.reach_hits,
            self.reach_misses,
            self.probe_hits,
            self.probe_misses,
            self.worker,
            self.shard,
            self.shadow_sampled,
        )
    }

    /// Parses one record from a [`JsonValue`] object.
    pub fn from_json(v: &JsonValue) -> Result<JournalRecord, String> {
        let u = |key: &str| -> Result<u64, String> {
            v.get(key)
                .and_then(JsonValue::as_f64)
                .map(|f| f as u64)
                .ok_or_else(|| format!("journal record missing numeric field {key:?}"))
        };
        let s = |key: &str| -> Result<String, String> {
            v.get(key)
                .and_then(JsonValue::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("journal record missing string field {key:?}"))
        };
        Ok(JournalRecord {
            seq: u("seq")?,
            request_id: s("request_id")?,
            query: s("query")?,
            estimate: v
                .get("estimate")
                .and_then(JsonValue::as_f64)
                .ok_or("journal record missing numeric field \"estimate\"")?,
            latency_ns: u("latency_ns")?,
            clusters: u("clusters")?,
            reach_hits: u("reach_hits")?,
            reach_misses: u("reach_misses")?,
            probe_hits: u("probe_hits")?,
            probe_misses: u("probe_misses")?,
            worker: u("worker")?,
            shard: u("shard")?,
            shadow_sampled: v
                .get("shadow_sampled")
                .and_then(JsonValue::as_bool)
                .ok_or("journal record missing bool field \"shadow_sampled\"")?,
        })
    }
}

/// Journal shape: total record capacity, stripe count, and the sampling
/// policy for which served queries get a record at all.
#[derive(Debug, Clone, Copy)]
pub struct JournalConfig {
    /// Upper bound on retained records (rounded up to a multiple of
    /// `stripes`; `0` disables retention but sequence numbers still
    /// advance).
    pub capacity: usize,
    /// Lock stripes (writers are distributed `seq % stripes`).
    pub stripes: usize,
    /// Journal sampling rate in parts-per-million (`1_000_000` = every
    /// served query gets a record).
    pub sample_ppm: u32,
    /// Sampler seed (determinism contract: same seed + same serve order
    /// → same journaled subset).
    pub seed: u64,
}

impl Default for JournalConfig {
    fn default() -> Self {
        JournalConfig {
            capacity: 4096,
            stripes: 8,
            sample_ppm: 1_000_000,
            seed: 0x1CEB_00DA,
        }
    }
}

/// One lock stripe: a ring of records plus its running heap tally.
#[derive(Debug, Default)]
struct Stripe {
    ring: VecDeque<JournalRecord>,
    heap_bytes: usize,
}

/// The bounded, lock-striped wide-event ring (see the module docs).
#[derive(Debug)]
pub struct Journal {
    cfg: JournalConfig,
    sampler: Sampler,
    per_stripe: usize,
    stripes: Vec<Mutex<Stripe>>,
    seq: AtomicU64,
    evicted: AtomicU64,
}

impl Journal {
    /// An empty journal of the given shape.
    pub fn new(cfg: JournalConfig) -> Journal {
        let stripes = cfg.stripes.max(1);
        let per_stripe = cfg.capacity.div_ceil(stripes);
        Journal {
            sampler: Sampler::new(cfg.seed, cfg.sample_ppm),
            per_stripe,
            stripes: (0..stripes)
                .map(|_| Mutex::new(Stripe::default()))
                .collect(),
            seq: AtomicU64::new(0),
            evicted: AtomicU64::new(0),
            cfg,
        }
    }

    /// The journal's shape.
    pub fn config(&self) -> JournalConfig {
        self.cfg
    }

    /// Effective record capacity (the configured capacity rounded up to
    /// a stripe multiple).
    pub fn capacity(&self) -> usize {
        self.per_stripe * self.stripes.len()
    }

    /// Reserves `n` consecutive sequence numbers; returns the first.
    /// This is the server's only query counter — sequence numbers
    /// advance even for queries the sampler skips, so the sampled
    /// subset is reconstructible from the rate and seed alone.
    pub fn reserve(&self, n: u64) -> u64 {
        self.seq.fetch_add(n, Ordering::Relaxed)
    }

    /// Sequence numbers handed out so far (= queries served).
    pub fn reserved(&self) -> u64 {
        self.seq.load(Ordering::Relaxed)
    }

    /// Whether the journal sampler admits `seq`.
    pub fn sampled(&self, seq: u64) -> bool {
        self.cfg.capacity > 0 && self.sampler.sample(seq)
    }

    /// Appends a record (placed by `rec.seq`); evicts the stripe's
    /// oldest record when its share of the capacity is full.
    pub fn record(&self, rec: JournalRecord) {
        if self.per_stripe == 0 {
            self.evicted.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let stripe = &self.stripes[(rec.seq % self.stripes.len() as u64) as usize];
        let added = rec.heap_bytes();
        let mut guard = stripe.lock().unwrap();
        guard.ring.push_back(rec);
        guard.heap_bytes += added;
        let mut freed = 0usize;
        while guard.ring.len() > self.per_stripe {
            if let Some(old) = guard.ring.pop_front() {
                freed += old.heap_bytes();
                self.evicted.fetch_add(1, Ordering::Relaxed);
            }
        }
        guard.heap_bytes -= freed;
    }

    /// Records currently retained.
    pub fn len(&self) -> usize {
        self.stripes
            .iter()
            .map(|s| s.lock().unwrap().ring.len())
            .sum()
    }

    /// Whether no records are retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Records evicted (or dropped by a zero-capacity journal) so far.
    pub fn evicted(&self) -> u64 {
        self.evicted.load(Ordering::Relaxed)
    }

    /// Resident heap bytes of the retained records: ring capacities at
    /// record-struct size plus owned string bytes. Bounded by
    /// construction — eviction keeps every stripe at its share.
    pub fn heap_bytes(&self) -> usize {
        self.stripes
            .iter()
            .map(|s| {
                let g = s.lock().unwrap();
                g.heap_bytes + g.ring.capacity() * size_of::<JournalRecord>()
            })
            .sum()
    }

    /// All retained records in sequence order.
    pub fn snapshot(&self) -> Vec<JournalRecord> {
        let mut out: Vec<JournalRecord> = Vec::with_capacity(self.len());
        for s in &self.stripes {
            out.extend(s.lock().unwrap().ring.iter().cloned());
        }
        out.sort_by_key(|r| r.seq);
        out
    }
}

/// Renders records as JSON Lines (one object per line, trailing
/// newline). Estimates print with shortest-roundtrip `Display`, so
/// [`parse_jsonl`] recovers bitwise-identical `f64`s.
pub fn to_jsonl(records: &[JournalRecord]) -> String {
    let mut out = String::with_capacity(records.len() * 160);
    for r in records {
        out.push_str(&r.to_json());
        out.push('\n');
    }
    out
}

/// Parses a JSON Lines export back into records (inverse of
/// [`to_jsonl`]; blank lines are skipped).
pub fn parse_jsonl(text: &str) -> Result<Vec<JournalRecord>, String> {
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let v = json::parse(line).map_err(|e| format!("line {}: {e}", i + 1))?;
        out.push(JournalRecord::from_json(&v).map_err(|e| format!("line {}: {e}", i + 1))?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(seq: u64) -> JournalRecord {
        JournalRecord {
            seq,
            request_id: format!("req-{seq:08x}"),
            query: format!("//movie[year > {}]/title", 1900 + seq % 100),
            estimate: seq as f64 * 1.25 + 0.1,
            latency_ns: 1000 + seq,
            clusters: seq % 7,
            reach_hits: seq % 5,
            reach_misses: seq % 3,
            probe_hits: seq % 11,
            probe_misses: seq % 2,
            worker: seq % 4,
            shard: seq % 2,
            shadow_sampled: seq.is_multiple_of(10),
        }
    }

    #[test]
    fn sampler_is_deterministic_and_tracks_rate() {
        let s = Sampler::new(42, 50_000); // 5%
        let again = Sampler::new(42, 50_000);
        let n = 100_000u64;
        let hits = (0..n).filter(|&i| s.sample(i)).count();
        for i in 0..1000 {
            assert_eq!(s.sample(i), again.sample(i), "seq {i}");
        }
        // 5% ± 1% over 100k draws (binomial σ ≈ 0.07%).
        let rate = hits as f64 / n as f64;
        assert!((rate - 0.05).abs() < 0.01, "rate {rate}");
        // Extremes.
        assert!(Sampler::new(7, 1_000_000).sample(123));
        assert!(!Sampler::new(7, 0).sample(123));
        // Different seeds sample different subsets.
        let other = Sampler::new(43, 50_000);
        assert!((0..n).any(|i| s.sample(i) != other.sample(i)));
    }

    #[test]
    fn records_survive_jsonl_roundtrip_bitwise() {
        let records: Vec<JournalRecord> = (0..50).map(rec).collect();
        let mut tricky = rec(99);
        tricky.query = "weird \"quote\" and \\slash\nline".to_string();
        tricky.estimate = 7.0 / 3.0;
        let mut all = records.clone();
        all.push(tricky);
        let text = to_jsonl(&all);
        let back = parse_jsonl(&text).unwrap();
        assert_eq!(back.len(), all.len());
        for (a, b) in all.iter().zip(&back) {
            assert_eq!(a.seq, b.seq);
            assert_eq!(a.request_id, b.request_id);
            assert_eq!(a.query, b.query);
            assert_eq!(
                a.estimate.to_bits(),
                b.estimate.to_bits(),
                "estimate bits for seq {}",
                a.seq
            );
            assert_eq!(a.shadow_sampled, b.shadow_sampled);
            assert_eq!(a.latency_ns, b.latency_ns);
            assert_eq!(a.shard, b.shard);
        }
        assert!(parse_jsonl("not json\n").is_err());
        assert!(parse_jsonl("{\"seq\":1}\n").is_err(), "missing fields");
        assert_eq!(parse_jsonl("\n\n").unwrap().len(), 0);
    }

    #[test]
    fn multi_writer_stress_loses_nothing_below_capacity() {
        // 8 writers × 500 records into a 4096-capacity journal: every
        // record retained exactly once, in sequence order.
        let j = std::sync::Arc::new(Journal::new(JournalConfig {
            capacity: 4096,
            stripes: 8,
            ..JournalConfig::default()
        }));
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let j = std::sync::Arc::clone(&j);
                scope.spawn(move || {
                    for _ in 0..500 {
                        let seq = j.reserve(1);
                        j.record(rec(seq));
                    }
                });
            }
        });
        assert_eq!(j.len(), 4000);
        assert_eq!(j.evicted(), 0);
        let snap = j.snapshot();
        assert_eq!(snap.len(), 4000);
        for (i, r) in snap.iter().enumerate() {
            assert_eq!(r.seq, i as u64, "no loss, no duplication, in order");
        }
    }

    #[test]
    fn multi_writer_stress_evicts_consistently_over_capacity() {
        // 8 writers × 2 000 records into a 256-slot journal (4 stripes
        // × 64): eviction races against insertion on every stripe, yet
        // the invariants must hold exactly — retained + evicted equals
        // reserved, every stripe sits at its share, no sequence number
        // is retained twice, and heap accounting never underflows
        // (an unbalanced `heap_bytes -= freed` would wrap usize and
        // explode the total).
        let total = 8 * 2_000u64;
        let j = std::sync::Arc::new(Journal::new(JournalConfig {
            capacity: 256,
            stripes: 4,
            ..JournalConfig::default()
        }));
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let j = std::sync::Arc::clone(&j);
                scope.spawn(move || {
                    for _ in 0..2_000 {
                        let seq = j.reserve(1);
                        j.record(rec(seq));
                    }
                });
            }
        });
        assert_eq!(j.reserved(), total);
        assert_eq!(j.len(), 256, "every stripe full, none over");
        assert_eq!(j.evicted(), total - 256);
        let snap = j.snapshot();
        assert_eq!(snap.len(), 256);
        // Stripe placement is seq % stripes; each stripe retains
        // exactly its share, and no record is duplicated.
        for stripe in 0..4u64 {
            assert_eq!(
                snap.iter().filter(|r| r.seq % 4 == stripe).count(),
                64,
                "stripe {stripe} share"
            );
        }
        let mut seqs: Vec<u64> = snap.iter().map(|r| r.seq).collect();
        seqs.dedup(); // snapshot is seq-sorted
        assert_eq!(seqs.len(), 256, "no duplicate sequence numbers");
        // Heap accounting stayed balanced through concurrent eviction:
        // bounded above, and bitwise-rebuildable from the survivors.
        let hb = j.heap_bytes();
        let per_record = size_of::<JournalRecord>() + 128;
        assert!(hb > 0 && hb < 4 * 256 * per_record, "heap_bytes {hb}");
        let fresh = Journal::new(JournalConfig {
            capacity: 256,
            stripes: 4,
            ..JournalConfig::default()
        });
        for r in &snap {
            fresh.record(r.clone());
        }
        assert_eq!(fresh.len(), 256);
        // The stressed journal can only differ from the rebuild by ring
        // over-allocation — its live string accounting must not drift.
        assert!(
            fresh.heap_bytes() <= hb,
            "rebuilt {} vs stressed {hb}",
            fresh.heap_bytes()
        );
    }

    #[test]
    fn capacity_bounds_records_and_heap_bytes() {
        let j = Journal::new(JournalConfig {
            capacity: 64,
            stripes: 4,
            ..JournalConfig::default()
        });
        for seq in 0..10_000u64 {
            assert_eq!(j.reserve(1), seq);
            j.record(rec(seq));
        }
        assert_eq!(j.capacity(), 64);
        assert_eq!(j.len(), 64);
        assert_eq!(j.evicted(), 10_000 - 64);
        // The newest records survive (per stripe).
        let snap = j.snapshot();
        assert!(snap.iter().all(|r| r.seq >= 10_000 - 64));
        // Heap accounting is bounded: ring capacity × struct size plus
        // live string bytes, with generous slack for VecDeque growth.
        let hb = j.heap_bytes();
        let per_record = size_of::<JournalRecord>() + 128;
        assert!(hb > 0 && hb < 4 * 64 * per_record, "heap_bytes {hb}");
        // And tracks eviction: equal to a fresh journal given the same
        // surviving records.
        let fresh = Journal::new(JournalConfig {
            capacity: 64,
            stripes: 4,
            ..JournalConfig::default()
        });
        for r in &snap {
            fresh.record(r.clone());
        }
        assert_eq!(fresh.len(), 64);
    }

    #[test]
    fn zero_capacity_journal_drops_but_counts() {
        let j = Journal::new(JournalConfig {
            capacity: 0,
            stripes: 4,
            ..JournalConfig::default()
        });
        let seq = j.reserve(3);
        assert_eq!(seq, 0);
        assert!(!j.sampled(0), "zero-capacity journal samples nothing");
        j.record(rec(0));
        assert_eq!(j.len(), 0);
        assert_eq!(j.evicted(), 1);
        assert_eq!(j.reserved(), 3);
    }

    #[test]
    fn snapshot_merges_stripes_in_sequence_order() {
        let j = Journal::new(JournalConfig {
            capacity: 32,
            stripes: 3,
            ..JournalConfig::default()
        });
        // Out-of-order arrival across stripes.
        for seq in [5u64, 0, 3, 1, 4, 2] {
            j.record(rec(seq));
        }
        let snap = j.snapshot();
        let seqs: Vec<u64> = snap.iter().map(|r| r.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2, 3, 4, 5]);
    }
}
