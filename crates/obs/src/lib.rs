//! **xcluster-obs** — the workspace's observability layer: a
//! process-wide metric registry, RAII span timers, leveled structured
//! logging, exporters, and a micro-benchmark harness. Dependency-free by
//! construction (the build environment is offline).
//!
//! # Registry
//!
//! Three metric kinds live in a global, lazily-initialized registry:
//!
//! * [`Counter`] — monotone event counts (`build.merges_applied`);
//! * [`Gauge`] — instantaneous values (`build.final_struct_bytes`);
//! * [`Histogram`] — power-of-two-bucketed distributions, used for
//!   latencies (`estimate.query_ns`) and sizes (`build.chunk_bytes_freed`).
//!
//! Handles are resolved by name once and cached by the instrumented
//! code (typically in a `LazyLock`); updates are relaxed atomics, so
//! instrumentation is cheap enough to stay on in release builds.
//!
//! ```
//! let merges = xcluster_obs::counter("doc.merges");
//! merges.inc();
//! assert_eq!(merges.get(), 1);
//! ```
//!
//! # Spans
//!
//! [`span::SpanTimer`] measures a scope into a histogram on drop. Spans
//! compile out with `--no-default-features` (the `spans` feature) and
//! can be disabled at runtime with [`set_enabled`] or
//! `XCLUSTER_OBS=off`; both make the constructor skip the clock read.
//!
//! # Logging
//!
//! `XCLUSTER_LOG=debug` (or [`log::set_level`]) controls the leveled
//! stderr logger; see [`log`] and the [`error!`]…[`trace!`] macros.
//!
//! # Export
//!
//! [`export::to_json`] and [`export::to_table`] serialize a registry
//! [`Snapshot`] for `BENCH_*.json` files and the `xcluster stats`
//! subcommand respectively.

pub mod bench;
pub mod export;
pub mod expose;
pub mod journal;
pub mod json;
pub mod log;
pub mod profile;
pub mod registry;
pub mod span;
pub mod trace;
pub mod window;

pub use journal::{Journal, JournalConfig, JournalRecord, Sampler};
pub use log::Level;
pub use profile::{PathEntry, Profile, ProfileGuard};
pub use registry::{
    counter, gauge, global, histogram, reset, snapshot, Counter, Gauge, Histogram,
    HistogramSnapshot, Registry, Snapshot,
};
pub use span::SpanTimer;
pub use trace::{Trace, TraceBuilder};
pub use window::{SlidingWindow, WindowConfig, WindowSnapshot};

use std::sync::atomic::{AtomicU8, Ordering};

/// 0 = disabled, 1 = enabled, 2 = uninitialized (read `XCLUSTER_OBS`).
static ENABLED: AtomicU8 = AtomicU8::new(2);

/// Whether span timing is enabled (counters and gauges always are).
/// Initialized from `XCLUSTER_OBS` (`off`/`0` disables) on first call.
#[inline]
pub fn enabled() -> bool {
    match ENABLED.load(Ordering::Relaxed) {
        0 => false,
        1 => true,
        _ => {
            let on = !matches!(
                std::env::var("XCLUSTER_OBS").as_deref(),
                Ok("off") | Ok("0") | Ok("false")
            );
            ENABLED.store(on as u8, Ordering::Relaxed);
            on
        }
    }
}

/// Runtime kill switch for span timing. Counters and gauges are
/// unaffected (they are already ~1 ns per update).
pub fn set_enabled(on: bool) {
    ENABLED.store(on as u8, Ordering::Relaxed);
}

/// Starts a span recording into the global histogram `<name>_ns`.
///
/// The `Arc` lookup happens per call — for hot paths, cache the
/// histogram handle and use [`SpanTimer::new`] directly.
pub fn span_named<'a>(name: &'static str, hist: &'a Histogram) -> SpanTimer<'a> {
    SpanTimer::new(name, hist)
}

/// Serializes tests across modules that flip the global enabled flag
/// (`cargo test` runs them in parallel).
#[cfg(test)]
pub(crate) static TEST_ENABLE_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_registry_is_shared() {
        counter("lib.test_counter").add(3);
        let snap = snapshot();
        assert!(snap
            .counters
            .iter()
            .any(|(n, v)| n == "lib.test_counter" && *v >= 3));
    }
}
