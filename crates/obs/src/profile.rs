//! Continuous call-path profiling: aggregate span nesting into a
//! cumulative flame profile cheap enough to leave on in production.
//!
//! # Model
//!
//! Each thread owns a *path tree*: one node per distinct call path
//! (sequence of span names from that thread's outermost open span down),
//! accumulating inclusive nanoseconds and invocation counts. Opening a
//! span walks one edge down (creating it on first sight); closing walks
//! back up and adds the span's measured duration to the path node.
//! There is no sampling and no unwinding — the "stack" is exactly the
//! nesting of [`crate::span::SpanTimer`]s and [`span`] guards, so the
//! profile is a complete, deterministic aggregation of every
//! instrumented scope.
//!
//! The per-thread table is bounded ([`set_max_paths`]): once full, new
//! paths are dropped and counted ([`Profile::dropped`]) instead of
//! growing without limit — re-entering an existing path is always free.
//! Thread-local trees merge into one global table when a thread exits
//! and whenever [`snapshot`] runs, so worker-pool spans (which root
//! their own per-thread stacks, standard flamegraph semantics) are
//! never lost.
//!
//! # Cost
//!
//! Profiling is off unless `XCLUSTER_PROFILE=1` (or [`set_profiling`]):
//! the off path is one relaxed atomic load per span. The on path is a
//! thread-local lookup plus a linear scan of the current node's
//! children — no locks, no allocation after first sight of a path. The
//! `obs_overhead` bench asserts the whole obs stack, profiler enabled,
//! stays under 3% on a real build.
//!
//! # Exports
//!
//! [`Profile::collapsed`] renders `path;leaf <excl_ns>` lines —
//! `flamegraph.pl`-compatible collapsed stacks weighted by *exclusive*
//! time (inclusive minus children), so the sum over any subtree equals
//! that subtree root's inclusive time. [`Profile::chrome_json`] renders
//! the aggregated tree as Chrome trace-event JSON (`chrome://tracing`,
//! Perfetto). Both orders are deterministic (path-lexicographic).
//!
//! ```
//! xcluster_obs::profile::set_profiling(true);
//! {
//!     let _outer = xcluster_obs::profile::span("doc.outer");
//!     let _inner = xcluster_obs::profile::span("doc.inner");
//! }
//! let p = xcluster_obs::profile::snapshot();
//! assert_eq!(p.total_ns("doc.inner"), p.find(&["doc.outer", "doc.inner"]).unwrap().0);
//! xcluster_obs::profile::set_profiling(false);
//! ```

use std::cell::RefCell;
use std::sync::atomic::{AtomicU8, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Default bound on distinct call paths per thread (and per merge into
/// the global table). Far above any real instrumentation density —
/// the build pipeline has a few dozen distinct paths.
pub const DEFAULT_MAX_PATHS: usize = 4096;

/// 0 = off, 1 = on, 2 = uninitialized (read `XCLUSTER_PROFILE`).
static PROFILING: AtomicU8 = AtomicU8::new(2);

/// Per-thread path-table bound (applies from the next node creation).
static MAX_PATHS: AtomicUsize = AtomicUsize::new(DEFAULT_MAX_PATHS);

/// Whether call-path profiling is collecting. Initialized from
/// `XCLUSTER_PROFILE` (`1`/`on`/`true` enables) on first call; forced
/// off while the global [`crate::enabled`] kill switch is off.
#[inline]
pub fn profiling_enabled() -> bool {
    let flag = match PROFILING.load(Ordering::Relaxed) {
        0 => false,
        1 => true,
        _ => {
            let on = matches!(
                std::env::var("XCLUSTER_PROFILE").as_deref(),
                Ok("1") | Ok("on") | Ok("true")
            );
            PROFILING.store(on as u8, Ordering::Relaxed);
            on
        }
    };
    flag && crate::enabled()
}

/// Runtime switch for call-path profiling (overrides the env default).
pub fn set_profiling(on: bool) {
    PROFILING.store(on as u8, Ordering::Relaxed);
}

/// Caps the number of distinct call paths tracked per thread; paths
/// beyond the cap are dropped and counted, never silently grown.
pub fn set_max_paths(n: usize) {
    MAX_PATHS.store(n.max(1), Ordering::Relaxed);
}

/// An open profiler frame, closed by [`exit`] with the measured
/// duration. `usize::MAX` marks a frame inside an overflowed subtree.
#[derive(Debug, Clone, Copy)]
pub struct FrameToken(usize);

const OVERFLOW: usize = usize::MAX;

/// One node of a path tree: a distinct call path ending in `name`.
#[derive(Debug, Clone)]
struct PathNode {
    name: &'static str,
    children: Vec<usize>,
    incl_ns: u64,
    count: u64,
}

impl PathNode {
    fn new(name: &'static str) -> PathNode {
        PathNode {
            name,
            children: Vec::new(),
            incl_ns: 0,
            count: 0,
        }
    }
}

/// A path tree plus its drop counter. Node 0 is the synthetic root.
#[derive(Debug)]
struct PathTree {
    nodes: Vec<PathNode>,
    dropped: u64,
}

impl PathTree {
    fn new() -> PathTree {
        PathTree {
            nodes: vec![PathNode::new("")],
            dropped: 0,
        }
    }

    /// The child of `at` named `name`, created on first sight; `None`
    /// when the table is at its bound.
    fn child(&mut self, at: usize, name: &'static str, max: usize) -> Option<usize> {
        if let Some(&c) = self.nodes[at]
            .children
            .iter()
            .find(|&&c| std::ptr::eq(self.nodes[c].name, name) || self.nodes[c].name == name)
        {
            return Some(c);
        }
        if self.nodes.len() >= max {
            return None;
        }
        let id = self.nodes.len();
        self.nodes.push(PathNode::new(name));
        self.nodes[at].children.push(id);
        Some(id)
    }

    /// Adds every counted path of `other` into this tree (path-wise).
    fn absorb(&mut self, other: &PathTree) {
        fn rec(dst: &mut PathTree, dst_at: usize, src: &PathTree, src_at: usize, max: usize) {
            for &sc in &src.nodes[src_at].children {
                let name = src.nodes[sc].name;
                match dst.child(dst_at, name, max) {
                    Some(dc) => {
                        dst.nodes[dc].incl_ns += src.nodes[sc].incl_ns;
                        dst.nodes[dc].count += src.nodes[sc].count;
                        rec(dst, dc, src, sc, max);
                    }
                    None => dst.dropped += src.nodes[sc].count.max(1),
                }
            }
        }
        let max = MAX_PATHS.load(Ordering::Relaxed).max(self.nodes.len());
        rec(self, 0, other, 0, max);
        self.dropped += other.dropped;
    }
}

/// Thread-local profiler state: the path tree plus the open-frame stack.
struct LocalProfile {
    tree: PathTree,
    stack: Vec<usize>,
    overflow_depth: usize,
}

impl LocalProfile {
    fn new() -> LocalProfile {
        LocalProfile {
            tree: PathTree::new(),
            stack: Vec::with_capacity(16),
            overflow_depth: 0,
        }
    }

    fn enter(&mut self, name: &'static str) -> FrameToken {
        if self.overflow_depth > 0 {
            self.overflow_depth += 1;
            return FrameToken(OVERFLOW);
        }
        let at = self.stack.last().copied().unwrap_or(0);
        match self.tree.child(at, name, MAX_PATHS.load(Ordering::Relaxed)) {
            Some(id) => {
                self.stack.push(id);
                FrameToken(id)
            }
            None => {
                self.tree.dropped += 1;
                self.overflow_depth = 1;
                FrameToken(OVERFLOW)
            }
        }
    }

    fn exit(&mut self, token: FrameToken, dur_ns: u64) {
        if token.0 == OVERFLOW {
            self.overflow_depth = self.overflow_depth.saturating_sub(1);
            return;
        }
        // Tolerate unbalanced exits (a guard leaked across an early
        // return path): pop until the frame is found, or ignore a token
        // whose frame is no longer on the stack (e.g. after `reset`).
        if let Some(pos) = self.stack.iter().rposition(|&id| id == token.0) {
            self.stack.truncate(pos);
            let node = &mut self.tree.nodes[token.0];
            node.incl_ns += dur_ns;
            node.count += 1;
        }
    }

    /// Moves this thread's accumulated counts into the global table,
    /// keeping the local tree structure (open frames stay valid).
    fn flush(&mut self) {
        let has_counts =
            self.tree.dropped > 0 || self.tree.nodes.iter().any(|n| n.count > 0 || n.incl_ns > 0);
        if !has_counts {
            return;
        }
        with_global(|g| g.absorb(&self.tree));
        for n in &mut self.tree.nodes {
            n.incl_ns = 0;
            n.count = 0;
        }
        self.tree.dropped = 0;
    }
}

impl Drop for LocalProfile {
    fn drop(&mut self) {
        self.flush();
    }
}

thread_local! {
    static LOCAL: RefCell<LocalProfile> = RefCell::new(LocalProfile::new());
}

static GLOBAL: Mutex<PathTree> = Mutex::new(PathTree {
    nodes: Vec::new(),
    dropped: 0,
});

fn with_global<R>(f: impl FnOnce(&mut PathTree) -> R) -> R {
    // Resilient to poisoning: flushes run from thread-exit destructors,
    // where a second panic would abort the process.
    let mut g = GLOBAL.lock().unwrap_or_else(|e| e.into_inner());
    if g.nodes.is_empty() {
        g.nodes.push(PathNode::new(""));
    }
    f(&mut g)
}

/// Opens a frame on the current thread's path stack. Callers must pair
/// it with [`exit`] carrying the frame's measured duration;
/// [`crate::span::SpanTimer`] does this with the *same* duration it
/// records into its histogram, so profile and histogram totals
/// reconcile exactly. Returns `None` when profiling is off.
#[inline]
pub fn enter(name: &'static str) -> Option<FrameToken> {
    if !profiling_enabled() {
        return None;
    }
    LOCAL.try_with(|l| l.borrow_mut().enter(name)).ok()
}

/// Closes a frame opened by [`enter`], attributing `dur_ns` inclusive
/// nanoseconds to its call path.
#[inline]
pub fn exit(token: FrameToken, dur_ns: u64) {
    let _ = LOCAL.try_with(|l| l.borrow_mut().exit(token, dur_ns));
}

/// A self-timing RAII profiler frame for scopes that don't carry a
/// histogram (use [`crate::span::SpanTimer`] when they do — it feeds
/// the profiler automatically). Inert when profiling is off.
#[must_use = "a profile span measures until it is dropped"]
#[derive(Debug)]
pub struct ProfileGuard {
    frame: Option<(FrameToken, Instant)>,
}

impl Drop for ProfileGuard {
    fn drop(&mut self) {
        if let Some((token, start)) = self.frame.take() {
            exit(token, start.elapsed().as_nanos() as u64);
        }
    }
}

/// Opens a self-timing profiler frame named `name`.
#[inline]
pub fn span(name: &'static str) -> ProfileGuard {
    ProfileGuard {
        frame: enter(name).map(|t| (t, Instant::now())),
    }
}

/// One aggregated call path: names from the outermost span down,
/// inclusive / exclusive nanoseconds, and invocation count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathEntry {
    /// Span names, outermost first.
    pub path: Vec<&'static str>,
    /// Total nanoseconds spent with this exact path open.
    pub incl_ns: u64,
    /// Inclusive minus the children's inclusive time (self time).
    pub excl_ns: u64,
    /// Times this exact path was closed.
    pub count: u64,
}

/// An immutable aggregated flame profile (see [`snapshot`]).
#[derive(Debug, Clone, Default)]
pub struct Profile {
    entries: Vec<PathEntry>,
    dropped: u64,
}

impl Profile {
    /// All call paths, path-lexicographic, outermost names first.
    pub fn entries(&self) -> &[PathEntry] {
        &self.entries
    }

    /// Spans dropped because the bounded path table was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Whether the profile holds no paths.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// `(incl_ns, count)` of one exact path, if present.
    pub fn find(&self, path: &[&str]) -> Option<(u64, u64)> {
        self.entries
            .iter()
            .find(|e| e.path == path)
            .map(|e| (e.incl_ns, e.count))
    }

    /// Total inclusive nanoseconds across every path *ending* in
    /// `name` — the profile's answer to "how long did `name` run",
    /// regardless of where it was called from.
    pub fn total_ns(&self, name: &str) -> u64 {
        self.entries
            .iter()
            .filter(|e| e.path.last() == Some(&name))
            .map(|e| e.incl_ns)
            .sum()
    }

    /// Collapsed-stack export: one `a;b;c <excl_ns>` line per path with
    /// nonzero exclusive time, path-lexicographic — pipe into
    /// `flamegraph.pl` for an SVG. Summing the lines under any frame
    /// reproduces that frame's inclusive time.
    pub fn collapsed(&self) -> String {
        let mut out = String::new();
        for e in &self.entries {
            if e.excl_ns == 0 {
                continue;
            }
            out.push_str(&e.path.join(";"));
            out.push(' ');
            out.push_str(&e.excl_ns.to_string());
            out.push('\n');
        }
        out
    }

    /// Chrome trace-event JSON of the aggregated tree: one complete
    /// (`ph:"X"`) event per path, children laid out inside their
    /// parent's extent in path order. Timestamps are synthetic (this is
    /// an aggregation, not a timeline); durations are real.
    pub fn chrome_json(&self) -> String {
        let mut events = Vec::new();
        // Entries are path-lexicographic, so a stack of (path_len,
        // next_free_ts) reproduces the tree shape in one pass.
        let mut cursor: Vec<(usize, u64)> = vec![(0, 0)];
        for e in &self.entries {
            while cursor
                .last()
                .is_some_and(|&(depth, _)| depth >= e.path.len())
            {
                cursor.pop();
            }
            let start = cursor.last().map_or(0, |&(_, ts)| ts);
            if let Some(top) = cursor.last_mut() {
                top.1 = start + e.incl_ns;
            }
            cursor.push((e.path.len(), start));
            let name = e.path.last().copied().unwrap_or("");
            events.push(format!(
                "{{\"name\":\"{}\",\"ph\":\"X\",\"pid\":1,\"tid\":1,\"ts\":{:.3},\"dur\":{:.3},\
                 \"args\":{{\"count\":{},\"excl_ns\":{}}}}}",
                crate::export::esc(name),
                start as f64 / 1_000.0,
                e.incl_ns as f64 / 1_000.0,
                e.count,
                e.excl_ns,
            ));
        }
        format!("{{\"traceEvents\":[{}]}}", events.join(","))
    }
}

/// Flushes the calling thread's tree and snapshots the merged global
/// profile. Threads that exited are already merged; other live threads'
/// unflushed counts appear once they flush (worker-pool threads flush
/// on exit, before their `chunked_map` scope returns).
pub fn snapshot() -> Profile {
    let _ = LOCAL.try_with(|l| l.borrow_mut().flush());
    with_global(|g| {
        let mut entries = Vec::new();
        let mut path = Vec::new();
        fn rec(
            g: &PathTree,
            at: usize,
            path: &mut Vec<&'static str>,
            entries: &mut Vec<PathEntry>,
        ) {
            for &c in &g.nodes[at].children {
                let node = &g.nodes[c];
                path.push(node.name);
                let child_incl: u64 = node.children.iter().map(|&cc| g.nodes[cc].incl_ns).sum();
                entries.push(PathEntry {
                    path: path.clone(),
                    incl_ns: node.incl_ns,
                    excl_ns: node.incl_ns.saturating_sub(child_incl),
                    count: node.count,
                });
                rec(g, c, path, entries);
                path.pop();
            }
        }
        rec(g, 0, &mut path, &mut entries);
        entries.sort_by(|a, b| a.path.cmp(&b.path));
        Profile {
            entries,
            dropped: g.dropped,
        }
    })
}

/// Clears the global table and the calling thread's accumulated counts
/// and open-frame stack. Call between profiled runs (with no spans
/// open) to profile them in isolation.
pub fn reset() {
    let _ = LOCAL.try_with(|l| {
        let mut l = l.borrow_mut();
        l.tree = PathTree::new();
        l.stack.clear();
        l.overflow_depth = 0;
    });
    with_global(|g| {
        g.nodes.clear();
        g.nodes.push(PathNode::new(""));
        g.dropped = 0;
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TEST_ENABLE_LOCK as ENABLE_FLAG;

    /// Profiler tests share the global table with each other (and with
    /// any other test that flips the enable flags), so they serialize
    /// on the crate-wide lock and reset around themselves.
    fn with_profiler(f: impl FnOnce()) {
        let _g = ENABLE_FLAG.lock().unwrap();
        crate::set_enabled(true);
        set_profiling(true);
        reset();
        f();
        set_profiling(false);
        reset();
    }

    #[test]
    fn nesting_builds_call_paths() {
        with_profiler(|| {
            {
                let _a = span("a");
                {
                    let _b = span("b");
                    std::thread::sleep(std::time::Duration::from_millis(1));
                }
                let _b2 = span("b");
            }
            let _top = span("b");
            drop(_top);
            let p = snapshot();
            let paths: Vec<Vec<&str>> = p.entries().iter().map(|e| e.path.clone()).collect();
            assert_eq!(paths, vec![vec!["a"], vec!["a", "b"], vec!["b"]]);
            let (ab_incl, ab_count) = p.find(&["a", "b"]).unwrap();
            assert_eq!(ab_count, 2, "two a→b invocations aggregate to one path");
            assert!(ab_incl >= 1_000_000);
            let (a_incl, a_count) = p.find(&["a"]).unwrap();
            assert_eq!(a_count, 1);
            assert!(a_incl >= ab_incl, "parent includes child time");
            // Exclusive = inclusive − children.
            let a = &p.entries()[0];
            assert_eq!(a.excl_ns, a.incl_ns - ab_incl);
            assert_eq!(p.total_ns("b"), ab_incl + p.find(&["b"]).unwrap().0);
        });
    }

    #[test]
    fn collapsed_lines_sum_to_inclusive_roots() {
        with_profiler(|| {
            {
                let _a = span("root");
                {
                    let _b = span("left");
                    std::thread::sleep(std::time::Duration::from_millis(1));
                }
                let _c = span("right");
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
            let p = snapshot();
            let collapsed = p.collapsed();
            let mut total = 0u64;
            for line in collapsed.lines() {
                let (path, ns) = line.rsplit_once(' ').unwrap();
                assert!(path.starts_with("root"), "line {line:?}");
                total += ns.parse::<u64>().unwrap();
            }
            let (root_incl, _) = p.find(&["root"]).unwrap();
            assert_eq!(total, root_incl, "exclusive weights partition the root");
            // Export is deterministic.
            assert_eq!(collapsed, snapshot().collapsed());
        });
    }

    #[test]
    fn chrome_export_is_valid_json_with_one_event_per_path() {
        with_profiler(|| {
            {
                let _a = span("outer");
                let _b = span("inner \"q\"");
            }
            let p = snapshot();
            let v = crate::json::parse(&p.chrome_json()).expect("valid JSON");
            let events = v.get("traceEvents").unwrap();
            let n = match events {
                crate::json::JsonValue::Arr(a) => a.len(),
                _ => panic!("traceEvents not an array"),
            };
            assert_eq!(n, p.entries().len());
        });
    }

    #[test]
    fn bounded_table_drops_and_counts_overflow() {
        with_profiler(|| {
            set_max_paths(3); // root + 2 distinct paths
            static NAMES: [&str; 8] = ["p0", "p1", "p2", "p3", "p4", "p5", "p6", "p7"];
            for name in NAMES {
                let _g = span(name);
                // Nested frames inside an overflowed subtree must pair
                // up without corrupting the stack.
                let _inner = span("p0");
            }
            let p = snapshot();
            set_max_paths(DEFAULT_MAX_PATHS);
            assert!(p.dropped() > 0, "overflow must be counted");
            assert!(p.entries().len() <= 4);
            // Re-entry into a retained path still counts.
            assert!(p.find(&["p0"]).unwrap().1 >= 1);
        });
    }

    #[test]
    fn worker_threads_merge_into_the_global_profile() {
        with_profiler(|| {
            std::thread::scope(|s| {
                for _ in 0..4 {
                    s.spawn(|| {
                        let _g = span("worker");
                        std::thread::sleep(std::time::Duration::from_millis(1));
                    });
                }
            });
            let p = snapshot();
            let (incl, count) = p.find(&["worker"]).unwrap();
            assert_eq!(count, 4, "every thread's spans survive thread exit");
            assert!(incl >= 4_000_000);
        });
    }

    #[test]
    fn disabled_profiling_records_nothing() {
        let _g = ENABLE_FLAG.lock().unwrap();
        crate::set_enabled(true);
        set_profiling(false);
        reset();
        {
            let _a = span("off");
        }
        assert!(snapshot().is_empty());
        // The kill switch forces profiling off even when requested.
        set_profiling(true);
        crate::set_enabled(false);
        {
            let _a = span("killed");
        }
        assert!(snapshot().is_empty());
        crate::set_enabled(true);
        set_profiling(false);
        reset();
    }
}
