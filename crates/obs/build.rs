//! Embeds the build's identity (compiler version, git commit) for the
//! `xcluster_build_info` exposition family. Everything degrades to
//! "unknown" — offline builds, exported tarballs, and vendored checkouts
//! must compile identically.

use std::process::Command;

fn capture(cmd: &str, args: &[&str]) -> Option<String> {
    let out = Command::new(cmd).args(args).output().ok()?;
    if !out.status.success() {
        return None;
    }
    let text = String::from_utf8(out.stdout).ok()?;
    let line = text.lines().next()?.trim();
    if line.is_empty() {
        None
    } else {
        Some(line.to_string())
    }
}

fn main() {
    println!("cargo:rerun-if-changed=build.rs");
    // Re-embed the commit when HEAD moves (path is relative to this
    // crate's manifest directory; absent outside a git checkout).
    println!("cargo:rerun-if-changed=../../.git/HEAD");

    let rustc = std::env::var("RUSTC").unwrap_or_else(|_| "rustc".to_string());
    if let Some(v) = capture(&rustc, &["--version"]) {
        println!("cargo:rustc-env=XCLUSTER_RUSTC_VERSION={v}");
    }
    if let Some(sha) = capture("git", &["rev-parse", "--short=12", "HEAD"]) {
        println!("cargo:rustc-env=XCLUSTER_GIT_SHA={sha}");
    }
}
