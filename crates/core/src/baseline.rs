//! Baselines for the experimental comparison (paper Section 6.2).
//!
//! * [`tag_synopsis`] — the smallest possible structural summary, which
//!   clusters elements solely by tag (the paper's 0 KB structural-budget
//!   point).
//! * [`GlobalMetricBuilder`] — a TreeSketch-style construction that ranks
//!   merges by a **global** structural clustering error measured against
//!   the detailed count-stable reference partition (each cluster tracks
//!   its constituent reference groups, and a merge is charged the exact
//!   increase in total squared centroid distance). This is the metric the
//!   paper contrasts with its localized Δ: equally effective for
//!   structural queries but requiring the full reference summary in
//!   memory throughout construction.

use crate::merge::{apply_merge, merge_struct_bytes_saved};
use crate::synopsis::{Synopsis, SynopsisNode, SynopsisNodeId};
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashMap};
use xcluster_xml::{ValueType, XmlTree};

/// Builds the tag-only synopsis directly from a document: one cluster per
/// `(label, value type)` class.
pub fn tag_synopsis(tree: &XmlTree) -> Synopsis {
    let mut class_of: HashMap<(xcluster_xml::Symbol, ValueType), usize> = HashMap::new();
    let mut counts: Vec<f64> = Vec::new();
    let mut classes: Vec<(xcluster_xml::Symbol, ValueType)> = Vec::new();
    let mut elem_class: Vec<usize> = Vec::with_capacity(tree.len());
    for n in tree.all_nodes() {
        let key = (tree.label(n), tree.value_type(n));
        let c = *class_of.entry(key).or_insert_with(|| {
            counts.push(0.0);
            classes.push(key);
            counts.len() - 1
        });
        counts[c] += 1.0;
        elem_class.push(c);
    }
    let root_class = elem_class[tree.root().index()];
    let mut s = Synopsis::new(
        tree.labels().clone(),
        tree.label(tree.root()),
        tree.max_depth(),
    );
    s.set_terms(tree.terms().clone());
    let mut node_of = vec![usize::MAX; classes.len()];
    node_of[root_class] = s.root();
    s.node_mut(s.root()).count = counts[root_class];
    for (c, &(label, vtype)) in classes.iter().enumerate() {
        if c == root_class {
            continue;
        }
        node_of[c] = s.push_node(SynopsisNode {
            label,
            vtype,
            count: counts[c],
            children: Vec::new(),
            parents: Vec::new(),
            vsumm: None,
            alive: true,
            version: 0,
        });
    }
    let mut edge_totals: HashMap<(usize, usize), f64> = HashMap::new();
    for n in tree.all_nodes() {
        let cp = elem_class[n.index()];
        for child in tree.children(n) {
            *edge_totals
                .entry((cp, elem_class[child.index()]))
                .or_insert(0.0) += 1.0;
        }
    }
    for ((cp, cc), total) in edge_totals {
        s.add_edge(node_of[cp], node_of[cc], total / counts[cp]);
    }
    debug_assert_eq!(s.check_consistency(), Ok(()));
    s
}

/// One reference cluster tracked inside a current cluster: its element
/// weight and its exact per-target child counts (keyed by *current*
/// synopsis node ids, remapped as merges proceed).
#[derive(Debug, Clone)]
struct Group {
    weight: f64,
    counts: HashMap<SynopsisNodeId, f64>,
}

/// TreeSketch-style builder ranking merges by the global clustering
/// error against the reference partition.
pub struct GlobalMetricBuilder {
    /// Per live node: the reference groups it absorbed.
    groups: HashMap<SynopsisNodeId, Vec<Group>>,
}

impl GlobalMetricBuilder {
    /// Wraps a *reference* synopsis: every node starts as one group.
    pub fn new(s: &Synopsis) -> Self {
        let mut groups = HashMap::new();
        for id in s.live_nodes() {
            let n = s.node(id);
            groups.insert(
                id,
                vec![Group {
                    weight: n.count,
                    counts: n.children.iter().copied().collect(),
                }],
            );
        }
        GlobalMetricBuilder { groups }
    }

    /// Memory footprint of the tracked reference information (the cost
    /// the paper's localized metric avoids) — number of tracked
    /// (group, target) count entries.
    pub fn tracked_entries(&self) -> usize {
        self.groups
            .values()
            .flat_map(|gs| gs.iter())
            .map(|g| g.counts.len() + 1)
            .sum()
    }

    /// Squared centroid distance of one cluster's groups.
    fn cluster_error(groups: &[Group]) -> f64 {
        let total_w: f64 = groups.iter().map(|g| g.weight).sum();
        if total_w == 0.0 {
            return 0.0;
        }
        // Centroid over the union of targets.
        let mut centroid: HashMap<SynopsisNodeId, f64> = HashMap::new();
        for g in groups {
            for (&t, &c) in &g.counts {
                *centroid.entry(t).or_insert(0.0) += g.weight * c;
            }
        }
        for c in centroid.values_mut() {
            *c /= total_w;
        }
        let mut err = 0.0;
        for g in groups {
            for (&t, &cen) in &centroid {
                let gc = g.counts.get(&t).copied().unwrap_or(0.0);
                err += g.weight * (gc - cen) * (gc - cen);
            }
        }
        err
    }

    fn remapped(
        groups: &[Group],
        u: SynopsisNodeId,
        v: SynopsisNodeId,
        w: SynopsisNodeId,
    ) -> Vec<Group> {
        groups
            .iter()
            .map(|g| {
                let mut counts: HashMap<SynopsisNodeId, f64> = HashMap::new();
                for (&t, &c) in &g.counts {
                    let t = if t == u || t == v { w } else { t };
                    *counts.entry(t).or_insert(0.0) += c;
                }
                Group {
                    weight: g.weight,
                    counts,
                }
            })
            .collect()
    }

    /// The exact global-error increase of `merge(S, u, v)`: the merged
    /// cluster's error minus the inputs' errors, plus the error shifts in
    /// every parent whose child targets collapse.
    pub fn merge_cost(&self, s: &Synopsis, u: SynopsisNodeId, v: SynopsisNodeId) -> f64 {
        let w = usize::MAX; // placeholder id for remapping
        let mut merged = Self::remapped(&self.groups[&u], u, v, w);
        merged.extend(Self::remapped(&self.groups[&v], u, v, w));
        let after_w = Self::cluster_error(&merged);
        let before_w =
            Self::cluster_error(&self.groups[&u]) + Self::cluster_error(&self.groups[&v]);
        let mut cost = after_w - before_w;
        // Parents of u/v whose groups see the target collapse.
        let mut parents: Vec<SynopsisNodeId> = s
            .node(u)
            .parents
            .iter()
            .chain(s.node(v).parents.iter())
            .copied()
            .filter(|&p| p != u && p != v)
            .collect();
        parents.sort_unstable();
        parents.dedup();
        for p in parents {
            let gs = &self.groups[&p];
            let before = Self::cluster_error(gs);
            let after = Self::cluster_error(&Self::remapped(gs, u, v, w));
            cost += after - before;
        }
        cost.max(0.0)
    }

    /// Applies the merge to the synopsis and updates the tracked groups.
    pub fn apply(
        &mut self,
        s: &mut Synopsis,
        u: SynopsisNodeId,
        v: SynopsisNodeId,
    ) -> SynopsisNodeId {
        let parents: Vec<SynopsisNodeId> = s
            .node(u)
            .parents
            .iter()
            .chain(s.node(v).parents.iter())
            .copied()
            .filter(|&p| p != u && p != v)
            .collect();
        let w = apply_merge(s, u, v);
        let mut merged = Self::remapped(&self.groups[&u], u, v, w);
        merged.extend(Self::remapped(&self.groups[&v], u, v, w));
        self.groups.remove(&u);
        self.groups.remove(&v);
        self.groups.insert(w, merged);
        for p in parents {
            if let Some(gs) = self.groups.remove(&p) {
                self.groups.insert(p, Self::remapped(&gs, u, v, w));
            }
        }
        w
    }
}

struct GlobalEntry {
    marginal: f64,
    u: SynopsisNodeId,
    v: SynopsisNodeId,
    versions: (u32, u32),
}

impl PartialEq for GlobalEntry {
    fn eq(&self, other: &Self) -> bool {
        self.marginal == other.marginal
    }
}
impl Eq for GlobalEntry {}
impl PartialOrd for GlobalEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for GlobalEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        other.marginal.total_cmp(&self.marginal)
    }
}

/// Greedy structural construction under the global metric: merges until
/// the structural footprint fits `b_str` bytes. Returns the synopsis and
/// the peak number of tracked reference entries (the memory-overhead
/// statistic of the Section 6.2 discussion).
pub fn global_metric_build(mut s: Synopsis, b_str: usize) -> (Synopsis, usize) {
    let mut builder = GlobalMetricBuilder::new(&s);
    let mut peak = builder.tracked_entries();
    loop {
        if s.structural_bytes() <= b_str {
            break;
        }
        // Rebuild the candidate heap over all compatible pairs.
        let mut heap: BinaryHeap<GlobalEntry> = BinaryHeap::new();
        for (_, ids) in s.nodes_by_label_type() {
            for (i, &u) in ids.iter().enumerate() {
                for &v in &ids[i + 1..] {
                    let cost = builder.merge_cost(&s, u, v);
                    let saved = merge_struct_bytes_saved(&s, u, v).max(1);
                    heap.push(GlobalEntry {
                        marginal: cost / saved as f64,
                        u,
                        v,
                        versions: (s.node(u).version, s.node(v).version),
                    });
                }
            }
        }
        if heap.is_empty() {
            break;
        }
        let mut merged_any = false;
        while s.structural_bytes() > b_str {
            let Some(e) = heap.pop() else { break };
            if !s.node(e.u).alive || !s.node(e.v).alive {
                continue;
            }
            if s.node(e.u).version != e.versions.0 || s.node(e.v).version != e.versions.1 {
                let cost = builder.merge_cost(&s, e.u, e.v);
                let saved = merge_struct_bytes_saved(&s, e.u, e.v).max(1);
                heap.push(GlobalEntry {
                    marginal: cost / saved as f64,
                    u: e.u,
                    v: e.v,
                    versions: (s.node(e.u).version, s.node(e.v).version),
                });
                continue;
            }
            builder.apply(&mut s, e.u, e.v);
            merged_any = true;
            peak = peak.max(builder.tracked_entries());
        }
        if !merged_any {
            break;
        }
    }
    (s, peak)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::{reference_synopsis, ReferenceConfig};
    use xcluster_xml::parse;

    #[test]
    fn tag_synopsis_one_node_per_label() {
        let t = parse("<r><a><x>1</x></a><a><x>2</x><x>3</x></a><b><x>abc</x></b></r>").unwrap();
        let s = tag_synopsis(&t);
        // r, a, b, x(numeric), x(string)
        assert_eq!(s.num_nodes(), 5);
        let a = s.live_nodes().find(|&i| s.label_str(i) == "a").unwrap();
        assert_eq!(s.node(a).count, 2.0);
        // a has 3 numeric x children over 2 a's = 1.5 avg.
        let x = s
            .live_nodes()
            .find(|&i| s.label_str(i) == "x" && s.node(i).vtype == ValueType::Numeric)
            .unwrap();
        assert_eq!(s.node(a).edge_count(x), 1.5);
    }

    #[test]
    fn tag_synopsis_matches_zero_budget_build() {
        let d = xcluster_datagen::imdb::generate(&xcluster_datagen::imdb::ImdbConfig {
            num_movies: 40,
            seed: 17,
        });
        let tag = tag_synopsis(&d.tree);
        let reference = reference_synopsis(
            &d.tree,
            &ReferenceConfig {
                value_paths: Some(vec![]),
                ..ReferenceConfig::default()
            },
        );
        let built = crate::build::build_synopsis(
            reference,
            &crate::build::BuildConfig {
                b_str: 0,
                b_val: 0,
                ..crate::build::BuildConfig::default()
            },
        );
        assert_eq!(tag.num_nodes(), built.num_nodes());
        // Structural estimates agree: centroids are averages either way.
        let q = xcluster_query::parse_twig("//movie/cast/actor", d.tree.terms()).unwrap();
        let a = crate::estimate::estimate(&tag, &q);
        let b = crate::estimate::estimate(&built, &q);
        assert!((a - b).abs() / a.max(1.0) < 1e-6, "{a} vs {b}");
    }

    #[test]
    fn global_cost_zero_for_identical_clusters() {
        let t = parse("<r><a><x>1</x></a><a><x>2</x></a></r>").unwrap();
        // Force distinct clusters by path: same structure → reference
        // merges them already; craft via b: two a-clusters need different
        // ancestors, so use sibling wrappers.
        let t2 = parse("<r><w1><a><x>1</x></a></w1><w2><a><x>2</x></a></w2></r>").unwrap();
        let _ = t;
        let s = reference_synopsis(&t2, &ReferenceConfig::default());
        let builder = GlobalMetricBuilder::new(&s);
        let a_nodes: Vec<_> = s.live_nodes().filter(|&i| s.label_str(i) == "a").collect();
        assert_eq!(a_nodes.len(), 2);
        // Both a-clusters have one x-child each — but different x
        // *clusters* (different paths), so the merge has a real cost.
        let cost = builder.merge_cost(&s, a_nodes[0], a_nodes[1]);
        assert!(cost >= 0.0);
    }

    #[test]
    fn global_build_reaches_budget() {
        let d = xcluster_datagen::imdb::generate(&xcluster_datagen::imdb::ImdbConfig {
            num_movies: 50,
            seed: 19,
        });
        let s = reference_synopsis(
            &d.tree,
            &ReferenceConfig {
                value_paths: Some(vec![]),
                ..ReferenceConfig::default()
            },
        );
        let target = s.structural_bytes() / 3;
        let (built, peak) = global_metric_build(s, target);
        assert!(built.structural_bytes() <= target);
        assert!(peak > 0);
        built.check_consistency().unwrap();
    }

    #[test]
    fn global_build_preserves_counts() {
        let d = xcluster_datagen::imdb::generate(&xcluster_datagen::imdb::ImdbConfig {
            num_movies: 30,
            seed: 23,
        });
        let s = reference_synopsis(
            &d.tree,
            &ReferenceConfig {
                value_paths: Some(vec![]),
                ..ReferenceConfig::default()
            },
        );
        let before: f64 = s.live_nodes().map(|i| s.node(i).count).sum();
        let (built, _) = global_metric_build(s, 512);
        let after: f64 = built.live_nodes().map(|i| built.node(i).count).sum();
        assert!((before - after).abs() < 1e-6);
    }
}
