//! The node-merge operation `merge(S, u, v)` (paper Section 4.1,
//! Figure 4).
//!
//! Merging replaces two label/type-compatible clusters `u`, `v` with a
//! single cluster `w` whose extent is the union:
//!
//! * `count(w) = |u| + |v|`;
//! * child edges keep average-count semantics:
//!   `count(w, c) = (|u|·count(u, c) + |v|·count(v, c)) / |w|`;
//! * parent edges sum: `count(p, w) = count(p, u) + count(p, v)`;
//! * `vsumm(w) = f(vsumm(u), vsumm(v))` — histogram bucket-align-and-sum,
//!   PST substring union, or weighted term-centroid combination.
//!
//! Edges between `u` and `v` (or self-edges) become self-edges of `w`,
//! which is how synopses of recursive data acquire cycles.

use crate::synopsis::{Synopsis, SynopsisNode, SynopsisNodeId};
use std::collections::BTreeMap;

/// Upper bound on a fused value summary. Without it, long merge chains
/// (e.g. collapsing hundreds of same-label clusters toward the tag
/// partition) grow PST/term summaries toward the union of all inputs,
/// making each subsequent fusion and Δ evaluation linear in the chain so
/// far. Fused summaries above the cap are immediately re-compressed with
/// the error-driven operators; phase 2 re-budgets them anyway.
pub const FUSED_SUMMARY_CAP: usize = 2 * 1024;

/// Applies `merge(S, u, v)` in place; returns the id of the merged node.
///
/// # Panics
/// Panics if `u == v`, either node is dead, or labels/types differ.
pub fn apply_merge(s: &mut Synopsis, u: SynopsisNodeId, v: SynopsisNodeId) -> SynopsisNodeId {
    let _prof = xcluster_obs::profile::span("apply_merge");
    assert_ne!(u, v, "cannot merge a node with itself");
    let (nu, nv) = (s.node(u), s.node(v));
    assert!(nu.alive && nv.alive, "merge of dead node");
    assert_eq!(nu.label, nv.label, "merge requires equal labels");
    assert_eq!(nu.vtype, nv.vtype, "merge requires equal value types");

    let cu = nu.count;
    let cv = nv.count;
    let cw = cu + cv;
    let w = s.arena_len(); // id the merged node will get

    // Child edges: weighted average over the union, remapping u/v → w.
    let mut child_counts: BTreeMap<SynopsisNodeId, f64> = BTreeMap::new();
    for &(t, c) in &s.node(u).children {
        let t = if t == u || t == v { w } else { t };
        *child_counts.entry(t).or_insert(0.0) += cu * c;
    }
    for &(t, c) in &s.node(v).children {
        let t = if t == u || t == v { w } else { t };
        *child_counts.entry(t).or_insert(0.0) += cv * c;
    }
    // `cu * avg` can land 1 ulp off the integer pair total it stands
    // for; snapping back keeps every stored average exactly
    // `pair_total / count`, the canonical form incremental maintenance
    // (`delta::apply_delta`) reconstructs integer totals through.
    let children: Vec<(SynopsisNodeId, f64)> = child_counts
        .into_iter()
        .map(|(t, total)| (t, total.round() / cw))
        .collect();

    // Parent edges: summed counts, remapping u/v → w.
    let mut parent_ids: Vec<SynopsisNodeId> = s
        .node(u)
        .parents
        .iter()
        .chain(s.node(v).parents.iter())
        .copied()
        .map(|p| if p == u || p == v { w } else { p })
        .collect();
    parent_ids.sort_unstable();
    parent_ids.dedup();

    let vsumm = match (&s.node(u).vsumm, &s.node(v).vsumm) {
        (Some(a), Some(b)) => {
            let mut fused = a.fuse(b);
            if fused.size_bytes() > FUSED_SUMMARY_CAP {
                fused.compress_to_bytes(FUSED_SUMMARY_CAP);
            }
            Some(fused)
        }
        (Some(a), None) => Some(a.clone()),
        (None, Some(b)) => Some(b.clone()),
        (None, None) => None,
    };
    let label = s.node(u).label;
    let vtype = s.node(u).vtype;

    // Retire u and v.
    s.node_mut(u).alive = false;
    s.node_mut(v).alive = false;

    let w_id = s.push_node(SynopsisNode {
        label,
        vtype,
        count: cw,
        children,
        parents: parent_ids.clone(),
        vsumm,
        alive: true,
        version: 0,
    });
    debug_assert_eq!(w_id, w);

    // Rewire external parents: drop edges to u/v, add the summed edge to w.
    for &p in &parent_ids {
        if p == w {
            continue; // self-edge already in w's child list
        }
        let mut to_w = 0.0;
        {
            let pn = s.node_mut(p);
            pn.children.retain(|&(t, c)| {
                if t == u || t == v {
                    to_w += c;
                    false
                } else {
                    true
                }
            });
            match pn.children.binary_search_by_key(&w, |&(t, _)| t) {
                Ok(i) => pn.children[i].1 += to_w,
                Err(i) => pn.children.insert(i, (w, to_w)),
            }
        }
    }
    // Rewire children's parent lists.
    let targets: Vec<SynopsisNodeId> = s.node(w).children.iter().map(|&(t, _)| t).collect();
    for t in targets {
        let tp = &mut s.node_mut(t).parents;
        tp.retain(|&p| p != u && p != v);
        if let Err(i) = tp.binary_search(&w) {
            tp.insert(i, w);
        }
    }
    // External parents were rewired above; u/v's own adjacency dies with
    // them. (Full-graph consistency is debug-checked once per build, not
    // per merge — the check is linear in the synopsis.)
    w
}

/// Exact structural bytes a `merge(S, u, v)` would save: one node header
/// plus every deduplicated edge (shared child targets after u/v→w
/// remapping, and shared parents whose two edges collapse into one).
pub fn merge_struct_bytes_saved(s: &Synopsis, u: SynopsisNodeId, v: SynopsisNodeId) -> usize {
    use xcluster_summaries::footprint::{SYNOPSIS_EDGE_BYTES, SYNOPSIS_NODE_BYTES};
    let remap = |t: SynopsisNodeId| if t == u || t == v { usize::MAX } else { t };
    let mut targets: Vec<SynopsisNodeId> = s
        .node(u)
        .children
        .iter()
        .chain(s.node(v).children.iter())
        .map(|&(t, _)| remap(t))
        .collect();
    let before_children = targets.len();
    targets.sort_unstable();
    targets.dedup();
    let saved_child_edges = before_children - targets.len();
    // Parents pointing at both u and v merge their two edges into one.
    let saved_parent_edges = s
        .node(u)
        .parents
        .iter()
        .filter(|&&p| p != u && p != v && s.node(v).parents.binary_search(&p).is_ok())
        .count();
    SYNOPSIS_NODE_BYTES + (saved_child_edges + saved_parent_edges) * SYNOPSIS_EDGE_BYTES
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synopsis::SynopsisNode;
    use xcluster_summaries::{ValuePredicate, ValueSummary};
    use xcluster_xml::{Interner, Value, ValueType};

    /// root → a1 (3 elements, 2 b-children each), a2 (1 element, 4
    /// b-children); b is shared.
    fn setup() -> (Synopsis, SynopsisNodeId, SynopsisNodeId, SynopsisNodeId) {
        let mut labels = Interner::new();
        let rl = labels.intern("root");
        let al = labels.intern("a");
        let bl = labels.intern("b");
        let mut s = Synopsis::new(labels, rl, 4);
        let mk = |s: &mut Synopsis, label, vtype, count| {
            s.push_node(SynopsisNode {
                label,
                vtype,
                count,
                children: Vec::new(),
                parents: Vec::new(),
                vsumm: None,
                alive: true,
                version: 0,
            })
        };
        let a1 = mk(&mut s, al, ValueType::None, 3.0);
        let a2 = mk(&mut s, al, ValueType::None, 1.0);
        let b = mk(&mut s, bl, ValueType::None, 10.0);
        s.add_edge(0, a1, 3.0);
        s.add_edge(0, a2, 1.0);
        s.add_edge(a1, b, 2.0);
        s.add_edge(a2, b, 4.0);
        (s, a1, a2, b)
    }

    #[test]
    fn merge_weighted_child_counts() {
        let (mut s, a1, a2, b) = setup();
        let w = apply_merge(&mut s, a1, a2);
        assert!(!s.node(a1).alive);
        assert!(!s.node(a2).alive);
        assert_eq!(s.node(w).count, 4.0);
        // (3*2 + 1*4)/4 = 2.5 b-children per merged element.
        assert_eq!(s.node(w).edge_count(b), 2.5);
        // Parent edge sums: root had 3 + 1.
        assert_eq!(s.node(s.root()).edge_count(w), 4.0);
        assert_eq!(s.node(s.root()).children.len(), 1);
        s.check_consistency().unwrap();
    }

    #[test]
    fn merge_updates_parent_links() {
        let (mut s, a1, a2, b) = setup();
        let w = apply_merge(&mut s, a1, a2);
        assert_eq!(s.node(b).parents, vec![w]);
        assert_eq!(s.node(w).parents, vec![s.root()]);
    }

    #[test]
    fn merge_preserves_expected_totals() {
        // Total expected b-elements from root must be invariant:
        // 3*2 + 1*4 = 10 before; 4 * 2.5 = 10 after.
        let (mut s, a1, a2, b) = setup();
        let before = s.node(s.root()).edge_count(a1) * s.node(a1).edge_count(b)
            + s.node(s.root()).edge_count(a2) * s.node(a2).edge_count(b);
        let w = apply_merge(&mut s, a1, a2);
        let after = s.node(s.root()).edge_count(w) * s.node(w).edge_count(b);
        assert!((before - after).abs() < 1e-9);
    }

    #[test]
    fn merge_between_linked_nodes_creates_self_edge() {
        // a1 → a2 (same label) merging into w gives a self-loop.
        let mut labels = Interner::new();
        let rl = labels.intern("root");
        let al = labels.intern("a");
        let mut s = Synopsis::new(labels, rl, 4);
        let a1 = s.push_node(SynopsisNode {
            label: al,
            vtype: ValueType::None,
            count: 2.0,
            children: Vec::new(),
            parents: Vec::new(),
            vsumm: None,
            alive: true,
            version: 0,
        });
        let a2 = s.push_node(SynopsisNode {
            label: al,
            vtype: ValueType::None,
            count: 4.0,
            children: Vec::new(),
            parents: Vec::new(),
            vsumm: None,
            alive: true,
            version: 0,
        });
        s.add_edge(0, a1, 2.0);
        s.add_edge(a1, a2, 2.0);
        let w = apply_merge(&mut s, a1, a2);
        // w has a self edge with weighted count 2*2/6.
        let self_count = s.node(w).edge_count(w);
        assert!((self_count - 4.0 / 6.0).abs() < 1e-9, "{self_count}");
        s.check_consistency().unwrap();
    }

    #[test]
    fn merge_fuses_value_summaries() {
        let (mut s, a1, a2, _b) = setup();
        let vals1 = [Value::Numeric(10), Value::Numeric(20)];
        let vals2 = [Value::Numeric(1000)];
        let r1: Vec<&Value> = vals1.iter().collect();
        let r2: Vec<&Value> = vals2.iter().collect();
        s.node_mut(a1).vtype = ValueType::Numeric;
        s.node_mut(a2).vtype = ValueType::Numeric;
        s.node_mut(a1).vsumm = ValueSummary::build(&r1, ValueType::Numeric);
        s.node_mut(a2).vsumm = ValueSummary::build(&r2, ValueType::Numeric);
        let w = apply_merge(&mut s, a1, a2);
        let vs = s.node(w).vsumm.as_ref().unwrap();
        let sel = vs.selectivity(&ValuePredicate::Range { lo: 0, hi: 100 });
        assert!((sel - 2.0 / 3.0).abs() < 1e-9, "{sel}");
    }

    #[test]
    fn merge_with_one_sided_summary_keeps_it() {
        let (mut s, a1, a2, _b) = setup();
        let vals1 = [Value::Numeric(10)];
        let r1: Vec<&Value> = vals1.iter().collect();
        s.node_mut(a1).vtype = ValueType::Numeric;
        s.node_mut(a2).vtype = ValueType::Numeric;
        s.node_mut(a1).vsumm = ValueSummary::build(&r1, ValueType::Numeric);
        let w = apply_merge(&mut s, a1, a2);
        assert!(s.node(w).vsumm.is_some());
    }

    #[test]
    fn struct_bytes_saved_counts_shared_structure() {
        use xcluster_summaries::footprint::{SYNOPSIS_EDGE_BYTES, SYNOPSIS_NODE_BYTES};
        let (s, a1, a2, _b) = setup();
        // Shared child b (1 edge saved) + shared parent root (1 edge).
        assert_eq!(
            merge_struct_bytes_saved(&s, a1, a2),
            SYNOPSIS_NODE_BYTES + 2 * SYNOPSIS_EDGE_BYTES
        );
        let mut s2 = s.clone();
        let w = apply_merge(&mut s2, a1, a2);
        let _ = w;
        assert_eq!(
            s.structural_bytes() - s2.structural_bytes(),
            SYNOPSIS_NODE_BYTES + 2 * SYNOPSIS_EDGE_BYTES
        );
    }

    #[test]
    #[should_panic(expected = "equal labels")]
    fn merge_rejects_label_mismatch() {
        let (mut s, a1, _a2, b) = setup();
        apply_merge(&mut s, a1, b);
    }
}
