//! Compiled query plans and the per-synopsis estimation cache.
//!
//! The reference interpreter ([`crate::estimate`]) re-derives everything
//! per query: label tests are re-matched by string, every `//` step runs
//! a fresh depth-bounded dynamic program over the synopsis graph, and
//! identical `(cluster, predicate)` value probes are recomputed across a
//! batch. This module compiles a [`TwigQuery`] against a [`Synopsis`]
//! once — interned label ids resolved, axes and predicates pre-lowered,
//! branch order fixed — into a flat arena [`Plan`], and interprets that
//! plan with a shared [`ReachCache`].
//!
//! **Bitwise contract.** For any query, [`run_plan`] produces an
//! estimate bitwise-identical to [`crate::estimate::estimate`] on the
//! same synopsis, and in traced mode an identical span structure (the
//! PR 3 differential harness in `tests/plan_diff.rs` is the referee).
//! The cache preserves this because everything it memoizes is a pure
//! function of the immutable synopsis:
//!
//! * The descendant-reach DP's frontier propagation never looks at
//!   labels, and each target's accumulated weight is an independent f64
//!   addition chain in ascending depth order — so caching the *full*
//!   (label-independent) DP per source cluster and filtering the result
//!   by label afterward yields exactly the values the label-filtered DP
//!   computes, bit for bit.
//! * Label tests compare interned [`Symbol`]s; the interner is injective,
//!   so symbol equality is string equality.
//! * The value-probe memo stores the probe's `(σ, kind)` pair verbatim,
//!   so memo hits replay the same counters and trace attributes.
//!
//! Cache hit/miss *counters* are the one thing scheduling can perturb:
//! two shards racing on a cold key both count a miss. The cached values
//! themselves are identical either way, so estimates stay independent of
//! thread count.
//!
//! **Invalidation.** A `ReachCache` is valid for exactly one synopsis.
//! Sessions that borrow the synopsis ([`crate::estimate::Estimator`])
//! get this for free from the borrow checker — the synopsis cannot be
//! mutated while the session lives. Long-lived holders (the serving
//! layer keeps one cache per loaded `Arc<Synopsis>`) must build a fresh
//! cache on every reload; the cache pins the arena length of the first
//! synopsis it sees and panics if reused across a rebuild.

use crate::estimate::{keep_expanding, stats as estats};
use crate::synopsis::{Synopsis, SynopsisNodeId};
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock, RwLock};
use xcluster_obs::trace::Trace;
use xcluster_obs::{SpanTimer, TraceBuilder};
use xcluster_query::{Axis, LabelTest, NodeKind, TwigQuery};
use xcluster_summaries::{ValuePredicate, ValueSummary};
use xcluster_xml::{Symbol, TermId, ValueType};

/// Registry handles for the plan-path instrumentation (`estimate.plan_*`):
/// compilations, plan executions, and cache hit/miss totals. Like the
/// interpreter's `estimate.*` handles these are striped atomics, safe to
/// bump from any shard thread.
pub(crate) mod stats {
    use std::sync::{Arc, LazyLock};
    use xcluster_obs::{counter, Counter};

    pub static PLAN_COMPILES: LazyLock<Arc<Counter>> =
        LazyLock::new(|| counter("estimate.plan_compiles"));
    pub static PLAN_RUNS: LazyLock<Arc<Counter>> = LazyLock::new(|| counter("estimate.plan_runs"));
    pub static PLAN_REACH_HITS: LazyLock<Arc<Counter>> =
        LazyLock::new(|| counter("estimate.plan_reach_hits"));
    pub static PLAN_REACH_MISSES: LazyLock<Arc<Counter>> =
        LazyLock::new(|| counter("estimate.plan_reach_misses"));
    pub static PLAN_PROBE_HITS: LazyLock<Arc<Counter>> =
        LazyLock::new(|| counter("estimate.plan_probe_hits"));
    pub static PLAN_PROBE_MISSES: LazyLock<Arc<Counter>> =
        LazyLock::new(|| counter("estimate.plan_probe_misses"));
}

/// A label test resolved against one synopsis's interner.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PlanLabel {
    /// `*` — matches every cluster.
    Wildcard,
    /// A tag resolved to its interned symbol; matching is one integer
    /// comparison instead of a string compare per candidate.
    Sym(Symbol),
    /// The queried tag occurs nowhere in the synopsis: the step cannot
    /// match any cluster, so no reach DP is ever needed.
    Absent,
}

/// The value-type class a predicate can apply to, pre-lowered from the
/// predicate shape so the runtime type gate is a two-enum match.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PredClass {
    /// Range predicates over `NUMERIC` content.
    Numeric,
    /// Substring predicates over `STRING` content.
    String,
    /// Keyword / similarity predicates over `TEXT` content.
    Text,
}

impl PredClass {
    fn of(pred: &ValuePredicate) -> PredClass {
        match pred {
            ValuePredicate::Range { .. } => PredClass::Numeric,
            ValuePredicate::Contains { .. } => PredClass::String,
            ValuePredicate::FtContains { .. } | ValuePredicate::SimilarTo { .. } => PredClass::Text,
        }
    }

    /// The same pairs [`crate::estimate`]'s `type_ok` accepts.
    fn matches(self, vtype: ValueType) -> bool {
        matches!(
            (self, vtype),
            (PredClass::Numeric, ValueType::Numeric)
                | (PredClass::String, ValueType::String)
                | (PredClass::Text, ValueType::Text)
        )
    }
}

/// A pre-lowered value predicate: the predicate plus its type class.
#[derive(Debug, Clone)]
pub struct PlanPredicate {
    /// The predicate as parsed.
    pub pred: ValuePredicate,
    /// Its pre-computed type class.
    pub class: PredClass,
}

/// One node of a compiled plan. Plan node ids coincide with the query
/// node ids of the [`TwigQuery`] the plan was compiled from, so traces
/// emitted by the plan interpreter carry the same `qnode` attributes the
/// reference interpreter emits (attribution and `explain` rely on this).
#[derive(Debug, Clone)]
pub struct PlanNode {
    /// Axis connecting this node to its parent.
    pub axis: Axis,
    /// Resolved label test.
    pub label: PlanLabel,
    /// Variable (binding) or existential filter.
    pub kind: NodeKind,
    /// Pre-lowered value predicate, if any.
    pub predicate: Option<PlanPredicate>,
    /// Child plan-node ids, in the query's fixed branch order.
    pub children: Vec<usize>,
}

/// A twig query compiled against one synopsis: a flat arena of
/// [`PlanNode`]s (index = query node id, root at 0) plus the query's
/// display form for traces.
#[derive(Debug, Clone)]
pub struct Plan {
    nodes: Vec<PlanNode>,
    display: String,
}

impl Plan {
    /// The root plan node id (never matched itself; only its children
    /// are expanded).
    pub fn root(&self) -> usize {
        0
    }

    /// The node with the given id.
    pub fn node(&self, id: usize) -> &PlanNode {
        &self.nodes[id]
    }

    /// Number of plan nodes (including the root).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the plan has no nodes (never true for compiled plans).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The source query rendered in twig syntax.
    pub fn display(&self) -> &str {
        &self.display
    }
}

/// Compiles `query` against `s`: resolves every label test through the
/// synopsis interner, pre-lowers predicates to their type class, and
/// freezes the branch order into a flat arena.
pub fn compile(s: &Synopsis, query: &TwigQuery) -> Plan {
    debug_assert!(query.filters_are_existential());
    stats::PLAN_COMPILES.inc();
    let nodes = (0..query.len())
        .map(|id| {
            let qn = query.node(id);
            PlanNode {
                axis: qn.axis,
                label: match &qn.label {
                    LabelTest::Wildcard => PlanLabel::Wildcard,
                    LabelTest::Tag(t) => match s.labels().get(t) {
                        Some(sym) => PlanLabel::Sym(sym),
                        None => PlanLabel::Absent,
                    },
                },
                kind: qn.kind,
                predicate: qn.predicate.as_ref().map(|p| PlanPredicate {
                    pred: p.clone(),
                    class: PredClass::of(p),
                }),
                children: qn.children.clone(),
            }
        })
        .collect();
    Plan {
        nodes,
        display: query.to_string(),
    }
}

/// Soft cap on memoized value probes: past this many entries new probes
/// are computed but not inserted (no eviction — workload predicate sets
/// are small and repetitive; the cap only bounds adversarial churn).
const PROBE_MEMO_CAP: usize = 8192;

type ReachVec = Vec<(SynopsisNodeId, f64)>;

/// Per-cluster slice of the value-probe memo: predicate → `(σ, kind)`.
type ProbeMemo = HashMap<ValuePredicate, (f64, &'static str)>;

/// Shared, read-only-in-effect estimation cache for one synopsis.
///
/// Memoizes (1) the descendant-reachability DP per
/// `(source cluster, label)` — backed by a per-source *full* DP so each
/// source's propagation runs at most once — and (2) a bounded value-probe
/// memo keyed by `(cluster, predicate)`. All entries are pure functions
/// of the synopsis, so concurrent shards may race to fill a key without
/// affecting any estimate; see the module docs for the bitwise argument
/// and the invalidation rules.
#[derive(Debug, Default)]
pub struct ReachCache {
    /// Full (label-independent) descendant DP result per source cluster.
    full: RwLock<HashMap<SynopsisNodeId, Arc<ReachVec>>>,
    /// Label-filtered views of the full DP, keyed `(source, label)`.
    filtered: RwLock<HashMap<(SynopsisNodeId, PlanLabel), Arc<ReachVec>>>,
    /// Value-probe memo: cluster → predicate → `(σ, kind)`.
    probes: RwLock<HashMap<SynopsisNodeId, ProbeMemo>>,
    probe_len: AtomicUsize,
    reach_hits: AtomicU64,
    reach_misses: AtomicU64,
    probe_hits: AtomicU64,
    probe_misses: AtomicU64,
    /// Arena length of the first synopsis this cache was used with —
    /// a cheap guard against reuse across a rebuild.
    arena_len: OnceLock<usize>,
}

/// Point-in-time [`ReachCache`] occupancy and hit/miss totals.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReachCacheStats {
    /// Reachability lookups served from the cache.
    pub reach_hits: u64,
    /// Reachability lookups that ran (or waited on) the DP.
    pub reach_misses: u64,
    /// Value probes served from the memo.
    pub probe_hits: u64,
    /// Value probes that hit the summary.
    pub probe_misses: u64,
    /// Cached full-DP entries (one per distinct `//` source cluster).
    pub full_entries: usize,
    /// Cached label-filtered reach views.
    pub reach_entries: usize,
    /// Memoized value probes.
    pub probe_entries: usize,
}

impl ReachCacheStats {
    fn rate(hits: u64, misses: u64) -> f64 {
        let total = hits + misses;
        if total == 0 {
            0.0
        } else {
            hits as f64 / total as f64
        }
    }

    /// Fraction of reachability lookups served from the cache.
    pub fn reach_hit_rate(&self) -> f64 {
        Self::rate(self.reach_hits, self.reach_misses)
    }

    /// Fraction of value probes served from the memo.
    pub fn probe_hit_rate(&self) -> f64 {
        Self::rate(self.probe_hits, self.probe_misses)
    }
}

impl ReachCache {
    /// An empty cache, valid for whichever synopsis it is first used
    /// with.
    pub fn new() -> ReachCache {
        ReachCache::default()
    }

    fn check_synopsis(&self, s: &Synopsis) {
        let bound = *self.arena_len.get_or_init(|| s.arena_len());
        assert_eq!(
            bound,
            s.arena_len(),
            "ReachCache reused across a rebuilt synopsis; create a fresh cache per synopsis"
        );
    }

    /// The memoized descendant-axis reach of `from` under `label`:
    /// expected elements per source element of every matching cluster,
    /// in ascending cluster-id order — bitwise-identical to the
    /// interpreter's label-filtered DP (see module docs).
    pub fn descendant_reach(
        &self,
        s: &Synopsis,
        from: SynopsisNodeId,
        label: PlanLabel,
    ) -> Arc<ReachVec> {
        self.check_synopsis(s);
        let key = (from, label);
        if let Some(hit) = self.filtered.read().unwrap().get(&key) {
            self.reach_hits.fetch_add(1, Ordering::Relaxed);
            stats::PLAN_REACH_HITS.inc();
            return Arc::clone(hit);
        }
        self.reach_misses.fetch_add(1, Ordering::Relaxed);
        stats::PLAN_REACH_MISSES.inc();
        let full = self.full_reach(s, from);
        let view: Arc<ReachVec> = match label {
            PlanLabel::Wildcard => full,
            PlanLabel::Sym(sym) => Arc::new(
                full.iter()
                    .filter(|&&(t, _)| s.node(t).label == sym)
                    .copied()
                    .collect(),
            ),
            PlanLabel::Absent => Arc::new(Vec::new()),
        };
        let mut w = self.filtered.write().unwrap();
        Arc::clone(w.entry(key).or_insert(view))
    }

    /// The full (label-independent) DP for one source cluster. Races on
    /// a cold key recompute the same bits; the first insert wins.
    fn full_reach(&self, s: &Synopsis, from: SynopsisNodeId) -> Arc<ReachVec> {
        if let Some(hit) = self.full.read().unwrap().get(&from) {
            return Arc::clone(hit);
        }
        // Depth-bounded DP mirroring the interpreter's with the label
        // filter dropped: frontier[n] = expected elements of cluster n
        // at the current depth per source element. Propagation never
        // consults labels and each target accumulates an independent f64
        // addition chain in ascending depth order, so filtering this
        // result afterward equals filtering inside the DP, bit for bit.
        let mut reach: BTreeMap<SynopsisNodeId, f64> = BTreeMap::new();
        let mut frontier: BTreeMap<SynopsisNodeId, f64> = BTreeMap::new();
        frontier.insert(from, 1.0);
        for _ in 0..s.max_depth() {
            let mut next: BTreeMap<SynopsisNodeId, f64> = BTreeMap::new();
            for (&n, &w) in &frontier {
                for &(t, c) in &s.node(n).children {
                    *next.entry(t).or_insert(0.0) += w * c;
                }
            }
            if next.is_empty() {
                break;
            }
            for (&t, &w) in &next {
                *reach.entry(t).or_insert(0.0) += w;
            }
            frontier = next;
        }
        let computed: Arc<ReachVec> = Arc::new(reach.into_iter().collect());
        let mut w = self.full.write().unwrap();
        Arc::clone(w.entry(from).or_insert(computed))
    }

    /// Memoized value-summary probe at a cluster: returns `(σ, kind)`
    /// exactly as the interpreter computes them, so hits replay the same
    /// `estimate.vprobe_*` counter bumps and trace attributes. Only real
    /// summary probes are memoized — type mismatches and unsummarized
    /// clusters cost nothing to recompute.
    fn probe(
        &self,
        s: &Synopsis,
        target: SynopsisNodeId,
        pred: &ValuePredicate,
        vs: &ValueSummary,
    ) -> (f64, &'static str) {
        self.check_synopsis(s);
        {
            let r = self.probes.read().unwrap();
            if let Some(&hit) = r.get(&target).and_then(|m| m.get(pred)) {
                self.probe_hits.fetch_add(1, Ordering::Relaxed);
                stats::PLAN_PROBE_HITS.inc();
                return hit;
            }
        }
        self.probe_misses.fetch_add(1, Ordering::Relaxed);
        stats::PLAN_PROBE_MISSES.inc();
        let kind = match vs {
            ValueSummary::Numeric(_) => "histogram",
            ValueSummary::NumericWavelet(_) => "wavelet",
            ValueSummary::NumericSample(_) => "sample",
            ValueSummary::String(_) => "pst",
            ValueSummary::Text(_) => "term",
        };
        let sigma = vs.selectivity(pred);
        if self.probe_len.load(Ordering::Relaxed) < PROBE_MEMO_CAP {
            let mut w = self.probes.write().unwrap();
            if w.entry(target)
                .or_default()
                .insert(pred.clone(), (sigma, kind))
                .is_none()
            {
                self.probe_len.fetch_add(1, Ordering::Relaxed);
            }
        }
        (sigma, kind)
    }

    /// Occupancy and hit/miss totals. Counters are `Relaxed` reads —
    /// exact once concurrent shards have joined.
    pub fn stats(&self) -> ReachCacheStats {
        ReachCacheStats {
            reach_hits: self.reach_hits.load(Ordering::Relaxed),
            reach_misses: self.reach_misses.load(Ordering::Relaxed),
            probe_hits: self.probe_hits.load(Ordering::Relaxed),
            probe_misses: self.probe_misses.load(Ordering::Relaxed),
            full_entries: self.full.read().unwrap().len(),
            reach_entries: self.filtered.read().unwrap().len(),
            probe_entries: self.probe_len.load(Ordering::Relaxed),
        }
    }

    /// Attributed resident heap bytes, following the
    /// [`crate::footprint`] conventions: allocated capacities (slack is
    /// real memory), one control byte per hash-table slot, no malloc
    /// headers. Wildcard reach views share the full DP's allocation and
    /// are counted once.
    pub fn heap_bytes(&self) -> usize {
        use std::mem::size_of;
        let full = self.full.read().unwrap();
        let filtered = self.filtered.read().unwrap();
        let probes = self.probes.read().unwrap();
        let vec_bytes = |v: &ReachVec| {
            size_of::<ReachVec>() + v.capacity() * size_of::<(SynopsisNodeId, f64)>()
        };
        let mut bytes = 0;
        bytes += full.capacity() * (size_of::<(SynopsisNodeId, Arc<ReachVec>)>() + 1);
        bytes += full.values().map(|v| vec_bytes(v)).sum::<usize>();
        bytes +=
            filtered.capacity() * (size_of::<((SynopsisNodeId, PlanLabel), Arc<ReachVec>)>() + 1);
        bytes += filtered
            .iter()
            .filter(|((_, label), _)| !matches!(label, PlanLabel::Wildcard))
            .map(|(_, v)| vec_bytes(v))
            .sum::<usize>();
        bytes += probes.capacity()
            * (size_of::<(SynopsisNodeId, HashMap<ValuePredicate, (f64, &'static str)>)>() + 1);
        for m in probes.values() {
            bytes += m.capacity() * (size_of::<(ValuePredicate, (f64, &'static str))>() + 1);
            bytes += m.keys().map(pred_heap_bytes).sum::<usize>();
        }
        bytes
    }
}

fn pred_heap_bytes(p: &ValuePredicate) -> usize {
    match p {
        ValuePredicate::Range { .. } => 0,
        ValuePredicate::Contains { needle } => needle.capacity(),
        ValuePredicate::FtContains { terms } | ValuePredicate::SimilarTo { terms, .. } => {
            terms.capacity() * std::mem::size_of::<TermId>()
        }
    }
}

/// Executes a compiled plan. The estimate — and, when `traced`, the
/// whole span structure — is bitwise-identical to
/// [`crate::estimate::estimate`] / [`crate::estimate::estimate_traced`]
/// on the query the plan was compiled from.
pub(crate) fn run_plan(
    s: &Synopsis,
    plan: &Plan,
    cache: &ReachCache,
    traced: bool,
) -> (f64, Option<Trace>) {
    estats::QUERIES.inc();
    stats::PLAN_RUNS.inc();
    let _span = SpanTimer::new("estimate.query", &estats::QUERY_NS);
    let tb = traced.then(|| {
        let mut tb = TraceBuilder::new("estimate.query");
        tb.attr_str(tb.root(), "query", plan.display());
        tb
    });
    let mut walk = PlanWalk { s, plan, cache, tb };
    let mut product = 1.0;
    for &c in &plan.node(plan.root()).children {
        product *= walk.child_factor(c, s.root());
        if !keep_expanding(product, walk.tb.is_some()) {
            break;
        }
    }
    let trace = walk.tb.take().map(|mut tb| {
        tb.attr_f64(tb.root(), "result", product);
        tb.finish()
    });
    (product, trace)
}

/// Reach result: either an inline child-axis filter or a shared cached
/// descendant DP view.
enum Reached {
    Inline(ReachVec),
    Cached(Arc<ReachVec>),
}

impl std::ops::Deref for Reached {
    type Target = [(SynopsisNodeId, f64)];

    fn deref(&self) -> &Self::Target {
        match self {
            Reached::Inline(v) => v,
            Reached::Cached(v) => v,
        }
    }
}

/// The plan-interpreter walk state — the compiled mirror of
/// `estimate::Walker`, kept structurally parallel so the differential
/// referee stays easy to audit.
struct PlanWalk<'a> {
    s: &'a Synopsis,
    plan: &'a Plan,
    cache: &'a ReachCache,
    tb: Option<TraceBuilder>,
}

impl PlanWalk<'_> {
    fn child_factor(&mut self, q: usize, sn: SynopsisNodeId) -> f64 {
        let plan = self.plan;
        let pnode = plan.node(q);
        let reached = self.reach(sn, pnode.axis, pnode.label);
        estats::CLUSTERS_VISITED.add(reached.len() as u64);
        let step = self.tb.as_mut().map(|tb| {
            let id = tb.start("estimate.step");
            tb.attr_u64(id, "qnode", q as u64);
            tb.attr_str(
                id,
                "kind",
                match pnode.kind {
                    NodeKind::Variable => "variable",
                    NodeKind::Filter => "filter",
                },
            );
            tb.attr_str(
                id,
                "axis",
                match pnode.axis {
                    Axis::Child => "child",
                    Axis::Descendant => "descendant",
                },
            );
            tb.attr_u64(id, "from", sn as u64);
            tb.attr_u64(id, "targets", reached.len() as u64);
            id
        });
        let factor = match pnode.kind {
            NodeKind::Variable => {
                let mut sum = 0.0;
                for &(target, expected) in reached.iter() {
                    let embed = self.start_embed(q, sn, target, expected);
                    let sigma = self.predicate_selectivity(q, target);
                    if let (Some(tb), Some(id)) = (self.tb.as_mut(), embed) {
                        tb.attr_f64(id, "sigma", sigma);
                    }
                    if sigma == 0.0 {
                        self.end_embed(embed, 0.0);
                        continue;
                    }
                    let mut sub = expected * sigma;
                    for &c in &pnode.children {
                        sub *= self.child_factor(c, target);
                        if !keep_expanding(sub, self.tb.is_some()) {
                            break;
                        }
                    }
                    self.end_embed(embed, sub);
                    sum += sub;
                }
                sum
            }
            NodeKind::Filter => {
                let mut expected_matches = 0.0;
                for &(target, expected) in reached.iter() {
                    let embed = self.start_embed(q, sn, target, expected);
                    let mut sat = self.predicate_selectivity(q, target);
                    if let (Some(tb), Some(id)) = (self.tb.as_mut(), embed) {
                        tb.attr_f64(id, "sigma", sat);
                    }
                    for &c in &pnode.children {
                        if !keep_expanding(sat, self.tb.is_some()) {
                            break;
                        }
                        sat *= self.child_factor(c, target).min(1.0);
                    }
                    self.end_embed(embed, expected * sat);
                    expected_matches += expected * sat;
                }
                expected_matches.min(1.0)
            }
        };
        if let (Some(tb), Some(id)) = (self.tb.as_mut(), step) {
            tb.attr_f64(id, "factor", factor);
            tb.end(id);
        }
        factor
    }

    fn start_embed(
        &mut self,
        q: usize,
        from: SynopsisNodeId,
        target: SynopsisNodeId,
        expected: f64,
    ) -> Option<usize> {
        self.tb.as_ref()?;
        let label = self.s.label_str(target).to_string();
        let tb = self.tb.as_mut().expect("checked above");
        let id = tb.start("estimate.embed");
        tb.attr_u64(id, "qnode", q as u64);
        tb.attr_u64(id, "from", from as u64);
        tb.attr_u64(id, "cluster", target as u64);
        tb.attr_str(id, "label", label);
        tb.attr_f64(id, "expected", expected);
        Some(id)
    }

    fn end_embed(&mut self, embed: Option<usize>, contribution: f64) {
        if let (Some(tb), Some(id)) = (self.tb.as_mut(), embed) {
            tb.attr_f64(id, "contribution", contribution);
            tb.end(id);
        }
    }

    fn reach(&self, from: SynopsisNodeId, axis: Axis, label: PlanLabel) -> Reached {
        match axis {
            Axis::Child => Reached::Inline(
                self.s
                    .node(from)
                    .children
                    .iter()
                    .filter(|&&(t, _)| label_matches(self.s, label, t))
                    .map(|&(t, c)| (t, c))
                    .collect(),
            ),
            Axis::Descendant => match label {
                PlanLabel::Absent => Reached::Inline(Vec::new()),
                _ => Reached::Cached(self.cache.descendant_reach(self.s, from, label)),
            },
        }
    }

    fn predicate_selectivity(&mut self, q: usize, target: SynopsisNodeId) -> f64 {
        let plan = self.plan;
        let Some(pp) = &plan.node(q).predicate else {
            return 1.0;
        };
        let node = self.s.node(target);
        let (kind, sigma) = if !pp.class.matches(node.vtype) {
            ("type_mismatch", 0.0)
        } else {
            match &node.vsumm {
                Some(vs) => {
                    let (sigma, kind) = self.cache.probe(self.s, target, &pp.pred, vs);
                    // Replay the interpreter's per-kind probe counters —
                    // identically on memo hits and misses.
                    match kind {
                        "histogram" | "wavelet" | "sample" => estats::VPROBE_HISTOGRAM.inc(),
                        "pst" => estats::VPROBE_PST.inc(),
                        "term" => estats::VPROBE_TERM.inc(),
                        _ => {}
                    }
                    (kind, sigma)
                }
                None => ("unsummarized", 1.0),
            }
        };
        if let Some(tb) = self.tb.as_mut() {
            let id = tb.start("estimate.vprobe");
            tb.attr_u64(id, "cluster", target as u64);
            tb.attr_str(id, "kind", kind);
            tb.attr_f64(id, "sigma", sigma);
            tb.end(id);
        }
        sigma
    }
}

fn label_matches(s: &Synopsis, label: PlanLabel, node: SynopsisNodeId) -> bool {
    match label {
        PlanLabel::Wildcard => true,
        PlanLabel::Sym(sym) => s.node(node).label == sym,
        PlanLabel::Absent => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimate::{estimate, estimate_traced, Estimator};
    use crate::reference::{reference_synopsis, ReferenceConfig};
    use xcluster_query::parse_twig;
    use xcluster_xml::parse;

    fn sample() -> (xcluster_xml::XmlTree, Synopsis) {
        let t = parse(
            "<r><a><x>1</x><t>alpha beta</t></a><a><x>2</x><x>3</x></a>\
             <b><x>4</x><n>alpha</n></b></r>",
        )
        .unwrap();
        let s = reference_synopsis(&t, &ReferenceConfig::default());
        (t, s)
    }

    #[test]
    fn compile_resolves_labels_and_predicates() {
        let (t, s) = sample();
        let q = parse_twig("//a[x > 1]/x", t.terms()).unwrap();
        let p = compile(&s, &q);
        assert_eq!(p.len(), q.len());
        assert_eq!(p.display(), q.to_string());
        // Node 1 (//a) resolves to an interned symbol; the filter node
        // carries the lowered numeric predicate.
        let a = p.node(1);
        assert!(matches!(a.label, PlanLabel::Sym(_)));
        let pp = (0..p.len())
            .find_map(|i| p.node(i).predicate.as_ref())
            .expect("the filter carries a predicate");
        assert_eq!(pp.class, PredClass::Numeric);
        // Absent tags compile to PlanLabel::Absent, not a dead symbol.
        let q = parse_twig("//zzz", t.terms()).unwrap();
        let p = compile(&s, &q);
        assert!(matches!(p.node(1).label, PlanLabel::Absent));
    }

    #[test]
    fn plan_run_matches_interpreter_bitwise() {
        let (t, s) = sample();
        let cache = ReachCache::new();
        for qs in [
            "//a",
            "//x",
            "/a/x",
            "//b/x",
            "//*",
            "//a{/x}{/x}",
            "//zzz",
            "//a[x>1]",
            "//t[ftcontains(alpha)]",
            "//n[contains(alp)]",
            "/a//x",
        ] {
            let q = parse_twig(qs, t.terms()).unwrap();
            let p = compile(&s, &q);
            let reference = estimate(&s, &q);
            // Cold, then warm: both bitwise-equal to the interpreter.
            for pass in 0..2 {
                let (got, _) = run_plan(&s, &p, &cache, false);
                assert_eq!(
                    got.to_bits(),
                    reference.to_bits(),
                    "{qs} (pass {pass}): {got} vs {reference}"
                );
            }
        }
    }

    #[test]
    fn traced_plan_run_matches_interpreter_spans() {
        let (t, s) = sample();
        let cache = ReachCache::new();
        let q = parse_twig("//a[x>1]/x", t.terms()).unwrap();
        let p = compile(&s, &q);
        let (ref_est, ref_trace) = estimate_traced(&s, &q);
        for _ in 0..2 {
            let (est, trace) = run_plan(&s, &p, &cache, true);
            let trace = trace.unwrap();
            assert_eq!(est.to_bits(), ref_est.to_bits());
            assert_eq!(trace.spans().len(), ref_trace.spans().len());
            for (a, b) in ref_trace.spans().iter().zip(trace.spans()) {
                assert_eq!(a.name, b.name);
                assert_eq!(a.attrs, b.attrs);
            }
        }
    }

    #[test]
    fn cache_reports_hits_and_footprint() {
        let (t, s) = sample();
        let cache = ReachCache::new();
        let q = parse_twig("//a//x", t.terms()).unwrap();
        let p = compile(&s, &q);
        run_plan(&s, &p, &cache, false);
        let cold = cache.stats();
        assert!(cold.reach_misses > 0);
        assert!(cold.full_entries > 0);
        run_plan(&s, &p, &cache, false);
        let warm = cache.stats();
        assert!(warm.reach_hits > cold.reach_hits, "{warm:?}");
        assert_eq!(warm.reach_misses, cold.reach_misses);
        assert!(warm.reach_hit_rate() > 0.0);
        assert!(cache.heap_bytes() > 0);
    }

    #[test]
    fn probe_memo_hits_on_repeated_predicates() {
        let (t, s) = sample();
        let est = Estimator::new(&s);
        let q = parse_twig("//a[x>1]", t.terms()).unwrap();
        let a = est.estimate(&q);
        let b = est.estimate(&q);
        assert_eq!(a.to_bits(), b.to_bits());
        let stats = est.cache().stats();
        assert!(stats.probe_hits > 0, "{stats:?}");
        assert!(stats.probe_entries > 0);
    }

    #[test]
    #[should_panic(expected = "fresh cache per synopsis")]
    fn cache_rejects_a_different_synopsis() {
        let (t, s) = sample();
        let other = reference_synopsis(&parse("<r><a/></r>").unwrap(), &ReferenceConfig::default());
        let cache = ReachCache::new();
        let q = parse_twig("//a//x", t.terms()).unwrap();
        let p = compile(&s, &q);
        run_plan(&s, &p, &cache, false);
        let p2 = compile(&other, &q);
        run_plan(&other, &p2, &cache, false);
    }
}
