//! The localized clustering-error metric Δ(S, S′) (paper Section 4.1,
//! "Quantifying Node-Merging Approximation Error", and Section 4.2 for
//! value-compression steps).
//!
//! Δ measures the sum of squared estimation-error increases over a set of
//! *atomic queries* `u[p]/c`, where `p` ranges over the atomic value
//! predicates of the affected value summaries (prefix ranges at histogram
//! boundaries / retained PST substrings / indexed terms) and `c` over the
//! children of the affected nodes. With the Path–Value Independence
//! estimate `e_S(u, p, c) = σ_p(u) · count(u, c)`, the double sum
//! factorizes into value *atomic moments* times structural edge-count
//! moments:
//!
//! ```text
//! Σ_p Σ_c (σ_p(u)·cᵤ(c) − σ_p(w)·c_w(c))²
//!   = (Σ_p σ_p(u)²)(Σ_c cᵤ²) − 2(Σ_p σ_p(u)σ_p(w))(Σ_c cᵤc_w)
//!     + (Σ_p σ_p(w)²)(Σ_c c_w²)
//! ```
//!
//! **Deviation from the paper** (documented in `DESIGN.md`): the paper's
//! `c ∈ Cu ∪ Cv` makes Δ vanish for childless value leaves (`year`,
//! `title`, …), so we extend every node's target set with a virtual
//! *self* child of count 1 — value-distribution divergence is then always
//! measured, and the metric is unchanged for the purely structural parts.

use crate::merge::merge_struct_bytes_saved;
use crate::synopsis::{Synopsis, SynopsisNodeId};
use std::collections::BTreeMap;
use xcluster_summaries::{AtomicMoments, ValueSummary};

/// A scored candidate `merge(S, u, v)` operation.
#[derive(Debug, Clone, PartialEq)]
pub struct MergeCandidate {
    /// First node to merge.
    pub u: SynopsisNodeId,
    /// Second node to merge.
    pub v: SynopsisNodeId,
    /// Δ(S, S′) — the increase in clustering error.
    pub delta: f64,
    /// Structural bytes the merge frees (`|S|_str − |S′|_str`).
    pub bytes_saved: usize,
    /// Node versions at evaluation time, for lazy-heap invalidation.
    pub versions: (u32, u32),
}

impl MergeCandidate {
    /// Marginal loss: error increase per structural byte saved (the
    /// paper's ranking criterion, line 5 of Figure 5).
    pub fn marginal_loss(&self) -> f64 {
        self.delta / self.bytes_saved.max(1) as f64
    }
}

/// A scored candidate value-compression step on one node's summary.
#[derive(Debug, Clone, PartialEq)]
pub struct CompressCandidate {
    /// The node whose summary the step compresses.
    pub node: SynopsisNodeId,
    /// Δ(S, S′) for the step.
    pub delta: f64,
    /// Summary bytes freed.
    pub bytes_saved: usize,
    /// Node version at evaluation time.
    pub version: u32,
}

impl CompressCandidate {
    /// Marginal loss: error increase per byte saved (Figure 5, line 15).
    pub fn marginal_loss(&self) -> f64 {
        self.delta / self.bytes_saved.max(1) as f64
    }
}

/// Evaluates Δ and the space savings of `merge(S, u, v)` without
/// mutating the synopsis.
pub fn evaluate_merge(s: &Synopsis, u: SynopsisNodeId, v: SynopsisNodeId) -> MergeCandidate {
    evaluate_merge_with(s, u, v, true)
}

/// [`evaluate_merge`] with the value moments optionally replaced by the
/// trivial predicate set — the cheap lower-effort score `build_pool`
/// seeds value-bearing candidates with (no summary fusion).
pub fn evaluate_merge_with(
    s: &Synopsis,
    u: SynopsisNodeId,
    v: SynopsisNodeId,
    use_values: bool,
) -> MergeCandidate {
    let nu = s.node(u);
    let nv = s.node(v);
    debug_assert!(nu.alive && nv.alive && nu.label == nv.label && nu.vtype == nv.vtype);
    let cu = nu.count;
    let cv = nv.count;
    let cw = cu + cv;

    // Edge-count tuples over the union of (remapped) child targets, plus
    // the virtual self child. `u`/`v` as targets collapse into `w`.
    const SELF_KEY: usize = usize::MAX - 1;
    const MERGED_KEY: usize = usize::MAX;
    let mut targets: BTreeMap<usize, (f64, f64)> = BTreeMap::new();
    targets.insert(SELF_KEY, (1.0, 1.0));
    for &(t, c) in &nu.children {
        let k = if t == u || t == v { MERGED_KEY } else { t };
        targets.entry(k).or_insert((0.0, 0.0)).0 += c;
    }
    for &(t, c) in &nv.children {
        let k = if t == u || t == v { MERGED_KEY } else { t };
        targets.entry(k).or_insert((0.0, 0.0)).1 += c;
    }
    let (mut u_uu, mut u_uw, mut u_ww) = (0.0, 0.0, 0.0);
    let (mut v_vv, mut v_vw, mut v_ww) = (0.0, 0.0, 0.0);
    for (&k, &(ecu, ecv)) in &targets {
        let ecw = if k == SELF_KEY {
            1.0
        } else {
            (cu * ecu + cv * ecv) / cw
        };
        u_uu += ecu * ecu;
        u_uw += ecu * ecw;
        u_ww += ecw * ecw;
        v_vv += ecv * ecv;
        v_vw += ecv * ecw;
        v_ww += ecw * ecw;
    }

    // Value moments against the fused summary.
    let (m_u, m_v) = if use_values {
        let fused = fuse_options(&nu.vsumm, &nv.vsumm);
        (
            pair_moments(&nu.vsumm, &fused),
            pair_moments(&nv.vsumm, &fused),
        )
    } else {
        (AtomicMoments::TRIVIAL, AtomicMoments::TRIVIAL)
    };

    let delta_u = cu * (m_u.sum_aa * u_uu - 2.0 * m_u.sum_ab * u_uw + m_u.sum_bb * u_ww);
    let delta_v = cv * (m_v.sum_aa * v_vv - 2.0 * m_v.sum_ab * v_vw + m_v.sum_bb * v_ww);
    MergeCandidate {
        u,
        v,
        delta: (delta_u + delta_v).max(0.0),
        bytes_saved: merge_struct_bytes_saved(s, u, v),
        versions: (nu.version, nv.version),
    }
}

/// Fuses two optional summaries the way [`crate::merge::apply_merge`]
/// will.
fn fuse_options(a: &Option<ValueSummary>, b: &Option<ValueSummary>) -> Option<ValueSummary> {
    match (a, b) {
        (Some(x), Some(y)) => {
            let mut fused = x.fuse(y);
            if fused.size_bytes() > crate::merge::FUSED_SUMMARY_CAP {
                fused.compress_to_bytes(crate::merge::FUSED_SUMMARY_CAP);
            }
            Some(fused)
        }
        (Some(x), None) => Some(x.clone()),
        (None, Some(y)) => Some(y.clone()),
        (None, None) => None,
    }
}

/// Atomic moments of a node's summary against the (fused) replacement;
/// nodes without summaries contribute only the trivial predicate.
fn pair_moments(own: &Option<ValueSummary>, fused: &Option<ValueSummary>) -> AtomicMoments {
    match (own, fused) {
        (Some(a), Some(w)) => a.atomic_moments(w),
        _ => AtomicMoments::TRIVIAL,
    }
}

/// Evaluates the best single value-compression step on `node`'s summary
/// (paper Section 4.2: only the first Δ summand applies, with `w = u` —
/// the structure is unchanged, so the edge-count moment is a common
/// factor `Σ_c count(u, c)²`).
pub fn evaluate_compression(s: &Synopsis, node: SynopsisNodeId) -> Option<CompressCandidate> {
    let n = s.node(node);
    let step = n.vsumm.as_ref()?.peek_compression()?;
    Some(CompressCandidate {
        node,
        delta: n.count * step.sq_error * edge_sq_moment(s, node),
        bytes_saved: step.bytes_saved,
        version: n.version,
    })
}

/// `Σ_c count(u, c)²` over `u`'s children plus the virtual self child.
pub fn edge_sq_moment(s: &Synopsis, node: SynopsisNodeId) -> f64 {
    1.0 + s
        .node(node)
        .children
        .iter()
        .map(|&(_, c)| c * c)
        .sum::<f64>()
}

/// A chunked value-compression candidate: the candidate carries the
/// already-compressed summary, ready to swap in when selected.
///
/// The paper applies `b = 1` micro-steps; our footprint granularity
/// (9-byte PST nodes) makes that quadratic on megabyte-sized reference
/// summaries, so the build algorithm compresses in *chunks* of
/// `max(min_chunk, size/4)` bytes per heap selection. The ranking
/// criterion (accumulated Δ per byte saved) is unchanged; see `DESIGN.md`.
#[derive(Debug, Clone)]
pub struct ChunkCandidate {
    /// The node whose summary this chunk compresses.
    pub node: SynopsisNodeId,
    /// Accumulated Δ of the chunk.
    pub delta: f64,
    /// Bytes the chunk frees.
    pub bytes_saved: usize,
    /// Node version at evaluation time.
    pub version: u32,
    /// The summary after applying the chunk.
    pub compressed: ValueSummary,
}

impl ChunkCandidate {
    /// Marginal loss of the whole chunk.
    pub fn marginal_loss(&self) -> f64 {
        self.delta / self.bytes_saved.max(1) as f64
    }
}

/// Evaluates a compression chunk of roughly `max(min_chunk, size/8)`
/// bytes on `node`'s summary. Returns `None` if the summary is absent or
/// already minimal.
pub fn evaluate_compression_chunk(
    s: &Synopsis,
    node: SynopsisNodeId,
    min_chunk: usize,
) -> Option<ChunkCandidate> {
    let n = s.node(node);
    let summary = n.vsumm.as_ref()?;
    let start_bytes = summary.size_bytes();
    let target = start_bytes.saturating_sub((start_bytes / 4).max(min_chunk));
    let mut compressed = summary.clone();
    let sq_error = compressed.compress_to_bytes(target);
    let bytes_saved = start_bytes - compressed.size_bytes();
    if bytes_saved == 0 {
        return None;
    }
    Some(ChunkCandidate {
        node,
        delta: n.count * sq_error * edge_sq_moment(s, node),
        bytes_saved,
        version: n.version,
        compressed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synopsis::SynopsisNode;
    use xcluster_xml::{Interner, Value, ValueType};

    fn node(label: xcluster_xml::Symbol, count: f64) -> SynopsisNode {
        SynopsisNode {
            label,
            vtype: ValueType::None,
            count,
            children: Vec::new(),
            parents: Vec::new(),
            vsumm: None,
            alive: true,
            version: 0,
        }
    }

    /// root with two a-nodes feeding a shared leaf b.
    fn structural(c1: f64, c2: f64, n1: f64, n2: f64) -> (Synopsis, usize, usize) {
        let mut labels = Interner::new();
        let rl = labels.intern("root");
        let al = labels.intern("a");
        let bl = labels.intern("b");
        let mut s = Synopsis::new(labels, rl, 4);
        let a1 = s.push_node(node(al, n1));
        let a2 = s.push_node(node(al, n2));
        let b = s.push_node(node(bl, 5.0));
        s.add_edge(0, a1, n1);
        s.add_edge(0, a2, n2);
        s.add_edge(a1, b, c1);
        s.add_edge(a2, b, c2);
        (s, a1, a2)
    }

    #[test]
    fn identical_centroids_merge_for_free() {
        let (s, a1, a2) = structural(2.0, 2.0, 3.0, 3.0);
        let c = evaluate_merge(&s, a1, a2);
        assert!(c.delta.abs() < 1e-9, "delta {}", c.delta);
        assert!(c.bytes_saved > 0);
    }

    #[test]
    fn divergent_centroids_cost_more() {
        let (s_close, a1, a2) = structural(2.0, 2.5, 3.0, 3.0);
        let (s_far, b1, b2) = structural(2.0, 9.0, 3.0, 3.0);
        let close = evaluate_merge(&s_close, a1, a2).delta;
        let far = evaluate_merge(&s_far, b1, b2).delta;
        assert!(far > close, "{far} vs {close}");
        assert!(close > 0.0);
    }

    #[test]
    fn delta_matches_bruteforce_structural() {
        // Hand-compute the paper formula for a small case.
        let (s, a1, a2) = structural(2.0, 4.0, 3.0, 1.0);
        let c = evaluate_merge(&s, a1, a2);
        // cw(b) = (3*2 + 1*4)/4 = 2.5; trivial predicate σ = 1.
        // targets: self (1,1,1) and b (2,4,2.5).
        // Δ = 3[(1-1)² + (2-2.5)²] + 1[(1-1)² + (4-2.5)²]
        let expected = 3.0 * 0.25 + 1.0 * 2.25;
        assert!(
            (c.delta - expected).abs() < 1e-9,
            "{} vs {expected}",
            c.delta
        );
    }

    #[test]
    fn extent_weights_matter() {
        // Same centroid divergence, bigger extents → bigger delta.
        let (s_small, a1, a2) = structural(2.0, 4.0, 1.0, 1.0);
        let (s_big, b1, b2) = structural(2.0, 4.0, 10.0, 10.0);
        assert!(evaluate_merge(&s_big, b1, b2).delta > evaluate_merge(&s_small, a1, a2).delta);
    }

    #[test]
    fn value_divergence_detected_on_leaves() {
        // Two childless value clusters with disjoint numeric ranges: the
        // paper's raw formula would give Δ = 0; the virtual self child
        // must make it positive.
        let mut labels = Interner::new();
        let rl = labels.intern("root");
        let yl = labels.intern("y");
        let mut s = Synopsis::new(labels, rl, 2);
        let mk_vals =
            |vals: &[u64]| -> Vec<Value> { vals.iter().map(|&v| Value::Numeric(v)).collect() };
        let v1 = mk_vals(&[1, 2, 3]);
        let v2 = mk_vals(&[1000, 2000]);
        let y1 = s.push_node(SynopsisNode {
            label: yl,
            vtype: ValueType::Numeric,
            count: 3.0,
            children: Vec::new(),
            parents: Vec::new(),
            vsumm: ValueSummary::build(&v1.iter().collect::<Vec<_>>(), ValueType::Numeric),
            alive: true,
            version: 0,
        });
        let y2 = s.push_node(SynopsisNode {
            label: yl,
            vtype: ValueType::Numeric,
            count: 2.0,
            children: Vec::new(),
            parents: Vec::new(),
            vsumm: ValueSummary::build(&v2.iter().collect::<Vec<_>>(), ValueType::Numeric),
            alive: true,
            version: 0,
        });
        s.add_edge(0, y1, 3.0);
        s.add_edge(0, y2, 2.0);
        let c = evaluate_merge(&s, y1, y2);
        assert!(
            c.delta > 0.0,
            "leaf value divergence must cost: {}",
            c.delta
        );
    }

    #[test]
    fn similar_value_leaves_are_cheap() {
        let mut labels = Interner::new();
        let rl = labels.intern("root");
        let yl = labels.intern("y");
        let mut s = Synopsis::new(labels, rl, 2);
        let vals: Vec<Value> = (0..20).map(|i| Value::Numeric(1990 + i % 10)).collect();
        let refs: Vec<&Value> = vals.iter().collect();
        for _ in 0..2 {
            let y = s.push_node(SynopsisNode {
                label: yl,
                vtype: ValueType::Numeric,
                count: 20.0,
                children: Vec::new(),
                parents: Vec::new(),
                vsumm: ValueSummary::build(&refs, ValueType::Numeric),
                alive: true,
                version: 0,
            });
            s.add_edge(0, y, 20.0);
        }
        let ids: Vec<_> = s.live_nodes().filter(|&i| i != 0).collect();
        let c = evaluate_merge(&s, ids[0], ids[1]);
        assert!(
            c.delta < 1e-6,
            "identical distributions merge freely: {}",
            c.delta
        );
    }

    #[test]
    fn marginal_loss_normalizes_by_bytes() {
        let (s, a1, a2) = structural(2.0, 4.0, 3.0, 1.0);
        let c = evaluate_merge(&s, a1, a2);
        assert!((c.marginal_loss() - c.delta / c.bytes_saved as f64).abs() < 1e-12);
    }

    #[test]
    fn compression_candidate_scales_with_extent_and_fanout() {
        let mut labels = Interner::new();
        let rl = labels.intern("root");
        let yl = labels.intern("y");
        let mut s = Synopsis::new(labels, rl, 2);
        let vals: Vec<Value> = (0..64).map(|i| Value::Numeric(i * i)).collect();
        let refs: Vec<&Value> = vals.iter().collect();
        let y = s.push_node(SynopsisNode {
            label: yl,
            vtype: ValueType::Numeric,
            count: 64.0,
            children: Vec::new(),
            parents: Vec::new(),
            vsumm: ValueSummary::build(&refs, ValueType::Numeric),
            alive: true,
            version: 0,
        });
        s.add_edge(0, y, 64.0);
        let c = evaluate_compression(&s, y).unwrap();
        assert!(c.bytes_saved > 0);
        assert!(c.delta >= 0.0);
        // No summary → no candidate.
        assert!(evaluate_compression(&s, s.root()).is_none());
    }
}
